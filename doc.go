// Package repro is a from-scratch Go reproduction of "Deep Neural Network
// Hardware Deployment Optimization via Advanced Active Learning" (Sun, Bai,
// Geng, Yu — DATE 2021): an AutoTVM-style auto-tuning stack (compute-graph
// IR, schedule configuration spaces, an analytic GPU cost simulator, an
// XGBoost-style surrogate, simulated annealing and transfer learning)
// together with the paper's contribution — batch transductive experimental
// design (BTED) for initialization and Bootstrap-guided adaptive
// optimization (BAO) for the iterative search.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for
// paper-vs-measured results. The benchmarks in bench_test.go regenerate
// every table and figure of the paper's evaluation at reduced scale;
// cmd/repro regenerates them at any scale.
package repro
