// Benchmarks regenerating every table and figure of the paper's evaluation
// at reduced scale (single trial, reduced budgets — the qualitative shape
// is preserved; cmd/repro -scale paper runs the full settings). Custom
// metrics are attached via b.ReportMetric:
//
//	gflops_*      best-so-far / final GFLOPS of an arm
//	latency_ms_*  end-to-end latency of an arm
//	dlat_pct      BTED+BAO latency delta vs AutoTVM (negative = better)
//	dvar_pct      BTED+BAO variance delta vs AutoTVM (negative = better)
package repro_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/active"
	"repro/internal/backend"
	"repro/internal/graph"
	"repro/internal/hwsim"
	"repro/internal/repro"
	"repro/internal/space"
	"repro/internal/tensor"
	"repro/internal/tuner"
)

// benchCfg keeps one bench iteration in the seconds range on one core.
func benchCfg(seed int64) repro.Config {
	return repro.Config{Trials: 1, Budget: 160, EarlyStop: 96, PlanSize: 32, Runs: 200, Seed: seed}
}

// ---- Fig. 4: convergence curves (MobileNet-v1 T1, T2) ---------------------

func benchmarkFig4(b *testing.B, panel int) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(int64(2021 + i))
		cfg.EarlyStop = -1
		results, err := repro.Fig4(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		r := results[panel]
		for _, s := range r.Series {
			b.ReportMetric(s.Trace[len(s.Trace)-1], "gflops_"+s.Method)
		}
	}
}

func Benchmark_Fig4_T1(b *testing.B) { benchmarkFig4(b, 0) }
func Benchmark_Fig4_T2(b *testing.B) { benchmarkFig4(b, 1) }

// ---- Fig. 5: per-task configs and GFLOPS ratios ----------------------------

func Benchmark_Fig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(int64(77 + i))
		res, err := repro.Fig5(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Avg.Configs[0], "configs_AutoTVM")
		b.ReportMetric(res.Avg.Configs[1], "configs_BTED")
		b.ReportMetric(res.Avg.Configs[2], "configs_BTED+BAO")
		b.ReportMetric(res.Avg.RatioPct[1], "gflops_pct_BTED")
		b.ReportMetric(res.Avg.RatioPct[2], "gflops_pct_BTED+BAO")
	}
}

// ---- Table I: end-to-end latency and variance per model --------------------

func benchmarkTable1(b *testing.B, model string) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(int64(11 + i))
		res, err := repro.Table1(context.Background(), cfg, []string{model})
		if err != nil {
			b.Fatal(err)
		}
		row := res.Rows[0]
		b.ReportMetric(row.LatencyMS[0], "latency_ms_AutoTVM")
		b.ReportMetric(row.LatencyMS[1], "latency_ms_BTED")
		b.ReportMetric(row.LatencyMS[2], "latency_ms_BTED+BAO")
		b.ReportMetric(row.DeltaLatPct[2], "dlat_pct")
		b.ReportMetric(row.DeltaVarPct[2], "dvar_pct")
	}
}

func Benchmark_TableI_AlexNet(b *testing.B)     { benchmarkTable1(b, "alexnet") }
func Benchmark_TableI_ResNet18(b *testing.B)    { benchmarkTable1(b, "resnet-18") }
func Benchmark_TableI_VGG16(b *testing.B)       { benchmarkTable1(b, "vgg-16") }
func Benchmark_TableI_MobileNetV1(b *testing.B) { benchmarkTable1(b, "mobilenet-v1") }
func Benchmark_TableI_SqueezeNet(b *testing.B)  { benchmarkTable1(b, "squeezenet-v1.1") }

// ---- Ablations --------------------------------------------------------------

func Benchmark_Ablation_Gamma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(int64(5 + i))
		cfg.Budget = 96
		res, err := repro.AblationGamma(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.RelPct, "rel_pct_"+row.Setting)
		}
	}
}

func Benchmark_Ablation_Init(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(int64(6 + i))
		cfg.Budget = 96
		res, err := repro.AblationInit(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.RelPct, "rel_pct_"+row.Setting)
		}
	}
}

// ---- Component micro-benchmarks ---------------------------------------------

func Benchmark_BTED_Init(b *testing.B) {
	w := tensor.Conv2D(1, 64, 56, 56, 128, 3, 1, 1)
	sp, err := space.ForWorkload(w)
	if err != nil {
		b.Fatal(err)
	}
	p := active.DefaultBTEDParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if got := active.BTED(sp, p, rng); len(got) != p.M0 {
			b.Fatalf("BTED returned %d", len(got))
		}
	}
}

func Benchmark_BAO_Step(b *testing.B) {
	w := tensor.Conv2D(1, 64, 28, 28, 64, 3, 1, 1)
	sp, err := space.ForWorkload(w)
	if err != nil {
		b.Fatal(err)
	}
	sim := hwsim.NewSimulator(hwsim.GTX1080Ti(), 1)
	rng := rand.New(rand.NewSource(2))
	var init []active.Sample
	for _, c := range sp.RandomSample(64, rng) {
		m := sim.Measure(w, c)
		init = append(init, active.Sample{Config: c, GFLOPS: m.GFLOPS, Valid: m.Valid})
	}
	measure := func(c space.Config) (float64, bool) {
		m := sim.Measure(w, c)
		return m.GFLOPS, m.Valid
	}
	p := active.DefaultBAOParams()
	p.EarlyStop = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.T = 1
		active.BAO(sp, active.NewXGBTrainer(), init, measure, p, rand.New(rand.NewSource(int64(i))), nil)
	}
}

func Benchmark_Simulator_Measure(b *testing.B) {
	w := tensor.Conv2D(1, 128, 28, 28, 128, 3, 1, 1)
	sp, err := space.ForWorkload(w)
	if err != nil {
		b.Fatal(err)
	}
	sim := hwsim.NewSimulator(hwsim.GTX1080Ti(), 1)
	rng := rand.New(rand.NewSource(1))
	cfgs := sp.RandomSample(256, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Measure(w, cfgs[i%len(cfgs)])
	}
}

func Benchmark_Neighborhood_R3(b *testing.B) {
	w := tensor.Conv2D(1, 64, 56, 56, 128, 3, 1, 1)
	sp, err := space.ForWorkload(w)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	center := sp.Random(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Neighborhood(center, 3, space.NeighborhoodOpts{MaxCandidates: 2048}, rng)
	}
}

func Benchmark_Neighborhood_TauR(b *testing.B) {
	w := tensor.Conv2D(1, 64, 56, 56, 128, 3, 1, 1)
	sp, err := space.ForWorkload(w)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	center := sp.Random(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Neighborhood(center, 4.5, space.NeighborhoodOpts{MaxCandidates: 2048}, rng)
	}
}

func Benchmark_TaskExtraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range graph.ModelNames {
			g, err := graph.Model(m)
			if err != nil {
				b.Fatal(err)
			}
			if len(graph.ExtractTasks(g, graph.ConvOnly)) == 0 {
				b.Fatal("no tasks")
			}
		}
	}
}

func Benchmark_EndToEnd_Quickstart(b *testing.B) {
	w := tensor.Conv2D(1, 64, 28, 28, 128, 3, 1, 1)
	task, err := tuner.NewTask("bench.conv", w)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		bk := backend.Wrap("gtx1080ti", hwsim.NewSimulator(hwsim.GTX1080Ti(), int64(i)))
		res, err := tuner.NewBTEDBAO().Tune(context.Background(), task, bk, tuner.Options{
			Budget: 96, EarlyStop: -1, PlanSize: 24, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Found {
			b.Fatal("nothing found")
		}
		b.ReportMetric(res.Best.GFLOPS, "gflops_best")
	}
}
