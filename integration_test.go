// Cross-module integration tests: end-to-end invariants that no single
// package test can check — graph -> space -> tuner -> simulator -> pipeline
// -> records -> resume.
package repro_test

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hwsim"
	"repro/internal/record"
	"repro/internal/tuner"
)

// fastOpts are shared scaled-down pipeline options.
func fastOpts(budget int, seed int64) core.PipelineOptions {
	return core.PipelineOptions{
		Tuning:  tuner.Options{Budget: budget, EarlyStop: -1, PlanSize: 8, Seed: seed},
		Extract: graph.ConvOnly,
		Runs:    100,
	}
}

func TestIntegration_TuneDeployResume(t *testing.T) {
	if testing.Short() {
		t.Skip("tunes a real model")
	}
	b := backend.Wrap("gtx1080ti", hwsim.NewSimulator(hwsim.GTX1080Ti(), 1))
	dep, err := core.OptimizeModel(context.Background(), "squeezenet-v1.1", tuner.RandomTuner{}, b, fastOpts(16, 7))
	if err != nil {
		t.Fatal(err)
	}

	// Records round-trip through the log format.
	var buf bytes.Buffer
	if err := record.Write(&buf, dep.Records()); err != nil {
		t.Fatal(err)
	}
	recs, err := record.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != dep.TotalMeasurements {
		t.Fatalf("logged %d of %d measurements", len(recs), dep.TotalMeasurements)
	}

	// Resuming from the log: a fresh run starts no worse than the logged
	// best on every task.
	opts := fastOpts(8, 99)
	opts.Resume = recs
	dep2, err := core.OptimizeModel(context.Background(), "squeezenet-v1.1", tuner.RandomTuner{}, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	best1 := dep.BestGFLOPSByTask()
	best2 := dep2.BestGFLOPSByTask()
	for task, g1 := range best1 {
		if best2[task] < g1 {
			t.Fatalf("task %s resumed best %.1f below logged %.1f", task, best2[task], g1)
		}
	}

	// Applying the combined records reproduces a latency in the same
	// ballpark as the resumed deployment's own measurement.
	allRecs := append(recs, dep2.Records()...)
	lat, variance, err := core.ApplyRecords("squeezenet-v1.1", allRecs, b, graph.ConvOnly, 100)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 || variance <= 0 {
		t.Fatalf("applied latency %v variance %v", lat, variance)
	}
	ratio := lat / dep2.LatencyMS
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("applied latency %.4f wildly differs from deployed %.4f", lat, dep2.LatencyMS)
	}
}

func TestIntegration_GraphSerializationFeedsPipeline(t *testing.T) {
	// A model serialized to JSON and read back must tune identically
	// (same tasks, same spaces, same deterministic results).
	g := graph.MobileNetV1()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := graph.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	t1 := graph.ExtractTasks(g, graph.ConvOnly)
	t2 := graph.ExtractTasks(g2, graph.ConvOnly)
	task1, err := tuner.FromGraphTask(t1[2])
	if err != nil {
		t.Fatal(err)
	}
	task2, err := tuner.FromGraphTask(t2[2])
	if err != nil {
		t.Fatal(err)
	}
	if task1.Space.Size() != task2.Space.Size() {
		t.Fatal("space changed across serialization")
	}
	opts := tuner.Options{Budget: 20, EarlyStop: -1, PlanSize: 8, Seed: 5}
	r1, err := tuner.NewAutoTVM().Tune(context.Background(), task1, backend.Wrap("gtx1080ti", hwsim.NewSimulator(hwsim.GTX1080Ti(), 3)), opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := tuner.NewAutoTVM().Tune(context.Background(), task2, backend.Wrap("gtx1080ti", hwsim.NewSimulator(hwsim.GTX1080Ti(), 3)), opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Best.GFLOPS != r2.Best.GFLOPS {
		t.Fatalf("deserialized graph tunes differently: %.3f vs %.3f", r1.Best.GFLOPS, r2.Best.GFLOPS)
	}
}

func TestIntegration_DeterministicPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("tunes a real model twice")
	}
	run := func() *core.Deployment {
		b := backend.Wrap("gtx1080ti", hwsim.NewSimulator(hwsim.GTX1080Ti(), 11))
		dep, err := core.OptimizeModel(context.Background(), "alexnet", tuner.NewAutoTVM(), b, core.PipelineOptions{
			Tuning:  tuner.Options{Budget: 24, EarlyStop: -1, PlanSize: 8, Seed: 13},
			Extract: graph.AllOps,
			Runs:    100,
		})
		if err != nil {
			t.Fatal(err)
		}
		return dep
	}
	a := run()
	b := run()
	if a.LatencyMS != b.LatencyMS || a.Variance != b.Variance || a.TotalMeasurements != b.TotalMeasurements {
		t.Fatalf("pipeline not deterministic: %v/%v vs %v/%v", a.LatencyMS, a.Variance, b.LatencyMS, b.Variance)
	}
}

func TestIntegration_CrossDeviceDeployments(t *testing.T) {
	if testing.Short() {
		t.Skip("tunes on two devices")
	}
	// The same model deploys on every simulated device; the embedded board
	// must be slower than the desktop card.
	latency := func(dev hwsim.Device) float64 {
		b := backend.Wrap(dev.Name, hwsim.NewSimulator(dev, 2))
		dep, err := core.OptimizeModel(context.Background(), "squeezenet-v1.1", tuner.RandomTuner{}, b, fastOpts(12, 3))
		if err != nil {
			t.Fatal(err)
		}
		return dep.LatencyMS
	}
	big := latency(hwsim.GTX1080Ti())
	small := latency(hwsim.JetsonTX2())
	if small <= big {
		t.Fatalf("Jetson latency %.3f should exceed 1080 Ti %.3f", small, big)
	}
}

func TestIntegration_AllTunersOnAllOpKinds(t *testing.T) {
	// Every tuner must handle every operator template.
	b := graph.NewBuilder("mixed")
	x := b.Input("in", 1, 8, 16, 16)
	x = b.Conv("c", x, 16, 3, 1, 1)
	x = b.DepthwiseConv("d", x, 3, 1, 1)
	x = b.Flatten("f", x)
	x = b.Dense("fc", x, 10)
	g := b.Finish(x)
	tuners := []tuner.Tuner{
		tuner.RandomTuner{}, tuner.GridTuner{}, tuner.GATuner{},
		tuner.NewAutoTVM(), tuner.NewBTED(), tuner.NewBTEDBAO(),
	}
	for _, tn := range tuners {
		bk := backend.Wrap("gtx1080ti", hwsim.NewSimulator(hwsim.GTX1080Ti(), 4))
		dep, err := core.OptimizeGraph(context.Background(), g, tn, bk, core.PipelineOptions{
			Tuning:  tuner.Options{Budget: 16, EarlyStop: -1, PlanSize: 8, Seed: 5},
			Extract: graph.AllOps,
			Runs:    50,
		})
		if err != nil {
			t.Fatalf("%s: %v", tn.Name(), err)
		}
		if len(dep.Tasks) != 3 {
			t.Fatalf("%s: %d tasks", tn.Name(), len(dep.Tasks))
		}
	}
}
