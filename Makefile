GO ?= go

.PHONY: all build test race determinism bench bench-smoke bench-check cover lint lint-sarif fmt-check verify

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent measurement machinery
# (hwsim.Simulator, transfer.History, the tuner worker pool, par,
# the backend wrappers, the graph scheduler, parallel bootstrap training
# and Gram assembly, parallel SA chains).
race:
	$(GO) test -race ./internal/hwsim ./internal/transfer ./internal/tuner ./internal/active ./internal/linalg ./internal/par ./internal/backend ./internal/sched ./internal/xgb ./internal/gp ./internal/sa

# Determinism suite under the race detector: same seed, Workers 1/4/8
# must yield bit-identical samples for every tuner, a cancelled or
# deadline-expired run must return a bit-identical prefix of them, and
# the graph scheduler's outcomes must be invariant across the whole
# Workers {1,4,8} x task-concurrency {1,2,4} grid (sched tests plus the
# pipeline-level golden and invariance checks in internal/core). The
# kernel-level invariance tests ride the same regex: TED/mat-vec/Cholesky
# (linalg, active), xgb split search + PredictBatch, and the GP kernel
# build must be bit-identical for any worker count, and the SIMD lane
# kernels must match the portable reference bit for bit. Parallel SA
# chains join through internal/sa (plain and delta objectives, Workers
# 1/4/8) and the tuner-level SAChains sample-stream invariance test.
# Checkpoint|Snapshot pulls in the serializable-session layer: snapshot →
# restore → continue must be bit-identical for every tuner, for the
# scheduler across its Workers x task-concurrency grid, and for the
# crash-resume rehearsal of cmd/tune.
determinism:
	$(GO) test -race -run 'WorkerCountInvariance|Parallel|Concurrent|Seeded|NoiseSeed|Cancel|Deadline|ForContext|Golden|Session|Invariance|SequentialMatches|Checkpoint|Snapshot' \
		./internal/tuner ./internal/active ./internal/linalg ./internal/hwsim ./internal/par ./internal/backend ./internal/sched ./internal/core ./internal/xgb ./internal/gp ./internal/sa ./internal/snap ./internal/rng ./cmd/tune

# Benchmark smoke pass: every committed benchmark must still compile and
# run (one iteration; not a timing source).
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run XXXBENCHXXX ./...

# Serial-vs-parallel wall clock on a fixed 8-task tuning run through the
# graph scheduler; also fails if the two legs' samples diverge. Writes
# BENCH_tune.json.
bench:
	$(GO) run ./cmd/bench -out BENCH_tune.json

# Regression gate against the committed report: a fresh run (written to
# /tmp, the committed BENCH_tune.json is left alone) must not regress
# the serial candidate_selection phase beyond -max-regress (default 3x;
# generous because shared CI hosts are noisy), and the two legs'
# samples must still be identical.
bench-check:
	$(GO) run ./cmd/bench -out /tmp/BENCH_check.json -baseline BENCH_tune.json

# Coverage gates: the scheduler and the checkpoint codec must each stay
# >= 80% covered by their own tests.
cover:
	@for pkg in internal/sched internal/snap; do \
		name=$$(basename $$pkg); \
		$(GO) test -coverprofile=/tmp/$${name}_cover.out ./$$pkg >/dev/null || exit 1; \
		pct=$$($(GO) tool cover -func=/tmp/$${name}_cover.out | awk '/^total:/ {sub("%","",$$3); print $$3}'); \
		echo "$$pkg coverage: $$pct%"; \
		awk -v p="$$pct" 'BEGIN { exit (p+0 >= 80.0) ? 0 : 1 }' || \
			{ echo "$$pkg coverage $$pct% is below the 80% floor"; exit 1; }; \
	done

# In-repo static-analysis suite (internal/analysis): determinism,
# float-safety, lock hygiene, unchecked errors, library panics, plus the
# dataflow-backed contract analyzers (maprange, walltime, parfold,
# seedflow, errcmp) and stale-directive detection (deadignore). Gated on
# the committed baseline: only findings not recorded there fail the run.
lint:
	$(GO) run ./cmd/lint -baseline cmd/lint/baseline.json ./...

# SARIF 2.1.0 report for CI code-scanning upload.
lint-sarif:
	$(GO) run ./cmd/lint -sarif -baseline cmd/lint/baseline.json ./... > lint.sarif

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Everything CI runs, in one command.
verify: fmt-check build test lint
	$(GO) vet ./...
