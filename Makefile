GO ?= go

.PHONY: all build test race lint fmt-check verify

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the mutex-guarded measurement types
# (hwsim.Simulator, transfer.History, tuner.FlakyMeasurer and friends).
race:
	$(GO) test -race ./internal/hwsim ./internal/transfer ./internal/tuner

# In-repo static-analysis suite (internal/analysis): determinism,
# float-safety, lock hygiene, unchecked errors, library panics.
lint:
	$(GO) run ./cmd/lint ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Everything CI runs, in one command.
verify: fmt-check build test lint
	$(GO) vet ./...
