GO ?= go

.PHONY: all build test race determinism bench bench-smoke bench-check serve-smoke serve-bench cover lint lint-sarif fmt-check verify

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent measurement machinery
# (hwsim.Simulator, transfer.History, the tuner worker pool, par,
# the backend wrappers, the graph scheduler, parallel bootstrap training
# and Gram assembly, parallel SA chains, the job manager's record fan-out
# and the daemon's SSE subscribers).
race:
	$(GO) test -race ./internal/hwsim ./internal/transfer ./internal/tuner ./internal/active ./internal/linalg ./internal/par ./internal/backend ./internal/sched ./internal/xgb ./internal/gp ./internal/sa ./internal/job ./internal/serve ./cmd/served

# Determinism suite under the race detector: same seed, Workers 1/4/8
# must yield bit-identical samples for every tuner, a cancelled or
# deadline-expired run must return a bit-identical prefix of them, and
# the graph scheduler's outcomes must be invariant across the whole
# Workers {1,4,8} x task-concurrency {1,2,4} grid (sched tests plus the
# pipeline-level golden and invariance checks in internal/core). The
# kernel-level invariance tests ride the same regex: TED/mat-vec/Cholesky
# (linalg, active), xgb split search + PredictBatch, and the GP kernel
# build must be bit-identical for any worker count, and the SIMD lane
# kernels must match the portable reference bit for bit. Parallel SA
# chains join through internal/sa (plain and delta objectives, Workers
# 1/4/8) and the tuner-level SAChains sample-stream invariance test.
# Checkpoint|Snapshot pulls in the serializable-session layer: snapshot →
# restore → continue must be bit-identical for every tuner, for the
# scheduler across its Workers x task-concurrency grid, and for the
# crash-resume rehearsals of the whole job lifecycle — the runner killed
# at a checkpoint boundary (internal/job), the manager shut down mid-job
# and recovered, and a served job whose daemon is killed and restarted
# (cmd/served) — each of which must leave a record log byte-identical to
# an uninterrupted run.
determinism:
	$(GO) test -race -run 'WorkerCountInvariance|Parallel|Concurrent|Seeded|NoiseSeed|Cancel|Deadline|ForContext|Golden|Session|Invariance|SequentialMatches|Checkpoint|Snapshot' \
		./internal/tuner ./internal/active ./internal/linalg ./internal/hwsim ./internal/par ./internal/backend ./internal/sched ./internal/core ./internal/xgb ./internal/gp ./internal/sa ./internal/snap ./internal/rng ./internal/job ./cmd/tune ./cmd/served

# Benchmark smoke pass: every committed benchmark must still compile and
# run (one iteration; not a timing source).
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run XXXBENCHXXX ./...

# Serial-vs-parallel wall clock on a fixed 8-task tuning run through the
# graph scheduler; also fails if the two legs' samples diverge. Writes
# BENCH_tune.json.
bench:
	$(GO) run ./cmd/bench -out BENCH_tune.json

# Regression gate against the committed report: a fresh run (written to
# /tmp, the committed BENCH_tune.json is left alone) must not regress
# the serial candidate_selection phase beyond -max-regress (default 3x;
# generous because shared CI hosts are noisy), and the two legs'
# samples must still be identical.
bench-check:
	$(GO) run ./cmd/bench -out /tmp/BENCH_check.json -baseline BENCH_tune.json

# End-to-end smoke of the real daemon binary: start cmd/served on a
# loopback port, submit a small job over HTTP, wait for it to finish,
# and require the served record stream to be byte-identical to a
# cmd/tune run of the same spec and seed. Override the port with
# SERVE_SMOKE_ADDR if 18231 is taken.
SERVE_SMOKE_ADDR ?= 127.0.0.1:18231
serve-smoke:
	@set -e; \
	tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/served ./cmd/served; \
	$$tmp/served -addr $(SERVE_SMOKE_ADDR) -store $$tmp/jobs & pid=$$!; \
	trap "kill $$pid 2>/dev/null; rm -rf $$tmp" EXIT; \
	up=0; for i in $$(seq 1 50); do \
		curl -fs http://$(SERVE_SMOKE_ADDR)/healthz >/dev/null 2>&1 && { up=1; break; }; sleep 0.2; \
	done; \
	[ "$$up" = 1 ] || { echo "serve-smoke: daemon never came up on $(SERVE_SMOKE_ADDR)"; exit 1; }; \
	curl -fs -X POST http://$(SERVE_SMOKE_ADDR)/v1/jobs \
		-d '{"id":"smoke-1","model":"mobilenet-v1","tuner":"autotvm","ops":"conv","seed":1,"budget":16,"early_stop":-1,"plan_size":8,"runs":20}' >/dev/null; \
	state=pending; for i in $$(seq 1 150); do \
		state=$$(curl -fs http://$(SERVE_SMOKE_ADDR)/v1/jobs/smoke-1 | sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p' | head -1); \
		[ "$$state" = done ] && break; sleep 0.2; \
	done; \
	[ "$$state" = done ] || { echo "serve-smoke: job state '$$state', want done"; exit 1; }; \
	curl -fs http://$(SERVE_SMOKE_ADDR)/v1/jobs/smoke-1/result | grep -q '"state": *"done"' || \
		{ echo "serve-smoke: result endpoint did not report done"; exit 1; }; \
	curl -fs http://$(SERVE_SMOKE_ADDR)/v1/jobs/smoke-1/records > $$tmp/served.jsonl; \
	n=$$(wc -l < $$tmp/served.jsonl); \
	[ "$$n" -gt 0 ] || { echo "serve-smoke: no records streamed"; exit 1; }; \
	$(GO) run ./cmd/tune -model mobilenet-v1 -tuner autotvm -ops conv -seed 1 \
		-budget 16 -earlystop -1 -plan 8 -runs 20 -log $$tmp/tune.jsonl >/dev/null; \
	cmp $$tmp/served.jsonl $$tmp/tune.jsonl || \
		{ echo "serve-smoke: served record stream differs from cmd/tune's for the same spec/seed"; exit 1; }; \
	echo "serve-smoke: ok ($$n records, byte-identical to cmd/tune)"

# Serving-throughput benchmark gated against the committed report: a
# small fleet (12 jobs — the committed BENCH_served.json is a 64-job run
# and is left alone) through the real daemon over loopback HTTP, once
# with the shared measurement cache off and once on. The gate is
# size-independent: per-job record logs must stay byte-identical between
# the legs, the cache must actually hit, and the cache speedup must not
# collapse below baseline / -max-regress (default 3; CI hosts are noisy).
serve-bench:
	$(GO) run ./cmd/bench -served -served-jobs 12 -out /tmp/BENCH_served_check.json -baseline BENCH_served.json

# Coverage gates: the scheduler, the checkpoint codec, the job lifecycle
# layer, and the fleet load generator must each stay >= 80% covered by
# their own tests.
cover:
	@for pkg in internal/sched internal/snap internal/job internal/fleet; do \
		name=$$(basename $$pkg); \
		$(GO) test -coverprofile=/tmp/$${name}_cover.out ./$$pkg >/dev/null || exit 1; \
		pct=$$($(GO) tool cover -func=/tmp/$${name}_cover.out | awk '/^total:/ {sub("%","",$$3); print $$3}'); \
		echo "$$pkg coverage: $$pct%"; \
		awk -v p="$$pct" 'BEGIN { exit (p+0 >= 80.0) ? 0 : 1 }' || \
			{ echo "$$pkg coverage $$pct% is below the 80% floor"; exit 1; }; \
	done

# In-repo static-analysis suite (internal/analysis): determinism,
# float-safety, lock hygiene, unchecked errors, library panics, plus the
# dataflow-backed contract analyzers (maprange, walltime, parfold,
# seedflow, errcmp) and stale-directive detection (deadignore). Gated on
# the committed baseline: only findings not recorded there fail the run.
lint:
	$(GO) run ./cmd/lint -baseline cmd/lint/baseline.json ./...

# SARIF 2.1.0 report for CI code-scanning upload.
lint-sarif:
	$(GO) run ./cmd/lint -sarif -baseline cmd/lint/baseline.json ./... > lint.sarif

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Everything CI runs, in one command.
verify: fmt-check build test lint
	$(GO) vet ./...
