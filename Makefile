GO ?= go

.PHONY: all build test race determinism bench lint fmt-check verify

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent measurement machinery
# (hwsim.Simulator, transfer.History, the tuner worker pool, par,
# the backend wrappers, parallel bootstrap training and Gram assembly).
race:
	$(GO) test -race ./internal/hwsim ./internal/transfer ./internal/tuner ./internal/active ./internal/linalg ./internal/par ./internal/backend

# Determinism suite under the race detector: same seed, Workers 1/4/8
# must yield bit-identical samples for every tuner, and a cancelled or
# deadline-expired run must return a bit-identical prefix of them.
determinism:
	$(GO) test -race -run 'WorkerCountInvariance|Parallel|Concurrent|Seeded|NoiseSeed|Cancel|Deadline|ForContext' \
		./internal/tuner ./internal/active ./internal/linalg ./internal/hwsim ./internal/par ./internal/backend

# Serial-vs-parallel wall clock on a fixed 8-task tuning run; also fails
# if the two legs' samples diverge. Writes BENCH_tune.json.
bench:
	$(GO) run ./cmd/bench -out BENCH_tune.json

# In-repo static-analysis suite (internal/analysis): determinism,
# float-safety, lock hygiene, unchecked errors, library panics.
lint:
	$(GO) run ./cmd/lint ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Everything CI runs, in one command.
verify: fmt-check build test lint
	$(GO) vet ./...
