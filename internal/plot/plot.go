// Package plot renders simple ASCII line charts and bar charts for the
// experiment reports: the repository has no graphics dependencies, but the
// paper's figures are line plots, so cmd/repro draws them as text.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name   string
	Values []float64
}

// LineChart renders series as an ASCII chart of the given size. The x axis
// is the sample index (all series should share it); the y axis is scaled to
// the global min/max. Each series draws with its own marker; later series
// overwrite earlier ones on collisions.
type LineChart struct {
	Title   string
	Width   int // plot columns (default 72)
	Height  int // plot rows (default 18)
	YLabel  string
	XLabel  string
	Markers string // one marker rune per series (default "o*x+#@")
}

// Render writes the chart. The first write error is returned (writes are
// buffered, so it surfaces from the final flush).
func (lc LineChart) Render(w io.Writer, series []Series) error {
	width := lc.Width
	if width <= 0 {
		width = 72
	}
	height := lc.Height
	if height <= 0 {
		height = 18
	}
	markers := lc.Markers
	if markers == "" {
		markers = "o*x+#@"
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range series {
		for _, v := range s.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	var b strings.Builder
	if maxLen == 0 || math.IsInf(lo, 1) {
		fmt.Fprintln(&b, "(no data)")
		return flush(w, &b)
	}
	//lint:ignore floateq lo and hi are exact copies of input samples; equality detects a degenerate range
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mk := markers[si%len(markers)]
		for j, v := range s.Values {
			x := 0
			if maxLen > 1 {
				x = j * (width - 1) / (maxLen - 1)
			}
			yFrac := (v - lo) / (hi - lo)
			y := height - 1 - int(yFrac*float64(height-1)+0.5)
			if y < 0 {
				y = 0
			}
			if y >= height {
				y = height - 1
			}
			grid[y][x] = mk
		}
	}

	if lc.Title != "" {
		fmt.Fprintln(&b, lc.Title)
	}
	yw := 10
	for i, row := range grid {
		label := ""
		switch i {
		case 0:
			label = fmt.Sprintf("%.4g", hi)
		case height - 1:
			label = fmt.Sprintf("%.4g", lo)
		case height / 2:
			label = fmt.Sprintf("%.4g", (hi+lo)/2)
		}
		fmt.Fprintf(&b, "%*s |%s\n", yw, label, string(row))
	}
	fmt.Fprintf(&b, "%*s +%s\n", yw, "", strings.Repeat("-", width))
	if lc.XLabel != "" {
		fmt.Fprintf(&b, "%*s  %s\n", yw, "", lc.XLabel)
	}
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(&b, "%*s  legend: %s\n", yw, "", strings.Join(legend, "  "))
	return flush(w, &b)
}

// flush writes an accumulated report in a single checked write.
func flush(w io.Writer, b *strings.Builder) error {
	_, err := io.WriteString(w, b.String())
	return err
}

// BarChart renders a horizontal bar chart of labeled values.
type BarChart struct {
	Title string
	Width int // maximum bar width (default 50)
}

// Render writes the chart. Negative values draw leftward annotations. The
// first write error is returned.
func (bc BarChart) Render(w io.Writer, labels []string, values []float64) error {
	width := bc.Width
	if width <= 0 {
		width = 50
	}
	var b strings.Builder
	if bc.Title != "" {
		fmt.Fprintln(&b, bc.Title)
	}
	maxAbs := 0.0
	maxLabel := 0
	for i, v := range values {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	for i, v := range values {
		n := int(math.Abs(v) / maxAbs * float64(width))
		bar := strings.Repeat("#", n)
		fmt.Fprintf(&b, "%-*s %10.3f |%s\n", maxLabel, labels[i], v, bar)
	}
	return flush(w, &b)
}

// Sparkline returns a one-line unicode sparkline of the values.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	//lint:ignore floateq lo and hi are exact copies of input samples; equality detects a flat series
	if hi == lo {
		return strings.Repeat(string(ramp[0]), len(values))
	}
	var b strings.Builder
	for _, v := range values {
		idx := int((v - lo) / (hi - lo) * float64(len(ramp)-1))
		b.WriteRune(ramp[idx])
	}
	return b.String()
}
