package plot

import (
	"bytes"
	"strings"
	"testing"
)

func TestLineChartRenders(t *testing.T) {
	var buf bytes.Buffer
	lc := LineChart{Title: "test chart", Width: 40, Height: 10, XLabel: "#configs"}
	lc.Render(&buf, []Series{
		{Name: "a", Values: []float64{1, 2, 3, 4, 5}},
		{Name: "b", Values: []float64{5, 4, 3, 2, 1}},
	})
	out := buf.String()
	if !strings.Contains(out, "test chart") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "legend: o=a  *=b") {
		t.Fatalf("missing legend: %s", out)
	}
	if !strings.Contains(out, "#configs") {
		t.Fatal("missing x label")
	}
	if !strings.Contains(out, "5") || !strings.Contains(out, "1") {
		t.Fatal("missing y-axis bounds")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+10+1+1+1 { // title + rows + axis + xlabel + legend
		t.Fatalf("unexpected line count %d", len(lines))
	}
}

func TestLineChartEmpty(t *testing.T) {
	var buf bytes.Buffer
	LineChart{}.Render(&buf, nil)
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("empty chart should say so")
	}
}

func TestLineChartConstantSeries(t *testing.T) {
	var buf bytes.Buffer
	LineChart{Width: 10, Height: 4}.Render(&buf, []Series{{Name: "c", Values: []float64{3, 3, 3}}})
	if buf.Len() == 0 {
		t.Fatal("constant series should render")
	}
}

func TestLineChartSinglePoint(t *testing.T) {
	var buf bytes.Buffer
	LineChart{Width: 10, Height: 4}.Render(&buf, []Series{{Name: "p", Values: []float64{7}}})
	if !strings.Contains(buf.String(), "o") {
		t.Fatal("single point should draw a marker")
	}
}

func TestBarChart(t *testing.T) {
	var buf bytes.Buffer
	BarChart{Title: "bars", Width: 20}.Render(&buf, []string{"x", "yy"}, []float64{-10, 5})
	out := buf.String()
	if !strings.Contains(out, "bars") || !strings.Contains(out, "##") {
		t.Fatalf("bar chart output wrong:\n%s", out)
	}
	// The larger magnitude gets the full width.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "x ") && strings.Count(line, "#") != 20 {
			t.Fatalf("dominant bar not full width: %q", line)
		}
	}
}

func TestBarChartAllZero(t *testing.T) {
	var buf bytes.Buffer
	BarChart{}.Render(&buf, []string{"z"}, []float64{0})
	if !strings.Contains(buf.String(), "z") {
		t.Fatal("zero bars should still list labels")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline length %d", len([]rune(s)))
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline should be empty")
	}
	flat := Sparkline([]float64{2, 2})
	if len([]rune(flat)) != 2 || []rune(flat)[0] != []rune(flat)[1] {
		t.Fatalf("flat sparkline wrong: %q", flat)
	}
	rs := []rune(Sparkline([]float64{0, 10}))
	if rs[0] >= rs[1] {
		t.Fatal("rising sparkline should rise")
	}
}
