// Package serve is the HTTP face of a job.Manager: the request routing,
// error mapping, and SSE fan-out of the tuning daemon, factored out of
// cmd/served so the load benchmark (cmd/bench -served) can drive the real
// daemon over loopback HTTP in-process. The handlers hold no state of
// their own — every request reads or mutates the manager — so the HTTP
// layer can be rebuilt at will around any manager.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/job"
)

// Server routes the daemon's HTTP API onto a job.Manager.
type Server struct {
	mgr *job.Manager
	mux *http.ServeMux
}

// New builds the API surface over mgr.
func New(mgr *job.Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.result)
	s.mux.HandleFunc("GET /v1/jobs/{id}/records", s.records)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.stream)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	s.mux.HandleFunc("GET /v1/stats", s.stats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = fmt.Fprintln(w, "ok") // liveness probe; a failed write means the client left
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// httpError maps a job-layer error to its status code: bad submissions are
// the client's fault, collisions are conflicts, unknown IDs are 404s, and
// a full queue is 429 with a Retry-After hint — the admission-control
// contract that lets fleet clients back off instead of piling on.
func httpError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, job.ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, job.ErrExists):
		code = http.StatusConflict
	case errors.Is(err, job.ErrQueueFull):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, job.ErrClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, job.ErrBadSpec):
		code = http.StatusBadRequest
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	sub, err := job.DecodeSubmit(r.Body)
	if err != nil {
		httpError(w, err)
		return
	}
	st, err := s.mgr.Submit(sub)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.List())
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.Status(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// stats reports fleet-level accounting: the shared measurement cache's
// hits/misses/entries (all-zero when the daemon runs without one).
func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	st, ok := s.mgr.SharedCacheStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"shared_cache_enabled": ok,
		"shared_cache":         st,
	})
}

func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.Status(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	if !st.State.Terminal() || st.Result == nil {
		writeJSON(w, http.StatusConflict, map[string]string{
			"error": fmt.Sprintf("job %s is %s; result exists only for finished jobs", st.ID, st.State),
		})
		return
	}
	writeJSON(w, http.StatusOK, st.Result)
}

// records serves a snapshot of the job's record log as JSON lines — the
// stored wire bytes themselves, so the response is byte-identical to the
// records.jsonl a cmd/tune run of the identical spec and seed writes,
// without re-encoding a single record.
func (s *Server) records(w http.ResponseWriter, r *http.Request) {
	sub, err := s.mgr.Subscribe(r.PathValue("id"), 0)
	if err != nil {
		httpError(w, err)
		return
	}
	defer sub.Close()
	w.Header().Set("Content-Type", "application/jsonl")
	for _, line := range sub.Snapshot() {
		if _, err := w.Write(line); err != nil {
			return // client went away mid-stream; nothing to recover
		}
	}
}

// stream serves the job's record stream as Server-Sent Events. Every
// subscriber replays from offset ?from (default 0: the whole log), then
// follows live until the job reaches a terminal state, which arrives as a
// final "done" event carrying the job status. Replay-from-log means a
// subscriber that connects after the job finished — even in a later daemon
// life — still receives the full, bit-identical stream.
//
// Each event's data is the record's stored wire line (sans trailing
// newline): the bytes were encoded exactly once, at append time, and every
// subscriber writes the same immutable slice — fan-out cost is framing and
// I/O, not encoding.
func (s *Server) stream(w http.ResponseWriter, r *http.Request) {
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "from must be a non-negative integer"})
			return
		}
		from = n
	}
	id := r.PathValue("id")
	sub, err := s.mgr.Subscribe(id, from)
	if err != nil {
		httpError(w, err)
		return
	}
	defer sub.Close()

	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "streaming unsupported"})
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	seq := from
	for {
		lines, more, err := sub.Next(r.Context())
		if err != nil {
			return // client went away
		}
		for _, line := range lines {
			// One event per record, id = its zero-based log offset, data =
			// exactly the log's JSON line. A client reconnecting with
			// ?from=<last id + 1> resumes without gaps or duplicates.
			if _, werr := fmt.Fprintf(w, "id: %d\nevent: record\ndata: %s\n\n", seq, line[:len(line)-1]); werr != nil {
				return
			}
			seq++
		}
		fl.Flush()
		if !more {
			break
		}
	}
	st, err := s.mgr.Status(id)
	if err != nil {
		return
	}
	data, err := json.Marshal(st)
	if err != nil {
		return
	}
	_, _ = fmt.Fprintf(w, "event: done\ndata: %s\n\n", data) // stream teardown; the client may already be gone
	fl.Flush()
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ok, err := s.mgr.Cancel(id)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "canceled": ok})
}
