package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/backend"
	"repro/internal/job"
)

func testSpec(seed int64) job.Spec {
	return job.Spec{
		Model: "mobilenet-v1", Tuner: "random", Device: "gtx1080ti", Ops: "conv",
		Seed: seed, Budget: 96, EarlyStop: -1, PlanSize: 8, Runs: 1,
		Workers: 1, TaskConcurrency: 1, BudgetPolicy: "uniform",
	}
}

// post submits one job and returns the response (body closed, decoded into
// errBody when non-2xx).
func post(t *testing.T, url, id string, spec job.Spec) *http.Response {
	t.Helper()
	body, err := json.Marshal(job.Submit{ID: id, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestSubmit429PastQueueCap is the HTTP face of admission control: once the
// pending queue is at -max-queue, POST /v1/jobs answers 429 Too Many
// Requests with a Retry-After hint and a JSON error body, and a retry after
// the queue drains succeeds.
func TestSubmit429PastQueueCap(t *testing.T) {
	store, err := job.OpenStore(filepath.Join(t.TempDir(), "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	mgr := job.NewManagerWith(store, job.ManagerOptions{Concurrency: 1, MaxQueue: 1})
	defer mgr.Close()
	srv := httptest.NewServer(New(mgr))
	defer srv.Close()

	// First job occupies the single worker, second fills the queue.
	resp := post(t, srv.URL, "run-1", testSpec(4001))
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first submit: %d, want 201", resp.StatusCode)
	}
	resp = post(t, srv.URL, "q-1", testSpec(4002))
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("queued submit: %d, want 201", resp.StatusCode)
	}

	resp = post(t, srv.URL, "q-2", testSpec(4003))
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit past cap: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 carried no Retry-After header")
	}
	var errBody struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil || errBody.Error == "" {
		t.Fatalf("429 body not a JSON error: err=%v body=%+v", err, errBody)
	}

	// Draining the queue (cancel the waiting job) makes room; the retried
	// submission is admitted — the 429 was back-pressure, not a ban.
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/q-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = del.Body.Close()
	if del.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued job: %d, want 200", del.StatusCode)
	}
	resp2 := post(t, srv.URL, "q-2", testSpec(4003))
	_ = resp2.Body.Close()
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("retry after drain: %d, want 201", resp2.StatusCode)
	}
}

// TestStatsEndpoint checks /v1/stats reports the shared cache truthfully in
// both configurations.
func TestStatsEndpoint(t *testing.T) {
	get := func(t *testing.T, url string) (enabled bool, stats backend.SharedCacheStats) {
		t.Helper()
		resp, err := http.Get(url + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		var body struct {
			Enabled bool                     `json:"shared_cache_enabled"`
			Cache   backend.SharedCacheStats `json:"shared_cache"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Enabled, body.Cache
	}

	store, err := job.OpenStore(filepath.Join(t.TempDir(), "a"))
	if err != nil {
		t.Fatal(err)
	}
	plain := job.NewManager(store, 1)
	defer plain.Close()
	srvPlain := httptest.NewServer(New(plain))
	defer srvPlain.Close()
	if enabled, _ := get(t, srvPlain.URL); enabled {
		t.Fatal("cache-less daemon reported shared_cache_enabled")
	}

	store2, err := job.OpenStore(filepath.Join(t.TempDir(), "b"))
	if err != nil {
		t.Fatal(err)
	}
	cached := job.NewManagerWith(store2, job.ManagerOptions{
		Concurrency: 1,
		Shared:      backend.NewSharedCache(0),
	})
	defer cached.Close()
	srvCached := httptest.NewServer(New(cached))
	defer srvCached.Close()
	enabled, stats := get(t, srvCached.URL)
	if !enabled {
		t.Fatal("cached daemon reported shared_cache_enabled=false")
	}
	if stats.Capacity != backend.DefaultSharedCacheCapacity {
		t.Fatalf("stats capacity %d, want default %d", stats.Capacity, backend.DefaultSharedCacheCapacity)
	}
}
