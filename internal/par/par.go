// Package par provides the tiny deterministic-parallelism primitives shared
// by the measurement engine, the active-learning core and the linear-algebra
// kernels: a bounded worker pool over an index range.
//
// The package enforces no determinism by itself; callers get bit-identical
// results for any worker count by following two rules that every user in
// this repository obeys:
//
//  1. the work function f(i) writes only to index-addressed slots (results[i],
//     matrix rows) and reads only immutable inputs, so no result depends on
//     scheduling order, and
//  2. any randomness f needs is drawn (or seeded) serially before the pool
//     starts, so the caller's RNG stream is identical to a serial run.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the default worker-pool size: GOMAXPROCS at call time.
func Workers() int { return runtime.GOMAXPROCS(0) }

// For runs f(0), f(1), ..., f(n-1) across at most workers goroutines and
// returns when all calls have finished. workers <= 1 (or n <= 1) degrades to
// a plain serial loop on the calling goroutine. Work is distributed by an
// atomic counter, so uneven per-index costs self-balance.
func For(n, workers int, f func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// ForContext is For with cooperative cancellation: each worker checks ctx
// before claiming the next index and stops dispatching once ctx is done,
// while every already-claimed index runs to completion (an in-flight
// measurement is never abandoned mid-call). Indices are claimed strictly in
// order with no gaps, so the executed calls are exactly f(0) .. f(k-1) for
// the returned k — the prefix property the cancellation-determinism
// guarantee of the tuning engine is built on. An undone ctx executes all n
// calls and returns n.
func ForContext(ctx context.Context, n, workers int, f func(i int)) int {
	if n <= 0 {
		return 0
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return i
			}
			f(i)
		}
		return n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
	claimed := int(next.Load())
	if claimed > n {
		claimed = n
	}
	return claimed
}
