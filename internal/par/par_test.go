package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 3, 8, 100} {
		const n = 257
		counts := make([]int32, n)
		For(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEmptyAndNegative(t *testing.T) {
	called := false
	For(0, 4, func(int) { called = true })
	For(-5, 4, func(int) { called = true })
	if called {
		t.Fatal("f called for empty range")
	}
}

func TestForIndexAddressedWritesAreDeterministic(t *testing.T) {
	// The usage contract: writes to out[i] only. Any worker count must
	// produce the identical slice.
	build := func(workers int) []int {
		out := make([]int, 1000)
		For(len(out), workers, func(i int) { out[i] = i * i })
		return out
	}
	ref := build(1)
	for _, w := range []int{2, 7, 16} {
		got := build(w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d differs at %d", w, i)
			}
		}
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
}
