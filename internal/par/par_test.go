package par

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 3, 8, 100} {
		const n = 257
		counts := make([]int32, n)
		For(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEmptyAndNegative(t *testing.T) {
	called := false
	For(0, 4, func(int) { called = true })
	For(-5, 4, func(int) { called = true })
	if called {
		t.Fatal("f called for empty range")
	}
}

func TestForIndexAddressedWritesAreDeterministic(t *testing.T) {
	// The usage contract: writes to out[i] only. Any worker count must
	// produce the identical slice.
	build := func(workers int) []int {
		out := make([]int, 1000)
		For(len(out), workers, func(i int) { out[i] = i * i })
		return out
	}
	ref := build(1)
	for _, w := range []int{2, 7, 16} {
		got := build(w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d differs at %d", w, i)
			}
		}
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
}

func TestForContextCompletesWithoutCancel(t *testing.T) {
	for _, workers := range []int{1, 4, 100} {
		const n = 123
		counts := make([]int32, n)
		k := ForContext(context.Background(), n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		if k != n {
			t.Fatalf("workers=%d: completed run returned %d, want %d", workers, k, n)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

// TestForContextExecutesExactPrefix is the cancellation contract the
// deterministic fold relies on: ForContext returns k such that exactly
// f(0)..f(k-1) ran — claimed indices are contiguous from zero, with no gaps
// and no execution past k.
func TestForContextExecutesExactPrefix(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		const n = 500
		ctx, cancel := context.WithCancel(context.Background())
		var executed [n]int32
		var calls atomic.Int32
		k := ForContext(ctx, n, workers, func(i int) {
			atomic.AddInt32(&executed[i], 1)
			if calls.Add(1) == 40 {
				cancel()
			}
		})
		cancel()
		if k >= n {
			t.Fatalf("workers=%d: cancellation did not shorten the run (k=%d)", workers, k)
		}
		for i := 0; i < k; i++ {
			if atomic.LoadInt32(&executed[i]) != 1 {
				t.Fatalf("workers=%d: index %d inside prefix executed %d times", workers, i, executed[i])
			}
		}
		for i := k; i < n; i++ {
			if atomic.LoadInt32(&executed[i]) != 0 {
				t.Fatalf("workers=%d: index %d beyond returned prefix %d executed", workers, i, k)
			}
		}
	}
}

func TestForContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	if k := ForContext(ctx, 10, 4, func(int) { called = true }); k != 0 {
		t.Fatalf("pre-cancelled run returned %d", k)
	}
	if called {
		t.Fatal("f called on a dead context")
	}
}
