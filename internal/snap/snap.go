// Package snap is the versioned checkpoint codec shared by the tuner,
// scheduler, and CLI layers.
//
// A checkpoint file is an append-only sequence of self-describing frames,
// one per line:
//
//	SNAP1 <kind> <len> <fnv64a> <payload>\n
//
// where <kind> is a caller-chosen token that names the payload schema and
// carries its own version (e.g. "sched-checkpoint/v1"), <len> is the
// payload length in bytes, <fnv64a> is the FNV-1a 64-bit checksum of the
// kind token followed by the payload in fixed-width hex, and <payload> is
// compact JSON. The magic
// "SNAP1" versions the framing itself; payload schemas version
// independently through their kind tokens.
//
// Determinism: Encode uses encoding/json, whose output is a pure function
// of the value (struct fields in declaration order, map keys sorted,
// floats in shortest round-trip form), so encode→decode→encode is
// byte-identical.
//
// Crash safety mirrors internal/record's contract: a write interrupted by
// a crash can tear only the final frame, so Read drops a defective final
// frame and returns the intact prefix, while a defect anywhere before the
// final frame means real corruption and fails with a *CorruptError
// (errors.Is(err, ErrCorrupt)). Appending a frame is a single Write of the
// full line.
package snap

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strconv"
	"strings"
)

// Magic identifies the framing version. A future incompatible framing
// bumps this token; readers reject unknown magics frame-by-frame.
const Magic = "SNAP1"

// ErrCorrupt is the sentinel wrapped by every *CorruptError.
var ErrCorrupt = errors.New("snap: corrupt checkpoint stream")

// CorruptError reports a defective frame that is not the final one (or a
// structurally invalid final frame when tolerance is off). Frame numbers
// are 1-based line numbers.
type CorruptError struct {
	Frame  int
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("snap: corrupt frame %d: %s", e.Frame, e.Reason)
}

func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// Frame is one decoded checkpoint entry.
type Frame struct {
	Kind    string
	Payload []byte
}

// Unmarshal decodes the frame payload into v.
func (f Frame) Unmarshal(v any) error {
	return json.Unmarshal(f.Payload, v)
}

// Encode renders one complete frame line (including the trailing newline)
// for the given kind and value. The kind must be a non-empty token with no
// spaces or newlines.
func Encode(kind string, v any) ([]byte, error) {
	if kind == "" || strings.ContainsAny(kind, " \n\r\t") {
		return nil, fmt.Errorf("snap: invalid frame kind %q", kind)
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("snap: encode %s: %w", kind, err)
	}
	if bytes.ContainsAny(payload, "\n\r") {
		// json.Marshal never emits raw newlines; guard the framing
		// invariant anyway in case v is a json.RawMessage.
		return nil, fmt.Errorf("snap: payload for %s contains newline", kind)
	}
	h := fnv.New64a()
	h.Write([]byte(kind)) //lint:ignore uncheckederr hash.Hash.Write never errors
	h.Write(payload)      //lint:ignore uncheckederr hash.Hash.Write never errors
	var buf bytes.Buffer
	buf.Grow(len(Magic) + len(kind) + len(payload) + 40)
	fmt.Fprintf(&buf, "%s %s %d %016x ", Magic, kind, len(payload), h.Sum64())
	buf.Write(payload)
	buf.WriteByte('\n')
	return buf.Bytes(), nil
}

// Append encodes the value and writes the frame to w as a single Write
// call, so a crash tears at most the final frame.
func Append(w io.Writer, kind string, v any) error {
	b, err := Encode(kind, v)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// parseFrame decodes one complete line (without its newline).
func parseFrame(line []byte) (Frame, error) {
	rest, ok := bytes.CutPrefix(line, []byte(Magic+" "))
	if !ok {
		return Frame{}, fmt.Errorf("missing %s magic", Magic)
	}
	kind, rest, ok := bytes.Cut(rest, []byte(" "))
	if !ok || len(kind) == 0 {
		return Frame{}, errors.New("missing frame kind")
	}
	lenField, rest, ok := bytes.Cut(rest, []byte(" "))
	if !ok {
		return Frame{}, errors.New("missing payload length")
	}
	n, err := strconv.Atoi(string(lenField))
	if err != nil || n < 0 {
		return Frame{}, fmt.Errorf("bad payload length %q", lenField)
	}
	sumField, payload, ok := bytes.Cut(rest, []byte(" "))
	if !ok {
		return Frame{}, errors.New("missing checksum")
	}
	want, err := strconv.ParseUint(string(sumField), 16, 64)
	if err != nil || len(sumField) != 16 {
		return Frame{}, fmt.Errorf("bad checksum field %q", sumField)
	}
	if len(payload) != n {
		return Frame{}, fmt.Errorf("payload length %d, header says %d", len(payload), n)
	}
	h := fnv.New64a()
	h.Write(kind)    //lint:ignore uncheckederr hash.Hash.Write never errors
	h.Write(payload) //lint:ignore uncheckederr hash.Hash.Write never errors
	if h.Sum64() != want {
		return Frame{}, errors.New("checksum mismatch")
	}
	if !json.Valid(payload) {
		return Frame{}, errors.New("payload is not valid JSON")
	}
	return Frame{Kind: string(kind), Payload: append([]byte(nil), payload...)}, nil
}

// Read decodes every intact frame from data. A defective final frame —
// torn mid-write, missing its newline, failing its checksum — is dropped
// and the intact prefix returned with a nil error. A defective frame
// followed by further data is corruption, not a crash artifact, and fails
// with a *CorruptError carrying the 1-based frame number. Read never
// panics on arbitrary input.
func Read(data []byte) ([]Frame, error) {
	var frames []Frame
	for lineNo := 1; len(data) > 0; lineNo++ {
		line, rest, complete := bytes.Cut(data, []byte("\n"))
		f, err := parseFrame(line)
		if err != nil {
			// Only the final line may be defective (torn tail). A
			// complete line followed by more data is mid-stream.
			if complete && len(rest) > 0 {
				return frames, &CorruptError{Frame: lineNo, Reason: err.Error()}
			}
			return frames, nil
		}
		frames = append(frames, f)
		data = rest
	}
	return frames, nil
}

// ReadFile reads and decodes a checkpoint file with Read's tolerance for
// a torn final frame.
func ReadFile(path string) ([]Frame, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Read(data)
}

// Last returns the payload of the latest frame with the given kind, or
// false if none exists.
func Last(frames []Frame, kind string) (Frame, bool) {
	for i := len(frames) - 1; i >= 0; i-- {
		if frames[i].Kind == kind {
			return frames[i], true
		}
	}
	return Frame{}, false
}
