package snap

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDetect(t *testing.T) {
	frame, err := Encode("detect-test/v1", map[string]int{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		want FileKind
	}{
		{"checkpoint", frame, KindSnap},
		{"record log", []byte(`{"task":"t","step":1}` + "\n"), KindRecords},
		{"empty", nil, KindEmpty},
		{"garbage", []byte("not a log\n"), KindUnknown},
		{"magic without space", []byte("SNAP1x rest"), KindUnknown},
		{"truncated magic", []byte("SNA"), KindUnknown},
		{"short json", []byte("{"), KindRecords},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeTemp(t, "f", tc.data)
			got, err := Detect(path)
			if err != nil {
				t.Fatalf("Detect: %v", err)
			}
			if got != tc.want {
				t.Fatalf("Detect = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestDetectMissingFile(t *testing.T) {
	if _, err := Detect(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Detect on a missing file returned nil error")
	}
}

func TestFileKindString(t *testing.T) {
	for k, want := range map[FileKind]string{
		KindEmpty:   "empty",
		KindSnap:    "checkpoint",
		KindRecords: "record log",
		KindUnknown: "unknown",
	} {
		if got := k.String(); got != want {
			t.Fatalf("FileKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
