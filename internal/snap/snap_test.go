package snap

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

type payload struct {
	Name  string    `json:"name"`
	Seed  int64     `json:"seed"`
	Vals  []float64 `json:"vals,omitempty"`
	Note  string    `json:"note,omitempty"`
	Valid bool      `json:"valid"`
}

func sample() []payload {
	return []payload{
		{Name: "a", Seed: 17, Vals: []float64{1.5, 0.1, -3.25e-17}, Valid: true},
		{Name: "b with spaces", Seed: -1, Note: "newline \n tab \t quote \""},
		{Name: "c", Seed: 1 << 62},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	for i, p := range sample() {
		kind := "test/v1"
		if i == 2 {
			kind = "other/v2"
		}
		if err := Append(&buf, kind, p); err != nil {
			t.Fatal(err)
		}
	}
	frames, err := Read(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("got %d frames, want 3", len(frames))
	}
	for i, f := range frames {
		var got payload
		if err := f.Unmarshal(&got); err != nil {
			t.Fatal(err)
		}
		want := sample()[i]
		if got.Name != want.Name || got.Seed != want.Seed || got.Note != want.Note || got.Valid != want.Valid {
			t.Fatalf("frame %d: %+v != %+v", i, got, want)
		}
		for j := range want.Vals {
			if got.Vals[j] != want.Vals[j] {
				t.Fatalf("frame %d val %d: %v != %v", i, j, got.Vals[j], want.Vals[j])
			}
		}
	}
	if f, ok := Last(frames, "test/v1"); !ok || f.Kind != "test/v1" {
		t.Fatalf("Last(test/v1) = %+v, %v", f, ok)
	}
	if _, ok := Last(frames, "missing"); ok {
		t.Fatal("Last found a frame for an unknown kind")
	}
}

// Encoding the decoded payload again must reproduce the original frame
// bytes exactly — the codec is deterministic.
func TestSnapshotEncodeDecodeEncodeByteIdentical(t *testing.T) {
	first, err := Encode("rt/v1", sample()[0])
	if err != nil {
		t.Fatal(err)
	}
	frames, err := Read(first)
	if err != nil || len(frames) != 1 {
		t.Fatalf("Read: %v (%d frames)", err, len(frames))
	}
	var p payload
	if err := frames[0].Unmarshal(&p); err != nil {
		t.Fatal(err)
	}
	second, err := Encode("rt/v1", p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("re-encode differs:\n%q\n%q", first, second)
	}
}

// A torn final frame — any strict prefix of the last line — must be
// dropped silently; every complete frame before it survives.
func TestSnapshotTornTailDropped(t *testing.T) {
	var buf bytes.Buffer
	for _, p := range sample() {
		if err := Append(&buf, "test/v1", p); err != nil {
			t.Fatal(err)
		}
	}
	full := buf.Bytes()
	lines := bytes.SplitAfter(full, []byte("\n"))
	prefixLen := len(lines[0]) + len(lines[1])
	for cut := prefixLen; cut < len(full); cut++ {
		frames, err := Read(full[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// Cutting only the trailing newline leaves a complete,
		// newline-less final frame, which must still parse — the same
		// guarantee record.Read gives its final line.
		want := 2
		if cut == len(full)-1 {
			want = 3
		}
		if len(frames) != want {
			t.Fatalf("cut %d: got %d frames, want %d", cut, len(frames), want)
		}
	}
	// The complete file parses all three.
	if frames, err := Read(full); err != nil || len(frames) != 3 {
		t.Fatalf("full: %v (%d frames)", err, len(frames))
	}
}

// Corruption before the final frame is not a crash artifact and must fail
// with the typed error.
func TestSnapshotMidStreamCorruptionTyped(t *testing.T) {
	var buf bytes.Buffer
	for _, p := range sample() {
		if err := Append(&buf, "test/v1", p); err != nil {
			t.Fatal(err)
		}
	}
	data := append([]byte(nil), buf.Bytes()...)
	data[10] ^= 0xff // inside the first frame
	frames, err := Read(data)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Frame != 1 {
		t.Fatalf("corrupt error = %#v", err)
	}
	if len(frames) != 0 {
		t.Fatalf("frames before corruption = %d, want 0", len(frames))
	}
}

func TestEncodeRejectsBadKinds(t *testing.T) {
	for _, kind := range []string{"", "two words", "new\nline", "tab\tbed"} {
		if _, err := Encode(kind, 1); err == nil {
			t.Fatalf("Encode(%q) accepted", kind)
		}
	}
	if _, err := Encode("chan/v1", make(chan int)); err == nil {
		t.Fatal("Encode accepted an unmarshalable value")
	}
}

func TestReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Append(f, "test/v1", sample()[0]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	frames, err := ReadFile(path)
	if err != nil || len(frames) != 1 {
		t.Fatalf("ReadFile: %v (%d frames)", err, len(frames))
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("ReadFile on a missing path succeeded")
	}
}

// Arbitrary bytes never panic Read and either parse cleanly or fail with
// the typed corruption error; valid frames re-encode byte-identically.
func FuzzReadArbitrary(f *testing.F) {
	seedFrame, _ := Encode("fuzz/v1", sample()[0])
	f.Add(seedFrame)
	f.Add([]byte("SNAP1 "))
	f.Add([]byte("SNAP1 k 3 0000000000000000 {}\n"))
	f.Add(append(append([]byte{}, seedFrame...), seedFrame...))
	f.Fuzz(func(t *testing.T, data []byte) {
		frames, err := Read(data)
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("non-typed error: %v", err)
		}
		for _, fr := range frames {
			var v any
			if err := fr.Unmarshal(&v); err != nil {
				t.Fatalf("intact frame fails to unmarshal: %v", err)
			}
		}
	})
}
