package snap

import (
	"errors"
	"io"
	"os"
)

// FileKind classifies what a resumable file path holds, so callers that
// accept "a record log or a checkpoint file" through one flag (cmd/tune's
// -resume, the job store's recovery scan) can branch without duplicating
// the magic sniffing.
type FileKind int

const (
	// KindEmpty: the file exists but holds no bytes. Callers usually treat
	// it as a record log with zero records.
	KindEmpty FileKind = iota
	// KindSnap: the file starts with the SNAP1 frame magic — a checkpoint
	// stream for ReadFile.
	KindSnap
	// KindRecords: the file starts with a JSON object line — a record log
	// for record.Read.
	KindRecords
	// KindUnknown: neither framing; the payload is garbage for both
	// readers and callers should fail loudly.
	KindUnknown
)

// String names the kind for error messages.
func (k FileKind) String() string {
	switch k {
	case KindEmpty:
		return "empty"
	case KindSnap:
		return "checkpoint"
	case KindRecords:
		return "record log"
	default:
		return "unknown"
	}
}

// Detect sniffs the first bytes of path and classifies the file. It reads
// at most one header's worth of bytes: the SNAP1 magic followed by a space
// marks a checkpoint stream, a leading '{' marks a JSON-lines record log,
// an empty file is KindEmpty, and anything else is KindUnknown. Detect
// never parses further — a KindSnap file may still fail ReadFile, which is
// where corruption is diagnosed.
func Detect(path string) (FileKind, error) {
	f, err := os.Open(path)
	if err != nil {
		return KindUnknown, err
	}
	// Read-only open: a close failure cannot corrupt anything the sniff
	// reports, so the error is deliberately dropped.
	defer func() { _ = f.Close() }()
	buf := make([]byte, len(Magic)+1)
	n, err := io.ReadFull(f, buf)
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		return KindUnknown, err
	}
	buf = buf[:n]
	if len(buf) == 0 {
		return KindEmpty, nil
	}
	if string(buf) == Magic+" " {
		return KindSnap, nil
	}
	if buf[0] == '{' {
		return KindRecords, nil
	}
	return KindUnknown, nil
}
