package tensor

import (
	"testing"
	"testing/quick"
)

func TestDTypeSize(t *testing.T) {
	cases := []struct {
		dt   DType
		want int
	}{
		{Float32, 4}, {Float16, 2}, {Int32, 4}, {Int8, 1}, {DType(99), 4},
	}
	for _, c := range cases {
		if got := c.dt.Size(); got != c.want {
			t.Errorf("%v.Size() = %d, want %d", c.dt, got, c.want)
		}
	}
}

func TestDTypeString(t *testing.T) {
	if Float32.String() != "float32" {
		t.Errorf("Float32.String() = %q", Float32.String())
	}
	if Int8.String() != "int8" {
		t.Errorf("Int8.String() = %q", Int8.String())
	}
	if DType(42).String() == "" {
		t.Error("unknown dtype should still stringify")
	}
}

func TestShapeBasics(t *testing.T) {
	s := NewShape(1, 3, 224, 224)
	if s.Rank() != 4 {
		t.Fatalf("Rank = %d, want 4", s.Rank())
	}
	if s.Elems() != 1*3*224*224 {
		t.Fatalf("Elems = %d", s.Elems())
	}
	if s.Bytes(Float32) != s.Elems()*4 {
		t.Fatalf("Bytes = %d", s.Bytes(Float32))
	}
	if !s.Valid() {
		t.Fatal("shape should be valid")
	}
	if NewShape(1, 0, 2).Valid() {
		t.Fatal("zero dim should be invalid")
	}
	if s.String() != "(1, 3, 224, 224)" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestShapeEqualClone(t *testing.T) {
	s := NewShape(2, 3)
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone should equal original")
	}
	c[0] = 7
	if s.Equal(c) {
		t.Fatal("mutated clone should differ")
	}
	if s.Equal(NewShape(2, 3, 4)) {
		t.Fatal("different rank should not be equal")
	}
}

func TestScalarShape(t *testing.T) {
	var s Shape
	if s.Elems() != 1 {
		t.Fatalf("scalar Elems = %d, want 1", s.Elems())
	}
	if s.Rank() != 0 {
		t.Fatalf("scalar Rank = %d", s.Rank())
	}
}

func TestConvOutDim(t *testing.T) {
	cases := []struct {
		in, k, s, p, want int
	}{
		{224, 3, 1, 1, 224},
		{224, 3, 2, 1, 112},
		{224, 7, 2, 3, 112},
		{224, 11, 4, 2, 55},
		{5, 7, 1, 0, 0},  // window does not fit
		{10, 3, 0, 0, 0}, // zero stride guarded
	}
	for _, c := range cases {
		if got := ConvOutDim(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("ConvOutDim(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}

func TestPoolOutDimCeilMode(t *testing.T) {
	// SqueezeNet-v1.1 pool: 111 input, 3x3 stride 2, pad 0, ceil mode -> 55 floor, 56 ceil.
	if got := PoolOutDim(111, 3, 2, 0, false); got != 55 {
		t.Errorf("floor pool = %d, want 55", got)
	}
	if got := PoolOutDim(111, 3, 2, 0, true); got != 55 {
		t.Errorf("ceil pool on exact = %d, want 55", got)
	}
	if got := PoolOutDim(112, 3, 2, 0, true); got != 56 {
		t.Errorf("ceil pool = %d, want 56", got)
	}
	if got := PoolOutDim(112, 3, 2, 0, false); got != 55 {
		t.Errorf("floor pool = %d, want 55", got)
	}
	if got := PoolOutDim(2, 3, 2, 0, true); got != 0 {
		t.Errorf("non-fitting pool = %d, want 0", got)
	}
}

func TestConv2DWorkload(t *testing.T) {
	w := Conv2D(1, 3, 224, 224, 64, 3, 1, 1)
	if err := w.Valid(); err != nil {
		t.Fatalf("Valid: %v", err)
	}
	if w.OutH() != 224 || w.OutW() != 224 {
		t.Fatalf("out dims = %dx%d", w.OutH(), w.OutW())
	}
	want := 2 * int64(64) * 224 * 224 * 3 * 3 * 3
	if w.FLOPs() != want {
		t.Fatalf("FLOPs = %d, want %d", w.FLOPs(), want)
	}
	if !w.OutShape().Equal(NewShape(1, 64, 224, 224)) {
		t.Fatalf("OutShape = %v", w.OutShape())
	}
}

func TestDepthwiseWorkload(t *testing.T) {
	w := DepthwiseConv2D(1, 32, 112, 112, 3, 1, 1)
	if err := w.Valid(); err != nil {
		t.Fatalf("Valid: %v", err)
	}
	want := 2 * int64(32) * 112 * 112 * 3 * 3
	if w.FLOPs() != want {
		t.Fatalf("FLOPs = %d, want %d", w.FLOPs(), want)
	}
	bad := w
	bad.F = 64
	if bad.Valid() == nil {
		t.Fatal("depthwise with F != C should be invalid")
	}
}

func TestDenseWorkload(t *testing.T) {
	w := Dense(1, 4096, 1000)
	if err := w.Valid(); err != nil {
		t.Fatalf("Valid: %v", err)
	}
	if w.FLOPs() != 2*4096*1000 {
		t.Fatalf("FLOPs = %d", w.FLOPs())
	}
	if w.OutH() != 1 || w.OutW() != 1 {
		t.Fatalf("dense out dims = %dx%d", w.OutH(), w.OutW())
	}
	if !w.OutShape().Equal(NewShape(1, 1000)) {
		t.Fatalf("OutShape = %v", w.OutShape())
	}
}

func TestWorkloadInvalid(t *testing.T) {
	bad := Conv2D(1, 3, 5, 5, 8, 7, 1, 0) // kernel larger than padded input
	if bad.Valid() == nil {
		t.Fatal("empty-output conv should be invalid")
	}
	neg := Conv2D(0, 3, 5, 5, 8, 3, 1, 1)
	if neg.Valid() == nil {
		t.Fatal("zero batch should be invalid")
	}
	unk := Workload{Op: OpKind(77), N: 1, C: 1, F: 1}
	if unk.Valid() == nil {
		t.Fatal("unknown op should be invalid")
	}
}

func TestWorkloadKeyIdentity(t *testing.T) {
	a := Conv2D(1, 64, 56, 56, 64, 3, 1, 1)
	b := Conv2D(1, 64, 56, 56, 64, 3, 1, 1)
	c := Conv2D(1, 64, 56, 56, 64, 3, 2, 1)
	if a.Key() != b.Key() {
		t.Fatal("identical workloads must share a key")
	}
	if a.Key() == c.Key() {
		t.Fatal("different stride must change the key")
	}
	d1 := Dense(1, 512, 1000)
	d2 := Dense(1, 512, 512)
	if d1.Key() == d2.Key() {
		t.Fatal("dense keys must distinguish output dims")
	}
}

func TestArithmeticIntensity(t *testing.T) {
	// A big conv has high intensity; a dense (GEMV) is memory bound.
	conv := Conv2D(1, 256, 56, 56, 256, 3, 1, 1)
	fc := Dense(1, 4096, 4096)
	if conv.ArithmeticIntensity() <= fc.ArithmeticIntensity() {
		t.Fatalf("conv intensity %.2f should exceed dense %.2f",
			conv.ArithmeticIntensity(), fc.ArithmeticIntensity())
	}
	if fc.ArithmeticIntensity() <= 0 {
		t.Fatal("intensity must be positive")
	}
}

func TestOpKindString(t *testing.T) {
	if OpConv2D.String() != "conv2d" || OpDepthwiseConv2D.String() != "depthwise_conv2d" || OpDense.String() != "dense" {
		t.Fatal("op kind strings wrong")
	}
	if OpKind(9).String() == "" {
		t.Fatal("unknown op kind should stringify")
	}
}

// Property: ConvOutDim is monotone non-decreasing in input size and the
// output never exceeds the padded input extent.
func TestConvOutDimProperties(t *testing.T) {
	f := func(in, k, s, p uint8) bool {
		i, kk, ss, pp := int(in)+1, int(k%7)+1, int(s%4)+1, int(p%4)
		out := ConvOutDim(i, kk, ss, pp)
		outNext := ConvOutDim(i+1, kk, ss, pp)
		if outNext < out {
			return false
		}
		return out <= i+2*pp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: FLOPs scale linearly with batch size.
func TestFLOPsBatchLinearity(t *testing.T) {
	f := func(n uint8) bool {
		b := int(n%8) + 1
		w1 := Conv2D(1, 16, 28, 28, 32, 3, 1, 1)
		wb := Conv2D(b, 16, 28, 28, 32, 3, 1, 1)
		return wb.FLOPs() == int64(b)*w1.FLOPs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
