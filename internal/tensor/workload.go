package tensor

import "fmt"

// OpKind identifies the operator class of a tunable workload.
type OpKind int

// Tunable operator classes. These are the node kinds that AutoTVM-style
// template tuning targets on CUDA backends.
const (
	OpConv2D OpKind = iota
	OpDepthwiseConv2D
	OpDense
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpConv2D:
		return "conv2d"
	case OpDepthwiseConv2D:
		return "depthwise_conv2d"
	case OpDense:
		return "dense"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Workload is the canonical description of one tunable computation: the
// paper's "node" (layer). Two layers with an identical Workload share one
// tuning task. Fields unused by an OpKind are zero.
//
// Conventions (NCHW):
//   - Conv2D: In (N, C, H, W), Kernel (F, C, KH, KW), stride S, padding P.
//   - DepthwiseConv2D: In (N, C, H, W), Kernel (C, 1, KH, KW); F == C.
//   - Dense: In (N, CIn), weight (COut, CIn); H/W/KH/KW are zero.
type Workload struct {
	Op     OpKind
	N      int // batch size
	C      int // input channels (CIn for dense)
	H, W   int // input spatial extents
	F      int // output channels (COut for dense)
	KH, KW int // kernel extents
	SH, SW int // strides
	PH, PW int // paddings
	DType  DType
}

// Conv2D builds a square-stride, square-pad conv2d workload.
func Conv2D(n, c, h, w, f, k, stride, pad int) Workload {
	return Workload{
		Op: OpConv2D, N: n, C: c, H: h, W: w, F: f,
		KH: k, KW: k, SH: stride, SW: stride, PH: pad, PW: pad,
		DType: Float32,
	}
}

// DepthwiseConv2D builds a depthwise conv workload (channel multiplier 1).
func DepthwiseConv2D(n, c, h, w, k, stride, pad int) Workload {
	return Workload{
		Op: OpDepthwiseConv2D, N: n, C: c, H: h, W: w, F: c,
		KH: k, KW: k, SH: stride, SW: stride, PH: pad, PW: pad,
		DType: Float32,
	}
}

// Dense builds a fully-connected workload computing (N, CIn) x (COut, CIn)^T.
func Dense(n, cin, cout int) Workload {
	return Workload{Op: OpDense, N: n, C: cin, F: cout, DType: Float32}
}

// OutH returns the output height (1 for dense).
func (w Workload) OutH() int {
	if w.Op == OpDense {
		return 1
	}
	return ConvOutDim(w.H, w.KH, w.SH, w.PH)
}

// OutW returns the output width (1 for dense).
func (w Workload) OutW() int {
	if w.Op == OpDense {
		return 1
	}
	return ConvOutDim(w.W, w.KW, w.SW, w.PW)
}

// OutShape returns the NCHW output shape ((N, F) for dense).
func (w Workload) OutShape() Shape {
	if w.Op == OpDense {
		return NewShape(w.N, w.F)
	}
	return NewShape(w.N, w.F, w.OutH(), w.OutW())
}

// FLOPs returns the number of floating-point operations (multiply and add
// counted separately, the GFLOPS convention AutoTVM reports).
func (w Workload) FLOPs() int64 {
	switch w.Op {
	case OpConv2D:
		return 2 * int64(w.N) * int64(w.F) * int64(w.OutH()) * int64(w.OutW()) *
			int64(w.C) * int64(w.KH) * int64(w.KW)
	case OpDepthwiseConv2D:
		return 2 * int64(w.N) * int64(w.C) * int64(w.OutH()) * int64(w.OutW()) *
			int64(w.KH) * int64(w.KW)
	case OpDense:
		return 2 * int64(w.N) * int64(w.F) * int64(w.C)
	default:
		return 0
	}
}

// InputBytes returns the minimum unique bytes read (input + weights).
func (w Workload) InputBytes() int64 {
	es := int64(w.DType.Size())
	switch w.Op {
	case OpConv2D:
		in := int64(w.N) * int64(w.C) * int64(w.H) * int64(w.W)
		wt := int64(w.F) * int64(w.C) * int64(w.KH) * int64(w.KW)
		return (in + wt) * es
	case OpDepthwiseConv2D:
		in := int64(w.N) * int64(w.C) * int64(w.H) * int64(w.W)
		wt := int64(w.C) * int64(w.KH) * int64(w.KW)
		return (in + wt) * es
	case OpDense:
		return (int64(w.N)*int64(w.C) + int64(w.F)*int64(w.C)) * es
	default:
		return 0
	}
}

// OutputBytes returns the bytes written by the operator.
func (w Workload) OutputBytes() int64 { return w.OutShape().Bytes(w.DType) }

// ArithmeticIntensity returns FLOPs per byte of compulsory traffic; the
// roofline abscissa.
func (w Workload) ArithmeticIntensity() float64 {
	b := w.InputBytes() + w.OutputBytes()
	if b == 0 {
		return 0
	}
	return float64(w.FLOPs()) / float64(b)
}

// Valid performs basic sanity checks on the workload dimensions.
func (w Workload) Valid() error {
	if w.N <= 0 || w.C <= 0 || w.F <= 0 {
		return fmt.Errorf("tensor: workload %v has non-positive N/C/F", w)
	}
	switch w.Op {
	case OpConv2D, OpDepthwiseConv2D:
		if w.H <= 0 || w.W <= 0 || w.KH <= 0 || w.KW <= 0 || w.SH <= 0 || w.SW <= 0 {
			return fmt.Errorf("tensor: workload %v has non-positive spatial dims", w)
		}
		if w.OutH() <= 0 || w.OutW() <= 0 {
			return fmt.Errorf("tensor: workload %v produces empty output", w)
		}
		if w.Op == OpDepthwiseConv2D && w.F != w.C {
			return fmt.Errorf("tensor: depthwise workload must have F == C, got %v", w)
		}
	case OpDense:
		// nothing further
	default:
		return fmt.Errorf("tensor: unknown op kind %d", int(w.Op))
	}
	return nil
}

// Key returns a canonical string identity used for task de-duplication and
// record logging. Identical workloads produce identical keys.
func (w Workload) Key() string {
	switch w.Op {
	case OpDense:
		return fmt.Sprintf("dense_n%d_ci%d_co%d_%s", w.N, w.C, w.F, w.DType)
	default:
		return fmt.Sprintf("%s_n%d_c%d_h%d_w%d_f%d_k%dx%d_s%dx%d_p%dx%d_%s",
			w.Op, w.N, w.C, w.H, w.W, w.F, w.KH, w.KW, w.SH, w.SW, w.PH, w.PW, w.DType)
	}
}

// String implements fmt.Stringer.
func (w Workload) String() string { return w.Key() }
