// Package tensor provides shape and data-type primitives plus arithmetic
// accounting (FLOPs, bytes) for the operator workloads used throughout the
// auto-tuning stack. It deliberately contains no numeric tensor data: the
// tuner only ever needs shapes and cost accounting, never values.
package tensor

import (
	"fmt"
	"strings"
)

// DType identifies an element data type.
type DType int

// Supported element types.
const (
	Float32 DType = iota
	Float16
	Int32
	Int8
)

// Size returns the size of one element in bytes.
func (d DType) Size() int {
	switch d {
	case Float32, Int32:
		return 4
	case Float16:
		return 2
	case Int8:
		return 1
	default:
		return 4
	}
}

// String implements fmt.Stringer.
func (d DType) String() string {
	switch d {
	case Float32:
		return "float32"
	case Float16:
		return "float16"
	case Int32:
		return "int32"
	case Int8:
		return "int8"
	default:
		return fmt.Sprintf("dtype(%d)", int(d))
	}
}

// Shape is an immutable-by-convention tensor shape in NCHW-style layouts.
// A nil Shape is the shape of a scalar.
type Shape []int

// NewShape copies dims into a fresh Shape.
func NewShape(dims ...int) Shape {
	s := make(Shape, len(dims))
	copy(s, dims)
	return s
}

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// Elems returns the total number of elements, 1 for a scalar shape.
func (s Shape) Elems() int64 {
	n := int64(1)
	for _, d := range s {
		n *= int64(d)
	}
	return n
}

// Bytes returns the storage footprint of the shape at the given dtype.
func (s Shape) Bytes(dt DType) int64 { return s.Elems() * int64(dt.Size()) }

// Equal reports whether s and t have identical rank and dims.
func (s Shape) Equal(t Shape) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape {
	t := make(Shape, len(s))
	copy(t, s)
	return t
}

// Valid reports whether every dimension is positive.
func (s Shape) Valid() bool {
	for _, d := range s {
		if d <= 0 {
			return false
		}
	}
	return true
}

// String renders the shape as "(n, c, h, w)".
func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// ConvOutDim computes the output spatial extent of a convolution-style
// sliding window: floor((in + 2*pad - kernel)/stride) + 1. It returns 0 when
// the window does not fit.
func ConvOutDim(in, kernel, stride, pad int) int {
	if stride <= 0 {
		return 0
	}
	span := in + 2*pad - kernel
	if span < 0 {
		return 0
	}
	return span/stride + 1
}

// PoolOutDim computes the output extent of a pooling window with optional
// ceil-mode rounding (as used by SqueezeNet-v1.1's first max-pool).
func PoolOutDim(in, kernel, stride, pad int, ceilMode bool) int {
	if stride <= 0 {
		return 0
	}
	span := in + 2*pad - kernel
	if span < 0 {
		return 0
	}
	if ceilMode {
		return (span+stride-1)/stride + 1
	}
	return span/stride + 1
}
