package core

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/hwsim"
	"repro/internal/tuner"
)

func TestBreakdown(t *testing.T) {
	b := testBackend(t, 21)
	dep, err := OptimizeGraph(context.Background(), tinyGraph(), tuner.RandomTuner{}, b, quickPipelineOpts(20))
	if err != nil {
		t.Fatal(err)
	}
	shares, err := dep.Breakdown(b.(*backend.Sim).Simulator().Estimator())
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != len(dep.Tasks) {
		t.Fatalf("shares = %d, tasks = %d", len(shares), len(dep.Tasks))
	}
	total := 0.0
	for i, s := range shares {
		if s.TotalMS != s.KernelMS*float64(s.Count) {
			t.Fatalf("total mismatch in %s", s.Task)
		}
		if i > 0 && s.TotalMS > shares[i-1].TotalMS {
			t.Fatal("shares not sorted descending")
		}
		total += s.SharePct
	}
	if math.Abs(total-100) > 1e-9 {
		t.Fatalf("shares sum to %v", total)
	}
	var buf bytes.Buffer
	PrintBreakdown(&buf, shares)
	if !strings.Contains(buf.String(), "share%") {
		t.Fatal("print header missing")
	}
}

func TestBreakdownRejectsNotFound(t *testing.T) {
	d := &Deployment{Tasks: []TaskOutcome{{Task: &tuner.Task{Name: "x"}, Result: tuner.Result{Found: false}}}}
	if _, err := d.Breakdown(hwsim.Estimator{Dev: hwsim.GTX1080Ti()}); err == nil {
		t.Fatal("missing config should error")
	}
}
