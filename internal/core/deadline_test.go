package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/hwsim"
	"repro/internal/record"
	"repro/internal/space"
	"repro/internal/tensor"
	"repro/internal/tuner"
)

// slowBackend delays every measurement so deadline and cancellation tests
// have wall-clock behaviour to race against.
type slowBackend struct {
	inner backend.Backend
	delay time.Duration
}

func (s slowBackend) Name() string { return "slow(" + s.inner.Name() + ")" }

func (s slowBackend) Seeded() bool { return s.inner.Seeded() }

func (s slowBackend) Measure(w tensor.Workload, c space.Config) hwsim.Measurement {
	time.Sleep(s.delay)
	return s.inner.Measure(w, c)
}

func (s slowBackend) MeasureSeeded(w tensor.Workload, c space.Config, noiseSeed int64) hwsim.Measurement {
	time.Sleep(s.delay)
	return s.inner.MeasureSeeded(w, c, noiseSeed)
}

func (s slowBackend) NetworkLatency(deps []hwsim.Deployment, runs int) (float64, float64, error) {
	return s.inner.NetworkLatency(deps, runs)
}

// TestTaskDeadlineDeploysBestFound: a per-task deadline ends each task's
// search early but the pipeline still completes, deploying the best each
// truncated search found.
func TestTaskDeadlineDeploysBestFound(t *testing.T) {
	slow := slowBackend{inner: testBackend(t, 41), delay: time.Millisecond}
	opts := quickPipelineOpts(4096) // far more than the deadline allows
	opts.TaskDeadline = 60 * time.Millisecond
	dep, err := OptimizeGraph(context.Background(), tinyGraph(), tuner.RandomTuner{}, slow, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range dep.Tasks {
		if !task.Result.Found {
			t.Fatalf("task %s deployed nothing", task.Task.Name)
		}
		if task.Result.Measurements >= opts.Tuning.Budget {
			t.Fatalf("task %s exhausted the budget despite the deadline", task.Task.Name)
		}
	}
	if dep.LatencyMS <= 0 {
		t.Fatal("no end-to-end latency")
	}
}

// TestParentCancellationAbortsPipeline: cancelling the caller's ctx mid-run
// aborts the whole pipeline with an error wrapping context.Canceled, unlike
// a per-task deadline.
func TestParentCancellationAbortsPipeline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	opts := quickPipelineOpts(4096)
	n := 0
	opts.OnRecord = func(record.Record) {
		n++
		if n == 10 {
			cancel()
		}
	}
	slow := slowBackend{inner: testBackend(t, 43), delay: 100 * time.Microsecond}
	_, err := OptimizeGraph(ctx, tinyGraph(), tuner.RandomTuner{}, slow, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestOnRecordStreamsEveryMeasurement: the OnRecord hook sees exactly the
// measurements the deployment accounts for, as they happen.
func TestOnRecordStreamsEveryMeasurement(t *testing.T) {
	var recs []record.Record
	opts := quickPipelineOpts(12)
	opts.OnRecord = func(r record.Record) { recs = append(recs, r) }
	dep, err := OptimizeGraph(context.Background(), tinyGraph(), tuner.RandomTuner{}, testBackend(t, 44), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != dep.TotalMeasurements {
		t.Fatalf("streamed %d records, deployment accounts %d", len(recs), dep.TotalMeasurements)
	}
	for i, r := range recs {
		if r.Step <= 0 || r.Task == "" || r.Tuner == "" {
			t.Fatalf("record %d incomplete: %+v", i, r)
		}
	}
}
