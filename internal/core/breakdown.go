package core

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/hwsim"
	"repro/internal/space"
)

// NodeShare is one task's contribution to end-to-end latency.
type NodeShare struct {
	Task     string
	Count    int     // kernels sharing the task
	KernelMS float64 // modeled single-kernel time
	TotalMS  float64 // KernelMS * Count
	SharePct float64 // of the model's kernel time
	GFLOPS   float64 // achieved throughput of the deployed config
}

// Breakdown computes the per-task latency decomposition of a deployment
// using the simulator's noiseless model, sorted by descending share.
func (d *Deployment) Breakdown(est hwsim.Estimator) ([]NodeShare, error) {
	shares := make([]NodeShare, 0, len(d.Tasks))
	total := 0.0
	for _, t := range d.Tasks {
		if !t.Result.Found {
			return nil, fmt.Errorf("core: task %s has no deployable config", t.Task.Name)
		}
		e := est.Estimate(t.Task.Workload, deployedOf(t))
		if !e.Valid {
			return nil, fmt.Errorf("core: deployed config of %s infeasible: %s", t.Task.Name, e.Reason)
		}
		s := NodeShare{
			Task:     t.Task.Name,
			Count:    t.Task.Count,
			KernelMS: e.TimeMS,
			TotalMS:  e.TimeMS * float64(t.Task.Count),
			GFLOPS:   e.GFLOPS,
		}
		total += s.TotalMS
		shares = append(shares, s)
	}
	for i := range shares {
		if total > 0 {
			shares[i].SharePct = 100 * shares[i].TotalMS / total
		}
	}
	sort.Slice(shares, func(i, j int) bool { return shares[i].TotalMS > shares[j].TotalMS })
	return shares, nil
}

// PrintBreakdown renders the decomposition as a table. Writes are buffered
// and the first write error is returned from the final flush.
func PrintBreakdown(w io.Writer, shares []NodeShare) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%-24s %6s %12s %12s %8s %10s\n",
		"task", "count", "kernel(ms)", "total(ms)", "share%", "GFLOPS")
	for _, s := range shares {
		fmt.Fprintf(bw, "%-24s %6d %12.5f %12.5f %8.2f %10.1f\n",
			s.Task, s.Count, s.KernelMS, s.TotalMS, s.SharePct, s.GFLOPS)
	}
	return bw.Flush()
}

// deployedOf returns the deployed config, falling back to the tuner's best
// for outcomes built without the pipeline (e.g. in tests).
func deployedOf(t TaskOutcome) space.Config {
	if t.Deployed.Index != nil {
		return t.Deployed
	}
	return t.Result.Best.Config
}
