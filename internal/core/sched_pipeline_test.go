package core

import (
	"context"
	"hash/fnv"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/tuner"
)

// goldenPipelineHash is the FNV-1a digest of the full goldentiny deployment
// (per-task deployed config + sample stream, then latency and variance)
// captured from the pre-refactor sequential pipeline. The scheduler-backed
// pipeline must keep reproducing it bit-for-bit at TaskConcurrency 1 with
// the uniform policy.
const (
	goldenPipelineHash = uint64(0x03394bcca7e4d0c2)
	goldenPipelineMeas = 120
)

// goldenGraph is the goldentiny capture graph (same topology as tinyGraph,
// pinned here under its capture name so the golden settings are self-contained).
func goldenGraph() *graph.Graph {
	b := graph.NewBuilder("goldentiny")
	x := b.Input("data", 1, 3, 32, 32)
	x = b.ReLU("relu1", b.Conv("conv1", x, 16, 3, 1, 1))
	x = b.ReLU("relu2", b.DepthwiseConv("dw", x, 3, 1, 1))
	x = b.MaxPool("pool", x, 2, 2, 0, false)
	x = b.Flatten("flat", x)
	x = b.Dense("fc", x, 10)
	return b.Finish(b.Softmax("prob", x))
}

func goldenPipelineOpts() PipelineOptions {
	return PipelineOptions{
		Tuning:      tuner.Options{Budget: 40, EarlyStop: -1, PlanSize: 8, Seed: 31, Workers: 1},
		Extract:     graph.AllOps,
		UseTransfer: true,
		Runs:        100,
	}
}

// deploymentHash digests everything observable about a deployment: each
// task's deployed configuration and the FNV digest of its full sample
// stream, then the latency statistics. The nesting (a digest of per-task
// stream digests) matches the pre-refactor capture that produced
// goldenPipelineHash.
func deploymentHash(dep *Deployment) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf)
	}
	for _, t := range dep.Tasks {
		put(t.Deployed.Flat())
		put(resultStreamHash(t.Result))
	}
	put(math.Float64bits(dep.LatencyMS))
	put(math.Float64bits(dep.Variance))
	return h.Sum64()
}

// resultStreamHash is the FNV-1a digest of one task's sample stream
// (config, GFLOPS bits, validity — in measurement order).
func resultStreamHash(res tuner.Result) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf)
	}
	for _, s := range res.Samples {
		put(s.Config.Flat())
		put(math.Float64bits(s.GFLOPS))
		if s.Valid {
			put(1)
		} else {
			put(0)
		}
	}
	return h.Sum64()
}

// TestPipelineGolden pins the pre-refactor pipeline output: the scheduler
// path at concurrency 1 + uniform policy is the legacy sequential pipeline.
func TestPipelineGolden(t *testing.T) {
	dep, err := OptimizeGraph(context.Background(), goldenGraph(), tuner.NewAutoTVM(),
		testBackend(t, 77), goldenPipelineOpts())
	if err != nil {
		t.Fatal(err)
	}
	if dep.TotalMeasurements != goldenPipelineMeas {
		t.Fatalf("measurements = %d, want %d", dep.TotalMeasurements, goldenPipelineMeas)
	}
	if got := deploymentHash(dep); got != goldenPipelineHash {
		t.Fatalf("deployment hash %#016x, want golden %#016x", got, goldenPipelineHash)
	}
}

// TestPipelineConcurrencyInvariance: with the round driver engaged
// (TaskConcurrency > 1), the deployment is identical for every concurrency
// value — transfer snapshots at round boundaries make the interleaving
// invisible.
func TestPipelineConcurrencyInvariance(t *testing.T) {
	var ref *Deployment
	var refHash uint64
	for _, conc := range []int{2, 3, 4} {
		opts := goldenPipelineOpts()
		opts.TaskConcurrency = conc
		dep, err := OptimizeGraph(context.Background(), goldenGraph(), tuner.NewAutoTVM(),
			testBackend(t, 77), opts)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refHash = dep, deploymentHash(dep)
			continue
		}
		if got := deploymentHash(dep); got != refHash {
			t.Fatalf("conc=%d: deployment hash %#016x differs from conc=2's %#016x", conc, got, refHash)
		}
	}
	if ref.TotalMeasurements != goldenPipelineMeas {
		t.Fatalf("round driver measurements = %d, want %d", ref.TotalMeasurements, goldenPipelineMeas)
	}
}

// TestPipelineAdaptiveInvariance: the adaptive policy always routes through
// the round driver, so its deployments are identical across the whole
// concurrency range including 1.
func TestPipelineAdaptiveInvariance(t *testing.T) {
	var refHash uint64
	first := true
	for _, conc := range []int{1, 2, 4} {
		opts := goldenPipelineOpts()
		opts.TaskConcurrency = conc
		opts.BudgetPolicy = "adaptive"
		dep, err := OptimizeGraph(context.Background(), goldenGraph(), tuner.NewAutoTVM(),
			testBackend(t, 77), opts)
		if err != nil {
			t.Fatal(err)
		}
		if first {
			refHash, first = deploymentHash(dep), false
			continue
		}
		if got := deploymentHash(dep); got != refHash {
			t.Fatalf("conc=%d: adaptive deployment hash %#016x differs from %#016x", conc, got, refHash)
		}
	}
}

// TestPipelineBadPolicy: an unknown budget policy is rejected before any
// tuning starts.
func TestPipelineBadPolicy(t *testing.T) {
	opts := quickPipelineOpts(10)
	opts.BudgetPolicy = "nope"
	if _, err := OptimizeGraph(context.Background(), tinyGraph(), tuner.RandomTuner{}, testBackend(t, 1), opts); err == nil {
		t.Fatal("unknown policy should error")
	}
}

// TestTaskEventDelivery: OnTaskDone fires once per task with a coherent
// event, at every concurrency level.
func TestTaskEventDelivery(t *testing.T) {
	for _, conc := range []int{1, 2} {
		opts := quickPipelineOpts(16)
		opts.TaskConcurrency = conc
		var events []TaskEvent
		opts.OnTaskDone = func(e TaskEvent) { events = append(events, e) }
		dep, err := OptimizeGraph(context.Background(), tinyGraph(), tuner.RandomTuner{}, testBackend(t, 8), opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(events) != len(dep.Tasks) {
			t.Fatalf("conc=%d: %d events for %d tasks", conc, len(events), len(dep.Tasks))
		}
		seen := map[string]bool{}
		for _, e := range events {
			if e.Total != len(dep.Tasks) || e.Index < 1 || e.Index > e.Total {
				t.Fatalf("conc=%d: bad event indices: %+v", conc, e)
			}
			if e.Name == "" || seen[e.Name] {
				t.Fatalf("conc=%d: duplicate or unnamed event %q", conc, e.Name)
			}
			seen[e.Name] = true
			if e.Measurements != e.Result.Measurements || e.Measurements == 0 {
				t.Fatalf("conc=%d: measurement accounting: %+v", conc, e)
			}
			if e.Elapsed < 0 {
				t.Fatalf("conc=%d: negative elapsed", conc)
			}
			if e.Err != nil {
				t.Fatalf("conc=%d: unexpected task error: %v", conc, e.Err)
			}
			if e.Deployed.Flat() != dep.Tasks[e.Index-1].Deployed.Flat() {
				t.Fatalf("conc=%d: event deployed config differs from deployment", conc)
			}
		}
	}
}
