// Package core drives the paper's end-to-end flow (Fig. 1): a DNN model is
// lowered to a fused compute graph, node-wise tuning tasks are extracted,
// each task is optimized with a chosen search strategy, and the resulting
// per-node configurations are combined into a model deployment whose
// inference latency (mean and variance over repeated runs) is the final
// metric of Table I.
//
// The pipeline is context-aware: cancelling ctx aborts it between
// measurements with an error, a per-task deadline bounds each task's
// search, and OnRecord streams every measurement out the moment it lands,
// so a run that dies loses nothing that was already measured.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/active"
	"repro/internal/backend"
	"repro/internal/graph"
	"repro/internal/hwsim"
	"repro/internal/record"
	"repro/internal/sched"
	"repro/internal/space"
	"repro/internal/transfer"
	"repro/internal/tuner"
)

// PipelineOptions configures an end-to-end deployment optimization.
type PipelineOptions struct {
	// Tuning carries the per-task tuning options; Seed seeds task i with
	// Seed+i so runs are deterministic yet decorrelated.
	Tuning tuner.Options
	// Extract selects which operator kinds become tuning tasks
	// (graph.AllOps for Table I end-to-end runs).
	Extract graph.ExtractOpts
	// UseTransfer enables cross-task transfer learning within the model
	// (AutoTVM's default behaviour).
	UseTransfer bool
	// Resume carries records of a previous run; matching tasks start with
	// that knowledge and never re-measure logged configurations.
	Resume []record.Record
	// Runs is the number of end-to-end inference simulations used for the
	// latency statistics (paper: 600).
	Runs int
	// ReMeasureTopK / ReMeasureRepeats: before deployment, the top-K
	// distinct configurations of each task are re-measured Repeats times
	// and the best mean wins. Single noisy measurements suffer a winner's
	// curse (a mediocre high-variance config gets one lucky reading and is
	// deployed); re-measuring the short list is what AutoTVM's
	// pick-best-from-log flow does in practice. Defaults 5 and 3;
	// ReMeasureTopK < 0 disables re-measurement.
	ReMeasureTopK    int
	ReMeasureRepeats int
	// TaskDeadline bounds each task's tuning wall clock. When it expires
	// the task stops searching and deploys the best configuration found
	// within the deadline; a task that found nothing valid is an error.
	// Zero means no per-task deadline.
	TaskDeadline time.Duration
	// OnRecord, when non-nil, receives every measurement of every task as
	// a log record the moment the session records it (step-ordered within
	// each task). This is the streaming path cmd/tune uses to keep its
	// record log crash-safe instead of flattening Records() at the end.
	OnRecord func(record.Record)
	// Progress, when non-nil, is called once per task before it can start
	// tuning (in task order).
	Progress func(taskIdx, taskTotal int, name string)
	// OnTaskDone, when non-nil, receives a completion event per task:
	// outcome, wall clock spent tuning, measurement count, and the deployed
	// configuration. With TaskConcurrency 1 it fires right after each task;
	// at higher concurrency, at the scheduler's next round boundary, always
	// in task-index order within a boundary.
	OnTaskDone func(TaskEvent)
	// TaskConcurrency is how many tasks the graph scheduler tunes
	// concurrently. 1 (or 0) selects the classic sequential pipeline,
	// bit-identical to previous releases including live transfer-learning
	// chaining. Values > 1 interleave tasks in deterministic rounds;
	// results are then identical for every concurrency value and worker
	// count, with transfer history snapshotted at round boundaries.
	// Unseeded backends always execute one task at a time.
	TaskConcurrency int
	// BudgetPolicy selects the scheduler's budget policy by name: "" or
	// "uniform" gives every task its own budget (legacy behaviour);
	// "adaptive" reallocates the graph-wide budget each round toward the
	// tasks with the highest marginal GFLOPS gain.
	BudgetPolicy string
	// OnCheckpoint, when non-nil, receives the scheduler's serializable run
	// state at boundaries (see sched.Options.OnCheckpoint). Like every
	// other pipeline callback it is serialized under the callback mutex.
	OnCheckpoint func(*sched.Checkpoint)
	// CheckpointEvery rate-limits checkpoints by new measurements
	// (sched.Options.CheckpointEvery); 0 captures at every boundary.
	CheckpointEvery int
	// ResumeCheckpoint continues a previous run from a scheduler
	// checkpoint instead of starting fresh. The caller must rebuild the
	// pipeline with the same model, tuner, backend seeds, and options the
	// original run used (including Resume records, if any); restored
	// outcomes are returned without re-firing OnTaskDone, and their
	// deployment configurations are re-selected deterministically. Only
	// seeded backends continue bit-identically: an unseeded backend's
	// shared noise-stream position is not part of the checkpoint.
	ResumeCheckpoint *sched.Checkpoint
}

// TaskEvent is the per-task completion report delivered to OnTaskDone.
//
// Callback ordering guarantee: Progress, OnRecord, Tuning.Observer and
// OnTaskDone calls issued by the pipeline are serialized under one mutex —
// user callbacks never run concurrently with each other, and a task's
// records arrive in step order. Cross-task interleaving of OnRecord is
// unspecified when TaskConcurrency > 1.
type TaskEvent struct {
	// Index is the 1-based task index; Total the task count.
	Index, Total int
	Name         string
	Result       tuner.Result
	// Err is the task's tolerated error (per-task deadline expiry with a
	// deployable best); fatal errors abort OptimizeGraph instead.
	Err error
	// Elapsed is the wall clock spent tuning the task.
	Elapsed time.Duration
	// Measurements is the task's measurement count (== Result.Measurements).
	Measurements int
	// Deployed is the configuration chosen for deployment (after the
	// re-measurement short list).
	Deployed space.Config
}

// TaskOutcome records the tuning result of one task.
type TaskOutcome struct {
	Task   *tuner.Task
	Result tuner.Result
	// Deployed is the configuration actually deployed: the tuner's best
	// unless re-measurement promoted a steadier candidate.
	Deployed space.Config
}

// Deployment is the tuned end-to-end model: the combination of the best
// configuration for every node.
type Deployment struct {
	Model     string
	TunerName string
	Tasks     []TaskOutcome
	// LatencyMS and Variance are the Table I columns: mean end-to-end
	// inference latency and its variance over Runs simulated runs.
	LatencyMS float64
	Variance  float64
	// TotalMeasurements sums tuning measurements over all tasks (the
	// optimization workload of Fig. 5(a)).
	TotalMeasurements int
}

// BestGFLOPSByTask maps task name to its best achieved GFLOPS.
func (d *Deployment) BestGFLOPSByTask() map[string]float64 {
	out := make(map[string]float64, len(d.Tasks))
	for _, t := range d.Tasks {
		if t.Result.Found {
			out[t.Task.Name] = t.Result.Best.GFLOPS
		}
	}
	return out
}

// Records flattens all tuning measurements into log records.
func (d *Deployment) Records() []record.Record {
	var out []record.Record
	for _, t := range d.Tasks {
		for i, s := range t.Result.Samples {
			out = append(out, record.Record{
				Task:     t.Task.Name,
				Workload: t.Task.Workload.Key(),
				Tuner:    d.TunerName,
				Step:     i + 1,
				Config:   s.Config.Index,
				GFLOPS:   s.GFLOPS,
				Valid:    s.Valid,
			})
		}
	}
	return out
}

// OptimizeModel runs the full pipeline for one model and tuner on the
// backend. It returns an error when the model is unknown, ctx is cancelled,
// or any task finishes without a single valid configuration.
func OptimizeModel(ctx context.Context, model string, tn tuner.Tuner, b backend.Backend, opts PipelineOptions) (*Deployment, error) {
	g, err := graph.Model(model)
	if err != nil {
		return nil, err
	}
	return OptimizeGraph(ctx, g, tn, b, opts)
}

// OptimizeGraph is OptimizeModel over an already-built graph. The per-task
// tuning is delegated to the deterministic graph scheduler (internal/sched):
// TaskConcurrency 1 with the uniform policy runs the classic sequential
// pipeline bit-identically; higher concurrency interleaves tasks in rounds
// without changing any task's measurements.
func OptimizeGraph(ctx context.Context, g *graph.Graph, tn tuner.Tuner, b backend.Backend, opts PipelineOptions) (*Deployment, error) {
	if opts.Runs <= 0 {
		opts.Runs = 600
	}
	gtasks := graph.ExtractTasks(g, opts.Extract)
	if len(gtasks) == 0 {
		return nil, fmt.Errorf("core: model %s has no tunable tasks", g.Name)
	}
	policy, err := sched.PolicyByName(opts.BudgetPolicy)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var hist *transfer.History
	if opts.UseTransfer {
		hist = transfer.NewHistory()
	}

	// All user-supplied callbacks share one mutex: with TaskConcurrency > 1
	// observers fire from concurrent task goroutines, and the documented
	// contract (see TaskEvent) is that user callbacks never run
	// concurrently with each other.
	var cbMu sync.Mutex
	specs := make([]sched.Spec, 0, len(gtasks))
	for i, gt := range gtasks {
		task, err := tuner.FromGraphTask(gt)
		if err != nil {
			return nil, err
		}
		topts := opts.Tuning
		topts.Seed = opts.Tuning.Seed + int64(i)*1000003
		topts.Transfer = hist
		if len(opts.Resume) > 0 {
			topts.Resume = resumeSamples(opts.Resume, task)
		}
		topts.Observer = streamObserver(opts, &cbMu, topts.Observer, task, tn.Name())
		specs = append(specs, sched.Spec{Task: task, Opts: topts})
	}

	dep := &Deployment{Model: g.Name, TunerName: tn.Name()}
	taskOuts := make([]TaskOutcome, len(specs))
	hdeps := make([]hwsim.Deployment, len(specs))
	sopts := sched.Options{
		TaskConcurrency: opts.TaskConcurrency,
		Policy:          policy,
		TaskDeadline:    opts.TaskDeadline,
		OnTaskDone: func(o sched.Outcome) {
			// Runs on the scheduler's driver goroutine, in completion order:
			// with TaskConcurrency 1 that is exactly the legacy sequence
			// "tune task, select deployment, tune next task", which keeps
			// unseeded backends' shared noise stream in the legacy order.
			task := specs[o.Index].Task
			deployed := selectDeployConfig(task, o.Result, b,
				specs[o.Index].Opts.Seed, opts.ReMeasureTopK, opts.ReMeasureRepeats)
			taskOuts[o.Index] = TaskOutcome{Task: task, Result: o.Result, Deployed: deployed}
			hdeps[o.Index] = hwsim.Deployment{Workload: task.Workload, Config: deployed, Count: task.Count}
			if opts.OnTaskDone != nil {
				cbMu.Lock()
				opts.OnTaskDone(TaskEvent{
					Index: o.Index + 1, Total: len(specs), Name: task.Name,
					Result: o.Result, Err: o.Err, Elapsed: o.Elapsed,
					Measurements: o.Result.Measurements, Deployed: deployed,
				})
				cbMu.Unlock()
			}
		},
	}
	if opts.Progress != nil {
		sopts.OnTaskStart = func(i, n int, name string) {
			cbMu.Lock()
			opts.Progress(i, n, name)
			cbMu.Unlock()
		}
	}
	sopts.CheckpointEvery = opts.CheckpointEvery
	sopts.Resume = opts.ResumeCheckpoint
	if opts.OnCheckpoint != nil {
		sopts.OnCheckpoint = func(cp *sched.Checkpoint) {
			cbMu.Lock()
			opts.OnCheckpoint(cp)
			cbMu.Unlock()
		}
	}

	outs, err := sched.Run(ctx, tuner.AsOpener(tn), b, specs, sopts)
	if err != nil {
		var te *sched.TaskError
		if errors.As(err, &te) {
			return nil, fmt.Errorf("core: tuning task %s: %w", te.TaskName, te.Err)
		}
		return nil, fmt.Errorf("core: %w", err)
	}
	// Outcomes restored from a resumed checkpoint never pass through
	// OnTaskDone (scheduler callbacks fire only for post-checkpoint events),
	// so their deployment selections are filled in here. selectDeployConfig
	// derives per-config measurement seeds on seeded backends, making the
	// late selection bit-identical to the original boundary-time one.
	for _, o := range outs {
		if taskOuts[o.Index].Task != nil {
			continue
		}
		task := specs[o.Index].Task
		deployed := selectDeployConfig(task, o.Result, b,
			specs[o.Index].Opts.Seed, opts.ReMeasureTopK, opts.ReMeasureRepeats)
		taskOuts[o.Index] = TaskOutcome{Task: task, Result: o.Result, Deployed: deployed}
		hdeps[o.Index] = hwsim.Deployment{Workload: task.Workload, Config: deployed, Count: task.Count}
	}
	for i := range taskOuts {
		dep.Tasks = append(dep.Tasks, taskOuts[i])
		dep.TotalMeasurements += taskOuts[i].Result.Measurements
	}

	mean, variance, err := b.NetworkLatency(hdeps, opts.Runs)
	if err != nil {
		return nil, fmt.Errorf("core: measuring end-to-end latency of %s: %w", g.Name, err)
	}
	dep.LatencyMS = mean
	dep.Variance = variance
	return dep, nil
}

// streamObserver chains the caller's observer with the OnRecord stream so
// every measurement leaves the pipeline the moment it is recorded. The
// shared mutex serializes the user callbacks across concurrently tuned
// tasks; a task's own calls stay in step order.
func streamObserver(opts PipelineOptions, mu *sync.Mutex, inner tuner.Observer, task *tuner.Task, tunerName string) tuner.Observer {
	if opts.OnRecord == nil && inner == nil {
		return nil
	}
	name, wkey := task.Name, task.Workload.Key()
	return func(step int, s active.Sample) {
		mu.Lock()
		defer mu.Unlock()
		if inner != nil {
			inner(step, s)
		}
		if opts.OnRecord != nil {
			opts.OnRecord(record.Record{
				Task:     name,
				Workload: wkey,
				Tuner:    tunerName,
				Step:     step,
				Config:   s.Config.Index,
				GFLOPS:   s.GFLOPS,
				Valid:    s.Valid,
			})
		}
	}
}

// ApplyRecords rebuilds a Deployment's latency from previously logged best
// records (e.g. loaded from disk) instead of re-tuning. Tasks without a
// matching record are an error.
func ApplyRecords(model string, recs []record.Record, b backend.Backend, extract graph.ExtractOpts, runs int) (latencyMS, variance float64, err error) {
	g, err := graph.Model(model)
	if err != nil {
		return 0, 0, err
	}
	if runs <= 0 {
		runs = 600
	}
	best := record.BestByTask(recs)
	gtasks := graph.ExtractTasks(g, extract)
	deps := make([]hwsim.Deployment, 0, len(gtasks))
	for _, gt := range gtasks {
		r, ok := best[gt.Name]
		if !ok {
			return 0, 0, fmt.Errorf("core: no record for task %s", gt.Name)
		}
		task, err := tuner.FromGraphTask(gt)
		if err != nil {
			return 0, 0, err
		}
		cfg, err := r.ToConfig(task.Space)
		if err != nil {
			return 0, 0, fmt.Errorf("core: record for %s: %w", gt.Name, err)
		}
		deps = append(deps, hwsim.Deployment{Workload: task.Workload, Config: cfg, Count: task.Count})
	}
	return b.NetworkLatency(deps, runs)
}

// selectDeployConfig re-measures the task's top-K distinct configurations
// `repeats` times each and returns the one with the best mean GFLOPS. With
// topK < 0 (or degenerate parameters) it returns the tuner's raw best.
// On a seeded backend the repeats draw deterministic per-repeat noise
// seeds, with repeat 0 reusing the tuning run's own seed for the config —
// so a memoizing cache serves it without a fresh simulator call and the
// whole re-measurement is worker- and order-independent.
func selectDeployConfig(task *tuner.Task, res tuner.Result, b backend.Backend, runSeed int64, topK, repeats int) space.Config {
	if topK < 0 {
		return res.Best.Config
	}
	if topK == 0 {
		topK = 5
	}
	if repeats <= 0 {
		repeats = 3
	}
	// Distinct valid samples, best measured first.
	ordered := append([]active.Sample(nil), res.Samples...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].GFLOPS > ordered[j].GFLOPS })
	best := res.Best.Config
	bestMean := -1.0
	taken := 0
	seen := make(map[uint64]bool, topK)
	for _, s := range ordered {
		if !s.Valid || taken >= topK {
			if taken >= topK {
				break
			}
			continue
		}
		f := s.Config.Flat()
		if seen[f] {
			continue
		}
		seen[f] = true
		taken++
		total, valid := 0.0, 0
		for r := 0; r < repeats; r++ {
			var mr hwsim.Measurement
			if b.Seeded() {
				mr = b.MeasureSeeded(task.Workload, s.Config, remeasureSeed(runSeed, f, r))
			} else {
				mr = b.Measure(task.Workload, s.Config)
			}
			if mr.Valid {
				total += mr.GFLOPS
				valid++
			}
		}
		if valid == 0 {
			continue
		}
		if mean := total / float64(valid); mean > bestMean {
			bestMean = mean
			best = s.Config
		}
	}
	return best
}

// remeasureSeed derives the noise seed of re-measurement repeat r. Repeat 0
// reuses the tuning run's seed for the configuration (a guaranteed cache
// hit on a memoizing backend); later repeats remix the run seed so each is
// an independent fresh draw.
func remeasureSeed(runSeed int64, flat uint64, repeat int) int64 {
	if repeat == 0 {
		return hwsim.NoiseSeed(runSeed, flat)
	}
	return hwsim.NoiseSeed(runSeed+int64(repeat)*0x9E3779B9, flat)
}

// resumeSamples rebuilds the samples of a task from matching log records,
// silently skipping records whose config no longer fits the space.
func resumeSamples(recs []record.Record, task *tuner.Task) []active.Sample {
	var out []active.Sample
	for _, r := range recs {
		if r.Task != task.Name && r.Workload != task.Workload.Key() {
			continue
		}
		cfg, err := r.ToConfig(task.Space)
		if err != nil {
			continue
		}
		out = append(out, active.Sample{Config: cfg, GFLOPS: r.GFLOPS, Valid: r.Valid})
	}
	return out
}

// SortedTaskNames returns the deployment's task names in index order
// (T1, T2, ... as in Fig. 5).
func (d *Deployment) SortedTaskNames() []string {
	names := make([]string, 0, len(d.Tasks))
	for _, t := range d.Tasks {
		names = append(names, t.Task.Name)
	}
	sort.Slice(names, func(i, j int) bool {
		return taskIndex(names[i]) < taskIndex(names[j])
	})
	return names
}

// taskIndex parses the numeric suffix of "<model>.T<k>".
func taskIndex(name string) int {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == 'T' {
			k := 0
			for _, ch := range name[i+1:] {
				if ch < '0' || ch > '9' {
					return 0
				}
				k = k*10 + int(ch-'0')
			}
			return k
		}
	}
	return 0
}

// Summary renders a one-line deployment summary.
func (d *Deployment) Summary() string {
	return fmt.Sprintf("%s/%s: %.4f ms (var %.4g), %d tasks, %d measurements",
		d.Model, d.TunerName, d.LatencyMS, d.Variance, len(d.Tasks), d.TotalMeasurements)
}

// InitSamplesOf returns the first n samples of a result, a convenience for
// inspecting initialization quality in examples and docs.
func InitSamplesOf(r tuner.Result, n int) []active.Sample {
	if n > len(r.Samples) {
		n = len(r.Samples)
	}
	return r.Samples[:n]
}
