package core

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/backend"
	"repro/internal/graph"
	"repro/internal/record"
	"repro/internal/tuner"
)

// tinyGraph builds a 3-kernel model small enough for fast end-to-end tests.
func tinyGraph() *graph.Graph {
	b := graph.NewBuilder("tiny")
	x := b.Input("data", 1, 3, 32, 32)
	x = b.ReLU("relu1", b.Conv("conv1", x, 16, 3, 1, 1))
	x = b.ReLU("relu2", b.DepthwiseConv("dw", x, 3, 1, 1))
	x = b.MaxPool("pool", x, 2, 2, 0, false)
	x = b.Flatten("flat", x)
	x = b.Dense("fc", x, 10)
	return b.Finish(b.Softmax("prob", x))
}

// testBackend builds the standard single-device backend used across the
// pipeline tests.
func testBackend(t *testing.T, seed int64) backend.Backend {
	t.Helper()
	b, err := backend.New("gtx1080ti", seed)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func quickPipelineOpts(budget int) PipelineOptions {
	return PipelineOptions{
		Tuning:  tuner.Options{Budget: budget, EarlyStop: -1, PlanSize: 8, Seed: 1},
		Extract: graph.AllOps,
		Runs:    100,
	}
}

func TestOptimizeGraphEndToEnd(t *testing.T) {
	dep, err := OptimizeGraph(context.Background(), tinyGraph(), tuner.RandomTuner{}, testBackend(t, 1), quickPipelineOpts(30))
	if err != nil {
		t.Fatal(err)
	}
	if dep.LatencyMS <= 0 || dep.Variance <= 0 {
		t.Fatalf("latency %v var %v", dep.LatencyMS, dep.Variance)
	}
	if len(dep.Tasks) != 3 {
		t.Fatalf("tasks = %d, want 3 (conv, dw, dense)", len(dep.Tasks))
	}
	if dep.TotalMeasurements == 0 {
		t.Fatal("no measurements accounted")
	}
	if dep.Summary() == "" {
		t.Fatal("summary empty")
	}
	best := dep.BestGFLOPSByTask()
	if len(best) != 3 {
		t.Fatalf("best map size %d", len(best))
	}
}

func TestOptimizeModelUnknown(t *testing.T) {
	if _, err := OptimizeModel(context.Background(), "nope", tuner.RandomTuner{}, testBackend(t, 1), quickPipelineOpts(10)); err == nil {
		t.Fatal("unknown model should error")
	}
}

func TestProgressCallback(t *testing.T) {
	opts := quickPipelineOpts(20)
	var seen []string
	opts.Progress = func(i, n int, name string) {
		if n != 3 {
			t.Fatalf("total = %d", n)
		}
		seen = append(seen, name)
	}
	if _, err := OptimizeGraph(context.Background(), tinyGraph(), tuner.RandomTuner{}, testBackend(t, 2), opts); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("progress called %d times", len(seen))
	}
}

func TestRecordsRoundTripThroughApply(t *testing.T) {
	b := testBackend(t, 3)
	g := tinyGraph()
	dep, err := OptimizeGraph(context.Background(), g, tuner.RandomTuner{}, b, quickPipelineOpts(25))
	if err != nil {
		t.Fatal(err)
	}
	recs := dep.Records()
	if len(recs) != dep.TotalMeasurements {
		t.Fatalf("records = %d, measurements = %d", len(recs), dep.TotalMeasurements)
	}
	var buf bytes.Buffer
	if err := record.Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	loaded, err := record.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// ApplyRecords only works for registered models; use mobilenet tasks
	// indirectly by checking the error path first.
	if _, _, err := ApplyRecords("nope", loaded, b, graph.AllOps, 50); err == nil {
		t.Fatal("unknown model should error")
	}
	// Missing records for a real model also error.
	if _, _, err := ApplyRecords("mobilenet-v1", nil, b, graph.ConvOnly, 50); err == nil {
		t.Fatal("missing records should error")
	}
}

func TestApplyRecordsRealModel(t *testing.T) {
	if testing.Short() {
		t.Skip("tunes a real model")
	}
	b := testBackend(t, 4)
	opts := PipelineOptions{
		Tuning:  tuner.Options{Budget: 12, EarlyStop: -1, PlanSize: 8, Seed: 9},
		Extract: graph.ConvOnly,
		Runs:    50,
	}
	dep, err := OptimizeModel(context.Background(), "squeezenet-v1.1", tuner.RandomTuner{}, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	lat, variance, err := ApplyRecords("squeezenet-v1.1", dep.Records(), b, graph.ConvOnly, 50)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 || variance <= 0 {
		t.Fatalf("applied latency %v var %v", lat, variance)
	}
}

func TestSortedTaskNames(t *testing.T) {
	dep, err := OptimizeGraph(context.Background(), tinyGraph(), tuner.RandomTuner{}, testBackend(t, 5), quickPipelineOpts(15))
	if err != nil {
		t.Fatal(err)
	}
	names := dep.SortedTaskNames()
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for i, n := range names {
		if taskIndex(n) != i+1 {
			t.Fatalf("names not in T-order: %v", names)
		}
	}
}

func TestTaskIndexParsing(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"mobilenet-v1.T7", 7}, {"m.T19", 19}, {"weird", 0}, {"m.Tx", 0},
	}
	for _, c := range cases {
		if got := taskIndex(c.in); got != c.want {
			t.Errorf("taskIndex(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestUseTransferPipeline(t *testing.T) {
	opts := quickPipelineOpts(24)
	opts.UseTransfer = true
	dep, err := OptimizeGraph(context.Background(), tinyGraph(), tuner.NewAutoTVM(), testBackend(t, 6), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !dep.Tasks[0].Result.Found {
		t.Fatal("transfer pipeline failed")
	}
}

func TestInitSamplesOf(t *testing.T) {
	task, err := tuner.NewTask("x", tinyGraph().TunableNodes()[0].Workload)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tuner.RandomTuner{}.Tune(context.Background(), task, testBackend(t, 7), tuner.Options{Budget: 10, EarlyStop: -1, PlanSize: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := InitSamplesOf(res, 4); len(got) != 4 {
		t.Fatalf("init samples = %d", len(got))
	}
	if got := InitSamplesOf(res, 1000); len(got) != res.Measurements {
		t.Fatal("oversized init request should clamp")
	}
}
