package core

import (
	"context"
	"testing"

	"repro/internal/backend"
	"repro/internal/hwsim"
	"repro/internal/tuner"
)

// TestPipelineCacheSavesRemeasurements is the core-layer memoization
// contract: with re-measure-top-K enabled, every top-K config's repeat 0
// reuses the tuning run's noise seed, so layering a Cache over the backend
// must issue strictly fewer raw simulator calls than the uncached pipeline
// while leaving the deployment bit-identical.
func TestPipelineCacheSavesRemeasurements(t *testing.T) {
	opts := quickPipelineOpts(24)
	opts.ReMeasureTopK = 4
	opts.ReMeasureRepeats = 3

	run := func(b backend.Backend) *Deployment {
		dep, err := OptimizeGraph(context.Background(), tinyGraph(), tuner.NewAutoTVM(), b, opts)
		if err != nil {
			t.Fatal(err)
		}
		return dep
	}

	rawCount := backend.NewCounting(backend.Wrap("gtx1080ti", hwsim.NewSimulator(hwsim.GTX1080Ti(), 31)))
	plain := run(rawCount)

	cachedCount := backend.NewCounting(backend.Wrap("gtx1080ti", hwsim.NewSimulator(hwsim.GTX1080Ti(), 31)))
	cache := backend.NewCache(cachedCount)
	cached := run(cache)

	if cachedCount.Calls() >= rawCount.Calls() {
		t.Fatalf("cache saved nothing: %d raw calls vs %d uncached", cachedCount.Calls(), rawCount.Calls())
	}
	if cache.Hits() == 0 {
		t.Fatal("re-measure-top-K produced no cache hits")
	}
	if plain.LatencyMS != cached.LatencyMS || plain.Variance != cached.Variance ||
		plain.TotalMeasurements != cached.TotalMeasurements {
		t.Fatalf("memoization changed the deployment: %v/%v vs %v/%v",
			plain.LatencyMS, plain.Variance, cached.LatencyMS, cached.Variance)
	}
	for i := range plain.Tasks {
		if !plain.Tasks[i].Deployed.Equal(cached.Tasks[i].Deployed) {
			t.Fatalf("task %s deployed different configs", plain.Tasks[i].Task.Name)
		}
	}
}
