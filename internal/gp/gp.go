// Package gp implements Gaussian-process regression with an RBF kernel and
// exact Cholesky inference. It is an alternative evaluation function for
// the paper's framework, exercising the stated design goal that the
// advanced active-learning flow "is independent of the specific forms of
// evaluation functions": swap gp.Trainer for the XGBoost trainer and BAO
// runs unchanged.
//
// Training cost is O(n³) in the number of observations, so the trainer
// caps the training-set size by uniform subsampling; for tuning-scale data
// (hundreds of points) exact inference is comfortably fast.
package gp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/linalg"
	"repro/internal/par"
)

// Params configures GP regression.
type Params struct {
	// LengthScale of the RBF kernel; <= 0 selects the median heuristic
	// (median pairwise distance of the training inputs).
	LengthScale float64
	// SignalVar is the kernel amplitude σ_f² (default 1).
	SignalVar float64
	// NoiseVar is the observation noise σ_n² added to the diagonal
	// (default 1e-2; tuning measurements are noisy).
	NoiseVar float64
	// MaxPoints caps the training set by uniform subsampling (default 400).
	MaxPoints int
	// Seed drives the subsampling.
	Seed int64
	// Workers caps the goroutines used to build the kernel matrix; <= 0
	// means par.Workers(). Every entry K[i][j] is computed independently
	// with the identical scalar expression, so the fitted model is
	// bit-identical for every value.
	Workers int
}

// DefaultParams returns settings suited to normalized tuning targets.
func DefaultParams() Params {
	return Params{SignalVar: 1, NoiseVar: 1e-2, MaxPoints: 400}
}

func (p Params) normalized() Params {
	if p.SignalVar <= 0 {
		p.SignalVar = 1
	}
	if p.NoiseVar <= 0 {
		p.NoiseVar = 1e-2
	}
	if p.MaxPoints <= 0 {
		p.MaxPoints = 400
	}
	return p
}

// Model is a fitted Gaussian process.
type Model struct {
	params Params
	ls2    float64 // 2 * lengthscale^2
	x      [][]float64
	alpha  []float64
	chol   *linalg.Cholesky
	mean   float64
}

// Train fits a GP to (X, y). Inputs are referenced, not copied.
func Train(X [][]float64, y []float64, p Params) (*Model, error) {
	p = p.normalized()
	n := len(X)
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("gp: need matching non-empty X (%d) and y (%d)", n, len(y))
	}
	if len(X[0]) == 0 {
		return nil, errors.New("gp: zero feature dimension")
	}

	if n > p.MaxPoints {
		rng := rand.New(rand.NewSource(p.Seed))
		idx := rng.Perm(n)[:p.MaxPoints]
		Xs := make([][]float64, p.MaxPoints)
		ys := make([]float64, p.MaxPoints)
		for i, j := range idx {
			Xs[i] = X[j]
			ys[i] = y[j]
		}
		X, y = Xs, ys
		n = p.MaxPoints
	}

	ls := p.LengthScale
	if ls <= 0 {
		ls = medianHeuristic(X)
		if ls <= 0 {
			ls = 1
		}
	}
	ls2 := 2 * ls * ls

	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)

	workers := p.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	K := linalg.NewMatrix(n, n)
	// Row-parallel kernel build. The worker owning row i computes the pairs
	// (i, j) for j >= i and mirrors them: entry (j, i) is written only by
	// that worker (the pair's smaller index), so rows are racing-free, and
	// every entry is the identical serial scalar expression — the matrix is
	// bit-identical for any worker count.
	par.For(n, workers, func(i int) {
		for j := i; j < n; j++ {
			v := p.SignalVar * math.Exp(-linalg.Dist2(X[i], X[j])/ls2)
			K.Set(i, j, v)
			K.Set(j, i, v)
		}
	})
	var chol *linalg.Cholesky
	var err error
	jitter := p.NoiseVar
	for attempt := 0; attempt < 6; attempt++ {
		chol, err = linalg.NewCholesky(K, jitter)
		if err == nil {
			break
		}
		jitter *= 10
	}
	if err != nil {
		return nil, fmt.Errorf("gp: factorization failed: %w", err)
	}

	centered := make([]float64, n)
	for i, v := range y {
		centered[i] = v - mean
	}
	return &Model{
		params: p,
		ls2:    ls2,
		x:      X,
		alpha:  chol.Solve(centered),
		chol:   chol,
		mean:   mean,
	}, nil
}

// Predict returns the posterior mean at x.
func (m *Model) Predict(x []float64) float64 {
	s := m.mean
	for i, xi := range m.x {
		s += m.alpha[i] * m.params.SignalVar * math.Exp(-linalg.Dist2(x, xi)/m.ls2)
	}
	return s
}

// PredictBatch returns the posterior mean at each query point.
func (m *Model) PredictBatch(xs [][]float64) []float64 {
	return m.PredictBatchParallel(xs, par.Workers())
}

// PredictBatchParallel is PredictBatch over the worker pool. Each output
// depends only on its own query, so the result is bit-identical to calling
// Predict per point, for any worker count.
func (m *Model) PredictBatchParallel(xs [][]float64, workers int) []float64 {
	out := make([]float64, len(xs))
	if len(xs)*len(m.x) < gpParallelMinWork {
		workers = 1
	}
	par.For(len(xs), workers, func(i int) {
		out[i] = m.Predict(xs[i])
	})
	return out
}

// gpParallelMinWork is the query-count x training-size product below which
// PredictBatch stays serial; smaller batches cannot amortize pool dispatch.
const gpParallelMinWork = 1 << 12

// PredictVar returns the posterior mean and variance at x; the variance
// quantifies epistemic uncertainty and can drive acquisition functions.
func (m *Model) PredictVar(x []float64) (mean, variance float64) {
	n := len(m.x)
	k := make([]float64, n)
	s := m.mean
	for i, xi := range m.x {
		k[i] = m.params.SignalVar * math.Exp(-linalg.Dist2(x, xi)/m.ls2)
		s += m.alpha[i] * k[i]
	}
	v := m.chol.SolveVecL(k)
	variance = m.params.SignalVar
	for _, vi := range v {
		variance -= vi * vi
	}
	if variance < 0 {
		variance = 0
	}
	return s, variance
}

// NumPoints returns the retained training-set size.
func (m *Model) NumPoints() int { return len(m.x) }

// LengthScale returns the fitted (or heuristic) kernel length scale.
func (m *Model) LengthScale() float64 { return math.Sqrt(m.ls2 / 2) }

// medianHeuristic returns the median pairwise Euclidean distance over a
// bounded subsample of the inputs.
func medianHeuristic(X [][]float64) float64 {
	n := len(X)
	if n < 2 {
		return 1
	}
	cap := n
	if cap > 100 {
		cap = 100
	}
	var ds []float64
	for i := 0; i < cap; i++ {
		for j := i + 1; j < cap; j++ {
			ds = append(ds, linalg.Dist(X[i], X[j]))
		}
	}
	sort.Float64s(ds)
	return ds[len(ds)/2]
}
