package gp

import (
	"math"
	"testing"
)

// TestGPTrainWorkerCountInvariance pins the parallel kernel build: every
// K[i][j] entry is the identical scalar expression, so training with 1, 4
// or 8 workers must produce bit-identical posteriors.
func TestGPTrainWorkerCountInvariance(t *testing.T) {
	X, y := benchData(250, 6, 5)
	pool, _ := benchData(64, 6, 6)
	p := DefaultParams()
	p.Workers = 1
	ref, err := Train(X, y, p)
	if err != nil {
		t.Fatalf("Train(workers=1): %v", err)
	}
	for _, workers := range []int{4, 8} {
		p.Workers = workers
		m, err := Train(X, y, p)
		if err != nil {
			t.Fatalf("Train(workers=%d): %v", workers, err)
		}
		for _, x := range pool {
			want, got := ref.Predict(x), m.Predict(x)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("workers=%d: Predict=%x, serial %x", workers, math.Float64bits(got), math.Float64bits(want))
			}
			wm, wv := ref.PredictVar(x)
			gm, gv := m.PredictVar(x)
			if math.Float64bits(gm) != math.Float64bits(wm) || math.Float64bits(gv) != math.Float64bits(wv) {
				t.Fatalf("workers=%d: PredictVar=(%x,%x), serial (%x,%x)", workers,
					math.Float64bits(gm), math.Float64bits(gv), math.Float64bits(wm), math.Float64bits(wv))
			}
		}
	}
}

// TestGPPredictBatchWorkerCountInvariance checks the parallel batch
// prediction against per-point Predict, bit for bit, for every worker count.
func TestGPPredictBatchWorkerCountInvariance(t *testing.T) {
	X, y := benchData(300, 5, 1)
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	pool, _ := benchData(150, 5, 2)
	ref := make([]float64, len(pool))
	for i, x := range pool {
		ref[i] = m.Predict(x)
	}
	for _, workers := range []int{1, 4, 8} {
		got := m.PredictBatchParallel(pool, workers)
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("workers=%d: out[%d]=%x, want %x", workers, i, math.Float64bits(got[i]), math.Float64bits(ref[i]))
			}
		}
	}
}
