package gp

import (
	"math/rand"
	"testing"
)

func benchData(n, d int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		s := 0.0
		for j := range row {
			row[j] = rng.NormFloat64()
			s += row[j]
		}
		X[i] = row
		y[i] = s
	}
	return X, y
}

// BenchmarkGPTrain fits the GP evaluator at its default training-set cap
// (MaxPoints=400): kernel build plus Cholesky factorization.
func BenchmarkGPTrain(b *testing.B) {
	X, y := benchData(400, 8, 1)
	p := DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(X, y, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGPPredict scores a candidate pool point-by-point, the access
// pattern of BootstrapSelect's scoring stage.
func BenchmarkGPPredict(b *testing.B) {
	X, y := benchData(400, 8, 2)
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	pool, _ := benchData(256, 8, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range pool {
			m.Predict(x)
		}
	}
}
