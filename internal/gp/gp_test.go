package gp

import (
	"math"
	"math/rand"
	"testing"
)

func makeData(n int, noise float64, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64() * 4, rng.Float64() * 4}
		X[i] = x
		y[i] = math.Sin(x[0]) + 0.5*math.Cos(2*x[1]) + noise*rng.NormFloat64()
	}
	return X, y
}

func TestGPInterpolates(t *testing.T) {
	X, y := makeData(120, 0.01, 1)
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Predictions at training points should be close to targets.
	sse := 0.0
	for i := range X {
		d := m.Predict(X[i]) - y[i]
		sse += d * d
	}
	if rmse := math.Sqrt(sse / float64(len(X))); rmse > 0.15 {
		t.Fatalf("train RMSE %.3f too high", rmse)
	}
	// Generalization at fresh points.
	XT, yT := makeData(60, 0.0, 2)
	sse = 0
	for i := range XT {
		d := m.Predict(XT[i]) - yT[i]
		sse += d * d
	}
	if rmse := math.Sqrt(sse / float64(len(XT))); rmse > 0.3 {
		t.Fatalf("test RMSE %.3f too high", rmse)
	}
}

func TestGPPredictVar(t *testing.T) {
	X, y := makeData(60, 0.01, 3)
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Variance near a training point is small; far away it approaches the
	// signal variance.
	_, vNear := m.PredictVar(X[0])
	_, vFar := m.PredictVar([]float64{100, 100})
	if vNear >= vFar {
		t.Fatalf("vNear %.4f should be below vFar %.4f", vNear, vFar)
	}
	if vFar > 1.01 || vFar < 0.5 {
		t.Fatalf("far variance %.4f should approach signal variance 1", vFar)
	}
	mean, _ := m.PredictVar(X[0])
	if math.Abs(mean-m.Predict(X[0])) > 1e-9 {
		t.Fatal("PredictVar mean must match Predict")
	}
}

func TestGPValidation(t *testing.T) {
	if _, err := Train(nil, nil, DefaultParams()); err == nil {
		t.Fatal("empty data should error")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, DefaultParams()); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := Train([][]float64{{}}, []float64{1}, DefaultParams()); err == nil {
		t.Fatal("zero features should error")
	}
}

func TestGPSubsampling(t *testing.T) {
	X, y := makeData(300, 0.05, 4)
	p := DefaultParams()
	p.MaxPoints = 100
	m, err := Train(X, y, p)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPoints() != 100 {
		t.Fatalf("retained %d points, want 100", m.NumPoints())
	}
}

func TestGPDuplicateInputs(t *testing.T) {
	// Exact duplicates make the kernel singular without jitter; training
	// must still succeed through the jitter escalation.
	X := [][]float64{{1, 1}, {1, 1}, {1, 1}, {2, 2}}
	y := []float64{0.9, 1.1, 1.0, 3}
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	p := m.Predict([]float64{1, 1})
	if p < 0.5 || p > 1.5 {
		t.Fatalf("duplicate-input prediction %v should be near 1", p)
	}
}

func TestGPConstantTarget(t *testing.T) {
	X, _ := makeData(40, 0, 5)
	y := make([]float64, 40)
	for i := range y {
		y[i] = 2.5
	}
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{9, 9}); math.Abs(got-2.5) > 0.1 {
		t.Fatalf("constant target far prediction %v", got)
	}
}

func TestGPExplicitLengthScale(t *testing.T) {
	X, y := makeData(50, 0.01, 6)
	p := DefaultParams()
	p.LengthScale = 0.7
	m, err := Train(X, y, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.LengthScale()-0.7) > 1e-9 {
		t.Fatalf("length scale %v", m.LengthScale())
	}
}

func TestMedianHeuristic(t *testing.T) {
	if got := medianHeuristic([][]float64{{0}}); got != 1 {
		t.Fatalf("singleton heuristic = %v", got)
	}
	got := medianHeuristic([][]float64{{0}, {3}, {0}})
	// pairwise distances: 3, 0, 3 -> median 3.
	if got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
}
