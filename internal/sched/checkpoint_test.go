package sched

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/snap"
	"repro/internal/transfer"
	"repro/internal/tuner"
)

// serializedCheckpoint pushes a checkpoint through the snap codec — encode,
// parse, decode, re-encode — so resume tests prove the serialized form, not
// the in-memory struct, carries the whole run.
func serializedCheckpoint(t *testing.T, cp *Checkpoint) *Checkpoint {
	t.Helper()
	frame, err := snap.Encode("sched-checkpoint/v1", cp)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := snap.Read(frame)
	if err != nil || len(frames) != 1 {
		t.Fatalf("snap.Read: %v (%d frames)", err, len(frames))
	}
	var got Checkpoint
	if err := frames[0].Unmarshal(&got); err != nil {
		t.Fatal(err)
	}
	again, err := snap.Encode("sched-checkpoint/v1", &got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, again) {
		t.Fatalf("checkpoint encode→decode→encode not byte-identical")
	}
	return &got
}

// runCollectingCheckpoints runs the scheduler with a checkpoint at every
// boundary, returning the outcomes and the captured checkpoints.
func runCollectingCheckpoints(t *testing.T, tn tuner.Opener, seed int64, specs []Spec, opts Options) ([]Outcome, []*Checkpoint) {
	t.Helper()
	var cps []*Checkpoint
	opts.OnCheckpoint = func(cp *Checkpoint) { cps = append(cps, cp) }
	outs, err := Run(context.Background(), tn, schedBackend(t, seed), specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return outs, cps
}

// TestCheckpointRestoreGridInvariance is the scheduler half of the tentpole
// contract: for every Workers x TaskConcurrency combination — spanning the
// sequential and round drivers — a run checkpointed at every boundary,
// killed, and resumed from any of those checkpoints (after a trip through
// the serialized form) finishes with outcomes bit-identical to the
// uninterrupted run.
func TestCheckpointRestoreGridInvariance(t *testing.T) {
	tasks := schedTasks(t)
	tn := tuner.GATuner{}
	var ref []Outcome
	for _, workers := range []int{1, 4, 8} {
		for _, conc := range []int{1, 2, 4} {
			outs, cps := runCollectingCheckpoints(t, tn, 7,
				specsFor(tasks, 40, 11, workers, nil), Options{TaskConcurrency: conc})
			if ref == nil {
				ref = outs
			}
			if !sameOutcomes(ref, outs) {
				t.Fatalf("checkpointed run differs at workers=%d conc=%d", workers, conc)
			}
			if len(cps) < 2 {
				t.Fatalf("workers=%d conc=%d: only %d checkpoints captured", workers, conc, len(cps))
			}
			final := cps[len(cps)-1]
			for _, tc := range final.Tasks {
				if tc.Outcome == nil {
					t.Fatalf("final checkpoint leaves task %s unfinalized", tc.Name)
				}
			}
			for k, cp := range cps {
				// A new process: fresh checkpoint bytes, same flags.
				rOpts := Options{TaskConcurrency: conc, Resume: serializedCheckpoint(t, cp)}
				got, err := Run(context.Background(), tn, schedBackend(t, 7),
					specsFor(tasks, 40, 11, workers, nil), rOpts)
				if err != nil {
					t.Fatalf("workers=%d conc=%d checkpoint %d: resume: %v", workers, conc, k, err)
				}
				if !sameOutcomes(ref, got) {
					t.Fatalf("workers=%d conc=%d checkpoint %d: resumed outcomes differ", workers, conc, k)
				}
			}
		}
	}
}

// TestCheckpointRestoreTransferChain covers the boundary-snapshotted
// transfer views: a warm-started model-based run is resumed from a mid-run
// checkpoint into fresh (empty) histories, which resume must repopulate so
// the continuation's warm starts — and therefore its samples — stay
// bit-identical. Both drivers are exercised.
func TestCheckpointRestoreTransferChain(t *testing.T) {
	tasks := schedTasks(t)
	tn := tuner.NewAutoTVM()
	for _, conc := range []int{1, 2} {
		ref, cps := runCollectingCheckpoints(t, tn, 13,
			specsFor(tasks, 32, 17, 2, transfer.NewHistory()), Options{TaskConcurrency: conc})
		if len(cps) < 3 {
			t.Fatalf("conc=%d: only %d checkpoints captured", conc, len(cps))
		}
		// Middle checkpoints carry both finalized outcomes and live
		// sessions at some point; resume from each one.
		for k, cp := range cps {
			got, err := Run(context.Background(), tn, schedBackend(t, 13),
				specsFor(tasks, 32, 17, 2, transfer.NewHistory()),
				Options{TaskConcurrency: conc, Resume: serializedCheckpoint(t, cp)})
			if err != nil {
				t.Fatalf("conc=%d checkpoint %d: resume: %v", conc, k, err)
			}
			if !sameOutcomes(ref, got) {
				t.Fatalf("conc=%d checkpoint %d: resumed outcomes differ", conc, k)
			}
		}
	}
}

// TestCheckpointRestoreAdaptivePolicy pins the budget-policy state: the
// adaptive policy allocates from previous-boundary measured counts and
// bests, which ride in the checkpoint, so a resumed run re-plays the same
// allocation sequence.
func TestCheckpointRestoreAdaptivePolicy(t *testing.T) {
	tasks := schedTasks(t)
	tn := tuner.RandomTuner{}
	ref, cps := runCollectingCheckpoints(t, tn, 19,
		specsFor(tasks, 40, 23, 4, transfer.NewHistory()),
		Options{TaskConcurrency: 2, Policy: AdaptivePolicy{}})
	if len(cps) < 3 {
		t.Fatalf("only %d checkpoints captured", len(cps))
	}
	for k, cp := range cps {
		got, err := Run(context.Background(), tn, schedBackend(t, 19),
			specsFor(tasks, 40, 23, 4, transfer.NewHistory()),
			Options{TaskConcurrency: 2, Policy: AdaptivePolicy{}, Resume: serializedCheckpoint(t, cp)})
		if err != nil {
			t.Fatalf("checkpoint %d: resume: %v", k, err)
		}
		if !sameOutcomes(ref, got) {
			t.Fatalf("checkpoint %d: resumed outcomes differ", k)
		}
	}
}

// TestCheckpointEvery rate-limits capture by new measurements.
func TestCheckpointEvery(t *testing.T) {
	tasks := schedTasks(t)
	every, all := 0, 0
	for i, ce := range []int{0, 24} {
		var n int
		_, err := Run(context.Background(), tuner.RandomTuner{}, schedBackend(t, 2),
			specsFor(tasks, 24, 9, 1, nil), Options{
				TaskConcurrency: 2, CheckpointEvery: ce,
				OnCheckpoint: func(cp *Checkpoint) { n++ },
			})
		if err != nil {
			t.Fatal(err)
		}
		if n < 1 {
			t.Fatalf("CheckpointEvery=%d captured no checkpoints", ce)
		}
		if i == 0 {
			all = n
		} else {
			every = n
		}
	}
	if every >= all {
		t.Fatalf("CheckpointEvery=24 captured %d checkpoints, every-boundary captured %d", every, all)
	}
}

// TestCheckpointDeadlineOutcome: a task finalized by a per-task deadline
// keeps its non-fatal error across the checkpoint, including the
// context.DeadlineExceeded identity.
func TestCheckpointDeadlineOutcome(t *testing.T) {
	task := schedTasks(t)[0]
	out := Outcome{Result: tuner.Result{TunerName: "x", Found: true}}
	out.Result.Best.Config = task.Space.FromFlat(0)
	out.Result.Best.GFLOPS = 1.5
	out.Result.Best.Valid = true
	out.Err = context.DeadlineExceeded
	st := outcomeState(out)
	if st.Err == "" {
		t.Fatal("deadline error not captured")
	}
	tc := TaskCheckpoint{Outcome: &st}
	back, err := tc.restoreOutcome(task)
	if err != nil {
		t.Fatal(err)
	}
	if back.Err == nil || back.Err.Error() != context.DeadlineExceeded.Error() {
		t.Fatalf("restored error %v", back.Err)
	}
	// Restored deadline errors must stay non-fatal under the driver's own
	// classification.
	if fatal(context.Background(), back.Result, back.Err) {
		t.Fatalf("restored deadline error classified as fatal")
	}
}

// TestCheckpointResumeValidation pins the loud-failure modes of resume.
func TestCheckpointResumeValidation(t *testing.T) {
	tasks := schedTasks(t)
	tn := tuner.RandomTuner{}
	specs := specsFor(tasks, 24, 3, 1, nil)
	_, cps := runCollectingCheckpoints(t, tn, 2, specs, Options{TaskConcurrency: 2})
	cp := cps[0]

	fails := []struct {
		name string
		mut  func(c *Checkpoint)
		opts Options
	}{
		{"wrong driver", func(c *Checkpoint) {}, Options{TaskConcurrency: 1}},
		{"wrong version", func(c *Checkpoint) { c.Version = 99 }, Options{TaskConcurrency: 2}},
		{"task list mismatch", func(c *Checkpoint) { c.Tasks = c.Tasks[:1] }, Options{TaskConcurrency: 2}},
		{"task name mismatch", func(c *Checkpoint) { c.Tasks[0].Name = "other" }, Options{TaskConcurrency: 2}},
		{"missing session", func(c *Checkpoint) { c.Tasks[0].Session = nil }, Options{TaskConcurrency: 2}},
		{"published unfinalized", func(c *Checkpoint) { c.Published = []int{0} }, Options{TaskConcurrency: 2}},
	}
	for _, f := range fails {
		bad := serializedCheckpoint(t, cp)
		f.mut(bad)
		o := f.opts
		o.Resume = bad
		if _, err := Run(context.Background(), tn, schedBackend(t, 2), specs, o); err == nil {
			t.Errorf("%s: resume accepted a bad checkpoint", f.name)
		} else if !strings.Contains(err.Error(), "resume") && !strings.Contains(err.Error(), "restore") {
			t.Errorf("%s: undescriptive error %v", f.name, err)
		}
	}
}

// TestCheckpointCallbacksAfterResume: callbacks fire only for
// post-checkpoint events, and restored outcomes are returned without being
// re-fired through OnTaskDone.
func TestCheckpointCallbacksAfterResume(t *testing.T) {
	tasks := schedTasks(t)
	tn := tuner.GATuner{}
	specs := specsFor(tasks, 24, 9, 1, nil)
	_, cps := runCollectingCheckpoints(t, tn, 2, specs, Options{})
	// Pick the first checkpoint with at least one finalized task but not all.
	var mid *Checkpoint
	for _, cp := range cps {
		n := 0
		for _, tc := range cp.Tasks {
			if tc.Outcome != nil {
				n++
			}
		}
		if n > 0 && n < len(tasks) {
			mid = cp
			break
		}
	}
	if mid == nil {
		t.Skip("no mid-run checkpoint with a finalized prefix")
	}
	doneBefore := 0
	for _, tc := range mid.Tasks {
		if tc.Outcome != nil {
			doneBefore++
		}
	}
	var dones []int
	outs, err := Run(context.Background(), tn, schedBackend(t, 2), specs, Options{
		Resume:     serializedCheckpoint(t, mid),
		OnTaskDone: func(o Outcome) { dones = append(dones, o.Index) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(tasks) {
		t.Fatalf("%d outcomes, want %d", len(outs), len(tasks))
	}
	if len(dones) != len(tasks)-doneBefore {
		t.Fatalf("OnTaskDone fired %d times for %d post-checkpoint completions", len(dones), len(tasks)-doneBefore)
	}
	for _, idx := range dones {
		if idx < doneBefore {
			t.Fatalf("OnTaskDone re-fired for restored task %d", idx)
		}
	}
}

// TestCheckpointElapsedAccumulates: reporting bookkeeping (rounds, elapsed)
// survives the checkpoint instead of resetting.
func TestCheckpointElapsedAccumulates(t *testing.T) {
	tc := TaskCheckpoint{Rounds: 3, ElapsedNS: int64(2 * time.Second),
		Outcome: &OutcomeState{TunerName: "x"}}
	out, err := tc.restoreOutcome(schedTasks(t)[0])
	if err != nil {
		t.Fatal(err)
	}
	if out.Rounds != 3 || out.Elapsed != 2*time.Second {
		t.Fatalf("restored bookkeeping rounds=%d elapsed=%v", out.Rounds, out.Elapsed)
	}
}
