package sched

import (
	"fmt"
	"sort"
)

// TaskState is the scheduler's per-task snapshot handed to a Policy at each
// round boundary. All fields are schedule-independent (derived from the
// session's measured samples), so allocations — and therefore results — are
// identical for every TaskConcurrency and Workers value.
type TaskState struct {
	// Index is the task's position in the spec list; allocations returned
	// by Allocate are index-aligned.
	Index int
	Name  string
	// Done marks a finalized task; its allocation is ignored.
	Done bool
	// Measured / PrevMeasured are the measurement counts now and at the
	// previous round boundary.
	Measured     int
	PrevMeasured int
	// Budget is the task's own normalized budget; PlanSize its batch size.
	Budget   int
	PlanSize int
	// Weight is the task's multiplicity in the graph (Task.Count): a knob
	// shared by many fused kernels is worth more end-to-end latency per
	// GFLOPS gained.
	Weight int
	// Best / PrevBest are the best valid GFLOPS now and at the previous
	// round boundary (0 while nothing valid was measured).
	Best     float64
	PrevBest float64
}

// Policy decides how the graph-wide measurement budget is spent per round.
// Implementations must be pure functions of their inputs: the scheduler's
// determinism guarantee extends only to policies whose allocations depend
// on nothing but (round, states).
type Policy interface {
	Name() string
	// SessionBudget returns the measurement cap baked into a task's session
	// options, given the task's own budget and the graph-wide total. The
	// uniform policy keeps the task's own budget; the adaptive policy
	// raises the cap to the total so reallocation can move measurements
	// between tasks (the scheduler still enforces the graph-wide total).
	SessionBudget(own, total int) int
	// Allocate grants each task additional measurements for the coming
	// round (index-aligned with states; entries for Done tasks are
	// ignored). The scheduler caps each grant at the task's session budget
	// and the remaining graph-wide budget.
	Allocate(round int, states []TaskState) []int
}

// PolicyByName resolves a policy by its CLI name. The empty string selects
// the uniform default.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "", "uniform":
		return UniformPolicy{}, nil
	case "adaptive":
		return AdaptivePolicy{}, nil
	}
	return nil, fmt.Errorf("sched: unknown budget policy %q (want uniform or adaptive)", name)
}

// UniformPolicy reproduces the legacy pipeline's budget behaviour: every
// task keeps its own budget and advances by one plan per round until it is
// spent. With TaskConcurrency 1 this is exactly the pre-scheduler pipeline.
type UniformPolicy struct{}

// Name implements Policy.
func (UniformPolicy) Name() string { return "uniform" }

// SessionBudget implements Policy: each task keeps its own budget.
func (UniformPolicy) SessionBudget(own, _ int) int { return own }

// Allocate implements Policy: one plan per live task per round.
func (UniformPolicy) Allocate(_ int, states []TaskState) []int {
	out := make([]int, len(states))
	for i, st := range states {
		if !st.Done {
			out[i] = st.PlanSize
		}
	}
	return out
}

// AdaptivePolicy reallocates the remaining graph-wide budget each round
// toward the tasks with the highest marginal GFLOPS gain — the improvement
// in best throughput per measurement since the previous round boundary,
// weighted by the task's graph multiplicity. Tasks that stopped improving
// cede their share to tasks still climbing; every live task keeps a floor
// of one measurement per round so its gain estimate stays fresh (and so a
// temporarily stalled task can re-enter). While no gains exist (the first
// rounds, or when every task plateaued) it falls back to equal weights,
// which also makes the dry-run preview exact until measurements diverge.
type AdaptivePolicy struct{}

// Name implements Policy.
func (AdaptivePolicy) Name() string { return "adaptive" }

// SessionBudget implements Policy: any task may consume up to the
// graph-wide total; the scheduler enforces the aggregate cap.
func (AdaptivePolicy) SessionBudget(_, total int) int { return total }

// Allocate implements Policy.
func (AdaptivePolicy) Allocate(_ int, states []TaskState) []int {
	out := make([]int, len(states))
	live := make([]int, 0, len(states))
	quantum := 0 // same aggregate spend rate per round as uniform
	for i, st := range states {
		if st.Done {
			continue
		}
		live = append(live, i)
		quantum += st.PlanSize
	}
	if len(live) == 0 {
		return out
	}

	weights := make([]float64, len(live))
	wsum := 0.0
	for j, i := range live {
		st := states[i]
		dm := st.Measured - st.PrevMeasured
		if dm < 1 {
			dm = 1
		}
		gain := (st.Best - st.PrevBest) / float64(dm)
		if gain < 0 {
			gain = 0
		}
		w := float64(max(1, st.Weight)) * gain
		weights[j] = w
		wsum += w
	}
	if wsum <= 0 {
		for j := range weights {
			weights[j] = 1
		}
		wsum = float64(len(live))
	}

	// Floor of one measurement per live task; the rest apportioned by
	// largest remainder (exact quotas rounded down, leftovers to the
	// largest fractional parts, ties resolved by task index via the stable
	// sort over index order).
	rem := quantum - len(live)
	if rem < 0 {
		rem = 0
	}
	base := make([]int, len(live))
	exact := make([]float64, len(live))
	assigned := 0
	for j := range live {
		exact[j] = float64(rem) * weights[j] / wsum
		base[j] = int(exact[j])
		assigned += base[j]
	}
	order := make([]int, len(live))
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool {
		return exact[order[a]]-float64(base[order[a]]) > exact[order[b]]-float64(base[order[b]])
	})
	for k := 0; k < rem-assigned; k++ {
		base[order[k%len(order)]]++
	}
	for j, i := range live {
		out[i] = 1 + base[j]
	}
	return out
}
