package sched

// PlannedGrant is one task's share of a previewed round.
type PlannedGrant struct {
	// Index / Name identify the task.
	Index int
	Name  string
	// Grant is the measurements granted this round; Cumulative the planned
	// total after the round.
	Grant      int
	Cumulative int
}

// RoundPlan is one previewed scheduler round.
type RoundPlan struct {
	Round int
	// Grants lists the tasks granted work this round, in task-index order.
	Grants []PlannedGrant
}

// PlanPreview simulates the round/budget schedule the scheduler would run
// for the specs under opts — without opening sessions or measuring anything
// (cmd/tune -dry-run). The simulation mirrors the round driver's allocation
// and capping exactly, with two stated idealizations: sessions are assumed
// to hit their per-round goals exactly (a real batch may overshoot by a
// partial plan), and early stopping is unpredictable and ignored. Because
// no measurements exist, marginal gains are all zero, so the adaptive
// policy follows its equal-weight fallback — the schedule it runs until
// real gains differentiate the tasks.
//
// With TaskConcurrency <= 1 and the uniform policy the scheduler runs the
// sequential driver; the preview then shows each task's rounds grouped the
// same way the round driver would, which is also the order the sequential
// driver spends the same budgets in.
func PlanPreview(specs []Spec, opts Options) []RoundPlan {
	if len(specs) == 0 {
		return nil
	}
	policy := opts.Policy
	if policy == nil {
		policy = UniformPolicy{}
	}
	n := len(specs)
	ownBudget := make([]int, n)
	sessBudget := make([]int, n)
	planSize := make([]int, n)
	totalBudget := 0
	for i, sp := range specs {
		nopts := sp.Opts.Normalized()
		ownBudget[i] = nopts.Budget
		planSize[i] = nopts.PlanSize
		totalBudget += nopts.Budget
	}
	for i := range specs {
		sessBudget[i] = policy.SessionBudget(ownBudget[i], totalBudget)
	}

	measured := make([]int, n)
	prev := make([]int, n)
	done := make([]bool, n)
	var plans []RoundPlan
	for round := 0; ; round++ {
		totalMeasured := 0
		for i := range specs {
			totalMeasured += measured[i]
		}
		budgetSpent := totalMeasured >= totalBudget
		liveCount := 0
		for i := range specs {
			if done[i] {
				continue
			}
			if measured[i] >= sessBudget[i] || budgetSpent {
				done[i] = true
				continue
			}
			liveCount++
		}
		if liveCount == 0 {
			return plans
		}

		states := make([]TaskState, n)
		for i, sp := range specs {
			states[i] = TaskState{
				Index: i, Name: sp.Task.Name, Done: done[i],
				Measured: measured[i], PrevMeasured: prev[i],
				Budget: ownBudget[i], PlanSize: planSize[i],
				Weight: sp.Task.Count,
			}
		}
		grants := policy.Allocate(round, states)
		plan := RoundPlan{Round: round}
		remaining := totalBudget - totalMeasured
		for i := range specs {
			if done[i] {
				continue
			}
			g := 0
			if i < len(grants) {
				g = grants[i]
			}
			g = min(g, sessBudget[i]-measured[i], remaining)
			if g <= 0 {
				continue
			}
			remaining -= g
			measured[i] += g
			plan.Grants = append(plan.Grants, PlannedGrant{
				Index: i, Name: specs[i].Task.Name, Grant: g, Cumulative: measured[i]})
		}
		if len(plan.Grants) == 0 {
			// Mirror the scheduler's liveness guard: one plan per live task.
			for i := range specs {
				if done[i] {
					continue
				}
				g := min(planSize[i], sessBudget[i]-measured[i])
				if g < 1 {
					g = 1
				}
				measured[i] += g
				plan.Grants = append(plan.Grants, PlannedGrant{
					Index: i, Name: specs[i].Task.Name, Grant: g, Cumulative: measured[i]})
			}
		}
		for i := range specs {
			if !done[i] {
				prev[i] = states[i].Measured
			}
		}
		plans = append(plans, plan)
	}
}
