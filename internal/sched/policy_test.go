package sched

import (
	"testing"

	"repro/internal/tuner"
)

func TestPolicyByName(t *testing.T) {
	for name, want := range map[string]string{"": "uniform", "uniform": "uniform", "adaptive": "adaptive"} {
		p, err := PolicyByName(name)
		if err != nil || p.Name() != want {
			t.Fatalf("PolicyByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Fatal("unknown policy should error")
	}
}

func TestUniformAllocate(t *testing.T) {
	p := UniformPolicy{}
	if got := p.SessionBudget(64, 1000); got != 64 {
		t.Fatalf("SessionBudget = %d, want 64", got)
	}
	states := []TaskState{
		{Index: 0, PlanSize: 8},
		{Index: 1, PlanSize: 16, Done: true},
		{Index: 2, PlanSize: 4},
	}
	got := p.Allocate(0, states)
	if got[0] != 8 || got[1] != 0 || got[2] != 4 {
		t.Fatalf("Allocate = %v", got)
	}
}

func TestAdaptiveAllocate(t *testing.T) {
	p := AdaptivePolicy{}
	if got := p.SessionBudget(64, 1000); got != 1000 {
		t.Fatalf("SessionBudget = %d, want total", got)
	}

	// No gains anywhere: equal split of the uniform quantum.
	flat := []TaskState{
		{Index: 0, PlanSize: 8, Weight: 1},
		{Index: 1, PlanSize: 8, Weight: 1},
	}
	got := p.Allocate(0, flat)
	if got[0] != 8 || got[1] != 8 {
		t.Fatalf("equal fallback: %v", got)
	}

	// Task 1 improved, task 0 plateaued: the quantum shifts toward task 1,
	// but task 0 keeps its floor of one.
	gain := []TaskState{
		{Index: 0, PlanSize: 8, Weight: 1, Measured: 16, PrevMeasured: 8, Best: 100, PrevBest: 100},
		{Index: 1, PlanSize: 8, Weight: 1, Measured: 16, PrevMeasured: 8, Best: 120, PrevBest: 100},
	}
	got = p.Allocate(3, gain)
	if got[0] != 1 || got[1] != 15 {
		t.Fatalf("gain shift: %v (want [1 15])", got)
	}
	if got[0]+got[1] != 16 {
		t.Fatalf("quantum not conserved: %v", got)
	}

	// Equal gains, unequal weights: the heavier task gets the larger share;
	// the largest-remainder tie goes to the lower index.
	weighted := []TaskState{
		{Index: 0, PlanSize: 8, Weight: 1, Measured: 16, PrevMeasured: 8, Best: 110, PrevBest: 100},
		{Index: 1, PlanSize: 8, Weight: 3, Measured: 16, PrevMeasured: 8, Best: 110, PrevBest: 100},
	}
	got = p.Allocate(5, weighted)
	if got[0]+got[1] != 16 || got[1] <= got[0] {
		t.Fatalf("weighted shift: %v", got)
	}

	// Done tasks get nothing and contribute no quantum.
	done := []TaskState{
		{Index: 0, PlanSize: 8, Done: true},
		{Index: 1, PlanSize: 8, Weight: 1},
	}
	got = p.Allocate(7, done)
	if got[0] != 0 || got[1] != 8 {
		t.Fatalf("done handling: %v", got)
	}
	if out := p.Allocate(8, []TaskState{{Index: 0, Done: true}}); out[0] != 0 {
		t.Fatalf("all-done: %v", out)
	}
}

func specsForPreview(t *testing.T, budget, plan int) []Spec {
	t.Helper()
	tasks := schedTasks(t)
	specs := make([]Spec, len(tasks))
	for i, task := range tasks {
		specs[i] = Spec{Task: task, Opts: tuner.Options{Budget: budget, PlanSize: plan, EarlyStop: -1}}
	}
	return specs
}

func TestPlanPreviewUniform(t *testing.T) {
	specs := specsForPreview(t, 24, 8)
	plans := PlanPreview(specs, Options{})
	if len(plans) != 3 {
		t.Fatalf("%d rounds, want 3 (24/8)", len(plans))
	}
	cum := map[int]int{}
	for r, plan := range plans {
		if plan.Round != r {
			t.Fatalf("round numbering: %+v", plan)
		}
		for _, g := range plan.Grants {
			if g.Grant != 8 {
				t.Fatalf("uniform grant %d, want 8", g.Grant)
			}
			cum[g.Index] += g.Grant
			if g.Cumulative != cum[g.Index] {
				t.Fatalf("cumulative mismatch: %+v", g)
			}
		}
	}
	for i := range specs {
		if cum[i] != 24 {
			t.Fatalf("task %d planned %d, want 24", i, cum[i])
		}
	}
}

func TestPlanPreviewAdaptive(t *testing.T) {
	specs := specsForPreview(t, 24, 8)
	plans := PlanPreview(specs, Options{Policy: AdaptivePolicy{}})
	if len(plans) == 0 {
		t.Fatal("no rounds planned")
	}
	total := 0
	for _, plan := range plans {
		for _, g := range plan.Grants {
			total += g.Grant
		}
	}
	if total != 3*24 {
		t.Fatalf("planned total %d, want %d", total, 3*24)
	}
	if PlanPreview(nil, Options{}) != nil {
		t.Fatal("empty preview should be nil")
	}
}
