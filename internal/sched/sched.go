// Package sched is the deterministic graph-level scheduler that replaced
// the pipeline's sequential per-task loop: it opens one resumable tuner
// session per extracted task (tuner.Opener) and advances them in rounds,
// fanning the per-round step work of up to TaskConcurrency tasks onto
// worker goroutines while each session's planned batches still run on the
// shared measurement pool.
//
// # Determinism model
//
// Results are a pure function of the specs, the policy, and the backend
// seeds — never of timing:
//
//   - Sessions are self-contained: all search randomness is drawn from the
//     per-task seed, and seeded backends derive measurement noise from
//     (seed, config), so a task's sample stream does not depend on when its
//     steps run relative to other tasks'.
//   - Round structure is computed single-threaded at round boundaries from
//     the sessions' measured counts and best values, which themselves are
//     schedule-independent. TaskConcurrency therefore only changes how many
//     tasks' step work runs in parallel, not what any task measures.
//   - Transfer-learning history is snapshotted at round boundaries: every
//     live task reads a per-task view refreshed from the master history
//     after completed tasks publish to it in task-index order, so
//     cross-task warm starts see the same history regardless of which
//     goroutine finished first.
//
// Consequently outcomes are bit-identical across every Workers value and
// every TaskConcurrency value for a given driver. TaskConcurrency 1 with
// the uniform policy selects the classic sequential driver — task after
// task with live transfer chaining, bit-identical to the pre-scheduler
// pipeline — while TaskConcurrency > 1 (or the adaptive policy) uses the
// round driver, whose transfer warm starts differ from the sequential
// chain only in snapshot granularity.
//
// Unseeded backends draw noise from one shared stream, so concurrent task
// stepping would interleave it nondeterministically; the scheduler degrades
// their execution to one task at a time (round structure is unaffected).
package sched

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/backend"
	"repro/internal/par"
	"repro/internal/transfer"
	"repro/internal/tuner"
)

// Spec is one task to schedule: the tuning problem plus its fully prepared
// per-task options (seed already derived, resume samples attached, observer
// chained, Transfer pointing at the run's master history).
type Spec struct {
	Task *tuner.Task
	Opts tuner.Options
}

// Outcome is the completion record of one task.
type Outcome struct {
	// Index is the task's position in the spec list.
	Index int
	Task  *tuner.Task
	// Result is what the equivalent Tune call would have returned.
	Result tuner.Result
	// Err is the task's non-fatal error (a per-task deadline expiry whose
	// partial search still found a deployable best). Fatal errors abort Run
	// instead and are reported as a *TaskError.
	Err error
	// Elapsed is the wall clock spent stepping this task's session.
	Elapsed time.Duration
	// Rounds is how many scheduler rounds the task was stepped in (1 for
	// the sequential driver).
	Rounds int
}

// Options configures a scheduler run.
type Options struct {
	// TaskConcurrency is how many tasks advance concurrently within a
	// round. <= 1 selects the sequential driver (with the uniform policy:
	// the exact legacy pipeline order). The value only controls execution
	// parallelism — outcomes are identical for every value.
	TaskConcurrency int
	// Policy allocates the per-round measurement budget; nil means
	// UniformPolicy.
	Policy Policy
	// TaskDeadline bounds each task's search wall clock (zero = none). In
	// the round driver the deadline context starts at the task's first
	// step.
	TaskDeadline time.Duration
	// OnTaskStart, when non-nil, is called once per task (1-based index)
	// before its session can step: in spec order in both drivers.
	OnTaskStart func(taskIdx, taskTotal int, name string)
	// OnTaskDone, when non-nil, receives each task's outcome the moment it
	// is finalized: immediately after the task in the sequential driver, at
	// the next round boundary (in task-index order) in the round driver.
	// Both drivers invoke it from a single goroutine, never concurrently.
	OnTaskDone func(Outcome)
}

// TaskError reports the fatal failure of one task, aborting the run.
type TaskError struct {
	TaskName string
	Index    int
	Err      error
}

func (e *TaskError) Error() string {
	return fmt.Sprintf("sched: task %s: %v", e.TaskName, e.Err)
}

func (e *TaskError) Unwrap() error { return e.Err }

// fatal mirrors the pipeline's task-error tolerance: a per-task deadline
// expiry that still produced a deployable best is survivable — the best
// found within the budgeted time is deployed — while a parent cancellation,
// any other error, or an empty-handed task aborts the run.
func fatal(ctx context.Context, res tuner.Result, err error) bool {
	return err != nil && (ctx.Err() != nil || !errors.Is(err, context.DeadlineExceeded) || !res.Found)
}

// Run tunes every spec and returns the outcomes in spec order. On a fatal
// task failure it returns the outcomes finalized so far plus a *TaskError
// (wrapping the task's tuning error); the remaining tasks are not tuned.
func Run(ctx context.Context, tn tuner.Opener, b backend.Backend, specs []Spec, opts Options) ([]Outcome, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	if opts.Policy == nil {
		opts.Policy = UniformPolicy{}
	}
	conc := opts.TaskConcurrency
	if conc > len(specs) {
		conc = len(specs)
	}
	if conc < 1 {
		conc = 1
	}
	_, uniform := opts.Policy.(UniformPolicy)
	if conc == 1 && uniform {
		return runSequential(ctx, tn, b, specs, opts)
	}
	if !b.Seeded() {
		// One shared noise stream: round structure stays policy-driven but
		// step execution must be serial (and is then deterministic, since
		// rounds visit tasks in index order).
		conc = 1
	}
	return runRounds(ctx, tn, b, specs, opts, conc)
}

// runSequential is the legacy pipeline driver: open, drive to completion
// and finalize each task in order, with the shared transfer history chaining
// live from task to task. Bit-identical to the pre-scheduler per-task loop.
func runSequential(ctx context.Context, tn tuner.Opener, b backend.Backend, specs []Spec, opts Options) ([]Outcome, error) {
	outs := make([]Outcome, 0, len(specs))
	for i, sp := range specs {
		if opts.OnTaskStart != nil {
			opts.OnTaskStart(i+1, len(specs), sp.Task.Name)
		}
		// The per-task deadline is layered under the caller's ctx: either
		// can end the search, and the session returns the samples measured
		// so far in both cases.
		tctx := ctx
		cancel := func() {}
		if opts.TaskDeadline > 0 {
			tctx, cancel = context.WithTimeout(ctx, opts.TaskDeadline)
		}
		start := time.Now() //lint:ignore walltime Outcome.Elapsed observability: recorded for reporting, never read by scheduling
		sess, err := tn.Open(tctx, sp.Task, b, sp.Opts)
		if err != nil {
			cancel()
			return outs, &TaskError{TaskName: sp.Task.Name, Index: i, Err: err}
		}
		res, terr := tuner.Drive(tctx, sess)
		cancel()
		elapsed := time.Since(start) //lint:ignore walltime Outcome.Elapsed observability: reported upward only
		if fatal(ctx, res, terr) {
			return outs, &TaskError{TaskName: sp.Task.Name, Index: i, Err: terr}
		}
		out := Outcome{Index: i, Task: sp.Task, Result: res, Err: terr, Elapsed: elapsed, Rounds: 1}
		outs = append(outs, out)
		if opts.OnTaskDone != nil {
			opts.OnTaskDone(out)
		}
	}
	return outs, nil
}

// taskRun is the round driver's per-task state. Fields written by worker
// goroutines (done, elapsed, rounds, cancel) are only read by the driver
// goroutine after the round barrier; the task's deadline context itself
// lives in a slice local to runRounds (contexts are call-scoped).
type taskRun struct {
	idx        int
	spec       Spec
	sess       tuner.Session
	master     *transfer.History // the spec's shared history, nil when transfer is off
	view       *transfer.History // round-boundary snapshot the session reads
	ownBudget  int               // the spec's normalized budget
	sessBudget int               // the cap baked into the session (policy may raise it)
	planSize   int
	cancel     context.CancelFunc
	done       bool // session reported done
	finalized  bool
	elapsed    time.Duration
	rounds     int
	prevMeas   int
	prevBest   float64
}

// runRounds is the round driver: all sessions open up front, and each round
// the policy grants every live task a measurement allowance, the granted
// tasks step concurrently (at most conc at a time), and the boundary
// finalizes finished tasks and re-snapshots the transfer views.
func runRounds(ctx context.Context, tn tuner.Opener, b backend.Backend, specs []Spec, opts Options, conc int) ([]Outcome, error) {
	totalBudget := 0
	for _, sp := range specs {
		totalBudget += sp.Opts.Normalized().Budget
	}

	runs := make([]*taskRun, len(specs))
	defer func() {
		for _, tr := range runs {
			if tr != nil && tr.cancel != nil {
				tr.cancel()
			}
		}
	}()
	for i, sp := range specs {
		if opts.OnTaskStart != nil {
			opts.OnTaskStart(i+1, len(specs), sp.Task.Name)
		}
		nopts := sp.Opts.Normalized()
		tr := &taskRun{idx: i, spec: sp, ownBudget: nopts.Budget, planSize: nopts.PlanSize}
		tr.sessBudget = opts.Policy.SessionBudget(nopts.Budget, totalBudget)
		nopts.Budget = tr.sessBudget
		if sp.Opts.Transfer != nil {
			tr.master = sp.Opts.Transfer
			tr.view = tr.master.Clone()
			nopts.Transfer = tr.view
		}
		sess, err := tn.Open(ctx, sp.Task, b, nopts)
		if err != nil {
			return nil, &TaskError{TaskName: sp.Task.Name, Index: i, Err: err}
		}
		tr.sess = sess
		runs[i] = tr
	}

	outs := make([]Outcome, len(specs))
	// Per-task stepping contexts (parent ctx, optionally under the task
	// deadline), created lazily at a task's first step so the deadline clock
	// starts when the task does. Each slot is touched by one worker per
	// round and rounds are barriers, so plain access is safe.
	tctxs := make([]context.Context, len(specs))
	finalized := 0
	for round := 0; ; round++ {
		// A parent cancellation aborts the whole run, like the legacy
		// pipeline. Sessions cancelled mid-round latch the ctx error and are
		// reported as a fatal TaskError below instead.
		if err := ctx.Err(); err != nil {
			return doneOutcomes(outs, runs), fmt.Errorf("sched: run aborted: %w", err)
		}
		// ---- Round boundary (single goroutine) --------------------------
		totalMeasured := 0
		for _, tr := range runs {
			totalMeasured += tr.sess.Measured()
		}
		budgetSpent := totalMeasured >= totalBudget
		for i, tr := range runs {
			if tr.finalized {
				continue
			}
			if !tr.done && tr.sess.Measured() < tr.sessBudget && !budgetSpent {
				continue
			}
			res, rerr := tr.sess.Result()
			tr.finalized = true
			finalized++
			if tr.cancel != nil {
				tr.cancel()
				tr.cancel = nil
			}
			if fatal(ctx, res, rerr) {
				return doneOutcomes(outs, runs), &TaskError{TaskName: tr.spec.Task.Name, Index: i, Err: rerr}
			}
			// Publish to the master history exactly as the session's own
			// finalization published to its discarded view.
			if tr.master != nil && len(res.Samples) > 0 {
				tr.master.Add(tr.spec.Task.Name, tr.spec.Task.Workload.Op, res.Samples)
			}
			outs[i] = Outcome{Index: i, Task: tr.spec.Task, Result: res, Err: rerr,
				Elapsed: tr.elapsed, Rounds: tr.rounds}
			if opts.OnTaskDone != nil {
				opts.OnTaskDone(outs[i])
			}
		}
		for _, tr := range runs {
			if !tr.finalized && tr.view != nil {
				tr.view.CopyFrom(tr.master)
			}
		}
		if finalized == len(specs) {
			return outs, nil
		}

		// ---- Allocation -------------------------------------------------
		states := make([]TaskState, len(specs))
		for i, tr := range runs {
			best, _ := tr.sess.BestGFLOPS()
			states[i] = TaskState{
				Index: i, Name: tr.spec.Task.Name, Done: tr.finalized,
				Measured: tr.sess.Measured(), PrevMeasured: tr.prevMeas,
				Budget: tr.ownBudget, PlanSize: tr.planSize,
				Weight: tr.spec.Task.Count,
				Best:   best, PrevBest: tr.prevBest,
			}
		}
		grants := opts.Policy.Allocate(round, states)
		type work struct {
			tr   *taskRun
			goal int
		}
		var wl []work
		remaining := totalBudget - totalMeasured
		for i, tr := range runs {
			if tr.finalized {
				continue
			}
			g := 0
			if i < len(grants) {
				g = grants[i]
			}
			g = min(g, tr.sessBudget-states[i].Measured, remaining)
			if g <= 0 {
				continue
			}
			remaining -= g
			wl = append(wl, work{tr, states[i].Measured + g})
		}
		if len(wl) == 0 {
			// Liveness guard: the policy granted nothing although budget and
			// live tasks remain — advance every live task by one plan so the
			// run always terminates.
			for i, tr := range runs {
				if tr.finalized {
					continue
				}
				g := min(tr.planSize, tr.sessBudget-states[i].Measured)
				if g < 1 {
					g = 1
				}
				wl = append(wl, work{tr, states[i].Measured + g})
			}
		}
		for i, tr := range runs {
			if !tr.finalized {
				tr.prevMeas = states[i].Measured
				tr.prevBest = states[i].Best
			}
		}

		// ---- Execution --------------------------------------------------
		// Each work item steps one session toward its goal; sessions are
		// single-goroutine but distinct, so items run concurrently. A
		// scheduled task always takes at least one step, so a session at its
		// cap reports done rather than stalling forever.
		par.For(len(wl), conc, func(j int) {
			w := wl[j]
			tr := w.tr
			start := time.Now() //lint:ignore walltime Outcome.Elapsed observability: per-task timing is reported, never scheduled on
			if tctxs[tr.idx] == nil {
				tctxs[tr.idx] = ctx
				if opts.TaskDeadline > 0 {
					tctxs[tr.idx], tr.cancel = context.WithTimeout(ctx, opts.TaskDeadline)
				}
			}
			for {
				done, _ := tr.sess.Step(tctxs[tr.idx])
				if done {
					tr.done = true
					break
				}
				if tr.sess.Measured() >= w.goal {
					break
				}
			}
			tr.elapsed += time.Since(start) //lint:ignore walltime Outcome.Elapsed observability: accumulate-only
			tr.rounds++
		})
	}
}

// doneOutcomes returns the outcomes of tasks already finalized when a fatal
// error aborts the round driver, in spec order.
func doneOutcomes(outs []Outcome, runs []*taskRun) []Outcome {
	kept := make([]Outcome, 0, len(outs))
	for i, tr := range runs {
		if tr.finalized && outs[i].Task != nil {
			kept = append(kept, outs[i])
		}
	}
	return kept
}
