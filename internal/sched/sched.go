// Package sched is the deterministic graph-level scheduler that replaced
// the pipeline's sequential per-task loop: it opens one resumable tuner
// session per extracted task (tuner.Opener) and advances them in rounds,
// fanning the per-round step work of up to TaskConcurrency tasks onto
// worker goroutines while each session's planned batches still run on the
// shared measurement pool.
//
// # Determinism model
//
// Results are a pure function of the specs, the policy, and the backend
// seeds — never of timing:
//
//   - Sessions are self-contained: all search randomness is drawn from the
//     per-task seed, and seeded backends derive measurement noise from
//     (seed, config), so a task's sample stream does not depend on when its
//     steps run relative to other tasks'.
//   - Round structure is computed single-threaded at round boundaries from
//     the sessions' measured counts and best values, which themselves are
//     schedule-independent. TaskConcurrency therefore only changes how many
//     tasks' step work runs in parallel, not what any task measures.
//   - Transfer-learning history is snapshotted at round boundaries: every
//     live task reads a per-task view refreshed from the master history
//     after completed tasks publish to it in task-index order, so
//     cross-task warm starts see the same history regardless of which
//     goroutine finished first.
//
// Consequently outcomes are bit-identical across every Workers value and
// every TaskConcurrency value for a given driver. TaskConcurrency 1 with
// the uniform policy selects the classic sequential driver — task after
// task with live transfer chaining, bit-identical to the pre-scheduler
// pipeline — while TaskConcurrency > 1 (or the adaptive policy) uses the
// round driver, whose transfer warm starts differ from the sequential
// chain only in snapshot granularity.
//
// Unseeded backends draw noise from one shared stream, so concurrent task
// stepping would interleave it nondeterministically; the scheduler degrades
// their execution to one task at a time (round structure is unaffected).
package sched

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/backend"
	"repro/internal/par"
	"repro/internal/transfer"
	"repro/internal/tuner"
)

// Spec is one task to schedule: the tuning problem plus its fully prepared
// per-task options (seed already derived, resume samples attached, observer
// chained, Transfer pointing at the run's master history).
type Spec struct {
	Task *tuner.Task
	Opts tuner.Options
}

// Outcome is the completion record of one task.
type Outcome struct {
	// Index is the task's position in the spec list.
	Index int
	Task  *tuner.Task
	// Result is what the equivalent Tune call would have returned.
	Result tuner.Result
	// Err is the task's non-fatal error (a per-task deadline expiry whose
	// partial search still found a deployable best). Fatal errors abort Run
	// instead and are reported as a *TaskError.
	Err error
	// Elapsed is the wall clock spent stepping this task's session.
	Elapsed time.Duration
	// Rounds is how many scheduler rounds the task was stepped in (1 for
	// the sequential driver).
	Rounds int
}

// Options configures a scheduler run.
type Options struct {
	// TaskConcurrency is how many tasks advance concurrently within a
	// round. <= 1 selects the sequential driver (with the uniform policy:
	// the exact legacy pipeline order). The value only controls execution
	// parallelism — outcomes are identical for every value.
	TaskConcurrency int
	// Policy allocates the per-round measurement budget; nil means
	// UniformPolicy.
	Policy Policy
	// TaskDeadline bounds each task's search wall clock (zero = none). In
	// the round driver the deadline context starts at the task's first
	// step.
	TaskDeadline time.Duration
	// OnTaskStart, when non-nil, is called once per task (1-based index)
	// before its session can step: in spec order in both drivers.
	OnTaskStart func(taskIdx, taskTotal int, name string)
	// OnTaskDone, when non-nil, receives each task's outcome the moment it
	// is finalized: immediately after the task in the sequential driver, at
	// the next round boundary (in task-index order) in the round driver.
	// Both drivers invoke it from a single goroutine, never concurrently.
	OnTaskDone func(Outcome)
	// OnCheckpoint, when non-nil, receives the run's serializable state at
	// boundaries (see Checkpoint): round boundaries in the round driver,
	// step and finalization boundaries in the sequential one. It is invoked
	// from the driver goroutine, never concurrently with stepping, and the
	// checkpoint is fully detached — the callback may serialize it at
	// leisure. A session that cannot snapshot aborts the run with a
	// *TaskError the first time a checkpoint is due.
	OnCheckpoint func(*Checkpoint)
	// CheckpointEvery is the minimum number of new measurements between
	// checkpoints; boundaries reached earlier are skipped. 0 captures at
	// every boundary. The run-completing boundary always captures, so the
	// final checkpoint of a finished run has every task finalized.
	CheckpointEvery int
	// Resume, when non-nil, continues a previous run from its checkpoint
	// instead of starting fresh. The caller supplies the same specs,
	// backend, policy, and concurrency it originally ran with — with fresh
	// (empty) transfer histories, which resume repopulates from the
	// checkpoint — and the continued run's outcomes are bit-identical to
	// the uninterrupted run's. Callbacks fire only for events after the
	// checkpoint; outcomes restored from it are returned but not re-fired
	// through OnTaskDone. Per-task deadlines restart at the first
	// post-resume step.
	Resume *Checkpoint
}

// TaskError reports the fatal failure of one task, aborting the run.
type TaskError struct {
	TaskName string
	Index    int
	Err      error
}

func (e *TaskError) Error() string {
	return fmt.Sprintf("sched: task %s: %v", e.TaskName, e.Err)
}

func (e *TaskError) Unwrap() error { return e.Err }

// fatal mirrors the pipeline's task-error tolerance: a per-task deadline
// expiry that still produced a deployable best is survivable — the best
// found within the budgeted time is deployed — while a parent cancellation,
// any other error, or an empty-handed task aborts the run.
func fatal(ctx context.Context, res tuner.Result, err error) bool {
	return err != nil && (ctx.Err() != nil || !errors.Is(err, context.DeadlineExceeded) || !res.Found)
}

// Run tunes every spec and returns the outcomes in spec order. On a fatal
// task failure it returns the outcomes finalized so far plus a *TaskError
// (wrapping the task's tuning error); the remaining tasks are not tuned.
func Run(ctx context.Context, tn tuner.Opener, b backend.Backend, specs []Spec, opts Options) ([]Outcome, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	if opts.Policy == nil {
		opts.Policy = UniformPolicy{}
	}
	conc := opts.TaskConcurrency
	if conc > len(specs) {
		conc = len(specs)
	}
	if conc < 1 {
		conc = 1
	}
	_, uniform := opts.Policy.(UniformPolicy)
	if conc == 1 && uniform {
		return runSequential(ctx, tn, b, specs, opts)
	}
	if !b.Seeded() {
		// One shared noise stream: round structure stays policy-driven but
		// step execution must be serial (and is then deterministic, since
		// rounds visit tasks in index order).
		conc = 1
	}
	return runRounds(ctx, tn, b, specs, opts, conc)
}

// runSequential is the legacy pipeline driver: open, drive to completion
// and finalize each task in order, with the shared transfer history chaining
// live from task to task. Bit-identical to the pre-scheduler per-task loop.
// The Drive loop is inlined as an explicit step loop so a checkpoint can be
// captured at every step boundary and after every finalization.
func runSequential(ctx context.Context, tn tuner.Opener, b backend.Backend, specs []Spec, opts Options) ([]Outcome, error) {
	outs := make([]Outcome, 0, len(specs))
	var published []int // indices in transfer-publication order
	first := 0
	var liveState *tuner.SessionState
	var liveElapsed time.Duration
	totalDone := 0 // measurements recorded by finalized tasks
	lastCp := 0    // totalMeasured at the last captured checkpoint

	if cp := opts.Resume; cp != nil {
		if err := cp.validate(DriverSequential, specs); err != nil {
			return nil, err
		}
		// Finalized tasks form a prefix in this driver; rebuild their
		// outcomes and replay their transfer publications.
		for i, tc := range cp.Tasks {
			if tc.Outcome == nil {
				break
			}
			out, err := tc.restoreOutcome(specs[i].Task)
			if err != nil {
				return nil, err
			}
			outs = append(outs, out)
			totalDone += out.Result.Measurements
		}
		first = len(outs)
		for i := first; i < len(cp.Tasks); i++ {
			if cp.Tasks[i].Outcome != nil {
				return nil, fmt.Errorf("sched: resume: sequential checkpoint finalized task %d before task %d", i, first)
			}
			if cp.Tasks[i].Session != nil && i != first {
				return nil, fmt.Errorf("sched: resume: sequential checkpoint carries a session for task %d, want %d", i, first)
			}
		}
		if first < len(cp.Tasks) {
			liveState = cp.Tasks[first].Session
			liveElapsed = time.Duration(cp.Tasks[first].ElapsedNS)
		}
		for _, idx := range cp.Published {
			if idx < 0 || idx >= first {
				return nil, fmt.Errorf("sched: resume: published task %d is not finalized", idx)
			}
			sp := specs[idx]
			if sp.Opts.Transfer != nil && len(outs[idx].Result.Samples) > 0 {
				sp.Opts.Transfer.Add(sp.Task.Name, sp.Task.Workload.Op, outs[idx].Result.Samples)
			}
			published = append(published, idx)
		}
		lastCp = totalDone
	}

	for i := first; i < len(specs); i++ {
		sp := specs[i]
		st := liveState
		liveState = nil
		prior := time.Duration(0)
		if st != nil {
			prior = liveElapsed
		} else if opts.OnTaskStart != nil {
			// A restored task already announced itself before the
			// checkpoint; only fresh tasks fire the callback.
			opts.OnTaskStart(i+1, len(specs), sp.Task.Name)
		}
		// The per-task deadline is layered under the caller's ctx: either
		// can end the search, and the session returns the samples measured
		// so far in both cases. The deadline clock restarts on resume.
		tctx := ctx
		cancel := func() {}
		if opts.TaskDeadline > 0 {
			tctx, cancel = context.WithTimeout(ctx, opts.TaskDeadline)
		}
		start := time.Now() //lint:ignore walltime Outcome.Elapsed observability: recorded for reporting, never read by scheduling
		var sess tuner.Session
		var err error
		if st != nil {
			sess, err = tn.Restore(tctx, sp.Task, b, sp.Opts, *st)
		} else {
			sess, err = tn.Open(tctx, sp.Task, b, sp.Opts)
		}
		if err != nil {
			cancel()
			return outs, &TaskError{TaskName: sp.Task.Name, Index: i, Err: err}
		}
		for {
			done, serr := sess.Step(tctx)
			if done || serr != nil {
				break
			}
			if opts.OnCheckpoint == nil {
				continue
			}
			if tm := totalDone + sess.Measured(); tm-lastCp >= opts.CheckpointEvery {
				snap, cerr := snapshotSession(sess, sp.Task.Name, i)
				if cerr != nil {
					cancel()
					return outs, cerr
				}
				//lint:ignore walltime Outcome.Elapsed observability: carried through the checkpoint for reporting only
				cp := seqCheckpoint(specs, outs, published, i, snap, prior+time.Since(start))
				lastCp = tm
				opts.OnCheckpoint(cp)
			}
		}
		res, terr := sess.Result()
		cancel()
		elapsed := prior + time.Since(start) //lint:ignore walltime Outcome.Elapsed observability: reported upward only
		if fatal(ctx, res, terr) {
			return outs, &TaskError{TaskName: sp.Task.Name, Index: i, Err: terr}
		}
		out := Outcome{Index: i, Task: sp.Task, Result: res, Err: terr, Elapsed: elapsed, Rounds: 1}
		outs = append(outs, out)
		totalDone += res.Measurements
		if sp.Opts.Transfer != nil && len(res.Samples) > 0 {
			// The session itself published to the shared history in
			// Result; record the order so resume can replay the Add.
			published = append(published, i)
		}
		if opts.OnTaskDone != nil {
			opts.OnTaskDone(out)
		}
		if opts.OnCheckpoint != nil {
			if last := i == len(specs)-1; last || totalDone-lastCp >= opts.CheckpointEvery {
				cp := seqCheckpoint(specs, outs, published, i+1, nil, 0)
				lastCp = totalDone
				opts.OnCheckpoint(cp)
			}
		}
	}
	return outs, nil
}

// seqCheckpoint assembles the sequential driver's checkpoint: the finalized
// prefix, optionally the live session's snapshot, and empty placeholders
// for tasks not yet started.
func seqCheckpoint(specs []Spec, outs []Outcome, published []int, next int, live *tuner.SessionState, liveElapsed time.Duration) *Checkpoint {
	cp := &Checkpoint{Version: CheckpointVersion, Driver: DriverSequential, Round: next,
		Published: append([]int(nil), published...), Tasks: make([]TaskCheckpoint, len(specs))}
	for i, sp := range specs {
		tc := TaskCheckpoint{Index: i, Name: sp.Task.Name}
		switch {
		case i < len(outs):
			tc.Rounds = outs[i].Rounds
			tc.ElapsedNS = int64(outs[i].Elapsed)
			tc.PrevMeasured = outs[i].Result.Measurements
			st := outcomeState(outs[i])
			tc.Outcome = &st
		case i == next && live != nil:
			tc.Session = live
			tc.ElapsedNS = int64(liveElapsed)
		}
		cp.Tasks[i] = tc
	}
	return cp
}

// taskRun is the round driver's per-task state. Fields written by worker
// goroutines (done, elapsed, rounds, cancel) are only read by the driver
// goroutine after the round barrier; the task's deadline context itself
// lives in a slice local to runRounds (contexts are call-scoped).
type taskRun struct {
	idx        int
	spec       Spec
	sess       tuner.Session
	master     *transfer.History // the spec's shared history, nil when transfer is off
	view       *transfer.History // round-boundary snapshot the session reads
	ownBudget  int               // the spec's normalized budget
	sessBudget int               // the cap baked into the session (policy may raise it)
	planSize   int
	cancel     context.CancelFunc
	done       bool // session reported done
	finalized  bool
	elapsed    time.Duration
	rounds     int
	prevMeas   int
	prevBest   float64
	// finalMeasured / finalBest stand in for the session's accounting view
	// when a finalized task was restored from a checkpoint without one.
	finalMeasured int
	finalBest     float64
}

// measured is the task's budget-accounting view: the live session's count,
// or the restored outcome's for a checkpoint-restored finalized task.
func (tr *taskRun) measured() int {
	if tr.sess != nil {
		return tr.sess.Measured()
	}
	return tr.finalMeasured
}

// best mirrors measured for the best-valid-GFLOPS view.
func (tr *taskRun) best() float64 {
	if tr.sess != nil {
		b, _ := tr.sess.BestGFLOPS()
		return b
	}
	return tr.finalBest
}

// runRounds is the round driver: all sessions open up front, and each round
// the policy grants every live task a measurement allowance, the granted
// tasks step concurrently (at most conc at a time), and the boundary
// finalizes finished tasks and re-snapshots the transfer views.
func runRounds(ctx context.Context, tn tuner.Opener, b backend.Backend, specs []Spec, opts Options, conc int) ([]Outcome, error) {
	totalBudget := 0
	for _, sp := range specs {
		totalBudget += sp.Opts.Normalized().Budget
	}

	cp := opts.Resume
	if cp != nil {
		if err := cp.validate(DriverRounds, specs); err != nil {
			return nil, err
		}
	}

	runs := make([]*taskRun, len(specs))
	defer func() {
		for _, tr := range runs {
			if tr != nil && tr.cancel != nil {
				tr.cancel()
			}
		}
	}()
	outs := make([]Outcome, len(specs))
	finalized := 0
	var published []int // indices in transfer-publication order

	// Pass 1: per-task bookkeeping, and restored outcomes for tasks the
	// checkpoint had already finalized. Opening the sessions waits until the
	// master transfer histories are rebuilt (pass 2) so restored sessions
	// clone warm-start views with the same content the original ones held.
	for i, sp := range specs {
		if cp == nil && opts.OnTaskStart != nil {
			// On resume every task already announced itself before the
			// checkpoint (this driver opens all tasks up front).
			opts.OnTaskStart(i+1, len(specs), sp.Task.Name)
		}
		nopts := sp.Opts.Normalized()
		tr := &taskRun{idx: i, spec: sp, ownBudget: nopts.Budget, planSize: nopts.PlanSize}
		tr.sessBudget = opts.Policy.SessionBudget(nopts.Budget, totalBudget)
		if sp.Opts.Transfer != nil {
			tr.master = sp.Opts.Transfer
		}
		runs[i] = tr
		if cp == nil {
			continue
		}
		tc := cp.Tasks[i]
		tr.rounds = tc.Rounds
		tr.elapsed = time.Duration(tc.ElapsedNS)
		tr.prevMeas = tc.PrevMeasured
		tr.prevBest = tc.PrevBest
		if tc.Outcome != nil {
			out, err := tc.restoreOutcome(sp.Task)
			if err != nil {
				return nil, err
			}
			outs[i] = out
			tr.finalized = true
			tr.finalMeasured = out.Result.Measurements
			if out.Result.Found {
				tr.finalBest = out.Result.Best.GFLOPS
			}
			finalized++
		} else if tc.Session == nil {
			return nil, fmt.Errorf("sched: resume: live task %s has no session snapshot", sp.Task.Name)
		}
	}

	// Pass 2: replay transfer publications into the caller's fresh master
	// histories, in the original publication order.
	if cp != nil {
		for _, idx := range cp.Published {
			if idx < 0 || idx >= len(runs) || !runs[idx].finalized {
				return nil, fmt.Errorf("sched: resume: published task %d is not finalized", idx)
			}
			tr := runs[idx]
			if tr.master != nil && len(outs[idx].Result.Samples) > 0 {
				tr.master.Add(tr.spec.Task.Name, tr.spec.Task.Workload.Op, outs[idx].Result.Samples)
			}
			published = append(published, idx)
		}
	}

	// Pass 3: open (or restore) the live sessions.
	for i, sp := range specs {
		tr := runs[i]
		if tr.finalized {
			continue
		}
		nopts := sp.Opts.Normalized()
		nopts.Budget = tr.sessBudget
		if tr.master != nil {
			tr.view = tr.master.Clone()
			nopts.Transfer = tr.view
		}
		var sess tuner.Session
		var err error
		if cp != nil {
			sess, err = tn.Restore(ctx, sp.Task, b, nopts, *cp.Tasks[i].Session)
		} else {
			sess, err = tn.Open(ctx, sp.Task, b, nopts)
		}
		if err != nil {
			return nil, &TaskError{TaskName: sp.Task.Name, Index: i, Err: err}
		}
		tr.sess = sess
	}
	// Per-task stepping contexts (parent ctx, optionally under the task
	// deadline), created lazily at a task's first step so the deadline clock
	// starts when the task does (and restarts there on resume). Each slot is
	// touched by one worker per round and rounds are barriers, so plain
	// access is safe.
	tctxs := make([]context.Context, len(specs))
	firstRound := 0
	if cp != nil {
		// Re-enter the loop at the checkpointed boundary: the boundary code
		// is idempotent for already-finalized tasks, and policies see the
		// same round numbers the uninterrupted run fed them.
		firstRound = cp.Round
	}
	lastCp := 0 // totalMeasured at the last captured checkpoint
	for round := firstRound; ; round++ {
		// A parent cancellation aborts the whole run, like the legacy
		// pipeline. Sessions cancelled mid-round latch the ctx error and are
		// reported as a fatal TaskError below instead.
		if err := ctx.Err(); err != nil {
			return doneOutcomes(outs, runs), fmt.Errorf("sched: run aborted: %w", err)
		}
		// ---- Round boundary (single goroutine) --------------------------
		totalMeasured := 0
		for _, tr := range runs {
			totalMeasured += tr.measured()
		}
		budgetSpent := totalMeasured >= totalBudget
		for i, tr := range runs {
			if tr.finalized {
				continue
			}
			if !tr.done && tr.sess.Measured() < tr.sessBudget && !budgetSpent {
				continue
			}
			res, rerr := tr.sess.Result()
			tr.finalized = true
			finalized++
			if tr.cancel != nil {
				tr.cancel()
				tr.cancel = nil
			}
			if fatal(ctx, res, rerr) {
				return doneOutcomes(outs, runs), &TaskError{TaskName: tr.spec.Task.Name, Index: i, Err: rerr}
			}
			// Publish to the master history exactly as the session's own
			// finalization published to its discarded view, recording the
			// order so resume can replay the Adds.
			if tr.master != nil && len(res.Samples) > 0 {
				tr.master.Add(tr.spec.Task.Name, tr.spec.Task.Workload.Op, res.Samples)
				published = append(published, i)
			}
			outs[i] = Outcome{Index: i, Task: tr.spec.Task, Result: res, Err: rerr,
				Elapsed: tr.elapsed, Rounds: tr.rounds}
			if opts.OnTaskDone != nil {
				opts.OnTaskDone(outs[i])
			}
		}
		for _, tr := range runs {
			if !tr.finalized && tr.view != nil {
				tr.view.CopyFrom(tr.master)
			}
		}
		// The checkpoint is captured after finalization and view refresh,
		// before allocation: resume re-enters this boundary, skips the
		// already-finalized tasks, and re-runs the same Allocate call.
		if opts.OnCheckpoint != nil && (finalized == len(specs) || totalMeasured-lastCp >= opts.CheckpointEvery) {
			rcp := &Checkpoint{Version: CheckpointVersion, Driver: DriverRounds, Round: round,
				Published: append([]int(nil), published...), Tasks: make([]TaskCheckpoint, len(specs))}
			for i, tr := range runs {
				tc := TaskCheckpoint{Index: i, Name: tr.spec.Task.Name, Rounds: tr.rounds,
					ElapsedNS: int64(tr.elapsed), PrevMeasured: tr.prevMeas, PrevBest: tr.prevBest}
				if tr.finalized {
					st := outcomeState(outs[i])
					tc.Outcome = &st
				} else {
					snap, err := snapshotSession(tr.sess, tr.spec.Task.Name, i)
					if err != nil {
						return doneOutcomes(outs, runs), err
					}
					tc.Session = snap
				}
				rcp.Tasks[i] = tc
			}
			lastCp = totalMeasured
			opts.OnCheckpoint(rcp)
		}
		if finalized == len(specs) {
			return outs, nil
		}

		// ---- Allocation -------------------------------------------------
		states := make([]TaskState, len(specs))
		for i, tr := range runs {
			states[i] = TaskState{
				Index: i, Name: tr.spec.Task.Name, Done: tr.finalized,
				Measured: tr.measured(), PrevMeasured: tr.prevMeas,
				Budget: tr.ownBudget, PlanSize: tr.planSize,
				Weight: tr.spec.Task.Count,
				Best:   tr.best(), PrevBest: tr.prevBest,
			}
		}
		grants := opts.Policy.Allocate(round, states)
		type work struct {
			tr   *taskRun
			goal int
		}
		var wl []work
		remaining := totalBudget - totalMeasured
		for i, tr := range runs {
			if tr.finalized {
				continue
			}
			g := 0
			if i < len(grants) {
				g = grants[i]
			}
			g = min(g, tr.sessBudget-states[i].Measured, remaining)
			if g <= 0 {
				continue
			}
			remaining -= g
			wl = append(wl, work{tr, states[i].Measured + g})
		}
		if len(wl) == 0 {
			// Liveness guard: the policy granted nothing although budget and
			// live tasks remain — advance every live task by one plan so the
			// run always terminates.
			for i, tr := range runs {
				if tr.finalized {
					continue
				}
				g := min(tr.planSize, tr.sessBudget-states[i].Measured)
				if g < 1 {
					g = 1
				}
				wl = append(wl, work{tr, states[i].Measured + g})
			}
		}
		for i, tr := range runs {
			if !tr.finalized {
				tr.prevMeas = states[i].Measured
				tr.prevBest = states[i].Best
			}
		}

		// ---- Execution --------------------------------------------------
		// Each work item steps one session toward its goal; sessions are
		// single-goroutine but distinct, so items run concurrently. A
		// scheduled task always takes at least one step, so a session at its
		// cap reports done rather than stalling forever.
		par.For(len(wl), conc, func(j int) {
			w := wl[j]
			tr := w.tr
			start := time.Now() //lint:ignore walltime Outcome.Elapsed observability: per-task timing is reported, never scheduled on
			if tctxs[tr.idx] == nil {
				tctxs[tr.idx] = ctx
				if opts.TaskDeadline > 0 {
					tctxs[tr.idx], tr.cancel = context.WithTimeout(ctx, opts.TaskDeadline)
				}
			}
			for {
				done, _ := tr.sess.Step(tctxs[tr.idx])
				if done {
					tr.done = true
					break
				}
				if tr.sess.Measured() >= w.goal {
					break
				}
			}
			tr.elapsed += time.Since(start) //lint:ignore walltime Outcome.Elapsed observability: accumulate-only
			tr.rounds++
		})
	}
}

// doneOutcomes returns the outcomes of tasks already finalized when a fatal
// error aborts the round driver, in spec order.
func doneOutcomes(outs []Outcome, runs []*taskRun) []Outcome {
	kept := make([]Outcome, 0, len(outs))
	for i, tr := range runs {
		if tr.finalized && outs[i].Task != nil {
			kept = append(kept, outs[i])
		}
	}
	return kept
}
