package sched

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/tensor"
	"repro/internal/transfer"
	"repro/internal/tuner"
)

// schedTasks builds three conv tasks of different shapes and graph
// multiplicities, the minimal interesting scheduling problem.
func schedTasks(t *testing.T) []*tuner.Task {
	t.Helper()
	shapes := []tensor.Workload{
		tensor.Conv2D(1, 3, 32, 32, 16, 3, 1, 1),
		tensor.Conv2D(1, 16, 16, 16, 32, 3, 1, 1),
		tensor.Conv2D(1, 32, 8, 8, 64, 3, 1, 1),
	}
	tasks := make([]*tuner.Task, len(shapes))
	for i, w := range shapes {
		task, err := tuner.NewTask("sched.T"+string(rune('1'+i)), w)
		if err != nil {
			t.Fatal(err)
		}
		task.Count = i + 1
		tasks[i] = task
	}
	return tasks
}

func schedBackend(t *testing.T, seed int64) backend.Backend {
	t.Helper()
	b, err := backend.New("gtx1080ti", seed)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// specsFor derives per-task options the way core does (decorrelated seeds,
// shared transfer history).
func specsFor(tasks []*tuner.Task, budget int, seed int64, workers int, hist *transfer.History) []Spec {
	specs := make([]Spec, len(tasks))
	for i, task := range tasks {
		specs[i] = Spec{Task: task, Opts: tuner.Options{
			Budget: budget, EarlyStop: -1, PlanSize: 8,
			Seed: seed + int64(i)*1000003, Workers: workers, Transfer: hist,
		}}
	}
	return specs
}

func sameOutcomes(a, b []Outcome) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		ra, rb := a[i].Result, b[i].Result
		if a[i].Index != b[i].Index || ra.Found != rb.Found ||
			ra.Measurements != rb.Measurements ||
			math.Float64bits(ra.Best.GFLOPS) != math.Float64bits(rb.Best.GFLOPS) ||
			len(ra.Samples) != len(rb.Samples) {
			return false
		}
		for j := range ra.Samples {
			if ra.Samples[j].Config.Flat() != rb.Samples[j].Config.Flat() ||
				math.Float64bits(ra.Samples[j].GFLOPS) != math.Float64bits(rb.Samples[j].GFLOPS) ||
				ra.Samples[j].Valid != rb.Samples[j].Valid {
				return false
			}
		}
	}
	return true
}

// TestSequentialMatchesTuneChain: the sequential driver must behave exactly
// like hand-driving Tune task after task with live transfer chaining.
func TestSequentialMatchesTuneChain(t *testing.T) {
	tasks := schedTasks(t)
	tn := tuner.NewAutoTVM()

	hist := transfer.NewHistory()
	var want []Outcome
	for i, sp := range specsFor(tasks, 32, 5, 1, hist) {
		res, err := tn.Tune(context.Background(), sp.Task, schedBackend(t, 3), sp.Opts)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, Outcome{Index: i, Task: sp.Task, Result: res})
	}

	var starts, dones []string
	got, err := Run(context.Background(), tn, schedBackend(t, 3),
		specsFor(tasks, 32, 5, 1, transfer.NewHistory()), Options{
			OnTaskStart: func(i, n int, name string) { starts = append(starts, name) },
			OnTaskDone:  func(o Outcome) { dones = append(dones, o.Task.Name) },
		})
	if err != nil {
		t.Fatal(err)
	}
	if !sameOutcomes(want, got) {
		t.Fatal("sequential driver differs from the hand-driven Tune chain")
	}
	for i, task := range tasks {
		if starts[i] != task.Name || dones[i] != task.Name {
			t.Fatalf("callback order: starts=%v dones=%v", starts, dones)
		}
	}
	for _, o := range got {
		if o.Rounds != 1 || o.Elapsed < 0 {
			t.Fatalf("outcome bookkeeping: rounds=%d elapsed=%v", o.Rounds, o.Elapsed)
		}
	}
}

// TestUniformGridInvariance is the scheduler's tentpole contract: with the
// uniform policy and transfer off, outcomes are bit-identical across every
// Workers x TaskConcurrency combination — including concurrency 1, which
// runs the sequential driver.
func TestUniformGridInvariance(t *testing.T) {
	tasks := schedTasks(t)
	tn := tuner.GATuner{}
	var ref []Outcome
	for _, workers := range []int{1, 4, 8} {
		for _, conc := range []int{1, 2, 4} {
			outs, err := Run(context.Background(), tn, schedBackend(t, 7),
				specsFor(tasks, 40, 11, workers, nil), Options{TaskConcurrency: conc})
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = outs
				continue
			}
			if !sameOutcomes(ref, outs) {
				t.Fatalf("outcomes differ at workers=%d conc=%d", workers, conc)
			}
		}
	}
	total := 0
	for _, o := range ref {
		total += o.Result.Measurements
	}
	if total != 3*40 {
		t.Fatalf("total measurements %d, want %d", total, 3*40)
	}
}

// TestTransferRoundInvariance: with transfer on, the round driver's
// snapshot history makes outcomes identical for every concurrency > 1 and
// worker count.
func TestTransferRoundInvariance(t *testing.T) {
	tasks := schedTasks(t)
	tn := tuner.NewAutoTVM()
	var ref []Outcome
	for _, workers := range []int{1, 4} {
		for _, conc := range []int{2, 3, 4} {
			outs, err := Run(context.Background(), tn, schedBackend(t, 13),
				specsFor(tasks, 32, 17, workers, transfer.NewHistory()),
				Options{TaskConcurrency: conc})
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = outs
				continue
			}
			if !sameOutcomes(ref, outs) {
				t.Fatalf("outcomes differ at workers=%d conc=%d", workers, conc)
			}
		}
	}
}

// TestAdaptiveInvariance: the adaptive policy routes through the round
// driver at every concurrency, so its outcomes too are invariant across the
// whole grid, transfer included.
func TestAdaptiveInvariance(t *testing.T) {
	tasks := schedTasks(t)
	tn := tuner.RandomTuner{}
	var ref []Outcome
	for _, workers := range []int{1, 4} {
		for _, conc := range []int{1, 2, 4} {
			outs, err := Run(context.Background(), tn, schedBackend(t, 19),
				specsFor(tasks, 40, 23, workers, transfer.NewHistory()),
				Options{TaskConcurrency: conc, Policy: AdaptivePolicy{}})
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = outs
				continue
			}
			if !sameOutcomes(ref, outs) {
				t.Fatalf("outcomes differ at workers=%d conc=%d", workers, conc)
			}
		}
	}
	// The graph-wide total is enforced up to one plan of overshoot per task.
	total := 0
	for _, o := range ref {
		total += o.Result.Measurements
		if o.Rounds < 1 {
			t.Fatalf("task %s ran %d rounds", o.Task.Name, o.Rounds)
		}
	}
	if total > 3*40+3*8 || total < 3*40-3*8 {
		t.Fatalf("adaptive total measurements %d far from budget %d", total, 3*40)
	}
}

// TestParentCancellation: a cancelled parent context aborts both drivers
// with an error, like the legacy pipeline.
func TestParentCancellation(t *testing.T) {
	tasks := schedTasks(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, conc := range []int{1, 2} {
		outs, err := Run(ctx, tuner.RandomTuner{}, schedBackend(t, 1),
			specsFor(tasks, 24, 3, 1, nil), Options{TaskConcurrency: conc})
		if err == nil {
			t.Fatalf("conc=%d: cancelled run should error", conc)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("conc=%d: error %v does not wrap context.Canceled", conc, err)
		}
		if len(outs) != 0 {
			t.Fatalf("conc=%d: %d outcomes from a run cancelled before start", conc, len(outs))
		}
	}
}

// TestTaskDeadlineFatal: a deadline so short that a task finds nothing is a
// fatal TaskError in both drivers.
func TestTaskDeadlineFatal(t *testing.T) {
	tasks := schedTasks(t)
	for _, conc := range []int{1, 2} {
		_, err := Run(context.Background(), tuner.RandomTuner{}, schedBackend(t, 1),
			specsFor(tasks, 24, 3, 1, nil),
			Options{TaskConcurrency: conc, TaskDeadline: time.Nanosecond})
		var te *TaskError
		if !errors.As(err, &te) {
			t.Fatalf("conc=%d: error %v is not a TaskError", conc, err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("conc=%d: error %v does not wrap DeadlineExceeded", conc, err)
		}
		if te.Error() == "" || te.TaskName == "" {
			t.Fatalf("conc=%d: TaskError not descriptive: %v", conc, te)
		}
	}
}

// TestRoundDriverCompletionEvents: OnTaskDone fires exactly once per task,
// in task-index order within boundaries, from a single goroutine.
func TestRoundDriverCompletionEvents(t *testing.T) {
	tasks := schedTasks(t)
	seen := map[string]int{}
	var order []int
	outs, err := Run(context.Background(), tuner.RandomTuner{}, schedBackend(t, 2),
		specsFor(tasks, 24, 9, 1, nil), Options{
			TaskConcurrency: 2,
			OnTaskDone: func(o Outcome) {
				seen[o.Task.Name]++
				order = append(order, o.Index)
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(tasks) {
		t.Fatalf("%d outcomes, want %d", len(outs), len(tasks))
	}
	for _, task := range tasks {
		if seen[task.Name] != 1 {
			t.Fatalf("task %s completed %d times", task.Name, seen[task.Name])
		}
	}
	// Same budget and plan for every task: all finish at the same boundary,
	// so events arrive strictly in index order.
	for i, idx := range order {
		if idx != i {
			t.Fatalf("completion order %v not index-ordered", order)
		}
	}
}

// TestEmptyAndDefaults covers the trivial paths.
func TestEmptyAndDefaults(t *testing.T) {
	outs, err := Run(context.Background(), tuner.RandomTuner{}, schedBackend(t, 1), nil, Options{})
	if err != nil || outs != nil {
		t.Fatalf("empty run: %v %v", outs, err)
	}
}
