package sched

import (
	"context"
	"fmt"
	"time"

	"repro/internal/active"
	"repro/internal/tuner"
)

// CheckpointVersion is the schema version stamped into every checkpoint.
// Resume rejects checkpoints from a different version rather than guessing
// at field semantics.
const CheckpointVersion = 1

// Driver names stamped into checkpoints. A checkpoint can only resume under
// the driver that wrote it: the two drivers interleave transfer publication
// and stepping differently, so continuing a sequential run under the round
// driver (or vice versa) would not be the same run.
const (
	DriverSequential = "sequential"
	DriverRounds     = "rounds"
)

// Checkpoint is the complete serializable state of a scheduler run at a
// round boundary (for the sequential driver: a step or finalization
// boundary). It deliberately excludes the ambient run inputs — specs,
// backend, policy, concurrency — which the resuming caller must supply
// exactly as it did originally; the checkpoint carries the driver name and
// the task list so mismatches fail loudly instead of silently diverging.
//
// Everything else a resumed run needs is either in here or derivable:
//
//   - Live sessions ride as tuner.SessionState snapshots and are rebuilt
//     via tuner.Opener.Restore.
//   - Finalized tasks ride as OutcomeState; their transfer publications are
//     replayed into the caller's (fresh) master history in Published order,
//     and the round driver's per-task views are re-cloned from the rebuilt
//     master — the next boundary refreshes them exactly as the original
//     run's boundary did.
//   - The budget policy's inputs (previous-boundary measured counts and
//     bests) are stored per task; both in-repo policies are otherwise
//     stateless, which the Policy contract requires of every implementation.
//
// Two pieces of state are intentionally not carried and restart on resume:
// per-task deadline clocks (Options.TaskDeadline re-arms at the task's first
// post-resume step) and wall-clock phase accounting (pure observability).
type Checkpoint struct {
	Version int    `json:"version"`
	Driver  string `json:"driver"`
	// Round is the boundary the checkpoint was captured at: the resumed run
	// re-enters its driver loop there, so policies that read the round
	// number see the same sequence. For the sequential driver it is the
	// index of the task being (or about to be) stepped.
	Round int `json:"round"`
	// Published lists the indices of tasks that have published their
	// samples to the master transfer history, in publication order. Resume
	// replays these Adds so rebuilt warm-start views are bit-identical.
	Published []int `json:"published,omitempty"`
	// Tasks is index-aligned with the run's specs.
	Tasks []TaskCheckpoint `json:"tasks"`
}

// TaskCheckpoint is one task's slice of a Checkpoint. Exactly one of
// Session (live task) and Outcome (finalized task) is set; both are nil for
// a sequential-driver task that has not started yet.
type TaskCheckpoint struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
	// Rounds and ElapsedNS carry the Outcome bookkeeping accumulated so
	// far; they are reporting-only and never feed back into scheduling.
	Rounds    int   `json:"rounds,omitempty"`
	ElapsedNS int64 `json:"elapsed_ns,omitempty"`
	// PrevMeasured and PrevBest are the policy's previous-boundary view of
	// the task (TaskState.PrevMeasured / PrevBest).
	PrevMeasured int     `json:"prev_measured,omitempty"`
	PrevBest     float64 `json:"prev_best,omitempty"`
	// Session is the live session's snapshot at the boundary.
	Session *tuner.SessionState `json:"session,omitempty"`
	// Outcome is the finalized task's completion record.
	Outcome *OutcomeState `json:"outcome,omitempty"`
}

// OutcomeState is the serializable form of a finalized task's Outcome.
type OutcomeState struct {
	TunerName string              `json:"tuner"`
	Samples   []tuner.SampleState `json:"samples"`
	Best      *tuner.SampleState  `json:"best,omitempty"`
	Found     bool                `json:"found,omitempty"`
	// Err is the task's non-fatal error, by message. Only a per-task
	// deadline expiry can appear here (anything else aborts the run before
	// a checkpoint could record it), so resume revives it as an error that
	// still matches errors.Is(err, context.DeadlineExceeded).
	Err string `json:"err,omitempty"`
}

// restoredErr revives a finalized task's non-fatal error from a checkpoint.
// The only survivable task error is a per-task deadline expiry whose
// partial search still found a deployable best (see fatal), so the revived
// error keeps the context.DeadlineExceeded identity; any other wrapped
// detail is reduced to its message.
type restoredErr struct{ msg string }

func (e *restoredErr) Error() string { return e.msg }

func (e *restoredErr) Unwrap() error { return context.DeadlineExceeded }

// outcomeState captures a finalized outcome for a checkpoint.
func outcomeState(o Outcome) OutcomeState {
	st := OutcomeState{
		TunerName: o.Result.TunerName,
		Samples:   active.SamplesToState(o.Result.Samples),
		Found:     o.Result.Found,
	}
	if o.Result.Found {
		b := active.SamplesToState([]active.Sample{o.Result.Best})
		st.Best = &b[0]
	}
	if o.Err != nil {
		st.Err = o.Err.Error()
	}
	return st
}

// restoreOutcome rebuilds the finalized task's Outcome against the resuming
// run's task definition (configs are revalidated against its space).
func (tc *TaskCheckpoint) restoreOutcome(task *tuner.Task) (Outcome, error) {
	st := tc.Outcome
	samples, err := active.SamplesFromState(task.Space, st.Samples)
	if err != nil {
		return Outcome{}, fmt.Errorf("sched: resume task %s: %w", task.Name, err)
	}
	res := tuner.Result{
		TunerName:    st.TunerName,
		TaskName:     task.Name,
		Samples:      samples,
		Found:        st.Found,
		Measurements: len(samples),
	}
	if st.Best != nil {
		bs, err := active.SamplesFromState(task.Space, []tuner.SampleState{*st.Best})
		if err != nil {
			return Outcome{}, fmt.Errorf("sched: resume task %s: best: %w", task.Name, err)
		}
		res.Best = bs[0]
	}
	var oerr error
	if st.Err != "" {
		oerr = &restoredErr{msg: st.Err}
	}
	return Outcome{Index: tc.Index, Task: task, Result: res, Err: oerr,
		Elapsed: time.Duration(tc.ElapsedNS), Rounds: tc.Rounds}, nil
}

// validate checks a checkpoint against the resuming run's inputs: same
// schema version, same driver (the caller must resume with the same
// concurrency and policy selection), and the same task list in the same
// order. Per-session mismatches — seed, tuner name, snapshot schema — are
// caught downstream by tuner.Opener.Restore.
func (cp *Checkpoint) validate(driver string, specs []Spec) error {
	if cp.Version != CheckpointVersion {
		return fmt.Errorf("sched: resume: checkpoint version %d, want %d", cp.Version, CheckpointVersion)
	}
	if cp.Driver != driver {
		return fmt.Errorf("sched: resume: checkpoint from the %s driver, but the options select the %s driver (resume with the original concurrency and policy)", cp.Driver, driver)
	}
	if len(cp.Tasks) != len(specs) {
		return fmt.Errorf("sched: resume: checkpoint has %d tasks, run has %d", len(cp.Tasks), len(specs))
	}
	for i, tc := range cp.Tasks {
		if tc.Index != i || tc.Name != specs[i].Task.Name {
			return fmt.Errorf("sched: resume: checkpoint task %d is %q, run has %q", i, tc.Name, specs[i].Task.Name)
		}
	}
	return nil
}

// snapshotSession captures one live session, failing with a TaskError when
// the session cannot snapshot (a third-party tuner wrapped by
// tuner.AsOpener) or refuses to.
func snapshotSession(sess tuner.Session, name string, idx int) (*tuner.SessionState, error) {
	snap, ok := sess.(tuner.Snapshotter)
	if !ok {
		return nil, &TaskError{TaskName: name, Index: idx,
			Err: fmt.Errorf("checkpoint: %w", tuner.ErrSnapshotUnsupported)}
	}
	st, err := snap.Snapshot()
	if err != nil {
		return nil, &TaskError{TaskName: name, Index: idx, Err: err}
	}
	return &st, nil
}
