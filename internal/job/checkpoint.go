package job

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/snap"
)

// CheckpointKind tags a job's checkpoint frames. The kind predates the job
// package (cmd/tune wrote it as "tune-checkpoint/v1"), and keeping the
// token means checkpoint files written before the lifecycle moved here
// still resume.
const CheckpointKind = "tune-checkpoint/v1"

// Checkpoint is one checkpoint frame: the run inputs that must match on
// resume (the scheduler state is only meaningful against the exact model,
// tuner, seeds, and budget shape that produced it), the record-log
// position the frame is aligned with, and the scheduler's serialized
// state.
//
// Workers and wall-clock deadlines are deliberately absent: measurement
// results are worker-count invariant, and per-task deadline clocks restart
// on resume by design.
//
// The field declaration order is the frame's canonical JSON order — do not
// reorder.
type Checkpoint struct {
	Model     string `json:"model"`
	Tuner     string `json:"tuner"`
	Device    string `json:"device"`
	Ops       string `json:"ops"`
	Seed      int64  `json:"seed"`
	Budget    int    `json:"budget"`
	EarlyStop int    `json:"early_stop"`
	PlanSize  int    `json:"plan_size"`
	Runs      int    `json:"runs"`
	TaskConc  int    `json:"task_concurrency"`
	Policy    string `json:"budget_policy"`
	// Records counts the record-log entries flushed before this frame was
	// written. Resume truncates the log back to exactly this many records,
	// discarding measurements from the interrupted tail, and continues
	// appending from there.
	Records int               `json:"records"`
	Sched   *sched.Checkpoint `json:"sched"`

	// Path is the file this checkpoint was loaded from, so a resumed run
	// that checkpoints to the same file appends instead of truncating.
	Path string `json:"-"`
}

// checkpointOf captures the spec-derived header of a checkpoint frame; the
// runner fills Records and Sched per boundary.
func checkpointOf(spec Spec, records int, cp *sched.Checkpoint) *Checkpoint {
	return &Checkpoint{
		Model: spec.Model, Tuner: spec.Tuner, Device: spec.Device, Ops: spec.Ops,
		Seed: spec.Seed, Budget: spec.Budget, EarlyStop: spec.EarlyStop,
		PlanSize: spec.PlanSize, Runs: spec.Runs, TaskConc: spec.TaskConcurrency,
		Policy: spec.BudgetPolicy, Records: records, Sched: cp,
	}
}

// Validate rejects a resume whose spec differs from the checkpointed
// run's. The error names the diverging flag so CLI users can correct it.
func (tc *Checkpoint) Validate(spec Spec) error {
	checks := []struct {
		flag      string
		got, want any
	}{
		{"model", tc.Model, spec.Model},
		{"tuner", tc.Tuner, spec.Tuner},
		{"device", tc.Device, spec.Device},
		{"ops", tc.Ops, spec.Ops},
		{"seed", tc.Seed, spec.Seed},
		{"budget", tc.Budget, spec.Budget},
		{"earlystop", tc.EarlyStop, spec.EarlyStop},
		{"plan", tc.PlanSize, spec.PlanSize},
		{"runs", tc.Runs, spec.Runs},
		{"task-concurrency", tc.TaskConc, spec.TaskConcurrency},
		{"budget-policy", tc.Policy, spec.BudgetPolicy},
	}
	for _, c := range checks {
		if c.got != c.want {
			return fmt.Errorf("checkpoint was written with -%s %v, this run has %v (resume with the original flags)", c.flag, c.got, c.want)
		}
	}
	if tc.Sched == nil {
		return fmt.Errorf("checkpoint frame carries no scheduler state")
	}
	return nil
}

// LoadCheckpoint returns the last complete checkpoint frame in path.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	tc := &Checkpoint{}
	ok, err := ReadLast(path, CheckpointKind, tc)
	if err != nil {
		return nil, fmt.Errorf("reading checkpoint %s: %w", path, err)
	}
	if !ok {
		return nil, fmt.Errorf("checkpoint %s holds no complete %q frame", path, CheckpointKind)
	}
	tc.Path = path
	return tc, nil
}

// ReadLast decodes the latest complete frame of the given kind from the
// snap stream at path into v, reporting whether one was found. Torn final
// frames are tolerated (snap.ReadFile semantics).
func ReadLast(path, kind string, v any) (bool, error) {
	frames, err := snap.ReadFile(path)
	if err != nil {
		return false, err
	}
	fr, ok := snap.Last(frames, kind)
	if !ok {
		return false, nil
	}
	if err := fr.Unmarshal(v); err != nil {
		return false, fmt.Errorf("decoding %s frame in %s: %w", kind, path, err)
	}
	return true, nil
}
