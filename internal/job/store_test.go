package job

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/record"
	"repro/internal/sched"
)

func TestStoreCreateAndLoadSpec(t *testing.T) {
	s, err := OpenStore(filepath.Join(t.TempDir(), "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Model: "mobilenet-v1"}.Normalized()
	spec.Seed = 42
	if err := s.Create("a1", spec); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadSpec("a1")
	if err != nil {
		t.Fatal(err)
	}
	if got != spec {
		t.Errorf("LoadSpec = %+v, want %+v", got, spec)
	}
	if err := s.Create("a1", spec); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate Create = %v, want ErrExists", err)
	}
	if _, err := s.LoadSpec("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("LoadSpec(missing) = %v, want ErrNotFound", err)
	}
	if err := s.Create("../escape", spec); !errors.Is(err, ErrBadSpec) {
		t.Errorf("Create with traversal ID = %v, want ErrBadSpec", err)
	}
}

func TestStoreJobsSkipsSpeclessDirs(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Model: "mobilenet-v1"}.Normalized()
	for _, id := range []string{"b", "a", "c"} {
		if err := s.Create(id, spec); err != nil {
			t.Fatal(err)
		}
	}
	// A crash between MkdirAll and the atomic spec write leaves a bare
	// directory; it holds nothing recoverable and must not surface.
	if err := os.MkdirAll(filepath.Join(s.Root(), "torn"), 0o755); err != nil {
		t.Fatal(err)
	}
	ids, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "b", "c"}; strings.Join(ids, ",") != strings.Join(want, ",") {
		t.Errorf("Jobs() = %v, want %v", ids, want)
	}
}

func TestStoreLoadCheckpointClassifies(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Model: "mobilenet-v1"}.Normalized()
	spec.Seed = 7
	if err := s.Create("j1", spec); err != nil {
		t.Fatal(err)
	}

	// No snap file yet: no checkpoint, no error.
	if cp, err := s.LoadCheckpoint("j1"); cp != nil || err != nil {
		t.Fatalf("LoadCheckpoint with no file = %v, %v", cp, err)
	}
	// Empty snap file (crash before the first frame): still no checkpoint.
	if err := os.WriteFile(s.SnapPath("j1"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if cp, err := s.LoadCheckpoint("j1"); cp != nil || err != nil {
		t.Fatalf("LoadCheckpoint on empty file = %v, %v", cp, err)
	}
	// A record log dropped where the snap stream belongs must fail loudly,
	// not read as "no checkpoint" and silently restart the job.
	if err := os.WriteFile(s.SnapPath("j1"), []byte("{\"task\":\"t\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadCheckpoint("j1"); err == nil || !strings.Contains(err.Error(), "not a checkpoint") {
		t.Fatalf("LoadCheckpoint on a record log = %v, want a loud classification error", err)
	}

	// A real frame round-trips with Path set for append-mode resume.
	cpIn := checkpointOf(spec, 3, &sched.Checkpoint{Round: 2})
	f, err := os.Create(s.SnapPath("j1"))
	if err != nil {
		t.Fatal(err)
	}
	sf := &SnapFile{path: s.SnapPath("j1"), f: f}
	if err := sf.Append(CheckpointKind, cpIn); err != nil {
		t.Fatal(err)
	}
	if err := sf.Close(); err != nil {
		t.Fatal(err)
	}
	cp, err := s.LoadCheckpoint("j1")
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil || cp.Records != 3 || cp.Sched == nil || cp.Sched.Round != 2 {
		t.Fatalf("LoadCheckpoint = %+v", cp)
	}
	if cp.Path != s.SnapPath("j1") {
		t.Errorf("checkpoint Path = %q, want the snap path", cp.Path)
	}
	if err := cp.Validate(spec); err != nil {
		t.Errorf("round-tripped checkpoint fails Validate: %v", err)
	}
}

func TestStoreResultRoundTrip(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Model: "mobilenet-v1"}.Normalized()
	if err := s.Create("j1", spec); err != nil {
		t.Fatal(err)
	}
	if res, err := s.LoadResult("j1"); res != nil || err != nil {
		t.Fatalf("LoadResult before finish = %v, %v", res, err)
	}
	in := Result{State: StateDone, LatencyMS: 1.5, Variance: 0.25, TotalMeasurements: 48,
		Records: 48, Tasks: []TaskResult{{Name: "t0", GFLOPS: 10, Measurements: 48}}}
	if err := s.AppendResult("j1", in); err != nil {
		t.Fatal(err)
	}
	out, err := s.LoadResult("j1")
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || out.State != StateDone || out.Records != 48 || len(out.Tasks) != 1 || out.Tasks[0].GFLOPS != 10 {
		t.Fatalf("LoadResult = %+v", out)
	}
}

func TestStoreLoadRecordsTolerant(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if recs, err := s.LoadRecords("ghost"); recs != nil || err != nil {
		t.Fatalf("LoadRecords with no log = %v, %v", recs, err)
	}
	if err := s.Create("j1", Spec{Model: "mobilenet-v1"}.Normalized()); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(s.LogPath("j1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := record.Write(f, []record.Record{{Task: "t", Workload: "w", Step: 1, Config: []int{0}}}); err != nil {
		t.Fatal(err)
	}
	// A torn final line — the write a crash interrupted — is dropped.
	if _, err := f.WriteString(`{"task":"t","works`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := s.LoadRecords("j1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Task != "t" {
		t.Fatalf("LoadRecords = %+v, want the one complete record", recs)
	}
}
