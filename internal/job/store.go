package job

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/record"
	"repro/internal/snap"
)

// Store layout: one directory per job under the root.
//
//	<root>/<id>/spec.json      the submitted Spec (atomic write, never rewritten)
//	<root>/<id>/records.jsonl  the record log (record.StreamWriter, torn-tail tolerant)
//	<root>/<id>/job.snap       checkpoint frames + one terminal result frame
//
// Everything in a job directory is either appended with single writes or
// written atomically, so a daemon killed at any instant leaves a directory
// the next start can classify: a terminal result frame means the job is
// finished; a checkpoint frame without one means "resume from here"; bare
// spec.json means "run from scratch" (which, with the job's deterministic
// seed, replays the identical stream anyway).
const (
	specFile    = "spec.json"
	recordsFile = "records.jsonl"
	snapFile    = "job.snap"
)

// ResultKind tags the terminal frame a finished job appends to its snap
// stream.
const ResultKind = "job-result/v1"

// TaskResult is one task's line in a job result.
type TaskResult struct {
	Name         string  `json:"name"`
	GFLOPS       float64 `json:"gflops"`
	Measurements int     `json:"measurements"`
}

// Result is the terminal frame of a job: how it ended, and — for completed
// jobs — the deployment statistics.
type Result struct {
	// State is the terminal state: StateDone, StateFailed, or
	// StateCanceled.
	State State `json:"state"`
	// Error carries the failure reason of a failed job.
	Error string `json:"error,omitempty"`
	// LatencyMS / Variance are the deployment's end-to-end latency
	// statistics (done jobs only).
	LatencyMS float64 `json:"latency_ms,omitempty"`
	Variance  float64 `json:"variance,omitempty"`
	// TotalMeasurements sums tuning measurements over all tasks.
	TotalMeasurements int `json:"total_measurements,omitempty"`
	// Records is the record-log length the job ended with.
	Records int `json:"records,omitempty"`
	// Tasks lists per-task bests (done jobs only).
	Tasks []TaskResult `json:"tasks,omitempty"`
}

// ErrExists reports a submission whose job ID is already in the store.
var ErrExists = errors.New("job: job already exists")

// ErrNotFound reports an unknown job ID.
var ErrNotFound = errors.New("job: no such job")

// Store is the crash-safe on-disk home of every job the service has
// accepted. It is a dumb directory layer: all locking and state machinery
// lives in the Manager.
type Store struct {
	root string
}

// OpenStore opens (creating if needed) a job store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("job: opening store %s: %w", dir, err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// Dir returns the job's directory path.
func (s *Store) Dir(id string) string { return filepath.Join(s.root, id) }

// LogPath returns the job's record-log path.
func (s *Store) LogPath(id string) string { return filepath.Join(s.root, id, recordsFile) }

// SnapPath returns the job's checkpoint-stream path.
func (s *Store) SnapPath(id string) string { return filepath.Join(s.root, id, snapFile) }

// SpecPath returns the job's spec path.
func (s *Store) SpecPath(id string) string { return filepath.Join(s.root, id, specFile) }

// Create claims a directory for a new job and writes its spec atomically.
// A directory that already holds a spec is ErrExists — the deterministic
// SpecID makes identical resubmissions collide here on purpose.
func (s *Store) Create(id string, spec Spec) error {
	if err := ValidateID(id); err != nil {
		return err
	}
	dir := s.Dir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("job: creating %s: %w", dir, err)
	}
	path := s.SpecPath(id)
	if _, err := os.Stat(path); err == nil {
		return fmt.Errorf("%w: %s", ErrExists, id)
	} else if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("job: probing %s: %w", path, err)
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return fmt.Errorf("job: encoding spec %s: %w", id, err)
	}
	return record.WriteFileAtomic(path, append(data, '\n'), 0o644)
}

// LoadSpec reads a job's spec. An unknown ID is ErrNotFound.
func (s *Store) LoadSpec(id string) (Spec, error) {
	if err := ValidateID(id); err != nil {
		return Spec{}, err
	}
	data, err := os.ReadFile(s.SpecPath(id))
	if errors.Is(err, os.ErrNotExist) {
		return Spec{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if err != nil {
		return Spec{}, fmt.Errorf("job: reading spec of %s: %w", id, err)
	}
	var spec Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return Spec{}, fmt.Errorf("job: decoding spec of %s: %w", id, err)
	}
	return spec, nil
}

// Jobs lists the store's job IDs in sorted order. Directories without a
// spec (a crash between MkdirAll and the atomic spec write) are skipped —
// they hold nothing recoverable.
func (s *Store) Jobs() ([]string, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("job: scanning store %s: %w", s.root, err)
	}
	var ids []string
	for _, e := range entries {
		if !e.IsDir() || ValidateID(e.Name()) != nil {
			continue
		}
		if _, err := os.Stat(s.SpecPath(e.Name())); err != nil {
			continue
		}
		ids = append(ids, e.Name())
	}
	sort.Strings(ids)
	return ids, nil
}

// LoadRecords reads the job's record log with the torn-tail-tolerant
// reader. A job that has not measured yet returns an empty slice.
func (s *Store) LoadRecords(id string) ([]record.Record, error) {
	f, err := os.Open(s.LogPath(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("job: opening log of %s: %w", id, err)
	}
	// Read-only open: a close failure cannot lose data here.
	defer func() { _ = f.Close() }()
	recs, err := record.Read(f)
	if err != nil {
		return nil, fmt.Errorf("job: reading log of %s: %w", id, err)
	}
	return recs, nil
}

// LoadCheckpoint returns the job's latest complete checkpoint frame, or
// nil when the job has none (no snap file yet, or no complete frame in
// it).
func (s *Store) LoadCheckpoint(id string) (*Checkpoint, error) {
	path := s.SnapPath(id)
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	// Classify before parsing: an empty snap file (crash before the first
	// frame) is "no checkpoint", while a foreign file dropped into the job
	// directory must fail loudly instead of reading as an empty stream.
	switch kind, err := snap.Detect(path); {
	case err != nil:
		return nil, err
	case kind == snap.KindEmpty:
		return nil, nil
	case kind != snap.KindSnap:
		return nil, fmt.Errorf("job: %s is a %s, not a checkpoint stream", path, kind)
	}
	tc := &Checkpoint{}
	ok, err := ReadLast(path, CheckpointKind, tc)
	if err != nil {
		return nil, fmt.Errorf("job: reading checkpoint of %s: %w", id, err)
	}
	if !ok {
		return nil, nil
	}
	tc.Path = path
	return tc, nil
}

// LoadResult returns the job's terminal result frame, or nil when the job
// has not finished.
func (s *Store) LoadResult(id string) (*Result, error) {
	path := s.SnapPath(id)
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	res := &Result{}
	ok, err := ReadLast(path, ResultKind, res)
	if err != nil {
		return nil, fmt.Errorf("job: reading result of %s: %w", id, err)
	}
	if !ok {
		return nil, nil
	}
	return res, nil
}

// AppendResult stamps the job's terminal frame onto its snap stream.
func (s *Store) AppendResult(id string, res Result) error {
	f, err := os.OpenFile(s.SnapPath(id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("job: finalizing %s: %w", id, err)
	}
	aerr := snap.Append(f, ResultKind, res)
	if cerr := f.Close(); aerr == nil {
		aerr = cerr
	}
	if aerr != nil {
		return fmt.Errorf("job: finalizing %s: %w", id, aerr)
	}
	return nil
}
