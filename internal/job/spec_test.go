package job

import (
	"errors"
	"strings"
	"testing"
)

func TestNormalizedDefaults(t *testing.T) {
	got := Spec{Model: "mobilenet-v1"}.Normalized()
	want := Spec{
		Model: "mobilenet-v1", Tuner: "bted+bao", Device: "gtx1080ti", Ops: "all",
		Budget: 512, EarlyStop: 400, PlanSize: 64, Runs: 600,
		TaskConcurrency: 1, BudgetPolicy: "uniform",
	}
	if got != want {
		t.Errorf("Normalized() = %+v, want cmd/tune's flag defaults %+v", got, want)
	}
	// Set fields survive normalization untouched.
	full := want
	full.Budget, full.Seed, full.Workers = 24, 7, 3
	if full.Normalized() != full {
		t.Errorf("Normalized() rewrote set fields: %+v", full.Normalized())
	}
	if err := got.Validate(); err != nil {
		t.Errorf("normalized default spec fails Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	base := Spec{Model: "mobilenet-v1"}.Normalized()
	mutate := map[string]func(*Spec){
		"no model":             func(s *Spec) { s.Model = "" },
		"unknown model":        func(s *Spec) { s.Model = "nope" },
		"unknown tuner":        func(s *Spec) { s.Tuner = "nope" },
		"unknown device":       func(s *Spec) { s.Device = "nope" },
		"unknown ops":          func(s *Spec) { s.Ops = "nope" },
		"unknown policy":       func(s *Spec) { s.BudgetPolicy = "nope" },
		"budget low":           func(s *Spec) { s.Budget = -1 },
		"budget high":          func(s *Spec) { s.Budget = MaxBudget + 1 },
		"plan high":            func(s *Spec) { s.PlanSize = MaxPlanSize + 1 },
		"runs high":            func(s *Spec) { s.Runs = MaxRuns + 1 },
		"workers negative":     func(s *Spec) { s.Workers = -1 },
		"workers high":         func(s *Spec) { s.Workers = MaxWorkers + 1 },
		"task conc high":       func(s *Spec) { s.TaskConcurrency = MaxTaskConcurrency + 1 },
		"early stop high":      func(s *Spec) { s.EarlyStop = MaxBudget + 1 },
		"checkpoint negative":  func(s *Spec) { s.CheckpointEvery = -1 },
		"checkpoint too large": func(s *Spec) { s.CheckpointEvery = MaxBudget + 1 },
	}
	for name, mut := range mutate {
		s := base
		mut(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: accepted %+v", name, s)
			continue
		}
		if !errors.Is(err, ErrBadSpec) {
			t.Errorf("%s: error %v does not wrap ErrBadSpec", name, err)
		}
	}
}

func TestDecodeSubmit(t *testing.T) {
	sub, err := DecodeSubmit(strings.NewReader(`{"id": "run-1", "model": "mobilenet-v1", "budget": 24}`))
	if err != nil {
		t.Fatalf("valid submission rejected: %v", err)
	}
	if sub.ID != "run-1" || sub.Spec.Budget != 24 || sub.Spec.Tuner != "bted+bao" {
		t.Errorf("decoded %+v; want id run-1, budget 24, normalized tuner", sub)
	}

	rejected := map[string]string{
		"unknown field":   `{"model": "mobilenet-v1", "budgetz": 24}`,
		"typoed knob":     `{"model": "mobilenet-v1", "Budget ": 1}`,
		"trailing data":   `{"model": "mobilenet-v1"} {"model": "resnet-18"}`,
		"not json":        `--budget 24`,
		"empty":           ``,
		"wrong type":      `{"model": 5}`,
		"bad model":       `{"model": "nope"}`,
		"bad id":          `{"id": "../etc", "model": "mobilenet-v1"}`,
		"budget too big":  `{"model": "mobilenet-v1", "budget": 99999999}`,
		"oversized":       `{"model": "mobilenet-v1", "tuner": "` + strings.Repeat("x", MaxSubmitBytes) + `"}`,
		"array not obj":   `[1, 2]`,
		"null then junk":  `null`,
		"unknown nested":  `{"model": "mobilenet-v1", "spec": {"budget": 1}}`,
		"deadline banned": `{"model": "mobilenet-v1", "task_deadline": "5s"}`,
	}
	for name, body := range rejected {
		_, err := DecodeSubmit(strings.NewReader(body))
		if err == nil {
			t.Errorf("%s: accepted %q", name, body)
			continue
		}
		if !errors.Is(err, ErrBadSpec) {
			t.Errorf("%s: error %v does not wrap ErrBadSpec", name, err)
		}
	}
}

// FuzzDecodeSubmit hammers the HTTP submission decoder with arbitrary
// bytes: it must never panic, and anything it accepts must satisfy the same
// invariants the service relies on (validated spec, usable ID).
func FuzzDecodeSubmit(f *testing.F) {
	f.Add(`{"model": "mobilenet-v1"}`)
	f.Add(`{"id": "run-1", "model": "resnet-18", "tuner": "autotvm", "budget": 24, "seed": -1}`)
	f.Add(`{"model": "mobilenet-v1", "unknown": 1}`)
	f.Add(`{"model": "mobilenet-v1"} trailing`)
	f.Add(`{"id": "` + strings.Repeat("a", 200) + `"}`)
	f.Add(`[{"model": null}]`)
	f.Add("{\"model\": \"mobilenet-v1\", \"budget\": 1e300}")
	f.Add("\x00\x01SNAP1 junk")
	f.Fuzz(func(t *testing.T, body string) {
		sub, err := DecodeSubmit(strings.NewReader(body))
		if err != nil {
			if !errors.Is(err, ErrBadSpec) {
				t.Errorf("DecodeSubmit error %v does not wrap ErrBadSpec", err)
			}
			return
		}
		if verr := sub.Spec.Validate(); verr != nil {
			t.Errorf("accepted spec fails Validate: %v (body %q)", verr, body)
		}
		if sub.ID != "" {
			if verr := ValidateID(sub.ID); verr != nil {
				t.Errorf("accepted ID fails ValidateID: %v", verr)
			}
		}
	})
}
