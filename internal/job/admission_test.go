package job

import (
	"errors"
	"path/filepath"
	"testing"
)

// TestManagerQueueFull pins the admission-control contract: with MaxQueue
// set, a Submit that would push the pending queue past the cap fails with
// ErrQueueFull, leaves no trace in the store, and a later Submit of the
// same ID succeeds once the queue drains. The sequencing is deterministic:
// Submit starts jobs synchronously while capacity remains, so after the
// first Submit returns the worker is occupied and every later admission
// waits in the queue.
func TestManagerQueueFull(t *testing.T) {
	store, err := OpenStore(filepath.Join(t.TempDir(), "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManagerWith(store, ManagerOptions{Concurrency: 1, MaxQueue: 2})
	defer mgr.Close()

	slow := tinySpec(3001)
	slow.Budget = 96 // keeps the worker busy while the queue fills
	if _, err := mgr.Submit(Submit{ID: "run-1", Spec: slow}); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if _, err := mgr.Submit(Submit{ID: "q-1", Spec: tinySpec(3002)}); err != nil {
		t.Fatalf("queued submit 1: %v", err)
	}
	if _, err := mgr.Submit(Submit{ID: "q-2", Spec: tinySpec(3003)}); err != nil {
		t.Fatalf("queued submit 2: %v", err)
	}

	_, err = mgr.Submit(Submit{ID: "q-3", Spec: tinySpec(3004)})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit past the cap: err %v, want ErrQueueFull", err)
	}
	// Rejection must precede the store claim: no directory, so an immediate
	// retry (below) is not an ErrExists collision.
	ids, err := store.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if id == "q-3" {
			t.Fatal("rejected submit left a store directory behind")
		}
	}

	// Cancelling a queued job frees a slot; the retry now admits cleanly.
	if ok, err := mgr.Cancel("q-2"); err != nil || !ok {
		t.Fatalf("cancel queued job: ok=%v err=%v", ok, err)
	}
	if _, err := mgr.Submit(Submit{ID: "q-3", Spec: tinySpec(3004)}); err != nil {
		t.Fatalf("resubmit after drain: %v", err)
	}
}

// TestManagerUnboundedQueue checks MaxQueue 0 keeps the pre-admission
// behavior: everything queues.
func TestManagerUnboundedQueue(t *testing.T) {
	store, err := OpenStore(filepath.Join(t.TempDir(), "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManagerWith(store, ManagerOptions{Concurrency: 1})
	defer mgr.Close()

	slow := tinySpec(3005)
	slow.Budget = 96
	if _, err := mgr.Submit(Submit{ID: "run-1", Spec: slow}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := mgr.Submit(Submit{ID: ids8[i], Spec: tinySpec(int64(3100 + i))}); err != nil {
			t.Fatalf("unbounded submit %d: %v", i, err)
		}
	}
}

var ids8 = []string{"u-0", "u-1", "u-2", "u-3", "u-4", "u-5", "u-6", "u-7"}
