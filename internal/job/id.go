package job

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
)

// seedDomain is the domain-separation prefix of the ID → seed derivation.
// It is part of the wire contract: changing it (or the hash) changes every
// derived seed and therefore every replayed record stream, so it is pinned
// by a golden test and versioned in the name.
const seedDomain = "jobseed/v1\x00"

// DeriveSeed maps a job ID to the run seed used when the Spec does not fix
// one: FNV-1a 64 over the domain prefix followed by the ID bytes,
// reinterpreted as int64. The derivation is deliberately trivial — no
// time, no host state — so the same ID always replays the same stream on
// any machine. The (astronomically unlikely) derived value 0 is mapped to
// 1, because Spec.Seed 0 means "derive from ID".
func DeriveSeed(id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(seedDomain)) //lint:ignore uncheckederr hash.Hash.Write never errors
	h.Write([]byte(id))         //lint:ignore uncheckederr hash.Hash.Write never errors
	s := int64(h.Sum64())
	if s == 0 {
		s = 1
	}
	return s
}

// EffectiveSeed resolves the seed a job runs with: the Spec's own when set,
// the ID-derived one otherwise.
func EffectiveSeed(id string, s Spec) int64 {
	if s.Seed != 0 {
		return s.Seed
	}
	return DeriveSeed(id)
}

// SpecID derives the default job ID of a spec: "j" plus the 16-hex FNV-1a
// of the normalized spec's canonical JSON. json.Marshal emits struct
// fields in declaration order, so the encoding — and the ID — is a pure
// function of the spec's values. Two identical submissions therefore get
// the same ID and the second collides loudly in the store; callers that
// want to run one spec twice give the jobs explicit IDs.
func SpecID(s Spec) string {
	payload, err := json.Marshal(s.Normalized())
	if err != nil {
		// Spec is a flat struct of strings and integers; Marshal cannot
		// fail on it. Guard the API contract anyway.
		panic("job: marshalling spec: " + err.Error()) //lint:ignore panicpath unreachable: Spec marshalling is total
	}
	h := fnv.New64a()
	h.Write(payload) //lint:ignore uncheckederr hash.Hash.Write never errors
	return fmt.Sprintf("j%016x", h.Sum64())
}

// MaxIDLen bounds job IDs; they become directory names.
const MaxIDLen = 128

// ValidateID rejects IDs that are unsafe as store directory names: empty,
// overlong, starting with a dot (hides the directory, and covers "." and
// ".."), or containing anything but [A-Za-z0-9._-].
func ValidateID(id string) error {
	if id == "" {
		return fmt.Errorf("%w: empty job ID", ErrBadSpec)
	}
	if len(id) > MaxIDLen {
		return fmt.Errorf("%w: job ID longer than %d bytes", ErrBadSpec, MaxIDLen)
	}
	if id[0] == '.' {
		return fmt.Errorf("%w: job ID %q may not start with '.'", ErrBadSpec, id)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("%w: job ID %q contains %q (want [A-Za-z0-9._-])", ErrBadSpec, id, c)
		}
	}
	return nil
}
