package job

import (
	"os"

	"repro/internal/sched"
	"repro/internal/snap"
)

// SnapFile is an append-only snap checkpoint stream on disk with the
// latched-error discipline both CLIs used to hand-roll: periodic
// checkpoint appends latch their first failure (checkpointing must never
// abort a run mid-measurement), terminal frames report immediately, and
// the caller checks Err once at the end. Every append is a single Write,
// so a crash tears at most the final frame.
type SnapFile struct {
	path string
	f    *os.File
	werr error
}

// CreateSnapFile opens (or creates) the checkpoint stream at path. With
// appendMode the existing stream is extended — the resume case, where the
// file's frames are already aligned with the run being continued — and
// without it the file is truncated for a fresh run.
func CreateSnapFile(path string, appendMode bool) (*SnapFile, error) {
	mode := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
	if appendMode {
		mode = os.O_CREATE | os.O_WRONLY | os.O_APPEND
	}
	f, err := os.OpenFile(path, mode, 0o644)
	if err != nil {
		return nil, err
	}
	return &SnapFile{path: path, f: f}, nil
}

// Path returns the stream's file path.
func (s *SnapFile) Path() string { return s.path }

// Append writes one frame, latching the first failure: later appends are
// no-ops returning the latched error, which Err also reports.
func (s *SnapFile) Append(kind string, v any) error {
	if s.werr != nil {
		return s.werr
	}
	if err := snap.Append(s.f, kind, v); err != nil {
		s.werr = err
	}
	return s.werr
}

// OnSchedCheckpoint adapts Append to the pipeline's OnCheckpoint hook for
// callers that frame raw scheduler state (cmd/repro's per-trial files).
// Append errors latch; the run keeps going and the caller checks Err.
func (s *SnapFile) OnSchedCheckpoint(kind string) func(*sched.Checkpoint) {
	return func(cp *sched.Checkpoint) {
		_ = s.Append(kind, cp) // latched; reported via Err at the end
	}
}

// Err reports the latched append failure, if any.
func (s *SnapFile) Err() error { return s.werr }

// Close closes the underlying file, reporting the latched append failure
// in preference to the close error.
func (s *SnapFile) Close() error {
	cerr := s.f.Close()
	if s.werr != nil {
		return s.werr
	}
	return cerr
}
