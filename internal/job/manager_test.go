package job

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"
)

// drain consumes a subscription until the stream completes, returning every
// wire line it saw.
func drain(t *testing.T, sub *Sub) [][]byte {
	t.Helper()
	var all [][]byte
	for {
		lines, more, err := sub.Next(context.Background())
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		all = append(all, lines...)
		if !more {
			return all
		}
	}
}

func mustStatus(t *testing.T, m *Manager, id string) Status {
	t.Helper()
	st, err := m.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestManagerCrashResumeCheckpoint kills the daemon mid-job and restarts
// it: a managed run is interrupted by Manager.Close once its first
// checkpoint frame has landed (the graceful-shutdown path — no terminal
// frame), a second manager over the same store recovers it, and the
// finished job's record log must be byte-identical to an uninterrupted
// cmd/tune-equivalent run of the same spec and seed.
func TestManagerCrashResumeCheckpoint(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec(2033)
	spec.Budget = 48 // long enough that shutdown lands mid-run

	// Reference: the same Spec driven straight through the runner.
	refLog := filepath.Join(dir, "ref.jsonl")
	ref, err := Run(context.Background(), spec, RunOptions{LogPath: refLog})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	store, err := OpenStore(filepath.Join(dir, "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	const id = "crash-1"
	mgr1 := NewManager(store, 1)
	if _, err := mgr1.Submit(Submit{ID: id, Spec: spec}); err != nil {
		t.Fatal(err)
	}
	sub, err := mgr1.Subscribe(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for a resumable state: at least one checkpoint frame on disk and
	// a few records streamed, then pull the plug.
	seen := 0
	for {
		recs, more, err := sub.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		seen += len(recs)
		if !more {
			t.Fatalf("job finished (after %d records) before the shutdown fired; raise the spec budget", seen)
		}
		if cp, err := store.LoadCheckpoint(id); err == nil && cp != nil && seen >= spec.PlanSize {
			break
		}
	}
	sub.Close()
	mgr1.Close()

	// Graceful shutdown leaves no terminal frame — the on-disk state says
	// "unfinished", which is exactly what restart recovery keys on.
	if st := mustStatus(t, mgr1, id); st.State != StateQueued {
		t.Fatalf("state after shutdown = %s, want queued (resumable)", st.State)
	}
	if res, err := store.LoadResult(id); res != nil || err != nil {
		t.Fatalf("shutdown wrote a terminal frame: %+v, %v", res, err)
	}
	cp, err := store.LoadCheckpoint(id)
	if err != nil || cp == nil {
		t.Fatalf("no checkpoint on disk after shutdown: %v", err)
	}

	// "Restart the daemon": fresh store handle, fresh manager, recover.
	store2, err := OpenStore(filepath.Join(dir, "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := NewManager(store2, 1)
	if err := mgr2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	if st := mustStatus(t, mgr2, id); !st.Resumed {
		t.Fatalf("recovered job not marked resumed: %+v", st)
	}

	// A post-restart subscriber replays from the start and then follows the
	// resumed run live; the full stream must match the reference count.
	sub2, err := mgr2.Subscribe(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	streamed := drain(t, sub2)
	sub2.Close()
	if len(streamed) != ref.Records {
		t.Errorf("replayed stream has %d records, reference run %d", len(streamed), ref.Records)
	}

	st := mustStatus(t, mgr2, id)
	if st.State != StateDone || st.Result == nil || st.Result.State != StateDone {
		t.Fatalf("resumed job ended %+v", st)
	}
	if st.Result.LatencyMS != ref.Deployment.LatencyMS || st.Result.TotalMeasurements != ref.Deployment.TotalMeasurements {
		t.Errorf("resumed result %+v differs from reference deployment (latency %v, measurements %d)",
			st.Result, ref.Deployment.LatencyMS, ref.Deployment.TotalMeasurements)
	}
	want := readFileBytes(t, refLog)
	got := readFileBytes(t, store2.LogPath(id))
	if !bytes.Equal(want, got) {
		t.Fatalf("served record log differs from uninterrupted run: %d vs %d bytes", len(want), len(got))
	}
}

// TestManagerFIFOAndCancel exercises the queue: with concurrency 1 the
// second and third submissions wait, a queued job cancels instantly with a
// terminal frame, and a running job cancels at its next boundary.
func TestManagerFIFOAndCancel(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, 1)
	defer mgr.Close()

	slow := tinySpec(2034)
	slow.Budget = 48
	if _, err := mgr.Submit(Submit{ID: "a", Spec: slow}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Submit(Submit{ID: "b", Spec: tinySpec(2035)}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Submit(Submit{ID: "c", Spec: tinySpec(2036)}); err != nil {
		t.Fatal(err)
	}
	if st := mustStatus(t, mgr, "b"); st.State != StateQueued {
		t.Fatalf("job b = %s, want queued behind a", st.State)
	}

	// Cancelling a queued job is immediate and terminal.
	if ok, err := mgr.Cancel("c"); err != nil || !ok {
		t.Fatalf("Cancel(c) = %v, %v", ok, err)
	}
	if st := mustStatus(t, mgr, "c"); st.State != StateCanceled {
		t.Fatalf("job c = %s, want canceled", st.State)
	}
	if res, err := store.LoadResult("c"); err != nil || res == nil || res.State != StateCanceled {
		t.Fatalf("canceled queued job has no terminal frame: %+v, %v", res, err)
	}
	if ok, err := mgr.Cancel("c"); err != nil || ok {
		t.Fatalf("second Cancel(c) = %v, %v; want false (already terminal)", ok, err)
	}
	if _, err := mgr.Cancel("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel(ghost) = %v, want ErrNotFound", err)
	}

	// Cancelling the running job interrupts it at the next batch boundary
	// and unblocks the queue.
	if ok, err := mgr.Cancel("a"); err != nil || !ok {
		t.Fatalf("Cancel(a) = %v, %v", ok, err)
	}
	subA, err := mgr.Subscribe("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	drain(t, subA)
	subA.Close()
	if st := mustStatus(t, mgr, "a"); st.State != StateCanceled || st.Result == nil {
		t.Fatalf("job a ended %+v, want canceled with terminal frame", st)
	}

	subB, err := mgr.Subscribe("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, subB)
	subB.Close()
	if st := mustStatus(t, mgr, "b"); st.State != StateDone {
		t.Fatalf("job b ended %s, want done", st.State)
	}
	if len(got) == 0 {
		t.Fatal("job b streamed no records")
	}

	order := mgr.List()
	if len(order) != 3 || order[0].ID != "a" || order[1].ID != "b" || order[2].ID != "c" {
		t.Fatalf("List() order %v, want submission order a, b, c", order)
	}
}

func TestManagerSubmitValidation(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, 1)

	if _, err := mgr.Submit(Submit{Spec: Spec{Model: "nope"}}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("bad spec = %v, want ErrBadSpec", err)
	}
	if _, err := mgr.Submit(Submit{ID: "../x", Spec: tinySpec(1)}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("bad ID = %v, want ErrBadSpec", err)
	}

	// The default ID is the deterministic SpecID, and the derived seed is
	// resolved at admission so the stored spec replays identically.
	spec := tinySpec(2037)
	spec.Budget = 48
	st, err := mgr.Submit(Submit{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != SpecID(spec) {
		t.Errorf("default ID %s, want SpecID %s", st.ID, SpecID(spec))
	}
	if st.Seed != 2037 {
		t.Errorf("explicit seed not preserved: %d", st.Seed)
	}
	if _, err := mgr.Submit(Submit{Spec: spec}); !errors.Is(err, ErrExists) {
		t.Errorf("identical resubmission = %v, want ErrExists", err)
	}

	derived := tinySpec(0)
	derived.Seed = 0
	st2, err := mgr.Submit(Submit{ID: "derived-seed", Spec: derived})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Seed != DeriveSeed("derived-seed") {
		t.Errorf("seed %d, want DeriveSeed(%q) = %d", st2.Seed, "derived-seed", DeriveSeed("derived-seed"))
	}

	mgr.Close()
	if _, err := mgr.Submit(Submit{ID: "late", Spec: tinySpec(3)}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
}

// TestManagerRecoverTerminalReplay finishes a job, restarts the manager,
// and checks that the terminal job recovers with its result intact and that
// a late subscriber still replays the full stream (lazy-loaded from the
// store: the previous daemon's in-memory tail is gone).
func TestManagerRecoverTerminalReplay(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr1 := NewManager(store, 1)
	st, err := mgr1.Submit(Submit{ID: "done-1", Spec: tinySpec(2038)})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := mgr1.Subscribe(st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	live := drain(t, sub)
	sub.Close()
	mgr1.Close()
	if len(live) == 0 {
		t.Fatal("no records streamed")
	}

	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := NewManager(store2, 1)
	if err := mgr2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	st2 := mustStatus(t, mgr2, "done-1")
	if st2.State != StateDone || st2.Result == nil {
		t.Fatalf("recovered terminal job = %+v", st2)
	}
	late, err := mgr2.Subscribe("done-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	replayed := drain(t, late)
	late.Close()
	if len(replayed) != len(live) {
		t.Fatalf("late replay has %d records, live stream had %d", len(replayed), len(live))
	}
	// Offsets past the end complete immediately: a reconnecting client that
	// was fully caught up gets a clean end-of-stream, not a hang.
	tail, err := mgr2.Subscribe("done-1", len(live)+100)
	if err != nil {
		t.Fatal(err)
	}
	if recs := drain(t, tail); len(recs) != 0 {
		t.Errorf("past-end subscription replayed %d records", len(recs))
	}
	tail.Close()
	if _, err := mgr2.Subscribe("ghost", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("Subscribe(ghost) = %v, want ErrNotFound", err)
	}
}
