package job

import (
	"strings"
	"testing"
)

// TestDeriveSeedGolden pins the ID → seed derivation byte for byte. These
// values are the wire contract of "jobseed/v1": a job resubmitted under the
// same ID must replay the same stream on any machine and any future version
// of this package. If this test fails, the derivation changed — that is a
// protocol break, not a refactor.
func TestDeriveSeedGolden(t *testing.T) {
	golden := map[string]int64{
		"a":                          -7872465979612697172,
		"j0000000000000000":          712385541227884445,
		"paper-run-1":                8427205277040022327,
		"mobilenet-v1.bted-bao.2021": -8904413184907405629,
	}
	for id, want := range golden {
		if got := DeriveSeed(id); got != want {
			t.Errorf("DeriveSeed(%q) = %d, want %d (jobseed/v1 derivation changed: protocol break)", id, got, want)
		}
	}
	if got := DeriveSeed("a"); got != DeriveSeed("a") {
		t.Errorf("DeriveSeed is not deterministic: %d", got)
	}
}

// TestSpecIDGolden pins the spec → default-ID derivation: the normalized
// spec's canonical JSON hashed with FNV-1a 64. Field order is declaration
// order, so adding, removing, or reordering Spec fields changes these IDs —
// which is intended (a different spec shape is a different job), but must
// never happen silently.
func TestSpecIDGolden(t *testing.T) {
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{Model: "mobilenet-v1"}, "jaf2b04b29360b1e7"},
		{Spec{Model: "mobilenet-v1", Tuner: "autotvm", Ops: "conv", Seed: 2021,
			Budget: 24, EarlyStop: -1, PlanSize: 8, Runs: 50, Workers: 2}, "j69da8e5a7aef1afc"},
	}
	for _, c := range cases {
		if got := SpecID(c.spec); got != c.want {
			t.Errorf("SpecID(%+v) = %s, want %s", c.spec, got, c.want)
		}
	}
	// Normalization happens inside SpecID: a spec given explicitly at the
	// defaults collides with its zero-field spelling, by design.
	explicit := Spec{Model: "mobilenet-v1"}.Normalized()
	if got := SpecID(explicit); got != "jaf2b04b29360b1e7" {
		t.Errorf("SpecID of explicit defaults = %s, want the zero-field spec's ID", got)
	}
	if err := ValidateID(SpecID(Spec{Model: "resnet-18"})); err != nil {
		t.Errorf("SpecID output fails ValidateID: %v", err)
	}
}

func TestEffectiveSeed(t *testing.T) {
	if got := EffectiveSeed("paper-run-1", Spec{}); got != 8427205277040022327 {
		t.Errorf("derived seed = %d", got)
	}
	if got := EffectiveSeed("paper-run-1", Spec{Seed: 7}); got != 7 {
		t.Errorf("explicit seed not honored: %d", got)
	}
}

func TestValidateID(t *testing.T) {
	for _, ok := range []string{"a", "j69da8e5a7aef1afc", "run_1.retry-2", "A.B-c_9"} {
		if err := ValidateID(ok); err != nil {
			t.Errorf("ValidateID(%q) = %v, want nil", ok, err)
		}
	}
	bad := []string{"", ".", "..", ".hidden", "a/b", "a b", "a\x00b", "é", strings.Repeat("x", MaxIDLen+1)}
	for _, id := range bad {
		err := ValidateID(id)
		if err == nil {
			t.Errorf("ValidateID(%q) accepted", id)
			continue
		}
		if !strings.Contains(err.Error(), "job ID") {
			t.Errorf("ValidateID(%q) error %q does not name the job ID", id, err)
		}
	}
}
