package job

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/record"
	"repro/internal/snap"
)

// tinySpec is the shared small-but-real job the lifecycle tests run:
// conv-only mobilenet with a small budget finishes in well under a second
// while still crossing several scheduler boundaries (checkpoints).
func tinySpec(seed int64) Spec {
	return Spec{
		Model: "mobilenet-v1", Tuner: "autotvm", Device: "gtx1080ti", Ops: "conv",
		Seed: seed, Budget: 16, EarlyStop: -1, PlanSize: 8, Runs: 20, Workers: 2,
		TaskConcurrency: 1, BudgetPolicy: "uniform",
	}
}

func readFileBytes(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRunCheckpointResumeBitIdentical is the runner-level crash rehearsal:
// a run killed at its Nth checkpoint boundary (via the AfterCheckpoint hook
// riding the same context-cancellation path Ctrl-C and daemon shutdown use)
// and resumed from the frame must leave a record log byte-identical to a
// run that was never interrupted.
func TestRunCheckpointResumeBitIdentical(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec(2031)

	refLog := filepath.Join(dir, "ref.jsonl")
	ref, err := Run(context.Background(), spec, RunOptions{LogPath: refLog})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if !ref.Streamed || ref.Records == 0 || ref.Deployment == nil || ref.Backend == nil {
		t.Fatalf("reference result incomplete: %+v", ref)
	}

	log := filepath.Join(dir, "run.jsonl")
	cpPath := filepath.Join(dir, "run.snap")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var streamed int
	killed, err := Run(ctx, spec, RunOptions{
		LogPath:        log,
		CheckpointPath: cpPath,
		OnRecord:       func(record.Record) { streamed++ },
		AfterCheckpoint: func(n int) {
			if n >= 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	if !killed.Streamed {
		t.Fatalf("interrupted run did not flush its log: %+v", killed)
	}
	if streamed != killed.Records {
		t.Errorf("OnRecord saw %d records, log flushed %d", streamed, killed.Records)
	}
	if kind, err := snap.Detect(cpPath); err != nil || kind != snap.KindSnap {
		t.Fatalf("snap.Detect(checkpoint) = %v, %v", kind, err)
	}

	cp, err := LoadCheckpoint(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Validate(spec); err != nil {
		t.Fatalf("checkpoint rejects its own spec: %v", err)
	}

	if _, err := Run(context.Background(), spec, RunOptions{
		LogPath: log, CheckpointPath: cpPath, ResumeCheckpoint: cp,
	}); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if want, got := readFileBytes(t, refLog), readFileBytes(t, log); !bytes.Equal(want, got) {
		t.Fatalf("resumed log differs from uninterrupted run: %d vs %d bytes", len(want), len(got))
	}
}

func TestRunResumeRejectsMismatchedSpec(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec(2032)
	cpPath := filepath.Join(dir, "run.snap")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := Run(ctx, spec, RunOptions{
		CheckpointPath:  cpPath,
		AfterCheckpoint: func(int) { cancel() },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v", err)
	}
	cp, err := LoadCheckpoint(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	other := spec
	other.Budget = 99
	_, err = Run(context.Background(), other, RunOptions{CheckpointPath: cpPath, ResumeCheckpoint: cp})
	if err == nil || !strings.Contains(err.Error(), "original flags") {
		t.Fatalf("mismatched resume = %v, want an original-flags rejection", err)
	}
}

func TestRunRejectsUnknownInputs(t *testing.T) {
	spec := tinySpec(1)
	spec.Tuner = "nope"
	if _, err := Run(context.Background(), spec, RunOptions{}); err == nil {
		t.Error("unknown tuner accepted")
	}
	spec = tinySpec(1)
	spec.Device = "nope"
	if _, err := Run(context.Background(), spec, RunOptions{}); err == nil {
		t.Error("unknown device accepted")
	}
}
