// Package job owns the tuning-job lifecycle the CLIs used to re-implement
// by hand: a validated job description (Spec) with deterministic
// JobID → seed derivation, a crash-safe per-job directory store (Store), a
// runner that drives the core pipeline with streaming records and periodic
// checkpoints (Run), and a multi-tenant FIFO manager with live record
// fan-out (Manager). cmd/tune and cmd/repro are thin clients of this
// package; cmd/served exposes it as a long-running HTTP service.
//
// Determinism contract: a job's record stream is a pure function of its
// Spec and seed. The seed is either given explicitly or derived from the
// job ID (DeriveSeed), so resubmitting a job — or resuming it after a
// daemon crash — replays a bit-identical stream.
package job

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"slices"
	"strings"

	"repro/internal/backend"
	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/tuner"
)

// Limits enforced by Validate. They bound what one job may ask of the
// service — large enough for paper-scale runs (budget 1024, runs 600),
// small enough that a single HTTP submission cannot pin a worker for days.
const (
	MaxBudget          = 1 << 20
	MaxPlanSize        = 1 << 16
	MaxRuns            = 1 << 20
	MaxWorkers         = 4096
	MaxTaskConcurrency = 1024
)

// Spec is a validated job description: every input that determines the
// job's record stream. Zero fields mean "use the default" (see Normalized);
// cmd/tune fills every field from its flags instead, so its behaviour is
// exactly what it was before the job layer existed.
//
// The field set deliberately excludes wall-clock controls (per-task
// deadlines): a served job must replay bit-identically, and deadline
// expiry depends on host load.
type Spec struct {
	// Model is the graph to tune (see graph.ModelNames). Required.
	Model string `json:"model"`
	// Tuner is the search strategy: autotvm | bted | bted+bao | random |
	// grid | ga | chameleon.
	Tuner string `json:"tuner,omitempty"`
	// Device is the simulated device name (see backend.Devices).
	Device string `json:"device,omitempty"`
	// Ops selects task extraction: "conv" or "all".
	Ops string `json:"ops,omitempty"`
	// Seed drives all randomness. 0 derives the seed from the job ID
	// (DeriveSeed), so a replayed submission is bit-identical.
	Seed int64 `json:"seed,omitempty"`
	// Budget is the measurement budget per task.
	Budget int `json:"budget,omitempty"`
	// EarlyStop ends a task after this many measurements without
	// improvement; negative disables early stopping.
	EarlyStop int `json:"early_stop,omitempty"`
	// PlanSize is the batch/initialization size (also the record-log flush
	// cadence).
	PlanSize int `json:"plan_size,omitempty"`
	// Runs is the end-to-end latency run count.
	Runs int `json:"runs,omitempty"`
	// Workers sizes the per-task measurement pool; 0 uses GOMAXPROCS.
	// Sample streams are Workers-invariant, so this is pure throughput.
	Workers int `json:"workers,omitempty"`
	// TaskConcurrency is how many tasks the graph scheduler tunes
	// concurrently (1: classic sequential pipeline).
	TaskConcurrency int `json:"task_concurrency,omitempty"`
	// BudgetPolicy is the scheduler budget policy: uniform | adaptive.
	BudgetPolicy string `json:"budget_policy,omitempty"`
	// CheckpointEvery is the minimum new measurements between checkpoint
	// frames (0: every scheduler boundary). Frame cadence only — the
	// record stream is unaffected.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// Normalized fills zero fields with cmd/tune's flag defaults, so a served
// Spec that only names a model produces exactly the stream
// `tune -model <m> -seed <derived>` would.
func (s Spec) Normalized() Spec {
	if s.Tuner == "" {
		s.Tuner = "bted+bao"
	}
	if s.Device == "" {
		s.Device = "gtx1080ti"
	}
	if s.Ops == "" {
		s.Ops = "all"
	}
	if s.Budget == 0 {
		s.Budget = 512
	}
	if s.EarlyStop == 0 {
		s.EarlyStop = 400
	}
	if s.PlanSize == 0 {
		s.PlanSize = 64
	}
	if s.Runs == 0 {
		s.Runs = 600
	}
	if s.TaskConcurrency == 0 {
		s.TaskConcurrency = 1
	}
	if s.BudgetPolicy == "" {
		s.BudgetPolicy = "uniform"
	}
	return s
}

// ErrBadSpec is wrapped by every validation failure — a malformed
// submission, an unknown name, an out-of-range knob, an unusable job ID —
// so transport layers can map the whole class to "client error" with one
// errors.Is.
var ErrBadSpec = errors.New("job: invalid spec")

// Validate rejects a spec the runner could not execute or that exceeds the
// service limits. It checks name membership (model, tuner, device, ops,
// policy) and numeric bounds; call it on a Normalized spec — zero values
// for required fields are errors, not defaults, here.
func (s Spec) Validate() error {
	if s.Model == "" {
		return fmt.Errorf("%w: spec has no model", ErrBadSpec)
	}
	if !slices.Contains(graph.ModelNames, s.Model) {
		return fmt.Errorf("%w: unknown model %q (have: %s)", ErrBadSpec, s.Model, strings.Join(graph.ModelNames, ", "))
	}
	if _, err := NewTuner(s.Tuner); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if _, err := backend.New(s.Device, 0); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if s.Ops != "conv" && s.Ops != "all" {
		return fmt.Errorf("%w: unknown ops %q (want conv or all)", ErrBadSpec, s.Ops)
	}
	if _, err := sched.PolicyByName(s.BudgetPolicy); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	switch {
	case s.Budget < 1 || s.Budget > MaxBudget:
		return fmt.Errorf("%w: budget %d out of range [1, %d]", ErrBadSpec, s.Budget, MaxBudget)
	case s.PlanSize < 1 || s.PlanSize > MaxPlanSize:
		return fmt.Errorf("%w: plan size %d out of range [1, %d]", ErrBadSpec, s.PlanSize, MaxPlanSize)
	case s.Runs < 1 || s.Runs > MaxRuns:
		return fmt.Errorf("%w: runs %d out of range [1, %d]", ErrBadSpec, s.Runs, MaxRuns)
	case s.Workers < 0 || s.Workers > MaxWorkers:
		return fmt.Errorf("%w: workers %d out of range [0, %d]", ErrBadSpec, s.Workers, MaxWorkers)
	case s.TaskConcurrency < 1 || s.TaskConcurrency > MaxTaskConcurrency:
		return fmt.Errorf("%w: task concurrency %d out of range [1, %d]", ErrBadSpec, s.TaskConcurrency, MaxTaskConcurrency)
	case s.EarlyStop > MaxBudget:
		return fmt.Errorf("%w: early stop %d exceeds %d", ErrBadSpec, s.EarlyStop, MaxBudget)
	case s.CheckpointEvery < 0 || s.CheckpointEvery > MaxBudget:
		return fmt.Errorf("%w: checkpoint cadence %d out of range [0, %d]", ErrBadSpec, s.CheckpointEvery, MaxBudget)
	}
	return nil
}

// Extract maps the Ops field to graph extraction options.
func (s Spec) Extract() graph.ExtractOpts {
	if s.Ops == "conv" {
		return graph.ConvOnly
	}
	return graph.AllOps
}

// NewTuner constructs a tuner by its CLI name — the one name→constructor
// table shared by cmd/tune, cmd/bench, cmd/compare, and the service.
func NewTuner(name string) (tuner.Tuner, error) {
	switch name {
	case "autotvm":
		return tuner.NewAutoTVM(), nil
	case "bted":
		return tuner.NewBTED(), nil
	case "bted+bao":
		return tuner.NewBTEDBAO(), nil
	case "random":
		return tuner.RandomTuner{}, nil
	case "grid":
		return tuner.GridTuner{}, nil
	case "ga":
		return tuner.GATuner{}, nil
	case "chameleon":
		return tuner.NewChameleon(), nil
	default:
		return nil, fmt.Errorf("unknown tuner %q", name)
	}
}

// Submit is the wire form of a job submission: an optional caller-chosen ID
// plus the spec. An empty ID gets the deterministic SpecID of the
// normalized spec, which makes identical resubmissions collide loudly
// instead of silently duplicating work.
type Submit struct {
	ID string `json:"id,omitempty"`
	Spec
}

// MaxSubmitBytes caps the submission body DecodeSubmit will read.
const MaxSubmitBytes = 1 << 16

// DecodeSubmit parses one JSON job submission strictly: unknown fields are
// rejected (a typoed knob must not silently become a default), trailing
// data is rejected, the body is size-capped, and the decoded spec is
// normalized and validated before it is returned. It never panics on
// arbitrary input (fuzzed).
func DecodeSubmit(r io.Reader) (Submit, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxSubmitBytes))
	dec.DisallowUnknownFields()
	var sub Submit
	if err := dec.Decode(&sub); err != nil {
		return Submit{}, fmt.Errorf("%w: decoding submission: %v", ErrBadSpec, err)
	}
	if dec.More() {
		return Submit{}, fmt.Errorf("%w: trailing data after submission", ErrBadSpec)
	}
	if sub.ID != "" {
		if err := ValidateID(sub.ID); err != nil {
			return Submit{}, err
		}
	}
	sub.Spec = sub.Spec.Normalized()
	if err := sub.Spec.Validate(); err != nil {
		return Submit{}, err
	}
	return sub, nil
}
