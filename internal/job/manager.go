package job

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/record"
)

// State is a job's lifecycle state. The machine is:
//
//	queued → running → done | failed | canceled
//	   ↑         │
//	   └─────────┘ (daemon restart: interrupted jobs re-queue and resume
//	                from their last checkpoint)
//
// Cancellation from the queue goes straight to canceled. A daemon shutdown
// leaves running jobs without a terminal frame on disk; the next start's
// Recover re-queues them, so "interrupted" is never a stored state — it is
// what a queued-with-checkpoint job is.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Status is the queryable snapshot of one job.
type Status struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Spec  Spec   `json:"spec"`
	// Seed is the effective run seed (explicit or ID-derived).
	Seed int64 `json:"seed"`
	// Records counts the measurements recorded so far (live) or in total
	// (terminal).
	Records int `json:"records"`
	// Resumed reports that the job was restored from an on-disk checkpoint
	// at daemon startup.
	Resumed bool `json:"resumed,omitempty"`
	// Error carries a failed job's reason.
	Error string `json:"error,omitempty"`
	// Result is the terminal frame of a finished job.
	Result *Result `json:"result,omitempty"`
	// SubmittedAt / StartedAt / FinishedAt are observability timestamps;
	// nothing in the job's record stream depends on them.
	SubmittedAt time.Time  `json:"submitted_at,omitempty"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// managed is the Manager's per-job state. Mutable fields are guarded by
// the Manager mutex; the record tail has its own lock because the runner's
// OnRecord fan-out must not contend with queue operations.
type managed struct {
	id      string
	spec    Spec // effective spec: seed resolved, normalized
	state   State
	resumed bool
	err     string
	result  *Result
	resume  *Checkpoint // checkpoint to continue from (recovered jobs)
	lazy    bool        // terminal job from a past daemon life: tail loads from the store on first Subscribe

	cancel     context.CancelFunc // set while running
	userCancel bool               // DELETE vs daemon-shutdown cancellation

	submitted time.Time
	started   time.Time
	finished  time.Time

	tail *tail
}

// tail is a job's in-memory record stream: the replay source for
// subscribers. It stores each record's canonical wire line (record.Line)
// exactly as the runner encoded it for the log — encode once, fan out the
// bytes. Appends come from the runner's serialized OnRecordLine hook; reads
// come from SSE subscriber goroutines at their own pace, each with its own
// cursor, so a slow client never blocks the tuner — it just reads the
// slice later.
type tail struct {
	mu     sync.Mutex
	lines  [][]byte // newline-terminated wire lines; elements are immutable
	closed bool     // no more appends (job reached a terminal state)
	subs   map[int]chan struct{}
	nextID int
}

func newTail() *tail {
	return &tail{subs: make(map[int]chan struct{})}
}

// append adds one wire line and nudges every subscriber. The notification
// channels have capacity 1 and drops are fine: a subscriber drains the
// slice, not the channel. The line must never be mutated afterwards — the
// tail hands it to subscribers as-is.
func (t *tail) append(line []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lines = append(t.lines, line)
	for _, ch := range t.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// seed pre-populates the tail (recovered jobs replaying their truncated
// log prefix), re-encoding through the same record.Line the live path
// uses so replayed bytes equal streamed bytes.
func (t *tail) seed(recs []record.Record) error {
	lines := make([][]byte, len(recs))
	for i := range recs {
		line, err := record.Line(recs[i])
		if err != nil {
			return err
		}
		lines[i] = line
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lines = lines
	return nil
}

// close marks the stream complete and wakes subscribers one last time.
func (t *tail) close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	for _, ch := range t.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

func (t *tail) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.lines)
}

// Sub is one subscriber's cursor over a job's record stream.
type Sub struct {
	t      *tail
	cursor int
	id     int
	notify chan struct{}
}

// Next blocks until lines beyond the cursor exist, then returns them and
// advances. more=false means the stream is complete and fully consumed.
// Every subscriber sees the full stream from its starting offset in
// order — late subscribers replay the whole log first.
//
// The returned slice is a capacity-clipped view of the tail's backing
// array, not a copy: the zero-copy contract is that appends only ever
// write at indices the view cannot reach (len == cap), and the line bytes
// themselves are immutable. Callers must treat both levels as read-only.
func (s *Sub) Next(ctx context.Context) (lines [][]byte, more bool, err error) {
	for {
		s.t.mu.Lock()
		if n := len(s.t.lines); s.cursor < n {
			lines = s.t.lines[s.cursor:n:n]
			s.cursor = n
			s.t.mu.Unlock()
			return lines, true, nil
		}
		closed := s.t.closed
		s.t.mu.Unlock()
		if closed {
			return nil, false, nil
		}
		select {
		case <-s.notify:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// Snapshot returns the stream's wire lines so far without moving the
// cursor — the non-blocking "what is in the log right now" read. Same
// read-only view contract as Next.
func (s *Sub) Snapshot() [][]byte {
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	n := len(s.t.lines)
	return s.t.lines[:n:n]
}

// Close unregisters the subscriber.
func (s *Sub) Close() {
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	delete(s.t.subs, s.id)
}

// Manager is the multi-tenant job queue: FIFO admission over the store,
// at most Concurrency jobs running at once, per-job budget policies (each
// Spec carries its own), live record fan-out to subscribers, and crash
// recovery. All scheduling state lives in memory; everything needed to
// rebuild it lives in the Store.
type Manager struct {
	store    *Store
	conc     int
	maxQueue int
	shared   *backend.SharedCache

	mu      sync.Mutex
	jobs    map[string]*managed
	order   []string // insertion order, for List
	queue   []string // FIFO of queued job IDs
	running int
	closed  bool
	wg      sync.WaitGroup
}

// ManagerOptions configures a Manager beyond its store.
type ManagerOptions struct {
	// Concurrency caps how many jobs run at once (minimum 1).
	Concurrency int
	// MaxQueue caps how many jobs may wait in the pending queue; a Submit
	// past the cap fails with ErrQueueFull. 0 means unbounded — matching
	// the pre-admission-control behavior.
	MaxQueue int
	// Shared, when non-nil, is the fleet-wide measurement memo every job
	// this manager runs consults and populates (see backend.SharedCache).
	// Nil runs every job cold, exactly as before.
	Shared *backend.SharedCache
}

// NewManager builds a manager over the store running at most concurrency
// jobs at once (minimum 1). Call Recover to re-admit jobs a previous
// daemon left behind, then Submit freely.
func NewManager(store *Store, concurrency int) *Manager {
	return NewManagerWith(store, ManagerOptions{Concurrency: concurrency})
}

// NewManagerWith is NewManager with the full option set.
func NewManagerWith(store *Store, opts ManagerOptions) *Manager {
	if opts.Concurrency < 1 {
		opts.Concurrency = 1
	}
	if opts.MaxQueue < 0 {
		opts.MaxQueue = 0
	}
	return &Manager{
		store:    store,
		conc:     opts.Concurrency,
		maxQueue: opts.MaxQueue,
		shared:   opts.Shared,
		jobs:     make(map[string]*managed),
	}
}

// SharedCacheStats snapshots the fleet memo's accounting; ok is false when
// the manager runs without one.
func (m *Manager) SharedCacheStats() (backend.SharedCacheStats, bool) {
	if m.shared == nil {
		return backend.SharedCacheStats{}, false
	}
	return m.shared.Stats(), true
}

// ErrClosed reports an operation on a shut-down manager.
var ErrClosed = errors.New("job: manager is shut down")

// ErrQueueFull reports a Submit rejected by admission control: the pending
// queue is at its MaxQueue cap. The caller should retry after jobs drain —
// the HTTP layer maps this to 429 with a Retry-After hint.
var ErrQueueFull = errors.New("job: pending queue is full")

// Submit validates and admits one job: the spec is normalized, the ID
// defaulted to the deterministic SpecID, the effective seed resolved, the
// store directory claimed, and the job queued FIFO. The returned status is
// the job's admission snapshot.
func (m *Manager) Submit(sub Submit) (Status, error) {
	spec := sub.Spec.Normalized()
	if err := spec.Validate(); err != nil {
		return Status{}, err
	}
	id := sub.ID
	if id == "" {
		id = SpecID(spec)
	} else if err := ValidateID(id); err != nil {
		return Status{}, err
	}
	spec.Seed = EffectiveSeed(id, spec)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Status{}, ErrClosed
	}
	if _, ok := m.jobs[id]; ok {
		return Status{}, fmt.Errorf("%w: %s", ErrExists, id)
	}
	// Admission control: reject before claiming the store directory, so a
	// rejected submit leaves no trace and an immediate retry is clean.
	if m.maxQueue > 0 && len(m.queue) >= m.maxQueue {
		return Status{}, fmt.Errorf("%w: %d pending (cap %d)", ErrQueueFull, len(m.queue), m.maxQueue)
	}
	if err := m.store.Create(id, spec); err != nil {
		return Status{}, err
	}
	j := &managed{
		id: id, spec: spec, state: StateQueued, tail: newTail(),
		submitted: time.Now(), //lint:ignore walltime Status timestamp: observability only, never read by scheduling or tuning
	}
	m.register(j)
	m.maybeStartLocked()
	return m.statusLocked(j), nil
}

// register adds the job to the registry and the FIFO queue (queued jobs
// only). Caller holds the mutex.
func (m *Manager) register(j *managed) {
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	if j.state == StateQueued {
		m.queue = append(m.queue, j.id)
	}
}

// Recover scans the store and re-admits every job a previous daemon life
// left behind: terminal jobs are registered with their stored results,
// interrupted jobs re-queue — resuming from their last checkpoint when one
// exists, restarting from scratch otherwise (same seed, same stream).
// Call it once, before the first Submit, so recovered work keeps its FIFO
// position ahead of new arrivals.
func (m *Manager) Recover() error {
	ids, err := m.store.Jobs()
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	for _, id := range ids {
		if _, ok := m.jobs[id]; ok {
			continue
		}
		spec, err := m.store.LoadSpec(id)
		if err != nil {
			return err
		}
		j := &managed{id: id, spec: spec, tail: newTail()}
		res, err := m.store.LoadResult(id)
		if err != nil {
			return err
		}
		if res != nil {
			j.state = res.State
			j.result = res
			j.err = res.Error
			j.lazy = true
			m.register(j)
			continue
		}
		cp, err := m.store.LoadCheckpoint(id)
		if err != nil {
			return err
		}
		if cp != nil {
			if err := cp.Validate(spec); err != nil {
				return fmt.Errorf("job: recovering %s: %w", id, err)
			}
			recs, err := m.store.LoadRecords(id)
			if err != nil {
				return err
			}
			if len(recs) < cp.Records {
				return fmt.Errorf("job: recovering %s: log holds %d records, checkpoint counts %d", id, len(recs), cp.Records)
			}
			j.resume = cp
			j.resumed = true
			if err := j.tail.seed(recs[:cp.Records]); err != nil {
				return fmt.Errorf("job: recovering %s: %w", id, err)
			}
		}
		j.state = StateQueued
		m.register(j)
	}
	m.maybeStartLocked()
	return nil
}

// maybeStartLocked starts queued jobs while capacity remains. Caller holds
// the mutex.
func (m *Manager) maybeStartLocked() {
	for !m.closed && m.running < m.conc && len(m.queue) > 0 {
		id := m.queue[0]
		m.queue = m.queue[1:]
		j := m.jobs[id]
		if j == nil || j.state != StateQueued {
			continue
		}
		// Jobs run under their own cancel handle (user DELETE or daemon
		// shutdown), not a stored context: contexts are call-scoped.
		ctx, cancel := context.WithCancel(context.Background())
		j.cancel = cancel
		j.state = StateRunning
		j.started = time.Now() //lint:ignore walltime Status timestamp: observability only, never read by scheduling or tuning
		m.running++
		m.wg.Add(1)
		go m.run(ctx, j)
	}
}

// run executes one job to a terminal (or interrupted) state and starts the
// next queued one.
func (m *Manager) run(ctx context.Context, j *managed) {
	defer m.wg.Done()
	res, err := Run(ctx, j.spec, RunOptions{
		LogPath:          m.store.LogPath(j.id),
		CheckpointPath:   m.store.SnapPath(j.id),
		ResumeCheckpoint: j.resume,
		Shared:           m.shared,
		OnRecordLine:     func(_ record.Record, line []byte) { j.tail.append(line) },
	})
	m.finish(j, res, err)
}

// finish classifies a run's exit and persists the terminal frame. A
// cancellation that came from Close (daemon shutdown) writes no frame: the
// job's checkpoint stream already holds its resume point, and the next
// daemon life re-queues it.
func (m *Manager) finish(j *managed, res *RunResult, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.cancel = nil
	j.resume = nil
	j.finished = time.Now() //lint:ignore walltime Status timestamp: observability only, never read by scheduling or tuning
	shutdown := false
	switch {
	case err == nil:
		j.state = StateDone
		j.result = resultOf(res, j.tail.len())
	case errors.Is(err, context.Canceled) && !j.userCancel:
		// Daemon shutdown: leave the on-disk state resumable and the
		// in-memory state queued so a Close-then-Recover in one process
		// (tests) mirrors a restart.
		shutdown = true
		j.state = StateQueued
	case errors.Is(err, context.Canceled):
		j.state = StateCanceled
		j.result = &Result{State: StateCanceled, Records: j.tail.len()}
	default:
		j.state = StateFailed
		j.err = err.Error()
		j.result = &Result{State: StateFailed, Error: err.Error(), Records: j.tail.len()}
	}
	if j.result != nil {
		if werr := m.store.AppendResult(j.id, *j.result); werr != nil && j.state == StateDone {
			// A job whose terminal frame cannot land is failed: restarting
			// the daemon would otherwise re-run it silently.
			j.state = StateFailed
			j.err = werr.Error()
		}
	}
	if !shutdown {
		j.tail.close()
	}
	m.running--
	m.maybeStartLocked()
}

// resultOf flattens a completed run into its terminal frame.
func resultOf(res *RunResult, records int) *Result {
	out := &Result{State: StateDone, Records: records}
	if dep := res.Deployment; dep != nil {
		out.LatencyMS = dep.LatencyMS
		out.Variance = dep.Variance
		out.TotalMeasurements = dep.TotalMeasurements
		for _, t := range dep.Tasks {
			tr := TaskResult{Name: t.Task.Name, Measurements: t.Result.Measurements}
			if t.Result.Found {
				tr.GFLOPS = t.Result.Best.GFLOPS
			}
			out.Tasks = append(out.Tasks, tr)
		}
	}
	return out
}

// Cancel cancels a job: queued jobs go terminal immediately, running jobs
// are interrupted at their next batch boundary (checkpoint flushed, state
// canceled). Terminal jobs return false.
func (m *Manager) Cancel(id string) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	switch j.state {
	case StateQueued:
		for i, qid := range m.queue {
			if qid == id {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				break
			}
		}
		j.state = StateCanceled
		j.result = &Result{State: StateCanceled, Records: j.tail.len()}
		j.tail.close()
		if err := m.store.AppendResult(id, *j.result); err != nil {
			return true, err
		}
		return true, nil
	case StateRunning:
		j.userCancel = true
		j.cancel()
		return true, nil
	default:
		return false, nil
	}
}

// Status returns one job's snapshot.
func (m *Manager) Status(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return m.statusLocked(j), nil
}

// List returns every job's snapshot in admission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.statusLocked(m.jobs[id]))
	}
	return out
}

func (m *Manager) statusLocked(j *managed) Status {
	st := Status{
		ID: j.id, State: j.state, Spec: j.spec, Seed: j.spec.Seed,
		Records: j.tail.len(), Resumed: j.resumed, Error: j.err,
		Result: j.result, SubmittedAt: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	if st.Result != nil && st.Records < st.Result.Records {
		st.Records = st.Result.Records
	}
	return st
}

// Subscribe opens a cursor over the job's record stream starting at offset
// from (0 replays everything). Terminal jobs recovered from a previous
// daemon life lazily load their log from the store the first time someone
// subscribes.
func (m *Manager) Subscribe(id string, from int) (*Sub, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if j.lazy {
		recs, err := m.store.LoadRecords(id)
		if err != nil {
			m.mu.Unlock()
			return nil, err
		}
		if err := j.tail.seed(recs); err != nil {
			m.mu.Unlock()
			return nil, err
		}
		j.tail.close()
		j.lazy = false
	}
	m.mu.Unlock()

	t := j.tail
	t.mu.Lock()
	defer t.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from > len(t.lines) {
		from = len(t.lines)
	}
	sub := &Sub{t: t, cursor: from, id: t.nextID, notify: make(chan struct{}, 1)}
	t.nextID++
	t.subs[sub.id] = sub.notify
	return sub, nil
}

// Close shuts the manager down: no new admissions, running jobs are
// cancelled (they flush their logs and checkpoints and stay resumable),
// and Close blocks until every runner has returned.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	for _, j := range m.jobs {
		if j.state == StateRunning && j.cancel != nil && !j.userCancel {
			j.cancel()
		}
	}
	m.mu.Unlock()
	m.wg.Wait()
}
