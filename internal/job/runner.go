package job

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/sched"
	"repro/internal/tuner"
)

// RunOptions wires one job run to its files and callbacks. Everything that
// determines the record stream lives in the Spec; RunOptions only carries
// where the stream goes and who watches it.
type RunOptions struct {
	// LogPath, when set, streams the record log there: one JSON line per
	// measurement, flushed at plan-size boundaries so an interrupt loses at
	// most one in-progress batch.
	LogPath string
	// CheckpointPath, when set, appends a self-contained checkpoint frame
	// at scheduler boundaries (cadence: Spec.CheckpointEvery). Requires a
	// seeded backend.
	CheckpointPath string
	// ResumeRecords warm-starts matching tasks from a previous run's log
	// (they are never re-measured). Mutually exclusive with
	// ResumeCheckpoint in practice: warm-start records are not part of a
	// checkpoint frame, so the caller enforces the split.
	ResumeRecords []record.Record
	// ResumeCheckpoint continues a previous run bit-identically from its
	// checkpoint. The Spec must match the frame (Checkpoint.Validate).
	// When CheckpointPath equals the frame's Path the file is appended to,
	// not truncated; the record log at LogPath is rewound to the frame's
	// record count first.
	ResumeCheckpoint *Checkpoint
	// TaskDeadline bounds each task's tuning wall clock (0: none). CLI
	// convenience only — deadline expiry is load-dependent, so the service
	// never sets it.
	TaskDeadline time.Duration
	// OnRecord, when non-nil, receives every measurement after it is
	// appended to the log (if any) — the manager's live fan-out hook. Like
	// all pipeline callbacks it is mutex-serialized by core.
	OnRecord func(record.Record)
	// OnRecordLine, when non-nil, receives each record's canonical wire
	// bytes (record.Line) alongside the decoded record. The line is the
	// same allocation that fed the log — encoded exactly once per record —
	// and must be treated as immutable by the receiver. Serialized like
	// OnRecord.
	OnRecordLine func(rec record.Record, line []byte)
	// Shared, when non-nil, layers the fleet-wide measurement memo over the
	// job's backend. Cache hits are bit-identical to re-measuring (see
	// backend.SharedCache), so this changes how much simulator work the job
	// does, never the record stream it produces.
	Shared *backend.SharedCache
	// Progress and OnTaskDone are forwarded to the pipeline for reporting.
	Progress   func(taskIdx, taskTotal int, name string)
	OnTaskDone func(core.TaskEvent)
	// AfterCheckpoint, when non-nil, is called after the n-th checkpoint
	// frame lands (n is 1-based). cmd/tune's -stop-after-checkpoints test
	// hook cancels the run context from here, riding the same path Ctrl-C
	// does.
	AfterCheckpoint func(n int)
}

// RunResult is what a finished (or interrupted) run leaves behind.
type RunResult struct {
	// Deployment is the tuned model; nil when the run failed or was
	// cancelled.
	Deployment *core.Deployment
	// Backend is the simulated device the run measured on — CLI reports
	// derive latency breakdowns from its estimator.
	Backend *backend.Sim
	// Records is the record-log count after the final flush (0 without a
	// log).
	Records int
	// Streamed reports whether the record log was written and flushed —
	// the condition under which cmd/tune reports the streamed count even
	// for an interrupted run.
	Streamed bool
}

// Run executes one job: seed setup, record-log streaming, checkpoint
// framing, resume alignment, and the core pipeline drive — the lifecycle
// cmd/tune and cmd/served share. The record stream it produces is a pure
// function of (Spec, Spec.Seed); interrupts via ctx leave the log and
// checkpoint stream aligned for a bit-identical resume.
func Run(ctx context.Context, spec Spec, opts RunOptions) (res *RunResult, err error) {
	res = &RunResult{}
	tn, err := NewTuner(spec.Tuner)
	if err != nil {
		return res, err
	}
	b, err := backend.New(spec.Device, spec.Seed)
	if err != nil {
		return res, err
	}
	res.Backend = b
	if (opts.CheckpointPath != "" || opts.ResumeCheckpoint != nil) && !b.Seeded() {
		// An unseeded backend's shared noise-stream position is not part of
		// any checkpoint, so a resumed run could not continue bit-identically.
		return res, fmt.Errorf("checkpointing requires a seeded backend; %s is not", spec.Device)
	}
	resumeCp := opts.ResumeCheckpoint
	if resumeCp != nil {
		if err := resumeCp.Validate(spec); err != nil {
			return res, err
		}
	}

	popts := core.PipelineOptions{
		Tuning: tuner.Options{
			Budget:    spec.Budget,
			EarlyStop: spec.EarlyStop,
			PlanSize:  spec.PlanSize,
			Seed:      spec.Seed,
			Workers:   spec.Workers,
		},
		Extract:         spec.Extract(),
		UseTransfer:     true,
		Resume:          opts.ResumeRecords,
		Runs:            spec.Runs,
		TaskDeadline:    opts.TaskDeadline,
		TaskConcurrency: spec.TaskConcurrency,
		BudgetPolicy:    spec.BudgetPolicy,
		Progress:        opts.Progress,
		OnTaskDone:      opts.OnTaskDone,
	}

	// Stream the record log: one JSON line per measurement, flushed at each
	// batch boundary so an interrupt loses at most one in-progress batch. A
	// checkpoint resume first rewinds the log to the records the checkpoint
	// counted, then appends from there with the count carried over so batch
	// boundaries land exactly where an uninterrupted run's would.
	planSize := popts.Tuning.Normalized().PlanSize
	var sw *record.StreamWriter
	if opts.LogPath != "" {
		var f *os.File
		if resumeCp != nil {
			if err := record.TruncatePrefix(opts.LogPath, resumeCp.Records); err != nil {
				return res, err
			}
			if f, err = os.OpenFile(opts.LogPath, os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
				return res, err
			}
			sw = record.NewStreamWriterAt(f, resumeCp.Records)
		} else {
			if f, err = os.Create(opts.LogPath); err != nil {
				return res, err
			}
			sw = record.NewStreamWriter(f)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
	}
	if sw != nil || opts.OnRecord != nil || opts.OnRecordLine != nil {
		popts.OnRecord = func(rec record.Record) {
			// Encode once: the same wire bytes feed the log and every live
			// subscriber. Encoding a Record cannot realistically fail (plain
			// fields, no cycles), but if it ever does the log's Append latches
			// the error exactly as before.
			line, lerr := record.Line(rec)
			if sw != nil {
				var aerr error
				if lerr != nil {
					aerr = sw.Append(rec)
				} else {
					aerr = sw.AppendLine(line)
				}
				if aerr == nil && sw.Count()%planSize == 0 {
					_ = sw.Flush() // latched too; per-batch checkpoint is best-effort
				}
			}
			if lerr == nil && opts.OnRecordLine != nil {
				opts.OnRecordLine(rec, line)
			}
			if opts.OnRecord != nil {
				opts.OnRecord(rec)
			}
		}
	}

	// Stream checkpoints: each scheduler boundary appends one self-contained
	// frame with a single write, so an interrupt at any instant leaves a
	// valid checkpoint file. The record log flushes first — a frame's record
	// count must never exceed what the log actually holds.
	var cpFile *SnapFile
	if opts.CheckpointPath != "" {
		appendMode := resumeCp != nil && resumeCp.Path == opts.CheckpointPath
		cpFile, err = CreateSnapFile(opts.CheckpointPath, appendMode)
		if err != nil {
			return res, err
		}
		defer func() {
			if cerr := cpFile.f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		checkpoints := 0
		popts.CheckpointEvery = spec.CheckpointEvery
		popts.OnCheckpoint = func(cp *sched.Checkpoint) {
			count := 0
			if sw != nil {
				_ = sw.Flush() // latched; reported at the final Flush below
				count = sw.Count()
			}
			_ = cpFile.Append(CheckpointKind, checkpointOf(spec, count, cp)) // latched; checked after the run
			checkpoints++
			if opts.AfterCheckpoint != nil {
				opts.AfterCheckpoint(checkpoints)
			}
		}
	}
	if resumeCp != nil {
		popts.ResumeCheckpoint = resumeCp.Sched
	}

	dep, derr := core.OptimizeModel(ctx, spec.Model, tn, backend.WithShared(b, opts.Shared), popts)
	if sw != nil {
		if ferr := sw.Flush(); ferr != nil && derr == nil {
			return res, ferr
		}
		res.Records = sw.Count()
		res.Streamed = true
	}
	if cpFile != nil && cpFile.Err() != nil && derr == nil {
		return res, cpFile.Err()
	}
	if derr != nil {
		return res, derr
	}
	res.Deployment = dep
	return res, nil
}
