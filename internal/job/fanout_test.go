package job

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestFanoutSlowSubscribersNeverBlock is the zero-copy fan-out contract
// under the race detector: 64 subscribers attach to one running job — half
// drain concurrently, half never call Next at all — and the job must still
// run to completion (a stalled reader stalls nobody: the tail hands out
// cursor views, it never waits on a consumer). Every drained stream, and a
// post-hoc replay through the stalled subscriptions, must be byte-identical
// to the record log the runner wrote — same bytes, encoded exactly once.
func TestFanoutSlowSubscribersNeverBlock(t *testing.T) {
	store, err := OpenStore(filepath.Join(t.TempDir(), "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(store, 1)
	defer mgr.Close()

	spec := tinySpec(3200)
	spec.Budget = 48 // enough records that subscribers attach mid-stream
	const id = "fan-1"
	if _, err := mgr.Submit(Submit{ID: id, Spec: spec}); err != nil {
		t.Fatal(err)
	}

	const subscribers = 64
	drained := make([][]byte, subscribers/2)
	var stalled []*Sub
	var wg sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		sub, err := mgr.Subscribe(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 1 {
			// Never drained while the job runs: holds its subscription open
			// so the tail keeps notifying it, reads only after completion.
			stalled = append(stalled, sub)
			continue
		}
		wg.Add(1)
		go func(slot int, sub *Sub) {
			defer wg.Done()
			defer sub.Close()
			var buf bytes.Buffer
			for {
				lines, more, err := sub.Next(context.Background())
				if err != nil {
					t.Errorf("subscriber %d: %v", slot, err)
					return
				}
				for _, line := range lines {
					buf.Write(line)
				}
				if !more {
					drained[slot] = buf.Bytes()
					return
				}
			}
		}(i/2, sub)
	}

	// The job finishing at all is the non-blocking claim: 32 subscribers sit
	// on full notification channels the whole run and the runner's OnRecord
	// path must not care.
	wg.Wait()
	st := mustStatus(t, mgr, id)
	if st.State != StateDone {
		t.Fatalf("job state %s, want done", st.State)
	}

	logBytes, err := os.ReadFile(store.LogPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if len(logBytes) == 0 {
		t.Fatal("empty record log")
	}
	for i, got := range drained {
		if !bytes.Equal(got, logBytes) {
			t.Fatalf("drained subscriber %d diverged from the record log (%d vs %d bytes)", i, len(got), len(logBytes))
		}
	}
	// The stalled subscribers replay now — late reads see the identical
	// stream, and Snapshot agrees with Next.
	for i, sub := range stalled {
		if got := bytes.Join(sub.Snapshot(), nil); !bytes.Equal(got, logBytes) {
			t.Fatalf("stalled subscriber %d snapshot diverged from the record log", i)
		}
		if got := bytes.Join(drain(t, sub), nil); !bytes.Equal(got, logBytes) {
			t.Fatalf("stalled subscriber %d replay diverged from the record log", i)
		}
		sub.Close()
	}
}
