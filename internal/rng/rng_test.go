package rng

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// The whole determinism story hangs off this: a Rand built over Source
// must emit exactly the stream rand.New(rand.NewSource(seed)) does, across
// every method the tuners call.
func TestStreamMatchesStdlibSeeded(t *testing.T) {
	for _, seed := range []int64{0, 1, 17, -5, 1 << 40} {
		want := rand.New(rand.NewSource(seed))
		got := New(seed).Rand()
		for i := 0; i < 2000; i++ {
			switch i % 6 {
			case 0:
				if w, g := want.Int63(), got.Int63(); w != g {
					t.Fatalf("seed %d draw %d: Int63 %d != %d", seed, i, g, w)
				}
			case 1:
				if w, g := want.Uint64(), got.Uint64(); w != g {
					t.Fatalf("seed %d draw %d: Uint64 %d != %d", seed, i, g, w)
				}
			case 2:
				if w, g := want.Float64(), got.Float64(); w != g {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, g, w)
				}
			case 3:
				if w, g := want.Intn(97), got.Intn(97); w != g {
					t.Fatalf("seed %d draw %d: Intn %d != %d", seed, i, g, w)
				}
			case 4:
				if w, g := want.Int63n(1<<50), got.Int63n(1<<50); w != g {
					t.Fatalf("seed %d draw %d: Int63n %d != %d", seed, i, g, w)
				}
			case 5:
				wp, gp := want.Perm(7), got.Perm(7)
				for j := range wp {
					if wp[j] != gp[j] {
						t.Fatalf("seed %d draw %d: Perm %v != %v", seed, i, gp, wp)
					}
				}
			}
		}
	}
}

// Snapshot mid-stream, restore, and the continuation must be the same
// instance of the stream — bit-identical, draw for draw.
func TestSnapshotRestoreContinuation(t *testing.T) {
	for _, cut := range []int{0, 1, 13, 250} {
		src := New(17)
		r := src.Rand()
		for i := 0; i < cut; i++ {
			r.Float64()
			r.Intn(10)
		}
		st := src.State()

		// Reference continuation from the live source.
		var want []uint64
		ref := FromState(st)
		for i := 0; i < 200; i++ {
			want = append(want, ref.Rand().Uint64())
		}
		for i := 0; i < 200; i++ {
			if g := r.Uint64(); g != want[i] {
				t.Fatalf("cut %d draw %d: restored %d != live %d", cut, i, want[i], g)
			}
		}
	}
}

func TestStateJSONRoundTrip(t *testing.T) {
	src := New(-99)
	for i := 0; i < 37; i++ {
		src.Rand().Int63()
	}
	st := src.State()
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var got State
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != st {
		t.Fatalf("round trip %+v != %+v", got, st)
	}
	if a, b := FromState(got).Rand().Uint64(), FromState(st).Rand().Uint64(); a != b {
		t.Fatalf("restored streams diverge: %d != %d", a, b)
	}
}

// Reseeding resets the counter so a snapshot taken after Seed reflects the
// new stream.
func TestSeedResetsCounter(t *testing.T) {
	src := New(3)
	src.Rand().Int63()
	src.Seed(11)
	if st := src.State(); st != (State{Seed: 11, N: 0}) {
		t.Fatalf("state after Seed = %+v", st)
	}
	if a, b := src.Int63(), rand.NewSource(11).Int63(); a != b {
		t.Fatalf("post-Seed stream %d != fresh source %d", a, b)
	}
}
