// Package rng provides a serializable deterministic random source.
//
// Source wraps the standard library generator behind a draw counter so the
// full generator state is captured by two words: the seed it was created
// from and the number of primitive draws consumed since. Restoring replays
// the counted draws against a fresh generator, which makes snapshots exact
// by construction: the restored stream is the same *instance* of the
// stream, not a statistically equivalent one.
//
// Bit-compatibility contract: rand.New(rng.New(seed)) produces exactly the
// same value sequence as rand.New(rand.NewSource(seed)). Every golden
// sample-stream hash in this repository depends on that equivalence, which
// is why Source wraps math/rand's additive-lagged-Fibonacci source instead
// of swapping in a different two-word generator (splitmix64/PCG would
// serialize just as small but would change every historical stream).
package rng

import "math/rand"

// Source is a deterministic rand.Source64 whose complete state is
// (Seed, N): the construction seed plus the number of primitive draws
// consumed so far. It is not safe for concurrent use, matching rand.Rand.
type Source struct {
	seed int64
	n    uint64
	src  rand.Source64
	r    *rand.Rand
}

// State is the serializable form of a Source. Both fields round-trip
// through JSON exactly (int64/uint64 are emitted as integer literals).
type State struct {
	// Seed is the value the underlying generator was seeded with.
	Seed int64 `json:"seed"`
	// N is the number of primitive draws consumed since seeding.
	N uint64 `json:"n"`
}

// New returns a Source seeded like rand.NewSource(seed), with the draw
// counter at zero.
func New(seed int64) *Source {
	s := &Source{}
	s.reseed(seed)
	s.r = rand.New(s)
	return s
}

// FromState reconstructs a Source by reseeding and replaying st.N draws.
// The replay cost is linear in N; sessions in this repository draw a small
// bounded number of values per measurement, so restores stay cheap.
func FromState(st State) *Source {
	s := New(st.Seed)
	for i := uint64(0); i < st.N; i++ {
		s.src.Int63()
	}
	s.n = st.N
	return s
}

func (s *Source) reseed(seed int64) {
	s.seed = seed
	s.n = 0
	// rand.NewSource documents that the returned Source implements
	// Source64; the assertion guards against that contract changing.
	src, ok := rand.NewSource(seed).(rand.Source64)
	if !ok {
		panic("rng: rand.NewSource no longer implements Source64") //lint:ignore panicpath stdlib contract violation is unrecoverable
	}
	s.src = src
}

// Int63 draws the next value, advancing the counter by one.
func (s *Source) Int63() int64 {
	s.n++
	return s.src.Int63()
}

// Uint64 draws the next value, advancing the counter by one. The
// underlying generator advances exactly one step per Uint64, the same as
// per Int63, so a single counter covers both entry points.
func (s *Source) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

// Seed reseeds the generator and resets the draw counter.
func (s *Source) Seed(seed int64) {
	s.reseed(seed)
}

// Rand returns a *rand.Rand view over this source. The view holds no
// state of its own for the methods used in this repository (Int63, Int63n,
// Intn, Uint64, Float64, Perm, Shuffle all delegate straight to the
// source), so snapshotting the Source captures the view too. The same
// instance is returned on every call.
func (s *Source) Rand() *rand.Rand {
	return s.r
}

// State captures the current (seed, draw count) pair.
func (s *Source) State() State {
	return State{Seed: s.seed, N: s.n}
}
