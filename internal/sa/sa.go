// Package sa implements the parallel simulated-annealing optimizer AutoTVM
// uses to maximize its learned cost model over a schedule configuration
// space: a batch of walkers performs knob-mutation random walks under a
// decaying temperature while a top-k tracker collects the best unvisited
// configurations found anywhere along the walk.
//
// Two objective shapes are supported. The plain BatchObjective scores every
// proposal batch from scratch. A DeltaObjective additionally learns which
// single knob each proposal changed relative to its walker's current point,
// and is told when a proposal is accepted — enough for an implementation to
// keep encoded feature rows and cached per-tree predictions and rescore
// each proposal incrementally (see internal/tuner's compiled-surrogate
// objective).
//
// Walkers can optionally be partitioned into independent parallel chains
// (Options.Chains): each chain anneals its own walker subset under its own
// split-seeded RNG, and the per-chain top-k sets merge into the global
// top-k in fixed chain order, so the result is bit-identical for any
// Options.Workers value. Chains <= 1 is the serial legacy path, bit-exact
// with the original single-chain implementation.
package sa

import (
	"container/heap"
	"math"
	"math/rand"

	"repro/internal/par"
	"repro/internal/space"
)

// BatchObjective scores a batch of configurations; higher is better. The
// tuner backs this with cost-model batch prediction. With Options.Chains
// > 1 the function is called concurrently from chain goroutines and must
// be safe for concurrent use.
type BatchObjective func([]space.Config) []float64

// DeltaObjective is the incremental-scoring upgrade of BatchObjective.
// The annealer drives it through a strict protocol, per chain:
//
//  1. InitBatch scores the chain's initial walker points from scratch.
//  2. Each round, ProposeBatch scores the proposal batch; proposals[i]
//     differs from walker i's current point at exactly knob changed[i]
//     (changed[i] < 0 means the proposal is an unchanged clone — a
//     degenerate mutation).
//  3. Commit(i) is called, before the walker's point is replaced, for
//     every accepted proposal: walker i's current point becomes
//     proposals[i] from the most recent ProposeBatch.
//
// Returned score slices are only read until the next call, so
// implementations may reuse one buffer. Fork returns a fresh instance
// (sharing read-only model state) for an additional parallel chain; it is
// called serially before any chain starts.
type DeltaObjective interface {
	InitBatch(points []space.Config) []float64
	ProposeBatch(proposals []space.Config, changed []int) []float64
	Commit(i int)
	Fork() DeltaObjective
}

// Options configures a simulated-annealing search.
//
// Temperature contract: the schedule interpolates linearly from TempStart
// to TempEnd over Iters steps and must be non-increasing. The zero value
// selects the package defaults (TempStart 1.0, TempEnd 0), so TempStart ==
// 0 means "default", not "greedy"; a negative TempStart explicitly
// requests a zero-temperature greedy walk. normalized() clamps rather than
// silently reinterprets: negative temperatures clamp to 0, and an inverted
// schedule (TempEnd > TempStart) is truncated to the constant TempStart —
// it never anneals upward.
type Options struct {
	// ParallelSize is the number of concurrent walkers (AutoTVM: 128).
	ParallelSize int
	// Iters is the number of annealing steps (AutoTVM: 500; we default
	// lower because the landscape is smaller-dimensional).
	Iters int
	// TempStart/TempEnd bound the linear temperature schedule; see the
	// Options contract above for how zero/negative/inverted values are
	// normalized.
	TempStart, TempEnd float64
	// Chains partitions the walkers into this many independent annealing
	// chains run in parallel, each with its own RNG split-seeded from the
	// caller's stream, merged into the top-k in fixed chain order. <= 1
	// keeps the serial single-chain path (bit-exact legacy semantics);
	// any value > 1 changes the sample stream relative to Chains <= 1 but
	// is itself deterministic and Workers-invariant.
	Chains int
	// Workers caps the goroutines running chains when Chains > 1
	// (<= 0: par.Workers()). Purely a scheduling knob: results are
	// bit-identical for every value.
	Workers int
}

// DefaultOptions mirrors a scaled-down AutoTVM SA configuration.
func DefaultOptions() Options {
	return Options{ParallelSize: 96, Iters: 120, TempStart: 1.0, TempEnd: 0.0}
}

// normalized applies defaults and enforces the Options contract: a
// non-increasing, non-negative temperature schedule.
func (o Options) normalized() Options {
	if o.ParallelSize <= 0 {
		o.ParallelSize = 96
	}
	if o.Iters <= 0 {
		o.Iters = 120
	}
	if o.TempStart == 0 {
		o.TempStart = 1.0
	}
	if o.TempStart < 0 {
		o.TempStart = 0
	}
	if o.TempEnd < 0 {
		o.TempEnd = 0
	}
	if o.TempEnd > o.TempStart {
		// Inverted schedule: truncate to a constant-temperature walk
		// instead of silently annealing upward.
		o.TempEnd = o.TempStart
	}
	if o.Chains < 0 {
		o.Chains = 0
	}
	return o
}

// scoredConfig pairs a config with its objective value in the top-k heap.
// The flat index rides along so evictions never re-derive it.
type scoredConfig struct {
	cfg   space.Config
	flat  uint64
	score float64
}

// minHeap keeps the k best entries with the worst on top.
type minHeap []scoredConfig

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i].score < h[j].score }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(scoredConfig)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// topK tracks the k best distinct configurations seen, excluding flat
// indices in exclude (shared, read-only).
type topK struct {
	k       int
	h       minHeap
	exclude map[uint64]bool
}

func newTopK(k int, exclude map[uint64]bool) *topK {
	t := &topK{k: k, exclude: exclude}
	heap.Init(&t.h)
	return t
}

// contains reports whether flat index f is currently in the heap. k is
// small (the plan size), so a linear scan over the resident flats beats a
// side map with its hashing, insertion and eviction bookkeeping.
func (t *topK) contains(f uint64) bool {
	for i := range t.h {
		if t.h[i].flat == f {
			return true
		}
	}
	return false
}

// offer clones c before storing it: the annealing loop reuses walker
// buffers across iterations, so anything that outlives the call must own
// its Index. The clone only happens for entries that actually enter the
// heap. f must be c.Flat() — the annealing loop maintains walker flats
// incrementally (one knob changed means one stride added) instead of
// re-deriving the full mixed-radix product on every acceptance.
func (t *topK) offer(c space.Config, f uint64, s float64) {
	if t.h.Len() >= t.k && !(s > t.h[0].score) {
		// Can't displace the current worst: no membership test needed.
		// (Negated comparison so a NaN score is rejected here, exactly as
		// it would fail the displacement test below.)
		return
	}
	if t.contains(f) || (t.exclude != nil && t.exclude[f]) {
		return
	}
	if t.h.Len() < t.k {
		heap.Push(&t.h, scoredConfig{c.Clone(), f, s})
		return
	}
	heap.Pop(&t.h)
	heap.Push(&t.h, scoredConfig{c.Clone(), f, s})
}

// drain empties the tracker and returns its entries best-first.
func (t *topK) drain() []scoredConfig {
	out := make([]scoredConfig, t.h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&t.h).(scoredConfig)
	}
	return out
}

// scorer is the engine-internal objective shape both objective kinds
// adapt to.
type scorer interface {
	scoreInit(points []space.Config) []float64
	scoreProposals(proposals []space.Config, changed []int) []float64
	commit(i int)
}

// funcScorer adapts a BatchObjective: every batch is scored from scratch
// and accept notifications are dropped.
type funcScorer struct{ obj BatchObjective }

func (s funcScorer) scoreInit(points []space.Config) []float64 { return s.obj(points) }
func (s funcScorer) scoreProposals(proposals []space.Config, _ []int) []float64 {
	return s.obj(proposals)
}
func (s funcScorer) commit(int) {}

// deltaScorer adapts a DeltaObjective.
type deltaScorer struct{ obj DeltaObjective }

func (s deltaScorer) scoreInit(points []space.Config) []float64 { return s.obj.InitBatch(points) }
func (s deltaScorer) scoreProposals(proposals []space.Config, changed []int) []float64 {
	return s.obj.ProposeBatch(proposals, changed)
}
func (s deltaScorer) commit(i int) { s.obj.Commit(i) }

// FindMaxima anneals walkers over the space and returns up to k distinct
// configurations with the highest objective values, excluding flat indices
// present in exclude (typically the already-measured set; read-only during
// the call). Results are ordered best-first.
func FindMaxima(sp *space.Space, obj BatchObjective, k int, exclude map[uint64]bool, opts Options, rng *rand.Rand) []space.Config {
	return findMaxima(sp, func() scorer { return funcScorer{obj} }, k, exclude, opts, rng)
}

// FindMaximaDelta is FindMaxima over a DeltaObjective: identical annealing
// semantics and RNG stream, with the objective given enough context to
// score proposals incrementally. With any objective that scores a proposal
// identically to a from-scratch evaluation, the result is bit-identical to
// FindMaxima.
func FindMaximaDelta(sp *space.Space, obj DeltaObjective, k int, exclude map[uint64]bool, opts Options, rng *rand.Rand) []space.Config {
	first := true
	mk := func() scorer {
		if first {
			first = false
			return deltaScorer{obj}
		}
		return deltaScorer{obj.Fork()}
	}
	return findMaxima(sp, mk, k, exclude, opts, rng)
}

func findMaxima(sp *space.Space, mk func() scorer, k int, exclude map[uint64]bool, opts Options, rng *rand.Rand) []space.Config {
	opts = opts.normalized()
	if k <= 0 {
		return nil
	}
	// A space where no knob has two options cannot be mutated: every
	// proposal would be an unchanged clone that passes the >= acceptance
	// test, burning Iters objective batches on a single point. Score the
	// initial walkers once and skip the annealing loop entirely.
	mutable := false
	for i := 0; i < sp.NumKnobs(); i++ {
		if sp.Knob(i).Len() >= 2 {
			mutable = true
			break
		}
	}

	chains := opts.Chains
	if chains > opts.ParallelSize {
		chains = opts.ParallelSize
	}
	if chains <= 1 {
		top := runChain(sp, mk(), opts.ParallelSize, opts, k, exclude, rng, mutable)
		return configsOf(top.drain())
	}

	// Parallel chains: walker counts and RNG seeds are fixed serially up
	// front (seeds split off the caller's stream in chain order), each
	// chain runs independently writing only its own slot, and the
	// per-chain bests merge in chain order — Workers only schedules, it
	// never changes what is computed.
	type chainState struct {
		//lint:ignore rngfield per-call scratch for one findMaxima invocation, never snapshotted
		rng     *rand.Rand
		sc      scorer
		walkers int
		top     *topK
	}
	cs := make([]chainState, chains)
	base, extra := opts.ParallelSize/chains, opts.ParallelSize%chains
	for c := range cs {
		w := base
		if c < extra {
			w++
		}
		cs[c] = chainState{rng: rand.New(rand.NewSource(rng.Int63())), sc: mk(), walkers: w}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	par.For(chains, workers, func(c int) {
		s := &cs[c]
		s.top = runChain(sp, s.sc, s.walkers, opts, k, exclude, s.rng, mutable)
	})
	merged := newTopK(k, exclude)
	for c := range cs {
		for _, e := range cs[c].top.drain() {
			merged.offer(e.cfg, e.flat, e.score)
		}
	}
	return configsOf(merged.drain())
}

func configsOf(entries []scoredConfig) []space.Config {
	out := make([]space.Config, len(entries))
	for i, e := range entries {
		out[i] = e.cfg
	}
	return out
}

// runChain anneals one chain of walkers and returns its top-k tracker.
// With the caller's RNG and walkers == ParallelSize this is the exact
// legacy single-chain loop: same draw order, same acceptance rule, same
// offer sequence.
func runChain(sp *space.Space, sc scorer, walkers int, opts Options, k int, exclude map[uint64]bool, rng *rand.Rand, mutable bool) *topK {
	lens, strides := knobRadix(sp)
	points := make([]space.Config, walkers)
	flats := make([]uint64, walkers)
	for i := range points {
		points[i] = sp.Random(rng)
		flats[i] = points[i].Flat()
	}
	scores := make([]float64, walkers)
	copy(scores, sc.scoreInit(points))

	top := newTopK(k, exclude)
	for i, c := range points {
		top.offer(c, flats[i], scores[i])
	}
	if !mutable {
		return top
	}

	// Proposal buffers are allocated once and reused every iteration; on
	// acceptance a walker swaps buffers with its proposal instead of
	// allocating. Anything that escapes the loop (topK entries) is cloned at
	// insertion, so reuse never aliases retained configs.
	proposals := make([]space.Config, walkers)
	for i := range proposals {
		proposals[i] = points[i].Clone()
	}
	changed := make([]int, walkers)
	for i := range changed {
		changed[i] = -1
	}
	propFlats := make([]uint64, walkers)
	propScores := make([]float64, walkers)
	for it := 0; it < opts.Iters; it++ {
		frac := float64(it) / float64(opts.Iters)
		temp := opts.TempStart + (opts.TempEnd-opts.TempStart)*frac
		for i, c := range points {
			// Loop invariant: proposals[i] differs from points[i] at most at
			// the knob it mutated last round (true after both accept — the
			// buffers swap — and reject), so one repair write re-syncs it
			// and the full Index copy in mutateInto is skipped.
			if pk := changed[i]; pk >= 0 {
				proposals[i].Index[pk] = c.Index[pk]
			}
			ki := mutateIdx(lens, proposals[i], rng)
			changed[i] = ki
			// One knob moved, so the proposal's flat index moves by that
			// knob's stride times the option delta — mod-2^64 arithmetic
			// reproduces Config.Flat exactly, negative deltas included.
			if ki >= 0 {
				delta := uint64(int64(proposals[i].Index[ki] - c.Index[ki]))
				propFlats[i] = flats[i] + delta*strides[ki]
			} else {
				propFlats[i] = flats[i]
			}
		}
		copy(propScores, sc.scoreProposals(proposals, changed))
		for i := range points {
			accept := propScores[i] >= scores[i]
			if !accept && temp > 0 {
				u := rng.Float64()
				x := (propScores[i] - scores[i]) / temp
				if x <= -44 {
					// Exp(x) < 2^-63, below the smallest nonzero Float64 the
					// generator emits, so the Metropolis test reduces to
					// u == 0 — same decision, same draw, no Exp call.
					accept = u == 0
				} else {
					accept = u < math.Exp(x)
				}
			}
			if accept {
				sc.commit(i)
				points[i], proposals[i] = proposals[i], points[i]
				flats[i] = propFlats[i]
				scores[i] = propScores[i]
				top.offer(points[i], flats[i], scores[i])
			}
		}
	}
	return top
}

// knobRadix precomputes each knob's option count and mixed-radix stride
// (the amount Config.Flat changes per unit step of that knob), so the
// annealing loop neither re-queries knob interfaces nor re-derives full
// flat products per iteration.
func knobRadix(sp *space.Space) ([]int, []uint64) {
	n := sp.NumKnobs()
	lens := make([]int, n)
	strides := make([]uint64, n)
	stride := uint64(1)
	for i := n - 1; i >= 0; i-- {
		lens[i] = sp.Knob(i).Len()
		strides[i] = stride
		stride *= uint64(lens[i])
	}
	return lens, strides
}

// mutateIdx reassigns one random knob of dst to a random different option
// and returns that knob's index (-1 when four attempts only drew knobs
// with fewer than two options and dst is unchanged). lens holds the
// per-knob option counts of dst's space. The RNG draw sequence is
// identical to mutate's, so swapping between them never shifts the stream.
// The annealing loop calls it on a proposal buffer it has already
// re-synced to the walker's current point, skipping the Index copy
// mutateInto performs.
func mutateIdx(lens []int, dst space.Config, rng *rand.Rand) int {
	n := len(lens)
	for attempt := 0; attempt < 4; attempt++ {
		ki := rng.Intn(n)
		kl := lens[ki]
		if kl < 2 {
			continue
		}
		nv := rng.Intn(kl - 1)
		if nv >= dst.Index[ki] {
			nv++
		}
		dst.Index[ki] = nv
		return ki
	}
	return -1
}

// mutateInto overwrites dst's Index with a copy of src's and applies
// mutateIdx to it. dst must have the same Index length as src.
func mutateInto(lens []int, dst, src space.Config, rng *rand.Rand) int {
	copy(dst.Index, src.Index)
	return mutateIdx(lens, dst, rng)
}

// mutate returns a copy of c with one random knob reassigned to a random
// different option, plus the index of the knob it changed (-1 when four
// attempts only drew knobs with fewer than two options and the copy is
// unchanged). The annealing loop itself uses the allocation-free
// mutateInto.
func mutate(sp *space.Space, c space.Config, rng *rand.Rand) (space.Config, int) {
	lens, _ := knobRadix(sp)
	m := c.Clone()
	return m, mutateInto(lens, m, c, rng)
}
