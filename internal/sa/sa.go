// Package sa implements the parallel simulated-annealing optimizer AutoTVM
// uses to maximize its learned cost model over a schedule configuration
// space: a batch of walkers performs knob-mutation random walks under a
// decaying temperature while a top-k tracker collects the best unvisited
// configurations found anywhere along the walk.
package sa

import (
	"container/heap"
	"math"
	"math/rand"

	"repro/internal/space"
)

// BatchObjective scores a batch of configurations; higher is better. The
// tuner backs this with cost-model batch prediction.
type BatchObjective func([]space.Config) []float64

// Options configures a simulated-annealing search.
type Options struct {
	// ParallelSize is the number of concurrent walkers (AutoTVM: 128).
	ParallelSize int
	// Iters is the number of annealing steps (AutoTVM: 500; we default
	// lower because the landscape is smaller-dimensional).
	Iters int
	// TempStart/TempEnd bound the linear temperature schedule.
	TempStart, TempEnd float64
}

// DefaultOptions mirrors a scaled-down AutoTVM SA configuration.
func DefaultOptions() Options {
	return Options{ParallelSize: 96, Iters: 120, TempStart: 1.0, TempEnd: 0.0}
}

func (o Options) normalized() Options {
	if o.ParallelSize <= 0 {
		o.ParallelSize = 96
	}
	if o.Iters <= 0 {
		o.Iters = 120
	}
	if o.TempStart <= 0 {
		o.TempStart = 1.0
	}
	if o.TempEnd < 0 {
		o.TempEnd = 0
	}
	return o
}

// scoredConfig pairs a config with its objective value in the top-k heap.
type scoredConfig struct {
	cfg   space.Config
	score float64
}

// minHeap keeps the k best entries with the worst on top.
type minHeap []scoredConfig

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i].score < h[j].score }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(scoredConfig)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// FindMaxima anneals walkers over the space and returns up to k distinct
// configurations with the highest objective values, excluding flat indices
// present in exclude (typically the already-measured set). Results are
// ordered best-first.
func FindMaxima(sp *space.Space, obj BatchObjective, k int, exclude map[uint64]bool, opts Options, rng *rand.Rand) []space.Config {
	opts = opts.normalized()
	if k <= 0 {
		return nil
	}

	points := make([]space.Config, opts.ParallelSize)
	for i := range points {
		points[i] = sp.Random(rng)
	}
	scores := obj(points)

	top := &minHeap{}
	heap.Init(top)
	inTop := make(map[uint64]bool, k)
	offer := func(c space.Config, s float64) {
		f := c.Flat()
		if inTop[f] || (exclude != nil && exclude[f]) {
			return
		}
		if top.Len() < k {
			heap.Push(top, scoredConfig{c, s})
			inTop[f] = true
			return
		}
		if s > (*top)[0].score {
			evicted := heap.Pop(top).(scoredConfig)
			delete(inTop, evicted.cfg.Flat())
			heap.Push(top, scoredConfig{c, s})
			inTop[f] = true
		}
	}
	for i, c := range points {
		offer(c, scores[i])
	}

	proposals := make([]space.Config, opts.ParallelSize)
	for it := 0; it < opts.Iters; it++ {
		frac := float64(it) / float64(opts.Iters)
		temp := opts.TempStart + (opts.TempEnd-opts.TempStart)*frac
		for i, c := range points {
			proposals[i] = mutate(sp, c, rng)
		}
		propScores := obj(proposals)
		for i := range points {
			accept := propScores[i] >= scores[i]
			if !accept && temp > 0 {
				accept = rng.Float64() < math.Exp((propScores[i]-scores[i])/temp)
			}
			if accept {
				points[i] = proposals[i]
				scores[i] = propScores[i]
				offer(points[i], scores[i])
			}
		}
	}

	out := make([]space.Config, top.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(top).(scoredConfig).cfg
	}
	return out
}

// mutate returns a copy of c with one random knob reassigned to a random
// different option (when the knob has more than one option).
func mutate(sp *space.Space, c space.Config, rng *rand.Rand) space.Config {
	n := sp.NumKnobs()
	m := c.Clone()
	for attempt := 0; attempt < 4; attempt++ {
		ki := rng.Intn(n)
		kl := sp.Knob(ki).Len()
		if kl < 2 {
			continue
		}
		nv := rng.Intn(kl - 1)
		if nv >= m.Index[ki] {
			nv++
		}
		m.Index[ki] = nv
		return m
	}
	return m
}
