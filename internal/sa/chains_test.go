package sa

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/space"
)

// countingDelta wraps a BatchObjective as a from-scratch DeltaObjective:
// proposals are re-scored fully, ignoring the delta hints. Because every
// score equals the from-scratch evaluation, FindMaximaDelta over it must
// reproduce FindMaxima bit for bit.
type countingDelta struct {
	obj     BatchObjective
	mu      sync.Mutex
	inits   int
	rounds  int
	commits int
	forks   int
}

func (d *countingDelta) InitBatch(points []space.Config) []float64 {
	d.mu.Lock()
	d.inits++
	d.mu.Unlock()
	return d.obj(points)
}

func (d *countingDelta) ProposeBatch(proposals []space.Config, changed []int) []float64 {
	d.mu.Lock()
	d.rounds++
	d.mu.Unlock()
	return d.obj(proposals)
}

func (d *countingDelta) Commit(int) {
	d.mu.Lock()
	d.commits++
	d.mu.Unlock()
}

func (d *countingDelta) Fork() DeltaObjective {
	d.mu.Lock()
	d.forks++
	d.mu.Unlock()
	return d
}

func sameConfigs(a, b []space.Config) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Flat() != b[i].Flat() {
			return false
		}
	}
	return true
}

// TestFindMaximaDeltaMatchesBatch pins engine parity: the delta-objective
// entry point with a from-scratch scorer must walk the identical RNG
// stream and return the identical best-first candidate list as the legacy
// BatchObjective path.
func TestFindMaximaDeltaMatchesBatch(t *testing.T) {
	sp := gridSpace()
	opts := Options{ParallelSize: 24, Iters: 60}
	for seed := int64(0); seed < 5; seed++ {
		want := FindMaxima(sp, peakObjective, 8, nil, opts, rand.New(rand.NewSource(seed)))
		d := &countingDelta{obj: peakObjective}
		got := FindMaximaDelta(sp, d, 8, nil, opts, rand.New(rand.NewSource(seed)))
		if !sameConfigs(want, got) {
			t.Fatalf("seed %d: delta path diverges from batch path", seed)
		}
		if d.inits != 1 || d.rounds != opts.Iters {
			t.Fatalf("seed %d: %d inits / %d proposal rounds, want 1 / %d", seed, d.inits, d.rounds, opts.Iters)
		}
		if d.commits == 0 {
			t.Fatalf("seed %d: no commits recorded over %d rounds", seed, d.rounds)
		}
	}
}

// TestChainsWorkerCountInvariance is the determinism contract of the
// parallel-chain mode: for a fixed chain count, the merged top-k is
// bit-identical (same configs, same order) whether 1, 4 or 8 workers run
// the chains — the worker count schedules chains, it never changes what
// any chain computes or the fixed merge order.
func TestChainsWorkerCountInvariance(t *testing.T) {
	sp := gridSpace()
	for _, chains := range []int{2, 3, 8} {
		var ref []space.Config
		for _, workers := range []int{1, 4, 8} {
			opts := Options{ParallelSize: 32, Iters: 40, Chains: chains, Workers: workers}
			rng := rand.New(rand.NewSource(42))
			got := FindMaxima(sp, peakObjective, 10, nil, opts, rng)
			if workers == 1 {
				ref = got
				continue
			}
			if !sameConfigs(ref, got) {
				t.Fatalf("chains=%d workers=%d: results diverge from workers=1", chains, workers)
			}
		}
	}
}

// TestChainsDeltaWorkerCountInvariance runs the same grid through the
// delta entry point, exercising Fork() under concurrent chains.
func TestChainsDeltaWorkerCountInvariance(t *testing.T) {
	sp := gridSpace()
	for _, chains := range []int{2, 4} {
		var ref []space.Config
		for _, workers := range []int{1, 4, 8} {
			opts := Options{ParallelSize: 32, Iters: 40, Chains: chains, Workers: workers}
			d := &countingDelta{obj: peakObjective}
			got := FindMaximaDelta(sp, d, 10, nil, opts, rand.New(rand.NewSource(7)))
			if d.forks != chains-1 {
				t.Fatalf("chains=%d: %d forks, want %d", chains, d.forks, chains-1)
			}
			if workers == 1 {
				ref = got
				continue
			}
			if !sameConfigs(ref, got) {
				t.Fatalf("chains=%d workers=%d: delta results diverge from workers=1", chains, workers)
			}
		}
	}
}

// TestChainsFindPeak checks the parallel-chain mode still optimizes: with
// several chains the merged result must contain the global peak.
func TestChainsFindPeak(t *testing.T) {
	sp := gridSpace()
	opts := Options{ParallelSize: 96, Iters: 120, Chains: 4}
	rng := rand.New(rand.NewSource(3))
	got := FindMaxima(sp, peakObjective, 5, nil, opts, rng)
	if len(got) != 5 {
		t.Fatalf("got %d results", len(got))
	}
	best := got[0]
	if best.Index[0] != 15 || best.Index[1] != 5 || best.Index[2] != 10 {
		t.Fatalf("best = %v, want peak (15,5,10)", best.Index)
	}
}

// TestChainsRespectExclude checks the exclude set applies inside every
// chain and in the merge.
func TestChainsRespectExclude(t *testing.T) {
	sp := gridSpace()
	peak, err := sp.FromIndices([]int{15, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	exclude := map[uint64]bool{peak.Flat(): true}
	rng := rand.New(rand.NewSource(4))
	got := FindMaxima(sp, peakObjective, 8, exclude, Options{ParallelSize: 64, Iters: 80, Chains: 4}, rng)
	for _, c := range got {
		if c.Flat() == peak.Flat() {
			t.Fatal("excluded config returned from chained run")
		}
	}
}

// TestChainsMoreThanWalkers clamps the chain count at the walker count.
func TestChainsMoreThanWalkers(t *testing.T) {
	sp := gridSpace()
	rng := rand.New(rand.NewSource(5))
	got := FindMaxima(sp, peakObjective, 4, nil, Options{ParallelSize: 3, Iters: 20, Chains: 16}, rng)
	if len(got) == 0 {
		t.Fatal("no results from chains > walkers")
	}
}
