package sa

import (
	"math/rand"
	"testing"

	"repro/internal/space"
)

// gridSpace is a simple 3-knob space for objective tests.
func gridSpace() *space.Space {
	vals := make([]int, 20)
	for i := range vals {
		vals[i] = i
	}
	return space.New(
		space.NewEnumKnob("a", vals...),
		space.NewEnumKnob("b", vals...),
		space.NewEnumKnob("c", vals...),
	)
}

// peakObjective is maximized at a=15, b=5, c=10.
func peakObjective(batch []space.Config) []float64 {
	out := make([]float64, len(batch))
	for i, c := range batch {
		a := float64(c.Index[0]) - 15
		b := float64(c.Index[1]) - 5
		cc := float64(c.Index[2]) - 10
		out[i] = -(a*a + b*b + cc*cc)
	}
	return out
}

func TestFindMaximaFindsPeak(t *testing.T) {
	sp := gridSpace()
	rng := rand.New(rand.NewSource(1))
	got := FindMaxima(sp, peakObjective, 5, nil, DefaultOptions(), rng)
	if len(got) != 5 {
		t.Fatalf("got %d results", len(got))
	}
	best := got[0]
	if best.Index[0] != 15 || best.Index[1] != 5 || best.Index[2] != 10 {
		t.Fatalf("best = %v, want peak (15,5,10)", best.Index)
	}
	// Best-first ordering.
	scores := peakObjective(got)
	for i := 1; i < len(scores); i++ {
		if scores[i] > scores[i-1] {
			t.Fatalf("results not sorted best-first: %v", scores)
		}
	}
}

func TestFindMaximaDistinct(t *testing.T) {
	sp := gridSpace()
	rng := rand.New(rand.NewSource(2))
	got := FindMaxima(sp, peakObjective, 20, nil, DefaultOptions(), rng)
	seen := make(map[uint64]bool)
	for _, c := range got {
		f := c.Flat()
		if seen[f] {
			t.Fatal("duplicate result")
		}
		seen[f] = true
	}
}

func TestFindMaximaExcludes(t *testing.T) {
	sp := gridSpace()
	rng := rand.New(rand.NewSource(3))
	peak, err := sp.FromIndices([]int{15, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	exclude := map[uint64]bool{peak.Flat(): true}
	got := FindMaxima(sp, peakObjective, 5, exclude, DefaultOptions(), rng)
	for _, c := range got {
		if c.Flat() == peak.Flat() {
			t.Fatal("excluded config returned")
		}
	}
}

func TestFindMaximaZeroK(t *testing.T) {
	sp := gridSpace()
	rng := rand.New(rand.NewSource(4))
	if got := FindMaxima(sp, peakObjective, 0, nil, DefaultOptions(), rng); got != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestFindMaximaBeatsRandomSearch(t *testing.T) {
	// On the same evaluation budget, SA should reach a better objective
	// value than pure random sampling (averaged over repeats).
	sp := gridSpace()
	opts := Options{ParallelSize: 16, Iters: 30}
	budget := 16 * 31
	saWins := 0
	rounds := 10
	for r := 0; r < rounds; r++ {
		rng := rand.New(rand.NewSource(int64(100 + r)))
		saBest := peakObjective(FindMaxima(sp, peakObjective, 1, nil, opts, rng))[0]
		rng2 := rand.New(rand.NewSource(int64(200 + r)))
		randBest := -1e18
		for i := 0; i < budget; i++ {
			v := peakObjective([]space.Config{sp.Random(rng2)})[0]
			if v > randBest {
				randBest = v
			}
		}
		if saBest >= randBest {
			saWins++
		}
	}
	if saWins < 7 {
		t.Fatalf("SA won only %d/%d rounds against random search", saWins, rounds)
	}
}

func TestOptionsNormalized(t *testing.T) {
	o := Options{}.normalized()
	if o.ParallelSize <= 0 || o.Iters <= 0 || o.TempStart <= 0 {
		t.Fatalf("normalized options invalid: %+v", o)
	}
	o = Options{ParallelSize: 7, Iters: 9, TempStart: 2, TempEnd: 1}.normalized()
	if o.ParallelSize != 7 || o.Iters != 9 || o.TempStart != 2 || o.TempEnd != 1 {
		t.Fatal("explicit options must be preserved")
	}
}

// TestOptionsNormalizedSchedule pins the temperature-schedule contract:
// an inverted schedule never anneals upward (it truncates to a constant
// TempStart), negative temperatures clamp to a greedy zero, and the zero
// value still selects the package default.
func TestOptionsNormalizedSchedule(t *testing.T) {
	o := Options{TempStart: 1, TempEnd: 5}.normalized()
	if o.TempStart != 1 || o.TempEnd != 1 {
		t.Fatalf("inverted schedule must clamp TempEnd to TempStart, got start=%v end=%v", o.TempStart, o.TempEnd)
	}
	o = Options{TempStart: -3, TempEnd: -1}.normalized()
	if o.TempStart != 0 || o.TempEnd != 0 {
		t.Fatalf("negative temperatures must clamp to greedy zero, got start=%v end=%v", o.TempStart, o.TempEnd)
	}
	o = Options{TempEnd: 0.5}.normalized()
	if o.TempStart != 1.0 || o.TempEnd != 0.5 {
		t.Fatalf("zero TempStart must select the default, got start=%v end=%v", o.TempStart, o.TempEnd)
	}
	o = Options{Chains: -2}.normalized()
	if o.Chains != 0 {
		t.Fatalf("negative Chains must normalize to 0, got %d", o.Chains)
	}
}

func TestMutateChangesOneKnob(t *testing.T) {
	sp := gridSpace()
	rng := rand.New(rand.NewSource(5))
	c := sp.Random(rng)
	for i := 0; i < 100; i++ {
		m, ki := mutate(sp, c, rng)
		diff := 0
		for k := range m.Index {
			if m.Index[k] != c.Index[k] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("mutation changed %d knobs", diff)
		}
		if ki < 0 || m.Index[ki] == c.Index[ki] {
			t.Fatalf("reported knob %d does not match the mutation", ki)
		}
	}
}

func TestMutateSingleOptionKnobs(t *testing.T) {
	// A space where every knob has one option cannot be mutated; mutate
	// must terminate, return a copy, and report no knob changed.
	sp := space.New(space.NewEnumKnob("only", 3))
	rng := rand.New(rand.NewSource(6))
	c := sp.Random(rng)
	m, ki := mutate(sp, c, rng)
	if !m.Equal(c) {
		t.Fatal("immutable space should return unchanged copy")
	}
	if ki != -1 {
		t.Fatalf("degenerate mutation reported knob %d, want -1", ki)
	}
}

// TestFindMaximaDegenerateSpace is the regression test for the
// no-mutable-knob stall: on a space where every knob has one option, the
// annealer must score the single point once and bail out instead of
// re-offering the unmutated clone for Iters rounds.
func TestFindMaximaDegenerateSpace(t *testing.T) {
	sp := space.New(space.NewEnumKnob("a", 7), space.NewEnumKnob("b", 1))
	calls := 0
	obj := func(batch []space.Config) []float64 {
		calls++
		out := make([]float64, len(batch))
		for i := range out {
			out[i] = 1
		}
		return out
	}
	rng := rand.New(rand.NewSource(8))
	got := FindMaxima(sp, obj, 5, nil, Options{ParallelSize: 16, Iters: 200}, rng)
	if len(got) != 1 {
		t.Fatalf("one-point space returned %d configs", len(got))
	}
	if calls != 1 {
		t.Fatalf("objective called %d times on a degenerate space, want 1 (init only)", calls)
	}
}

func TestFindMaximaSmallSpace(t *testing.T) {
	// k larger than the whole space: return everything reachable.
	sp := space.New(space.NewEnumKnob("a", 0, 1), space.NewEnumKnob("b", 0, 1))
	rng := rand.New(rand.NewSource(7))
	got := FindMaxima(sp, peakObjectiveSmall, 100, nil, Options{ParallelSize: 8, Iters: 20}, rng)
	if len(got) == 0 || len(got) > 4 {
		t.Fatalf("got %d results from a 4-point space", len(got))
	}
}

func peakObjectiveSmall(batch []space.Config) []float64 {
	out := make([]float64, len(batch))
	for i, c := range batch {
		out[i] = float64(c.Index[0] + c.Index[1])
	}
	return out
}
