package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Variance(xs) != 4 {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if StdDev(xs) != 2 {
		t.Fatalf("StdDev = %v", StdDev(xs))
	}
	wantSample := 4 * 8.0 / 7.0
	if math.Abs(SampleVariance(xs)-wantSample) > 1e-12 {
		t.Fatalf("SampleVariance = %v, want %v", SampleVariance(xs), wantSample)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Median(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Fatal("empty-slice stats should be zero")
	}
	if Variance([]float64{3}) != 0 || SampleVariance([]float64{3}) != 0 {
		t.Fatal("singleton variance should be zero")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty min/max should be infinities")
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Fatal("min/max wrong")
	}
	if Median(xs) != 3 {
		t.Fatalf("Median = %v", Median(xs))
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even median wrong")
	}
	// Median must not mutate.
	if xs[0] != 3 {
		t.Fatal("Median mutated input")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {-5, 10}, {110, 50}, {62.5, 35},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestDeltaPercent(t *testing.T) {
	if DeltaPercent(0, 5) != 0 {
		t.Fatal("zero baseline should give 0")
	}
	if got := DeltaPercent(2.0, 1.5); math.Abs(got - -25) > 1e-12 {
		t.Fatalf("DeltaPercent = %v", got)
	}
	if got := DeltaPercent(1.0, 1.2); math.Abs(got-20) > 1e-12 {
		t.Fatalf("DeltaPercent = %v", got)
	}
}

func TestResample(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := []float64{1, 2, 3, 4, 5}
	r := Resample(xs, rng)
	if len(r) != len(xs) {
		t.Fatal("resample size mismatch")
	}
	set := map[float64]bool{1: true, 2: true, 3: true, 4: true, 5: true}
	for _, v := range r {
		if !set[v] {
			t.Fatalf("resample produced foreign value %v", v)
		}
	}
	idx := ResampleIndices(10, rng)
	for _, i := range idx {
		if i < 0 || i >= 10 {
			t.Fatalf("index %d out of range", i)
		}
	}
}

func TestBootstrapUniqueFraction(t *testing.T) {
	// Classic bootstrap fact: a resample contains ~63.2% unique items.
	rng := rand.New(rand.NewSource(42))
	n := 1000
	total := 0
	reps := 200
	for r := 0; r < reps; r++ {
		seen := make(map[int]bool)
		for _, i := range ResampleIndices(n, rng) {
			seen[i] = true
		}
		total += len(seen)
	}
	frac := float64(total) / float64(reps*n)
	if frac < 0.61 || frac > 0.66 {
		t.Fatalf("unique fraction = %.4f, want ~0.632", frac)
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	lo, hi := BootstrapCI(xs, 500, 0.05, rng)
	if lo >= hi {
		t.Fatalf("degenerate CI [%v, %v]", lo, hi)
	}
	if lo > 10 || hi < 10 {
		t.Fatalf("CI [%v, %v] should cover the true mean 10", lo, hi)
	}
	if l, h := BootstrapCI(nil, 10, 0.05, rng); l != 0 || h != 0 {
		t.Fatal("empty CI should be zero")
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 600)
	var r Running
	for i := range xs {
		xs[i] = rng.ExpFloat64()
		r.Add(xs[i])
	}
	if r.N() != 600 {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-Mean(xs)) > 1e-10 {
		t.Fatalf("running mean %v vs %v", r.Mean(), Mean(xs))
	}
	if math.Abs(r.Variance()-Variance(xs)) > 1e-10 {
		t.Fatalf("running var %v vs %v", r.Variance(), Variance(xs))
	}
	var one Running
	one.Add(5)
	if one.Variance() != 0 {
		t.Fatal("single-sample running variance should be 0")
	}
}

// Property: variance is invariant under shift and scales quadratically.
func TestVarianceProperties(t *testing.T) {
	f := func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 50)
		ys := make([]float64, 50)
		zs := make([]float64, 50)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = xs[i] + shift
			zs[i] = 3 * xs[i]
		}
		v := Variance(xs)
		return math.Abs(Variance(ys)-v) < 1e-6*(1+math.Abs(v)+shift*shift) &&
			math.Abs(Variance(zs)-9*v) < 1e-6*(1+v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Percentile is monotone in p.
func TestPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 30)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
