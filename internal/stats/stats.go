// Package stats provides the summary statistics used throughout the
// reproduction: means, variances, bootstrap confidence intervals and the
// improvement ratios reported in the paper's Table I.
package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean of xs, 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (the paper reports
// variance over 600 fixed runs, a population quantity). Returns 0 for
// fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// SampleVariance returns the unbiased (n-1) sample variance.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return Variance(xs) * float64(len(xs)) / float64(len(xs)-1)
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs; +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs, 0 for an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := p / 100 * float64(len(c)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c[lo]
	}
	frac := rank - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// DeltaPercent returns the paper's Δ(%) improvement of value v over
// baseline b: 100*(v-b)/b. Negative means improvement for latency-style
// metrics. Returns 0 when the baseline is 0.
func DeltaPercent(baseline, v float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * (v - baseline) / baseline
}

// Resample draws a bootstrap resample of xs (with replacement, same size)
// using rng.
func Resample(xs []float64, rng *rand.Rand) []float64 {
	out := make([]float64, len(xs))
	for i := range out {
		out[i] = xs[rng.Intn(len(xs))]
	}
	return out
}

// ResampleIndices draws n indices uniformly with replacement from [0, n).
// This is the index-level bootstrap used by the BAO evaluation functions.
func ResampleIndices(n int, rng *rand.Rand) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(n)
	}
	return out
}

// BootstrapCI estimates a (1-alpha) percentile confidence interval of the
// mean of xs from b bootstrap resamples.
func BootstrapCI(xs []float64, b int, alpha float64, rng *rand.Rand) (lo, hi float64) {
	if len(xs) == 0 || b <= 0 {
		return 0, 0
	}
	means := make([]float64, b)
	for i := range means {
		means[i] = Mean(Resample(xs, rng))
	}
	return Percentile(means, 100*alpha/2), Percentile(means, 100*(1-alpha/2))
}

// Running tracks streaming mean/variance via Welford's algorithm; used by
// the simulator's 600-run latency sampler to avoid holding all samples.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples seen.
func (r *Running) N() int { return r.n }

// Mean returns the running mean.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the running population variance.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}
