package rf

import (
	"math"
	"math/rand"
	"testing"
)

func makeData(n int, noise float64, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64() * 4, rng.Float64() * 4, rng.Float64()}
		X[i] = x
		y[i] = x[0]*x[0] - 3*x[1] + noise*rng.NormFloat64()
	}
	return X, y
}

func mse(m *Model, X [][]float64, y []float64) float64 {
	s := 0.0
	for i := range X {
		d := m.Predict(X[i]) - y[i]
		s += d * d
	}
	return s / float64(len(X))
}

func TestForestLearns(t *testing.T) {
	X, y := makeData(600, 0.1, 1)
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTrees() != DefaultParams().NumTrees {
		t.Fatalf("trees = %d", m.NumTrees())
	}
	varY := 0.0
	meanY := 0.0
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(len(y))
	for _, v := range y {
		varY += (v - meanY) * (v - meanY)
	}
	varY /= float64(len(y))
	if got := mse(m, X, y); got > 0.15*varY {
		t.Fatalf("train MSE %.4f too high (var %.4f)", got, varY)
	}
	XT, yT := makeData(200, 0.0, 2)
	if got := mse(m, XT, yT); got > 0.3*varY {
		t.Fatalf("test MSE %.4f too high (var %.4f)", got, varY)
	}
}

func TestForestValidation(t *testing.T) {
	X := [][]float64{{1}, {2}}
	y := []float64{1, 2}
	if _, err := Train(nil, nil, DefaultParams()); err == nil {
		t.Fatal("empty should error")
	}
	if _, err := Train(X, []float64{1}, DefaultParams()); err == nil {
		t.Fatal("mismatch should error")
	}
	if _, err := Train([][]float64{{}, {}}, y, DefaultParams()); err == nil {
		t.Fatal("zero features should error")
	}
	if _, err := Train([][]float64{{1}, {2, 3}}, y, DefaultParams()); err == nil {
		t.Fatal("ragged should error")
	}
	for _, bad := range []Params{
		{NumTrees: 0, MaxDepth: 5, MinLeaf: 1, FeatureFrac: 0.5},
		{NumTrees: 5, MaxDepth: 0, MinLeaf: 1, FeatureFrac: 0.5},
		{NumTrees: 5, MaxDepth: 5, MinLeaf: 0, FeatureFrac: 0.5},
		{NumTrees: 5, MaxDepth: 5, MinLeaf: 1, FeatureFrac: 0},
		{NumTrees: 5, MaxDepth: 5, MinLeaf: 1, FeatureFrac: 2},
	} {
		if _, err := Train(X, y, bad); err == nil {
			t.Fatalf("params %+v should error", bad)
		}
	}
}

func TestForestDeterministic(t *testing.T) {
	X, y := makeData(200, 0.1, 3)
	p := DefaultParams()
	p.Seed = 9
	a, err := Train(X, y, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(X, y, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if a.Predict(X[i]) != b.Predict(X[i]) {
			t.Fatal("same seed must be deterministic")
		}
	}
}

func TestForestSpread(t *testing.T) {
	X, y := makeData(300, 0.2, 4)
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	meanAt, spreadAt := m.PredictWithSpread(X[0])
	if math.Abs(meanAt-m.Predict(X[0])) > 1e-9 {
		t.Fatal("spread mean must match Predict")
	}
	if spreadAt < 0 {
		t.Fatal("spread must be non-negative")
	}
	// Far outside the data, trees disagree at least as much as at a dense
	// training point, typically more.
	_, spreadFar := m.PredictWithSpread([]float64{100, -100, 50})
	if spreadFar < 0 {
		t.Fatal("negative spread")
	}
}

func TestForestConstantTarget(t *testing.T) {
	X, _ := makeData(50, 0, 5)
	y := make([]float64, 50)
	for i := range y {
		y[i] = 4.2
	}
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict(X[3]); math.Abs(got-4.2) > 1e-9 {
		t.Fatalf("constant predict %v", got)
	}
}

func TestForestPredictPanicsOnDim(t *testing.T) {
	X, y := makeData(50, 0, 6)
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Predict([]float64{1})
}

func TestForestMinLeafRespected(t *testing.T) {
	X, y := makeData(100, 0.1, 7)
	p := DefaultParams()
	p.MinLeaf = 30
	m, err := Train(X, y, p)
	if err != nil {
		t.Fatal(err)
	}
	// With MinLeaf 30 on 100 rows, trees are very shallow: count nodes.
	for _, tr := range m.trees {
		if len(tr.nodes) > 15 {
			t.Fatalf("tree has %d nodes despite MinLeaf 30", len(tr.nodes))
		}
	}
}

func TestForestDuplicateRows(t *testing.T) {
	X := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	y := []float64{1, 2, 3, 4}
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	got := m.Predict([]float64{1, 1})
	if got < 1 || got > 4 {
		t.Fatalf("degenerate predict %v", got)
	}
}
