// Package rf implements random-forest regression (Breiman 2001): bagged
// CART trees over bootstrap resamples with per-split feature subsampling.
// It is a second alternative evaluation function for the paper's framework
// (after the XGBoost-style booster and the Gaussian process), and it is a
// natural fit for BAO: the paper motivates BAO with exactly the
// bagging/variance-reduction argument that random forests embody.
package rf

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Params configures forest training.
type Params struct {
	NumTrees    int     // ensemble size (default 40)
	MaxDepth    int     // tree depth cap (default 10)
	MinLeaf     int     // minimum samples per leaf (default 2)
	FeatureFrac float64 // features tried per split, fraction of total (default 1/3)
	Seed        int64
}

// DefaultParams returns standard regression-forest settings.
func DefaultParams() Params {
	return Params{NumTrees: 40, MaxDepth: 10, MinLeaf: 2, FeatureFrac: 1.0 / 3}
}

func (p Params) validate() error {
	if p.NumTrees <= 0 {
		return errors.New("rf: NumTrees must be positive")
	}
	if p.MaxDepth <= 0 {
		return errors.New("rf: MaxDepth must be positive")
	}
	if p.MinLeaf <= 0 {
		return errors.New("rf: MinLeaf must be positive")
	}
	if p.FeatureFrac <= 0 || p.FeatureFrac > 1 {
		return errors.New("rf: FeatureFrac must be in (0, 1]")
	}
	return nil
}

type node struct {
	feature   int // -1 for leaves
	threshold float64
	left      int32
	right     int32
	value     float64
}

type cart struct{ nodes []node }

func (t *cart) predict(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Model is a trained forest.
type Model struct {
	trees []cart
	nfeat int
}

// NumTrees returns the ensemble size.
func (m *Model) NumTrees() int { return len(m.trees) }

// Predict returns the ensemble-mean prediction at x.
func (m *Model) Predict(x []float64) float64 {
	if len(x) != m.nfeat {
		//lint:ignore panicpath model invariant: feature-width mismatch means the caller mixed models, not a runtime condition
		panic(fmt.Sprintf("rf: predict with %d features, model trained on %d", len(x), m.nfeat))
	}
	s := 0.0
	for i := range m.trees {
		s += m.trees[i].predict(x)
	}
	return s / float64(len(m.trees))
}

// PredictWithSpread returns the ensemble mean and the standard deviation of
// per-tree predictions — a cheap uncertainty proxy.
func (m *Model) PredictWithSpread(x []float64) (mean, spread float64) {
	preds := make([]float64, len(m.trees))
	s := 0.0
	for i := range m.trees {
		preds[i] = m.trees[i].predict(x)
		s += preds[i]
	}
	mean = s / float64(len(preds))
	v := 0.0
	for _, p := range preds {
		d := p - mean
		v += d * d
	}
	return mean, math.Sqrt(v / float64(len(preds)))
}

// Train fits a random forest to (X, y).
func Train(X [][]float64, y []float64, p Params) (*Model, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := len(X)
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("rf: need matching non-empty X (%d) and y (%d)", n, len(y))
	}
	nfeat := len(X[0])
	if nfeat == 0 {
		return nil, errors.New("rf: zero feature dimension")
	}
	for i, row := range X {
		if len(row) != nfeat {
			return nil, fmt.Errorf("rf: row %d has %d features, want %d", i, len(row), nfeat)
		}
	}

	rng := rand.New(rand.NewSource(p.Seed))
	m := &Model{nfeat: nfeat}
	mtry := int(math.Ceil(p.FeatureFrac * float64(nfeat)))
	for t := 0; t < p.NumTrees; t++ {
		rows := make([]int, n)
		for i := range rows {
			rows[i] = rng.Intn(n)
		}
		m.trees = append(m.trees, growCART(X, y, rows, mtry, p, rng))
	}
	return m, nil
}

// growCART builds one tree on a bootstrap sample with variance-reduction
// splits over mtry random features.
func growCART(X [][]float64, y []float64, rows []int, mtry int, p Params, rng *rand.Rand) cart {
	t := cart{}
	nfeat := len(X[0])
	var build func(rows []int, depth int) int32
	build = func(rows []int, depth int) int32 {
		mean := 0.0
		for _, r := range rows {
			mean += y[r]
		}
		mean /= float64(len(rows))
		id := int32(len(t.nodes))
		t.nodes = append(t.nodes, node{feature: -1, value: mean})
		if depth >= p.MaxDepth || len(rows) < 2*p.MinLeaf {
			return id
		}

		// Parent sum of squared deviations.
		parentSS := 0.0
		for _, r := range rows {
			d := y[r] - mean
			parentSS += d * d
		}
		if parentSS == 0 {
			return id
		}

		bestGain := 0.0
		bestFeat := -1
		bestThresh := 0.0
		feats := rng.Perm(nfeat)[:mtry]
		vals := make([]float64, len(rows))
		order := make([]int, len(rows))
		for _, f := range feats {
			for i, r := range rows {
				vals[i] = X[r][f]
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })
			// Prefix scan of sums to evaluate every split position.
			var sumL, nL float64
			sumT := 0.0
			for _, r := range rows {
				sumT += y[r]
			}
			nT := float64(len(rows))
			for i := 0; i < len(rows)-1; i++ {
				r := rows[order[i]]
				sumL += y[r]
				nL++
				//lint:ignore floateq comparing stored feature values for ties; a split threshold between bitwise-equal values is meaningless
				if vals[order[i]] == vals[order[i+1]] {
					continue // no valid threshold between equal values
				}
				nR := nT - nL
				if nL < float64(p.MinLeaf) || nR < float64(p.MinLeaf) {
					continue
				}
				sumR := sumT - sumL
				// Variance reduction = sumL²/nL + sumR²/nR - sumT²/nT.
				gain := sumL*sumL/nL + sumR*sumR/nR - sumT*sumT/nT
				if gain > bestGain {
					bestGain = gain
					bestFeat = f
					bestThresh = (vals[order[i]] + vals[order[i+1]]) / 2
				}
			}
		}
		if bestFeat < 0 {
			return id
		}
		var left, right []int
		for _, r := range rows {
			if X[r][bestFeat] <= bestThresh {
				left = append(left, r)
			} else {
				right = append(right, r)
			}
		}
		if len(left) == 0 || len(right) == 0 {
			return id
		}
		l := build(left, depth+1)
		rr := build(right, depth+1)
		t.nodes[id] = node{feature: bestFeat, threshold: bestThresh, left: l, right: rr}
		return id
	}
	all := make([]int, len(rows))
	copy(all, rows)
	build(all, 0)
	return t
}
