package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTripAllModels(t *testing.T) {
	for _, name := range ModelNames {
		g, err := Model(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		g2, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if g2.Name != g.Name || len(g2.Nodes) != len(g.Nodes) {
			t.Fatalf("%s: structure changed: %d vs %d nodes", name, len(g2.Nodes), len(g.Nodes))
		}
		// Task extraction must survive the round trip exactly.
		a := ExtractTasks(g, ConvOnly)
		b := ExtractTasks(g2, ConvOnly)
		if len(a) != len(b) {
			t.Fatalf("%s: task count changed %d -> %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i].Workload.Key() != b[i].Workload.Key() || a[i].Count != b[i].Count {
				t.Fatalf("%s: task %d changed: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		`{`, // malformed
		`{"name":"x","nodes":[{"id":0,"name":"a","op":"nope","shape":[1]}],"output":0}`,              // unknown op
		`{"name":"x","nodes":[{"id":0,"name":"a","op":"relu","inputs":[5],"shape":[1]}],"output":0}`, // missing input
		`{"name":"x","nodes":[{"id":0,"name":"a","op":"input","shape":[1,3,8,8]}],"output":9}`,       // missing output
		`{"name":"x","nodes":[{"id":0,"name":"c","op":"conv2d","shape":[1,8,8,8]}],"output":0}`,      // tunable without inputs
	}
	for i, s := range cases {
		if _, err := ReadJSON(strings.NewReader(s)); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := SqueezeNetV11()
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatal("not a DOT document")
	}
	if !strings.Contains(out, "fillcolor=lightblue") {
		t.Fatal("tunable nodes should be highlighted")
	}
	if strings.Count(out, "->") == 0 {
		t.Fatal("edges missing")
	}
	// Deterministic.
	var buf2 bytes.Buffer
	if err := g.WriteDOT(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("DOT output must be deterministic")
	}
}

func TestOpTypeByNameCoversAll(t *testing.T) {
	for op := OpInput; op <= OpLRN; op++ {
		got, err := opTypeByName(op.String())
		if err != nil || got != op {
			t.Fatalf("round trip failed for %v", op)
		}
	}
	if _, err := opTypeByName("bogus"); err == nil {
		t.Fatal("bogus op should error")
	}
}
