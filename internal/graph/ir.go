// Package graph implements the compute-graph IR of the general deployment
// framework (Fig. 1 of the paper): DNN models as DAGs of operator nodes,
// graph-level optimization (operator fusion), and extraction of the
// node-wise tuning tasks that the active-learning framework optimizes.
package graph

import (
	"fmt"

	"repro/internal/tensor"
)

// OpType identifies a graph operator. Conv2D, DepthwiseConv2D and Dense are
// tunable; the rest are glue operators that fuse into their producers or run
// in the graph executor.
type OpType int

// Graph operator types.
const (
	OpInput OpType = iota
	OpConv2D
	OpDepthwiseConv2D
	OpDense
	OpBatchNorm
	OpReLU
	OpMaxPool
	OpAvgPool
	OpGlobalAvgPool
	OpAdd
	OpConcat
	OpFlatten
	OpSoftmax
	OpDropout
	OpLRN
)

// String implements fmt.Stringer.
func (o OpType) String() string {
	switch o {
	case OpInput:
		return "input"
	case OpConv2D:
		return "conv2d"
	case OpDepthwiseConv2D:
		return "depthwise_conv2d"
	case OpDense:
		return "dense"
	case OpBatchNorm:
		return "batch_norm"
	case OpReLU:
		return "relu"
	case OpMaxPool:
		return "max_pool"
	case OpAvgPool:
		return "avg_pool"
	case OpGlobalAvgPool:
		return "global_avg_pool"
	case OpAdd:
		return "add"
	case OpConcat:
		return "concat"
	case OpFlatten:
		return "flatten"
	case OpSoftmax:
		return "softmax"
	case OpDropout:
		return "dropout"
	case OpLRN:
		return "lrn"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Tunable reports whether the operator is an auto-tuning target.
func (o OpType) Tunable() bool {
	return o == OpConv2D || o == OpDepthwiseConv2D || o == OpDense
}

// Attrs carries the operator parameters that shape inference needs.
type Attrs struct {
	Channels int // output channels (conv/dense)
	Kernel   int // square kernel extent (conv/pool)
	Stride   int
	Pad      int
	CeilMode bool // pooling rounding (SqueezeNet-v1.1 max pools)
}

// Node is one operator instance in a graph.
type Node struct {
	ID       int
	Name     string
	Op       OpType
	Inputs   []*Node
	Attrs    Attrs
	OutShape tensor.Shape
	// Workload is the canonical tuning workload; set iff Op.Tunable().
	Workload tensor.Workload
}

// String renders "name(op) -> shape".
func (n *Node) String() string {
	return fmt.Sprintf("%s(%s) -> %s", n.Name, n.Op, n.OutShape)
}

// Graph is a DAG of nodes in topological (construction) order.
type Graph struct {
	Name   string
	Nodes  []*Node
	Output *Node
}

// NumNodes returns the number of operator nodes (excluding inputs).
func (g *Graph) NumNodes() int {
	n := 0
	for _, nd := range g.Nodes {
		if nd.Op != OpInput {
			n++
		}
	}
	return n
}

// TunableNodes returns the nodes targeted by auto-tuning, in graph order.
func (g *Graph) TunableNodes() []*Node {
	var out []*Node
	for _, nd := range g.Nodes {
		if nd.Op.Tunable() {
			out = append(out, nd)
		}
	}
	return out
}

// Validate checks structural invariants: topological input ordering,
// consistent shapes, and tunable workload presence.
func (g *Graph) Validate() error {
	pos := make(map[*Node]int, len(g.Nodes))
	for i, nd := range g.Nodes {
		for _, in := range nd.Inputs {
			p, ok := pos[in]
			if !ok {
				return fmt.Errorf("graph %s: node %s uses input %s not in graph", g.Name, nd.Name, in.Name)
			}
			if p >= i {
				return fmt.Errorf("graph %s: node %s not topologically ordered", g.Name, nd.Name)
			}
		}
		if !nd.OutShape.Valid() {
			return fmt.Errorf("graph %s: node %s has invalid shape %v", g.Name, nd.Name, nd.OutShape)
		}
		if nd.Op.Tunable() {
			if err := nd.Workload.Valid(); err != nil {
				return fmt.Errorf("graph %s: node %s: %v", g.Name, nd.Name, err)
			}
		}
		pos[nd] = i
	}
	if g.Output == nil {
		return fmt.Errorf("graph %s: no output node", g.Name)
	}
	if _, ok := pos[g.Output]; !ok {
		return fmt.Errorf("graph %s: output not in node list", g.Name)
	}
	return nil
}

// TotalFLOPs sums the FLOPs of all tunable nodes (the dominant cost).
func (g *Graph) TotalFLOPs() int64 {
	var total int64
	for _, nd := range g.TunableNodes() {
		total += nd.Workload.FLOPs()
	}
	return total
}
