package graph

import (
	"fmt"

	"repro/internal/tensor"
)

// Task is one node-wise tuning problem: a unique workload shared by Count
// fused kernels of a model. Tasks are the unit the paper's framework
// optimizes ("58 nodes that need to be optimized in these models").
type Task struct {
	Index    int    // 1-based order of first appearance (Fig. 5's T1..T19)
	Name     string // "<model>.T<index>"
	Workload tensor.Workload
	Count    int // fused kernels sharing this workload
}

// String renders "mobilenet-v1.T3 (conv2d_... x2)".
func (t Task) String() string {
	return fmt.Sprintf("%s (%s x%d)", t.Name, t.Workload.Key(), t.Count)
}

// ExtractOpts controls task extraction.
type ExtractOpts struct {
	// Ops restricts extraction to the listed operator kinds. Nil means all
	// tunable kinds. The paper's Fig. 5 flow extracts conv2d + depthwise
	// (ConvOnly); Table I end-to-end tuning uses every tunable kind.
	Ops []tensor.OpKind
}

// ConvOnly extracts only conv2d and depthwise_conv2d tasks, matching the
// AutoTVM CUDA tutorial flow the paper's MobileNet experiments follow.
var ConvOnly = ExtractOpts{Ops: []tensor.OpKind{tensor.OpConv2D, tensor.OpDepthwiseConv2D}}

// AllOps extracts every tunable operator kind.
var AllOps = ExtractOpts{}

func (o ExtractOpts) wants(k tensor.OpKind) bool {
	if len(o.Ops) == 0 {
		return true
	}
	for _, kk := range o.Ops {
		if kk == k {
			return true
		}
	}
	return false
}

// ExtractTasks fuses the graph and de-duplicates tunable workloads into
// tasks, ordered by first appearance.
func ExtractTasks(g *Graph, opts ExtractOpts) []Task {
	fg := Fuse(g)
	return ExtractTasksFused(fg, opts)
}

// ExtractTasksFused extracts tasks from an already-fused graph.
func ExtractTasksFused(fg *FusedGraph, opts ExtractOpts) []Task {
	byKey := make(map[string]int)
	var tasks []Task
	for _, f := range fg.TunableKernels() {
		w := f.Anchor.Workload
		if !opts.wants(w.Op) {
			continue
		}
		key := w.Key()
		if i, ok := byKey[key]; ok {
			tasks[i].Count++
			continue
		}
		idx := len(tasks) + 1
		byKey[key] = len(tasks)
		tasks = append(tasks, Task{
			Index:    idx,
			Name:     fmt.Sprintf("%s.T%d", fg.Name, idx),
			Workload: w,
			Count:    1,
		})
	}
	return tasks
}

// TotalTaskCount sums the number of tasks extracted (ConvOnly) across the
// given models; the paper reports 58 across its five models.
func TotalTaskCount(models []string, opts ExtractOpts) (int, error) {
	total := 0
	for _, m := range models {
		g, err := Model(m)
		if err != nil {
			return 0, err
		}
		total += len(ExtractTasks(g, opts))
	}
	return total, nil
}
