package graph

//lint:file-ignore panicpath builder DSL: the chained construction API has no room for error returns; model definitions are static code, so shape panics reject programmer errors at graph-build time

import (
	"fmt"

	"repro/internal/tensor"
)

// Builder constructs graphs with shape inference. Methods panic on invalid
// shapes: model definitions are static code, so a mistake is a programmer
// error, not a runtime condition.
type Builder struct {
	g    *Graph
	next int
}

// NewBuilder starts a graph with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{g: &Graph{Name: name}}
}

func (b *Builder) add(name string, op OpType, attrs Attrs, out tensor.Shape, inputs ...*Node) *Node {
	if !out.Valid() {
		panic(fmt.Sprintf("graph %s: node %s produces invalid shape %v", b.g.Name, name, out))
	}
	n := &Node{ID: b.next, Name: name, Op: op, Inputs: inputs, Attrs: attrs, OutShape: out}
	b.next++
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

// Input declares the model input (N, C, H, W).
func (b *Builder) Input(name string, n, c, h, w int) *Node {
	return b.add(name, OpInput, Attrs{}, tensor.NewShape(n, c, h, w))
}

// Conv adds a conv2d with square kernel/stride/pad and records its workload.
func (b *Builder) Conv(name string, x *Node, channels, kernel, stride, pad int) *Node {
	in := x.OutShape
	if in.Rank() != 4 {
		panic(fmt.Sprintf("graph %s: conv %s needs NCHW input, got %v", b.g.Name, name, in))
	}
	w := tensor.Conv2D(in[0], in[1], in[2], in[3], channels, kernel, stride, pad)
	nd := b.add(name, OpConv2D, Attrs{Channels: channels, Kernel: kernel, Stride: stride, Pad: pad},
		w.OutShape(), x)
	nd.Workload = w
	return nd
}

// DepthwiseConv adds a depthwise conv2d (channel multiplier 1).
func (b *Builder) DepthwiseConv(name string, x *Node, kernel, stride, pad int) *Node {
	in := x.OutShape
	if in.Rank() != 4 {
		panic(fmt.Sprintf("graph %s: depthwise %s needs NCHW input, got %v", b.g.Name, name, in))
	}
	w := tensor.DepthwiseConv2D(in[0], in[1], in[2], in[3], kernel, stride, pad)
	nd := b.add(name, OpDepthwiseConv2D, Attrs{Channels: in[1], Kernel: kernel, Stride: stride, Pad: pad},
		w.OutShape(), x)
	nd.Workload = w
	return nd
}

// Dense adds a fully-connected layer over a rank-2 input.
func (b *Builder) Dense(name string, x *Node, units int) *Node {
	in := x.OutShape
	if in.Rank() != 2 {
		panic(fmt.Sprintf("graph %s: dense %s needs rank-2 input, got %v", b.g.Name, name, in))
	}
	w := tensor.Dense(in[0], in[1], units)
	nd := b.add(name, OpDense, Attrs{Channels: units}, w.OutShape(), x)
	nd.Workload = w
	return nd
}

// BatchNorm adds a batch-normalization node (shape preserving).
func (b *Builder) BatchNorm(name string, x *Node) *Node {
	return b.add(name, OpBatchNorm, Attrs{}, x.OutShape.Clone(), x)
}

// ReLU adds a rectifier (shape preserving).
func (b *Builder) ReLU(name string, x *Node) *Node {
	return b.add(name, OpReLU, Attrs{}, x.OutShape.Clone(), x)
}

// Dropout adds an inference-time no-op dropout (shape preserving).
func (b *Builder) Dropout(name string, x *Node) *Node {
	return b.add(name, OpDropout, Attrs{}, x.OutShape.Clone(), x)
}

// LRN adds local response normalization (shape preserving).
func (b *Builder) LRN(name string, x *Node) *Node {
	return b.add(name, OpLRN, Attrs{}, x.OutShape.Clone(), x)
}

// MaxPool adds a max pooling node.
func (b *Builder) MaxPool(name string, x *Node, kernel, stride, pad int, ceilMode bool) *Node {
	in := x.OutShape
	oh := tensor.PoolOutDim(in[2], kernel, stride, pad, ceilMode)
	ow := tensor.PoolOutDim(in[3], kernel, stride, pad, ceilMode)
	return b.add(name, OpMaxPool, Attrs{Kernel: kernel, Stride: stride, Pad: pad, CeilMode: ceilMode},
		tensor.NewShape(in[0], in[1], oh, ow), x)
}

// AvgPool adds an average pooling node.
func (b *Builder) AvgPool(name string, x *Node, kernel, stride, pad int) *Node {
	in := x.OutShape
	oh := tensor.PoolOutDim(in[2], kernel, stride, pad, false)
	ow := tensor.PoolOutDim(in[3], kernel, stride, pad, false)
	return b.add(name, OpAvgPool, Attrs{Kernel: kernel, Stride: stride, Pad: pad},
		tensor.NewShape(in[0], in[1], oh, ow), x)
}

// GlobalAvgPool reduces spatial dims to 1x1.
func (b *Builder) GlobalAvgPool(name string, x *Node) *Node {
	in := x.OutShape
	return b.add(name, OpGlobalAvgPool, Attrs{}, tensor.NewShape(in[0], in[1], 1, 1), x)
}

// Add performs elementwise addition of equal shapes (residual shortcut).
func (b *Builder) Add(name string, x, y *Node) *Node {
	if !x.OutShape.Equal(y.OutShape) {
		panic(fmt.Sprintf("graph %s: add %s shape mismatch %v vs %v", b.g.Name, name, x.OutShape, y.OutShape))
	}
	return b.add(name, OpAdd, Attrs{}, x.OutShape.Clone(), x, y)
}

// Concat joins inputs along the channel axis.
func (b *Builder) Concat(name string, xs ...*Node) *Node {
	if len(xs) == 0 {
		panic(fmt.Sprintf("graph %s: concat %s needs inputs", b.g.Name, name))
	}
	base := xs[0].OutShape
	c := 0
	for _, x := range xs {
		s := x.OutShape
		if s.Rank() != 4 || s[0] != base[0] || s[2] != base[2] || s[3] != base[3] {
			panic(fmt.Sprintf("graph %s: concat %s incompatible shape %v", b.g.Name, name, s))
		}
		c += s[1]
	}
	return b.add(name, OpConcat, Attrs{}, tensor.NewShape(base[0], c, base[2], base[3]), xs...)
}

// Flatten reshapes NCHW to (N, C*H*W).
func (b *Builder) Flatten(name string, x *Node) *Node {
	in := x.OutShape
	flat := 1
	for _, d := range in[1:] {
		flat *= d
	}
	return b.add(name, OpFlatten, Attrs{}, tensor.NewShape(in[0], flat), x)
}

// Softmax adds the output activation (shape preserving).
func (b *Builder) Softmax(name string, x *Node) *Node {
	return b.add(name, OpSoftmax, Attrs{}, x.OutShape.Clone(), x)
}

// Finish marks the output node, validates and returns the graph.
func (b *Builder) Finish(output *Node) *Graph {
	b.g.Output = output
	if err := b.g.Validate(); err != nil {
		panic(err)
	}
	return b.g
}
