package graph

import "fmt"

// ModelNames lists the five models of the paper's evaluation, in Table I
// order.
var ModelNames = []string{"alexnet", "resnet-18", "vgg-16", "mobilenet-v1", "squeezenet-v1.1"}

// Model builds a paper model by name (batch size 1, 224x224 RGB input).
func Model(name string) (*Graph, error) {
	switch name {
	case "alexnet":
		return AlexNet(), nil
	case "resnet-18":
		return ResNet18(), nil
	case "vgg-16":
		return VGG16(), nil
	case "mobilenet-v1":
		return MobileNetV1(), nil
	case "squeezenet-v1.1":
		return SqueezeNetV11(), nil
	default:
		return nil, fmt.Errorf("graph: unknown model %q (have %v)", name, ModelNames)
	}
}

// AlexNet builds the torchvision AlexNet variant (Krizhevsky et al. 2012).
func AlexNet() *Graph {
	b := NewBuilder("alexnet")
	x := b.Input("data", 1, 3, 224, 224)
	x = b.ReLU("relu1", b.Conv("conv1", x, 64, 11, 4, 2))
	x = b.LRN("lrn1", x)
	x = b.MaxPool("pool1", x, 3, 2, 0, false)
	x = b.ReLU("relu2", b.Conv("conv2", x, 192, 5, 1, 2))
	x = b.LRN("lrn2", x)
	x = b.MaxPool("pool2", x, 3, 2, 0, false)
	x = b.ReLU("relu3", b.Conv("conv3", x, 384, 3, 1, 1))
	x = b.ReLU("relu4", b.Conv("conv4", x, 256, 3, 1, 1))
	x = b.ReLU("relu5", b.Conv("conv5", x, 256, 3, 1, 1))
	x = b.MaxPool("pool5", x, 3, 2, 0, false)
	x = b.Flatten("flatten", x)
	x = b.Dropout("drop6", x)
	x = b.ReLU("relu6", b.Dense("fc6", x, 4096))
	x = b.Dropout("drop7", x)
	x = b.ReLU("relu7", b.Dense("fc7", x, 4096))
	x = b.Dense("fc8", x, 1000)
	return b.Finish(b.Softmax("prob", x))
}

// VGG16 builds VGG-16 (Simonyan & Zisserman 2015, configuration D).
func VGG16() *Graph {
	b := NewBuilder("vgg-16")
	x := b.Input("data", 1, 3, 224, 224)
	block := func(stage, convs, channels int) {
		for i := 1; i <= convs; i++ {
			x = b.ReLU(fmt.Sprintf("relu%d_%d", stage, i),
				b.Conv(fmt.Sprintf("conv%d_%d", stage, i), x, channels, 3, 1, 1))
		}
		x = b.MaxPool(fmt.Sprintf("pool%d", stage), x, 2, 2, 0, false)
	}
	block(1, 2, 64)
	block(2, 2, 128)
	block(3, 3, 256)
	block(4, 3, 512)
	block(5, 3, 512)
	x = b.Flatten("flatten", x)
	x = b.ReLU("relu6", b.Dense("fc6", x, 4096))
	x = b.Dropout("drop6", x)
	x = b.ReLU("relu7", b.Dense("fc7", x, 4096))
	x = b.Dropout("drop7", x)
	x = b.Dense("fc8", x, 1000)
	return b.Finish(b.Softmax("prob", x))
}

// ResNet18 builds ResNet-18 (He et al. 2016) with basic blocks.
func ResNet18() *Graph {
	b := NewBuilder("resnet-18")
	x := b.Input("data", 1, 3, 224, 224)
	x = b.ReLU("relu0", b.BatchNorm("bn0", b.Conv("conv0", x, 64, 7, 2, 3)))
	x = b.MaxPool("pool0", x, 3, 2, 1, false)
	basic := func(name string, in *Node, channels, stride int) *Node {
		body := b.ReLU(name+"_relu1",
			b.BatchNorm(name+"_bn1", b.Conv(name+"_conv1", in, channels, 3, stride, 1)))
		body = b.BatchNorm(name+"_bn2", b.Conv(name+"_conv2", body, channels, 3, 1, 1))
		shortcut := in
		if stride != 1 || in.OutShape[1] != channels {
			shortcut = b.BatchNorm(name+"_scbn", b.Conv(name+"_sc", in, channels, 1, stride, 0))
		}
		return b.ReLU(name+"_relu2", b.Add(name+"_add", body, shortcut))
	}
	x = basic("s1b1", x, 64, 1)
	x = basic("s1b2", x, 64, 1)
	x = basic("s2b1", x, 128, 2)
	x = basic("s2b2", x, 128, 1)
	x = basic("s3b1", x, 256, 2)
	x = basic("s3b2", x, 256, 1)
	x = basic("s4b1", x, 512, 2)
	x = basic("s4b2", x, 512, 1)
	x = b.GlobalAvgPool("gap", x)
	x = b.Flatten("flatten", x)
	x = b.Dense("fc", x, 1000)
	return b.Finish(b.Softmax("prob", x))
}

// MobileNetV1 builds MobileNet-v1 with width multiplier 1.0 (Howard et al.
// 2017): an initial conv followed by 13 depthwise-separable blocks. Its 19
// unique conv/depthwise workloads are the tasks T1..T19 of the paper's
// Fig. 5.
func MobileNetV1() *Graph {
	b := NewBuilder("mobilenet-v1")
	x := b.Input("data", 1, 3, 224, 224)
	x = b.ReLU("relu0", b.BatchNorm("bn0", b.Conv("conv0", x, 32, 3, 2, 1)))
	sep := func(i, channels, stride int) {
		name := fmt.Sprintf("sep%d", i)
		x = b.ReLU(name+"_dwrelu",
			b.BatchNorm(name+"_dwbn", b.DepthwiseConv(name+"_dw", x, 3, stride, 1)))
		x = b.ReLU(name+"_pwrelu",
			b.BatchNorm(name+"_pwbn", b.Conv(name+"_pw", x, channels, 1, 1, 0)))
	}
	plan := []struct{ channels, stride int }{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1}, {512, 2},
		{512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {1024, 2}, {1024, 1},
	}
	for i, p := range plan {
		sep(i+1, p.channels, p.stride)
	}
	x = b.GlobalAvgPool("gap", x)
	x = b.Flatten("flatten", x)
	x = b.Dense("fc", x, 1000)
	return b.Finish(b.Softmax("prob", x))
}

// SqueezeNetV11 builds SqueezeNet-v1.1 (Iandola et al. 2016).
func SqueezeNetV11() *Graph {
	b := NewBuilder("squeezenet-v1.1")
	x := b.Input("data", 1, 3, 224, 224)
	x = b.ReLU("relu1", b.Conv("conv1", x, 64, 3, 2, 0))
	x = b.MaxPool("pool1", x, 3, 2, 0, true)
	fire := func(i, squeeze, expand int) {
		name := fmt.Sprintf("fire%d", i)
		s := b.ReLU(name+"_srelu", b.Conv(name+"_squeeze", x, squeeze, 1, 1, 0))
		e1 := b.ReLU(name+"_e1relu", b.Conv(name+"_expand1x1", s, expand, 1, 1, 0))
		e3 := b.ReLU(name+"_e3relu", b.Conv(name+"_expand3x3", s, expand, 3, 1, 1))
		x = b.Concat(name+"_concat", e1, e3)
	}
	fire(2, 16, 64)
	fire(3, 16, 64)
	x = b.MaxPool("pool3", x, 3, 2, 0, true)
	fire(4, 32, 128)
	fire(5, 32, 128)
	x = b.MaxPool("pool5", x, 3, 2, 0, true)
	fire(6, 48, 192)
	fire(7, 48, 192)
	fire(8, 64, 256)
	fire(9, 64, 256)
	x = b.Dropout("drop9", x)
	x = b.ReLU("relu10", b.Conv("conv10", x, 1000, 1, 1, 0))
	x = b.GlobalAvgPool("gap", x)
	x = b.Flatten("flatten", x)
	return b.Finish(b.Softmax("prob", x))
}
