package graph

import (
	"testing"

	"repro/internal/tensor"
)

func TestAllModelsBuildAndValidate(t *testing.T) {
	for _, name := range ModelNames {
		g, err := Model(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumNodes() == 0 {
			t.Fatalf("%s: empty graph", name)
		}
		if len(g.TunableNodes()) == 0 {
			t.Fatalf("%s: no tunable nodes", name)
		}
	}
	if _, err := Model("lenet-5"); err == nil {
		t.Fatal("unknown model should error")
	}
}

func TestModelOutputShapes(t *testing.T) {
	for _, name := range ModelNames {
		g, _ := Model(name)
		out := g.Output.OutShape
		if out.Rank() != 2 || out[0] != 1 || out[1] != 1000 {
			t.Fatalf("%s: output shape %v, want (1, 1000)", name, out)
		}
	}
}

func TestModelFLOPs(t *testing.T) {
	// Published MAC counts (x2 for FLOPs): VGG-16 ~15.5G MACs, ResNet-18
	// ~1.8G, MobileNet-v1 ~569M, AlexNet ~0.7G, SqueezeNet-v1.1 ~0.35G.
	want := map[string][2]float64{ // GFLOPs bounds (2*MACs)
		"vgg-16":          {28, 33},
		"resnet-18":       {3.2, 4.0},
		"mobilenet-v1":    {1.0, 1.3},
		"alexnet":         {1.2, 1.6},
		"squeezenet-v1.1": {0.6, 0.8},
	}
	for name, bounds := range want {
		g, _ := Model(name)
		gflops := float64(g.TotalFLOPs()) / 1e9
		if gflops < bounds[0] || gflops > bounds[1] {
			t.Errorf("%s: %.2f GFLOPs, want in [%v, %v]", name, gflops, bounds[0], bounds[1])
		}
	}
}

func TestMobileNetTaskCountIs19(t *testing.T) {
	g := MobileNetV1()
	tasks := ExtractTasks(g, ConvOnly)
	if len(tasks) != 19 {
		for _, tk := range tasks {
			t.Logf("  %v", tk)
		}
		t.Fatalf("MobileNet-v1 conv/dw tasks = %d, want 19 (paper Fig. 5)", len(tasks))
	}
	// T1 must be the stem conv (first appearance ordering).
	if tasks[0].Workload.Op != tensor.OpConv2D || tasks[0].Workload.C != 3 {
		t.Fatalf("T1 = %v, want the 3-channel stem conv", tasks[0])
	}
	// 13 separable blocks + stem = 27 conv/dw kernels, so dedup must give
	// total count 27 across the 19 tasks.
	total := 0
	for _, tk := range tasks {
		total += tk.Count
	}
	if total != 27 {
		t.Fatalf("total conv/dw kernels = %d, want 27", total)
	}
}

func TestTaskExtractionCounts(t *testing.T) {
	want := map[string]int{ // ConvOnly task counts from our graphs
		"alexnet":         5,
		"vgg-16":          9,
		"resnet-18":       11,
		"mobilenet-v1":    19,
		"squeezenet-v1.1": 18,
	}
	for name, n := range want {
		g, _ := Model(name)
		tasks := ExtractTasks(g, ConvOnly)
		if len(tasks) != n {
			for _, tk := range tasks {
				t.Logf("  %v", tk)
			}
			t.Errorf("%s: %d conv tasks, want %d", name, len(tasks), n)
		}
	}
	total, err := TotalTaskCount(ModelNames, ConvOnly)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports 58 nodes; our faithful graphs give 62 (documented
	// in EXPERIMENTS.md). Guard the invariant so drift is caught.
	if total != 62 {
		t.Fatalf("total conv tasks = %d, want 62", total)
	}
}

func TestDenseTasksIncluded(t *testing.T) {
	g := AlexNet()
	all := ExtractTasks(g, AllOps)
	convOnly := ExtractTasks(g, ConvOnly)
	if len(all) != len(convOnly)+3 {
		t.Fatalf("AlexNet all-op tasks = %d, conv-only = %d, want +3 dense", len(all), len(convOnly))
	}
}

func TestFusionMobileNet(t *testing.T) {
	g := MobileNetV1()
	fg := Fuse(g)
	// Every conv/dw in MobileNet carries bn+relu: each tunable kernel must
	// absorb exactly 2 epilogue ops.
	for _, f := range fg.TunableKernels() {
		if f.Anchor.Op == OpDense {
			continue
		}
		if len(f.Fused) != 2 {
			t.Fatalf("kernel %s fused %d ops, want 2 (bn+relu)", f.Name(), len(f.Fused))
		}
		if f.Fused[0].Op != OpBatchNorm || f.Fused[1].Op != OpReLU {
			t.Fatalf("kernel %s fused %v", f.Name(), f.Fused)
		}
	}
	if fg.NumKernels() >= g.NumNodes() {
		t.Fatal("fusion should reduce kernel count")
	}
	if fg.FusionReport() == "" {
		t.Fatal("report empty")
	}
}

func TestFusionResNetResidual(t *testing.T) {
	g := ResNet18()
	fg := Fuse(g)
	// In each basic block the second conv's chain is conv->bn->add->relu;
	// the add must fuse into that conv (the later operand), giving fused
	// length 3 for non-downsample blocks.
	foundAddFusion := false
	for _, f := range fg.TunableKernels() {
		for _, n := range f.Fused {
			if n.Op == OpAdd {
				foundAddFusion = true
				// The epilogue after add should include the block relu.
				last := f.Fused[len(f.Fused)-1]
				if last.Op != OpReLU {
					t.Fatalf("kernel %s: add fused but final op is %v", f.Name(), last.Op)
				}
			}
		}
	}
	if !foundAddFusion {
		t.Fatal("residual add should fuse into the preceding conv")
	}
}

func TestFusionSharedTensorNotAbsorbed(t *testing.T) {
	// SqueezeNet's squeeze output feeds two expand convs: its relu has two
	// consumers... actually the relu itself is single-consumer-chained to
	// the squeeze conv; the *relu output* has 2 consumers. The chain stops
	// at the relu, which is correct; check no op with multiple consumers
	// was absorbed.
	g := SqueezeNetV11()
	fg := Fuse(g)
	consumers := make(map[*Node]int)
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			consumers[in]++
		}
	}
	for _, f := range fg.Nodes {
		for i, n := range f.Fused {
			// Only the last op of a fused chain may have multiple consumers.
			if i < len(f.Fused)-1 && consumers[n] > 1 {
				t.Fatalf("kernel %s absorbed multi-consumer op %s mid-chain", f.Name(), n.Name)
			}
		}
	}
}

func TestFusedWorkloadsUnchanged(t *testing.T) {
	// Fusion must not alter any tuning workload.
	g := ResNet18()
	before := make(map[string]int)
	for _, n := range g.TunableNodes() {
		before[n.Workload.Key()]++
	}
	after := make(map[string]int)
	for _, f := range Fuse(g).TunableKernels() {
		after[f.Anchor.Workload.Key()]++
	}
	if len(before) != len(after) {
		t.Fatalf("workload sets differ: %d vs %d", len(before), len(after))
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("workload %s count %d vs %d", k, v, after[k])
		}
	}
}

func TestBuilderPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("conv on rank-2", func() {
		b := NewBuilder("t")
		x := b.Input("in", 1, 3, 8, 8)
		x = b.Flatten("f", x)
		b.Conv("c", x, 8, 3, 1, 1)
	})
	expectPanic("dense on rank-4", func() {
		b := NewBuilder("t")
		x := b.Input("in", 1, 3, 8, 8)
		b.Dense("d", x, 10)
	})
	expectPanic("add shape mismatch", func() {
		b := NewBuilder("t")
		x := b.Input("in", 1, 3, 8, 8)
		y := b.Conv("c", x, 8, 3, 1, 1)
		b.Add("a", x, y)
	})
	expectPanic("empty concat", func() {
		b := NewBuilder("t")
		b.Concat("cat")
	})
	expectPanic("concat mismatch", func() {
		b := NewBuilder("t")
		x := b.Input("in", 1, 3, 8, 8)
		y := b.MaxPool("p", x, 2, 2, 0, false)
		b.Concat("cat", x, y)
	})
	expectPanic("invalid conv shape", func() {
		b := NewBuilder("t")
		x := b.Input("in", 1, 3, 4, 4)
		b.Conv("c", x, 8, 7, 1, 0)
	})
}

func TestGraphValidateErrors(t *testing.T) {
	b := NewBuilder("t")
	x := b.Input("in", 1, 3, 8, 8)
	c := b.Conv("c", x, 8, 3, 1, 1)
	g := b.Finish(c)

	// Break topological order.
	g2 := &Graph{Name: "bad", Nodes: []*Node{g.Nodes[1], g.Nodes[0]}, Output: g.Nodes[1]}
	if g2.Validate() == nil {
		t.Fatal("reversed order should fail validation")
	}
	// Output outside graph.
	stranger := &Node{Name: "x", OutShape: tensor.NewShape(1)}
	g3 := &Graph{Name: "bad", Nodes: g.Nodes, Output: stranger}
	if g3.Validate() == nil {
		t.Fatal("foreign output should fail validation")
	}
	// Missing output.
	g4 := &Graph{Name: "bad", Nodes: g.Nodes}
	if g4.Validate() == nil {
		t.Fatal("nil output should fail validation")
	}
}

func TestSqueezeNetShapes(t *testing.T) {
	g := SqueezeNetV11()
	// conv1 on 224 with k3 s2 p0 -> 111; ceil-mode pool -> 55.
	var conv1, pool1 *Node
	for _, n := range g.Nodes {
		switch n.Name {
		case "conv1":
			conv1 = n
		case "pool1":
			pool1 = n
		}
	}
	if conv1 == nil || pool1 == nil {
		t.Fatal("nodes missing")
	}
	if conv1.OutShape[2] != 111 {
		t.Fatalf("conv1 H = %d, want 111", conv1.OutShape[2])
	}
	if pool1.OutShape[2] != 55 {
		t.Fatalf("pool1 H = %d, want 55", pool1.OutShape[2])
	}
}

func TestOpTypeStrings(t *testing.T) {
	ops := []OpType{OpInput, OpConv2D, OpDepthwiseConv2D, OpDense, OpBatchNorm, OpReLU,
		OpMaxPool, OpAvgPool, OpGlobalAvgPool, OpAdd, OpConcat, OpFlatten, OpSoftmax, OpDropout, OpLRN}
	seen := make(map[string]bool)
	for _, o := range ops {
		s := o.String()
		if s == "" || seen[s] {
			t.Fatalf("op %d string %q empty or duplicated", int(o), s)
		}
		seen[s] = true
	}
	if OpType(99).String() == "" {
		t.Fatal("unknown op should stringify")
	}
	if !OpConv2D.Tunable() || OpReLU.Tunable() {
		t.Fatal("tunable flags wrong")
	}
}

func TestAvgPoolAndGlobalAvgPool(t *testing.T) {
	b := NewBuilder("t")
	x := b.Input("in", 1, 8, 14, 14)
	a := b.AvgPool("ap", x, 2, 2, 0)
	if a.OutShape[2] != 7 {
		t.Fatalf("avg pool H = %d", a.OutShape[2])
	}
	gp := b.GlobalAvgPool("gap", a)
	if gp.OutShape[2] != 1 || gp.OutShape[3] != 1 {
		t.Fatalf("gap shape %v", gp.OutShape)
	}
}

func TestTaskString(t *testing.T) {
	g := MobileNetV1()
	tasks := ExtractTasks(g, ConvOnly)
	if tasks[0].String() == "" || tasks[0].Name != "mobilenet-v1.T1" {
		t.Fatalf("task naming wrong: %v", tasks[0])
	}
}
