package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/tensor"
)

// Stats summarizes a graph for reports: operator histogram, parameter and
// activation footprints, total FLOPs.
type Stats struct {
	Name        string
	OpCounts    map[OpType]int
	Params      int64 // learnable parameter count
	ParamBytes  int64
	MaxActBytes int64 // largest single activation tensor
	TotalFLOPs  int64
}

// ComputeStats walks the graph once.
func ComputeStats(g *Graph) Stats {
	s := Stats{Name: g.Name, OpCounts: make(map[OpType]int)}
	for _, n := range g.Nodes {
		if n.Op != OpInput {
			s.OpCounts[n.Op]++
		}
		if b := n.OutShape.Bytes(tensor.Float32); b > s.MaxActBytes {
			s.MaxActBytes = b
		}
		s.Params += paramCount(n)
	}
	s.ParamBytes = s.Params * 4
	s.TotalFLOPs = g.TotalFLOPs()
	return s
}

// paramCount returns the learnable parameters a node carries.
func paramCount(n *Node) int64 {
	switch n.Op {
	case OpConv2D:
		w := n.Workload
		return int64(w.F)*int64(w.C)*int64(w.KH)*int64(w.KW) + int64(w.F)
	case OpDepthwiseConv2D:
		w := n.Workload
		return int64(w.C)*int64(w.KH)*int64(w.KW) + int64(w.C)
	case OpDense:
		w := n.Workload
		return int64(w.F)*int64(w.C) + int64(w.F)
	case OpBatchNorm:
		if len(n.Inputs) > 0 && n.OutShape.Rank() == 4 {
			return 2 * int64(n.OutShape[1]) // scale + shift
		}
		return 0
	default:
		return 0
	}
}

// Print renders the summary. Writes are buffered and the first write error
// is returned from the final flush.
func (s Stats) Print(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s: %.2f GFLOPs, %.2fM params (%.1f MB), max activation %.2f MB\n",
		s.Name, float64(s.TotalFLOPs)/1e9, float64(s.Params)/1e6,
		float64(s.ParamBytes)/(1<<20), float64(s.MaxActBytes)/(1<<20))
	ops := make([]OpType, 0, len(s.OpCounts))
	for op := range s.OpCounts {
		ops = append(ops, op) //lint:ignore maprange sorted below with a total order
	}
	// Sort by descending count with the OpType value breaking ties: without
	// the tie-break, equal-count ops would keep the randomized map order.
	sort.Slice(ops, func(i, j int) bool {
		if s.OpCounts[ops[i]] != s.OpCounts[ops[j]] {
			return s.OpCounts[ops[i]] > s.OpCounts[ops[j]]
		}
		return ops[i] < ops[j]
	})
	for _, op := range ops {
		fmt.Fprintf(bw, "  %-18s %4d\n", op, s.OpCounts[op])
	}
	return bw.Flush()
}
