package graph

import "fmt"

// FusedNode is one kernel after operator fusion: an anchor operator plus
// the elementwise epilogue absorbed into it. For tunable anchors the fused
// kernel inherits the anchor's tuning workload (fused epilogues are free on
// the accelerator, as in TVM's fusion model).
type FusedNode struct {
	Anchor *Node
	Fused  []*Node // absorbed ops, in execution order
}

// Name returns the anchor name.
func (f *FusedNode) Name() string { return f.Anchor.Name }

// String renders "conv1+bn+relu".
func (f *FusedNode) String() string {
	s := f.Anchor.Name
	for _, n := range f.Fused {
		s += "+" + n.Op.String()
	}
	return s
}

// FusedGraph is the result of graph-level optimization: the kernel list in
// execution order.
type FusedGraph struct {
	Name  string
	Nodes []*FusedNode
}

// NumKernels returns the number of fused kernels (excluding inputs).
func (fg *FusedGraph) NumKernels() int {
	n := 0
	for _, f := range fg.Nodes {
		if f.Anchor.Op != OpInput {
			n++
		}
	}
	return n
}

// TunableKernels returns fused kernels with tunable anchors, in order.
func (fg *FusedGraph) TunableKernels() []*FusedNode {
	var out []*FusedNode
	for _, f := range fg.Nodes {
		if f.Anchor.Op.Tunable() {
			out = append(out, f)
		}
	}
	return out
}

// fusableEpilogue reports whether op can be absorbed into a preceding
// kernel's epilogue.
func fusableEpilogue(op OpType) bool {
	switch op {
	case OpBatchNorm, OpReLU, OpDropout:
		return true
	default:
		return false
	}
}

// Fuse runs the graph-level optimization pass of Fig. 1: every tunable
// operator absorbs its single-consumer elementwise epilogue chain
// (batch-norm, relu, dropout), including a residual add whose other operand
// is already materialized, plus the relu following that add. Non-absorbed
// operators become standalone kernels.
func Fuse(g *Graph) *FusedGraph {
	consumers := make(map[*Node]int)
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			consumers[in]++
		}
	}
	// The graph output is consumed externally.
	consumers[g.Output]++

	next := make(map[*Node][]*Node)
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			next[in] = append(next[in], n)
		}
	}

	absorbed := make(map[*Node]bool)
	fg := &FusedGraph{Name: g.Name}
	for _, n := range g.Nodes {
		if absorbed[n] {
			continue
		}
		fn := &FusedNode{Anchor: n}
		if n.Op.Tunable() {
			tail := n
			allowAdd := true
			for {
				if consumers[tail] != 1 {
					break
				}
				succs := next[tail]
				if len(succs) != 1 {
					break
				}
				s := succs[0]
				if fusableEpilogue(s.Op) {
					fn.Fused = append(fn.Fused, s)
					absorbed[s] = true
					tail = s
					continue
				}
				// Residual add: fuse when this kernel is the later operand,
				// i.e. every other operand was produced before the anchor
				// and is therefore already materialized.
				if s.Op == OpAdd && allowAdd && laterOperand(s, tail, n) {
					fn.Fused = append(fn.Fused, s)
					absorbed[s] = true
					tail = s
					allowAdd = false
					continue
				}
				break
			}
		}
		fg.Nodes = append(fg.Nodes, fn)
	}
	return fg
}

// laterOperand reports whether `tail` is the operand of add that appears
// last in topological order, so all other operands are already computed.
func laterOperand(add, tail, anchor *Node) bool {
	for _, in := range add.Inputs {
		if in == tail {
			continue
		}
		if in.ID > anchor.ID {
			return false
		}
	}
	return true
}

// FusionReport summarizes a fusion pass for logs and docs.
func (fg *FusedGraph) FusionReport() string {
	fusedOps := 0
	for _, f := range fg.Nodes {
		fusedOps += len(f.Fused)
	}
	return fmt.Sprintf("%s: %d kernels (%d epilogue ops fused)", fg.Name, fg.NumKernels(), fusedOps)
}
