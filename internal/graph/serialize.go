package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/tensor"
)

// nodeJSON is the serialized form of a node.
type nodeJSON struct {
	ID       int    `json:"id"`
	Name     string `json:"name"`
	Op       string `json:"op"`
	Inputs   []int  `json:"inputs,omitempty"`
	Shape    []int  `json:"shape"`
	Channels int    `json:"channels,omitempty"`
	Kernel   int    `json:"kernel,omitempty"`
	Stride   int    `json:"stride,omitempty"`
	Pad      int    `json:"pad,omitempty"`
	CeilMode bool   `json:"ceil_mode,omitempty"`
	Workload string `json:"workload,omitempty"`
}

// graphJSON is the serialized form of a graph.
type graphJSON struct {
	Name   string     `json:"name"`
	Nodes  []nodeJSON `json:"nodes"`
	Output int        `json:"output"`
}

// WriteJSON serializes the graph as indented JSON. The format is stable and
// intended for inspection and interchange, not as a versioned IR.
func (g *Graph) WriteJSON(w io.Writer) error {
	out := graphJSON{Name: g.Name, Output: g.Output.ID}
	for _, n := range g.Nodes {
		nj := nodeJSON{
			ID:       n.ID,
			Name:     n.Name,
			Op:       n.Op.String(),
			Shape:    append([]int(nil), n.OutShape...),
			Channels: n.Attrs.Channels,
			Kernel:   n.Attrs.Kernel,
			Stride:   n.Attrs.Stride,
			Pad:      n.Attrs.Pad,
			CeilMode: n.Attrs.CeilMode,
		}
		for _, in := range n.Inputs {
			nj.Inputs = append(nj.Inputs, in.ID)
		}
		if n.Op.Tunable() {
			nj.Workload = n.Workload.Key()
		}
		out.Nodes = append(out.Nodes, nj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// opTypeByName inverts OpType.String for deserialization.
func opTypeByName(s string) (OpType, error) {
	for op := OpInput; op <= OpLRN; op++ {
		if op.String() == s {
			return op, nil
		}
	}
	return 0, fmt.Errorf("graph: unknown op %q", s)
}

// ReadJSON deserializes a graph written by WriteJSON and re-validates it,
// recomputing tunable workloads from attributes and input shapes.
func ReadJSON(r io.Reader) (*Graph, error) {
	var in graphJSON
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("graph: decoding: %w", err)
	}
	byID := make(map[int]*Node, len(in.Nodes))
	g := &Graph{Name: in.Name}
	for _, nj := range in.Nodes {
		op, err := opTypeByName(nj.Op)
		if err != nil {
			return nil, err
		}
		n := &Node{
			ID:   nj.ID,
			Name: nj.Name,
			Op:   op,
			Attrs: Attrs{
				Channels: nj.Channels, Kernel: nj.Kernel, Stride: nj.Stride,
				Pad: nj.Pad, CeilMode: nj.CeilMode,
			},
			OutShape: tensor.NewShape(nj.Shape...),
		}
		for _, id := range nj.Inputs {
			inNode, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("graph: node %s references unknown input %d", nj.Name, id)
			}
			n.Inputs = append(n.Inputs, inNode)
		}
		if op.Tunable() {
			w, err := workloadFor(n)
			if err != nil {
				return nil, err
			}
			n.Workload = w
		}
		byID[nj.ID] = n
		g.Nodes = append(g.Nodes, n)
	}
	out, ok := byID[in.Output]
	if !ok {
		return nil, fmt.Errorf("graph: output node %d missing", in.Output)
	}
	g.Output = out
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// workloadFor recomputes a tunable node's workload from its input shape.
func workloadFor(n *Node) (tensor.Workload, error) {
	if len(n.Inputs) == 0 {
		return tensor.Workload{}, fmt.Errorf("graph: tunable node %s has no inputs", n.Name)
	}
	in := n.Inputs[0].OutShape
	switch n.Op {
	case OpConv2D:
		return tensor.Conv2D(in[0], in[1], in[2], in[3], n.Attrs.Channels, n.Attrs.Kernel, n.Attrs.Stride, n.Attrs.Pad), nil
	case OpDepthwiseConv2D:
		return tensor.DepthwiseConv2D(in[0], in[1], in[2], in[3], n.Attrs.Kernel, n.Attrs.Stride, n.Attrs.Pad), nil
	case OpDense:
		return tensor.Dense(in[0], in[1], n.Attrs.Channels), nil
	default:
		return tensor.Workload{}, fmt.Errorf("graph: node %s is not tunable", n.Name)
	}
}

// WriteDOT renders the graph in Graphviz DOT format, coloring tunable
// nodes. Deterministic output: nodes in ID order.
func (g *Graph) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", g.Name)
	nodes := append([]*Node(nil), g.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		attrs := ""
		if n.Op.Tunable() {
			attrs = ", style=filled, fillcolor=lightblue"
		}
		label := fmt.Sprintf("%s\\n%s %s", n.Name, n.Op, n.OutShape)
		fmt.Fprintf(bw, "  n%d [label=%q%s];\n", n.ID, strings.ReplaceAll(label, `\n`, "\n"), attrs)
	}
	for _, n := range nodes {
		for _, in := range n.Inputs {
			fmt.Fprintf(bw, "  n%d -> n%d;\n", in.ID, n.ID)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
