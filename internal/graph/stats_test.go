package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestComputeStatsKnownParamCounts(t *testing.T) {
	// Published parameter counts (weights + biases, conv/fc only; our
	// models add small batch-norm params on ResNet/MobileNet).
	cases := []struct {
		model  string
		lo, hi float64 // millions of parameters
	}{
		{"alexnet", 57, 62},           // ~61M
		{"vgg-16", 132, 140},          // ~138M
		{"resnet-18", 11, 13},         // ~11.7M + bn
		{"mobilenet-v1", 4.0, 4.5},    // ~4.2M + bn
		{"squeezenet-v1.1", 1.0, 1.5}, // ~1.24M
	}
	for _, c := range cases {
		g, err := Model(c.model)
		if err != nil {
			t.Fatal(err)
		}
		s := ComputeStats(g)
		m := float64(s.Params) / 1e6
		if m < c.lo || m > c.hi {
			t.Errorf("%s: %.2fM params, want in [%v, %v]M", c.model, m, c.lo, c.hi)
		}
		if s.TotalFLOPs != g.TotalFLOPs() {
			t.Errorf("%s: FLOPs mismatch", c.model)
		}
		if s.MaxActBytes <= 0 || s.ParamBytes != s.Params*4 {
			t.Errorf("%s: footprint accounting wrong", c.model)
		}
	}
}

func TestStatsPrint(t *testing.T) {
	g := MobileNetV1()
	var buf bytes.Buffer
	ComputeStats(g).Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "mobilenet-v1") || !strings.Contains(out, "depthwise_conv2d") {
		t.Fatalf("stats print missing content:\n%s", out)
	}
}

func TestStatsOpCounts(t *testing.T) {
	g := MobileNetV1()
	s := ComputeStats(g)
	if s.OpCounts[OpDepthwiseConv2D] != 13 {
		t.Fatalf("depthwise count = %d, want 13", s.OpCounts[OpDepthwiseConv2D])
	}
	if s.OpCounts[OpConv2D] != 14 { // stem + 13 pointwise
		t.Fatalf("conv count = %d, want 14", s.OpCounts[OpConv2D])
	}
	if s.OpCounts[OpInput] != 0 {
		t.Fatal("inputs must not be counted")
	}
}
