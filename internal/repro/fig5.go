package repro

import (
	"context"
	"fmt"
	"io"

	"repro/internal/tuner"
)

// Fig5Row holds one MobileNet-v1 task's results across the three methods:
// the number of sampled configurations (Fig. 5a) and the best GFLOPS with
// its ratio to AutoTVM in percent (Fig. 5b).
type Fig5Row struct {
	Task     string
	Configs  [3]float64 // mean sampled configurations per method
	GFLOPS   [3]float64 // mean best GFLOPS per method
	RatioPct [3]float64 // 100 * GFLOPS / GFLOPS[AutoTVM]
}

// Fig5Result is the full figure: 19 task rows plus the AVG row.
type Fig5Result struct {
	Rows []Fig5Row
	Avg  Fig5Row
}

// Fig5 regenerates the per-task comparison of the paper's Fig. 5 over all
// 19 MobileNet-v1 conv/depthwise tasks with early stopping enabled.
func Fig5(ctx context.Context, cfg Config) (*Fig5Result, error) {
	tasks, err := mobilenetTasks()
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{}
	for ti, task := range tasks {
		row := Fig5Row{Task: fmt.Sprintf("T%d", ti+1)}
		for mi := range Methods {
			var configs, gflops []float64
			for trial := 0; trial < cfg.Trials; trial++ {
				cfg.progress("fig5 T%d %s trial %d/%d", ti+1, Methods[mi], trial+1, cfg.Trials)
				b := newBackend(cfg.trialSeed(trial) + int64(mi) + int64(ti)*97)
				opts := tuner.Options{
					Budget:    cfg.Budget,
					EarlyStop: cfg.EarlyStop,
					PlanSize:  cfg.PlanSize,
					Seed:      cfg.trialSeed(trial)*31 + int64(mi) + int64(ti)*389,
				}
				r, err := tuneTrial(ctx, NewMethodTuner(mi), task, b, opts)
				if err != nil {
					return nil, err
				}
				configs = append(configs, float64(r.Measurements))
				if r.Found {
					gflops = append(gflops, r.Best.GFLOPS)
				}
			}
			row.Configs[mi] = meanOf(configs)
			row.GFLOPS[mi] = meanOf(gflops)
		}
		for mi := range Methods {
			if row.GFLOPS[0] > 0 {
				row.RatioPct[mi] = 100 * row.GFLOPS[mi] / row.GFLOPS[0]
			}
		}
		res.Rows = append(res.Rows, row)
	}

	avg := Fig5Row{Task: "AVG"}
	for mi := range Methods {
		var cs, rs []float64
		for _, row := range res.Rows {
			cs = append(cs, row.Configs[mi])
			rs = append(rs, row.RatioPct[mi])
		}
		avg.Configs[mi] = meanOf(cs)
		avg.RatioPct[mi] = meanOf(rs)
	}
	res.Avg = avg
	return res, nil
}

// Print renders both panels as text tables.
func (r *Fig5Result) Print(w io.Writer) {
	fprintf(w, "Fig.5(a) number of sampled configurations\n")
	fprintf(w, "%-5s", "task")
	for _, m := range Methods {
		fprintf(w, " %10s", m)
	}
	fprintf(w, "\n")
	for _, row := range append(append([]Fig5Row{}, r.Rows...), r.Avg) {
		fprintf(w, "%-5s", row.Task)
		for mi := range Methods {
			fprintf(w, " %10.0f", row.Configs[mi])
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\nFig.5(b) GFLOPS relative to AutoTVM (%%)\n")
	fprintf(w, "%-5s", "task")
	for _, m := range Methods {
		fprintf(w, " %10s", m)
	}
	fprintf(w, "\n")
	for _, row := range append(append([]Fig5Row{}, r.Rows...), r.Avg) {
		fprintf(w, "%-5s", row.Task)
		for mi := range Methods {
			fprintf(w, " %10.2f", row.RatioPct[mi])
		}
		fprintf(w, "\n")
	}
}

// ImprovementSummary returns the average GFLOPS improvement of BTED and
// BTED+BAO over AutoTVM in percent (the paper reports up-to values of
// 36.74% and 47.94%, averages lower).
func (r *Fig5Result) ImprovementSummary() (btedPct, baoPct float64) {
	return r.Avg.RatioPct[1] - 100, r.Avg.RatioPct[2] - 100
}
