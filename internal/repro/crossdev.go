package repro

import (
	"context"
	"fmt"
	"io"

	"repro/internal/backend"
	"repro/internal/hwsim"
	"repro/internal/tuner"
)

// CrossDeviceResult is the extension study motivated by the paper's
// discussion ("more and more hardware platforms will be developed and
// used"): configurations tuned for one device are evaluated on every
// other device. Entry [i][j] is the GFLOPS achieved on device j by the
// configuration tuned on device i, as a percentage of the configuration
// tuned on device j itself (diagonal = 100).
type CrossDeviceResult struct {
	Devices  []string
	TaskName string
	Matrix   [][]float64
}

// CrossDevice tunes one representative MobileNet-v1 task per device with
// BTED+BAO and cross-evaluates the winners, quantifying how device-specific
// good deployment configurations are.
func CrossDevice(ctx context.Context, cfg Config, deviceNames []string) (*CrossDeviceResult, error) {
	if len(deviceNames) == 0 {
		deviceNames = []string{"gtx1080ti", "v100", "gtx1060", "jetsontx2"}
	}
	devices := make([]hwsim.Device, len(deviceNames))
	for i, n := range deviceNames {
		d, ok := hwsim.DeviceByName(n)
		if !ok {
			return nil, fmt.Errorf("repro: unknown device %q", n)
		}
		devices[i] = d
	}
	tasks, err := mobilenetTasks()
	if err != nil {
		return nil, err
	}
	task := tasks[4] // a mid-network pointwise conv: sensitive to balance

	// Tune per device. Any tuning failure — including an all-invalid run —
	// aborts: every later matrix entry needs a winner per device.
	best := make([]tuner.Result, len(devices))
	for i, d := range devices {
		cfg.progress("crossdev tuning on %s", d.Name)
		b := backend.Wrap(deviceNames[i], hwsim.NewSimulator(d, cfg.Seed+int64(i)))
		r, err := tuner.NewBTEDBAO().Tune(ctx, task, b, tuner.Options{
			Budget:    cfg.Budget,
			EarlyStop: cfg.EarlyStop,
			PlanSize:  cfg.PlanSize,
			Seed:      cfg.Seed*7 + int64(i),
		})
		if err != nil {
			return nil, fmt.Errorf("repro: tuning on %s: %w", d.Name, err)
		}
		best[i] = r
	}

	// Cross-evaluate with the noiseless estimator (we compare models, not
	// measurement luck).
	res := &CrossDeviceResult{TaskName: task.Name, Matrix: make([][]float64, len(devices))}
	for _, d := range devices {
		res.Devices = append(res.Devices, d.Name)
	}
	native := make([]float64, len(devices))
	for j, d := range devices {
		est := hwsim.Estimator{Dev: d}
		e := est.Estimate(task.Workload, best[j].Best.Config)
		if !e.Valid {
			return nil, fmt.Errorf("repro: native config invalid on %s", d.Name)
		}
		native[j] = e.GFLOPS
	}
	for i := range devices {
		row := make([]float64, len(devices))
		for j, d := range devices {
			est := hwsim.Estimator{Dev: d}
			e := est.Estimate(task.Workload, best[i].Best.Config)
			if e.Valid && native[j] > 0 {
				row[j] = 100 * e.GFLOPS / native[j]
			} // else 0: the foreign config does not even launch here
		}
		res.Matrix[i] = row
	}
	return res, nil
}

// Print renders the cross-evaluation matrix.
func (r *CrossDeviceResult) Print(w io.Writer) {
	fprintf(w, "Cross-device study on %s (rows: tuned on; cols: run on; %% of natively-tuned)\n", r.TaskName)
	fprintf(w, "%-22s", "")
	for _, d := range r.Devices {
		fprintf(w, " %18s", d)
	}
	fprintf(w, "\n")
	for i, d := range r.Devices {
		fprintf(w, "%-22s", d)
		for j := range r.Devices {
			fprintf(w, " %18.1f", r.Matrix[i][j])
		}
		fprintf(w, "\n")
		_ = i
		_ = d
	}
}

// MeanOffDiagonal returns the average cross-device retention percentage
// (excluding the diagonal); low values justify per-device re-tuning.
func (r *CrossDeviceResult) MeanOffDiagonal() float64 {
	var xs []float64
	for i := range r.Matrix {
		for j := range r.Matrix[i] {
			if i != j {
				xs = append(xs, r.Matrix[i][j])
			}
		}
	}
	return meanOf(xs)
}
