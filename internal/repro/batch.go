package repro

import (
	"context"
	"io"

	"repro/internal/hwsim"
	"repro/internal/space"
	"repro/internal/tensor"
	"repro/internal/tuner"
)

// BatchRow is one (batch size) arm of the batch-size study.
type BatchRow struct {
	N            int
	GFLOPS       float64 // best tuned throughput at this batch size
	ReusedGFLOPS float64 // throughput of the N=1 winner re-applied at this N
	RetainPct    float64 // 100 * Reused / tuned
}

// BatchResult is the extension study: tune a convolution at batch size 1,
// then at larger batch sizes, and also re-apply the N=1 winner at each
// larger size. Low retention means schedules are batch-size-specific —
// the paper's "newly proposed models enlarge the configuration space"
// trend in miniature.
type BatchResult struct {
	Workload string
	Rows     []BatchRow
}

// Batch runs the study on the simulated GTX 1080 Ti.
func Batch(ctx context.Context, cfg Config) (*BatchResult, error) {
	base := tensor.Conv2D(1, 64, 28, 28, 128, 3, 1, 1)
	res := &BatchResult{Workload: base.Key()}

	// Every row needs a deployable winner, so tuning errors — including
	// tuner.ErrNoValidConfig — propagate unconditionally here.
	tune := func(w tensor.Workload, seed int64) (tuner.Result, *tuner.Task, error) {
		task, err := tuner.NewTask("batch", w)
		if err != nil {
			return tuner.Result{}, nil, err
		}
		b := newBackend(seed)
		r, err := tuner.NewBTEDBAO().Tune(ctx, task, b, tuner.Options{
			Budget:    cfg.Budget,
			EarlyStop: cfg.EarlyStop,
			PlanSize:  cfg.PlanSize,
			Seed:      seed * 31,
		})
		if err != nil {
			return tuner.Result{}, nil, err
		}
		return r, task, nil
	}

	oneRes, _, err := tune(base, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, BatchRow{N: 1, GFLOPS: oneRes.Best.GFLOPS, ReusedGFLOPS: oneRes.Best.GFLOPS, RetainPct: 100})

	est := hwsim.Estimator{Dev: hwsim.GTX1080Ti()}
	for i, n := range []int{4, 8} {
		cfg.progress("batch study N=%d", n)
		w := base
		w.N = n
		r, task, err := tune(w, cfg.Seed+int64(i+1))
		if err != nil {
			return nil, err
		}
		row := BatchRow{N: n, GFLOPS: r.Best.GFLOPS}
		// Re-apply the N=1 winner. The knob structure matches only when
		// option counts coincide; map via per-knob clamping of indices.
		reused := remapConfig(oneRes.Best.Config, task)
		if e := est.Estimate(w, reused); e.Valid {
			row.ReusedGFLOPS = e.GFLOPS
			if row.GFLOPS > 0 {
				row.RetainPct = 100 * e.GFLOPS / row.GFLOPS
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// remapConfig carries a config into another task's space by clamping each
// knob index: spaces of the same operator share knob structure, only the
// option counts differ when extents differ.
func remapConfig(c space.Config, task *tuner.Task) space.Config {
	idx := make([]int, task.Space.NumKnobs())
	for i := range idx {
		v := 0
		if i < len(c.Index) {
			v = c.Index[i]
		}
		if max := task.Space.Knob(i).Len() - 1; v > max {
			v = max
		}
		idx[i] = v
	}
	out, err := task.Space.FromIndices(idx)
	if err != nil {
		return task.Space.FromFlat(0)
	}
	return out
}

// Print renders the study.
func (r *BatchResult) Print(w io.Writer) {
	fprintf(w, "Batch-size study on %s\n", r.Workload)
	fprintf(w, "%4s %12s %14s %10s\n", "N", "tuned GFLOPS", "reused(N=1)", "retain%")
	for _, row := range r.Rows {
		fprintf(w, "%4d %12.1f %14.1f %10.1f\n", row.N, row.GFLOPS, row.ReusedGFLOPS, row.RetainPct)
	}
}
