package repro

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/snap"
)

// TestTable1CheckpointResume runs a checkpointed Table I study three ways —
// uninterrupted, resumed-with-everything-complete (every trial skipped via
// its result frame), and resumed mid-trial (one result frame stripped so
// that trial restores from its last scheduler checkpoint) — and demands
// identical numbers from all of them.
func TestTable1CheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("tunes a whole model x 3 methods, repeatedly")
	}
	cfg := tinyCfg()
	cfg.Budget = 24
	cfg.PlanSize = 8
	cfg.EarlyStop = -1
	cfg.CheckpointEvery = 8
	models := []string{"squeezenet-v1.1"}

	ref, err := Table1(context.Background(), cfg, models)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%+v", ref)

	dir := t.TempDir()
	cfg.Checkpoint = filepath.Join(dir, "study")
	checkpointed, err := Table1(context.Background(), cfg, models)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%+v", checkpointed); got != want {
		t.Fatalf("checkpointing changed the results:\nwant %s\ngot  %s", want, got)
	}
	files, err := filepath.Glob(cfg.Checkpoint + ".table1.*")
	if err != nil || len(files) != len(Methods)*cfg.Trials {
		t.Fatalf("trial files = %v (err %v), want %d", files, err, len(Methods)*cfg.Trials)
	}

	// Every trial carries a result frame, so a resume reuses the stored
	// numbers without tuning anything.
	cfg.Resume = true
	var lines []string
	cfg.Progress = func(s string) { lines = append(lines, s) }
	skipped, err := Table1(context.Background(), cfg, models)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%+v", skipped); got != want {
		t.Fatalf("resume from complete study diverged:\nwant %s\ngot  %s", want, got)
	}
	var skips int
	for _, l := range lines {
		if strings.Contains(l, "skipping") {
			skips++
		}
	}
	if skips != len(Methods)*cfg.Trials {
		t.Fatalf("skipped %d trials, want %d (progress: %q)", skips, len(Methods)*cfg.Trials, lines)
	}

	// Strip one trial's result frame, keeping only its last scheduler
	// checkpoint — exactly what an interrupt mid-trial leaves behind. The
	// resumed study must restore that trial and land on the same numbers.
	cfg.Progress = nil
	path := cfg.trialCheckpointPath("table1", models[0], Methods[2], 0)
	frames, err := snap.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fr, ok := snap.Last(frames, trialCheckpointKind)
	if !ok {
		t.Fatalf("%s holds no checkpoint frame", path)
	}
	cp := &sched.Checkpoint{}
	if err := fr.Unmarshal(cp); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Append(f, trialCheckpointKind, cp); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	resumed, err := Table1(context.Background(), cfg, models)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%+v", resumed); got != want {
		t.Fatalf("mid-trial resume diverged:\nwant %s\ngot  %s", want, got)
	}
	// The restored trial must have stamped a fresh result frame.
	frames, err = snap.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Last(frames, trialResultKind); !ok {
		t.Fatalf("%s missing result frame after resume", path)
	}
}

func TestConfigCheckpointNaming(t *testing.T) {
	c := Config{Checkpoint: "/tmp/x", Budget: 64}
	got := c.trialCheckpointPath("table1", "mobilenet-v1", "BTED+BAO", 3)
	if got != "/tmp/x.table1.mobilenet-v1.bted-bao.trial3.snap" {
		t.Fatalf("path = %q", got)
	}
	if c.checkpointStride() != 16 {
		t.Fatalf("stride = %d", c.checkpointStride())
	}
	c.CheckpointEvery = 5
	if c.checkpointStride() != 5 {
		t.Fatalf("override stride = %d", c.checkpointStride())
	}
}
