package repro

import (
	"context"
	"io"

	"repro/internal/tuner"
)

// BaselineRow is one tuner's aggregate over the baseline-comparison tasks.
type BaselineRow struct {
	Tuner   string
	GFLOPS  float64 // mean best TFLOPS-scaled GFLOPS across tasks/trials
	RelPct  float64 // relative to the random baseline
	Configs float64 // mean sampled configurations
}

// BaselinesResult is the extension study comparing every implemented search
// strategy (the paper's three arms plus random, grid, GA and the
// CHAMELEON-style adaptive sampler) on a MobileNet-v1 task subset.
type BaselinesResult struct {
	Rows []BaselineRow
}

// Baselines runs the all-tuners comparison.
func Baselines(ctx context.Context, cfg Config) (*BaselinesResult, error) {
	tasks, err := ablationTasks(3)
	if err != nil {
		return nil, err
	}
	arms := []struct {
		name string
		tn   tuner.Tuner
	}{
		{"random", tuner.RandomTuner{}},
		{"grid", tuner.GridTuner{}},
		{"ga", tuner.GATuner{}},
		{"chameleon", tuner.NewChameleon()},
		{"autotvm", tuner.NewAutoTVM()},
		{"bted", tuner.NewBTED()},
		{"bted+bao", tuner.NewBTEDBAO()},
	}
	res := &BaselinesResult{}
	for i, arm := range arms {
		cfg.progress("baselines %s", arm.name)
		g, c, err := runAblationArm(ctx, cfg, tasks, arm.tn, i)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, BaselineRow{Tuner: arm.name, GFLOPS: g, Configs: c})
	}
	base := res.Rows[0].GFLOPS
	for i := range res.Rows {
		if base > 0 {
			res.Rows[i].RelPct = 100 * res.Rows[i].GFLOPS / base
		}
	}
	return res, nil
}

// Print renders the comparison table.
func (r *BaselinesResult) Print(w io.Writer) {
	fprintf(w, "Baseline comparison (MobileNet-v1 task subset)\n")
	fprintf(w, "%-12s %12s %14s %10s\n", "tuner", "TFLOPS(avg)", "vs random(%)", "#configs")
	for _, row := range r.Rows {
		fprintf(w, "%-12s %12.3f %14.2f %10.0f\n", row.Tuner, row.GFLOPS, row.RelPct, row.Configs)
	}
}
