package repro

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
)

// tinyCfg keeps repro tests fast: single trial, small budgets.
func tinyCfg() Config {
	return Config{Trials: 1, Budget: 48, EarlyStop: -1, PlanSize: 12, Runs: 60, Seed: 7}
}

func TestMethodsAndTuners(t *testing.T) {
	if len(Methods) != 3 {
		t.Fatal("paper has three experimental arms")
	}
	names := []string{"autotvm", "bted", "bted+bao"}
	for i, want := range names {
		if got := NewMethodTuner(i).Name(); got != want {
			t.Fatalf("method %d = %q, want %q", i, got, want)
		}
	}
}

func TestConfigsPresets(t *testing.T) {
	p := Paper()
	if p.Trials != 10 || p.Budget != 1024 || p.EarlyStop != 400 || p.PlanSize != 64 || p.Runs != 600 {
		t.Fatalf("paper config wrong: %+v", p)
	}
	q := Quick()
	if q.Trials >= p.Trials || q.Budget >= p.Budget {
		t.Fatal("quick config must be smaller than paper config")
	}
}

func TestMobilenetTasks(t *testing.T) {
	tasks, err := mobilenetTasks()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 19 {
		t.Fatalf("tasks = %d, want 19", len(tasks))
	}
}

func TestFig4Tiny(t *testing.T) {
	cfg := tinyCfg()
	var msgs []string
	cfg.Progress = func(s string) { msgs = append(msgs, s) }
	res, err := Fig4(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("panels = %d, want 2", len(res))
	}
	if len(msgs) == 0 {
		t.Fatal("progress not reported")
	}
	for _, panel := range res {
		if len(panel.Series) != 3 {
			t.Fatalf("series = %d", len(panel.Series))
		}
		for _, s := range panel.Series {
			if len(s.Trace) != cfg.Budget {
				t.Fatalf("trace len %d, want %d", len(s.Trace), cfg.Budget)
			}
			for i := 1; i < len(s.Trace); i++ {
				if s.Trace[i] < s.Trace[i-1] {
					t.Fatal("averaged best-so-far trace must be non-decreasing")
				}
			}
		}
		final := panel.FinalGFLOPS()
		if len(final) != 3 {
			t.Fatalf("final map = %v", final)
		}
		var buf bytes.Buffer
		panel.Print(&buf, 16)
		if !strings.Contains(buf.String(), panel.Task) {
			t.Fatal("print missing task name")
		}
	}
}

func TestPadTrace(t *testing.T) {
	got := padTrace([]float64{1, 3}, 4)
	want := []float64{1, 3, 3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("padTrace = %v", got)
		}
	}
	if got := padTrace(nil, 2); got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty padTrace = %v", got)
	}
	if got := padTrace([]float64{1, 2, 3}, 2); len(got) != 2 || got[1] != 2 {
		t.Fatalf("truncating padTrace = %v", got)
	}
}

func TestFig4Check(t *testing.T) {
	r := Fig4Result{Task: "x", Series: []Fig4Series{
		{Method: "AutoTVM", Trace: []float64{100}},
		{Method: "BTED", Trace: []float64{110}},
		{Method: "BTED+BAO", Trace: []float64{120}},
	}}
	if err := Fig4Check(r, 0.05); err != nil {
		t.Fatalf("winning methods should pass: %v", err)
	}
	r.Series[2].Trace = []float64{50}
	if err := Fig4Check(r, 0.05); err == nil {
		t.Fatal("losing method should fail the check")
	}
}

func TestFig5TinySubsetViaRows(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 19 tasks x 3 methods")
	}
	cfg := tinyCfg()
	cfg.Budget = 30
	cfg.PlanSize = 8
	res, err := Fig5(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 19 {
		t.Fatalf("rows = %d, want 19", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.GFLOPS[0] != 0 && math.Abs(row.RatioPct[0]-100) > 1e-9 {
			t.Fatalf("AutoTVM ratio must be 100, got %v", row.RatioPct[0])
		}
		for mi := range Methods {
			if row.Configs[mi] <= 0 || row.Configs[mi] > float64(cfg.Budget) {
				t.Fatalf("configs out of range: %v", row.Configs[mi])
			}
		}
	}
	if res.Avg.Task != "AVG" {
		t.Fatal("missing AVG row")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "Fig.5(a)") || !strings.Contains(out, "Fig.5(b)") || !strings.Contains(out, "AVG") {
		t.Fatal("print missing sections")
	}
	b, bao := res.ImprovementSummary()
	_ = b
	_ = bao // values are noisy at tiny budgets; presence is the contract
}

func TestTable1SingleSmallModel(t *testing.T) {
	if testing.Short() {
		t.Skip("tunes a whole model x 3 methods")
	}
	cfg := tinyCfg()
	cfg.Budget = 24
	cfg.PlanSize = 8
	cfg.EarlyStop = -1
	res, err := Table1(context.Background(), cfg, []string{"squeezenet-v1.1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	for mi := range Methods {
		if row.LatencyMS[mi] <= 0 || row.Variance[mi] <= 0 {
			t.Fatalf("method %s latency %v var %v", Methods[mi], row.LatencyMS[mi], row.Variance[mi])
		}
	}
	if row.DeltaLatPct[0] != 0 || row.DeltaVarPct[0] != 0 {
		t.Fatal("AutoTVM deltas must be zero")
	}
	if res.Avg.Model != "Average" {
		t.Fatal("missing Average row")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "squeezenet-v1.1") {
		t.Fatal("print missing model")
	}
	lat, variance := res.Headline()
	if lat > 0 || variance > 0 {
		t.Fatalf("headline deltas should be <= 0: %v %v", lat, variance)
	}
}

func TestTable1UnknownModel(t *testing.T) {
	cfg := tinyCfg()
	if _, err := Table1(context.Background(), cfg, []string{"nope"}); err == nil {
		t.Fatal("unknown model should error")
	}
}

func TestAblationTasksSubset(t *testing.T) {
	tasks, err := ablationTasks(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 3 {
		t.Fatalf("subset = %d", len(tasks))
	}
	seen := make(map[string]bool)
	for _, tk := range tasks {
		if seen[tk.Name] {
			t.Fatal("duplicate ablation task")
		}
		seen[tk.Name] = true
	}
}

func TestAblationCeilTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs tuning")
	}
	cfg := tinyCfg()
	cfg.Budget = 24
	cfg.PlanSize = 8
	res, err := AblationCeil(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].RelPct != 100 {
		t.Fatalf("default row rel = %v", res.Rows[0].RelPct)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "literal-ceil") {
		t.Fatal("print missing setting")
	}
}

func TestMeanOf(t *testing.T) {
	if meanOf(nil) != 0 {
		t.Fatal("empty mean")
	}
	if meanOf([]float64{2, 4}) != 3 {
		t.Fatal("mean wrong")
	}
}

func TestFig4SamplesHook(t *testing.T) {
	tasks, err := mobilenetTasks()
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyCfg()
	cfg.Budget = 20
	cfg.PlanSize = 8
	samples, err := fig4SamplesFrom(context.Background(), tasks[0], 0, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 || len(samples) > 20 {
		t.Fatalf("samples = %d", len(samples))
	}
}
