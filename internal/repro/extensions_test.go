package repro

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
)

func TestBaselinesTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 7 tuners")
	}
	cfg := tinyCfg()
	cfg.Budget = 24
	cfg.PlanSize = 8
	res, err := Baselines(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(res.Rows))
	}
	if res.Rows[0].Tuner != "random" || math.Abs(res.Rows[0].RelPct-100) > 1e-9 {
		t.Fatalf("first row must be the random anchor: %+v", res.Rows[0])
	}
	names := map[string]bool{}
	for _, row := range res.Rows {
		if names[row.Tuner] {
			t.Fatalf("duplicate tuner %s", row.Tuner)
		}
		names[row.Tuner] = true
		if row.GFLOPS <= 0 {
			t.Fatalf("%s found nothing", row.Tuner)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "chameleon") || !strings.Contains(buf.String(), "bted+bao") {
		t.Fatal("print missing tuners")
	}
}

func TestCrossDeviceTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("tunes on multiple devices")
	}
	cfg := tinyCfg()
	cfg.Budget = 32
	cfg.PlanSize = 8
	res, err := CrossDevice(context.Background(), cfg, []string{"gtx1080ti", "jetsontx2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Devices) != 2 || len(res.Matrix) != 2 {
		t.Fatalf("matrix shape wrong: %+v", res)
	}
	for i := range res.Matrix {
		if res.Matrix[i][i] != 100 {
			t.Fatalf("diagonal [%d][%d] = %v, want 100", i, i, res.Matrix[i][i])
		}
		for j := range res.Matrix[i] {
			if res.Matrix[i][j] < 0 {
				t.Fatalf("negative retention at [%d][%d]", i, j)
			}
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Jetson") {
		t.Fatal("print missing device names")
	}
	if m := res.MeanOffDiagonal(); m < 0 {
		t.Fatalf("mean off-diagonal %v", m)
	}
}

func TestCrossDeviceUnknownDevice(t *testing.T) {
	cfg := tinyCfg()
	if _, err := CrossDevice(context.Background(), cfg, []string{"tpu-v9"}); err == nil {
		t.Fatal("unknown device should error")
	}
}
