package repro

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/tuner"
)

// Table1Row is one model row of the paper's Table I: end-to-end latency
// (ms) and run-to-run variance per method, with improvement deltas against
// AutoTVM in percent.
type Table1Row struct {
	Model       string
	LatencyMS   [3]float64 // AutoTVM, BTED, BTED+BAO
	Variance    [3]float64
	DeltaLatPct [3]float64 // [0] is always 0
	DeltaVarPct [3]float64
}

// Table1Result is the full table plus the Average row.
type Table1Result struct {
	Rows []Table1Row
	Avg  Table1Row
}

// Table1 regenerates the end-to-end comparison of Table I over the given
// models (nil means all five paper models): every tunable task of each
// model is tuned by each method, the best configurations are deployed
// together, and the latency statistics over cfg.Runs simulated inferences
// are averaged across trials.
func Table1(ctx context.Context, cfg Config, models []string) (*Table1Result, error) {
	if len(models) == 0 {
		models = graph.ModelNames
	}
	res := &Table1Result{}
	for modelIdx, model := range models {
		row := Table1Row{Model: model}
		for mi := range Methods {
			var lats, vars []float64
			for trial := 0; trial < cfg.Trials; trial++ {
				cfg.progress("table1 %s %s trial %d/%d", model, Methods[mi], trial+1, cfg.Trials)
				b := newBackend(cfg.trialSeed(trial) + int64(mi) + int64(modelIdx)*31)
				popts := core.PipelineOptions{
					Tuning: tuner.Options{
						Budget:    cfg.Budget,
						EarlyStop: cfg.EarlyStop,
						PlanSize:  cfg.PlanSize,
						Seed:      cfg.trialSeed(trial)*17 + int64(mi) + int64(modelIdx)*1543,
					},
					Extract:         graph.AllOps,
					UseTransfer:     true,
					Runs:            cfg.Runs,
					TaskConcurrency: cfg.TaskConcurrency,
					BudgetPolicy:    cfg.BudgetPolicy,
				}
				lat, v, err := runTrialPipeline(ctx, cfg, "table1", model, mi, trial, b, popts)
				if err != nil {
					return nil, err
				}
				lats = append(lats, lat)
				vars = append(vars, v)
			}
			row.LatencyMS[mi] = meanOf(lats)
			row.Variance[mi] = meanOf(vars)
		}
		for mi := 1; mi < 3; mi++ {
			row.DeltaLatPct[mi] = stats.DeltaPercent(row.LatencyMS[0], row.LatencyMS[mi])
			row.DeltaVarPct[mi] = stats.DeltaPercent(row.Variance[0], row.Variance[mi])
		}
		res.Rows = append(res.Rows, row)
	}

	avg := Table1Row{Model: "Average"}
	for mi := range Methods {
		var ls, vs []float64
		for _, row := range res.Rows {
			ls = append(ls, row.LatencyMS[mi])
			vs = append(vs, row.Variance[mi])
		}
		avg.LatencyMS[mi] = meanOf(ls)
		avg.Variance[mi] = meanOf(vs)
	}
	for mi := 1; mi < 3; mi++ {
		avg.DeltaLatPct[mi] = stats.DeltaPercent(avg.LatencyMS[0], avg.LatencyMS[mi])
		avg.DeltaVarPct[mi] = stats.DeltaPercent(avg.Variance[0], avg.Variance[mi])
	}
	res.Avg = avg
	return res, nil
}

// Print renders the table in the paper's column layout.
func (r *Table1Result) Print(w io.Writer) {
	fprintf(w, "Table I: end-to-end model inference latency and variance\n")
	fprintf(w, "%-16s | %12s %12s | %12s %8s %12s %8s | %12s %8s %12s %8s\n",
		"Model", "AutoTVM lat", "variance",
		"BTED lat", "dLat%", "variance", "dVar%",
		"B+BAO lat", "dLat%", "variance", "dVar%")
	rows := append(append([]Table1Row{}, r.Rows...), r.Avg)
	for _, row := range rows {
		fprintf(w, "%-16s | %12.4f %12.4g | %12.4f %8.2f %12.4g %8.2f | %12.4f %8.2f %12.4g %8.2f\n",
			row.Model,
			row.LatencyMS[0], row.Variance[0],
			row.LatencyMS[1], row.DeltaLatPct[1], row.Variance[1], row.DeltaVarPct[1],
			row.LatencyMS[2], row.DeltaLatPct[2], row.Variance[2], row.DeltaVarPct[2])
	}
}

// Headline returns the best (most negative) latency and variance deltas of
// the BTED+BAO column — the numbers the paper's abstract quotes
// (-28.08% latency, -92.74% variance on MobileNet-v1).
func (r *Table1Result) Headline() (bestLatDeltaPct, bestVarDeltaPct float64) {
	bestLat, bestVar := 0.0, 0.0
	for _, row := range r.Rows {
		if row.DeltaLatPct[2] < bestLat {
			bestLat = row.DeltaLatPct[2]
		}
		if row.DeltaVarPct[2] < bestVar {
			bestVar = row.DeltaVarPct[2]
		}
	}
	return bestLat, bestVar
}
