package repro

import (
	"context"
	"fmt"
	"io"

	"repro/internal/active"
	"repro/internal/plot"
	"repro/internal/tuner"
)

// Fig4Series is one convergence curve: best-so-far GFLOPS after each
// sampled configuration, averaged over trials.
type Fig4Series struct {
	Method string
	Trace  []float64 // length == Config.Budget
}

// Fig4Result is one panel of Fig. 4 (one MobileNet-v1 layer).
type Fig4Result struct {
	Task   string
	Series []Fig4Series
}

// Fig4 regenerates the convergence comparison of the paper's Fig. 4: the
// first two MobileNet-v1 layers tuned by the three methods with no early
// stopping, plotting best-so-far GFLOPS against the number of sampled
// configurations.
func Fig4(ctx context.Context, cfg Config) ([]Fig4Result, error) {
	tasks, err := mobilenetTasks()
	if err != nil {
		return nil, err
	}
	if len(tasks) < 2 {
		return nil, fmt.Errorf("repro: expected at least 2 MobileNet tasks, got %d", len(tasks))
	}
	var out []Fig4Result
	for _, task := range tasks[:2] {
		res := Fig4Result{Task: task.Name}
		for mi := range Methods {
			acc := make([]float64, cfg.Budget)
			for trial := 0; trial < cfg.Trials; trial++ {
				cfg.progress("fig4 %s %s trial %d/%d", task.Name, Methods[mi], trial+1, cfg.Trials)
				b := newBackend(cfg.trialSeed(trial) + int64(mi))
				opts := tuner.Options{
					Budget:    cfg.Budget,
					EarlyStop: -1, // Fig. 4 plots the full budget
					PlanSize:  cfg.PlanSize,
					Seed:      cfg.trialSeed(trial)*31 + int64(mi),
				}
				r, err := tuneTrial(ctx, NewMethodTuner(mi), task, b, opts)
				if err != nil {
					return nil, err
				}
				trace := padTrace(r.BestTrace(), cfg.Budget)
				for i := range acc {
					acc[i] += trace[i]
				}
			}
			for i := range acc {
				acc[i] /= float64(cfg.Trials)
			}
			res.Series = append(res.Series, Fig4Series{Method: Methods[mi], Trace: acc})
		}
		out = append(out, res)
	}
	return out, nil
}

// padTrace extends a best-so-far trace to length n with its final value
// (runs can end early only when the space is exhausted).
func padTrace(trace []float64, n int) []float64 {
	out := make([]float64, n)
	last := 0.0
	for i := 0; i < n; i++ {
		if i < len(trace) {
			last = trace[i]
		}
		out[i] = last
	}
	return out
}

// FinalGFLOPS returns each method's end-of-budget value.
func (r Fig4Result) FinalGFLOPS() map[string]float64 {
	out := make(map[string]float64, len(r.Series))
	for _, s := range r.Series {
		if len(s.Trace) > 0 {
			out[s.Method] = s.Trace[len(s.Trace)-1]
		}
	}
	return out
}

// Print renders the panel as a sampled text series (every stride-th point),
// one row per sample count, one column per method — the data behind the
// paper's line plot.
func (r Fig4Result) Print(w io.Writer, stride int) {
	if stride <= 0 {
		stride = 64
	}
	fprintf(w, "Fig.4 convergence: %s (best-so-far GFLOPS)\n", r.Task)
	fprintf(w, "%8s", "#configs")
	for _, s := range r.Series {
		fprintf(w, " %12s", s.Method)
	}
	fprintf(w, "\n")
	n := 0
	for _, s := range r.Series {
		if len(s.Trace) > n {
			n = len(s.Trace)
		}
	}
	for i := stride - 1; i < n; i += stride {
		fprintf(w, "%8d", i+1)
		for _, s := range r.Series {
			v := 0.0
			if i < len(s.Trace) {
				v = s.Trace[i]
			}
			fprintf(w, " %12.1f", v)
		}
		fprintf(w, "\n")
	}
}

// Chart renders the panel as an ASCII line chart.
func (r Fig4Result) Chart(w io.Writer) {
	series := make([]plot.Series, len(r.Series))
	for i, s := range r.Series {
		series[i] = plot.Series{Name: s.Method, Values: s.Trace}
	}
	lc := plot.LineChart{
		Title:  fmt.Sprintf("Fig.4 %s: best-so-far GFLOPS vs #configs", r.Task),
		XLabel: fmt.Sprintf("#configs (0..%d)", len(r.Series[0].Trace)),
	}
	// Chart is a best-effort stdout report; a failed terminal write must
	// not abort the experiment whose numbers are already computed.
	_ = lc.Render(w, series)
}

// Fig4Check verifies the qualitative reproduction claim on a result: the
// advanced methods end at or above AutoTVM's final value (within tol
// fraction), as in the paper's panels.
func Fig4Check(r Fig4Result, tol float64) error {
	final := r.FinalGFLOPS()
	base := final["AutoTVM"]
	for _, m := range Methods[1:] {
		if final[m] < base*(1-tol) {
			return fmt.Errorf("repro: %s: %s final %.1f below AutoTVM %.1f beyond tolerance",
				r.Task, m, final[m], base)
		}
	}
	return nil
}

// fig4SamplesFrom is a test hook: it exposes the per-trial samples of one
// (task, method) cell so tests can assert trace construction.
func fig4SamplesFrom(ctx context.Context, task *tuner.Task, mi int, cfg Config, trial int) ([]active.Sample, error) {
	b := newBackend(cfg.trialSeed(trial) + int64(mi))
	opts := tuner.Options{Budget: cfg.Budget, EarlyStop: -1, PlanSize: cfg.PlanSize,
		Seed: cfg.trialSeed(trial)*31 + int64(mi)}
	r, err := tuneTrial(ctx, NewMethodTuner(mi), task, b, opts)
	return r.Samples, err
}
