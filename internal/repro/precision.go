package repro

import (
	"context"
	"io"

	"repro/internal/backend"
	"repro/internal/hwsim"
	"repro/internal/tensor"
	"repro/internal/tuner"
)

// PrecisionRow is one (device, precision) arm of the mixed-precision study.
type PrecisionRow struct {
	Device    string
	DType     string
	GFLOPS    float64 // best tuned throughput
	SpeedupX  float64 // tuned FP16 time / FP32 time advantage (per device)
	Workloads string
}

// PrecisionResult is the extension study: retune the same convolution in
// FP32 and FP16 on devices with native double-rate halves (V100, TX2) and
// on one with crippled halves (GTX 1080 Ti). The expected shape: FP16
// roughly doubles throughput where it is native, and *loses* on Pascal
// despite halving memory traffic — which only auto-tuning reveals, since
// the best FP16 schedule differs from the best FP32 one.
type PrecisionResult struct {
	Rows []PrecisionRow
}

// Precision runs the study.
func Precision(ctx context.Context, cfg Config) (*PrecisionResult, error) {
	base := tensor.Conv2D(1, 128, 28, 28, 128, 3, 1, 1)
	fp16 := base
	fp16.DType = tensor.Float16

	devices := []string{"gtx1080ti", "v100", "jetsontx2"}
	res := &PrecisionResult{}
	for di, devName := range devices {
		dev, ok := hwsim.DeviceByName(devName)
		if !ok {
			continue
		}
		best := map[tensor.DType]float64{}
		for wi, w := range []tensor.Workload{base, fp16} {
			cfg.progress("precision %s %s", devName, w.DType)
			task, err := tuner.NewTask("precision."+w.DType.String(), w)
			if err != nil {
				return nil, err
			}
			b := backend.Wrap(devName, hwsim.NewSimulator(dev, cfg.Seed+int64(di*10+wi)))
			r, err := tuneTrial(ctx, tuner.NewBTEDBAO(), task, b, tuner.Options{
				Budget:    cfg.Budget,
				EarlyStop: cfg.EarlyStop,
				PlanSize:  cfg.PlanSize,
				Seed:      cfg.Seed*3 + int64(di*100+wi),
			})
			if err != nil {
				return nil, err
			}
			if !r.Found {
				continue
			}
			best[w.DType] = r.Best.GFLOPS
		}
		for _, dt := range []tensor.DType{tensor.Float32, tensor.Float16} {
			row := PrecisionRow{Device: dev.Name, DType: dt.String(), GFLOPS: best[dt], Workloads: base.Key()}
			if dt == tensor.Float16 && best[tensor.Float32] > 0 {
				row.SpeedupX = best[tensor.Float16] / best[tensor.Float32]
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Print renders the study.
func (r *PrecisionResult) Print(w io.Writer) {
	fprintf(w, "Mixed-precision study (tuned conv2d 128x28x28x128)\n")
	fprintf(w, "%-22s %-9s %12s %10s\n", "device", "dtype", "GFLOPS", "fp16/fp32")
	for _, row := range r.Rows {
		if row.SpeedupX > 0 {
			fprintf(w, "%-22s %-9s %12.1f %9.2fx\n", row.Device, row.DType, row.GFLOPS, row.SpeedupX)
		} else {
			fprintf(w, "%-22s %-9s %12.1f %10s\n", row.Device, row.DType, row.GFLOPS, "-")
		}
	}
}
