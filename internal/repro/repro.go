// Package repro regenerates every table and figure of the paper's
// evaluation section on the simulated platform: Fig. 4 (convergence curves
// for the first two MobileNet-v1 layers), Fig. 5 (per-task sampled-config
// counts and GFLOPS ratios over the 19 MobileNet-v1 tasks), Table I
// (end-to-end latency and variance for the five models under AutoTVM,
// BTED, and BTED+BAO), and the ablations of the design choices called out
// in DESIGN.md.
package repro

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/backend"
	"repro/internal/graph"
	"repro/internal/hwsim"
	"repro/internal/tuner"
)

// Methods are the three experimental arms of the paper, in column order.
var Methods = []string{"AutoTVM", "BTED", "BTED+BAO"}

// NewMethodTuner builds the tuner of an experimental arm by column index.
func NewMethodTuner(i int) tuner.Tuner {
	switch i {
	case 0:
		return tuner.NewAutoTVM()
	case 1:
		return tuner.NewBTED()
	default:
		return tuner.NewBTEDBAO()
	}
}

// Config scales an experiment run. The zero value is unusable; start from
// Quick or Paper.
type Config struct {
	Trials    int   // independent repetitions averaged together (paper: 10)
	Budget    int   // measurement budget per task (paper: 1024)
	EarlyStop int   // early-stopping threshold (paper: 400; <0 disables)
	PlanSize  int   // batch/init size (paper: 64)
	Runs      int   // end-to-end latency runs (paper: 600)
	Seed      int64 // base seed; trials and tasks derive from it
	// TaskConcurrency is handed to the pipeline's graph scheduler: 1 (or 0)
	// is the classic sequential pipeline; higher values tune that many tasks
	// concurrently in deterministic rounds without changing any result.
	TaskConcurrency int
	// BudgetPolicy selects the scheduler's budget policy by name ("",
	// "uniform", or "adaptive"); see core.PipelineOptions.
	BudgetPolicy string
	// Checkpoint, when non-empty, is a file prefix: each trial of a
	// checkpointed study (currently Table1) streams its scheduler state to
	// "<prefix>.<study>.<model>.<method>.trial<k>.snap" and stamps a result
	// frame on completion, so an interrupted study can continue instead of
	// restarting (see checkpoint.go).
	Checkpoint string
	// Resume continues from the Checkpoint prefix's files: finished trials
	// are skipped (their stored results reused), in-flight trials restore
	// from their last checkpoint frame. The rest of the Config must match
	// the interrupted run's.
	Resume bool
	// CheckpointEvery spaces checkpoints by new measurements; 0 derives a
	// stride of a quarter of the per-task budget.
	CheckpointEvery int
	// Progress, when non-nil, receives coarse progress lines.
	Progress func(string)
}

// Paper returns the paper's full experimental settings. A complete Table I
// regeneration at these settings takes on the order of an hour of CPU time;
// use Quick for smoke runs and benchmarks.
func Paper() Config {
	return Config{Trials: 10, Budget: 1024, EarlyStop: 400, PlanSize: 64, Runs: 600, Seed: 2021}
}

// Quick returns scaled-down settings that preserve the qualitative shape
// (who wins, by roughly what factor) at a small fraction of the cost.
func Quick() Config {
	return Config{Trials: 2, Budget: 224, EarlyStop: 128, PlanSize: 32, Runs: 200, Seed: 2021}
}

func (c Config) progress(format string, args ...interface{}) {
	if c.Progress != nil {
		c.Progress(fmt.Sprintf(format, args...))
	}
}

// trialSeed decorrelates trials deterministically.
func (c Config) trialSeed(trial int) int64 { return c.Seed + int64(trial)*104729 }

// mobilenetTasks extracts the 19 conv/depthwise tasks of Fig. 4/5.
func mobilenetTasks() ([]*tuner.Task, error) {
	g := graph.MobileNetV1()
	gts := graph.ExtractTasks(g, graph.ConvOnly)
	out := make([]*tuner.Task, 0, len(gts))
	for _, gt := range gts {
		t, err := tuner.FromGraphTask(gt)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// newSim builds the measurement environment of one trial.
func newSim(seed int64) *hwsim.Simulator {
	return hwsim.NewSimulator(hwsim.GTX1080Ti(), seed)
}

// newBackend wraps one trial's simulator as the measurement backend of the
// reproduction device (the paper tunes on a GTX 1080 Ti).
func newBackend(seed int64) backend.Backend {
	return backend.Wrap("gtx1080ti", newSim(seed))
}

// tuneTrial runs one (task, method) tuning trial. A completed search that
// never saw a valid deployment is not an error at this level — the trial
// simply contributes no GFLOPS to its row, while its Measurements still
// count — but cancellation and every other failure propagate so study loops
// abort promptly.
func tuneTrial(ctx context.Context, tn tuner.Tuner, task *tuner.Task, b backend.Backend, opts tuner.Options) (tuner.Result, error) {
	r, err := tn.Tune(ctx, task, b, opts)
	if err != nil && !errors.Is(err, tuner.ErrNoValidConfig) {
		return r, err
	}
	return r, nil
}

// meanOf averages a slice, returning 0 for empty input.
func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// fprintf writes formatted output, deliberately dropping the write error:
// report writers target in-memory buffers and stdout, and a failed
// terminal write must not abort an experiment whose numbers are already
// computed.
func fprintf(w io.Writer, format string, args ...interface{}) {
	_, _ = fmt.Fprintf(w, format, args...)
}
