package repro

import (
	"context"
	"fmt"
	"io"

	"repro/internal/active"
	"repro/internal/linalg"
	"repro/internal/tuner"
)

// AblationRow is one setting of one ablation study: the mean best GFLOPS
// (relative to the study's default setting, in percent) and the mean number
// of sampled configurations.
type AblationRow struct {
	Setting  string
	GFLOPS   float64
	RelPct   float64 // 100 * GFLOPS / GFLOPS(default row)
	Configs  float64
	TasksRun int
}

// AblationResult is one study over a subset of MobileNet-v1 tasks.
type AblationResult struct {
	Name string
	Rows []AblationRow
}

// ablationTasks returns a representative subset of MobileNet-v1 tasks
// (first conv, an early depthwise, a mid pointwise, a late pointwise).
func ablationTasks(n int) ([]*tuner.Task, error) {
	all, err := mobilenetTasks()
	if err != nil {
		return nil, err
	}
	pick := []int{0, 1, 8, 16}
	var out []*tuner.Task
	for _, i := range pick {
		if i < len(all) {
			out = append(out, all[i])
		}
		if len(out) == n {
			break
		}
	}
	return out, nil
}

// runAblationArm evaluates one tuner variant over the task subset.
func runAblationArm(ctx context.Context, cfg Config, tasks []*tuner.Task, tn tuner.Tuner, armIdx int) (gflops, configs float64, err error) {
	var gs, cs []float64
	for ti, task := range tasks {
		for trial := 0; trial < cfg.Trials; trial++ {
			b := newBackend(cfg.trialSeed(trial) + int64(ti)*131 + int64(armIdx)*7)
			opts := tuner.Options{
				Budget:    cfg.Budget,
				EarlyStop: cfg.EarlyStop,
				PlanSize:  cfg.PlanSize,
				Seed:      cfg.trialSeed(trial)*13 + int64(ti)*431 + int64(armIdx),
			}
			r, err := tuneTrial(ctx, tn, task, b, opts)
			if err != nil {
				return 0, 0, err
			}
			cs = append(cs, float64(r.Measurements))
			if r.Found {
				gs = append(gs, r.Best.GFLOPS/1000) // TFLOPS-ish scale per task
			}
		}
	}
	return meanOf(gs), meanOf(cs), nil
}

// finishAblation normalizes rows against the first (default) row.
func finishAblation(name string, rows []AblationRow) AblationResult {
	base := rows[0].GFLOPS
	for i := range rows {
		if base > 0 {
			rows[i].RelPct = 100 * rows[i].GFLOPS / base
		}
	}
	return AblationResult{Name: name, Rows: rows}
}

// AblationGamma sweeps the number of bootstrap evaluation functions
// (paper setting Γ=2 first).
func AblationGamma(ctx context.Context, cfg Config) (AblationResult, error) {
	tasks, err := ablationTasks(3)
	if err != nil {
		return AblationResult{}, err
	}
	var rows []AblationRow
	for i, gamma := range []int{2, 1, 4, 8} {
		cfg.progress("ablation gamma=%d", gamma)
		tn := tuner.NewBTEDBAO()
		tn.BAO.Gamma = gamma
		g, c, err := runAblationArm(ctx, cfg, tasks, tn, i)
		if err != nil {
			return AblationResult{}, err
		}
		rows = append(rows, AblationRow{Setting: fmt.Sprintf("Gamma=%d", gamma), GFLOPS: g, Configs: c, TasksRun: len(tasks)})
	}
	return finishAblation("bootstrap-resamples", rows), nil
}

// AblationTau sweeps the adaptive radius growth factor (paper τ=1.5 first;
// τ→1 disables growth).
func AblationTau(ctx context.Context, cfg Config) (AblationResult, error) {
	tasks, err := ablationTasks(3)
	if err != nil {
		return AblationResult{}, err
	}
	var rows []AblationRow
	for i, tau := range []float64{1.5, 1.000001, 2.0, 3.0} {
		cfg.progress("ablation tau=%.2f", tau)
		tn := tuner.NewBTEDBAO()
		tn.BAO.Tau = tau
		g, c, err := runAblationArm(ctx, cfg, tasks, tn, i)
		if err != nil {
			return AblationResult{}, err
		}
		rows = append(rows, AblationRow{Setting: fmt.Sprintf("tau=%.2f", tau), GFLOPS: g, Configs: c, TasksRun: len(tasks)})
	}
	return finishAblation("adaptive-growth", rows), nil
}

// AblationRadius sweeps the base neighborhood radius (paper R=3 first).
func AblationRadius(ctx context.Context, cfg Config) (AblationResult, error) {
	tasks, err := ablationTasks(3)
	if err != nil {
		return AblationResult{}, err
	}
	var rows []AblationRow
	for i, r := range []float64{3, 1, 5} {
		cfg.progress("ablation R=%.0f", r)
		tn := tuner.NewBTEDBAO()
		tn.BAO.R = r
		g, c, err := runAblationArm(ctx, cfg, tasks, tn, i)
		if err != nil {
			return AblationResult{}, err
		}
		rows = append(rows, AblationRow{Setting: fmt.Sprintf("R=%.0f", r), GFLOPS: g, Configs: c, TasksRun: len(tasks)})
	}
	return finishAblation("neighborhood-radius", rows), nil
}

// AblationInit compares BTED initialization against random initialization
// with the identical BAO iterative stage (isolating BTED's contribution).
func AblationInit(ctx context.Context, cfg Config) (AblationResult, error) {
	tasks, err := ablationTasks(3)
	if err != nil {
		return AblationResult{}, err
	}
	var rows []AblationRow
	bted := tuner.NewBTEDBAO()
	g, c, err := runAblationArm(ctx, cfg, tasks, bted, 0)
	if err != nil {
		return AblationResult{}, err
	}
	rows = append(rows, AblationRow{Setting: "BTED-init", GFLOPS: g, Configs: c, TasksRun: len(tasks)})
	rnd := tuner.NewBTEDBAO()
	rnd.BTED.B = 1
	rnd.BTED.M = cfg.PlanSize // degenerate BTED == random sample
	g, c, err = runAblationArm(ctx, cfg, tasks, rnd, 1)
	if err != nil {
		return AblationResult{}, err
	}
	rows = append(rows, AblationRow{Setting: "random-init", GFLOPS: g, Configs: c, TasksRun: len(tasks)})
	return finishAblation("initialization", rows), nil
}

// AblationCeil compares the plain relative improvement of Eq. (1) against
// the paper-literal ceiling (see DESIGN.md on the suspected typo).
func AblationCeil(ctx context.Context, cfg Config) (AblationResult, error) {
	tasks, err := ablationTasks(3)
	if err != nil {
		return AblationResult{}, err
	}
	var rows []AblationRow
	plain := tuner.NewBTEDBAO()
	g, c, err := runAblationArm(ctx, cfg, tasks, plain, 0)
	if err != nil {
		return AblationResult{}, err
	}
	rows = append(rows, AblationRow{Setting: "plain-Eq1", GFLOPS: g, Configs: c, TasksRun: len(tasks)})
	ceil := tuner.NewBTEDBAO()
	ceil.BAO.LiteralCeil = true
	g, c, err = runAblationArm(ctx, cfg, tasks, ceil, 1)
	if err != nil {
		return AblationResult{}, err
	}
	rows = append(rows, AblationRow{Setting: "literal-ceil", GFLOPS: g, Configs: c, TasksRun: len(tasks)})
	return finishAblation("eq1-ceiling", rows), nil
}

// AblationScope compares the hybrid searching scope (local neighborhood
// with bootstrap-guided global fallback on stall; see DESIGN.md) against
// the strictly-local reading of Algorithm 4.
func AblationScope(ctx context.Context, cfg Config) (AblationResult, error) {
	tasks, err := ablationTasks(3)
	if err != nil {
		return AblationResult{}, err
	}
	var rows []AblationRow
	hybrid := tuner.NewBTEDBAO()
	g, c, err := runAblationArm(ctx, cfg, tasks, hybrid, 0)
	if err != nil {
		return AblationResult{}, err
	}
	rows = append(rows, AblationRow{Setting: "hybrid-scope", GFLOPS: g, Configs: c, TasksRun: len(tasks)})
	local := tuner.NewBTEDBAO()
	local.BAO.GlobalFallbackAfter = -1
	g, c, err = runAblationArm(ctx, cfg, tasks, local, 1)
	if err != nil {
		return AblationResult{}, err
	}
	rows = append(rows, AblationRow{Setting: "strictly-local", GFLOPS: g, Configs: c, TasksRun: len(tasks)})
	return finishAblation("searching-scope", rows), nil
}

// AblationEvalFunc swaps the evaluation function under BAO — gradient
// boosting (default), Gaussian process, random forest — exercising the
// paper's claim that the framework is independent of the evaluation
// function's concrete form.
func AblationEvalFunc(ctx context.Context, cfg Config) (AblationResult, error) {
	tasks, err := ablationTasks(3)
	if err != nil {
		return AblationResult{}, err
	}
	arms := []struct {
		name string
		tr   active.EvalTrainer
	}{
		{"xgboost", active.NewXGBTrainer()},
		{"gaussian-process", active.NewGPTrainer()},
		{"random-forest", active.NewRFTrainer()},
	}
	var rows []AblationRow
	for i, arm := range arms {
		cfg.progress("ablation eval=%s", arm.name)
		tn := tuner.NewBTEDBAO()
		tn.Trainer = arm.tr
		g, c, err := runAblationArm(ctx, cfg, tasks, tn, i)
		if err != nil {
			return AblationResult{}, err
		}
		rows = append(rows, AblationRow{Setting: arm.name, GFLOPS: g, Configs: c, TasksRun: len(tasks)})
	}
	return finishAblation("evaluation-function", rows), nil
}

// AblationObjective compares the AutoTVM arm's cost-model loss: squared
// error (our calibrated default) versus the pairwise rank loss AutoTVM
// ships with.
func AblationObjective(ctx context.Context, cfg Config) (AblationResult, error) {
	tasks, err := ablationTasks(3)
	if err != nil {
		return AblationResult{}, err
	}
	var rows []AblationRow
	reg := tuner.NewAutoTVM()
	g, c, err := runAblationArm(ctx, cfg, tasks, reg, 0)
	if err != nil {
		return AblationResult{}, err
	}
	rows = append(rows, AblationRow{Setting: "squared-error", GFLOPS: g, Configs: c, TasksRun: len(tasks)})
	rank := tuner.NewAutoTVM()
	rank.RankObjective = true
	g, c, err = runAblationArm(ctx, cfg, tasks, rank, 1)
	if err != nil {
		return AblationResult{}, err
	}
	rows = append(rows, AblationRow{Setting: "pairwise-rank", GFLOPS: g, Configs: c, TasksRun: len(tasks)})
	return finishAblation("cost-model-objective", rows), nil
}

// AblationKernel compares the default RBF TED kernel against the
// paper-literal raw Euclidean distance matrix.
func AblationKernel(ctx context.Context, cfg Config) (AblationResult, error) {
	tasks, err := ablationTasks(3)
	if err != nil {
		return AblationResult{}, err
	}
	var rows []AblationRow
	rbf := tuner.NewBTEDBAO()
	g, c, err := runAblationArm(ctx, cfg, tasks, rbf, 0)
	if err != nil {
		return AblationResult{}, err
	}
	rows = append(rows, AblationRow{Setting: "rbf-kernel", GFLOPS: g, Configs: c, TasksRun: len(tasks)})
	lit := tuner.NewBTEDBAO()
	lit.BTED.Kernel = linalg.DistanceKernel{}
	lit.BTED.View = active.ViewKnobIndices
	g, c, err = runAblationArm(ctx, cfg, tasks, lit, 1)
	if err != nil {
		return AblationResult{}, err
	}
	rows = append(rows, AblationRow{Setting: "euclidean-literal", GFLOPS: g, Configs: c, TasksRun: len(tasks)})
	return finishAblation("ted-kernel", rows), nil
}

// AllAblations runs every study.
func AllAblations(ctx context.Context, cfg Config) ([]AblationResult, error) {
	studies := []func(context.Context, Config) (AblationResult, error){
		AblationGamma, AblationTau, AblationRadius, AblationInit,
		AblationCeil, AblationKernel, AblationScope, AblationEvalFunc, AblationObjective,
	}
	var out []AblationResult
	for _, f := range studies {
		r, err := f(ctx, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Print renders one ablation table.
func (r AblationResult) Print(w io.Writer) {
	fprintf(w, "Ablation: %s\n", r.Name)
	fprintf(w, "%-20s %12s %10s %10s\n", "setting", "TFLOPS(avg)", "rel(%)", "#configs")
	for _, row := range r.Rows {
		fprintf(w, "%-20s %12.3f %10.2f %10.0f\n", row.Setting, row.GFLOPS, row.RelPct, row.Configs)
	}
}
