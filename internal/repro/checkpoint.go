package repro

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/snap"
)

// Checkpointing for long studies. With Config.Checkpoint set, every trial
// pipeline streams its scheduler state to a per-trial snap file named
// "<prefix>.<study>.<model>.<method>.trial<k>.snap"; a trial that finishes
// stamps a terminal result frame into the same file. Config.Resume walks
// those files before re-running anything: trials with a result frame are
// skipped outright (their stored numbers are reused), trials with only
// checkpoint frames continue from the last one, and everything else runs
// from scratch. The resuming Config must match the interrupted run's —
// mismatched inputs fail loudly when the scheduler or a tuner session
// rejects its snapshot.
const (
	trialCheckpointKind = "repro-checkpoint/v1"
	trialResultKind     = "repro-result/v1"
)

// trialResult is the terminal frame of a completed trial's checkpoint file.
type trialResult struct {
	LatencyMS float64 `json:"latency_ms"`
	Variance  float64 `json:"variance"`
}

// trialCheckpointPath names one trial's checkpoint file under the prefix.
func (c Config) trialCheckpointPath(study, model, method string, trial int) string {
	m := strings.ToLower(strings.ReplaceAll(method, "+", "-"))
	return fmt.Sprintf("%s.%s.%s.%s.trial%d.snap", c.Checkpoint, study, model, m, trial)
}

// checkpointStride spaces checkpoints by new measurements: the explicit
// override when given, otherwise about four frames per task budget so a
// paper-scale study stays resumable without drowning in frames.
func (c Config) checkpointStride() int {
	if c.CheckpointEvery > 0 {
		return c.CheckpointEvery
	}
	return c.Budget / 4
}

// runTrialPipeline runs one (study, model, method, trial) pipeline with the
// Config's checkpointing applied, returning the trial's latency statistics.
func runTrialPipeline(ctx context.Context, cfg Config, study, model string, mi, trial int, b backend.Backend, popts core.PipelineOptions) (latencyMS, variance float64, err error) {
	if cfg.Checkpoint == "" {
		dep, err := core.OptimizeModel(ctx, model, NewMethodTuner(mi), b, popts)
		if err != nil {
			return 0, 0, err
		}
		return dep.LatencyMS, dep.Variance, nil
	}

	path := cfg.trialCheckpointPath(study, model, Methods[mi], trial)
	appendMode := false
	if cfg.Resume {
		frames, rerr := snap.ReadFile(path)
		switch {
		case rerr == nil:
			if fr, ok := snap.Last(frames, trialResultKind); ok {
				var tr trialResult
				if err := fr.Unmarshal(&tr); err != nil {
					return 0, 0, fmt.Errorf("repro: decoding result in %s: %w", path, err)
				}
				cfg.progress("%s %s %s trial %d/%d: complete in checkpoint, skipping", study, model, Methods[mi], trial+1, cfg.Trials)
				return tr.LatencyMS, tr.Variance, nil
			}
			if fr, ok := snap.Last(frames, trialCheckpointKind); ok {
				cp := &sched.Checkpoint{}
				if err := fr.Unmarshal(cp); err != nil {
					return 0, 0, fmt.Errorf("repro: decoding checkpoint in %s: %w", path, err)
				}
				popts.ResumeCheckpoint = cp
				appendMode = true
				cfg.progress("%s %s %s trial %d/%d: resuming from round %d", study, model, Methods[mi], trial+1, cfg.Trials, cp.Round)
			}
		case errors.Is(rerr, os.ErrNotExist):
			// Nothing checkpointed for this trial yet; run it from scratch.
		default:
			return 0, 0, rerr
		}
	}

	// Frame appends are single writes, so an interrupt mid-study leaves at
	// worst a torn final frame that the tolerant reader drops on resume.
	// SnapFile latches periodic append failures (a checkpoint hiccup must not
	// abort the trial mid-measurement); they surface via Err after the run.
	cpFile, err := job.CreateSnapFile(path, appendMode)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		if cerr := cpFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	popts.CheckpointEvery = cfg.checkpointStride()
	popts.OnCheckpoint = cpFile.OnSchedCheckpoint(trialCheckpointKind)

	dep, derr := core.OptimizeModel(ctx, model, NewMethodTuner(mi), b, popts)
	if derr != nil {
		return 0, 0, derr
	}
	if cpErr := cpFile.Err(); cpErr != nil {
		return 0, 0, fmt.Errorf("repro: checkpointing %s: %w", path, cpErr)
	}
	if aerr := cpFile.Append(trialResultKind, trialResult{LatencyMS: dep.LatencyMS, Variance: dep.Variance}); aerr != nil {
		return 0, 0, fmt.Errorf("repro: finalizing %s: %w", path, aerr)
	}
	return dep.LatencyMS, dep.Variance, nil
}
