package xgb

import (
	"math"
	"testing"
)

// trainPreds trains with the given worker count and returns the batch
// predictions over the training rows.
func trainPreds(t *testing.T, X [][]float64, y []float64, p Params, workers int) (*Model, []float64) {
	t.Helper()
	p.Workers = workers
	m, err := Train(X, y, p)
	if err != nil {
		t.Fatalf("Train(workers=%d): %v", workers, err)
	}
	return m, m.PredictBatchParallel(X, 1)
}

// TestXGBTrainWorkerCountInvariance pins the bit-identity contract of the
// parallel training path: binning, split search and prediction updates must
// produce the identical model for every worker count, under both objectives
// and with row/column subsampling active (RNG draws stay on the calling
// goroutine regardless of workers).
func TestXGBTrainWorkerCountInvariance(t *testing.T) {
	X, y := benchData(700, 11, 17)
	for _, obj := range []Objective{ObjSquaredError, ObjPairwiseRank} {
		p := DefaultParams()
		p.NumRounds = 12
		p.MaxDepth = 5
		p.MaxBins = 24
		p.Objective = obj
		p.Subsample = 0.8
		p.ColSample = 0.7
		p.Seed = 42
		mRef, ref := trainPreds(t, X, y, p, 1)
		for _, workers := range []int{4, 8} {
			m, got := trainPreds(t, X, y, p, workers)
			if m.NumTrees() != mRef.NumTrees() {
				t.Fatalf("obj=%d workers=%d: %d trees, want %d", obj, workers, m.NumTrees(), mRef.NumTrees())
			}
			for i := range ref {
				if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
					t.Fatalf("obj=%d workers=%d: pred[%d]=%x, serial %x",
						obj, workers, i, math.Float64bits(got[i]), math.Float64bits(ref[i]))
				}
			}
		}
	}
}

// TestXGBLeafDeltaMatchesPredict pins the fast-path contract Train relies
// on when Subsample == 1: the leaf weight a row settles into during the
// build (via bin comparisons) is bit-identical to walking the finished tree
// with threshold comparisons.
func TestXGBLeafDeltaMatchesPredict(t *testing.T) {
	X, y := benchData(400, 7, 9)
	p := DefaultParams()
	p.MaxBins = 16
	b := newBinner(X, p.MaxBins, 1)
	n := len(X)
	grad := make([]float64, n)
	hess := make([]float64, n)
	for i := range grad {
		grad[i] = -y[i]
		hess[i] = 1
	}
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	cols := make([]int, len(X[0]))
	for i := range cols {
		cols[i] = i
	}
	ws := newTreeScratch(n, len(cols), p.MaxBins)
	tr := growTree(b, grad, hess, rows, cols, p, ws, 1)
	for i := range X {
		want := tr.predict(X[i])
		if math.Float64bits(ws.leaf[i]) != math.Float64bits(want) {
			t.Fatalf("row %d: leaf delta %x, predict %x", i, math.Float64bits(ws.leaf[i]), math.Float64bits(want))
		}
	}
}

// TestXGBPredictBatchWorkerCountInvariance checks that the sharded batch
// prediction matches per-row Predict bit-for-bit for every worker count.
func TestXGBPredictBatchWorkerCountInvariance(t *testing.T) {
	X, y := benchData(600, 9, 3)
	p := DefaultParams()
	p.NumRounds = 10
	m, err := Train(X, y, p)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	ref := make([]float64, len(X))
	for i, x := range X {
		ref[i] = m.Predict(x)
	}
	for _, workers := range []int{1, 4, 8} {
		got := m.PredictBatchParallel(X, workers)
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("workers=%d: out[%d]=%x, want %x",
					workers, i, math.Float64bits(got[i]), math.Float64bits(ref[i]))
			}
		}
	}
}
