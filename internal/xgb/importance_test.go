package xgb

import (
	"math"
	"math/rand"
	"testing"
)

func TestFeatureImportanceFindsSignal(t *testing.T) {
	// Target depends only on feature 0; features 1 and 2 are noise.
	rng := rand.New(rand.NewSource(1))
	n := 400
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		X[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y[i] = 10 * X[i][0]
	}
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	imp := m.FeatureImportance()
	if len(imp) != 3 {
		t.Fatalf("importance length %d", len(imp))
	}
	sum := 0.0
	for _, v := range imp {
		if v < 0 {
			t.Fatal("negative importance")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances sum to %v", sum)
	}
	// Later boosting rounds fit residual noise with the noise features, so
	// the signal feature dominates rather than monopolizes.
	if imp[0] < 0.5 || imp[0] <= imp[1] || imp[0] <= imp[2] {
		t.Fatalf("informative feature should dominate: %v", imp)
	}
}

func TestFeatureImportanceConstantTarget(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	y := []float64{7, 7, 7}
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range m.FeatureImportance() {
		if v != 0 {
			t.Fatalf("constant target should yield zero importance, got %v", v)
		}
	}
}

func TestSubtreeSizes(t *testing.T) {
	// Hand-built tree: root splits, left leaf, right splits into two leaves.
	tr := tree{nodes: []treeNode{
		{feature: 0, threshold: 1, left: 1, right: 2},
		{feature: -1, value: 1},
		{feature: 1, threshold: 2, left: 3, right: 4},
		{feature: -1, value: 2},
		{feature: -1, value: 3},
	}}
	sizes := subtreeSizes(&tr)
	want := []int{5, 1, 3, 1, 1}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
}
