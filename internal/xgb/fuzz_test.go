package xgb

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzBuildModel decodes arbitrary fuzz bytes into a structurally valid
// ensemble (children always point to strictly later indices, every walk
// terminates in a leaf) while letting thresholds and leaf values take any
// bit pattern, including NaN and ±Inf. The compiler must accept every such
// model and reproduce the pointer predictor bit for bit.
func fuzzBuildModel(data []byte) (*Model, []float64) {
	next := func() uint64 {
		if len(data) == 0 {
			return 0
		}
		var buf [8]byte
		n := copy(buf[:], data)
		data = data[n:]
		return binary.LittleEndian.Uint64(buf[:])
	}
	nfeat := int(next()%8) + 1
	ntrees := int(next() % 5)
	m := &Model{base: math.Float64frombits(next()), nfeat: nfeat}
	for t := 0; t < ntrees; t++ {
		nnodes := int(next()%16) + 1
		nodes := make([]treeNode, nnodes)
		for i := range nodes {
			// A node is a leaf when the fuzz stream says so, or when no
			// later index remains for both children.
			isLeaf := next()%3 == 0 || i+2 >= nnodes
			if isLeaf {
				nodes[i] = treeNode{feature: -1, value: math.Float64frombits(next())}
				continue
			}
			span := nnodes - (i + 1)
			l := i + 1 + int(next()%uint64(span))
			r := i + 1 + int(next()%uint64(span))
			nodes[i] = treeNode{
				feature:   int(next() % uint64(nfeat)),
				threshold: math.Float64frombits(next()),
				left:      int32(l),
				right:     int32(r),
			}
		}
		m.trees = append(m.trees, tree{nodes: nodes})
	}
	x := make([]float64, nfeat)
	for i := range x {
		x[i] = math.Float64frombits(next())
	}
	return m, x
}

// FuzzCompiledPredict drives the SoA walker over adversarial ensembles:
// arbitrary shapes (empty, single-leaf, skewed DAG-ish child fan-in),
// arbitrary float bit patterns in thresholds, values, and inputs. The
// compiled form must pass its structural sanity check and agree with the
// pointer predictor on every bit.
func FuzzCompiledPredict(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0})
	f.Add(make([]byte, 256))
	seed := make([]byte, 128)
	for i := range seed {
		seed[i] = byte(i*37 + 11)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, x := fuzzBuildModel(data)
		c := m.Compile()
		if err := c.compiledSanity(); err != nil {
			t.Fatalf("compiled sanity: %v", err)
		}
		want := m.Predict(x)
		got := c.Predict(x)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("Predict mismatch: pointer %x, compiled %x", math.Float64bits(want), math.Float64bits(got))
		}
		// Batch path over a tile-straddling replica set of the same row.
		rows := make([][]float64, compiledTile+3)
		for i := range rows {
			rows[i] = x
		}
		for i, v := range c.PredictBatch(rows) {
			if math.Float64bits(want) != math.Float64bits(v) {
				t.Fatalf("PredictBatch row %d mismatch: pointer %x, compiled %x", i, math.Float64bits(want), math.Float64bits(v))
			}
		}
		// Per-tree decomposition must rebuild the sum exactly.
		s := c.Base()
		for tr := 0; tr < c.NumTrees(); tr++ {
			s += c.PredictTree(tr, x)
		}
		if math.Float64bits(want) != math.Float64bits(s) {
			t.Fatalf("tree sum mismatch: pointer %x, rebuilt %x", math.Float64bits(want), math.Float64bits(s))
		}
		// Path walkers: scalar and packed-pair forms must agree with the
		// plain per-tree walk on values, and with each other on masks, for
		// adversarial shapes too.
		items := make([]int64, 0, 2*c.NumTrees())
		for tr := 0; tr < c.NumTrees(); tr++ {
			v, msk := c.PredictTreePath(tr, x)
			if math.Float64bits(v) != math.Float64bits(c.PredictTree(tr, x)) {
				t.Fatalf("tree %d: PredictTreePath value differs from PredictTree", tr)
			}
			if msk&1 == 0 {
				t.Fatalf("tree %d: path mask %#x misses the root", tr, msk)
			}
			items = append(items, PackPair(int32(tr), 0), PackPair(int32(tr), 0))
		}
		vals := make([]float64, len(items))
		masks := make([]uint64, len(items))
		c.PredictPairsPath(items, x, vals, masks)
		for j, it := range items {
			v, msk := c.PredictTreePath(int(PairTree(it)), x)
			if math.Float64bits(vals[j]) != math.Float64bits(v) || masks[j] != msk {
				t.Fatalf("item %d (tree %d): PredictPairsPath (%x, %#x), PredictTreePath (%x, %#x)",
					j, PairTree(it), math.Float64bits(vals[j]), masks[j], math.Float64bits(v), msk)
			}
		}
	})
}
