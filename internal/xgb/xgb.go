// Package xgb implements gradient-boosted regression trees in the style of
// XGBoost (Chen & Guestrin 2016): second-order boosting with L2-regularized
// leaf weights, minimum-gain pruning, shrinkage, and row/column
// subsampling. Split finding uses histogram binning (XGBoost's `hist`
// method), which keeps training fast enough for the paper's BAO loop, which
// retrains Γ bootstrap models on every optimization step.
//
// The package is the reproduction's stand-in for the XGBoost evaluation
// function inside AutoTVM; the advanced active-learning framework is
// explicitly agnostic to the concrete evaluation function, so any
// Regressor implementation can be swapped in.
package xgb

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/par"
)

// Objective selects the training loss.
type Objective int

// Training objectives.
const (
	// ObjSquaredError is plain least-squares regression.
	ObjSquaredError Objective = iota
	// ObjPairwiseRank is a LambdaRank-style pairwise logistic loss: the
	// model learns to order configurations rather than predict absolute
	// GFLOPS, which is what AutoTVM's cost model actually optimizes and
	// is robust to the heavy-tailed scale of throughput values.
	ObjPairwiseRank
)

// Params configures training.
type Params struct {
	NumRounds      int       // number of boosting rounds (trees)
	MaxDepth       int       // maximum tree depth
	Eta            float64   // shrinkage (learning rate)
	Lambda         float64   // L2 regularization of leaf weights
	Gamma          float64   // minimum gain to make a split
	MinChildWeight float64   // minimum hessian sum per child
	Subsample      float64   // row subsampling per tree, in (0, 1]
	ColSample      float64   // feature subsampling per tree, in (0, 1]
	MaxBins        int       // histogram bins per feature
	Objective      Objective // loss (default squared error)
	// RankPairs is the number of comparison partners sampled per item and
	// round under ObjPairwiseRank (default 4).
	RankPairs int
	Seed      int64 // RNG seed for subsampling and pair sampling
	// Workers caps the goroutines used for binning, split search and
	// per-round prediction updates; <= 0 means par.Workers(). The trained
	// model is bit-identical for every value: all RNG draws stay on the
	// calling goroutine, and every parallel stage either works on disjoint
	// per-row/per-feature state or folds serially in a fixed order.
	Workers int
}

// DefaultParams mirrors the compact configuration AutoTVM uses for its
// cost model: shallow-ish trees, mild regularization.
func DefaultParams() Params {
	return Params{
		NumRounds:      30,
		MaxDepth:       5,
		Eta:            0.25,
		Lambda:         1.0,
		Gamma:          0.0,
		MinChildWeight: 1.0,
		Subsample:      1.0,
		ColSample:      1.0,
		MaxBins:        32,
		Seed:           0,
	}
}

func (p Params) validate() error {
	if p.NumRounds <= 0 {
		return errors.New("xgb: NumRounds must be positive")
	}
	if p.MaxDepth <= 0 {
		return errors.New("xgb: MaxDepth must be positive")
	}
	if p.Eta <= 0 || p.Eta > 1 {
		return errors.New("xgb: Eta must be in (0, 1]")
	}
	if p.Lambda < 0 || p.Gamma < 0 || p.MinChildWeight < 0 {
		return errors.New("xgb: regularization parameters must be non-negative")
	}
	if p.Subsample <= 0 || p.Subsample > 1 || p.ColSample <= 0 || p.ColSample > 1 {
		return errors.New("xgb: Subsample and ColSample must be in (0, 1]")
	}
	if p.MaxBins < 2 || p.MaxBins > 256 {
		return errors.New("xgb: MaxBins must be in [2, 256]")
	}
	if p.Objective != ObjSquaredError && p.Objective != ObjPairwiseRank {
		return errors.New("xgb: unknown objective")
	}
	if p.RankPairs < 0 {
		return errors.New("xgb: RankPairs must be non-negative")
	}
	return nil
}

// treeNode is one node of a regression tree in a flat array layout.
type treeNode struct {
	feature   int     // split feature; -1 for leaves
	threshold float64 // go left when x[feature] <= threshold
	left      int32
	right     int32
	value     float64 // leaf weight
}

type tree struct{ nodes []treeNode }

func (t *tree) predict(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Model is a trained boosted ensemble.
type Model struct {
	params Params
	base   float64
	trees  []tree
	nfeat  int
}

// NumTrees returns the ensemble size.
func (m *Model) NumTrees() int { return len(m.trees) }

// NumFeatures returns the feature dimensionality seen at training.
func (m *Model) NumFeatures() int { return m.nfeat }

// Predict evaluates the ensemble on one feature vector.
func (m *Model) Predict(x []float64) float64 {
	if len(x) != m.nfeat {
		//lint:ignore panicpath model invariant: feature-width mismatch means the caller mixed models, not a runtime condition
		panic(fmt.Sprintf("xgb: predict with %d features, model trained on %d", len(x), m.nfeat))
	}
	s := m.base
	for i := range m.trees {
		s += m.trees[i].predict(x)
	}
	return s
}

// PredictBatch evaluates the ensemble on each row of X.
func (m *Model) PredictBatch(X [][]float64) []float64 {
	return m.PredictBatchParallel(X, par.Workers())
}

// PredictBatchParallel is PredictBatch sharded over fixed-size row blocks.
// Each output element depends only on its own row, so the result is
// bit-identical for any worker count.
func (m *Model) PredictBatchParallel(X [][]float64, workers int) []float64 {
	out := make([]float64, len(X))
	n := len(X)
	if n*len(m.trees) < xgbParallelMinWork {
		workers = 1
	}
	blocks := (n + xgbRowBlock - 1) / xgbRowBlock
	par.For(blocks, workers, func(bk int) {
		lo, hi := bk*xgbRowBlock, (bk+1)*xgbRowBlock
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			out[i] = m.Predict(X[i])
		}
	})
	return out
}

// Train fits a boosted ensemble to (X, y) with squared-error loss.
func Train(X [][]float64, y []float64, p Params) (*Model, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := len(X)
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("xgb: need matching non-empty X (%d) and y (%d)", n, len(y))
	}
	nfeat := len(X[0])
	if nfeat == 0 {
		return nil, errors.New("xgb: zero feature dimension")
	}
	for i, row := range X {
		if len(row) != nfeat {
			return nil, fmt.Errorf("xgb: row %d has %d features, want %d", i, len(row), nfeat)
		}
	}

	base := 0.0
	if p.Objective == ObjSquaredError {
		for _, v := range y {
			base += v
		}
		base /= float64(n)
	} // rank scores are relative; a zero base keeps them centered

	workers := p.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	b := newBinner(X, p.MaxBins, workers)
	rng := rand.New(rand.NewSource(p.Seed))
	m := &Model{params: p, base: base, nfeat: nfeat}

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = base
	}
	grad := make([]float64, n)
	hess := make([]float64, n)
	ws := newTreeScratch(n, nfeat, p.MaxBins)
	predBlocks := (n + xgbRowBlock - 1) / xgbRowBlock
	predWorkers := workers
	if n < xgbParallelMinWork {
		predWorkers = 1
	}

	for round := 0; round < p.NumRounds; round++ {
		switch p.Objective {
		case ObjPairwiseRank:
			rankGradients(pred, y, grad, hess, p.RankPairs, rng)
		default:
			for i := range grad {
				grad[i] = pred[i] - y[i] // d/dp 0.5*(p-y)^2
				hess[i] = 1
			}
		}
		rows := sampleRows(n, p.Subsample, rng)
		cols := sampleCols(nfeat, p.ColSample, rng)
		tr := growTree(b, grad, hess, rows, cols, p, ws, workers)
		m.trees = append(m.trees, tr)
		if p.Subsample >= 1 {
			// Every row took part in the build, so ws.leaf already holds
			// tr.predict(X[i]) for each row (the bin-comparison partition is
			// exactly the threshold traversal — see growTree).
			for i := range pred {
				pred[i] += ws.leaf[i]
			}
		} else {
			// Per-row independent update over fixed blocks: bit-identical
			// for any worker count.
			par.For(predBlocks, predWorkers, func(bk int) {
				lo, hi := bk*xgbRowBlock, (bk+1)*xgbRowBlock
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					pred[i] += tr.predict(X[i])
				}
			})
		}
	}
	return m, nil
}

// rankGradients accumulates pairwise logistic-rank gradients: for each item
// i and `pairs` random partners j with y[i] != y[j], the preferred item is
// pushed up and the other down with LambdaRank's sigmoid weighting. A small
// hessian floor keeps leaf weights bounded for items whose sampled pairs
// all tied.
func rankGradients(pred, y, grad, hess []float64, pairs int, rng *rand.Rand) {
	n := len(y)
	if pairs <= 0 {
		pairs = 4
	}
	for i := range grad {
		grad[i] = 0
		hess[i] = 1e-3
	}
	if n < 2 {
		return
	}
	for i := 0; i < n; i++ {
		for k := 0; k < pairs; k++ {
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			//lint:ignore floateq stored targets; a pairwise ranking objective has no gradient on exactly tied labels
			if y[i] == y[j] {
				continue
			}
			hi, lo := i, j
			if y[j] > y[i] {
				hi, lo = j, i
			}
			// P(hi ranked above lo) under the current scores.
			pHi := 1 / (1 + math.Exp(pred[lo]-pred[hi]))
			g := pHi - 1 // gradient of -log sigmoid(s_hi - s_lo) wrt s_hi
			h := pHi * (1 - pHi)
			if h < 1e-6 {
				h = 1e-6
			}
			grad[hi] += g
			grad[lo] -= g
			hess[hi] += h
			hess[lo] += h
		}
	}
}

func sampleRows(n int, frac float64, rng *rand.Rand) []int32 {
	if frac >= 1 {
		rows := make([]int32, n)
		for i := range rows {
			rows[i] = int32(i)
		}
		return rows
	}
	k := int(math.Ceil(frac * float64(n)))
	perm := rng.Perm(n)
	rows := make([]int32, k)
	for i := 0; i < k; i++ {
		rows[i] = int32(perm[i])
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	return rows
}

func sampleCols(nfeat int, frac float64, rng *rand.Rand) []int {
	if frac >= 1 {
		cols := make([]int, nfeat)
		for i := range cols {
			cols[i] = i
		}
		return cols
	}
	k := int(math.Ceil(frac * float64(nfeat)))
	perm := rng.Perm(nfeat)
	cols := perm[:k]
	sort.Ints(cols)
	return cols
}
