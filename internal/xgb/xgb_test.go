package xgb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// makeRegression builds a noisy nonlinear regression dataset.
func makeRegression(n, nfeat int, noise float64, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, nfeat)
		for f := range row {
			row[f] = rng.Float64()*4 - 2
		}
		X[i] = row
		y[i] = row[0]*row[0] + 2*math.Sin(row[1]*2)
		if nfeat > 2 {
			y[i] += 0.5 * row[2]
		}
		y[i] += noise * rng.NormFloat64()
	}
	return X, y
}

func mse(pred, y []float64) float64 {
	s := 0.0
	for i := range y {
		d := pred[i] - y[i]
		s += d * d
	}
	return s / float64(len(y))
}

func variance(y []float64) float64 {
	m := 0.0
	for _, v := range y {
		m += v
	}
	m /= float64(len(y))
	s := 0.0
	for _, v := range y {
		s += (v - m) * (v - m)
	}
	return s / float64(len(y))
}

func TestTrainLearnsNonlinearFunction(t *testing.T) {
	X, y := makeRegression(800, 6, 0.05, 1)
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	trainMSE := mse(m.PredictBatch(X), y)
	if trainMSE > 0.1*variance(y) {
		t.Fatalf("train MSE %.4f too high (var %.4f)", trainMSE, variance(y))
	}
	// Generalization on a fresh draw of the same function.
	XT, yT := makeRegression(400, 6, 0.05, 2)
	testMSE := mse(m.PredictBatch(XT), yT)
	if testMSE > 0.3*variance(yT) {
		t.Fatalf("test MSE %.4f too high (var %.4f)", testMSE, variance(yT))
	}
}

func TestTrainConstantTarget(t *testing.T) {
	X, _ := makeRegression(50, 3, 0, 3)
	y := make([]float64, 50)
	for i := range y {
		y[i] = 7.5
	}
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.PredictBatch(X) {
		if math.Abs(p-7.5) > 1e-6 {
			t.Fatalf("constant target predicted as %v", p)
		}
	}
}

func TestTrainSingleSample(t *testing.T) {
	m, err := Train([][]float64{{1, 2}}, []float64{3}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{1, 2}); math.Abs(got-3) > 1e-9 {
		t.Fatalf("single-sample predict = %v", got)
	}
}

func TestTrainValidation(t *testing.T) {
	X := [][]float64{{1}, {2}}
	y := []float64{1, 2}
	if _, err := Train(nil, nil, DefaultParams()); err == nil {
		t.Fatal("empty data should error")
	}
	if _, err := Train(X, []float64{1}, DefaultParams()); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := Train([][]float64{{}, {}}, y, DefaultParams()); err == nil {
		t.Fatal("zero features should error")
	}
	if _, err := Train([][]float64{{1}, {2, 3}}, y, DefaultParams()); err == nil {
		t.Fatal("ragged rows should error")
	}
	bad := DefaultParams()
	bad.NumRounds = 0
	if _, err := Train(X, y, bad); err == nil {
		t.Fatal("zero rounds should error")
	}
	bad = DefaultParams()
	bad.Eta = 0
	if _, err := Train(X, y, bad); err == nil {
		t.Fatal("zero eta should error")
	}
	bad = DefaultParams()
	bad.MaxDepth = 0
	if _, err := Train(X, y, bad); err == nil {
		t.Fatal("zero depth should error")
	}
	bad = DefaultParams()
	bad.Subsample = 0
	if _, err := Train(X, y, bad); err == nil {
		t.Fatal("zero subsample should error")
	}
	bad = DefaultParams()
	bad.MaxBins = 1
	if _, err := Train(X, y, bad); err == nil {
		t.Fatal("one bin should error")
	}
	bad = DefaultParams()
	bad.Lambda = -1
	if _, err := Train(X, y, bad); err == nil {
		t.Fatal("negative lambda should error")
	}
}

func TestPredictPanicsOnWrongDim(t *testing.T) {
	X, y := makeRegression(50, 4, 0, 4)
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Predict([]float64{1, 2})
}

func TestDeterministicTraining(t *testing.T) {
	X, y := makeRegression(300, 5, 0.1, 5)
	p := DefaultParams()
	p.Subsample = 0.8
	p.ColSample = 0.8
	p.Seed = 42
	m1, err := Train(X, y, p)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(X, y, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if m1.Predict(X[i]) != m2.Predict(X[i]) {
			t.Fatal("same-seed training must be deterministic")
		}
	}
}

func TestSubsamplingChangesModel(t *testing.T) {
	X, y := makeRegression(300, 5, 0.1, 6)
	p := DefaultParams()
	p.Subsample = 0.6
	p.Seed = 1
	m1, _ := Train(X, y, p)
	p.Seed = 2
	m2, _ := Train(X, y, p)
	diff := false
	for i := range X {
		if m1.Predict(X[i]) != m2.Predict(X[i]) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different subsample seeds should change the model")
	}
}

func TestMoreRoundsReduceTrainError(t *testing.T) {
	X, y := makeRegression(500, 5, 0.05, 7)
	p := DefaultParams()
	p.NumRounds = 5
	m5, _ := Train(X, y, p)
	p.NumRounds = 60
	m60, _ := Train(X, y, p)
	if mse(m60.PredictBatch(X), y) >= mse(m5.PredictBatch(X), y) {
		t.Fatal("more boosting rounds should fit train data better")
	}
	if m60.NumTrees() != 60 || m5.NumTrees() != 5 {
		t.Fatal("NumTrees wrong")
	}
}

func TestGammaPrunesSplits(t *testing.T) {
	X, y := makeRegression(300, 4, 0.3, 8)
	p := DefaultParams()
	p.Gamma = 0
	loose, _ := Train(X, y, p)
	p.Gamma = 1e6
	strict, _ := Train(X, y, p)
	count := func(m *Model) int {
		n := 0
		for _, tr := range m.trees {
			n += len(tr.nodes)
		}
		return n
	}
	if count(strict) >= count(loose) {
		t.Fatalf("huge gamma should prune: %d vs %d nodes", count(strict), count(loose))
	}
	// With infinite gamma every tree is a single leaf node.
	if count(strict) != strict.NumTrees() {
		t.Fatalf("gamma=inf should give single-leaf trees, got %d nodes", count(strict))
	}
}

func TestNumFeatures(t *testing.T) {
	X, y := makeRegression(50, 7, 0, 9)
	m, _ := Train(X, y, DefaultParams())
	if m.NumFeatures() != 7 {
		t.Fatalf("NumFeatures = %d", m.NumFeatures())
	}
}

func TestBinIndex(t *testing.T) {
	edges := []float64{1, 3, 5}
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {5, 2}, {99, 2},
	}
	for _, c := range cases {
		if got := binIndex(edges, c.v); got != c.want {
			t.Errorf("binIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBinnerHandlesConstantFeature(t *testing.T) {
	X := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	y := []float64{1, 2, 3, 4}
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Must learn from feature 0 despite the constant feature 1.
	if math.Abs(m.Predict([]float64{1, 5})-m.Predict([]float64{4, 5})) < 0.5 {
		t.Fatal("model ignored the informative feature")
	}
}

func TestDuplicateRows(t *testing.T) {
	// Identical inputs with conflicting labels must not loop or crash.
	X := [][]float64{{1, 1}, {1, 1}, {1, 1}, {2, 2}}
	y := []float64{0, 1, 0.5, 3}
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	p := m.Predict([]float64{1, 1})
	if p < 0 || p > 1 {
		t.Fatalf("conflicting labels should predict near their mean, got %v", p)
	}
}

// Property: predictions are invariant to prediction order and finite for
// random inputs inside and outside the training range.
func TestPredictFiniteProperty(t *testing.T) {
	X, y := makeRegression(200, 4, 0.1, 10)
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c, d float64) bool {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		p := m.Predict([]float64{a, b, c, d})
		return !math.IsNaN(p) && !math.IsInf(p, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: model ranks a clearly-better point above a clearly-worse one on
// a monotone target (rank quality is what the tuner consumes).
func TestMonotoneRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 400
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 10
		X[i] = []float64{x, rng.Float64()}
		y[i] = x
	}
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict([]float64{9, 0.5}) <= m.Predict([]float64{1, 0.5}) {
		t.Fatal("monotone target should rank correctly")
	}
}

func BenchmarkTrain600x18(b *testing.B) {
	X, y := makeRegression(600, 18, 0.05, 12)
	p := DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(X, y, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	X, y := makeRegression(600, 18, 0.05, 13)
	m, err := Train(X, y, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(X[i%len(X)])
	}
}
