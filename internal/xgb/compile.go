package xgb

// This file compiles a trained pointer-tree ensemble into a flat
// structure-of-arrays layout for batched, branch-light inference — the
// batched tree-inference layout in the spirit of the XGBoost paper's
// block-structured scoring. The compiled form is used on the hottest path
// of the repository, the SA argmax over the surrogate (candidate
// selection), and is bit-identical to the pointer-tree predictor by
// construction: same comparisons, same leaf values, same per-row summation
// order (base, then trees in training order).

import (
	"fmt"
	"sync"

	"repro/internal/par"
)

// compiledTile is the row-tile width of the blocked batch walk: all trees
// are advanced over one tile of rows before the next tile is touched, so
// per-tree metadata (offsets, depths) and the tile's traversal state stay
// in cache. Fixed (never derived from worker count) so parallel batch
// decomposition is worker-invariant.
const compiledTile = 64

// CompiledModel is a Model flattened into contiguous per-node arrays:
// feature index, threshold, left/right child, and leaf value, with tree t
// owning the index range [off[t], off[t+1]). Leaves are self-loops
// (left == right == own index), which lets every walk run a fixed number
// of steps (the tree's depth) with no leaf test in the inner loop: once a
// row reaches its leaf it keeps stepping in place. The traversal rule is
// exactly the pointer predictor's — go left iff x[feat] <= thresh, so a
// NaN feature always takes the right child — and the per-row score is
// base + Σ leaf values in tree order, making every prediction bit-identical
// to Model.Predict.
type CompiledModel struct {
	base   float64
	nfeat  int
	ntrees int

	off   []int32 // tree t's nodes occupy [off[t], off[t+1])
	steps []int32 // per-tree walk length: max root-to-leaf branch count

	nodes []cnode   // packed split records, indexed like value
	value []float64 // leaf weight (internal nodes: 0)

	fmask []uint64 // per-tree feature bitsets, maskWords words each
}

// cnode is the packed per-node record of the walk kernels. Keeping the
// threshold, feature and both children in one load unit matters: the walk
// step loads the whole record, then selects between two registers, which
// the compiler turns into a conditional move — no data-dependent branch
// (split directions are ~random, so such a branch mispredicts ~half the
// time) and a single bounds check per step instead of one per array.
// cnode must stay at four fields: the compiler only SSA-decomposes structs
// that small, and a fifth field spills the loaded record to the stack and
// turns the conditional moves back into branches (measured 4x slower).
type cnode struct {
	thresh float64 // split threshold (leaves: 0)
	feat   int32   // split feature (leaves: 0, inert under self-loop)
	left   int32   // child when x[feat] <= thresh (absolute index)
	right  int32   // child otherwise (absolute index)
}

// maskWords returns the per-tree bitset length in 64-bit words.
func (c *CompiledModel) maskWords() int { return (c.nfeat + 63) / 64 }

// Compile flattens the ensemble into the SoA layout. The model remains
// usable; the compiled form shares no state with it.
func (m *Model) Compile() *CompiledModel {
	return m.compileInto(&CompiledModel{})
}

// compiledArena recycles retired CompiledModels across compilations. A
// surrogate-driven tuning session recompiles its ensemble every round, and
// a serving fleet opens many sessions; reusing the node/value/mask arrays
// keeps the per-round cost at "fill the arrays" instead of "allocate and
// fault them in". Pool discipline is strict transfer of ownership: Release
// hands the arrays over, and nothing may touch them afterwards.
var compiledArena = sync.Pool{New: func() any { return &CompiledModel{} }}

// CompilePooled is Compile into a recycled arena slot. The caller owns the
// result until it passes it to (*CompiledModel).Release.
func (m *Model) CompilePooled() *CompiledModel {
	return m.compileInto(compiledArena.Get().(*CompiledModel))
}

// Release returns a compiled model's arrays to the arena for the next
// compilation to reuse. The caller must hold the only live reference: any
// read after Release races with the next CompilePooled.
func (c *CompiledModel) Release() {
	if c != nil {
		compiledArena.Put(c)
	}
}

// grown returns s resized to n, reusing its backing array when capacity
// allows. Contents are unspecified; compileInto overwrites (or zeroes)
// every element it reads.
func grown[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// compileInto is Compile writing into c's (possibly recycled) arrays. It
// fully overwrites every field — the result is bit-identical whether c was
// zero-valued or held a previous ensemble, which is what makes arena reuse
// invisible to every golden stream hash.
func (m *Model) compileInto(c *CompiledModel) *CompiledModel {
	c.base, c.nfeat, c.ntrees = m.base, m.nfeat, len(m.trees)
	total := 0
	for i := range m.trees {
		total += len(m.trees[i].nodes)
	}
	c.off = grown(c.off, len(m.trees)+1)
	c.steps = grown(c.steps, len(m.trees))
	c.nodes = grown(c.nodes, total)
	c.value = grown(c.value, total)
	words := c.maskWords()
	c.fmask = grown(c.fmask, len(m.trees)*words)
	clear(c.fmask)

	base := int32(0)
	for ti := range m.trees {
		nodes := m.trees[ti].nodes
		c.off[ti] = base
		mask := c.fmask[ti*words : (ti+1)*words]
		for ni := range nodes {
			n := &nodes[ni]
			gi := base + int32(ni)
			if n.feature < 0 {
				c.nodes[gi] = cnode{left: gi, right: gi}
				c.value[gi] = n.value
				continue
			}
			c.nodes[gi] = cnode{
				thresh: n.threshold,
				feat:   int32(n.feature),
				left:   base + n.left,
				right:  base + n.right,
			}
			c.value[gi] = 0
			mask[n.feature>>6] |= 1 << (uint(n.feature) & 63)
		}
		c.steps[ti] = treeDepth(nodes)
		base += int32(len(nodes))
	}
	c.off[len(m.trees)] = base
	return c
}

// treeDepth returns the maximum number of branch steps from the root to any
// leaf (0 for a single-leaf tree), using an explicit stack so compilation
// cost does not depend on Go stack growth.
func treeDepth(nodes []treeNode) int32 {
	if len(nodes) == 0 {
		return 0
	}
	type frame struct{ node, depth int32 }
	stack := []frame{{0, 0}}
	max := int32(0)
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &nodes[f.node]
		if n.feature < 0 {
			if f.depth > max {
				max = f.depth
			}
			continue
		}
		stack = append(stack, frame{n.left, f.depth + 1}, frame{n.right, f.depth + 1})
	}
	return max
}

// Base returns the ensemble's base score (the first addend of every
// prediction).
func (c *CompiledModel) Base() float64 { return c.base }

// NumTrees returns the ensemble size.
func (c *CompiledModel) NumTrees() int { return c.ntrees }

// NumFeatures returns the feature dimensionality seen at training.
func (c *CompiledModel) NumFeatures() int { return c.nfeat }

// TreeUsesFeature reports whether tree t splits on feature f anywhere.
func (c *CompiledModel) TreeUsesFeature(t, f int) bool {
	words := c.maskWords()
	return c.fmask[t*words+f>>6]&(1<<(uint(f)&63)) != 0
}

// TreesTouching returns the trees whose splits read any feature in the
// half-open range [lo, hi), in ascending tree order. A tree absent from the
// result is guaranteed to predict the same leaf for two rows that differ
// only inside the range — the invariant incremental SA scoring relies on.
func (c *CompiledModel) TreesTouching(lo, hi int) []int {
	var out []int
	for t := 0; t < c.ntrees; t++ {
		for f := lo; f < hi; f++ {
			if c.TreeUsesFeature(t, f) {
				out = append(out, t)
				break
			}
		}
	}
	return out
}

// TreeSplits calls visit for every internal (split) node of tree t with its
// ordinal (node index within the tree — the bit position PredictTreePath
// and PredictPairsPath report for it), feature, and threshold, in node
// order. Leaves are skipped. It exists so callers can reason about what a
// tree could ever compare — e.g. to prove two rows indistinguishable to
// the tree without walking it.
func (c *CompiledModel) TreeSplits(t int, visit func(ord, feat int, thresh float64)) {
	for i := c.off[t]; i < c.off[t+1]; i++ {
		nd := c.nodes[i]
		if nd.left == i {
			continue
		}
		visit(int(i-c.off[t]), int(nd.feat), nd.thresh)
	}
}

// TreeNodeCount returns the number of nodes (splits and leaves) of tree t.
// Trees with at most 64 nodes have exact PredictTreePath masks: every node
// owns a distinct bit. Larger trees fold ordinals mod 64, and callers that
// rely on bit-per-node exactness must treat them conservatively.
func (c *CompiledModel) TreeNodeCount(t int) int { return int(c.off[t+1] - c.off[t]) }

// Predict evaluates the compiled ensemble on one feature vector,
// bit-identical to Model.Predict.
func (c *CompiledModel) Predict(x []float64) float64 {
	if len(x) != c.nfeat {
		//lint:ignore panicpath model invariant: feature-width mismatch means the caller mixed models, not a runtime condition
		panic(fmt.Sprintf("xgb: compiled predict with %d features, model trained on %d", len(x), c.nfeat))
	}
	s := c.base
	for t := 0; t < c.ntrees; t++ {
		s += c.predictTreeIdx(t, x)
	}
	return s
}

// PredictTree evaluates tree t alone on one feature vector and returns its
// leaf value — the t-th addend of Predict, bit for bit.
func (c *CompiledModel) PredictTree(t int, x []float64) float64 {
	return c.predictTreeIdx(t, x)
}

// PredictTreePath evaluates tree t on one row and additionally returns the
// path mask of the walk: bit (ord mod 64) is set for every node the walk
// visited — split nodes and the final leaf alike — where ord is the node's
// index within the tree (the ordinal TreeSplits reports). For trees of at
// most 64 nodes every node owns a distinct bit, so the mask identifies the
// root-to-leaf path exactly; use TreeNodeCount to detect larger trees,
// whose folded masks admit collisions and must not be used for exact-path
// reasoning. The guarantee callers rely on: if every split on the masked
// path classifies a second row identically, the tree takes the identical
// path on it — same leaf value, same mask — with no walk needed.
func (c *CompiledModel) PredictTreePath(t int, x []float64) (float64, uint64) {
	i := c.off[t]
	root := i
	nodes := c.nodes
	var mask uint64
	for d := int32(0); d < c.steps[t]; d++ {
		nd := nodes[i]
		mask |= 1 << (uint(i-root) & 63)
		next := nd.right
		if x[nd.feat] <= nd.thresh {
			next = nd.left
		}
		i = next
	}
	return c.value[i], mask | 1<<(uint(i-root)&63)
}

// compiledTreeTile is the tile width of the lockstep pair walk — enough
// independent chains to cover load latency without spilling the per-item
// cursors out of registers/L1.
const compiledTreeTile = 16

// PackPair packs a (tree, row offset) work item for PredictPairsPath.
func PackPair(tree int32, rowOff int) int64 { return int64(rowOff)<<32 | int64(tree) }

// PairTree recovers the tree id of a PackPair item.
func PairTree(item int64) int32 { return int32(uint32(item)) }

// PredictPairsPath evaluates independent packed (tree, row) work items in
// lockstep: item j walks tree PairTree(items[j]) over the row starting at
// items[j]>>32 in the flat rows buffer, and vals[j]/masks[j] receive
// exactly what PredictTreePath would return for that pair, bit for bit.
// Items may mix arbitrary trees and rows — the incremental SA scorer
// batches every surviving walk of a whole proposal sweep into one call, so
// tile after tile of independent load-compare chains keeps the memory
// pipeline full regardless of how few trees any single proposal needs.
func (c *CompiledModel) PredictPairsPath(items []int64, rows []float64, vals []float64, masks []uint64) {
	for lo := 0; lo < len(items); lo += compiledTreeTile {
		hi := lo + compiledTreeTile
		if hi > len(items) {
			hi = len(items)
		}
		c.predictPairsTile(items[lo:hi], rows, vals[lo:hi], masks[lo:hi])
	}
}

func (c *CompiledModel) predictPairsTile(items []int64, rows []float64, vals []float64, masks []uint64) {
	nodes := c.nodes
	var idx, root, roff [compiledTreeTile]int32
	var msk [compiledTreeTile]uint64
	maxSteps := int32(0)
	for j, it := range items {
		t := int32(uint32(it))
		idx[j] = c.off[t]
		root[j] = c.off[t]
		roff[j] = int32(it >> 32)
		if s := c.steps[t]; s > maxSteps {
			maxSteps = s
		}
	}
	tidx := idx[:len(items)]
	// Items whose tree is shallower than maxSteps keep stepping in place at
	// their leaf (self-loop); the repeated OR of the leaf's own bit is
	// idempotent, and the final fold below adds it for paths that arrive at
	// the leaf exactly on the last step — so the mask never depends on how
	// items were tiled together.
	for d := int32(0); d < maxSteps; d++ {
		for j := range tidx {
			i := tidx[j]
			nd := nodes[i]
			msk[j] |= 1 << (uint(i-root[j]) & 63)
			next := nd.right
			if rows[roff[j]+nd.feat] <= nd.thresh {
				next = nd.left
			}
			tidx[j] = next
		}
	}
	for j := range tidx {
		i := tidx[j]
		vals[j] = c.value[i]
		masks[j] = msk[j] | 1<<(uint(i-root[j])&63)
	}
}

func (c *CompiledModel) predictTreeIdx(t int, x []float64) float64 {
	i := c.off[t]
	nodes := c.nodes
	for d := int32(0); d < c.steps[t]; d++ {
		nd := nodes[i]
		next := nd.right
		if x[nd.feat] <= nd.thresh {
			next = nd.left
		}
		i = next
	}
	return c.value[i]
}

// PredictRows scores flat row-major feature rows: rows holds
// len(out) x NumFeatures() values, out[i] receives the prediction of row i.
func (c *CompiledModel) PredictRows(rows []float64, out []float64) {
	c.predictRows(rows, out, nil)
}

// PredictRowsTrees is PredictRows with the per-tree leaf contributions
// exposed: treeVals is len(out) x NumTrees() row-major and receives tree
// t's addend for row i at treeVals[i*NumTrees()+t]. out[i] equals
// Base() + the row's treeVals summed in tree order (the exact Predict sum).
func (c *CompiledModel) PredictRowsTrees(rows []float64, out, treeVals []float64) {
	c.predictRows(rows, out, treeVals)
}

func (c *CompiledModel) predictRows(rows []float64, out, treeVals []float64) {
	n := len(out)
	if len(rows) != n*c.nfeat {
		//lint:ignore panicpath model invariant: row-matrix shape mismatch is a caller bug, not a runtime condition
		panic(fmt.Sprintf("xgb: PredictRows with %d values for %d rows of %d features", len(rows), n, c.nfeat))
	}
	for lo := 0; lo < n; lo += compiledTile {
		hi := lo + compiledTile
		if hi > n {
			hi = n
		}
		var tv []float64
		if treeVals != nil {
			tv = treeVals[lo*c.ntrees : hi*c.ntrees]
		}
		c.predictTile(rows[lo*c.nfeat:hi*c.nfeat], out[lo:hi], tv)
	}
}

// predictTile advances every tree over one tile of rows: per tree, all rows
// step down in lockstep for the tree's depth, then the leaf values fold
// into the per-row accumulators. Summation order per row is base + tree 0 +
// tree 1 + ... — identical to the pointer predictor.
func (c *CompiledModel) predictTile(rows []float64, out, treeVals []float64) {
	nr := len(out)
	dim := c.nfeat
	var idx [compiledTile]int32
	for r := range out {
		out[r] = c.base
	}
	nodes, value := c.nodes, c.value
	for t := 0; t < c.ntrees; t++ {
		root := c.off[t]
		steps := int(c.steps[t])
		tidx := idx[:nr]
		for r := range tidx {
			tidx[r] = root
		}
		for d := 0; d < steps; d++ {
			off := 0
			for r := range tidx {
				nd := nodes[tidx[r]]
				// Branchless select (a conditional move between the two
				// already-loaded children): split directions are ~random on
				// real data, so a data-dependent branch here mispredicts
				// about half the time and serializes the whole tile. NaN
				// features fail the <= and keep the right child, exactly
				// like the pointer walker.
				next := nd.right
				if rows[off+int(nd.feat)] <= nd.thresh {
					next = nd.left
				}
				tidx[r] = next
				off += dim
			}
		}
		if treeVals != nil {
			for r := 0; r < nr; r++ {
				v := value[idx[r]]
				treeVals[r*c.ntrees+t] = v
				out[r] += v
			}
		} else {
			for r := 0; r < nr; r++ {
				out[r] += value[idx[r]]
			}
		}
	}
}

// PredictBatch evaluates the compiled ensemble on each row of X,
// bit-identical to Model.PredictBatch.
func (c *CompiledModel) PredictBatch(X [][]float64) []float64 {
	return c.PredictBatchParallel(X, par.Workers())
}

// PredictBatchParallel is PredictBatch sharded over fixed-size row blocks
// (the same xgbRowBlock decomposition as the pointer model), each block
// scored through the tiled SoA walk. Each output element depends only on
// its own row, so the result is bit-identical for any worker count.
func (c *CompiledModel) PredictBatchParallel(X [][]float64, workers int) []float64 {
	n := len(X)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if n*c.ntrees < xgbParallelMinWork {
		workers = 1
	}
	blocks := (n + xgbRowBlock - 1) / xgbRowBlock
	par.For(blocks, workers, func(bk int) {
		lo, hi := bk*xgbRowBlock, (bk+1)*xgbRowBlock
		if hi > n {
			hi = n
		}
		// Pack the block's rows into a flat tile buffer and run the blocked
		// walk over it.
		buf := make([]float64, (hi-lo)*c.nfeat)
		for i := lo; i < hi; i++ {
			copy(buf[(i-lo)*c.nfeat:(i-lo+1)*c.nfeat], X[i])
		}
		c.predictRows(buf, out[lo:hi], nil)
	})
	return out
}

// compiledSanity is referenced by the fuzz target to keep malformed inputs
// from tripping the fixed-step walk: it verifies the self-loop invariant of
// every leaf and that internal children stay inside the tree's range.
func (c *CompiledModel) compiledSanity() error {
	for t := 0; t < c.ntrees; t++ {
		lo, hi := c.off[t], c.off[t+1]
		for i := lo; i < hi; i++ {
			nd := c.nodes[i]
			if nd.left < lo || nd.left >= hi || nd.right < lo || nd.right >= hi {
				return fmt.Errorf("tree %d node %d: child out of range", t, i-lo)
			}
			if (nd.left == i) != (nd.right == i) {
				return fmt.Errorf("tree %d node %d: half self-loop", t, i-lo)
			}
		}
	}
	return nil
}
