package xgb

import (
	"math/rand"
	"testing"
)

func benchData(n, d int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		s := 0.0
		for j := range row {
			row[j] = rng.Float64()
			s += row[j] * float64(j%3)
		}
		X[i] = row
		y[i] = s + 0.1*rng.NormFloat64()
	}
	return X, y
}

// benchParams mirrors the cost-model configuration the AutoTVM-style tuner
// trains every round (see ModelTuner.xgbParams).
func benchParams() Params {
	p := DefaultParams()
	p.NumRounds = 24
	p.MaxDepth = 5
	p.MaxBins = 24
	return p
}

// BenchmarkXGBTrain fits the surrogate at late-run training-set size: ~512
// observations of a 12-knob space.
func BenchmarkXGBTrain(b *testing.B) {
	X, y := benchData(512, 12, 1)
	p := benchParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(X, y, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXGBPredictBatch scores an SA candidate pool through a trained
// ensemble.
func BenchmarkXGBPredictBatch(b *testing.B) {
	X, y := benchData(512, 12, 2)
	m, err := Train(X, y, benchParams())
	if err != nil {
		b.Fatal(err)
	}
	pool, _ := benchData(2048, 12, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictBatch(pool)
	}
}

// BenchmarkCompiledPredictBatch scores the same pool through the flat SoA
// layout — the apples-to-apples comparison against BenchmarkXGBPredictBatch.
func BenchmarkCompiledPredictBatch(b *testing.B) {
	X, y := benchData(512, 12, 2)
	m, err := Train(X, y, benchParams())
	if err != nil {
		b.Fatal(err)
	}
	c := m.Compile()
	pool, _ := benchData(2048, 12, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.PredictBatch(pool)
	}
}

// BenchmarkCompiledPredictRows drops the [][]float64 packing overhead and
// measures the pure SoA tile walk over pre-flattened rows — the form the SA
// delta objective feeds.
func BenchmarkCompiledPredictRows(b *testing.B) {
	X, y := benchData(512, 12, 2)
	m, err := Train(X, y, benchParams())
	if err != nil {
		b.Fatal(err)
	}
	c := m.Compile()
	pool, _ := benchData(2048, 12, 3)
	flat := make([]float64, len(pool)*c.NumFeatures())
	for i, row := range pool {
		copy(flat[i*c.NumFeatures():], row)
	}
	out := make([]float64, len(pool))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.PredictRows(flat, out)
	}
}
