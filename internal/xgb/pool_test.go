package xgb

import (
	"math"
	"testing"
)

// dirtyFrom returns a CompiledModel whose arrays still hold another
// ensemble's data — the worst-case arena slot a pooled compile can be
// handed.
func dirtyFrom(t *testing.T, seed int64) *CompiledModel {
	t.Helper()
	m, _ := trainRandom(t, seed, func(p *Params) { p.NumRounds = 24; p.MaxDepth = 6 })
	return m.Compile()
}

// TestCompileIntoDirtyBitIdentical is the arena-reuse contract: compiling
// into a recycled slot that still holds a different ensemble's arrays must
// produce a model bit-identical, field by field and prediction by
// prediction, to a fresh Compile. compileInto is exercised directly so the
// dirty slot is guaranteed (sync.Pool may drop entries at will).
func TestCompileIntoDirtyBitIdentical(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		m, pool := trainRandom(t, 500+seed, nil)
		fresh := m.Compile()
		// Recycle both a larger and a smaller donor: one exercises the
		// capacity-reuse path, the other the reallocation path.
		for di, donor := range []*CompiledModel{dirtyFrom(t, 900+seed), dirtyFrom(t, 950+seed)} {
			got := m.compileInto(donor)
			if got.base != fresh.base || got.nfeat != fresh.nfeat || got.ntrees != fresh.ntrees {
				t.Fatalf("seed %d donor %d: header mismatch", seed, di)
			}
			if len(got.off) != len(fresh.off) || len(got.steps) != len(fresh.steps) ||
				len(got.nodes) != len(fresh.nodes) || len(got.value) != len(fresh.value) ||
				len(got.fmask) != len(fresh.fmask) {
				t.Fatalf("seed %d donor %d: array length mismatch", seed, di)
			}
			for i := range fresh.off {
				if got.off[i] != fresh.off[i] {
					t.Fatalf("seed %d donor %d: off[%d] differs", seed, di, i)
				}
			}
			for i := range fresh.steps {
				if got.steps[i] != fresh.steps[i] {
					t.Fatalf("seed %d donor %d: steps[%d] differs", seed, di, i)
				}
			}
			for i := range fresh.nodes {
				if got.nodes[i] != fresh.nodes[i] {
					t.Fatalf("seed %d donor %d: nodes[%d] differs", seed, di, i)
				}
			}
			for i := range fresh.value {
				if math.Float64bits(got.value[i]) != math.Float64bits(fresh.value[i]) {
					t.Fatalf("seed %d donor %d: value[%d] differs", seed, di, i)
				}
			}
			for i := range fresh.fmask {
				if got.fmask[i] != fresh.fmask[i] {
					t.Fatalf("seed %d donor %d: fmask[%d] differs (stale feature bit)", seed, di, i)
				}
			}
			assertCompiledMatches(t, m, got, pool)
		}
	}
}

// TestCompilePooledRoundTrip smokes the public pool surface: pooled
// compiles predict identically to fresh ones across Release cycles, and
// releasing nil is a no-op.
func TestCompilePooledRoundTrip(t *testing.T) {
	var nilCM *CompiledModel
	nilCM.Release()
	for seed := int64(0); seed < 3; seed++ {
		m, pool := trainRandom(t, 700+seed, nil)
		want := m.PredictBatch(pool)
		for cycle := 0; cycle < 3; cycle++ {
			c := m.CompilePooled()
			for i, row := range pool {
				if math.Float64bits(c.Predict(row)) != math.Float64bits(want[i]) {
					t.Fatalf("seed %d cycle %d row %d: pooled prediction differs", seed, cycle, i)
				}
			}
			c.Release()
		}
	}
}
