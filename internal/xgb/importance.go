package xgb

// FeatureImportance returns the gain-proxy importance of each feature:
// how often the feature is used as a split, weighted by the size of the
// subtree it gates (deeper splits gate fewer predictions). Values are
// normalized to sum to 1 (all-zero when the ensemble never split).
//
// Tuning insight: on schedule spaces the thread-extent features of tile_f
// and tile_x dominate, matching the simulator's occupancy/coalescing
// structure — `cmd/compare` users can sanity-check what the cost model
// latched onto.
func (m *Model) FeatureImportance() []float64 {
	imp := make([]float64, m.nfeat)
	for _, tr := range m.trees {
		if len(tr.nodes) == 0 {
			continue
		}
		weights := subtreeSizes(&tr)
		for i, n := range tr.nodes {
			if n.feature >= 0 {
				imp[n.feature] += float64(weights[i])
			}
		}
	}
	total := 0.0
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

// subtreeSizes returns the node count of each node's subtree.
func subtreeSizes(t *tree) []int {
	sizes := make([]int, len(t.nodes))
	// Nodes are appended parent-before-children, so a reverse pass
	// accumulates children before parents.
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		sizes[i] = 1
		if n.feature >= 0 {
			sizes[i] += sizes[n.left] + sizes[n.right]
		}
	}
	return sizes
}
