package xgb

import (
	"math/rand"
	"sort"
	"testing"
)

// kendallTau returns the rank correlation between predictions and targets.
func kendallTau(pred, y []float64) float64 {
	n := len(y)
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dp := pred[i] - pred[j]
			dy := y[i] - y[j]
			switch {
			case dp*dy > 0:
				concordant++
			case dp*dy < 0:
				discordant++
			}
		}
	}
	total := concordant + discordant
	if total == 0 {
		return 0
	}
	return float64(concordant-discordant) / float64(total)
}

func TestRankObjectiveLearnsOrdering(t *testing.T) {
	X, y := makeRegression(500, 5, 0.05, 21)
	p := DefaultParams()
	p.Objective = ObjPairwiseRank
	p.NumRounds = 40
	m, err := Train(X, y, p)
	if err != nil {
		t.Fatal(err)
	}
	XT, yT := makeRegression(200, 5, 0.0, 22)
	tau := kendallTau(m.PredictBatch(XT), yT)
	if tau < 0.55 {
		t.Fatalf("rank model Kendall tau %.3f too low", tau)
	}
}

func TestRankObjectiveScaleInvariance(t *testing.T) {
	// Multiplying targets by a huge constant must not change the learned
	// ordering (the point of a rank loss).
	X, y := makeRegression(300, 4, 0.05, 23)
	yScaled := make([]float64, len(y))
	for i, v := range y {
		yScaled[i] = v * 1e9
	}
	p := DefaultParams()
	p.Objective = ObjPairwiseRank
	p.Seed = 5
	m1, err := Train(X, y, p)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(X, yScaled, p)
	if err != nil {
		t.Fatal(err)
	}
	p1 := m1.PredictBatch(X)
	p2 := m2.PredictBatch(X)
	if tau := kendallTau(p1, p2); tau < 0.999 {
		t.Fatalf("scaled targets changed the ordering: tau %.4f", tau)
	}
}

func TestRankObjectiveTiedTargets(t *testing.T) {
	// All-equal targets: every pair ties, gradients vanish, training must
	// still terminate and predict something finite.
	X, _ := makeRegression(60, 3, 0, 24)
	y := make([]float64, 60)
	for i := range y {
		y[i] = 1
	}
	p := DefaultParams()
	p.Objective = ObjPairwiseRank
	m, err := Train(X, y, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range m.PredictBatch(X) {
		if v != v {
			t.Fatal("NaN prediction on tied targets")
		}
	}
}

func TestRankParamsValidation(t *testing.T) {
	X := [][]float64{{1}, {2}}
	y := []float64{1, 2}
	p := DefaultParams()
	p.Objective = Objective(99)
	if _, err := Train(X, y, p); err == nil {
		t.Fatal("unknown objective should error")
	}
	p = DefaultParams()
	p.RankPairs = -1
	if _, err := Train(X, y, p); err == nil {
		t.Fatal("negative RankPairs should error")
	}
}

func TestRankBeatsRegressionOnSkewedTargets(t *testing.T) {
	// Heavy-tailed targets (a few huge outliers) wreck squared-error leaf
	// fits but barely affect a rank loss. Compare test-set ordering.
	rng := rand.New(rand.NewSource(25))
	n := 400
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		X[i] = x
		base := x[0] + 0.5*x[1]
		y[i] = base
		if rng.Float64() < 0.03 {
			y[i] = base * 1e6 // outlier scale
		}
	}
	pr := DefaultParams()
	pr.Objective = ObjPairwiseRank
	pr.NumRounds = 40
	rankM, err := Train(X, y, pr)
	if err != nil {
		t.Fatal(err)
	}
	regM, err := Train(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Clean test targets: the true base function.
	XT := make([][]float64, 150)
	yT := make([]float64, 150)
	for i := range XT {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		XT[i] = x
		yT[i] = x[0] + 0.5*x[1]
	}
	tauRank := kendallTau(rankM.PredictBatch(XT), yT)
	tauReg := kendallTau(regM.PredictBatch(XT), yT)
	if tauRank <= tauReg {
		t.Fatalf("rank tau %.3f should beat regression tau %.3f on skewed targets", tauRank, tauReg)
	}
}

func TestRankGradientsDirection(t *testing.T) {
	// With pred all equal, the higher-y item must receive negative gradient
	// (pushed up: leaf value is -G/(H+lambda)).
	pred := []float64{0, 0}
	y := []float64{1, 2}
	grad := make([]float64, 2)
	hess := make([]float64, 2)
	rng := rand.New(rand.NewSource(1))
	rankGradients(pred, y, grad, hess, 8, rng)
	if !(grad[1] < 0 && grad[0] > 0) {
		t.Fatalf("gradients wrong direction: %v", grad)
	}
	if hess[0] <= 0 || hess[1] <= 0 {
		t.Fatalf("hessians must be positive: %v", hess)
	}
	// Antisymmetry of the accumulated pair gradients.
	if g := grad[0] + grad[1]; g > 1e-12 || g < -1e-12 {
		t.Fatalf("pair gradients should cancel: %v", grad)
	}
}

func TestRankPredictionsCorrelateWithSortOrder(t *testing.T) {
	X, y := makeRegression(200, 4, 0.0, 26)
	p := DefaultParams()
	p.Objective = ObjPairwiseRank
	m, err := Train(X, y, p)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.PredictBatch(X)
	idx := make([]int, len(y))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pred[idx[a]] > pred[idx[b]] })
	// The top-20 by prediction should have a much higher mean target than
	// the bottom-20.
	top, bot := 0.0, 0.0
	for i := 0; i < 20; i++ {
		top += y[idx[i]]
		bot += y[idx[len(idx)-1-i]]
	}
	if top <= bot {
		t.Fatalf("top-by-prediction mean %.2f should beat bottom %.2f", top/20, bot/20)
	}
}
