package xgb

import (
	"math"
	"math/rand"
	"testing"
)

// trainRandom fits an ensemble on random data under the given parameter
// tweaks and returns it with a scoring pool.
func trainRandom(t *testing.T, seed int64, mut func(*Params)) (*Model, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 40 + rng.Intn(200)
	d := 1 + rng.Intn(16)
	X, y := benchData(n, d, seed+1)
	p := DefaultParams()
	p.NumRounds = 1 + rng.Intn(32)
	p.MaxDepth = 1 + rng.Intn(7)
	p.MaxBins = 2 + rng.Intn(40)
	p.Seed = seed
	if mut != nil {
		mut(&p)
	}
	m, err := Train(X, y, p)
	if err != nil {
		t.Fatal(err)
	}
	pool, _ := benchData(257, d, seed+2)
	return m, pool
}

// TestCompiledMatchesPointer is the differential contract of the SoA
// compiler: over randomized ensembles (depths, bins, subsampling, rank
// objective), every compiled prediction — single-row, per-tree, flat-row
// batch, and [][]float64 batch — must be bit-identical to the pointer-tree
// predictor.
func TestCompiledMatchesPointer(t *testing.T) {
	muts := []func(*Params){
		nil,
		func(p *Params) { p.MaxDepth = 1 },
		func(p *Params) { p.Subsample = 0.7; p.ColSample = 0.6 },
		func(p *Params) { p.Objective = ObjPairwiseRank },
		func(p *Params) { p.NumRounds = 1 },
		func(p *Params) { p.Gamma = 5; p.MinChildWeight = 8 }, // forces shallow/leaf-only trees
	}
	for seed := int64(0); seed < 6; seed++ {
		for mi, mut := range muts {
			m, pool := trainRandom(t, 100*seed+int64(mi), mut)
			c := m.Compile()
			if c.NumTrees() != m.NumTrees() || c.NumFeatures() != m.NumFeatures() {
				t.Fatalf("seed %d/%d: compiled shape mismatch", seed, mi)
			}
			assertCompiledMatches(t, m, c, pool)
		}
	}
}

func assertCompiledMatches(t *testing.T, m *Model, c *CompiledModel, pool [][]float64) {
	t.Helper()
	want := m.PredictBatch(pool)
	got := c.PredictBatch(pool)
	dim := m.NumFeatures()
	flat := make([]float64, len(pool)*dim)
	for i, row := range pool {
		copy(flat[i*dim:(i+1)*dim], row)
	}
	outRows := make([]float64, len(pool))
	c.PredictRows(flat, outRows)
	treeVals := make([]float64, len(pool)*c.NumTrees())
	outTrees := make([]float64, len(pool))
	c.PredictRowsTrees(flat, outTrees, treeVals)
	for i, row := range pool {
		if math.Float64bits(want[i]) != math.Float64bits(c.Predict(row)) {
			t.Fatalf("row %d: Predict differs from pointer model", i)
		}
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("row %d: PredictBatch differs from pointer model", i)
		}
		if math.Float64bits(want[i]) != math.Float64bits(outRows[i]) {
			t.Fatalf("row %d: PredictRows differs from pointer model", i)
		}
		if math.Float64bits(want[i]) != math.Float64bits(outTrees[i]) {
			t.Fatalf("row %d: PredictRowsTrees sum differs from pointer model", i)
		}
		// Per-tree contributions must rebuild the exact sum and match
		// PredictTree.
		s := c.Base()
		for tr := 0; tr < c.NumTrees(); tr++ {
			v := treeVals[i*c.NumTrees()+tr]
			if math.Float64bits(v) != math.Float64bits(c.PredictTree(tr, row)) {
				t.Fatalf("row %d tree %d: PredictTree differs from batch contribution", i, tr)
			}
			s += v
		}
		if math.Float64bits(s) != math.Float64bits(want[i]) {
			t.Fatalf("row %d: tree contributions do not rebuild the prediction", i)
		}
	}
}

// TestCompiledSingleLeafTrees trains on constant targets, which makes every
// split gainless: the ensemble degenerates to single-leaf trees, the
// compiled walk degenerates to zero steps.
func TestCompiledSingleLeafTrees(t *testing.T) {
	X, _ := benchData(64, 6, 7)
	y := make([]float64, len(X))
	for i := range y {
		y[i] = 3.25
	}
	p := DefaultParams()
	p.NumRounds = 8
	m, err := Train(X, y, p)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Compile()
	for tr := 0; tr < c.NumTrees(); tr++ {
		if c.steps[tr] != 0 {
			t.Fatalf("tree %d: depth %d, want 0 for single-leaf tree", tr, c.steps[tr])
		}
	}
	pool, _ := benchData(33, 6, 8)
	assertCompiledMatches(t, m, c, pool)
}

// TestCompiledMissingFeatureDefault pins NaN routing: a NaN feature fails
// every x <= threshold test, so both predictors must route it to the right
// child at every split on that feature.
func TestCompiledMissingFeatureDefault(t *testing.T) {
	m, pool := trainRandom(t, 55, nil)
	c := m.Compile()
	rng := rand.New(rand.NewSource(9))
	for _, row := range pool {
		nan := rng.Intn(len(row))
		row[nan] = math.NaN()
		if rng.Intn(2) == 0 {
			row[(nan+1)%len(row)] = math.Inf(1 - 2*rng.Intn(2))
		}
	}
	assertCompiledMatches(t, m, c, pool)
}

// TestCompiledEmptyEnsemble covers the degenerate compiled form: no trees,
// prediction is the base score.
func TestCompiledEmptyEnsemble(t *testing.T) {
	m := &Model{base: 1.5, nfeat: 3}
	c := m.Compile()
	x := []float64{0, 1, 2}
	if got := c.Predict(x); got != 1.5 {
		t.Fatalf("empty ensemble predicts %v, want base 1.5", got)
	}
	out := make([]float64, 2)
	c.PredictRows([]float64{0, 1, 2, 3, 4, 5}, out)
	if out[0] != 1.5 || out[1] != 1.5 {
		t.Fatalf("empty ensemble PredictRows = %v, want base", out)
	}
	if got := c.PredictBatch(nil); len(got) != 0 {
		t.Fatalf("PredictBatch(nil) returned %d values", len(got))
	}
}

// TestCompiledTreesTouching verifies the per-tree feature sets against the
// pointer trees, and the semantic guarantee: a tree not touching a feature
// range predicts identically for rows differing only inside it.
func TestCompiledTreesTouching(t *testing.T) {
	m, pool := trainRandom(t, 77, nil)
	c := m.Compile()
	d := m.NumFeatures()
	// Reference feature sets straight off the pointer nodes.
	for tr := range m.trees {
		used := make(map[int]bool)
		for _, n := range m.trees[tr].nodes {
			if n.feature >= 0 {
				used[n.feature] = true
			}
		}
		for f := 0; f < d; f++ {
			if used[f] != c.TreeUsesFeature(tr, f) {
				t.Fatalf("tree %d feature %d: mask %v, pointer nodes say %v", tr, f, c.TreeUsesFeature(tr, f), used[f])
			}
		}
	}
	rng := rand.New(rand.NewSource(13))
	for f := 0; f < d; f++ {
		touching := make(map[int]bool)
		for _, tr := range c.TreesTouching(f, f+1) {
			touching[tr] = true
		}
		for tr := 0; tr < c.NumTrees(); tr++ {
			if touching[tr] {
				continue
			}
			row := append([]float64(nil), pool[rng.Intn(len(pool))]...)
			before := c.PredictTree(tr, row)
			row[f] = rng.NormFloat64() * 100
			after := c.PredictTree(tr, row)
			if math.Float64bits(before) != math.Float64bits(after) {
				t.Fatalf("tree %d claims not to touch feature %d but prediction changed", tr, f)
			}
		}
	}
}

// TestCompiledPathWalks is the differential contract of the path-reporting
// walkers behind the SA objective's signature gate. PredictTreePath must
// return PredictTree's exact value plus the mask of visited node ordinals
// of the real root-to-leaf walk (leaf included), verified against an
// independent scalar walk over the SoA nodes; PredictPairsPath over an
// arbitrary packed (tree, row-offset) work list — duplicate trees, rows in
// scrambled order, length straddling the tile size — must reproduce the
// scalar walker pair by pair, values and masks both.
func TestCompiledPathWalks(t *testing.T) {
	muts := []func(*Params){
		nil,
		func(p *Params) { p.Gamma = 5; p.MinChildWeight = 8 }, // shallow/leaf-only trees
	}
	for seed := int64(0); seed < 4; seed++ {
		for mi, mut := range muts {
			m, pool := trainRandom(t, 500+100*seed+int64(mi), mut)
			c := m.Compile()
			// Independent reference walk: follow the SoA nodes, collecting
			// ordinals, until the self-loop leaf holds the walk in place.
			refWalk := func(tr int, x []float64) (float64, uint64) {
				root := c.off[tr]
				i := root
				var mask uint64
				for {
					mask |= 1 << (uint(i-root) & 63)
					nd := c.nodes[i]
					next := nd.right
					if x[nd.feat] <= nd.thresh {
						next = nd.left
					}
					if next == i {
						return c.value[i], mask
					}
					i = next
				}
			}
			dim := c.NumFeatures()
			rows := make([]float64, len(pool)*dim)
			for i, row := range pool {
				copy(rows[i*dim:(i+1)*dim], row)
			}
			var items []int64
			var wantVal []float64
			var wantMask []uint64
			rng := rand.New(rand.NewSource(seed))
			for tr := 0; tr < c.NumTrees(); tr++ {
				if cnt := c.TreeNodeCount(tr); cnt <= 0 {
					t.Fatalf("tree %d: node count %d", tr, cnt)
				}
				for rep := 0; rep < 2; rep++ { // duplicate trees in the work list
					ri := rng.Intn(len(pool))
					v, msk := c.PredictTreePath(tr, pool[ri])
					rv, rmsk := refWalk(tr, pool[ri])
					if math.Float64bits(v) != math.Float64bits(rv) || msk != rmsk {
						t.Fatalf("tree %d row %d: PredictTreePath (%x, %#x) vs reference walk (%x, %#x)",
							tr, ri, math.Float64bits(v), msk, math.Float64bits(rv), rmsk)
					}
					if math.Float64bits(v) != math.Float64bits(c.PredictTree(tr, pool[ri])) {
						t.Fatalf("tree %d row %d: PredictTreePath value differs from PredictTree", tr, ri)
					}
					items = append(items, PackPair(int32(tr), ri*dim))
					wantVal = append(wantVal, v)
					wantMask = append(wantMask, msk)
				}
			}
			rng.Shuffle(len(items), func(i, j int) {
				items[i], items[j] = items[j], items[i]
				wantVal[i], wantVal[j] = wantVal[j], wantVal[i]
				wantMask[i], wantMask[j] = wantMask[j], wantMask[i]
			})
			vals := make([]float64, len(items))
			masks := make([]uint64, len(items))
			c.PredictPairsPath(items, rows, vals, masks)
			for j, it := range items {
				if math.Float64bits(vals[j]) != math.Float64bits(wantVal[j]) || masks[j] != wantMask[j] {
					t.Fatalf("item %d (tree %d): PredictPairsPath (%x, %#x), scalar walker (%x, %#x)",
						j, PairTree(it), math.Float64bits(vals[j]), masks[j], math.Float64bits(wantVal[j]), wantMask[j])
				}
			}
		}
	}
}

// TestCompiledTreeSplits pins the split-visitor contract the signature gate
// builds on: TreeSplits must report exactly the non-leaf SoA nodes of the
// tree — ordinals unique and in range, features and thresholds matching the
// nodes — and every ordinal PredictTreePath ever sets below the leaf must
// belong to a reported split.
func TestCompiledTreeSplits(t *testing.T) {
	m, pool := trainRandom(t, 909, nil)
	c := m.Compile()
	for tr := 0; tr < c.NumTrees(); tr++ {
		root := c.off[tr]
		cnt := c.TreeNodeCount(tr)
		splits := make(map[int]cnode)
		c.TreeSplits(tr, func(ord, f int, th float64) {
			if ord < 0 || ord >= cnt {
				t.Fatalf("tree %d: split ordinal %d out of [0, %d)", tr, ord, cnt)
			}
			if _, dup := splits[ord]; dup {
				t.Fatalf("tree %d: ordinal %d visited twice", tr, ord)
			}
			nd := c.nodes[root+int32(ord)]
			if int(nd.feat) != f || math.Float64bits(nd.thresh) != math.Float64bits(th) {
				t.Fatalf("tree %d ord %d: visitor reports (%d, %v), node holds (%d, %v)", tr, ord, f, th, nd.feat, nd.thresh)
			}
			if nd.left == root+int32(ord) && nd.right == root+int32(ord) {
				t.Fatalf("tree %d ord %d: visitor reported a self-loop leaf as a split", tr, ord)
			}
			splits[ord] = nd
		})
		for _, row := range pool[:16] {
			_, mask := c.PredictTreePath(tr, row)
			// Strip the leaf: every remaining path bit must be a split.
			for ord := 0; ord < cnt && cnt <= 64; ord++ {
				if mask&(1<<uint(ord)) == 0 {
					continue
				}
				nd := c.nodes[root+int32(ord)]
				if nd.left == root+int32(ord) && nd.right == root+int32(ord) {
					continue // the walk's terminal leaf
				}
				if _, ok := splits[ord]; !ok {
					t.Fatalf("tree %d: path visits ordinal %d but TreeSplits never reported it", tr, ord)
				}
			}
		}
	}
}

// TestCompiledPredictBatchParallelInvariance: the blocked parallel batch
// walk must be bit-identical for any worker count (it rides the
// determinism suite regex).
func TestCompiledPredictBatchParallelInvariance(t *testing.T) {
	m, _ := trainRandom(t, 21, nil)
	c := m.Compile()
	pool, _ := benchData(4*xgbRowBlock+17, m.NumFeatures(), 22)
	ref := c.PredictBatchParallel(pool, 1)
	for _, workers := range []int{4, 8} {
		got := c.PredictBatchParallel(pool, workers)
		for i := range ref {
			if math.Float64bits(ref[i]) != math.Float64bits(got[i]) {
				t.Fatalf("workers=%d row %d: parallel batch differs from serial", workers, i)
			}
		}
	}
}
