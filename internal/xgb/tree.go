package xgb

import (
	"math"
	"sort"

	"repro/internal/par"
)

// xgbRowBlock is the fixed row-block size of the parallel binning and
// prediction-update passes. Fixed (never derived from the worker count) so
// the decomposition is identical for any workers value; the per-row results
// are independent, so blocking only shapes scheduling, not bits.
const xgbRowBlock = 256

// xgbParallelMinWork is the approximate work-item count (rows for the
// row-parallel stages, rows x features for split search) below which a
// stage stays on the calling goroutine: pool dispatch costs a few
// microseconds, which small nodes cannot amortize.
const xgbParallelMinWork = 4096

// binner quantizes features into at most MaxBins buckets using quantile
// edges, once per training call. Splits are searched over bin boundaries.
// Bin indices live in one flat row-major byte matrix, so per-row access in
// the histogram and partition loops is a contiguous read.
type binner struct {
	bins  []uint8 // n x nfeat flat: [row*nfeat+feature] -> bin index
	nfeat int
	edges [][]float64 // [feature][bin] -> upper edge value (split threshold)
}

func newBinner(X [][]float64, maxBins, workers int) *binner {
	n := len(X)
	nfeat := len(X[0])
	b := &binner{
		bins:  make([]uint8, n*nfeat),
		nfeat: nfeat,
		edges: make([][]float64, nfeat),
	}
	// Quantile edges are independent per feature; each worker sorts its own
	// copy, and the edges only depend on the feature's values, so the
	// result is identical for any workers value.
	par.For(nfeat, workers, func(f int) {
		sorted := make([]float64, n)
		for i := 0; i < n; i++ {
			sorted[i] = X[i][f]
		}
		sort.Float64s(sorted)
		// Distinct quantile edges.
		var edges []float64
		if n <= maxBins {
			for i := 0; i < n; i++ {
				//lint:ignore floateq deduplicating sorted stored values; bin edges must be strictly distinct
				if i == 0 || sorted[i] != sorted[i-1] {
					edges = append(edges, sorted[i])
				}
			}
		} else {
			prev := math.Inf(-1)
			for k := 1; k <= maxBins; k++ {
				v := sorted[k*n/maxBins-1]
				//lint:ignore floateq deduplicating sorted stored values; bin edges must be strictly distinct
				if v != prev {
					edges = append(edges, v)
					prev = v
				}
			}
		}
		b.edges[f] = edges
	})
	// Row binning is per-row independent; fixed-size blocks keep the
	// decomposition worker-count invariant.
	blocks := (n + xgbRowBlock - 1) / xgbRowBlock
	if n < xgbParallelMinWork {
		workers = 1
	}
	par.For(blocks, workers, func(bk int) {
		lo, hi := bk*xgbRowBlock, (bk+1)*xgbRowBlock
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			row := b.bins[i*nfeat : (i+1)*nfeat]
			for f := 0; f < nfeat; f++ {
				row[f] = uint8(binIndex(b.edges[f], X[i][f]))
			}
		}
	})
	return b
}

// binIndex returns the smallest bin whose upper edge is >= v (the last bin
// for larger values).
func binIndex(edges []float64, v float64) int {
	lo, hi := 0, len(edges)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if edges[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// splitCand is one feature's best split: its gain and bin, with bin < 0
// meaning no admissible split.
type splitCand struct {
	gain float64
	bin  int
}

// treeScratch holds the per-Train buffers growTree reuses across rounds and
// nodes: per-feature histogram segments, the partition temp, the per-feature
// split candidates, the active-feature list, and the per-row leaf deltas.
// One allocation per Train call instead of several per tree node.
type treeScratch struct {
	// hist interleaves the gradient/hessian histograms as (g, h) pairs so a
	// bin hit touches one cache line: feature f's bin bi lives at
	// hist[2*(f*maxBins+bi)] (gradient) and +1 (hessian).
	hist   []float64
	part   []int32     // length n: right-half temp of the stable in-place partition
	best   []splitCand // per-feature split candidates
	active []int       // cols filtered to features with >= 2 bins
	// leaf[r] is the leaf weight row r reached in the tree just grown —
	// recorded as rows settle into leaves during the build, valid for the
	// sampled rows only.
	leaf []float64
}

func newTreeScratch(n, nfeat, maxBins int) *treeScratch {
	return &treeScratch{
		hist:   make([]float64, 2*nfeat*maxBins),
		part:   make([]int32, n),
		best:   make([]splitCand, nfeat),
		active: make([]int, 0, nfeat),
		leaf:   make([]float64, n),
	}
}

// growTree builds one regression tree on the sampled rows/features using
// histogram split finding with the XGBoost gain
//
//	gain = GL^2/(HL+lambda) + GR^2/(HR+lambda) - G^2/(H+lambda) - gamma.
//
// The histogram accumulation order per (feature, bin) is ascending row
// order on every path: the serial fill walks rows once with features inner
// (each bin accumulator still receives its terms in ascending row order),
// and the parallel fill gives every feature its own pass and its own
// histogram segment. Each feature's best (gain, bin) comes from a strict
// greater-than scan, and the winners fold serially in cols order with
// strict greater-than — the same (feature, bin) the one-loop serial scan
// selects, including every tie-break, for any worker count.
//
// As rows settle into terminal leaves, ws.leaf[r] records the leaf weight:
// the bin-comparison partition (bins[r][f] <= bin) is exactly the threshold
// traversal (x[f] <= edges[f][bin]), because binIndex returns the smallest
// bin whose upper edge is >= x[f]. Train uses this to update predictions
// without re-walking the tree.
func growTree(b *binner, grad, hess []float64, rows []int32, cols []int, p Params, ws *treeScratch, workers int) tree {
	maxBins := p.MaxBins
	t := tree{}
	// Features with < 2 bins can never split (the old per-feature guard);
	// dropping them here keeps the hot fill loops branch-free.
	active := ws.active[:0]
	for _, f := range cols {
		if len(b.edges[f]) >= 2 {
			active = append(active, f)
		}
	}
	var build func(rows []int32, depth int) int32
	build = func(rows []int32, depth int) int32 {
		var G, H float64
		for _, r := range rows {
			G += grad[r]
			H += hess[r]
		}
		leafValue := -G / (H + p.Lambda) * p.Eta
		id := int32(len(t.nodes))
		t.nodes = append(t.nodes, treeNode{feature: -1, value: leafValue})
		asLeaf := func() int32 {
			for _, r := range rows {
				ws.leaf[r] = leafValue
			}
			return id
		}
		if depth >= p.MaxDepth || len(rows) < 2 || len(active) == 0 {
			return asLeaf()
		}

		parentScore := G * G / (H + p.Lambda)
		scanFeature := func(f int) {
			cand := splitCand{bin: -1}
			nb := len(b.edges[f])
			hist := ws.hist[2*f*maxBins : 2*(f*maxBins+nb)]
			var GL, HL float64
			for bi := 0; bi < nb-1; bi++ {
				GL += hist[2*bi]
				HL += hist[2*bi+1]
				GR := G - GL
				HR := H - HL
				if HL < p.MinChildWeight || HR < p.MinChildWeight {
					continue
				}
				gain := GL*GL/(HL+p.Lambda) + GR*GR/(HR+p.Lambda) - parentScore - p.Gamma
				if gain > cand.gain {
					cand.gain = gain
					cand.bin = bi
				}
			}
			ws.best[f] = cand
		}
		if workers > 1 && len(rows)*len(active) >= xgbParallelMinWork {
			// Parallel: each feature owns its histogram segment and its
			// ws.best slot — one fill pass per feature, ascending rows.
			par.For(len(active), workers, func(ci int) {
				f := active[ci]
				nb := len(b.edges[f])
				hist := ws.hist[2*f*maxBins : 2*(f*maxBins+nb)]
				for i := range hist {
					hist[i] = 0
				}
				for _, r := range rows {
					bi := b.bins[int(r)*b.nfeat+f]
					hist[2*bi] += grad[r]
					hist[2*bi+1] += hess[r]
				}
				scanFeature(f)
			})
		} else {
			// Serial: one pass over rows filling every feature's histogram.
			// Same per-(feature, bin) accumulation order as above.
			for _, f := range active {
				nb := len(b.edges[f])
				hist := ws.hist[2*f*maxBins : 2*(f*maxBins+nb)]
				for i := range hist {
					hist[i] = 0
				}
			}
			for _, r := range rows {
				row := b.bins[int(r)*b.nfeat:]
				g, h := grad[r], hess[r]
				for _, f := range active {
					bi := int(row[f])
					ws.hist[2*(f*maxBins+bi)] += g
					ws.hist[2*(f*maxBins+bi)+1] += h
				}
			}
			for _, f := range active {
				scanFeature(f)
			}
		}
		bestGain := 0.0
		bestFeat := -1
		bestBin := 0
		for _, f := range active {
			if c := ws.best[f]; c.bin >= 0 && c.gain > bestGain {
				bestGain, bestFeat, bestBin = c.gain, f, c.bin
			}
		}
		if bestFeat < 0 {
			return asLeaf()
		}

		// Stable in-place partition: left rows compact to the front (the
		// write index never passes the read index), right rows stage in the
		// shared temp and copy back behind them — same left/right order as
		// the append-based loop, no per-node allocations. The temp is free
		// again before either recursive call partitions its own subslice.
		threshold := b.edges[bestFeat][bestBin]
		nl, nr := 0, 0
		for _, r := range rows {
			if int(b.bins[int(r)*b.nfeat+bestFeat]) <= bestBin {
				rows[nl] = r
				nl++
			} else {
				ws.part[nr] = r
				nr++
			}
		}
		if nl == 0 || nr == 0 {
			// rows is still intact here: an all-left partition rewrites
			// every element in place and an all-right one writes nothing.
			return asLeaf()
		}
		copy(rows[nl:], ws.part[:nr])
		l := build(rows[:nl], depth+1)
		r := build(rows[nl:], depth+1)
		t.nodes[id] = treeNode{feature: bestFeat, threshold: threshold, left: l, right: r}
		return id
	}
	build(rows, 0)
	return t
}
