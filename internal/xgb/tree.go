package xgb

import (
	"math"
	"sort"
)

// binner quantizes features into at most MaxBins buckets using quantile
// edges, once per training call. Splits are searched over bin boundaries.
type binner struct {
	bins  [][]uint8   // [row][feature] -> bin index
	edges [][]float64 // [feature][bin] -> upper edge value (split threshold)
}

func newBinner(X [][]float64, maxBins int) *binner {
	n := len(X)
	nfeat := len(X[0])
	b := &binner{
		bins:  make([][]uint8, n),
		edges: make([][]float64, nfeat),
	}
	vals := make([]float64, n)
	thresholds := make([][]float64, nfeat)
	for f := 0; f < nfeat; f++ {
		for i := 0; i < n; i++ {
			vals[i] = X[i][f]
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		// Distinct quantile edges.
		var edges []float64
		if n <= maxBins {
			for i := 0; i < n; i++ {
				//lint:ignore floateq deduplicating sorted stored values; bin edges must be strictly distinct
				if i == 0 || sorted[i] != sorted[i-1] {
					edges = append(edges, sorted[i])
				}
			}
		} else {
			prev := math.Inf(-1)
			for k := 1; k <= maxBins; k++ {
				v := sorted[k*n/maxBins-1]
				//lint:ignore floateq deduplicating sorted stored values; bin edges must be strictly distinct
				if v != prev {
					edges = append(edges, v)
					prev = v
				}
			}
		}
		thresholds[f] = edges
	}
	for i := 0; i < n; i++ {
		row := make([]uint8, nfeat)
		for f := 0; f < nfeat; f++ {
			row[f] = uint8(binIndex(thresholds[f], X[i][f]))
		}
		b.bins[i] = row
	}
	b.edges = thresholds
	return b
}

// binIndex returns the smallest bin whose upper edge is >= v (the last bin
// for larger values).
func binIndex(edges []float64, v float64) int {
	lo, hi := 0, len(edges)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if edges[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// growTree builds one regression tree on the sampled rows/features using
// histogram split finding with the XGBoost gain
//
//	gain = GL^2/(HL+lambda) + GR^2/(HR+lambda) - G^2/(H+lambda) - gamma.
func growTree(b *binner, grad, hess []float64, rows []int32, cols []int, p Params) tree {
	t := tree{}
	var build func(rows []int32, depth int) int32
	build = func(rows []int32, depth int) int32 {
		var G, H float64
		for _, r := range rows {
			G += grad[r]
			H += hess[r]
		}
		leafValue := -G / (H + p.Lambda) * p.Eta
		id := int32(len(t.nodes))
		t.nodes = append(t.nodes, treeNode{feature: -1, value: leafValue})
		if depth >= p.MaxDepth || len(rows) < 2 {
			return id
		}

		parentScore := G * G / (H + p.Lambda)
		bestGain := 0.0
		bestFeat := -1
		bestBin := 0
		var gHist, hHist [256]float64
		for _, f := range cols {
			nb := len(b.edges[f])
			if nb < 2 {
				continue
			}
			for i := 0; i < nb; i++ {
				gHist[i], hHist[i] = 0, 0
			}
			for _, r := range rows {
				bi := b.bins[r][f]
				gHist[bi] += grad[r]
				hHist[bi] += hess[r]
			}
			var GL, HL float64
			for bi := 0; bi < nb-1; bi++ {
				GL += gHist[bi]
				HL += hHist[bi]
				GR := G - GL
				HR := H - HL
				if HL < p.MinChildWeight || HR < p.MinChildWeight {
					continue
				}
				gain := GL*GL/(HL+p.Lambda) + GR*GR/(HR+p.Lambda) - parentScore - p.Gamma
				if gain > bestGain {
					bestGain = gain
					bestFeat = f
					bestBin = bi
				}
			}
		}
		if bestFeat < 0 {
			return id
		}

		threshold := b.edges[bestFeat][bestBin]
		var left, right []int32
		for _, r := range rows {
			if int(b.bins[r][bestFeat]) <= bestBin {
				left = append(left, r)
			} else {
				right = append(right, r)
			}
		}
		if len(left) == 0 || len(right) == 0 {
			return id
		}
		l := build(left, depth+1)
		r := build(right, depth+1)
		t.nodes[id] = treeNode{feature: bestFeat, threshold: threshold, left: l, right: r}
		return id
	}
	build(rows, 0)
	return t
}
