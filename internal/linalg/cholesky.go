package linalg

import (
	"errors"
	"math"

	"repro/internal/par"
)

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L Lᵀ, enabling O(n²) linear solves after an O(n³)
// factorization. It backs the Gaussian-process evaluation function.
type Cholesky struct {
	n int
	l []float64 // row-major lower triangle (full n x n storage)
}

// ErrNotPositiveDefinite is returned when a pivot is non-positive; callers
// typically retry with a larger diagonal jitter.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// cholParallelFlops is the per-column flop count (remaining rows times
// column index) below which the row update stays on the calling goroutine:
// dispatching the pool costs a few microseconds, which small columns cannot
// amortize.
const cholParallelFlops = 1 << 15

// cholBlockRows is the number of rows a parallel column-update work item
// owns. Fixed (never derived from the worker count) so the decomposition is
// identical for any workers value; the values themselves are independent
// per row, so this only shapes scheduling, not results.
const cholBlockRows = 32

// NewCholesky factorizes the symmetric matrix a (only the lower triangle is
// read) with `jitter` added to the diagonal for numerical stabilization,
// using the shared worker pool for the per-column row updates.
func NewCholesky(a *Matrix, jitter float64) (*Cholesky, error) {
	return NewCholeskyParallel(a, jitter, par.Workers())
}

// NewCholeskyParallel is NewCholesky with an explicit worker count.
//
// The factorization is left-looking and proceeds column by column: the
// diagonal pivot l_jj first, then every l_ij (i > j) of the column. Each
// element is the strict ascending-k accumulation
//
//	l_ij = (a_ij - Σ_{k<j} l_ik·l_jk) / l_jj
//
// of the textbook serial algorithm — one accumulator, same order — so every
// element carries bits identical to the serial reference for any workers
// value. Within a column the row elements are mutually independent, which
// is where the parallelism (and, via four-row unrolling, the instruction-
// level parallelism) comes from. Failure behaviour matches the serial
// reference exactly: the first non-positive pivot in column order reports
// ErrNotPositiveDefinite.
func NewCholeskyParallel(a *Matrix, jitter float64, workers int) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Cholesky requires a square matrix")
	}
	if workers <= 0 {
		workers = par.Workers()
	}
	n := a.Rows
	l := make([]float64, n*n)
	for j := 0; j < n; j++ {
		// Pivot: strict ascending-k accumulation, exactly the serial order.
		sum := a.At(j, j) + jitter
		rowJ := l[j*n : j*n+j]
		for _, v := range rowJ {
			sum -= v * v
		}
		if sum <= 0 {
			return nil, ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(sum)
		l[j*n+j] = ljj

		rows := n - (j + 1)
		if rows <= 0 {
			continue
		}
		if workers <= 1 || rows*j < cholParallelFlops {
			cholColumnRows(a, l, n, j, ljj, j+1, n)
			continue
		}
		blocks := (rows + cholBlockRows - 1) / cholBlockRows
		par.For(blocks, workers, func(b int) {
			lo := j + 1 + b*cholBlockRows
			hi := lo + cholBlockRows
			if hi > n {
				hi = n
			}
			cholColumnRows(a, l, n, j, ljj, lo, hi)
		})
	}
	return &Cholesky{n: n, l: l}, nil
}

// cholColumnRows computes l_ij for i in [lo, hi) of column j, four rows per
// pass so the l_jk loads are amortized across four independent accumulator
// chains. Each accumulator runs in strict ascending-k order, so every
// element is bit-identical to the one-row-at-a-time serial loop.
func cholColumnRows(a *Matrix, l []float64, n, j int, ljj float64, lo, hi int) {
	rowJ := l[j*n : j*n+j]
	i := lo
	for ; i+4 <= hi; i += 4 {
		r0 := l[i*n : i*n+j][:len(rowJ)]
		r1 := l[(i+1)*n : (i+1)*n+j][:len(rowJ)]
		r2 := l[(i+2)*n : (i+2)*n+j][:len(rowJ)]
		r3 := l[(i+3)*n : (i+3)*n+j][:len(rowJ)]
		s0 := a.At(i, j)
		s1 := a.At(i+1, j)
		s2 := a.At(i+2, j)
		s3 := a.At(i+3, j)
		for k, v := range rowJ {
			s0 -= r0[k] * v
			s1 -= r1[k] * v
			s2 -= r2[k] * v
			s3 -= r3[k] * v
		}
		l[i*n+j] = s0 / ljj
		l[(i+1)*n+j] = s1 / ljj
		l[(i+2)*n+j] = s2 / ljj
		l[(i+3)*n+j] = s3 / ljj
	}
	for ; i < hi; i++ {
		sum := a.At(i, j)
		ri := l[i*n : i*n+j]
		for k, v := range rowJ {
			sum -= ri[k] * v
		}
		l[i*n+j] = sum / ljj
	}
}

// Solve returns x with (L Lᵀ) x = b, overwriting nothing.
func (c *Cholesky) Solve(b []float64) []float64 {
	if len(b) != c.n {
		//lint:ignore panicpath kernel invariant: dimension mismatch is a programmer error, panics like gonum/mat
		panic("linalg: Cholesky.Solve dimension mismatch")
	}
	n := c.n
	// Forward substitution: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= c.l[i*n+k] * y[k]
		}
		y[i] = sum / c.l[i*n+i]
	}
	// Back substitution: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= c.l[k*n+i] * x[k]
		}
		x[i] = sum / c.l[i*n+i]
	}
	return x
}

// SolveVecL returns y with L y = b (forward substitution only), used for
// predictive-variance computations.
func (c *Cholesky) SolveVecL(b []float64) []float64 {
	if len(b) != c.n {
		//lint:ignore panicpath kernel invariant: dimension mismatch is a programmer error, panics like gonum/mat
		panic("linalg: Cholesky.SolveVecL dimension mismatch")
	}
	n := c.n
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= c.l[i*n+k] * y[k]
		}
		y[i] = sum / c.l[i*n+i]
	}
	return y
}

// LogDet returns log det(A) = 2 Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	s := 0.0
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l[i*c.n+i])
	}
	return 2 * s
}

// N returns the factored dimension.
func (c *Cholesky) N() int { return c.n }
