package linalg

import (
	"errors"
	"math"
)

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L Lᵀ, enabling O(n²) linear solves after an O(n³)
// factorization. It backs the Gaussian-process evaluation function.
type Cholesky struct {
	n int
	l []float64 // row-major lower triangle (full n x n storage)
}

// ErrNotPositiveDefinite is returned when a pivot is non-positive; callers
// typically retry with a larger diagonal jitter.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// NewCholesky factorizes the symmetric matrix a (only the lower triangle is
// read) with `jitter` added to the diagonal for numerical stabilization.
func NewCholesky(a *Matrix, jitter float64) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Cholesky requires a square matrix")
	}
	n := a.Rows
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			if i == j {
				sum += jitter
			}
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrNotPositiveDefinite
				}
				l[i*n+j] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Solve returns x with (L Lᵀ) x = b, overwriting nothing.
func (c *Cholesky) Solve(b []float64) []float64 {
	if len(b) != c.n {
		//lint:ignore panicpath kernel invariant: dimension mismatch is a programmer error, panics like gonum/mat
		panic("linalg: Cholesky.Solve dimension mismatch")
	}
	n := c.n
	// Forward substitution: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= c.l[i*n+k] * y[k]
		}
		y[i] = sum / c.l[i*n+i]
	}
	// Back substitution: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= c.l[k*n+i] * x[k]
		}
		x[i] = sum / c.l[i*n+i]
	}
	return x
}

// SolveVecL returns y with L y = b (forward substitution only), used for
// predictive-variance computations.
func (c *Cholesky) SolveVecL(b []float64) []float64 {
	if len(b) != c.n {
		//lint:ignore panicpath kernel invariant: dimension mismatch is a programmer error, panics like gonum/mat
		panic("linalg: Cholesky.SolveVecL dimension mismatch")
	}
	n := c.n
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= c.l[i*n+k] * y[k]
		}
		y[i] = sum / c.l[i*n+i]
	}
	return y
}

// LogDet returns log det(A) = 2 Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	s := 0.0
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l[i*c.n+i])
	}
	return 2 * s
}

// N returns the factored dimension.
func (c *Cholesky) N() int { return c.n }
