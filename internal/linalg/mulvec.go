package linalg

import (
	"fmt"

	"repro/internal/par"
)

// mulVecBlockRows is the number of matrix rows a MulVecInto work item
// processes. The value is a fixed constant (never derived from the worker
// count) so the block decomposition — and therefore every rounding decision —
// is identical for any workers value.
const mulVecBlockRows = 64

// mulVecRows computes dst[i] = row_i(data) · x for i in [lo, hi), skipping
// masked rows. Each dst[i] is the canonical 8-lane dot product of row i
// with x (see laneDotGeneric), so every element carries the same bits
// regardless of which path — serial, blocked-parallel, assembly or portable
// fallback — produced it.
func mulVecRows(data []float64, cols int, x, dst []float64, lo, hi int, skip []bool) {
	for i := lo; i < hi; i++ {
		if skip == nil || !skip[i] {
			dst[i] = laneDot(data[i*cols : i*cols+cols][:len(x)], x)
		}
	}
}

// MulVecInto computes dst = M·x, distributing fixed-size row blocks over at
// most workers goroutines (workers <= 0 means par.Workers()). Each dst[i] is
// the canonical 8-lane dot product of row i with x, written only by the
// worker owning its block, so the result is bit-identical for every worker
// count and matches the serial laneDot reference exactly.
func (m *Matrix) MulVecInto(dst, x []float64, workers int) {
	m.mulVecMasked(dst, x, nil, workers)
}

// MulVecMaskedInto is MulVecInto except rows i with skip[i] true are not
// computed and dst[i] is left untouched. TED uses this to avoid the dead
// per-pick dot products of already-selected rows. A nil skip computes every
// row.
func (m *Matrix) MulVecMaskedInto(dst, x []float64, skip []bool, workers int) {
	m.mulVecMasked(dst, x, skip, workers)
}

func (m *Matrix) mulVecMasked(dst, x []float64, skip []bool, workers int) {
	if len(x) != m.Cols || len(dst) != m.Rows || (skip != nil && len(skip) != m.Rows) {
		//lint:ignore panicpath kernel invariant: dimension mismatch is a programmer error, panics like gonum/mat
		panic(fmt.Sprintf("linalg: MulVecInto dimension mismatch: %dx%d matrix, len(x)=%d, len(dst)=%d", m.Rows, m.Cols, len(x), len(dst)))
	}
	if workers <= 0 {
		workers = par.Workers()
	}
	blocks := (m.Rows + mulVecBlockRows - 1) / mulVecBlockRows
	if blocks <= 1 || workers <= 1 {
		mulVecRows(m.Data, m.Cols, x, dst, 0, m.Rows, skip)
		return
	}
	par.For(blocks, workers, func(b int) {
		lo := b * mulVecBlockRows
		hi := lo + mulVecBlockRows
		if hi > m.Rows {
			hi = m.Rows
		}
		mulVecRows(m.Data, m.Cols, x, dst, lo, hi, skip)
	})
}

// ColNorms2Into is ColNorms2 writing into a caller-provided slice, so hot
// paths can reuse a pooled buffer. The accumulation order (rows ascending,
// one running sum per column) is identical to ColNorms2, bit for bit.
func (m *Matrix) ColNorms2Into(out []float64) {
	if len(out) != m.Cols {
		//lint:ignore panicpath kernel invariant: dimension mismatch is a programmer error, panics like gonum/mat
		panic(fmt.Sprintf("linalg: ColNorms2Into needs len(out)=%d, got %d", m.Cols, len(out)))
	}
	for i := range out {
		out[i] = 0
	}
	for i := 0; i < m.Rows; i++ {
		addSquares(out, m.Row(i))
	}
}
