// Package linalg provides the small dense linear-algebra kernels needed by
// transductive experimental design: Gram/distance matrices, column norms and
// symmetric rank-1 downdates. It is not a general matrix library; it holds
// exactly what the active-learning core needs, implemented with flat
// row-major storage for cache friendliness.
package linalg

import (
	"fmt"
	"math"

	"repro/internal/par"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zeroed r x c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		//lint:ignore panicpath kernel invariant: negative dims are a programmer error, panics like gonum/mat
		panic(fmt.Sprintf("linalg: negative matrix dims %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// ColNorm2 returns the squared Euclidean norm of column j.
func (m *Matrix) ColNorm2(j int) float64 {
	s := 0.0
	for i := 0; i < m.Rows; i++ {
		v := m.Data[i*m.Cols+j]
		s += v * v
	}
	return s
}

// ColNorms2 returns the squared Euclidean norms of all columns. It walks the
// matrix row-major once, which is far faster than per-column passes.
func (m *Matrix) ColNorms2() []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v * v
		}
	}
	return out
}

// Rank1Downdate applies K <- K - K_x K_x^T / denom in place, where K_x is
// column x of the current K. This is line 5 of the paper's Algorithm 1.
// It panics if the matrix is not square or denom is not positive.
func (m *Matrix) Rank1Downdate(x int, denom float64) {
	if m.Rows != m.Cols {
		//lint:ignore panicpath kernel invariant: shape misuse is a programmer error, panics like gonum/mat
		panic("linalg: Rank1Downdate requires a square matrix")
	}
	if denom <= 0 {
		//lint:ignore panicpath kernel invariant: a non-positive denominator means the caller broke the SPD precondition
		panic("linalg: Rank1Downdate requires positive denominator")
	}
	n := m.Rows
	col := make([]float64, n)
	for i := 0; i < n; i++ {
		col[i] = m.Data[i*n+x]
	}
	inv := 1.0 / denom
	for i := 0; i < n; i++ {
		ci := col[i] * inv
		if ci == 0 {
			continue
		}
		row := m.Row(i)
		for j := 0; j < n; j++ {
			row[j] -= ci * col[j]
		}
	}
}

// Dist2 returns the squared Euclidean distance between vectors a and b,
// which must have equal length.
func Dist2(a, b []float64) float64 {
	if len(a) != len(b) {
		//lint:ignore panicpath kernel invariant: length mismatch is a programmer error, panics like gonum/mat
		panic(fmt.Sprintf("linalg: Dist2 length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 { return math.Sqrt(Dist2(a, b)) }

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		//lint:ignore panicpath kernel invariant: length mismatch is a programmer error, panics like gonum/mat
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Kernel computes a pairwise similarity between two feature vectors. TED
// builds its K matrix from one of these.
type Kernel interface {
	// Eval returns k(a, b).
	Eval(a, b []float64) float64
	// Name identifies the kernel in logs and records.
	Name() string
}

// RBFKernel is exp(-gamma * ||a-b||^2), the usual smooth choice for TED.
type RBFKernel struct{ Gamma float64 }

// Eval implements Kernel.
func (k RBFKernel) Eval(a, b []float64) float64 { return math.Exp(-k.Gamma * Dist2(a, b)) }

// Name implements Kernel.
func (k RBFKernel) Name() string { return fmt.Sprintf("rbf(gamma=%g)", k.Gamma) }

// LinearKernel is the plain inner product, the kernel of the original TED
// formulation (Yu, Bi, Tresp 2006).
type LinearKernel struct{}

// Eval implements Kernel.
func (LinearKernel) Eval(a, b []float64) float64 { return Dot(a, b) }

// Name implements Kernel.
func (LinearKernel) Name() string { return "linear" }

// DistanceKernel uses the raw Euclidean distance as the matrix entry,
// matching the paper's literal statement that "k(v1, v2) ... is computed as
// Euclidean distance".
type DistanceKernel struct{}

// Eval implements Kernel.
func (DistanceKernel) Eval(a, b []float64) float64 { return Dist(a, b) }

// Name implements Kernel.
func (DistanceKernel) Name() string { return "euclidean" }

// gramParallelThreshold is the matrix order below which GramMatrix stays
// serial: the O(n²) kernel evaluations of a small matrix cost less than
// spinning up the pool.
const gramParallelThreshold = 128

// GramMatrix builds the |V| x |V| kernel matrix over the given vectors.
// The result is symmetric; only the upper triangle is computed directly.
// Large matrices (the TED/BTED batches) are computed with a row-block
// worker pool; see GramMatrixParallel.
func GramMatrix(vecs [][]float64, k Kernel) *Matrix {
	workers := 1
	if len(vecs) >= gramParallelThreshold {
		workers = par.Workers()
	}
	return GramMatrixParallel(vecs, k, workers)
}

// GramMatrixParallel is GramMatrix with an explicit worker count. Rows of
// the upper triangle are distributed over the pool; each (i, j) pair is
// evaluated exactly once and written to its two mirror slots by exactly one
// worker, so the result is bit-identical for every workers value. The
// kernel must be safe for concurrent Eval calls (all in-repo kernels are
// stateless value types).
func GramMatrixParallel(vecs [][]float64, k Kernel, workers int) *Matrix {
	n := len(vecs)
	m := NewMatrix(n, n)
	par.For(n, workers, func(i int) {
		vi := vecs[i]
		for j := i; j < n; j++ {
			v := k.Eval(vi, vecs[j])
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	})
	return m
}
