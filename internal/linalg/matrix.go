// Package linalg provides the small dense linear-algebra kernels needed by
// transductive experimental design: Gram/distance matrices, column norms and
// symmetric rank-1 downdates. It is not a general matrix library; it holds
// exactly what the active-learning core needs, implemented with flat
// row-major storage for cache friendliness.
package linalg

import (
	"fmt"
	"math"

	"repro/internal/par"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zeroed r x c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		//lint:ignore panicpath kernel invariant: negative dims are a programmer error, panics like gonum/mat
		panic(fmt.Sprintf("linalg: negative matrix dims %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// Reshape resizes m to r x c, reusing the backing array when its capacity
// allows and allocating otherwise. Contents are unspecified after the call
// (hot paths that reuse pooled matrices overwrite every element anyway).
func (m *Matrix) Reshape(r, c int) {
	if r < 0 || c < 0 {
		//lint:ignore panicpath kernel invariant: negative dims are a programmer error, panics like gonum/mat
		panic(fmt.Sprintf("linalg: negative matrix dims %dx%d", r, c))
	}
	if need := r * c; cap(m.Data) >= need {
		m.Data = m.Data[:need]
	} else {
		m.Data = make([]float64, need)
	}
	m.Rows, m.Cols = r, c
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// ColNorm2 returns the squared Euclidean norm of column j.
func (m *Matrix) ColNorm2(j int) float64 {
	s := 0.0
	for i := 0; i < m.Rows; i++ {
		v := m.Data[i*m.Cols+j]
		s += v * v
	}
	return s
}

// ColNorms2 returns the squared Euclidean norms of all columns. It walks the
// matrix row-major once (packed SSE2 on amd64); each column's accumulator
// receives its terms in ascending row order, exactly like the textbook
// per-column loop.
func (m *Matrix) ColNorms2() []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		addSquares(out, m.Row(i))
	}
	return out
}

// Rank1Downdate applies K <- K - K_x K_x^T / denom in place, where K_x is
// column x of the current K. This is line 5 of the paper's Algorithm 1.
// It panics if the matrix is not square or denom is not positive.
func (m *Matrix) Rank1Downdate(x int, denom float64) {
	if m.Rows != m.Cols {
		//lint:ignore panicpath kernel invariant: shape misuse is a programmer error, panics like gonum/mat
		panic("linalg: Rank1Downdate requires a square matrix")
	}
	if denom <= 0 {
		//lint:ignore panicpath kernel invariant: a non-positive denominator means the caller broke the SPD precondition
		panic("linalg: Rank1Downdate requires positive denominator")
	}
	n := m.Rows
	col := make([]float64, n)
	for i := 0; i < n; i++ {
		col[i] = m.Data[i*n+x]
	}
	inv := 1.0 / denom
	for i := 0; i < n; i++ {
		ci := col[i] * inv
		if ci == 0 {
			continue
		}
		row := m.Row(i)
		for j := 0; j < n; j++ {
			row[j] -= ci * col[j]
		}
	}
}

// Dist2 returns the squared Euclidean distance between vectors a and b,
// which must have equal length.
func Dist2(a, b []float64) float64 {
	if len(a) != len(b) {
		//lint:ignore panicpath kernel invariant: length mismatch is a programmer error, panics like gonum/mat
		panic(fmt.Sprintf("linalg: Dist2 length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 { return math.Sqrt(Dist2(a, b)) }

// dist2Lanes is the 4-lane squared Euclidean distance used by the RBF Gram
// fast path. Lane r accumulates the terms at indices ≡ r (mod 4) in
// ascending order, the lanes fold as ((d0+d2)+(d1+d3)), and the tail is
// added serially — four independent chains instead of Dist2's single
// latency-bound accumulator. The split never depends on the caller, so the
// result is deterministic. Lengths must match (gram callers guarantee it).
func dist2Lanes(a, b []float64) float64 {
	var d0, d1, d2, d3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		e0 := a[i] - b[i]
		e1 := a[i+1] - b[i+1]
		e2 := a[i+2] - b[i+2]
		e3 := a[i+3] - b[i+3]
		d0 += e0 * e0
		d1 += e1 * e1
		d2 += e2 * e2
		d3 += e3 * e3
	}
	t := (d0 + d2) + (d1 + d3)
	for ; i < len(a); i++ {
		e := a[i] - b[i]
		t += e * e
	}
	return t
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		//lint:ignore panicpath kernel invariant: length mismatch is a programmer error, panics like gonum/mat
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Kernel computes a pairwise similarity between two feature vectors. TED
// builds its K matrix from one of these.
type Kernel interface {
	// Eval returns k(a, b).
	Eval(a, b []float64) float64
	// Name identifies the kernel in logs and records.
	Name() string
}

// RBFKernel is exp(-gamma * ||a-b||^2), the usual smooth choice for TED.
type RBFKernel struct{ Gamma float64 }

// Eval implements Kernel.
func (k RBFKernel) Eval(a, b []float64) float64 { return math.Exp(-k.Gamma * Dist2(a, b)) }

// Name implements Kernel.
func (k RBFKernel) Name() string { return fmt.Sprintf("rbf(gamma=%g)", k.Gamma) }

// LinearKernel is the plain inner product, the kernel of the original TED
// formulation (Yu, Bi, Tresp 2006).
type LinearKernel struct{}

// Eval implements Kernel.
func (LinearKernel) Eval(a, b []float64) float64 { return Dot(a, b) }

// Name implements Kernel.
func (LinearKernel) Name() string { return "linear" }

// DistanceKernel uses the raw Euclidean distance as the matrix entry,
// matching the paper's literal statement that "k(v1, v2) ... is computed as
// Euclidean distance".
type DistanceKernel struct{}

// Eval implements Kernel.
func (DistanceKernel) Eval(a, b []float64) float64 { return Dist(a, b) }

// Name implements Kernel.
func (DistanceKernel) Name() string { return "euclidean" }

// gramParallelThreshold is the matrix order below which GramMatrix stays
// serial. Measured with BenchmarkGramMatrixWorkers (d=8 RBF build, serial
// vs forced onto the pool): pool dispatch costs a flat ~4-6µs per build, or
// ~40% of an n=32 build, ~14% at n=64, ~6% at n=96 and ~3% at n=128, after
// which it disappears into the O(n²) kernel evaluations. 128 is the first
// sweep point where the dispatch overhead is inside run-to-run noise, so a
// multi-core pool win is not squandered and single-core boxes lose ~3% at
// worst. Re-run the sweep when the gram fast path changes materially.
const gramParallelThreshold = 128

// GramMatrix builds the |V| x |V| kernel matrix over the given vectors.
// The result is symmetric; only the upper triangle is computed directly.
// Large matrices (the TED/BTED batches) are computed with a row-block
// worker pool; see GramMatrixParallel.
func GramMatrix(vecs [][]float64, k Kernel) *Matrix {
	workers := 1
	if len(vecs) >= gramParallelThreshold {
		workers = par.Workers()
	}
	return GramMatrixParallel(vecs, k, workers)
}

// GramMatrixParallel is GramMatrix with an explicit worker count. Rows of
// the upper triangle are distributed over the pool; each (i, j) pair is
// evaluated exactly once and written to its two mirror slots by exactly one
// worker, so the result is bit-identical for every workers value. The
// kernel must be safe for concurrent Eval calls (all in-repo kernels are
// stateless value types).
func GramMatrixParallel(vecs [][]float64, k Kernel, workers int) *Matrix {
	m := NewMatrix(len(vecs), len(vecs))
	gramInto(m, vecs, k, workers)
	return m
}

// GramMatrixInto is GramMatrixParallel writing into dst (reshaped to
// n x n, backing storage reused when possible), so hot loops — BTED runs
// B+1 TED passes over same-sized batches — can reuse one pooled matrix
// instead of allocating ~n²·8 bytes per pass. Every element is written, and
// each carries bits identical to GramMatrix's for any workers value.
func GramMatrixInto(dst *Matrix, vecs [][]float64, k Kernel, workers int) {
	dst.Reshape(len(vecs), len(vecs))
	gramInto(dst, vecs, k, workers)
}

func gramInto(m *Matrix, vecs [][]float64, k Kernel, workers int) {
	n := len(vecs)
	// Fast path for the RBF kernel (the default and by far the hottest):
	// devirtualized, with the 4-lane squared distance. The lane split is a
	// fixed property of this path — never data- or worker-dependent — so
	// entries are deterministic and bit-identical for every workers value
	// (they may differ from serial RBFKernel.Eval in the last ulp, which no
	// caller pins).
	if rbf, ok := k.(RBFKernel); ok {
		gamma := rbf.Gamma
		par.For(n, workers, func(i int) {
			vi := vecs[i]
			for j := i; j < n; j++ {
				v := math.Exp(-gamma * dist2Lanes(vi, vecs[j]))
				m.Set(i, j, v)
				m.Set(j, i, v)
			}
		})
		return
	}
	par.For(n, workers, func(i int) {
		vi := vecs[i]
		for j := i; j < n; j++ {
			v := k.Eval(vi, vecs[j])
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	})
}
