//go:build amd64 && !purego

package linalg

// laneDotSSE2 computes the canonical 8-lane inner product (see
// laneDotGeneric for the bit-exact specification) with SSE2 packed
// arithmetic — part of the amd64 baseline, so it needs no CPU-feature
// detection. len(b) must be at least len(a).
//
//go:noescape
func laneDotSSE2(a, b []float64) float64

// laneDotAVX is laneDotSSE2 with 256-bit registers: two 4-wide accumulators
// hold the same eight lanes (indices mod 8) and reduce with the same fixed
// tree, so the result is bit-identical — AVX multiplies and adds round each
// lane exactly like their scalar/SSE2 counterparts (no FMA is used). Only
// called when cpuHasAVX reports AVX plus OS ymm-state support.
//
//go:noescape
func laneDotAVX(a, b []float64) float64

// cpuHasAVX reports CPUID AVX+OSXSAVE and XGETBV xmm/ymm state enablement.
func cpuHasAVX() bool

// laneDotImpl is fixed at init, so dispatch is one indirect call and the
// choice never varies within a process (nor, numerically, across machines).
var laneDotImpl = laneDotSSE2

func init() {
	if cpuHasAVX() {
		laneDotImpl = laneDotAVX
	}
}

func laneDot(a, b []float64) float64 { return laneDotImpl(a, b) }

// addSquares accumulates dst[j] += src[j]² with SSE2 packed arithmetic.
// Per-element accumulation order is untouched (each dst[j] is independent),
// so the result is bit-identical to addSquaresGeneric. len(src) must be at
// least len(dst).
//
//go:noescape
func addSquares(dst, src []float64)
