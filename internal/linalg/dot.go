package linalg

import "fmt"

// LaneDot returns the canonical 8-lane inner product of a and b — the same
// bits as the mat-vec kernels produce per row (see laneDotGeneric for the
// exact lane and reduction order). Hot callers that need dot products
// bit-compatible with MulVecInto use this instead of the strictly serial
// Dot. The slices must have equal length.
func LaneDot(a, b []float64) float64 {
	if len(a) != len(b) {
		//lint:ignore panicpath kernel invariant: length mismatch is a programmer error, panics like gonum/mat
		panic(fmt.Sprintf("linalg: LaneDot length mismatch %d vs %d", len(a), len(b)))
	}
	return laneDot(a, b)
}

// laneDot is the canonical 8-lane inner product used by the hot mat-vec and
// TED-correction paths. Lane r accumulates the terms at indices ≡ r (mod 8),
// each lane in ascending index order, and the lanes fold in the fixed tree
//
//	((s0+s4)+(s2+s6)) + ((s1+s5)+(s3+s7))
//
// with the tail (len % 8 trailing elements) added serially afterwards. The
// lane structure is a property of the KERNEL, not of the hardware: the SSE2
// assembly (dot_amd64.s) keeps lanes 2r/2r+1 in the halves of one 128-bit
// register and reduces with exactly this tree, so amd64 and the portable
// fallback produce identical bits, and so does every worker count — the
// split never depends on the caller. Eight independent chains also keep both
// floating-point ports busy, which is where the speedup over a single serial
// accumulator comes from.
//
// Callers must ensure len(b) >= len(a); only the first len(a) elements
// participate. All in-package callers pass equal-length slices.
// addSquaresGeneric accumulates dst[j] += src[j]·src[j]. Every dst[j] is an
// independent accumulator, so vectorizing across j (as the SSE2 version
// does) cannot change any rounding: the result is bit-identical to this
// loop on every platform. len(src) must be at least len(dst).
func addSquaresGeneric(dst, src []float64) {
	for j := range dst {
		v := src[j]
		dst[j] += v * v
	}
}

func laneDotGeneric(a, b []float64) float64 {
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	i := 0
	for ; i+8 <= len(a); i += 8 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
		s4 += a[i+4] * b[i+4]
		s5 += a[i+5] * b[i+5]
		s6 += a[i+6] * b[i+6]
		s7 += a[i+7] * b[i+7]
	}
	t := ((s0 + s4) + (s2 + s6)) + ((s1 + s5) + (s3 + s7))
	for ; i < len(a); i++ {
		t += a[i] * b[i]
	}
	return t
}
