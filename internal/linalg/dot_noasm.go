//go:build !amd64 || purego

package linalg

func laneDot(a, b []float64) float64 { return laneDotGeneric(a, b) }

func addSquares(dst, src []float64) { addSquaresGeneric(dst, src) }
