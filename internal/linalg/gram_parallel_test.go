package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func randVecs(n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vecs[i] = v
	}
	return vecs
}

// TestGramMatrixParallelWorkerInvariance: every (i, j) kernel entry is
// evaluated exactly once by exactly one worker, so the matrix must be
// bit-identical for any worker count.
func TestGramMatrixParallelWorkerInvariance(t *testing.T) {
	// 150 rows crosses gramParallelThreshold, so GramMatrix itself takes the
	// pooled path.
	vecs := randVecs(150, 6, 5)
	for _, k := range []Kernel{RBFKernel{Gamma: 0.5}, LinearKernel{}, DistanceKernel{}} {
		ref := GramMatrixParallel(vecs, k, 1)
		for _, workers := range []int{4, 8} {
			got := GramMatrixParallel(vecs, k, workers)
			for i := range ref.Data {
				if math.Float64bits(got.Data[i]) != math.Float64bits(ref.Data[i]) {
					t.Fatalf("%s: entry %d differs between workers=1 and workers=%d", k.Name(), i, workers)
				}
			}
		}
		auto := GramMatrix(vecs, k)
		for i := range ref.Data {
			if math.Float64bits(auto.Data[i]) != math.Float64bits(ref.Data[i]) {
				t.Fatalf("%s: GramMatrix differs from serial GramMatrixParallel at %d", k.Name(), i)
			}
		}
	}
}

// TestGramMatrixParallelSymmetric checks both mirror slots are written.
func TestGramMatrixParallelSymmetric(t *testing.T) {
	vecs := randVecs(37, 4, 9)
	m := GramMatrixParallel(vecs, RBFKernel{Gamma: 1}, 8)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if math.Float64bits(m.At(i, j)) != math.Float64bits(m.At(j, i)) {
				t.Fatalf("asymmetry at (%d, %d)", i, j)
			}
		}
	}
}
