package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// cholSerialReference is the textbook left-looking factorization: one
// accumulator per element, strict ascending-k order. The parallel
// implementation must reproduce it bit for bit.
func cholSerialReference(a *Matrix, jitter float64) ([]float64, error) {
	n := a.Rows
	l := make([]float64, n*n)
	for j := 0; j < n; j++ {
		sum := a.At(j, j) + jitter
		for k := 0; k < j; k++ {
			sum -= l[j*n+k] * l[j*n+k]
		}
		if sum <= 0 {
			return nil, ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(sum)
		l[j*n+j] = ljj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l[i*n+k] * l[j*n+k]
			}
			l[i*n+j] = s / ljj
		}
	}
	return l, nil
}

// TestCholeskyWorkerCountInvariance pins the factorization's bit-identity
// contract: for every worker count — and sizes straddling the serial
// fall-back threshold and the block boundaries — the factor matches the
// textbook serial reference exactly.
func TestCholeskyWorkerCountInvariance(t *testing.T) {
	for _, n := range []int{1, 5, 31, 32, 33, 97, 200} {
		a := spdMatrix(n, int64(n))
		ref, err := cholSerialReference(a, 1e-10)
		if err != nil {
			t.Fatalf("n=%d: serial reference failed: %v", n, err)
		}
		for _, workers := range []int{1, 4, 8} {
			c, err := NewCholeskyParallel(a, 1e-10, workers)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			for i, v := range c.l {
				if math.Float64bits(v) != math.Float64bits(ref[i]) {
					t.Fatalf("n=%d workers=%d: l[%d]=%x, serial %x",
						n, workers, i, math.Float64bits(v), math.Float64bits(ref[i]))
				}
			}
		}
	}
}

// TestCholeskyNotPositiveDefiniteWorkerInvariance checks error parity: the
// parallel factorization reports the same first bad pivot outcome as the
// serial reference for every worker count.
func TestCholeskyNotPositiveDefiniteWorkerInvariance(t *testing.T) {
	n := 64
	a := spdMatrix(n, 7)
	a.Set(40, 40, -1e6) // poison a late pivot
	if _, err := cholSerialReference(a, 0); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("serial reference: err=%v, want ErrNotPositiveDefinite", err)
	}
	for _, workers := range []int{1, 4, 8} {
		if _, err := NewCholeskyParallel(a, 0, workers); !errors.Is(err, ErrNotPositiveDefinite) {
			t.Fatalf("workers=%d: err=%v, want ErrNotPositiveDefinite", workers, err)
		}
	}
}

// TestMulVecWorkerCountInvariance pins the blocked mat-vec (and its masked
// variant) to the serial laneDot reference bit for bit, for worker counts
// 1/4/8 and shapes straddling the 64-row block size.
func TestMulVecWorkerCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range [][2]int{{1, 3}, {63, 17}, {64, 8}, {65, 8}, {300, 40}} {
		rows, cols := shape[0], shape[1]
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
		}
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		skip := make([]bool, rows)
		for i := range skip {
			skip[i] = rng.Intn(3) == 0
		}
		ref := make([]float64, rows)
		mulVecRows(m.Data, m.Cols, x, ref, 0, rows, nil)
		refMasked := make([]float64, rows)
		mulVecRows(m.Data, m.Cols, x, refMasked, 0, rows, skip)
		for _, workers := range []int{1, 4, 8} {
			got := make([]float64, rows)
			m.MulVecInto(got, x, workers)
			gotMasked := make([]float64, rows)
			m.MulVecMaskedInto(gotMasked, x, skip, workers)
			for i := range ref {
				if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
					t.Fatalf("%dx%d workers=%d: dst[%d]=%x, serial %x",
						rows, cols, workers, i, math.Float64bits(got[i]), math.Float64bits(ref[i]))
				}
				if math.Float64bits(gotMasked[i]) != math.Float64bits(refMasked[i]) {
					t.Fatalf("%dx%d workers=%d masked: dst[%d]=%x, serial %x",
						rows, cols, workers, i, math.Float64bits(gotMasked[i]), math.Float64bits(refMasked[i]))
				}
			}
		}
	}
}
