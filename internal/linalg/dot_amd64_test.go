//go:build amd64 && !purego

package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// TestLaneDotSSE2AVXInvariance pins the two hardware paths against each
// other and the portable specification bit for bit, on machines where AVX
// is available (the SSE2 path and the generic are always compared by
// TestLaneDotImplInvariance regardless).
func TestLaneDotSSE2AVXInvariance(t *testing.T) {
	if !cpuHasAVX() {
		t.Skip("no AVX on this machine")
	}
	rng := rand.New(rand.NewSource(123))
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 23, 24, 31, 32, 100, 500, 501, 503} {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			m := math.Pow(10, float64(rng.Intn(13)-6))
			a[i] = rng.NormFloat64() * m
			b[i] = rng.NormFloat64() * m
		}
		sse := laneDotSSE2(a, b)
		avx := laneDotAVX(a, b)
		gen := laneDotGeneric(a, b)
		if math.Float64bits(sse) != math.Float64bits(gen) || math.Float64bits(avx) != math.Float64bits(gen) {
			t.Fatalf("n=%d: sse2=%x avx=%x generic=%x", n, math.Float64bits(sse), math.Float64bits(avx), math.Float64bits(gen))
		}
	}
}
