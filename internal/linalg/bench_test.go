package linalg

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchVecs(n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		X[i] = row
	}
	return X
}

// benchSPD builds a well-conditioned SPD matrix A = V Vᵀ + n·I.
func benchSPD(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	v := NewMatrix(n, n)
	for i := range v.Data {
		v.Data[i] = rng.NormFloat64()
	}
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += v.At(i, k) * v.At(j, k)
			}
			if i == j {
				s += float64(n)
			}
			a.Set(i, j, s)
			a.Set(j, i, s)
		}
	}
	return a
}

// BenchmarkCholesky factorizes the GP evaluator's working size (MaxPoints
// defaults to 400).
func BenchmarkCholesky(b *testing.B) {
	a := benchSPD(400, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a, 1e-8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGramMatrix spans the serial/parallel crossover region; the
// committed gramParallelThreshold is picked from this sweep.
func BenchmarkGramMatrix(b *testing.B) {
	for _, n := range []int{32, 64, 128, 256, 512} {
		vecs := benchVecs(n, 8, 2)
		k := RBFKernel{Gamma: 1.0 / 8}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				GramMatrix(vecs, k)
			}
		})
	}
}

// BenchmarkGramMatrixWorkers isolates the pool-dispatch overhead the
// gramParallelThreshold comment quotes: the same build, serial vs forced
// onto the pool. The threshold is the smallest n where the dispatch cost
// disappears into the O(n²) kernel evaluations.
func BenchmarkGramMatrixWorkers(b *testing.B) {
	k := RBFKernel{Gamma: 1.0 / 8}
	for _, n := range []int{32, 64, 96, 128, 192, 256} {
		vecs := benchVecs(n, 8, 2)
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					GramMatrixParallel(vecs, k, workers)
				}
			})
		}
	}
}
