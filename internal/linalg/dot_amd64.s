//go:build amd64 && !purego

#include "textflag.h"

// func laneDotSSE2(a, b []float64) float64
//
// SSE2 implementation of the canonical 8-lane dot product. Four packed
// accumulators X0..X3 hold lanes (0,1), (2,3), (4,5), (6,7): each loop
// iteration consumes eight elements, so lane r receives exactly the terms at
// indices ≡ r (mod 8) in ascending order — the same assignment as
// laneDotGeneric. The reduction X0+=X2, X1+=X3, X0+=X1, low+high realizes
// the fixed tree ((s0+s4)+(s2+s6)) + ((s1+s5)+(s3+s7)), and the scalar tail
// is added serially afterwards, so the result is bit-identical to the
// portable fallback.
TEXT ·laneDotSSE2(SB), NOSPLIT, $0-56
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ a_len+8(FP), CX
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORQ  AX, AX
	MOVQ  CX, DX
	ANDQ  $-16, DX
	CMPQ  DX, $0
	JE    blocks8

	// Main loop: two 8-element groups per iteration. Both groups feed the
	// same accumulator registers with the same index-mod-8 lane assignment,
	// in ascending order — identical bits to the 8-wide loop, half the
	// loop-control overhead.
loop16:
	MOVUPD (SI)(AX*8), X4
	MOVUPD (DI)(AX*8), X5
	MULPD  X5, X4
	ADDPD  X4, X0
	MOVUPD 16(SI)(AX*8), X4
	MOVUPD 16(DI)(AX*8), X5
	MULPD  X5, X4
	ADDPD  X4, X1
	MOVUPD 32(SI)(AX*8), X4
	MOVUPD 32(DI)(AX*8), X5
	MULPD  X5, X4
	ADDPD  X4, X2
	MOVUPD 48(SI)(AX*8), X4
	MOVUPD 48(DI)(AX*8), X5
	MULPD  X5, X4
	ADDPD  X4, X3
	MOVUPD 64(SI)(AX*8), X4
	MOVUPD 64(DI)(AX*8), X5
	MULPD  X5, X4
	ADDPD  X4, X0
	MOVUPD 80(SI)(AX*8), X4
	MOVUPD 80(DI)(AX*8), X5
	MULPD  X5, X4
	ADDPD  X4, X1
	MOVUPD 96(SI)(AX*8), X4
	MOVUPD 96(DI)(AX*8), X5
	MULPD  X5, X4
	ADDPD  X4, X2
	MOVUPD 112(SI)(AX*8), X4
	MOVUPD 112(DI)(AX*8), X5
	MULPD  X5, X4
	ADDPD  X4, X3
	ADDQ   $16, AX
	CMPQ   AX, DX
	JL     loop16

blocks8:
	MOVQ CX, BX
	ANDQ $-8, BX
	CMPQ AX, BX
	JGE  tail

	// At most one more 8-element group ((len mod 16) >= 8).
	MOVUPD (SI)(AX*8), X4
	MOVUPD (DI)(AX*8), X5
	MULPD  X5, X4
	ADDPD  X4, X0
	MOVUPD 16(SI)(AX*8), X4
	MOVUPD 16(DI)(AX*8), X5
	MULPD  X5, X4
	ADDPD  X4, X1
	MOVUPD 32(SI)(AX*8), X4
	MOVUPD 32(DI)(AX*8), X5
	MULPD  X5, X4
	ADDPD  X4, X2
	MOVUPD 48(SI)(AX*8), X4
	MOVUPD 48(DI)(AX*8), X5
	MULPD  X5, X4
	ADDPD  X4, X3
	ADDQ   $8, AX

tail:
	// Fixed reduction tree, then low+high of the surviving register.
	ADDPD    X2, X0
	ADDPD    X3, X1
	ADDPD    X1, X0
	MOVAPD   X0, X1
	UNPCKHPD X1, X1
	ADDSD    X1, X0

	CMPQ AX, CX
	JGE  done

tailloop:
	MOVSD (SI)(AX*8), X4
	MULSD (DI)(AX*8), X4
	ADDSD X4, X0
	INCQ  AX
	CMPQ  AX, CX
	JL    tailloop

done:
	MOVSD X0, ret+48(FP)
	RET

// func laneDotAVX(a, b []float64) float64
//
// AVX implementation of the canonical 8-lane dot product. Two 256-bit
// accumulators hold lanes 0-3 (Y0) and 4-7 (Y1); VADDPD Y1 into Y0 yields
// (s0+s4, s1+s5, s2+s6, s3+s7), the 128-bit halves add to
// ((s0+s4)+(s2+s6), (s1+s5)+(s3+s7)) and low+high completes the same
// reduction tree as laneDotSSE2/laneDotGeneric. Every multiply and add
// rounds one lane exactly like the scalar operation (no FMA), so the result
// is bit-identical to the other implementations. The tail uses VEX scalar
// ops to avoid SSE/AVX transition stalls; VZEROUPPER runs before RET.
TEXT ·laneDotAVX(SB), NOSPLIT, $0-56
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ a_len+8(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	XORQ   AX, AX
	MOVQ   CX, DX
	ANDQ   $-16, DX
	CMPQ   DX, $0
	JE     avxblocks8

	// Two 8-element groups per iteration; both feed Y0/Y1 with the same
	// index-mod-8 lane assignment in ascending order.
avxloop16:
	VMOVUPD (SI)(AX*8), Y2
	VMOVUPD (DI)(AX*8), Y3
	VMULPD  Y3, Y2, Y2
	VADDPD  Y2, Y0, Y0
	VMOVUPD 32(SI)(AX*8), Y2
	VMOVUPD 32(DI)(AX*8), Y3
	VMULPD  Y3, Y2, Y2
	VADDPD  Y2, Y1, Y1
	VMOVUPD 64(SI)(AX*8), Y2
	VMOVUPD 64(DI)(AX*8), Y3
	VMULPD  Y3, Y2, Y2
	VADDPD  Y2, Y0, Y0
	VMOVUPD 96(SI)(AX*8), Y2
	VMOVUPD 96(DI)(AX*8), Y3
	VMULPD  Y3, Y2, Y2
	VADDPD  Y2, Y1, Y1
	ADDQ    $16, AX
	CMPQ    AX, DX
	JL      avxloop16

avxblocks8:
	MOVQ CX, BX
	ANDQ $-8, BX
	CMPQ AX, BX
	JGE  avxreduce

	// At most one more 8-element group ((len mod 16) >= 8).
	VMOVUPD (SI)(AX*8), Y2
	VMOVUPD (DI)(AX*8), Y3
	VMULPD  Y3, Y2, Y2
	VADDPD  Y2, Y0, Y0
	VMOVUPD 32(SI)(AX*8), Y2
	VMOVUPD 32(DI)(AX*8), Y3
	VMULPD  Y3, Y2, Y2
	VADDPD  Y2, Y1, Y1
	ADDQ    $8, AX

avxreduce:
	// Fixed reduction tree: (s0+s4, s1+s5, s2+s6, s3+s7), halves, low+high.
	VADDPD       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VUNPCKHPD    X0, X0, X1
	VADDSD       X1, X0, X0

	CMPQ AX, CX
	JGE  avxdone

avxtailloop:
	VMOVSD (SI)(AX*8), X2
	VMULSD (DI)(AX*8), X2, X2
	VADDSD X2, X0, X0
	INCQ   AX
	CMPQ   AX, CX
	JL     avxtailloop

avxdone:
	VMOVSD     X0, ret+48(FP)
	VZEROUPPER
	RET

// func cpuHasAVX() bool
//
// CPUID leaf 1: ECX bit 27 (OSXSAVE) and bit 28 (AVX); then XGETBV(0) bits
// 1-2 confirm the OS saves xmm/ymm state. Both are required before calling
// laneDotAVX.
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	CPUID
	MOVL CX, BX
	ANDL $(1<<27 | 1<<28), BX
	CMPL BX, $(1<<27 | 1<<28)
	JNE  noavx
	MOVL $0, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx
	MOVB $1, ret+0(FP)
	RET

noavx:
	MOVB $0, ret+0(FP)
	RET

// func addSquares(dst, src []float64)
//
// dst[j] += src[j]*src[j], packed two columns at a time. Each dst[j] is an
// independent accumulator, so the packing cannot change any rounding — the
// result is bit-identical to addSquaresGeneric.
TEXT ·addSquares(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ dst_len+8(FP), CX
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-4, BX
	CMPQ BX, $0
	JE   sqtail

sqloop:
	MOVUPD (SI)(AX*8), X0
	MULPD  X0, X0
	MOVUPD (DI)(AX*8), X1
	ADDPD  X0, X1
	MOVUPD X1, (DI)(AX*8)
	MOVUPD 16(SI)(AX*8), X2
	MULPD  X2, X2
	MOVUPD 16(DI)(AX*8), X3
	ADDPD  X2, X3
	MOVUPD X3, 16(DI)(AX*8)
	ADDQ   $4, AX
	CMPQ   AX, BX
	JL     sqloop

sqtail:
	CMPQ AX, CX
	JGE  sqdone

sqtailloop:
	MOVSD (SI)(AX*8), X0
	MULSD X0, X0
	ADDSD (DI)(AX*8), X0
	MOVSD X0, (DI)(AX*8)
	INCQ  AX
	CMPQ  AX, CX
	JL    sqtailloop

sqdone:
	RET
