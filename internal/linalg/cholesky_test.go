package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// spdMatrix builds A = B Bᵀ + eps*I, guaranteed SPD.
func spdMatrix(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += b.At(i, k) * b.At(j, k)
			}
			a.Set(i, j, s)
		}
		a.Set(i, i, a.At(i, i)+0.5)
	}
	return a
}

func TestCholeskySolve(t *testing.T) {
	n := 12
	a := spdMatrix(n, 1)
	c, err := NewCholesky(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != n {
		t.Fatalf("N = %d", c.N())
	}
	rng := rand.New(rand.NewSource(2))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += a.At(i, j) * xTrue[j]
		}
		b[i] = s
	}
	x := c.Solve(b)
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-8 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestCholeskyNotPositiveDefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 1) // eigenvalues 3, -1
	if _, err := NewCholesky(a, 0); err != ErrNotPositiveDefinite {
		t.Fatalf("err = %v", err)
	}
	// A large jitter rescues it.
	if _, err := NewCholesky(a, 10); err != nil {
		t.Fatalf("jittered: %v", err)
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, err := NewCholesky(NewMatrix(2, 3), 0); err == nil {
		t.Fatal("non-square should error")
	}
}

func TestCholeskyLogDet(t *testing.T) {
	// Diagonal matrix: det = product of diagonal.
	a := NewMatrix(3, 3)
	a.Set(0, 0, 2)
	a.Set(1, 1, 3)
	a.Set(2, 2, 4)
	c, err := NewCholesky(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.LogDet(), math.Log(24); math.Abs(got-want) > 1e-12 {
		t.Fatalf("LogDet = %v, want %v", got, want)
	}
}

func TestCholeskySolveVecL(t *testing.T) {
	// For diagonal A, L = sqrt(A) and L y = b gives y = b / sqrt(diag).
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(1, 1, 9)
	c, err := NewCholesky(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	y := c.SolveVecL([]float64{2, 3})
	if math.Abs(y[0]-1) > 1e-12 || math.Abs(y[1]-1) > 1e-12 {
		t.Fatalf("y = %v", y)
	}
}

func TestCholeskySolvePanicsOnDim(t *testing.T) {
	c, err := NewCholesky(spdMatrix(3, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Solve([]float64{1})
}
