package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// TestLaneDotImplInvariance pins the platform laneDot (SSE2 assembly on
// amd64) to the portable laneDotGeneric specification bit for bit, across
// every length class the kernel distinguishes (empty, pure tail, exact
// 8-blocks, blocks+tail) and across magnitude ranges where rounding order
// would show any divergence immediately.
func TestLaneDotImplInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	lengths := []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 64, 100, 127, 128, 500, 501}
	for _, n := range lengths {
		for trial := 0; trial < 8; trial++ {
			a := make([]float64, n)
			b := make([]float64, n)
			for i := range a {
				m := math.Pow(10, float64(rng.Intn(13)-6))
				a[i] = rng.NormFloat64() * m
				b[i] = rng.NormFloat64() * m
			}
			got := laneDot(a, b)
			want := laneDotGeneric(a, b)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d trial=%d: laneDot=%x (%g), generic=%x (%g)",
					n, trial, math.Float64bits(got), got, math.Float64bits(want), want)
			}
		}
	}
}

// TestAddSquaresImplInvariance pins the platform addSquares (SSE2 on amd64)
// to the portable loop bit for bit across the packed/tail length classes.
func TestAddSquaresImplInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 64, 127, 500} {
		got := make([]float64, n)
		want := make([]float64, n)
		src := make([]float64, n)
		for i := range src {
			got[i] = rng.NormFloat64()
			want[i] = got[i]
			src[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(9)-4))
		}
		addSquares(got, src)
		addSquaresGeneric(want, src)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("n=%d: element %d differs: %x vs %x", n, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}
}

// TestLaneDotTailOrderInvariance checks the serial-tail contract directly:
// for lengths just past a block boundary the result must equal the reduced
// 8-lane sum plus the tail terms added one by one in ascending order.
func TestLaneDotTailOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := make([]float64, 19)
	b := make([]float64, 19)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	want := laneDotGeneric(a[:16], b[:16])
	want += a[16] * b[16]
	want += a[17] * b[17]
	want += a[18] * b[18]
	if got := laneDot(a, b); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("tail order: laneDot=%x, manual=%x", math.Float64bits(got), math.Float64bits(want))
	}
}
