package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatal("At/Set broken")
	}
	r := m.Row(1)
	if len(r) != 3 || r[2] != 5 {
		t.Fatal("Row view broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must be deep")
	}
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestColNorms(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 3)
	m.Set(1, 0, 4)
	m.Set(0, 1, 1)
	if m.ColNorm2(0) != 25 {
		t.Fatalf("ColNorm2(0) = %v", m.ColNorm2(0))
	}
	all := m.ColNorms2()
	if all[0] != 25 || all[1] != 1 {
		t.Fatalf("ColNorms2 = %v", all)
	}
}

func TestColNorms2MatchesColNorm2(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(7, 5)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	all := m.ColNorms2()
	for j := 0; j < m.Cols; j++ {
		if !almostEq(all[j], m.ColNorm2(j), 1e-12) {
			t.Fatalf("col %d: %v vs %v", j, all[j], m.ColNorm2(j))
		}
	}
}

func TestRank1Downdate(t *testing.T) {
	// K = [[2,1],[1,2]], downdate on column 0 with denom k(0,0)+mu = 2.5.
	m := NewMatrix(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2)
	m.Rank1Downdate(0, 2.5)
	// K - [2,1]^T [2,1] / 2.5 = [[2-1.6, 1-0.8],[1-0.8, 2-0.4]]
	want := [][]float64{{0.4, 0.2}, {0.2, 1.6}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !almostEq(m.At(i, j), want[i][j], 1e-12) {
				t.Fatalf("K[%d][%d] = %v, want %v", i, j, m.At(i, j), want[i][j])
			}
		}
	}
}

func TestRank1DowndatePanics(t *testing.T) {
	m := NewMatrix(2, 3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on non-square")
			}
		}()
		m.Rank1Downdate(0, 1)
	}()
	sq := NewMatrix(2, 2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on non-positive denom")
			}
		}()
		sq.Rank1Downdate(0, 0)
	}()
}

func TestDistDot(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 6, 3}
	if Dist2(a, b) != 25 {
		t.Fatalf("Dist2 = %v", Dist2(a, b))
	}
	if Dist(a, b) != 5 {
		t.Fatalf("Dist = %v", Dist(a, b))
	}
	if Dot(a, b) != 4+12+9 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
}

func TestDistPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dist2([]float64{1}, []float64{1, 2})
}

func TestKernels(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if got := (LinearKernel{}).Eval(b, b); got != 25 {
		t.Fatalf("linear = %v", got)
	}
	if got := (DistanceKernel{}).Eval(a, b); got != 5 {
		t.Fatalf("distance = %v", got)
	}
	rbf := RBFKernel{Gamma: 0.1}
	if got := rbf.Eval(a, a); got != 1 {
		t.Fatalf("rbf self = %v", got)
	}
	if got := rbf.Eval(a, b); !almostEq(got, math.Exp(-2.5), 1e-12) {
		t.Fatalf("rbf = %v", got)
	}
	for _, k := range []Kernel{rbf, LinearKernel{}, DistanceKernel{}} {
		if k.Name() == "" {
			t.Error("kernel name empty")
		}
	}
}

func TestGramMatrixSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vecs := make([][]float64, 6)
	for i := range vecs {
		vecs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	g := GramMatrix(vecs, RBFKernel{Gamma: 0.5})
	for i := 0; i < 6; i++ {
		if !almostEq(g.At(i, i), 1, 1e-12) {
			t.Fatalf("diag[%d] = %v", i, g.At(i, i))
		}
		for j := 0; j < 6; j++ {
			if g.At(i, j) != g.At(j, i) {
				t.Fatalf("not symmetric at %d,%d", i, j)
			}
		}
	}
}

// Property: Dist is a metric on random vectors — symmetry, identity,
// triangle inequality.
func TestDistMetricProperties(t *testing.T) {
	gen := func(r *rand.Rand) []float64 {
		v := make([]float64, 4)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		return v
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		a, b, c := gen(rng), gen(rng), gen(rng)
		if !almostEq(Dist(a, b), Dist(b, a), 1e-12) {
			t.Fatal("not symmetric")
		}
		if Dist(a, a) != 0 {
			t.Fatal("identity fails")
		}
		if Dist(a, c) > Dist(a, b)+Dist(b, c)+1e-9 {
			t.Fatal("triangle inequality fails")
		}
	}
}

// Property: a rank-1 downdate with the diagonal denominator zeroes the
// pivot column when mu == 0 (K becomes exactly deflated at x).
func TestRank1DowndateDeflates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4
		vecs := make([][]float64, n)
		for i := range vecs {
			vecs[i] = []float64{rng.Float64(), rng.Float64()}
		}
		g := GramMatrix(vecs, RBFKernel{Gamma: 1})
		x := int(rng.Int31n(int32(n)))
		d := g.At(x, x)
		g.Rank1Downdate(x, d)
		for i := 0; i < n; i++ {
			if !almostEq(g.At(i, x), 0, 1e-9) || !almostEq(g.At(x, i), 0, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
