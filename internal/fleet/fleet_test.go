package fleet

import (
	"testing"
	"time"

	"repro/internal/job"
)

func testTemplates() []Template {
	spec := job.Spec{
		Model: "mobilenet-v1", Tuner: "random", Device: "gtx1080ti", Ops: "conv",
		Seed: 11, Budget: 16, EarlyStop: -1, PlanSize: 8, Runs: 20, Workers: 1,
		TaskConcurrency: 1, BudgetPolicy: "uniform",
	}
	other := spec
	other.Seed = 12
	return []Template{
		{Name: "alpha", Spec: spec, Weight: 3},
		{Name: "beta", Spec: other, Weight: 1},
	}
}

// TestGenerateDeterministic is the generator's whole point: the same
// options produce the same fleet, and a different seed produces a
// different one.
func TestGenerateDeterministic(t *testing.T) {
	opts := Options{Jobs: 32, Seed: 42, Arrival: ArrivalPoisson, Period: time.Second, Templates: testTemplates()}
	a, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("generated %d and %d jobs, want 32", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Offset != b[i].Offset || a[i].Spec != b[i].Spec {
			t.Fatalf("job %d differs between identical generations: %+v vs %+v", i, a[i], b[i])
		}
	}
	opts.Seed = 43
	c, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].ID == c[i].ID && a[i].Offset == c[i].Offset {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("changing the seed changed nothing")
	}
}

// TestGenerateIDsAndSpecs checks that IDs are globally unique, valid job
// IDs, prefixed by their template, and that each job carries its
// template's spec verbatim (shared seed included).
func TestGenerateIDsAndSpecs(t *testing.T) {
	tpls := testTemplates()
	jobs, err := Generate(Options{Jobs: 64, Seed: 7, Templates: tpls})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	byName := map[string]job.Spec{}
	for _, tpl := range tpls {
		byName[tpl.Name] = tpl.Spec
	}
	counts := map[string]int{}
	for _, j := range jobs {
		if seen[j.ID] {
			t.Fatalf("duplicate job ID %s", j.ID)
		}
		seen[j.ID] = true
		if err := job.ValidateID(j.ID); err != nil {
			t.Fatalf("generated invalid ID %s: %v", j.ID, err)
		}
		matched := false
		for name, spec := range byName {
			if len(j.ID) > len(name) && j.ID[:len(name)] == name {
				if j.Spec != spec {
					t.Fatalf("job %s does not carry template %s's spec", j.ID, name)
				}
				counts[name]++
				matched = true
			}
		}
		if !matched {
			t.Fatalf("job %s matches no template prefix", j.ID)
		}
	}
	// Weight 3:1 over 64 draws: alpha should clearly dominate beta without
	// asserting an exact split.
	if counts["alpha"] <= counts["beta"] {
		t.Fatalf("weighted pick ignored weights: %v", counts)
	}
}

// TestGenerateArrivals pins each pattern's offset shape.
func TestGenerateArrivals(t *testing.T) {
	tpls := testTemplates()

	burst, err := Generate(Options{Jobs: 8, Seed: 1, Templates: tpls})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range burst {
		if j.Offset != 0 {
			t.Fatalf("burst job %s has offset %v", j.ID, j.Offset)
		}
	}

	uni, err := Generate(Options{Jobs: 8, Seed: 1, Arrival: ArrivalUniform, Period: 800 * time.Millisecond, Templates: tpls})
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range uni {
		want := 100 * time.Millisecond * time.Duration(i)
		if j.Offset != want {
			t.Fatalf("uniform job %d offset %v, want %v", i, j.Offset, want)
		}
	}

	poi, err := Generate(Options{Jobs: 64, Seed: 5, Arrival: ArrivalPoisson, Period: time.Second, Templates: tpls})
	if err != nil {
		t.Fatal(err)
	}
	var last time.Duration
	for i, j := range poi {
		if j.Offset < last {
			t.Fatalf("poisson offsets not monotone at job %d: %v < %v", i, j.Offset, last)
		}
		last = j.Offset
	}
	if last == 0 {
		t.Fatal("poisson fleet never advanced the clock")
	}
	// Mean inter-arrival is period/jobs, so the final offset should be the
	// same order of magnitude as the period — a loose sanity band.
	if last < 200*time.Millisecond || last > 5*time.Second {
		t.Fatalf("poisson span %v wildly off a 1s period", last)
	}
}

// TestGenerateValidation covers every rejected option.
func TestGenerateValidation(t *testing.T) {
	tpls := testTemplates()
	cases := []Options{
		{Jobs: 0, Templates: tpls},
		{Jobs: 4},
		{Jobs: 4, Arrival: "steady", Templates: tpls},
		{Jobs: 4, Arrival: ArrivalUniform, Templates: tpls},             // no period
		{Jobs: 4, Arrival: ArrivalPoisson, Period: -1, Templates: tpls}, // bad period
		{Jobs: 4, Templates: []Template{{Name: "", Spec: tpls[0].Spec}}},
		{Jobs: 4, Templates: []Template{{Name: "bad/../name", Spec: tpls[0].Spec}}},
		{Jobs: 4, Templates: []Template{{Name: "ok", Spec: tpls[0].Spec, Weight: -2}}},
	}
	for i, opts := range cases {
		if _, err := Generate(opts); err == nil {
			t.Errorf("case %d: Generate accepted invalid options %+v", i, opts)
		}
	}
}

// TestDefaultTemplatesSubmit checks the benchmark templates survive the
// manager's own validation: every generated job admits cleanly.
func TestDefaultTemplatesSubmit(t *testing.T) {
	jobs, err := Generate(Options{Jobs: 6, Seed: 3, Templates: DefaultTemplates()})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		spec := j.Spec.Normalized()
		if err := spec.Validate(); err != nil {
			t.Fatalf("job %s: %v", j.ID, err)
		}
		if spec.Seed == 0 {
			t.Fatalf("job %s lost its template seed", j.ID)
		}
	}
}
