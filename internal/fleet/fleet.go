// Package fleet generates deterministic synthetic tuning fleets: N job
// submissions drawn from M weighted spec templates with a configurable
// arrival pattern, all derived from one seed. The generator exists so the
// serving layer can be load-tested reproducibly — the same (seed, options)
// always yields the same jobs with the same IDs, specs, and submit
// offsets, run after run and host after host — in the spirit of
// multi-period temporal workload generators for inference simulators.
//
// Templates deliberately carry an explicit Spec.Seed: every job stamped
// from the same template is the identical (spec, seed) tuning problem
// under a different job ID, which is exactly the fleet shape where the
// daemon's shared measurement cache should convert repeated simulation
// into cache hits. Set distinct seeds (or Seed 0, derived per job ID) to
// generate an all-unique fleet instead.
package fleet

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/job"
)

// Arrival patterns. Burst submits every job at offset 0; Uniform spaces
// jobs evenly across the period; Poisson draws exponential inter-arrival
// gaps (mean period/jobs) from the generator seed.
const (
	ArrivalBurst   = "burst"
	ArrivalUniform = "uniform"
	ArrivalPoisson = "poisson"
)

// Template is one weighted job shape: a name (the prefix of generated job
// IDs), the spec each stamped job runs, and a selection weight.
type Template struct {
	Name string
	Spec job.Spec
	// Weight biases template selection; 0 means 1.
	Weight int
}

// Options parameterizes Generate.
type Options struct {
	// Jobs is how many submissions to generate.
	Jobs int
	// Seed drives template selection and Poisson arrival draws. The same
	// seed always generates the same fleet.
	Seed int64
	// Arrival is the submit-time pattern: ArrivalBurst (default),
	// ArrivalUniform, or ArrivalPoisson.
	Arrival string
	// Period is the window arrivals spread over; ignored by ArrivalBurst.
	Period time.Duration
	// Templates is the weighted shape mix. Required.
	Templates []Template
}

// Job is one generated submission: the ID and spec to POST, and when to
// submit it relative to the fleet's start.
type Job struct {
	ID     string
	Spec   job.Spec
	Offset time.Duration
}

// Generate stamps out the fleet. Jobs are returned in submission order
// (offsets non-decreasing), with IDs "<template>-<index>" where index is
// the job's position in the fleet — globally unique even when templates
// repeat. All randomness flows from Options.Seed through one generator in
// a fixed draw order (template pick, then arrival gap, per job), so the
// output is a pure function of Options.
func Generate(opts Options) ([]Job, error) {
	if opts.Jobs < 1 {
		return nil, fmt.Errorf("fleet: jobs %d, want >= 1", opts.Jobs)
	}
	if len(opts.Templates) == 0 {
		return nil, fmt.Errorf("fleet: no templates")
	}
	arrival := opts.Arrival
	if arrival == "" {
		arrival = ArrivalBurst
	}
	switch arrival {
	case ArrivalBurst:
	case ArrivalUniform, ArrivalPoisson:
		if opts.Period <= 0 {
			return nil, fmt.Errorf("fleet: %s arrivals need a positive period", arrival)
		}
	default:
		return nil, fmt.Errorf("fleet: unknown arrival pattern %q (want %s, %s, or %s)",
			arrival, ArrivalBurst, ArrivalUniform, ArrivalPoisson)
	}
	total := 0
	for i, tpl := range opts.Templates {
		if tpl.Name == "" {
			return nil, fmt.Errorf("fleet: template %d has no name", i)
		}
		if err := job.ValidateID(fmt.Sprintf("%s-0", tpl.Name)); err != nil {
			return nil, fmt.Errorf("fleet: template %q makes invalid job IDs: %w", tpl.Name, err)
		}
		if tpl.Weight < 0 {
			return nil, fmt.Errorf("fleet: template %q has negative weight %d", tpl.Name, tpl.Weight)
		}
		total += weightOf(tpl)
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	out := make([]Job, opts.Jobs)
	var clock time.Duration
	mean := float64(0)
	if arrival == ArrivalPoisson {
		mean = float64(opts.Period) / float64(opts.Jobs)
	}
	for i := range out {
		tpl := pick(opts.Templates, total, rng)
		switch arrival {
		case ArrivalUniform:
			clock = opts.Period * time.Duration(i) / time.Duration(opts.Jobs)
		case ArrivalPoisson:
			clock += time.Duration(rng.ExpFloat64() * mean)
		}
		out[i] = Job{
			ID:     fmt.Sprintf("%s-%04d", tpl.Name, i),
			Spec:   tpl.Spec,
			Offset: clock,
		}
	}
	return out, nil
}

func weightOf(t Template) int {
	if t.Weight == 0 {
		return 1
	}
	return t.Weight
}

// pick draws one template proportionally to weight.
func pick(tpls []Template, total int, rng *rand.Rand) Template {
	n := rng.Intn(total)
	for _, t := range tpls {
		n -= weightOf(t)
		if n < 0 {
			return t
		}
	}
	return tpls[len(tpls)-1] // unreachable: weights sum to total
}

// DefaultTemplates is the benchmark fleet shape: measurement-dominated
// jobs (random search spends its budget measuring, not training
// surrogates) over one device, each template's jobs sharing one explicit
// seed so a same-device fleet repeats identical tuning problems — the
// workload where the daemon's shared measurement cache pays off. Two
// templates give the fleet some mix without diluting repetition.
func DefaultTemplates() []Template {
	base := job.Spec{
		Model: "mobilenet-v1", Tuner: "random", Device: "gtx1080ti", Ops: "conv",
		Budget: 512, EarlyStop: -1, PlanSize: 32, Runs: 1, Workers: 1,
		TaskConcurrency: 1, BudgetPolicy: "uniform",
		// Sparse checkpoints: a frame serializes full session state, which
		// dwarfs the (cacheable) measurement work at benchmark budgets and
		// would drown the signal the fleet exists to measure.
		CheckpointEvery: 512,
	}
	a := base
	a.Seed = 7001
	b := base
	b.Seed = 7002
	return []Template{
		{Name: "mnet-a", Spec: a, Weight: 3},
		{Name: "mnet-b", Spec: b, Weight: 1},
	}
}
