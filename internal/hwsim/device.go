// Package hwsim is the stand-in for the paper's on-chip measurement
// environment: an analytic GPU cost simulator parameterized like the
// Nvidia GTX 1080 Ti the paper evaluates on. Given a workload and a
// schedule configuration it derives launch geometry (blocks, threads,
// shared memory, registers), rejects resource-infeasible configs, and
// combines an occupancy-scaled compute roofline with a coalescing-scaled
// memory roofline into a kernel time. A deterministic hash-based
// ruggedness term and config-dependent measurement noise give the search
// algorithms the multi-modal, noisy landscape that makes AutoTVM-style
// tuning hard on real hardware.
package hwsim

import (
	"fmt"

	"repro/internal/tensor"
)

// Device describes a CUDA-like accelerator. All byte quantities are bytes.
type Device struct {
	Name               string
	SMs                int
	CoresPerSM         int
	ClockGHz           float64
	MemBWGBs           float64
	SharedMemPerBlock  int
	SharedMemPerSM     int
	RegsPerSM          int
	MaxRegsPerThread   int
	MaxThreadsPerBlock int
	MaxThreadsPerSM    int
	MaxBlocksPerSM     int
	WarpSize           int
	L2Bytes            int
	// LaunchOverheadMS is the fixed per-kernel launch cost.
	LaunchOverheadMS float64
	// FP16Ratio scales FP16 arithmetic throughput relative to FP32: 2.0 on
	// architectures with native double-rate half precision (Volta, Tegra),
	// 1/64 on Pascal GeForce parts where FP16 is deliberately crippled.
	// Zero means FP16 runs at FP32 rate.
	FP16Ratio float64
}

// GTX1080Ti returns the evaluation platform of the paper.
func GTX1080Ti() Device {
	return Device{
		Name:               "GeForce GTX 1080 Ti",
		SMs:                28,
		CoresPerSM:         128,
		ClockGHz:           1.582,
		MemBWGBs:           484,
		SharedMemPerBlock:  48 * 1024,
		SharedMemPerSM:     96 * 1024,
		RegsPerSM:          64 * 1024,
		MaxRegsPerThread:   255,
		MaxThreadsPerBlock: 1024,
		MaxThreadsPerSM:    2048,
		MaxBlocksPerSM:     32,
		WarpSize:           32,
		L2Bytes:            2816 * 1024,
		LaunchOverheadMS:   0.004,
		FP16Ratio:          1.0 / 64, // GP102 half rate is crippled
	}
}

// TeslaV100 returns a data-center-class device: more SMs, HBM2 bandwidth.
func TeslaV100() Device {
	return Device{
		Name:               "Tesla V100",
		SMs:                80,
		CoresPerSM:         64,
		ClockGHz:           1.53,
		MemBWGBs:           900,
		SharedMemPerBlock:  48 * 1024,
		SharedMemPerSM:     96 * 1024,
		RegsPerSM:          64 * 1024,
		MaxRegsPerThread:   255,
		MaxThreadsPerBlock: 1024,
		MaxThreadsPerSM:    2048,
		MaxBlocksPerSM:     32,
		WarpSize:           32,
		L2Bytes:            6 * 1024 * 1024,
		LaunchOverheadMS:   0.004,
		FP16Ratio:          2.0,
	}
}

// GTX1060 returns a mid-range consumer device (half the 1080 Ti).
func GTX1060() Device {
	return Device{
		Name:               "GeForce GTX 1060",
		SMs:                10,
		CoresPerSM:         128,
		ClockGHz:           1.708,
		MemBWGBs:           192,
		SharedMemPerBlock:  48 * 1024,
		SharedMemPerSM:     96 * 1024,
		RegsPerSM:          64 * 1024,
		MaxRegsPerThread:   255,
		MaxThreadsPerBlock: 1024,
		MaxThreadsPerSM:    2048,
		MaxBlocksPerSM:     32,
		WarpSize:           32,
		L2Bytes:            1536 * 1024,
		LaunchOverheadMS:   0.005,
		FP16Ratio:          1.0 / 64,
	}
}

// JetsonTX2 returns an embedded device: few SMs, shared LPDDR4 bandwidth,
// tighter shared-memory limits. Deployment configurations that win here
// differ sharply from the desktop cards, which is what makes cross-device
// retuning experiments interesting.
func JetsonTX2() Device {
	return Device{
		Name:               "Jetson TX2",
		SMs:                2,
		CoresPerSM:         128,
		ClockGHz:           1.3,
		MemBWGBs:           59,
		SharedMemPerBlock:  48 * 1024,
		SharedMemPerSM:     64 * 1024,
		RegsPerSM:          32 * 1024,
		MaxRegsPerThread:   255,
		MaxThreadsPerBlock: 1024,
		MaxThreadsPerSM:    2048,
		MaxBlocksPerSM:     32,
		WarpSize:           32,
		L2Bytes:            512 * 1024,
		LaunchOverheadMS:   0.010,
		FP16Ratio:          2.0, // Tegra X2 supports double-rate FP16
	}
}

// Devices lists the built-in device models by name.
func Devices() map[string]Device {
	return map[string]Device{
		"gtx1080ti": GTX1080Ti(),
		"v100":      TeslaV100(),
		"gtx1060":   GTX1060(),
		"jetsontx2": JetsonTX2(),
	}
}

// DeviceByName looks up a built-in device model.
func DeviceByName(name string) (Device, bool) {
	d, ok := Devices()[name]
	return d, ok
}

// PeakGFLOPS returns the FP32 FMA peak throughput (2 flops per core per
// cycle).
func (d Device) PeakGFLOPS() float64 {
	return float64(d.SMs) * float64(d.CoresPerSM) * 2 * d.ClockGHz
}

// PeakGFLOPSFor returns the arithmetic peak at the given precision.
func (d Device) PeakGFLOPSFor(dt tensor.DType) float64 {
	peak := d.PeakGFLOPS()
	if dt == tensor.Float16 {
		r := d.FP16Ratio
		if r == 0 {
			r = 1
		}
		return peak * r
	}
	return peak
}

// Validate checks the device parameters for internal consistency.
func (d Device) Validate() error {
	if d.SMs <= 0 || d.CoresPerSM <= 0 || d.ClockGHz <= 0 || d.MemBWGBs <= 0 {
		return fmt.Errorf("hwsim: device %q has non-positive throughput parameters", d.Name)
	}
	if d.MaxThreadsPerBlock <= 0 || d.MaxThreadsPerSM < d.MaxThreadsPerBlock {
		return fmt.Errorf("hwsim: device %q thread limits inconsistent", d.Name)
	}
	if d.SharedMemPerBlock <= 0 || d.SharedMemPerSM < d.SharedMemPerBlock {
		return fmt.Errorf("hwsim: device %q shared memory limits inconsistent", d.Name)
	}
	if d.WarpSize <= 0 || d.MaxBlocksPerSM <= 0 || d.RegsPerSM <= 0 || d.MaxRegsPerThread <= 0 {
		return fmt.Errorf("hwsim: device %q occupancy limits inconsistent", d.Name)
	}
	return nil
}
