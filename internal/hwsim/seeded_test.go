package hwsim

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/space"
	"repro/internal/tensor"
)

// TestMeasureSeededDeterministic pins the contract the parallel measurement
// engine is built on: a seeded measurement depends only on (workload,
// config, noise seed) — never on call order, other measurements in flight,
// or the simulator's own RNG stream.
func TestMeasureSeededDeterministic(t *testing.T) {
	w := tensor.Conv2D(1, 32, 28, 28, 64, 3, 1, 1)
	sp := convSpace(t, w)
	rng := rand.New(rand.NewSource(11))
	cfgs := sp.RandomSample(16, rng)

	simA := NewSimulator(GTX1080Ti(), 1)
	simB := NewSimulator(GTX1080Ti(), 999) // different sim seed must not matter
	ref := make([]Measurement, len(cfgs))
	for i, c := range cfgs {
		ref[i] = simA.MeasureSeeded(w, c, NoiseSeed(42, c.Flat()))
	}
	// Interleave unrelated unseeded measurements to perturb simB's internal
	// RNG, then measure in reverse order.
	for i := 0; i < 5; i++ {
		simB.Measure(w, cfgs[i])
	}
	for i := len(cfgs) - 1; i >= 0; i-- {
		got := simB.MeasureSeeded(w, cfgs[i], NoiseSeed(42, cfgs[i].Flat()))
		if math.Float64bits(got.GFLOPS) != math.Float64bits(ref[i].GFLOPS) ||
			math.Float64bits(got.TimeMS) != math.Float64bits(ref[i].TimeMS) ||
			got.Valid != ref[i].Valid {
			t.Fatalf("config %d: seeded measurement differs across simulators/order", i)
		}
	}
}

// TestMeasureSeededCounts verifies seeded measurements hit the same budget
// accounting as unseeded ones, including under concurrency (-race).
func TestMeasureSeededCounts(t *testing.T) {
	w := tensor.Conv2D(1, 32, 28, 28, 64, 3, 1, 1)
	sp := convSpace(t, w)
	sim := NewSimulator(GTX1080Ti(), 7)
	rng := rand.New(rand.NewSource(3))
	cfgs := make([]space.Config, 8)
	for i := range cfgs {
		cfgs[i] = sp.Random(rng)
	}

	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c := cfgs[(g+i)%len(cfgs)]
				sim.MeasureSeeded(w, c, NoiseSeed(int64(g), c.Flat()))
			}
		}(g)
	}
	wg.Wait()
	if got := sim.MeasureCount(); got != workers*perWorker {
		t.Fatalf("MeasureCount = %d, want %d", got, workers*perWorker)
	}
}

// TestNoiseSeedDecorrelates sanity-checks the splitmix64-style seed
// derivation: deterministic, and distinct across configs and run seeds.
func TestNoiseSeedDecorrelates(t *testing.T) {
	if NoiseSeed(1, 2) != NoiseSeed(1, 2) {
		t.Fatal("NoiseSeed is not deterministic")
	}
	seen := make(map[int64]bool)
	for runSeed := int64(0); runSeed < 4; runSeed++ {
		for flat := uint64(0); flat < 256; flat++ {
			s := NoiseSeed(runSeed, flat)
			if seen[s] {
				t.Fatalf("collision at runSeed=%d flat=%d", runSeed, flat)
			}
			seen[s] = true
		}
	}
}
