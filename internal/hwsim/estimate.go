package hwsim

import (
	"hash/fnv"
	"math"

	"repro/internal/space"
	"repro/internal/tensor"
)

// Estimate is the deterministic ("true") performance model of one kernel
// launch. Measurement noise is layered on top by Simulator.
type Estimate struct {
	Valid  bool
	Reason string // why the config is infeasible, when !Valid

	TimeMS    float64 // noiseless kernel time
	ComputeMS float64 // compute-roofline component
	MemoryMS  float64 // memory-roofline component
	GFLOPS    float64 // workload FLOPs / TimeMS

	Occupancy       float64 // achieved occupancy in [0, 1]
	ThreadsPerBlock int
	Blocks          int
	SmemBytes       int
	RegsPerThread   int
	Sigma           float64 // run-to-run relative noise of this config
}

// launchGeometry captures the schedule-derived launch shape shared by the
// per-operator models.
type launchGeometry struct {
	threads     int     // threads per block
	blocks      int     // grid size
	workPerThr  int     // output elements computed serially per thread
	smemBytes   int     // shared memory per block
	regsPerThr  int     // estimated registers per thread
	spanX       int     // contiguous output extent per block along x (coalescing)
	redInner    int     // innermost reduction tile length (unroll target)
	trafficByte float64 // global memory traffic of the whole kernel
}

// Estimator evaluates configurations on a device. It is stateless and safe
// for concurrent use.
type Estimator struct {
	Dev Device
	// Ruggedness scales the deterministic per-config hash jitter (default
	// 0.03 when zero): uncorrelated fine grain, un-climbable by any search.
	Ruggedness float64
	// LocalAmp scales the locally-smooth index-space component (default
	// 0.18 when zero): low-frequency structure over knob option indices
	// that neighboring configurations share. This models the many real
	// micro-architectural effects that no simple feature-based cost model
	// captures but that vary smoothly under small schedule perturbations —
	// the locality assumption the paper's BAO explicitly relies on.
	LocalAmp float64
	// BaseSigma scales measurement noise (default 0.008 when zero).
	BaseSigma float64
}

func (e Estimator) ruggedness() float64 {
	if e.Ruggedness == 0 {
		return 0.03
	}
	return e.Ruggedness
}

func (e Estimator) localAmp() float64 {
	if e.LocalAmp == 0 {
		return 0.18
	}
	return e.LocalAmp
}

func (e Estimator) baseSigma() float64 {
	if e.BaseSigma == 0 {
		return 0.008
	}
	return e.BaseSigma
}

// Estimate computes the noiseless performance of (workload, config).
func (e Estimator) Estimate(w tensor.Workload, c space.Config) Estimate {
	var g launchGeometry
	var ok bool
	var reason string
	switch w.Op {
	case tensor.OpConv2D:
		g, ok, reason = convGeometry(w, c, false)
	case tensor.OpDepthwiseConv2D:
		g, ok, reason = convGeometry(w, c, true)
	case tensor.OpDense:
		g, ok, reason = denseGeometry(w, c)
	default:
		return Estimate{Valid: false, Reason: "unsupported operator"}
	}
	if !ok {
		return Estimate{Valid: false, Reason: reason}
	}
	d := e.Dev
	if g.threads <= 0 || g.threads > d.MaxThreadsPerBlock {
		return Estimate{Valid: false, Reason: "threads per block exceeds device limit"}
	}
	if g.smemBytes > d.SharedMemPerBlock {
		return Estimate{Valid: false, Reason: "shared memory per block exceeds device limit"}
	}
	if g.regsPerThr > 2*d.MaxRegsPerThread {
		// Beyond 2x the architectural limit the compiler would fail the
		// launch outright (register allocation cannot spill that much).
		return Estimate{Valid: false, Reason: "register pressure infeasible"}
	}

	// ---- Occupancy -------------------------------------------------------
	warps := (g.threads + d.WarpSize - 1) / d.WarpSize
	blocksByThreads := d.MaxThreadsPerSM / (warps * d.WarpSize)
	blocksBySmem := d.MaxBlocksPerSM
	if g.smemBytes > 0 {
		blocksBySmem = d.SharedMemPerSM / g.smemBytes
	}
	regsPerBlock := g.regsPerThr * g.threads
	blocksByRegs := d.MaxBlocksPerSM
	if regsPerBlock > 0 {
		blocksByRegs = d.RegsPerSM / regsPerBlock
	}
	blocksPerSM := minInt(minInt(blocksByThreads, blocksBySmem), minInt(blocksByRegs, d.MaxBlocksPerSM))
	if blocksPerSM <= 0 {
		return Estimate{Valid: false, Reason: "block does not fit on an SM"}
	}
	occ := float64(blocksPerSM*warps*d.WarpSize) / float64(d.MaxThreadsPerSM)
	if occ > 1 {
		occ = 1
	}

	// ---- Compute roofline ------------------------------------------------
	flops := float64(w.FLOPs())
	// Latency hiding improves steeply up to ~50% occupancy, then saturates.
	occEff := (1 - math.Exp(-5*occ)) / (1 - math.Exp(-5))
	// Warp divergence: threads beyond the last full warp idle.
	warpEff := float64(g.threads) / float64(warps*d.WarpSize)
	// Instruction-level parallelism: a few serial outputs per thread keep
	// the FMA pipes busy; a single output per thread stalls on latency.
	ilp := float64(g.workPerThr)
	ilpEff := 1 - 0.45/(1+0.6*ilp)
	// Too much per-thread state spills to local memory.
	spillEff := 1.0
	if g.regsPerThr > d.MaxRegsPerThread {
		spillEff = 1 / (1 + 0.8*math.Log2(float64(g.regsPerThr)/float64(d.MaxRegsPerThread)+1))
	}
	// Unrolling the inner reduction helps when it covers the loop; very
	// aggressive unrolling of large bodies thrashes the instruction cache.
	unrollEff := 1.0
	if u, uok := c.EnumValue(space.KnobAutoUnroll); uok && u > 0 {
		body := float64(g.redInner * g.workPerThr)
		if float64(u) >= body {
			unrollEff = 1.10
		} else {
			unrollEff = 1.04
		}
		if u >= 1500 && body > 256 {
			unrollEff = 0.92 // icache thrash
		}
	}
	if ex, exok := c.EnumValue(space.KnobUnrollExplicit); exok && ex == 1 {
		unrollEff *= 1.02
	}
	computeEff := occEff * warpEff * ilpEff * spillEff * unrollEff
	if computeEff < 0.01 {
		computeEff = 0.01
	}
	computeMS := flops / (e.Dev.PeakGFLOPSFor(w.DType) * 1e9 * computeEff) * 1e3

	// Grid-level tail effect: partial last wave leaves SMs idle.
	slots := d.SMs * blocksPerSM
	waves := (g.blocks + slots - 1) / slots
	utilization := float64(g.blocks) / float64(waves*slots)
	computeMS /= math.Max(utilization, 0.02)

	// ---- Memory roofline ---------------------------------------------------
	// Coalescing: full efficiency needs 32 contiguous floats per access row.
	coalesce := math.Sqrt(math.Min(1, float64(g.spanX)/float64(d.WarpSize)))
	memEff := (0.15 + 0.85*coalesce) * (0.5 + 0.5*occEff)
	memMS := g.trafficByte / (d.MemBWGBs * 1e9 * memEff) * 1e3

	timeMS := math.Max(computeMS, memMS)
	// Overlap credit: compute and memory pipelines overlap partially.
	timeMS += 0.25 * math.Min(computeMS, memMS)
	timeMS += d.LaunchOverheadMS

	// ---- Deterministic fine-grained structure -------------------------------
	// Locally-smooth component over knob indices (climbable by neighborhood
	// search) plus uncorrelated hash jitter (not climbable by anything).
	timeMS *= 1 + e.localAmp()*localJitter(w.Key(), c)
	timeMS *= 1 + e.ruggedness()*hashJitter(w.Key(), c.Flat())

	// ---- Run-to-run noise level --------------------------------------------
	memBound := 0.0
	if memMS > computeMS {
		memBound = 1.0
	}
	// Heavy-tailed across configs: well-occupied compute-bound kernels sit
	// near the base noise floor, while low-occupancy or memory-bound
	// stragglers are an order of magnitude noisier — the dispersion behind
	// Table I's variance column.
	lowOcc := (1 - occ) * (1 - occ)
	sigma := e.baseSigma() * (1 + 6*lowOcc + 2.5*memBound + 1.5*(1-utilization))

	return Estimate{
		Valid:           true,
		TimeMS:          timeMS,
		ComputeMS:       computeMS,
		MemoryMS:        memMS,
		GFLOPS:          flops / (timeMS * 1e6),
		Occupancy:       occ,
		ThreadsPerBlock: g.threads,
		Blocks:          g.blocks,
		SmemBytes:       g.smemBytes,
		RegsPerThread:   g.regsPerThr,
		Sigma:           sigma,
	}
}

// convGeometry derives launch geometry for direct conv2d (and depthwise
// when dw is true) from the 4-way F/Y/X splits and 2-way reduction splits.
func convGeometry(w tensor.Workload, c space.Config, dw bool) (launchGeometry, bool, string) {
	tf := c.SplitFactors(space.KnobTileF)
	ty := c.SplitFactors(space.KnobTileY)
	tx := c.SplitFactors(space.KnobTileX)
	if tf == nil || ty == nil || tx == nil {
		return launchGeometry{}, false, "missing tile knobs"
	}
	// [block, vthread, thread, inner] per axis.
	fB, fV, fT, fI := tf[0], tf[1], tf[2], tf[3]
	yB, yV, yT, yI := ty[0], ty[1], ty[2], ty[3]
	xB, xV, xT, xI := tx[0], tx[1], tx[2], tx[3]

	rcI, ryI, rxI := 1, 1, 1
	if !dw {
		if rc := c.SplitFactors(space.KnobTileRC); rc != nil {
			rcI = rc[1]
		}
		if ry := c.SplitFactors(space.KnobTileRY); ry != nil {
			ryI = ry[1]
		}
		if rx := c.SplitFactors(space.KnobTileRX); rx != nil {
			rxI = rx[1]
		}
	}

	threads := fT * yT * xT
	blocks := w.N * fB * yB * xB
	workPerThr := fV * fI * yV * yI * xV * xI

	// Output span of one block, and the padded input span it stages.
	fSpan := fV * fT * fI
	ySpan := yV * yT * yI
	xSpan := xV * xT * xI
	inYSpan := (ySpan-1)*w.SH + w.KH
	inXSpan := (xSpan-1)*w.SW + w.KW

	es := w.DType.Size()
	var smem int
	var traffic float64
	if dw {
		// Depthwise: each block stages its channel slice of the input and a
		// KHxKW filter per channel.
		smem = (inYSpan*inXSpan*fSpan + fSpan*w.KH*w.KW) * es
		traffic = float64(blocks) * float64(inYSpan*inXSpan*fSpan+fSpan*w.KH*w.KW) * float64(es)
	} else {
		// Direct conv: stage rcI input channels and the matching filter tile
		// per reduction step; total traffic sums over C/rcI steps.
		smem = (inYSpan*inXSpan*rcI + rcI*ryI*rxI*fSpan) * es
		rcSteps := (w.C + rcI - 1) / rcI
		perStep := float64(inYSpan*inXSpan*rcI+rcI*w.KH*w.KW*fSpan) * float64(es)
		traffic = float64(blocks) * perStep * float64(rcSteps)
	}
	// Output writeback.
	traffic += float64(w.OutputBytes())

	regs := 24 + workPerThr + 2*rcI*ryI*rxI
	if dw {
		regs = 24 + workPerThr + 2*w.KH*w.KW
	}

	redInner := rcI * ryI * rxI
	if dw {
		redInner = w.KH * w.KW
	}

	if threads <= 0 || blocks <= 0 {
		return launchGeometry{}, false, "degenerate launch geometry"
	}
	return launchGeometry{
		threads:     threads,
		blocks:      blocks,
		workPerThr:  workPerThr,
		smemBytes:   smem,
		regsPerThr:  regs,
		spanX:       xT * xI, // contiguous floats accessed per thread row
		redInner:    redInner,
		trafficByte: traffic,
	}, true, ""
}

// denseGeometry derives geometry for the dense (fully-connected) template:
// a 4-way split of the output axis and a 2-way split of the reduction axis
// whose inner part is cooperatively reduced through shared memory.
func denseGeometry(w tensor.Workload, c space.Config) (launchGeometry, bool, string) {
	tf := c.SplitFactors(space.KnobTileF)
	tk := c.SplitFactors(space.KnobTileK)
	if tf == nil || tk == nil {
		return launchGeometry{}, false, "missing tile knobs"
	}
	fB, fV, fT, fI := tf[0], tf[1], tf[2], tf[3]
	_, kI := tk[0], tk[1]

	threads := fT * kI
	blocks := w.N * fB
	workPerThr := fV * fI
	es := w.DType.Size()
	// Reduction scratch + a staged slice of the input vector.
	smem := (fT*kI + kI) * es
	// GEMV traffic: the weight matrix dominates; the input vector is read
	// once per block.
	traffic := float64(w.F)*float64(w.C)*float64(es) +
		float64(blocks)*float64(w.C)*float64(es) +
		float64(w.OutputBytes())
	regs := 20 + 2*workPerThr + kI/8

	if threads <= 0 || blocks <= 0 {
		return launchGeometry{}, false, "degenerate launch geometry"
	}
	return launchGeometry{
		threads:     threads,
		blocks:      blocks,
		workPerThr:  workPerThr,
		smemBytes:   smem,
		regsPerThr:  regs,
		spanX:       kI, // contiguous reduction reads
		redInner:    kI,
		trafficByte: traffic,
	}, true, ""
}

// localJitter is a deterministic, locally-smooth function of the knob
// option indices: a small sum of low-frequency sinusoids per knob whose
// phases and frequencies derive from the workload key. Values are roughly
// in [-1, 1]; adjacent configurations (differing by small index offsets)
// receive similar values, so neighborhood search can climb this component,
// while no log-factor feature model can represent it globally.
func localJitter(key string, c space.Config) float64 {
	idx := c.Index
	sp := c.Space()
	if sp == nil || len(idx) == 0 {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	base := h.Sum64()
	total := 0.0
	for i, v := range idx {
		kLen := sp.Knob(i).Len()
		if kLen < 2 {
			continue
		}
		pos := float64(v) / float64(kLen-1) // 0..1 along the knob axis
		// Two harmonics per knob with workload-derived phase/frequency.
		s := splitmix(base + uint64(i)*0x9e3779b97f4a7c15)
		phase1 := float64(s%10000) / 10000 * 2 * math.Pi
		freq1 := 1 + float64((s>>16)%3) // 1..3 periods across the axis
		s2 := splitmix(s)
		phase2 := float64(s2%10000) / 10000 * 2 * math.Pi
		freq2 := 3 + float64((s2>>16)%4) // 3..6 periods
		total += math.Sin(2*math.Pi*freq1*pos+phase1) + 0.5*math.Sin(2*math.Pi*freq2*pos+phase2)
	}
	// Normalize to unit-ish scale: each knob contributes mean-zero terms
	// with combined RMS ~= sqrt(1/2 + 1/8).
	return total / (0.8 * math.Sqrt(float64(len(idx))) * 1.4)
}

// splitmix is SplitMix64, a cheap deterministic bit mixer.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashJitter maps (workload, flat config) to a deterministic value in
// [-1, 1], giving the loss surface reproducible fine-grained structure.
func hashJitter(key string, flat uint64) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(flat >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	v := h.Sum64()
	return float64(v%200001)/100000 - 1
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
