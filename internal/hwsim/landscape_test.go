package hwsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/space"
	"repro/internal/tensor"
)

// TestLocalJitterSmoothness verifies the central calibration property of
// the simulated landscape: the local component changes little under small
// index moves (neighborhood search can climb it) and much more across
// random config pairs (it carries real structure).
func TestLocalJitterSmoothness(t *testing.T) {
	w := tensor.Conv2D(1, 64, 56, 56, 128, 3, 1, 1)
	sp, err := space.ForWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var neighborDiff, randomDiff float64
	n := 400
	for i := 0; i < n; i++ {
		a := sp.Random(rng)
		// A one-step neighbor along a random knob.
		b := a.Clone()
		k := rng.Intn(sp.NumKnobs())
		if sp.Knob(k).Len() > 1 {
			if b.Index[k]+1 < sp.Knob(k).Len() {
				b.Index[k]++
			} else {
				b.Index[k]--
			}
		}
		c := sp.Random(rng)
		ja := localJitter(w.Key(), a)
		neighborDiff += math.Abs(ja - localJitter(w.Key(), b))
		randomDiff += math.Abs(ja - localJitter(w.Key(), c))
	}
	neighborDiff /= float64(n)
	randomDiff /= float64(n)
	if neighborDiff*2 > randomDiff {
		t.Fatalf("local jitter not smooth: neighbor diff %.4f vs random diff %.4f",
			neighborDiff, randomDiff)
	}
}

func TestLocalJitterDeterministicAndBounded(t *testing.T) {
	w := tensor.DepthwiseConv2D(1, 128, 56, 56, 3, 1, 1)
	sp, err := space.ForWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		c := sp.Random(rng)
		v1 := localJitter(w.Key(), c)
		v2 := localJitter(w.Key(), c)
		if v1 != v2 {
			t.Fatal("local jitter must be deterministic")
		}
		if math.Abs(v1) > 2.5 {
			t.Fatalf("local jitter %v out of expected range", v1)
		}
	}
	// Workload-dependent: same config index pattern, different workload key.
	w2 := tensor.DepthwiseConv2D(1, 128, 28, 28, 3, 1, 1)
	c := sp.FromFlat(12345)
	if localJitter(w.Key(), c) == localJitter(w2.Key(), c) {
		t.Fatal("local jitter should depend on the workload")
	}
}

func TestLocalJitterEmptyConfig(t *testing.T) {
	if got := localJitter("x", space.Config{}); got != 0 {
		t.Fatalf("empty config jitter = %v", got)
	}
}

// TestLandscapeLocalityPaysOff is the end-to-end statement of the
// calibration: starting from a good config, the best point within a small
// index neighborhood is usually better than the best of an equal number of
// random configs drawn near the same analytic quality — i.e. local
// refinement has signal.
func TestLandscapeLocalityPaysOff(t *testing.T) {
	w := tensor.Conv2D(1, 64, 28, 28, 64, 3, 1, 1)
	sp, err := space.ForWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	est := Estimator{Dev: GTX1080Ti()}
	rng := rand.New(rand.NewSource(3))

	// Find a decent starting config.
	var start space.Config
	bestG := 0.0
	for i := 0; i < 2000; i++ {
		c := sp.Random(rng)
		if e := est.Estimate(w, c); e.Valid && e.GFLOPS > bestG {
			bestG = e.GFLOPS
			start = c
		}
	}
	if bestG == 0 {
		t.Fatal("no valid start found")
	}
	nb := sp.Neighborhood(start, 3, space.NeighborhoodOpts{MaxCandidates: 200}, rng)
	if len(nb) == 0 {
		t.Skip("empty neighborhood at the start config")
	}
	improved := 0
	for _, c := range nb {
		if e := est.Estimate(w, c); e.Valid && e.GFLOPS > bestG {
			improved++
		}
	}
	// With a smooth local field some neighbors of a good-but-not-optimal
	// config must improve on it.
	if improved == 0 {
		t.Fatalf("no neighbor of a %0.f-GFLOPS config improves it; landscape has no local signal", bestG)
	}
}

func TestSplitmixMixes(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 1000; i++ {
		v := splitmix(i)
		if seen[v] {
			t.Fatal("splitmix collision in tiny range")
		}
		seen[v] = true
	}
}
