package hwsim

import (
	"fmt"
	"strings"

	"repro/internal/space"
	"repro/internal/tensor"
)

// Lower renders the schedule a configuration denotes as human-readable
// pseudo-code (in the spirit of TVM's `tvm.lower` output), together with
// the derived launch geometry and resource footprint. It is a debugging
// and documentation aid; the estimator consumes the geometry directly.
func (e Estimator) Lower(w tensor.Workload, c space.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// schedule for %s\n", w.Key())
	est := e.Estimate(w, c)

	switch w.Op {
	case tensor.OpConv2D, tensor.OpDepthwiseConv2D:
		tf := c.SplitFactors(space.KnobTileF)
		ty := c.SplitFactors(space.KnobTileY)
		tx := c.SplitFactors(space.KnobTileX)
		if tf == nil || ty == nil || tx == nil {
			return b.String() + "// <missing tile knobs>\n"
		}
		fmt.Fprintf(&b, "split f  -> [block=%d, vthread=%d, thread=%d, serial=%d]\n", tf[0], tf[1], tf[2], tf[3])
		fmt.Fprintf(&b, "split y  -> [block=%d, vthread=%d, thread=%d, serial=%d]\n", ty[0], ty[1], ty[2], ty[3])
		fmt.Fprintf(&b, "split x  -> [block=%d, vthread=%d, thread=%d, serial=%d]\n", tx[0], tx[1], tx[2], tx[3])
		if w.Op == tensor.OpConv2D {
			if rc := c.SplitFactors(space.KnobTileRC); rc != nil {
				fmt.Fprintf(&b, "split rc -> [outer=%d, inner=%d]\n", rc[0], rc[1])
			}
			if ry := c.SplitFactors(space.KnobTileRY); ry != nil {
				fmt.Fprintf(&b, "split ry -> [outer=%d, inner=%d]\n", ry[0], ry[1])
			}
			if rx := c.SplitFactors(space.KnobTileRX); rx != nil {
				fmt.Fprintf(&b, "split rx -> [outer=%d, inner=%d]\n", rx[0], rx[1])
			}
		}
		fmt.Fprintf(&b, "bind blockIdx  = (n, f.block, y.block, x.block)\n")
		fmt.Fprintf(&b, "bind threadIdx = (f.thread, y.thread, x.thread)\n")
	case tensor.OpDense:
		tf := c.SplitFactors(space.KnobTileF)
		tk := c.SplitFactors(space.KnobTileK)
		if tf == nil || tk == nil {
			return b.String() + "// <missing tile knobs>\n"
		}
		fmt.Fprintf(&b, "split out -> [block=%d, vthread=%d, thread=%d, serial=%d]\n", tf[0], tf[1], tf[2], tf[3])
		fmt.Fprintf(&b, "split k   -> [outer=%d, coop-threads=%d]\n", tk[0], tk[1])
		fmt.Fprintf(&b, "bind blockIdx  = (n, out.block)\n")
		fmt.Fprintf(&b, "bind threadIdx = (out.thread, k.coop)\n")
	}

	if u, ok := c.EnumValue(space.KnobAutoUnroll); ok {
		fmt.Fprintf(&b, "pragma auto_unroll_max_step = %d\n", u)
	}
	if ex, ok := c.EnumValue(space.KnobUnrollExplicit); ok {
		fmt.Fprintf(&b, "pragma unroll_explicit = %d\n", ex)
	}

	if !est.Valid {
		fmt.Fprintf(&b, "// INFEASIBLE on %s: %s\n", e.Dev.Name, est.Reason)
		return b.String()
	}
	fmt.Fprintf(&b, "// launch: %d blocks x %d threads\n", est.Blocks, est.ThreadsPerBlock)
	fmt.Fprintf(&b, "// smem %d B/block, ~%d regs/thread, occupancy %.2f\n",
		est.SmemBytes, est.RegsPerThread, est.Occupancy)
	fmt.Fprintf(&b, "// model: %.4f ms (compute %.4f, memory %.4f) -> %.1f GFLOPS on %s\n",
		est.TimeMS, est.ComputeMS, est.MemoryMS, est.GFLOPS, e.Dev.Name)
	return b.String()
}
