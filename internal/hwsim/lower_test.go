package hwsim

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/space"
	"repro/internal/tensor"
)

func TestLowerConv(t *testing.T) {
	w := tensor.Conv2D(1, 32, 28, 28, 64, 3, 1, 1)
	sp := convSpace(t, w)
	est := Estimator{Dev: GTX1080Ti()}
	rng := rand.New(rand.NewSource(1))
	var valid, invalid bool
	for i := 0; i < 3000 && !(valid && invalid); i++ {
		c := sp.Random(rng)
		out := est.Lower(w, c)
		if !strings.Contains(out, "split f") || !strings.Contains(out, "bind blockIdx") {
			t.Fatalf("lowering missing sections:\n%s", out)
		}
		if strings.Contains(out, "INFEASIBLE") {
			invalid = true
		} else {
			if !strings.Contains(out, "GFLOPS") || !strings.Contains(out, "occupancy") {
				t.Fatalf("valid lowering missing model line:\n%s", out)
			}
			valid = true
		}
	}
	if !valid || !invalid {
		t.Fatalf("expected both valid and infeasible lowerings (valid=%v invalid=%v)", valid, invalid)
	}
}

func TestLowerDepthwiseAndDense(t *testing.T) {
	est := Estimator{Dev: GTX1080Ti()}
	rng := rand.New(rand.NewSource(2))

	dw := tensor.DepthwiseConv2D(1, 64, 56, 56, 3, 1, 1)
	dsp := convSpace(t, dw)
	out := est.Lower(dw, dsp.Random(rng))
	if !strings.Contains(out, "split f") || strings.Contains(out, "split rc") {
		t.Fatalf("depthwise lowering wrong:\n%s", out)
	}

	d := tensor.Dense(1, 1024, 1000)
	spd := convSpace(t, d)
	out = est.Lower(d, spd.Random(rng))
	if !strings.Contains(out, "split out") || !strings.Contains(out, "coop-threads") {
		t.Fatalf("dense lowering wrong:\n%s", out)
	}
}

func TestLowerMissingKnobs(t *testing.T) {
	// A config from an alien space lacks the template knobs; Lower must
	// degrade gracefully.
	w := tensor.Conv2D(1, 8, 8, 8, 8, 3, 1, 1)
	alien := space.New(space.NewEnumKnob("zzz", 1, 2))
	est := Estimator{Dev: GTX1080Ti()}
	out := est.Lower(w, alien.FromFlat(0))
	if !strings.Contains(out, "missing tile knobs") {
		t.Fatalf("expected missing-knob note:\n%s", out)
	}
}

func TestDeviceRegistry(t *testing.T) {
	devs := Devices()
	if len(devs) != 4 {
		t.Fatalf("device registry has %d entries", len(devs))
	}
	for name, d := range devs {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, ok := DeviceByName("gtx1080ti"); !ok {
		t.Fatal("gtx1080ti missing")
	}
	if _, ok := DeviceByName("tpu"); ok {
		t.Fatal("unknown device should miss")
	}
	// Peak ordering sanity: V100 > 1080 Ti > 1060 > TX2.
	if !(TeslaV100().PeakGFLOPS() > GTX1080Ti().PeakGFLOPS() &&
		GTX1080Ti().PeakGFLOPS() > GTX1060().PeakGFLOPS() &&
		GTX1060().PeakGFLOPS() > JetsonTX2().PeakGFLOPS()) {
		t.Fatal("device peak ordering wrong")
	}
}

func TestSameConfigDiffersAcrossDevices(t *testing.T) {
	w := tensor.Conv2D(1, 64, 28, 28, 64, 3, 1, 1)
	sp := convSpace(t, w)
	rng := rand.New(rand.NewSource(3))
	big := Estimator{Dev: TeslaV100()}
	small := Estimator{Dev: JetsonTX2()}
	for i := 0; i < 2000; i++ {
		c := sp.Random(rng)
		eb := big.Estimate(w, c)
		es := small.Estimate(w, c)
		if eb.Valid && es.Valid {
			if eb.GFLOPS <= es.GFLOPS {
				t.Fatalf("V100 (%.0f) should beat TX2 (%.0f) on the same config", eb.GFLOPS, es.GFLOPS)
			}
			return
		}
	}
	t.Skip("no mutually valid config sampled")
}
