package hwsim

import (
	"math/rand"
	"testing"

	"repro/internal/space"
	"repro/internal/tensor"
)

func TestPeakGFLOPSFor(t *testing.T) {
	v100 := TeslaV100()
	if got := v100.PeakGFLOPSFor(tensor.Float16); got != 2*v100.PeakGFLOPS() {
		t.Fatalf("V100 fp16 peak = %v", got)
	}
	ti := GTX1080Ti()
	if got := ti.PeakGFLOPSFor(tensor.Float16); got >= ti.PeakGFLOPS()/32 {
		t.Fatalf("1080 Ti fp16 peak should be crippled, got %v", got)
	}
	if ti.PeakGFLOPSFor(tensor.Float32) != ti.PeakGFLOPS() {
		t.Fatal("fp32 peak must be unchanged")
	}
	var noRatio Device
	noRatio = ti
	noRatio.FP16Ratio = 0
	if noRatio.PeakGFLOPSFor(tensor.Float16) != noRatio.PeakGFLOPS() {
		t.Fatal("zero ratio should mean fp32 rate")
	}
}

// bestOf samples configs and returns the best valid estimate.
func bestOf(t *testing.T, est Estimator, w tensor.Workload, n int, seed int64) float64 {
	t.Helper()
	sp, err := space.ForWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	best := 0.0
	for i := 0; i < n; i++ {
		if e := est.Estimate(w, sp.Random(rng)); e.Valid && e.GFLOPS > best {
			best = e.GFLOPS
		}
	}
	if best == 0 {
		t.Fatal("no valid config")
	}
	return best
}

func TestFP16FasterOnVoltaSlowerOnPascal(t *testing.T) {
	fp32 := tensor.Conv2D(1, 128, 28, 28, 128, 3, 1, 1)
	fp16 := fp32
	fp16.DType = tensor.Float16

	v100 := Estimator{Dev: TeslaV100()}
	if b16, b32 := bestOf(t, v100, fp16, 3000, 1), bestOf(t, v100, fp32, 3000, 1); b16 <= b32 {
		t.Fatalf("V100 fp16 best %.0f should beat fp32 %.0f", b16, b32)
	}
	pascal := Estimator{Dev: GTX1080Ti()}
	if b16, b32 := bestOf(t, pascal, fp16, 3000, 2), bestOf(t, pascal, fp32, 3000, 2); b16 >= b32 {
		t.Fatalf("1080 Ti fp16 best %.0f should lose to fp32 %.0f", b16, b32)
	}
}

func TestFP16HalvesMemoryFootprint(t *testing.T) {
	fp32 := tensor.Conv2D(1, 64, 56, 56, 64, 3, 1, 1)
	fp16 := fp32
	fp16.DType = tensor.Float16
	if fp16.InputBytes()*2 != fp32.InputBytes() {
		t.Fatal("fp16 input bytes should halve")
	}
	if fp16.FLOPs() != fp32.FLOPs() {
		t.Fatal("precision must not change FLOP count")
	}
}
