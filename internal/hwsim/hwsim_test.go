package hwsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/space"
	"repro/internal/tensor"
)

func TestGTX1080TiParameters(t *testing.T) {
	d := GTX1080Ti()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// The real card peaks around 11.3 TFLOPS.
	if p := d.PeakGFLOPS(); p < 10000 || p > 12500 {
		t.Fatalf("peak = %.0f GFLOPS, want ~11300", p)
	}
}

func TestDeviceValidate(t *testing.T) {
	bad := GTX1080Ti()
	bad.SMs = 0
	if bad.Validate() == nil {
		t.Fatal("zero SMs should be invalid")
	}
	bad = GTX1080Ti()
	bad.MaxThreadsPerSM = 100
	if bad.Validate() == nil {
		t.Fatal("threads-per-SM < threads-per-block should be invalid")
	}
	bad = GTX1080Ti()
	bad.SharedMemPerSM = 1
	if bad.Validate() == nil {
		t.Fatal("smem inconsistency should be invalid")
	}
	bad = GTX1080Ti()
	bad.WarpSize = 0
	if bad.Validate() == nil {
		t.Fatal("zero warp should be invalid")
	}
}

func convSpace(t *testing.T, w tensor.Workload) *space.Space {
	t.Helper()
	sp, err := space.ForWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestEstimateValidFraction(t *testing.T) {
	// A healthy template space has both feasible and infeasible points.
	w := tensor.Conv2D(1, 64, 56, 56, 64, 3, 1, 1)
	sp := convSpace(t, w)
	est := Estimator{Dev: GTX1080Ti()}
	rng := rand.New(rand.NewSource(1))
	valid, invalid := 0, 0
	for i := 0; i < 2000; i++ {
		e := est.Estimate(w, sp.Random(rng))
		if e.Valid {
			valid++
			if e.TimeMS <= 0 || e.GFLOPS <= 0 {
				t.Fatal("valid estimate must have positive time and throughput")
			}
			if e.Occupancy <= 0 || e.Occupancy > 1 {
				t.Fatalf("occupancy %v out of range", e.Occupancy)
			}
			if e.Sigma <= 0 {
				t.Fatal("sigma must be positive")
			}
		} else {
			invalid++
			if e.Reason == "" {
				t.Fatal("invalid estimate must carry a reason")
			}
		}
	}
	if valid == 0 || invalid == 0 {
		t.Fatalf("degenerate space: %d valid / %d invalid", valid, invalid)
	}
}

func TestEstimateDeterministic(t *testing.T) {
	w := tensor.Conv2D(1, 32, 28, 28, 64, 3, 1, 1)
	sp := convSpace(t, w)
	est := Estimator{Dev: GTX1080Ti()}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		c := sp.Random(rng)
		a := est.Estimate(w, c)
		b := est.Estimate(w, c)
		if a != b {
			t.Fatal("Estimate must be deterministic")
		}
	}
}

func TestEstimateGFLOPSBelowPeak(t *testing.T) {
	dev := GTX1080Ti()
	est := Estimator{Dev: dev}
	for _, w := range []tensor.Workload{
		tensor.Conv2D(1, 128, 28, 28, 128, 3, 1, 1),
		tensor.DepthwiseConv2D(1, 128, 56, 56, 3, 1, 1),
		tensor.Dense(1, 4096, 4096),
	} {
		sp := convSpace(t, w)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 500; i++ {
			e := est.Estimate(w, sp.Random(rng))
			if e.Valid && e.GFLOPS > dev.PeakGFLOPS() {
				t.Fatalf("%v: estimate %.0f GFLOPS exceeds peak %.0f", w.Op, e.GFLOPS, dev.PeakGFLOPS())
			}
		}
	}
}

func TestEstimateLandscapeHasSpread(t *testing.T) {
	// The tuning problem is only meaningful if config choice matters: the
	// best sampled config should beat the median by a wide margin.
	w := tensor.Conv2D(1, 64, 56, 56, 128, 3, 1, 1)
	sp := convSpace(t, w)
	est := Estimator{Dev: GTX1080Ti()}
	rng := rand.New(rand.NewSource(11))
	var gf []float64
	for i := 0; i < 3000; i++ {
		e := est.Estimate(w, sp.Random(rng))
		if e.Valid {
			gf = append(gf, e.GFLOPS)
		}
	}
	if len(gf) < 100 {
		t.Fatalf("too few valid configs: %d", len(gf))
	}
	best, sum := 0.0, 0.0
	for _, g := range gf {
		if g > best {
			best = g
		}
		sum += g
	}
	mean := sum / float64(len(gf))
	if best < 3*mean {
		t.Fatalf("landscape too flat: best %.0f vs mean %.0f", best, mean)
	}
}

func TestResourceLimitsRejectHugeBlocks(t *testing.T) {
	// Force a configuration with threads > 1024 and check rejection.
	w := tensor.Conv2D(1, 64, 64, 64, 64, 3, 1, 1)
	sp := convSpace(t, w)
	est := Estimator{Dev: GTX1080Ti()}
	// Find the option index with the largest thread product for each axis.
	pickMaxThread := func(name string) int {
		k := sp.KnobByName(name).(*space.SplitKnob)
		bestI, bestV := 0, 0
		for i := 0; i < k.Len(); i++ {
			f := k.Factors(i)
			if f[2] > bestV {
				bestV = f[2]
				bestI = i
			}
		}
		return bestI
	}
	idx := make([]int, sp.NumKnobs())
	for i := 0; i < sp.NumKnobs(); i++ {
		switch sp.Knob(i).Name() {
		case space.KnobTileF:
			idx[i] = pickMaxThread(space.KnobTileF)
		case space.KnobTileY:
			idx[i] = pickMaxThread(space.KnobTileY)
		case space.KnobTileX:
			idx[i] = pickMaxThread(space.KnobTileX)
		}
	}
	c, err := sp.FromIndices(idx)
	if err != nil {
		t.Fatal(err)
	}
	e := est.Estimate(w, c)
	if e.Valid {
		t.Fatalf("64*64*64-thread block should be rejected, got %+v", e)
	}
}

func TestMeasureNoiseAndCounting(t *testing.T) {
	w := tensor.Conv2D(1, 32, 28, 28, 64, 3, 1, 1)
	sp := convSpace(t, w)
	sim := NewSimulator(GTX1080Ti(), 42)
	rng := rand.New(rand.NewSource(5))
	var c space.Config
	est := sim.Estimator()
	for {
		c = sp.Random(rng)
		if est.Estimate(w, c).Valid {
			break
		}
	}
	truth := est.Estimate(w, c)
	n := 200
	var acc, dev float64
	for i := 0; i < n; i++ {
		m := sim.Measure(w, c)
		if !m.Valid {
			t.Fatal("valid config should measure")
		}
		acc += m.TimeMS
		d := m.TimeMS - truth.TimeMS
		dev += d * d
	}
	if sim.MeasureCount() != int64(n) {
		t.Fatalf("count = %d, want %d", sim.MeasureCount(), n)
	}
	mean := acc / float64(n)
	if math.Abs(mean-truth.TimeMS)/truth.TimeMS > 0.05 {
		t.Fatalf("noisy mean %.4f far from truth %.4f", mean, truth.TimeMS)
	}
	if dev == 0 {
		t.Fatal("measurements should be noisy")
	}
	sim.ResetCount()
	if sim.MeasureCount() != 0 {
		t.Fatal("ResetCount failed")
	}
}

func TestMeasureInvalidConfig(t *testing.T) {
	w := tensor.Conv2D(1, 64, 64, 64, 64, 3, 1, 1)
	sp := convSpace(t, w)
	sim := NewSimulator(GTX1080Ti(), 1)
	est := sim.Estimator()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		c := sp.Random(rng)
		if !est.Estimate(w, c).Valid {
			m := sim.Measure(w, c)
			if m.Valid || m.Error == "" || m.GFLOPS != 0 {
				t.Fatalf("invalid config measured as %+v", m)
			}
			return
		}
	}
	t.Skip("no invalid config sampled")
}

func TestNetworkLatency(t *testing.T) {
	w1 := tensor.Conv2D(1, 32, 56, 56, 64, 3, 1, 1)
	w2 := tensor.DepthwiseConv2D(1, 64, 56, 56, 3, 1, 1)
	sim := NewSimulator(GTX1080Ti(), 10)
	est := sim.Estimator()
	rng := rand.New(rand.NewSource(2))
	pick := func(w tensor.Workload) space.Config {
		sp := convSpace(t, w)
		for {
			c := sp.Random(rng)
			if est.Estimate(w, c).Valid {
				return c
			}
		}
	}
	deps := []Deployment{
		{Workload: w1, Config: pick(w1), Count: 2},
		{Workload: w2, Config: pick(w2), Count: 1},
	}
	mean, variance, err := sim.NetworkLatency(deps, 600)
	if err != nil {
		t.Fatal(err)
	}
	e1 := est.Estimate(w1, deps[0].Config)
	e2 := est.Estimate(w2, deps[1].Config)
	expect := 2*e1.TimeMS + e2.TimeMS + FrameworkOverheadMS
	if math.Abs(mean-expect)/expect > 0.05 {
		t.Fatalf("latency mean %.4f, expected about %.4f", mean, expect)
	}
	if variance <= 0 {
		t.Fatal("variance should be positive")
	}
	if _, _, err := sim.NetworkLatency(deps, 0); err == nil {
		t.Fatal("zero runs should error")
	}
}

func TestNetworkLatencyInfeasible(t *testing.T) {
	w := tensor.Conv2D(1, 64, 64, 64, 64, 3, 1, 1)
	sp := convSpace(t, w)
	sim := NewSimulator(GTX1080Ti(), 3)
	est := sim.Estimator()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		c := sp.Random(rng)
		if !est.Estimate(w, c).Valid {
			if _, _, err := sim.NetworkLatency([]Deployment{{Workload: w, Config: c}}, 10); err == nil {
				t.Fatal("infeasible deployment should error")
			}
			return
		}
	}
	t.Skip("no invalid config sampled")
}

func TestBetterConfigLowerSigma(t *testing.T) {
	// The Table-I variance mechanism: higher-GFLOPS configs should on
	// average carry lower run-to-run noise.
	w := tensor.Conv2D(1, 128, 28, 28, 128, 3, 1, 1)
	sp := convSpace(t, w)
	est := Estimator{Dev: GTX1080Ti()}
	rng := rand.New(rand.NewSource(17))
	type pt struct{ g, s float64 }
	var pts []pt
	for i := 0; i < 4000; i++ {
		e := est.Estimate(w, sp.Random(rng))
		if e.Valid {
			pts = append(pts, pt{e.GFLOPS, e.Sigma})
		}
	}
	if len(pts) < 200 {
		t.Fatalf("too few valid points: %d", len(pts))
	}
	// Compare mean sigma of the top GFLOPS decile vs the bottom decile.
	bestG := 0.0
	for _, p := range pts {
		if p.g > bestG {
			bestG = p.g
		}
	}
	var hi, lo []float64
	for _, p := range pts {
		if p.g > 0.5*bestG {
			hi = append(hi, p.s)
		} else if p.g < 0.1*bestG {
			lo = append(lo, p.s)
		}
	}
	if len(hi) == 0 || len(lo) == 0 {
		t.Skip("not enough spread to compare")
	}
	mhi, mlo := 0.0, 0.0
	for _, s := range hi {
		mhi += s
	}
	for _, s := range lo {
		mlo += s
	}
	mhi /= float64(len(hi))
	mlo /= float64(len(lo))
	if mhi >= mlo {
		t.Fatalf("good configs sigma %.4f should be below bad configs %.4f", mhi, mlo)
	}
}

func TestHashJitterRange(t *testing.T) {
	f := func(flat uint64) bool {
		v := hashJitter("conv_x", flat)
		return v >= -1 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	if hashJitter("a", 1) == hashJitter("b", 1) {
		t.Fatal("jitter should depend on workload key")
	}
	if hashJitter("a", 1) != hashJitter("a", 1) {
		t.Fatal("jitter must be deterministic")
	}
}

func TestEstimatorCustomScales(t *testing.T) {
	w := tensor.Conv2D(1, 32, 28, 28, 32, 3, 1, 1)
	sp := convSpace(t, w)
	rng := rand.New(rand.NewSource(8))
	smooth := Estimator{Dev: GTX1080Ti(), Ruggedness: 1e-9, BaseSigma: 1e-9}
	rough := Estimator{Dev: GTX1080Ti(), Ruggedness: 0.2}
	var c space.Config
	for {
		c = sp.Random(rng)
		if smooth.Estimate(w, c).Valid {
			break
		}
	}
	a := smooth.Estimate(w, c)
	b := rough.Estimate(w, c)
	if a.TimeMS == b.TimeMS {
		t.Fatal("ruggedness scale should change the landscape")
	}
	if a.Sigma >= (Estimator{Dev: GTX1080Ti()}).baseSigma() {
		t.Fatal("custom sigma scale not applied")
	}
	sim := NewSimulatorWith(smooth, 1)
	if sim.Estimator().Ruggedness != 1e-9 {
		t.Fatal("NewSimulatorWith lost settings")
	}
}

func TestDepthwiseAndDenseEstimates(t *testing.T) {
	est := Estimator{Dev: GTX1080Ti()}
	rng := rand.New(rand.NewSource(21))
	for _, w := range []tensor.Workload{
		tensor.DepthwiseConv2D(1, 256, 14, 14, 3, 1, 1),
		tensor.Dense(1, 9216, 4096),
	} {
		sp := convSpace(t, w)
		found := false
		for i := 0; i < 3000; i++ {
			e := est.Estimate(w, sp.Random(rng))
			if e.Valid {
				found = true
				if e.GFLOPS <= 0 || e.TimeMS <= 0 {
					t.Fatalf("%v: bad estimate %+v", w.Op, e)
				}
			}
		}
		if !found {
			t.Fatalf("%v: no valid config found", w.Op)
		}
	}
	// Unsupported op.
	bad := tensor.Workload{Op: tensor.OpKind(9), N: 1, C: 1, F: 1}
	if est.Estimate(bad, space.Config{}).Valid {
		t.Fatal("unsupported op should be invalid")
	}
}

func TestBestPossibleGFLOPS(t *testing.T) {
	w := tensor.Conv2D(1, 64, 28, 28, 64, 3, 1, 1)
	sp := convSpace(t, w)
	sim := NewSimulator(GTX1080Ti(), 6)
	before := sim.MeasureCount()
	g := sim.BestPossibleGFLOPS(w, sp, 500, 1)
	if g <= 0 {
		t.Fatal("bound should be positive")
	}
	if sim.MeasureCount() != before {
		t.Fatal("diagnostics must not consume measurement budget")
	}
}
