package hwsim

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/space"
	"repro/internal/tensor"
)

// TestSimulatorConcurrentMeasure hammers one Simulator from many
// goroutines. Under `go test -race` this validates the mutex discipline
// around the shared noise RNG; in any mode the budget counter must account
// for every measurement exactly once.
func TestSimulatorConcurrentMeasure(t *testing.T) {
	w := tensor.Conv2D(1, 32, 28, 28, 64, 3, 1, 1)
	sp := convSpace(t, w)
	sim := NewSimulator(GTX1080Ti(), 7)
	rng := rand.New(rand.NewSource(3))
	cfgs := make([]space.Config, 8)
	for i := range cfgs {
		cfgs[i] = sp.Random(rng)
	}

	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sim.Measure(w, cfgs[(g+i)%len(cfgs)])
			}
		}(g)
	}
	wg.Wait()

	if got := sim.MeasureCount(); got != workers*perWorker {
		t.Fatalf("MeasureCount = %d, want %d (a lost update means the budget accounting raced)", got, workers*perWorker)
	}
	sim.ResetCount()
	if got := sim.MeasureCount(); got != 0 {
		t.Fatalf("MeasureCount after reset = %d, want 0", got)
	}
}
