package hwsim

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/space"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Measurement is the result of one simulated on-chip run, mirroring what
// AutoTVM's measure loop returns to the tuner.
type Measurement struct {
	Valid  bool
	Error  string  // populated when the config failed to launch
	TimeMS float64 // measured kernel time, with run-to-run noise
	GFLOPS float64 // achieved throughput; 0 for invalid configs
}

// Simulator is the stateful measurement environment: it owns the noise RNG
// and counts measurements (the experimental budget currency of the paper).
// It is safe for concurrent use.
type Simulator struct {
	est Estimator

	mu    sync.Mutex
	rng   *rand.Rand
	count int64
}

// NewSimulator builds a simulator on the device with a deterministic
// measurement-noise stream.
func NewSimulator(dev Device, seed int64) *Simulator {
	if err := dev.Validate(); err != nil {
		//lint:ignore panicpath constructor invariant: an invalid Device is a programmer error caught before any experiment runs
		panic(err)
	}
	return &Simulator{est: Estimator{Dev: dev}, rng: rand.New(rand.NewSource(seed))}
}

// NewSimulatorWith builds a simulator with explicit estimator settings
// (ruggedness / noise scale), used by ablation experiments.
func NewSimulatorWith(est Estimator, seed int64) *Simulator {
	if err := est.Dev.Validate(); err != nil {
		//lint:ignore panicpath constructor invariant: an invalid Device is a programmer error caught before any experiment runs
		panic(err)
	}
	return &Simulator{est: est, rng: rand.New(rand.NewSource(seed))}
}

// Estimator exposes the underlying deterministic model.
func (s *Simulator) Estimator() Estimator { return s.est }

// Device returns the simulated device.
func (s *Simulator) Device() Device { return s.est.Dev }

// MeasureCount returns how many measurements have been issued, the cost
// metric of Fig. 5(a).
func (s *Simulator) MeasureCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// ResetCount zeroes the measurement counter (between per-task experiments).
func (s *Simulator) ResetCount() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count = 0
}

// Measure deploys (workload, config) once and returns the noisy result.
// Invalid configurations consume budget and return an error measurement,
// exactly as failed on-chip compilations do under AutoTVM. The noise draw
// comes from the simulator's shared stream, so results depend on the global
// measurement order; order-independent callers use MeasureSeeded.
func (s *Simulator) Measure(w tensor.Workload, c space.Config) Measurement {
	s.mu.Lock()
	s.count++
	z := s.rng.NormFloat64()
	s.mu.Unlock()
	return s.finish(w, c, z)
}

// MeasureSeeded deploys (workload, config) once like Measure, but draws the
// run-to-run noise from the explicit per-call seed instead of the shared
// stream. Two calls with the same (workload, config, seed) return bit-equal
// measurements no matter how many other measurements ran in between or on
// which goroutine — the property the deterministic parallel measurement
// engine is built on (see DESIGN.md, "Seed splitting"). The measurement
// counter is still shared and still increments.
func (s *Simulator) MeasureSeeded(w tensor.Workload, c space.Config, noiseSeed int64) Measurement {
	s.mu.Lock()
	s.count++
	s.mu.Unlock()
	z := rand.New(rand.NewSource(noiseSeed)).NormFloat64()
	return s.finish(w, c, z)
}

// finish layers the noise draw z on the deterministic estimate.
func (s *Simulator) finish(w tensor.Workload, c space.Config, z float64) Measurement {
	e := s.est.Estimate(w, c)
	if !e.Valid {
		return Measurement{Valid: false, Error: e.Reason}
	}
	t := e.TimeMS * math.Exp(e.Sigma*z)
	return Measurement{
		Valid:  true,
		TimeMS: t,
		GFLOPS: float64(w.FLOPs()) / (t * 1e6),
	}
}

// NoiseSeed derives the per-measurement noise seed of a configuration from
// the run seed: a splitmix64-style finalizer over (runSeed, flat). The value
// depends only on its two inputs — never on measurement order or worker
// assignment — which makes every seeded measurement of a run reproducible
// in isolation.
func NoiseSeed(runSeed int64, flat uint64) int64 {
	x := uint64(runSeed) ^ (flat * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// Deployment binds one tuned task to the number of graph nodes that share
// it; end-to-end latency sums Count copies of the kernel.
type Deployment struct {
	Workload tensor.Workload
	Config   space.Config
	Count    int
}

// FrameworkOverheadMS is the fixed per-inference runtime overhead (graph
// executor dispatch, untuned glue operators such as pooling and softmax).
const FrameworkOverheadMS = 0.05

// NetworkLatency simulates `runs` end-to-end inferences of a deployed model
// and returns the mean latency (ms) and the population variance across runs
// — the two columns of the paper's Table I (600 runs there). It returns an
// error if any deployment is infeasible.
func (s *Simulator) NetworkLatency(deps []Deployment, runs int) (meanMS, variance float64, err error) {
	if runs <= 0 {
		return 0, 0, fmt.Errorf("hwsim: runs must be positive, got %d", runs)
	}
	type node struct {
		t     float64
		sigma float64
		n     int
	}
	nodes := make([]node, 0, len(deps))
	for _, d := range deps {
		e := s.est.Estimate(d.Workload, d.Config)
		if !e.Valid {
			return 0, 0, fmt.Errorf("hwsim: deployment of %s is infeasible: %s", d.Workload.Key(), e.Reason)
		}
		cnt := d.Count
		if cnt <= 0 {
			cnt = 1
		}
		nodes = append(nodes, node{t: e.TimeMS, sigma: e.Sigma, n: cnt})
	}
	var acc stats.Running
	s.mu.Lock()
	defer s.mu.Unlock()
	for r := 0; r < runs; r++ {
		total := FrameworkOverheadMS * math.Exp(0.02*s.rng.NormFloat64())
		for _, nd := range nodes {
			for k := 0; k < nd.n; k++ {
				total += nd.t * math.Exp(nd.sigma*s.rng.NormFloat64())
			}
		}
		acc.Add(total)
	}
	return acc.Mean(), acc.Variance(), nil
}

// BestPossibleGFLOPS scans n random configs plus the neighborhood of the
// best found, returning an optimistic throughput bound for a workload.
// Used only by diagnostics and tests, never by the tuners.
func (s *Simulator) BestPossibleGFLOPS(w tensor.Workload, sp *space.Space, n int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	best := 0.0
	for i := 0; i < n; i++ {
		e := s.est.Estimate(w, sp.Random(rng))
		if e.Valid && e.GFLOPS > best {
			best = e.GFLOPS
		}
	}
	return best
}
