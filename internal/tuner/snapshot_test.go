package tuner

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/backend"
	"repro/internal/snap"
	"repro/internal/tensor"
	"repro/internal/transfer"
)

// roundTripState pushes a snapshot through the snap codec — encode, parse,
// decode — so the continuation proves the serialized form, not just the
// in-memory struct, carries the whole session.
func roundTripState(t *testing.T, st SessionState) SessionState {
	t.Helper()
	frame, err := snap.Encode("tuner-session/v1", st)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := snap.Read(frame)
	if err != nil || len(frames) != 1 {
		t.Fatalf("snap.Read: %v (%d frames)", err, len(frames))
	}
	var got SessionState
	if err := frames[0].Unmarshal(&got); err != nil {
		t.Fatal(err)
	}
	// Re-encoding the decoded state must reproduce the frame bytes: the
	// codec is deterministic, so checkpoint files are replayable.
	again, err := snap.Encode("tuner-session/v1", got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, again) {
		t.Fatalf("snapshot encode→decode→encode not byte-identical:\n%q\n%q", frame, again)
	}
	return got
}

// TestGoldenSnapshotRestoreContinue is the tentpole contract: for every
// tuner, snapshotting at *every* Step boundary, serializing through the
// snap codec, restoring against a freshly built task and backend, and
// driving to completion is bit-identical to the uninterrupted run.
func TestGoldenSnapshotRestoreContinue(t *testing.T) {
	for _, tn := range goldenTuners() {
		tn := tn
		t.Run(tn.Name(), func(t *testing.T) {
			t.Parallel()
			opts := quickOpts(48, 23)
			task := testTask(t)
			want, werr := tn.Tune(context.Background(), task, sim(3), opts)
			if werr != nil && !errors.Is(werr, ErrNoValidConfig) {
				t.Fatal(werr)
			}

			for cut := 0; ; cut++ {
				// Run the original up to the cut boundary.
				sess, err := tn.Open(context.Background(), task, sim(3), opts)
				if err != nil {
					t.Fatal(err)
				}
				doneAtCut := false
				for k := 0; k < cut; k++ {
					done, serr := sess.Step(context.Background())
					if serr != nil {
						t.Fatalf("cut %d step %d: %v", cut, k, serr)
					}
					if done {
						doneAtCut = true
						break
					}
				}
				st, err := sess.(Snapshotter).Snapshot()
				if err != nil {
					t.Fatalf("cut %d: snapshot: %v", cut, err)
				}
				st = roundTripState(t, st)

				// Restore against a freshly built task and backend: nothing
				// may hide in shared pointers.
				fresh := testTask(t)
				restored, err := tn.Restore(context.Background(), fresh, sim(3), opts, st)
				if err != nil {
					t.Fatalf("cut %d: restore: %v", cut, err)
				}
				// A restored session's immediate snapshot is the same state.
				st2, err := restored.(Snapshotter).Snapshot()
				if err != nil {
					t.Fatalf("cut %d: re-snapshot: %v", cut, err)
				}
				a, _ := snap.Encode("tuner-session/v1", st)
				b, _ := snap.Encode("tuner-session/v1", st2)
				if !bytes.Equal(a, b) {
					t.Fatalf("cut %d: restored session snapshots differently:\n%q\n%q", cut, a, b)
				}

				got, gerr := Drive(context.Background(), restored)
				if (werr == nil) != (gerr == nil) || (werr != nil && werr.Error() != gerr.Error()) {
					t.Fatalf("cut %d: error mismatch: uninterrupted=%v restored=%v", cut, werr, gerr)
				}
				if !sameResult(want, got) {
					t.Fatalf("cut %d: restored continuation differs: want n=%d best=%v, got n=%d best=%v",
						cut, want.Measurements, want.Best.GFLOPS, got.Measurements, got.Best.GFLOPS)
				}
				if doneAtCut {
					break // every boundary of the run has been covered
				}
			}
		})
	}
}

// TestGoldenSnapshotTransferChain snapshots the warm-started second task
// mid-run and restores it against a reconstructed transfer history: the
// continuation must still be bit-identical, proving boundary-snapshotted
// transfer views can be rebuilt from published results.
func TestGoldenSnapshotTransferChain(t *testing.T) {
	tn := NewAutoTVM()
	mkTasks := func() (*Task, *Task) {
		return goldenTask(t, "snap.a", tensor.Conv2D(1, 32, 28, 28, 64, 3, 1, 1)),
			goldenTask(t, "snap.b", tensor.Conv2D(1, 64, 14, 14, 128, 3, 1, 1))
	}
	ta, tb := mkTasks()
	baseOpts := quickOpts(48, 37)

	// Uninterrupted chain.
	h := transfer.NewHistory()
	opts := baseOpts
	opts.Transfer = h
	ra, err := tn.Tune(context.Background(), ta, sim(13), opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tn.Tune(context.Background(), tb, sim(13), opts)
	if err != nil {
		t.Fatal(err)
	}

	// Chain again, snapshotting task b after its first two steps.
	h2 := transfer.NewHistory()
	opts2 := baseOpts
	opts2.Transfer = h2
	if _, err := tn.Tune(context.Background(), ta, sim(13), opts2); err != nil {
		t.Fatal(err)
	}
	sess, err := tn.Open(context.Background(), tb, sim(13), opts2)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		if done, serr := sess.Step(context.Background()); serr != nil || done {
			t.Fatalf("step %d: done=%v err=%v", k, done, serr)
		}
	}
	st, err := sess.(Snapshotter).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	st = roundTripState(t, st)

	// Restore in a "new process": fresh tasks, fresh backend, and a
	// transfer history rebuilt by re-publishing task a's result.
	fa, fb := mkTasks()
	h3 := transfer.NewHistory()
	h3.Add(fa.Name, fa.Workload.Op, ra.Samples)
	opts3 := baseOpts
	opts3.Transfer = h3
	restored, err := tn.Restore(context.Background(), fb, sim(13), opts3, st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drive(context.Background(), restored)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(want, got) {
		t.Error("restored warm-started continuation differs from uninterrupted chain")
	}
}

// TestSnapshotErrors pins the failure modes: finalized sessions refuse to
// snapshot, mismatched restores fail loudly, and AsOpener's wrapper for
// non-stepwise tuners reports ErrSnapshotUnsupported.
func TestSnapshotErrors(t *testing.T) {
	task := testTask(t)
	opts := quickOpts(16, 5)
	tn := RandomTuner{}
	sess, err := tn.Open(context.Background(), task, sim(3), opts)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sess.(Snapshotter).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drive(context.Background(), sess); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.(Snapshotter).Snapshot(); err == nil {
		t.Error("finalized session allowed Snapshot")
	}

	if _, err := (GridTuner{}).Restore(context.Background(), task, sim(3), opts, st); err == nil {
		t.Error("restore accepted a snapshot from a different tuner")
	}
	bad := st
	bad.Task = "someone-else"
	if _, err := tn.Restore(context.Background(), task, sim(3), opts, bad); err == nil {
		t.Error("restore accepted a snapshot from a different task")
	}
	bad = st
	bad.Base.Seed++
	if _, err := tn.Restore(context.Background(), task, sim(3), opts, bad); err == nil {
		t.Error("restore accepted mismatched seeds")
	}
	bad = st
	bad.Version = 99
	if _, err := tn.Restore(context.Background(), task, sim(3), opts, bad); err == nil {
		t.Error("restore accepted an unknown snapshot version")
	}

	mono := AsOpener(plainTuner{})
	if _, err := mono.Restore(context.Background(), task, sim(3), opts, st); !errors.Is(err, ErrSnapshotUnsupported) {
		t.Errorf("mono restore err = %v, want ErrSnapshotUnsupported", err)
	}
	monoSess, err := mono.Open(context.Background(), task, sim(3), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := monoSess.(Snapshotter); ok {
		t.Error("mono session claims to be a Snapshotter")
	}
}

// plainTuner is a minimal non-Opener Tuner for the AsOpener fallback path.
type plainTuner struct{}

func (plainTuner) Name() string { return "plain" }
func (plainTuner) Tune(_ context.Context, _ *Task, _ backend.Backend, _ Options) (Result, error) {
	return Result{}, nil
}
