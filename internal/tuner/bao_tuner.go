package tuner

import (
	"context"
	"fmt"
	"time"

	"repro/internal/active"
	"repro/internal/backend"
	"repro/internal/space"
)

// AdvancedTuner is the paper's full advanced active-learning framework
// (Fig. 3): BTED builds the diverse initialization set, then BAO performs
// bootstrap-guided adaptive optimization over incumbent neighborhoods,
// deploying one configuration per iteration.
type AdvancedTuner struct {
	// BTED configures the initialization (zero value = paper defaults).
	BTED active.BTEDParams
	// BAO configures the iterative stage (zero value = paper defaults:
	// eta 0.05, Gamma 2, tau 1.5, R 3). T and EarlyStop are overridden
	// from the run Options.
	BAO active.BAOParams
	// Trainer builds the bootstrap evaluation functions; nil selects the
	// XGBoost trainer.
	Trainer active.EvalTrainer
}

// NewBTEDBAO returns the paper's "BTED + BAO" arm with its experimental
// settings.
func NewBTEDBAO() *AdvancedTuner {
	return &AdvancedTuner{BTED: active.DefaultBTEDParams()}
}

// Name implements Tuner.
func (*AdvancedTuner) Name() string { return "bted+bao" }

// Open implements Opener: the first step measures the BTED initialization
// set as one parallel batch, and each later step performs exactly one BAO
// iteration (the BAO stage is inherently sequential — each step's
// neighborhood depends on the previous measurement — so it deploys one
// configuration at a time regardless of Workers).
func (t *AdvancedTuner) Open(_ context.Context, task *Task, b backend.Backend, opts Options) (Session, error) {
	return t.open(task, b, opts, nil)
}

// Restore implements Opener. The BAO iteration state (incumbent,
// trajectory, stall counters, every sample it has deployed) rides in the
// snapshot; the bootstrap trainer is rebuilt fresh, trainers being pure
// functions of their arguments.
func (t *AdvancedTuner) Restore(_ context.Context, task *Task, b backend.Backend, opts Options, st SessionState) (Session, error) {
	return t.open(task, b, opts, &st)
}

func (t *AdvancedTuner) open(task *Task, b backend.Backend, opts Options, st *SessionState) (Session, error) {
	opts = opts.normalized()
	s, err := openSession(t.Name(), task, b, opts, st)
	if err != nil {
		return nil, err
	}
	rng := s.src.Rand()
	trainer := t.Trainer
	if trainer == nil {
		trainer = active.NewXGBTrainer()
	}

	ex := &advancedState{}
	if err := unmarshalExtra(st, ex); err != nil {
		return nil, err
	}
	var run *active.BAORun
	if ex.BAO != nil {
		run, err = active.RestoreBAORun(task.Space, trainer, *ex.BAO)
		if err != nil {
			return nil, fmt.Errorf("tuner: restore %s: %w", t.Name(), err)
		}
	}
	step := func(ctx context.Context) bool {
		// Polled before every iteration, this check plays the role of the
		// one-shot path's BAOParams.Stop hook: the run ends as soon as the
		// session's budget, early stopping, or ctx says to.
		if s.exhausted(ctx) {
			return true
		}
		if !ex.Inited {
			// ---- Initialization: BTED (Algorithms 1 & 2) -----------------
			ex.Inited = true
			bp := t.BTED
			bp.M0 = opts.PlanSize
			initDone := opts.Phases.track(PhaseInitSet)
			init := active.BTED(task.Space, bp, rng)
			initDone()
			s.measureBatch(ctx, init)

			// ---- Iterative optimization: BAO (Algorithms 3 & 4) ----------
			bao := t.BAO
			bao.T = opts.Budget - len(s.samples)
			if opts.EarlyStop > 0 {
				bao.EarlyStop = opts.EarlyStop
			} else {
				bao.EarlyStop = 0
			}
			// Guarded so a non-positive remaining budget is not reset to the
			// paper default by BAOParams.normalized().
			if bao.T <= 0 || s.exhausted(ctx) {
				return true
			}
			run = active.NewBAORun(task.Space, trainer, s.knowledge(), bao)
			return false
		}
		if run == nil {
			return true
		}
		// One BAO iteration is bootstrap training + neighborhood scoring
		// with a measurement in the middle; everything outside the measure
		// callback is candidate selection (the bootstrap-model training is
		// inseparable from it in BAO's step, so it lands in this bucket
		// rather than surrogate_train).
		stepStart := time.Now() //lint:ignore walltime PhaseTimes observability: the duration is only accumulated, never branched on
		var measured time.Duration
		measure := func(c space.Config) (float64, bool) {
			m0 := time.Now() //lint:ignore walltime PhaseTimes observability: splits measurement time out of the BAO step
			//lint:ignore walltime PhaseTimes observability: accumulate-only, no control flow reads it
			defer func() { measured += time.Since(m0) }()
			before := len(s.samples)
			s.measure(ctx, c)
			if len(s.samples) == before {
				// Budget exhausted, cancelled, or config already visited:
				// report an invalid deployment so BAO's own stopping logic
				// winds down.
				return 0, false
			}
			last := s.samples[len(s.samples)-1]
			return last.GFLOPS, last.Valid
		}
		stop := run.Step(rng, measure, nil) || s.exhausted(ctx)
		//lint:ignore walltime PhaseTimes observability: reported upward only, tuning decisions never read it
		opts.Phases.Add(PhaseCandidateSelection, time.Since(stepStart)-measured)
		return stop
	}
	ss := newStepSession(t.Name(), s, step).restoredFrom(st)
	return ss.withExtra(func() (any, error) {
		out := advancedState{Inited: ex.Inited}
		if run != nil {
			bs := run.State()
			out.BAO = &bs
		}
		return out, nil
	}), nil
}

// Tune implements Tuner.
func (t *AdvancedTuner) Tune(ctx context.Context, task *Task, b backend.Backend, opts Options) (Result, error) {
	return tune(ctx, t, task, b, opts)
}
