package tuner

import (
	"context"
	"math/rand"

	"repro/internal/active"
	"repro/internal/backend"
	"repro/internal/space"
)

// AdvancedTuner is the paper's full advanced active-learning framework
// (Fig. 3): BTED builds the diverse initialization set, then BAO performs
// bootstrap-guided adaptive optimization over incumbent neighborhoods,
// deploying one configuration per iteration.
type AdvancedTuner struct {
	// BTED configures the initialization (zero value = paper defaults).
	BTED active.BTEDParams
	// BAO configures the iterative stage (zero value = paper defaults:
	// eta 0.05, Gamma 2, tau 1.5, R 3). T and EarlyStop are overridden
	// from the run Options.
	BAO active.BAOParams
	// Trainer builds the bootstrap evaluation functions; nil selects the
	// XGBoost trainer.
	Trainer active.EvalTrainer
}

// NewBTEDBAO returns the paper's "BTED + BAO" arm with its experimental
// settings.
func NewBTEDBAO() *AdvancedTuner {
	return &AdvancedTuner{BTED: active.DefaultBTEDParams()}
}

// Name implements Tuner.
func (*AdvancedTuner) Name() string { return "bted+bao" }

// Tune implements Tuner.
func (t *AdvancedTuner) Tune(ctx context.Context, task *Task, b backend.Backend, opts Options) (Result, error) {
	opts = opts.normalized()
	rng := rand.New(rand.NewSource(opts.Seed))
	s := newSession(task, b, opts)

	// ---- Initialization: BTED (Algorithms 1 & 2) ---------------------------
	// The initialization set is measured as one deterministic parallel
	// batch; the BAO stage below is inherently sequential (each step's
	// neighborhood depends on the previous measurement), so it deploys one
	// configuration at a time regardless of Workers.
	bp := t.BTED
	bp.M0 = opts.PlanSize
	s.measureBatch(ctx, active.BTED(task.Space, bp, rng))

	// ---- Iterative optimization: BAO (Algorithms 3 & 4) --------------------
	trainer := t.Trainer
	if trainer == nil {
		trainer = active.NewXGBTrainer()
	}
	bao := t.BAO
	bao.T = opts.Budget - len(s.samples)
	if opts.EarlyStop > 0 {
		bao.EarlyStop = opts.EarlyStop
	} else {
		bao.EarlyStop = 0
	}
	// BAO's per-step work (bootstrap model trainings) happens outside the
	// session, so cancellation is surfaced through the Stop hook: polled
	// before each iteration, it ends the loop as soon as the session's
	// budget, early stopping, or ctx says to.
	bao.Stop = func() bool { return s.exhausted(ctx) }
	if bao.T > 0 && !s.exhausted(ctx) {
		measure := func(c space.Config) (float64, bool) {
			before := len(s.samples)
			s.measure(ctx, c)
			if len(s.samples) == before {
				// Budget exhausted, cancelled, or config already visited:
				// report an invalid deployment so BAO's own stopping logic
				// winds down.
				return 0, false
			}
			last := s.samples[len(s.samples)-1]
			return last.GFLOPS, last.Valid
		}
		init := append([]active.Sample(nil), s.knowledge()...)
		active.BAO(task.Space, trainer, init, measure, bao, rng, nil)
	}
	return s.result(t.Name())
}
