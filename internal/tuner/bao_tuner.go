package tuner

import (
	"context"
	"math/rand"
	"time"

	"repro/internal/active"
	"repro/internal/backend"
	"repro/internal/space"
)

// AdvancedTuner is the paper's full advanced active-learning framework
// (Fig. 3): BTED builds the diverse initialization set, then BAO performs
// bootstrap-guided adaptive optimization over incumbent neighborhoods,
// deploying one configuration per iteration.
type AdvancedTuner struct {
	// BTED configures the initialization (zero value = paper defaults).
	BTED active.BTEDParams
	// BAO configures the iterative stage (zero value = paper defaults:
	// eta 0.05, Gamma 2, tau 1.5, R 3). T and EarlyStop are overridden
	// from the run Options.
	BAO active.BAOParams
	// Trainer builds the bootstrap evaluation functions; nil selects the
	// XGBoost trainer.
	Trainer active.EvalTrainer
}

// NewBTEDBAO returns the paper's "BTED + BAO" arm with its experimental
// settings.
func NewBTEDBAO() *AdvancedTuner {
	return &AdvancedTuner{BTED: active.DefaultBTEDParams()}
}

// Name implements Tuner.
func (*AdvancedTuner) Name() string { return "bted+bao" }

// Open implements Opener: the first step measures the BTED initialization
// set as one parallel batch, and each later step performs exactly one BAO
// iteration (the BAO stage is inherently sequential — each step's
// neighborhood depends on the previous measurement — so it deploys one
// configuration at a time regardless of Workers).
func (t *AdvancedTuner) Open(_ context.Context, task *Task, b backend.Backend, opts Options) (Session, error) {
	opts = opts.normalized()
	rng := rand.New(rand.NewSource(opts.Seed))
	s := newSession(task, b, opts)

	var run *active.BAORun
	inited := false
	step := func(ctx context.Context) bool {
		// Polled before every iteration, this check plays the role of the
		// one-shot path's BAOParams.Stop hook: the run ends as soon as the
		// session's budget, early stopping, or ctx says to.
		if s.exhausted(ctx) {
			return true
		}
		if !inited {
			// ---- Initialization: BTED (Algorithms 1 & 2) -----------------
			inited = true
			bp := t.BTED
			bp.M0 = opts.PlanSize
			initDone := opts.Phases.track(PhaseInitSet)
			init := active.BTED(task.Space, bp, rng)
			initDone()
			s.measureBatch(ctx, init)

			// ---- Iterative optimization: BAO (Algorithms 3 & 4) ----------
			trainer := t.Trainer
			if trainer == nil {
				trainer = active.NewXGBTrainer()
			}
			bao := t.BAO
			bao.T = opts.Budget - len(s.samples)
			if opts.EarlyStop > 0 {
				bao.EarlyStop = opts.EarlyStop
			} else {
				bao.EarlyStop = 0
			}
			// Guarded so a non-positive remaining budget is not reset to the
			// paper default by BAOParams.normalized().
			if bao.T <= 0 || s.exhausted(ctx) {
				return true
			}
			run = active.NewBAORun(task.Space, trainer, s.knowledge(), bao, rng)
			return false
		}
		if run == nil {
			return true
		}
		// One BAO iteration is bootstrap training + neighborhood scoring
		// with a measurement in the middle; everything outside the measure
		// callback is candidate selection (the bootstrap-model training is
		// inseparable from it in BAO's step, so it lands in this bucket
		// rather than surrogate_train).
		stepStart := time.Now() //lint:ignore walltime PhaseTimes observability: the duration is only accumulated, never branched on
		var measured time.Duration
		measure := func(c space.Config) (float64, bool) {
			m0 := time.Now() //lint:ignore walltime PhaseTimes observability: splits measurement time out of the BAO step
			//lint:ignore walltime PhaseTimes observability: accumulate-only, no control flow reads it
			defer func() { measured += time.Since(m0) }()
			before := len(s.samples)
			s.measure(ctx, c)
			if len(s.samples) == before {
				// Budget exhausted, cancelled, or config already visited:
				// report an invalid deployment so BAO's own stopping logic
				// winds down.
				return 0, false
			}
			last := s.samples[len(s.samples)-1]
			return last.GFLOPS, last.Valid
		}
		stop := run.Step(measure, nil) || s.exhausted(ctx)
		//lint:ignore walltime PhaseTimes observability: reported upward only, tuning decisions never read it
		opts.Phases.Add(PhaseCandidateSelection, time.Since(stepStart)-measured)
		return stop
	}
	return newStepSession(t.Name(), s, step), nil
}

// Tune implements Tuner.
func (t *AdvancedTuner) Tune(ctx context.Context, task *Task, b backend.Backend, opts Options) (Result, error) {
	return tune(ctx, t, task, b, opts)
}
