package tuner

import (
	"context"
	"errors"
	"hash/fnv"
	"math"
	"testing"

	"repro/internal/tensor"
	"repro/internal/transfer"
)

// Golden FNV-1a hashes of each tuner's full sample stream, captured from the
// pre-session-refactor sequential implementations (task golden.conv =
// Conv2D(1,32,28,28,64,3,1,1), simulator seed 5, Budget 80, EarlyStop off,
// PlanSize 16, run seed 17, Workers 1). The session refactor — and any
// future change — must reproduce these bit-identically; a mismatch means the
// observable measurement stream changed, which silently invalidates every
// recorded experiment.
var goldenTunerHashes = map[string]uint64{
	"random":    0xad42ff89e768ba3f,
	"grid":      0x907b7e12afaf3f73,
	"ga":        0x406fc88f45d90b85,
	"autotvm":   0x4c76f6ae8318febe,
	"bted":      0x31b420bd2467cab8,
	"chameleon": 0x2185b6d87977da0c,
	"bted+bao":  0x604109040fe62532,
}

// Golden hashes for the transfer-chained pair (task b warm-starts from task
// a's history): autotvm, Budget 64, PlanSize 16, seed 21, simulator seed 9.
const (
	goldenTransferAHash = 0x5eda811436900cd8
	goldenTransferBHash = 0xa11e9c3295d4e8db
)

// goldenSampleHash folds a result's full sample stream — config identity,
// bit-exact throughput, validity — into one FNV-1a hash.
func goldenSampleHash(res Result) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf)
	}
	for _, s := range res.Samples {
		put(s.Config.Flat())
		put(math.Float64bits(s.GFLOPS))
		if s.Valid {
			put(1)
		} else {
			put(0)
		}
	}
	return h.Sum64()
}

func goldenTask(t *testing.T, name string, w tensor.Workload) *Task {
	t.Helper()
	task, err := NewTask(name, w)
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func goldenTuners() []Opener {
	return []Opener{RandomTuner{}, GridTuner{}, GATuner{},
		NewAutoTVM(), NewBTED(), NewChameleon(), NewBTEDBAO()}
}

// TestGoldenSampleStreams pins every tuner's sample stream to the
// pre-refactor golden hashes.
func TestGoldenSampleStreams(t *testing.T) {
	task := goldenTask(t, "golden.conv", tensor.Conv2D(1, 32, 28, 28, 64, 3, 1, 1))
	for _, tn := range goldenTuners() {
		tn := tn
		t.Run(tn.Name(), func(t *testing.T) {
			t.Parallel()
			opts := Options{Budget: 80, EarlyStop: -1, PlanSize: 16, Seed: 17, Workers: 1}
			res, err := tn.Tune(context.Background(), task, sim(5), opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Measurements != 80 {
				t.Fatalf("measured %d, want 80", res.Measurements)
			}
			if got, want := goldenSampleHash(res), goldenTunerHashes[tn.Name()]; got != want {
				t.Errorf("sample-stream hash %#016x, want golden %#016x", got, want)
			}
		})
	}
}

// TestGoldenTransferChain pins the cross-task warm-start behaviour: the
// second task's stream depends on the first task's history, so these hashes
// break if either the tuner or the transfer plumbing drifts.
func TestGoldenTransferChain(t *testing.T) {
	h := transfer.NewHistory()
	ta := goldenTask(t, "golden.a", tensor.Conv2D(1, 32, 28, 28, 64, 3, 1, 1))
	tb := goldenTask(t, "golden.b", tensor.Conv2D(1, 64, 14, 14, 128, 3, 1, 1))
	opts := Options{Budget: 64, EarlyStop: -1, PlanSize: 16, Seed: 21, Workers: 1, Transfer: h}
	ra, err := NewAutoTVM().Tune(context.Background(), ta, sim(9), opts)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewAutoTVM().Tune(context.Background(), tb, sim(9), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := goldenSampleHash(ra); got != goldenTransferAHash {
		t.Errorf("task a hash %#016x, want golden %#016x", got, uint64(goldenTransferAHash))
	}
	if got := goldenSampleHash(rb); got != goldenTransferBHash {
		t.Errorf("task b hash %#016x, want golden %#016x", got, uint64(goldenTransferBHash))
	}
}

// sameResult reports whether two results are bit-identical in every
// observable field.
func sameResult(a, b Result) bool {
	return a.Found == b.Found &&
		a.Measurements == b.Measurements &&
		math.Float64bits(a.Best.GFLOPS) == math.Float64bits(b.Best.GFLOPS) &&
		(!a.Found || a.Best.Config.Flat() == b.Best.Config.Flat()) &&
		sameSampleStream(a.Samples, b.Samples)
}

// TestSessionTuneIdentity is the tentpole contract of the session API: for
// every tuner, opening a session and stepping it to completion — with a
// *fresh context value on every Step*, proving no ctx is stored — yields a
// Result bit-identical to the one-shot Tune call.
func TestSessionTuneIdentity(t *testing.T) {
	task := testTask(t)
	for _, tn := range goldenTuners() {
		tn := tn
		t.Run(tn.Name(), func(t *testing.T) {
			t.Parallel()
			opts := quickOpts(48, 23)
			want, werr := tn.Tune(context.Background(), task, sim(3), opts)

			sess, err := tn.Open(context.Background(), task, sim(3), opts)
			if err != nil {
				t.Fatal(err)
			}
			steps := 0
			lastMeasured := 0
			for {
				ctx, cancel := context.WithCancel(context.Background())
				done, serr := sess.Step(ctx)
				cancel()
				if serr != nil {
					t.Fatalf("step %d: unexpected error: %v", steps, serr)
				}
				if m := sess.Measured(); m < lastMeasured {
					t.Fatalf("Measured went backwards: %d -> %d", lastMeasured, m)
				} else {
					lastMeasured = m
				}
				steps++
				if done {
					break
				}
				if steps > 10*opts.Budget {
					t.Fatal("session never finished")
				}
			}
			got, gerr := sess.Result()
			if (werr == nil) != (gerr == nil) || (werr != nil && werr.Error() != gerr.Error()) {
				t.Fatalf("error mismatch: Tune=%v session=%v", werr, gerr)
			}
			if !sameResult(want, got) {
				t.Errorf("stepwise result differs from Tune: Tune n=%d best=%v, session n=%d best=%v",
					want.Measurements, want.Best.GFLOPS, got.Measurements, got.Best.GFLOPS)
			}
			if g, ok := sess.BestGFLOPS(); want.Found && (!ok || math.Float64bits(g) != math.Float64bits(want.Best.GFLOPS)) {
				t.Errorf("BestGFLOPS = (%v, %v), want (%v, true)", g, ok, want.Best.GFLOPS)
			}

			// Result is idempotent and a finalized session cannot be stepped.
			again, aerr := sess.Result()
			if !sameResult(got, again) || (gerr == nil) != (aerr == nil) {
				t.Error("Result not idempotent")
			}
			if done, _ := sess.Step(context.Background()); !done {
				t.Error("Step after Result should report done")
			}
		})
	}
}

// TestSessionInterleaved drives one session per tuner round-robin — the
// access pattern of the graph scheduler — and checks each still produces its
// solo-run result: sessions are fully self-contained.
func TestSessionInterleaved(t *testing.T) {
	task := testTask(t)
	tuners := goldenTuners()
	opts := quickOpts(48, 29)

	want := make([]Result, len(tuners))
	for i, tn := range tuners {
		r, err := tn.Tune(context.Background(), task, sim(11), opts)
		if err != nil && !errors.Is(err, ErrNoValidConfig) {
			t.Fatal(err)
		}
		want[i] = r
	}

	sessions := make([]Session, len(tuners))
	for i, tn := range tuners {
		s, err := tn.Open(context.Background(), task, sim(11), opts)
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	live := len(sessions)
	doneFlags := make([]bool, len(sessions))
	for guard := 0; live > 0; guard++ {
		if guard > 100*opts.Budget {
			t.Fatal("interleaved sessions never finished")
		}
		for i, s := range sessions {
			if doneFlags[i] {
				continue
			}
			done, err := s.Step(context.Background())
			if err != nil {
				t.Fatalf("%s: %v", tuners[i].Name(), err)
			}
			if done {
				doneFlags[i] = true
				live--
			}
		}
	}
	for i, s := range sessions {
		got, err := s.Result()
		if err != nil && !errors.Is(err, ErrNoValidConfig) {
			t.Fatal(err)
		}
		if !sameResult(want[i], got) {
			t.Errorf("%s: interleaved result differs from solo run", tuners[i].Name())
		}
	}
}

// TestSessionTransferIdentity proves the stepwise path feeds the transfer
// history exactly like Tune: chaining two tasks through sessions reproduces
// the Tune-chained second-task stream bit-for-bit.
func TestSessionTransferIdentity(t *testing.T) {
	ta := goldenTask(t, "ti.a", tensor.Conv2D(1, 32, 28, 28, 64, 3, 1, 1))
	tb := goldenTask(t, "ti.b", tensor.Conv2D(1, 64, 14, 14, 128, 3, 1, 1))
	tn := NewAutoTVM()

	run := func(chain func(task *Task, opts Options) (Result, error)) (Result, Result) {
		h := transfer.NewHistory()
		opts := quickOpts(48, 37)
		opts.Transfer = h
		ra, err := chain(ta, opts)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := chain(tb, opts)
		if err != nil {
			t.Fatal(err)
		}
		return ra, rb
	}

	wa, wb := run(func(task *Task, opts Options) (Result, error) {
		return tn.Tune(context.Background(), task, sim(13), opts)
	})
	ga, gb := run(func(task *Task, opts Options) (Result, error) {
		s, err := tn.Open(context.Background(), task, sim(13), opts)
		if err != nil {
			return Result{}, err
		}
		return Drive(context.Background(), s)
	})
	if !sameResult(wa, ga) || !sameResult(wb, gb) {
		t.Error("session-chained transfer results differ from Tune-chained")
	}
}
