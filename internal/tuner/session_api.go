package tuner

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/backend"
)

// Session is a resumable tuning run: the batch loop that used to live
// inside each Tuner.Tune, cut at its batch-fold boundaries so an external
// driver (Tuner.Tune itself, or the graph scheduler in internal/sched) can
// interleave many runs. A session is single-goroutine: callers must not
// invoke its methods concurrently, though different sessions may be driven
// from different goroutines.
//
// The contract mirrors Tune exactly: driving a fresh session with Step
// until done and then calling Result yields a Result bit-identical to the
// one-shot Tune call with the same (task, backend, opts) — the identity
// every tuner proves in its Tune-vs-step-loop test. The context is passed
// to every Step and never stored, so each call may carry a different ctx;
// cancellation latches exactly like the in-Tune loop (the first Step that
// observes a done ctx ends the run, and the samples recorded so far are a
// bit-identical prefix of the uncancelled run).
type Session interface {
	// Step advances the run by one planned batch (for the sequential BAO
	// stage: one measurement iteration). It reports done when the run has
	// finished — budget or space exhausted, early stopping tripped, or ctx
	// observed done — after which further calls are no-ops. err is non-nil
	// only when the run stopped because a context was cancelled or expired;
	// it is the latched ctx.Err() (Result wraps it with run detail).
	Step(ctx context.Context) (done bool, err error)
	// Result finalizes the run — feeding the transfer history exactly once
	// — and returns the same (Result, error) the equivalent Tune call
	// would. It is idempotent; a finalized session cannot be stepped
	// further.
	Result() (Result, error)
	// Measured returns how many measurements the run has recorded so far
	// (the scheduler's budget-accounting view).
	Measured() int
	// BestGFLOPS returns the best valid throughput observed so far
	// (including resumed samples); ok is false while no valid measurement
	// exists.
	BestGFLOPS() (gflops float64, ok bool)
}

// Opener is implemented by tuners whose run can be driven stepwise. Every
// tuner in this repository implements it; Tuner.Tune is exactly Open
// followed by Drive.
type Opener interface {
	Tuner
	// Open prepares a session for the task without measuring anything.
	// Planning work (initialization-set construction, model training)
	// happens lazily inside Step so a scheduler can fan it out. ctx is only
	// observed, never stored: a context already done at Open simply makes
	// the first Step latch cancellation.
	Open(ctx context.Context, task *Task, b backend.Backend, opts Options) (Session, error)
	// Restore rebuilds a session from a snapshot taken at a Step boundary
	// (see Snapshotter). The caller supplies the same task, backend, and
	// options — including Resume samples and the Transfer handle — it
	// would pass to Open; the snapshot carries only the run's own state,
	// and stepping the restored session continues the original run
	// bit-identically. Mismatched tuner/task/seed fail with an error, as
	// does AsOpener's wrapper for tuners without stepwise sessions
	// (ErrSnapshotUnsupported).
	Restore(ctx context.Context, task *Task, b backend.Backend, opts Options, st SessionState) (Session, error)
}

// Drive advances a session to completion and finalizes it.
func Drive(ctx context.Context, s Session) (Result, error) {
	for {
		done, err := s.Step(ctx)
		if done || err != nil {
			break
		}
	}
	return s.Result()
}

// stepSession adapts the shared measurement session plus a tuner-specific
// step closure to the Session interface. The closure owns all search state
// (RNG, sweep position, model artifacts) and returns true when the run is
// finished; cancellation state lives in the embedded session and is
// latched there.
type stepSession struct {
	name      string
	s         *session
	step      func(ctx context.Context) bool
	extra     func() (any, error) // tuner-specific snapshot state; nil = none
	done      bool
	finalized bool
	res       Result
	err       error
}

func newStepSession(name string, s *session, step func(ctx context.Context) bool) *stepSession {
	return &stepSession{name: name, s: s, step: step}
}

// withExtra registers the tuner-specific state captured into snapshots and
// returns the session for chaining.
func (ts *stepSession) withExtra(fn func() (any, error)) *stepSession {
	ts.extra = fn
	return ts
}

// restoredFrom applies the snapshot's step-loop flags after a Restore.
func (ts *stepSession) restoredFrom(st *SessionState) *stepSession {
	if st != nil && st.Base.StepDone {
		ts.done = true
	}
	return ts
}

// Snapshot implements Snapshotter: the complete session state at the
// current Step boundary. Callers must not snapshot concurrently with Step;
// a finalized session refuses (its Result already fed the transfer
// history, so a restored continuation would double-publish).
func (ts *stepSession) Snapshot() (SessionState, error) {
	if ts.finalized {
		return SessionState{}, fmt.Errorf("tuner: %s on task %s: cannot snapshot a finalized session", ts.name, ts.s.task.Name)
	}
	st := SessionState{
		Version: SessionStateVersion,
		Tuner:   ts.name,
		Task:    ts.s.task.Name,
		Base:    ts.s.baseState(),
	}
	st.Base.StepDone = ts.done
	if ts.extra != nil {
		v, err := ts.extra()
		if err != nil {
			return SessionState{}, fmt.Errorf("tuner: %s on task %s: snapshot: %w", ts.name, ts.s.task.Name, err)
		}
		raw, err := json.Marshal(v)
		if err != nil {
			return SessionState{}, fmt.Errorf("tuner: %s on task %s: snapshot: %w", ts.name, ts.s.task.Name, err)
		}
		st.Extra = raw
	}
	return st, nil
}

// Step implements Session.
func (ts *stepSession) Step(ctx context.Context) (bool, error) {
	if ts.done || ts.finalized {
		return true, ts.s.err
	}
	if ts.step(ctx) {
		ts.done = true
	}
	return ts.done, ts.s.err
}

// Result implements Session.
func (ts *stepSession) Result() (Result, error) {
	if !ts.finalized {
		ts.finalized = true
		ts.done = true
		ts.res, ts.err = ts.s.result(ts.name)
	}
	return ts.res, ts.err
}

// Measured implements Session.
func (ts *stepSession) Measured() int { return len(ts.s.samples) }

// BestGFLOPS implements Session.
func (ts *stepSession) BestGFLOPS() (float64, bool) {
	return ts.s.bestG, ts.s.bestG > 0
}

// tune is the shared thin Tune loop every tuner delegates to.
func tune(ctx context.Context, t Opener, task *Task, b backend.Backend, opts Options) (Result, error) {
	sess, err := t.Open(ctx, task, b, opts)
	if err != nil {
		return Result{}, err
	}
	return Drive(ctx, sess)
}

// AsOpener returns t itself when it already supports stepwise sessions
// (every tuner in this repository does), and otherwise wraps it so its
// whole Tune call runs as one indivisible Step. The wrapper keeps
// third-party Tuner implementations working under the graph scheduler; they
// just cannot be interleaved at batch granularity.
func AsOpener(t Tuner) Opener {
	if o, ok := t.(Opener); ok {
		return o
	}
	return monoOpener{t}
}

type monoOpener struct{ Tuner }

// Open implements Opener.
func (m monoOpener) Open(_ context.Context, task *Task, b backend.Backend, opts Options) (Session, error) {
	return &monoSession{t: m.Tuner, task: task, b: b, opts: opts}, nil
}

// Restore implements Opener. A wrapped third-party tuner has no step
// boundaries, so there is nothing a snapshot could have captured.
func (m monoOpener) Restore(_ context.Context, _ *Task, _ backend.Backend, _ Options, _ SessionState) (Session, error) {
	return nil, fmt.Errorf("%w (tuner %s runs as one indivisible step)", ErrSnapshotUnsupported, m.Name())
}

// monoSession runs an entire Tune call as its single step.
type monoSession struct {
	t    Tuner
	task *Task
	b    backend.Backend
	opts Options
	done bool
	res  Result
	err  error
}

// Step implements Session.
func (m *monoSession) Step(ctx context.Context) (bool, error) {
	if !m.done {
		m.res, m.err = m.t.Tune(ctx, m.task, m.b, m.opts)
		m.done = true
	}
	if m.err != nil && ctx.Err() != nil {
		return true, ctx.Err()
	}
	return true, nil
}

// Result implements Session.
func (m *monoSession) Result() (Result, error) {
	m.done = true
	return m.res, m.err
}

// Measured implements Session.
func (m *monoSession) Measured() int { return len(m.res.Samples) }

// BestGFLOPS implements Session.
func (m *monoSession) BestGFLOPS() (float64, bool) {
	if m.res.Found {
		return m.res.Best.GFLOPS, true
	}
	return 0, false
}

// Compile-time proof that every tuner supports stepwise sessions (and,
// through Opener.Restore plus the step sessions' Snapshotter, serializable
// ones).
var (
	_ Opener = RandomTuner{}
	_ Opener = GridTuner{}
	_ Opener = GATuner{}
	_ Opener = (*ModelTuner)(nil)
	_ Opener = (*ChameleonTuner)(nil)
	_ Opener = (*AdvancedTuner)(nil)

	_ Snapshotter = (*stepSession)(nil)
)
