package tuner

import (
	"math/rand"
	"testing"

	"repro/internal/sa"
	"repro/internal/space"
	"repro/internal/xgb"
)

// sascoreModel trains a surrogate on random configurations of the test
// task's space, exactly as the tuner would (same parameter block).
func sascoreModel(t testing.TB, sp *space.Space, seed int64) *xgb.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 160
	X := make([][]float64, 0, n)
	y := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		c := sp.Random(rng)
		X = append(X, c.Features())
		y = append(y, float64(c.Flat()%97)/97.0)
	}
	p := xgb.DefaultParams()
	p.NumRounds = 24
	p.MaxDepth = 5
	p.MaxBins = 24
	p.Seed = seed
	m, err := xgb.Train(X, y, p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSAObjectiveMatchesNaive is the end-to-end parity contract of the
// compiled delta path on a real tuning space: FindMaximaDelta over
// newSAObjective must return the identical candidate list — same configs,
// same order — as FindMaxima over the naive model.Predict(c.Features())
// objective, for serial and chained runs alike.
func TestSAObjectiveMatchesNaive(t *testing.T) {
	task := testTask(t)
	model := sascoreModel(t, task.Space, 11)
	naive := func(batch []space.Config) []float64 {
		out := make([]float64, len(batch))
		for i, c := range batch {
			out[i] = model.Predict(c.Features())
		}
		return out
	}
	for _, opts := range []sa.Options{
		{},
		{ParallelSize: 48, Iters: 80},
		{ParallelSize: 48, Iters: 80, Chains: 3, Workers: 4},
	} {
		for seed := int64(0); seed < 3; seed++ {
			want := sa.FindMaxima(task.Space, naive, 16, nil, opts, rand.New(rand.NewSource(seed)))
			obj := newSAObjective(model, task.Space)
			got := sa.FindMaximaDelta(task.Space, obj, 16, nil, opts, rand.New(rand.NewSource(seed)))
			if len(want) != len(got) {
				t.Fatalf("opts %+v seed %d: %d vs %d candidates", opts, seed, len(want), len(got))
			}
			for i := range want {
				if want[i].Flat() != got[i].Flat() {
					t.Fatalf("opts %+v seed %d: candidate %d differs (%v vs %v)", opts, seed, i, want[i].Index, got[i].Index)
				}
			}
		}
	}
}

// TestSAObjectiveRespectsExclude: visited configurations must never come
// back from the delta path.
func TestSAObjectiveRespectsExclude(t *testing.T) {
	task := testTask(t)
	model := sascoreModel(t, task.Space, 13)
	rng := rand.New(rand.NewSource(5))
	exclude := make(map[uint64]bool)
	for i := 0; i < 32; i++ {
		exclude[task.Space.Random(rng).Flat()] = true
	}
	obj := newSAObjective(model, task.Space)
	got := sa.FindMaximaDelta(task.Space, obj, 24, exclude, sa.Options{}, rand.New(rand.NewSource(6)))
	for _, c := range got {
		if exclude[c.Flat()] {
			t.Fatalf("excluded config %v returned", c.Index)
		}
	}
}

// TestSAChainsWorkerCountInvariance is the tuner-level determinism contract
// for opt-in parallel SA chains: with a fixed chain count, the full
// measured sample stream of a tuning run is bit-identical whether the
// chains execute on 1, 4 or 8 workers.
func TestSAChainsWorkerCountInvariance(t *testing.T) {
	task := testTask(t)
	var ref uint64
	for i, workers := range []int{1, 4, 8} {
		tn := NewAutoTVM()
		tn.SA = sa.Options{Chains: 3, Workers: workers}
		res := mustTune(t, tn, task, sim(5), quickOpts(64, 17))
		h := goldenSampleHash(res)
		if i == 0 {
			ref = h
			continue
		}
		if h != ref {
			t.Fatalf("SA chain workers=%d: sample stream %#016x differs from workers=1 %#016x", workers, h, ref)
		}
	}
}
