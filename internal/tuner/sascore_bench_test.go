package tuner

import (
	"math/rand"
	"testing"

	"repro/internal/sa"
	"repro/internal/tensor"
)

// BenchmarkSACandidateSelection measures one candidate-selection round as
// the tuner runs it: compile the retrained surrogate into the session's
// pooled objective, run the delta-encoded SA argmax (default options:
// 96 walkers x 120 iters), drain the top-k.
func BenchmarkSACandidateSelection(b *testing.B) {
	task, err := NewTask("bench.conv", tensor.Conv2D(1, 32, 28, 28, 64, 3, 1, 1))
	if err != nil {
		b.Fatal(err)
	}
	model := sascoreModel(b, task.Space, 3)
	var obj *saObjective
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj = resetSAObjective(obj, model, task.Space)
		sa.FindMaximaDelta(task.Space, obj, 24, nil, sa.Options{}, rand.New(rand.NewSource(int64(i))))
	}
}
