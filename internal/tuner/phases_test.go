package tuner

import (
	"testing"
)

// TestPhaseTimesInvariance pins two contracts of the profiling layer: every
// model-based tuner reports time in its expected phases, and enabling the
// accumulator leaves the sample stream bit-identical — timing is pure
// observability.
func TestPhaseTimesInvariance(t *testing.T) {
	task := testTask(t)
	cases := []struct {
		tn     Tuner
		phases []string
	}{
		{NewAutoTVM(), []string{PhaseInitSet, PhaseSurrogateTrain, PhaseCandidateSelection, PhaseMeasurement}},
		{NewBTED(), []string{PhaseInitSet, PhaseSurrogateTrain, PhaseCandidateSelection, PhaseMeasurement}},
		{NewBTEDBAO(), []string{PhaseInitSet, PhaseCandidateSelection, PhaseMeasurement}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.tn.Name(), func(t *testing.T) {
			ref := mustTune(t, c.tn, task, sim(5), quickOpts(150, 17))

			opts := quickOpts(150, 17)
			opts.Phases = NewPhaseTimes()
			res := mustTune(t, c.tn, task, sim(5), opts)
			if !sameSampleStream(ref.Samples, res.Samples) {
				t.Fatalf("enabling Phases changed the sample stream (%d vs %d samples)",
					len(res.Samples), len(ref.Samples))
			}
			snap := opts.Phases.Snapshot()
			for _, ph := range c.phases {
				if snap[ph] <= 0 {
					t.Errorf("phase %q: no time recorded (snapshot %v)", ph, snap)
				}
			}
			ms := opts.Phases.Milliseconds()
			for k, v := range ms {
				if v < 0 {
					t.Errorf("phase %q: negative milliseconds %v", k, v)
				}
			}
		})
	}
}

// TestPhaseTimesNilSafe checks that a nil accumulator is inert at every
// call site.
func TestPhaseTimesNilSafe(t *testing.T) {
	var p *PhaseTimes
	p.Add(PhaseMeasurement, 1)
	p.track(PhaseInitSet)()
	if p.Snapshot() != nil || p.Milliseconds() != nil {
		t.Fatal("nil PhaseTimes should snapshot to nil")
	}
}
