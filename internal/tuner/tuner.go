// Package tuner implements the node-wise optimization loop of the general
// deployment framework: a context-aware measurement session with budget
// accounting, early stopping and cooperative cancellation, plus the search
// strategies compared in the paper — random/grid/GA baselines, the AutoTVM
// model-based tuner (XGBoost cost model + simulated annealing + transfer
// learning), the BTED variant that swaps AutoTVM's random initialization
// for batch transductive experimental design, and the full BTED+BAO
// advanced active-learning framework.
//
// Every tuner shares the same lifecycle contract: Tune observes ctx at
// batch-fold boundaries (between planned batches and between the serial
// record steps inside a fold), so a cancelled or deadline-expired run
// returns the samples gathered so far together with an error wrapping
// ctx.Err() — and those samples are a bit-identical prefix of the
// uncancelled run's samples for any Options.Workers value.
package tuner

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"

	"repro/internal/active"
	"repro/internal/backend"
	"repro/internal/graph"
	"repro/internal/hwsim"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/space"
	"repro/internal/tensor"
	"repro/internal/transfer"
)

// ErrNoValidConfig reports a run that completed its search without a single
// valid measurement: the space was exhausted or every deployment failed.
// The Result returned alongside still carries all (invalid) samples.
var ErrNoValidConfig = errors.New("tuner: no valid configuration found")

// Task is one node-wise tuning problem: a workload plus its configuration
// space. Count carries how many fused kernels of the parent model share the
// task (used by end-to-end latency accounting).
type Task struct {
	Name     string
	Workload tensor.Workload
	Space    *space.Space
	Count    int
}

// NewTask builds a task and its template space from a workload.
func NewTask(name string, w tensor.Workload) (*Task, error) {
	sp, err := space.ForWorkload(w)
	if err != nil {
		return nil, fmt.Errorf("tuner: task %s: %w", name, err)
	}
	return &Task{Name: name, Workload: w, Space: sp, Count: 1}, nil
}

// FromGraphTask converts an extracted graph task.
func FromGraphTask(gt graph.Task) (*Task, error) {
	t, err := NewTask(gt.Name, gt.Workload)
	if err != nil {
		return nil, err
	}
	t.Count = gt.Count
	return t, nil
}

// Observer receives every measurement as it happens (step is 1-based).
type Observer func(step int, s active.Sample)

// Options controls a tuning run. Zero values select the paper's settings.
type Options struct {
	// Budget is the maximum number of measurements (paper Fig. 4: 1024).
	Budget int
	// EarlyStop ends the run after this many measurements without
	// improvement (paper: 400). Negative disables early stopping.
	EarlyStop int
	// PlanSize is the batch size of model-based tuners and the
	// initialization set size (paper: 64).
	PlanSize int
	// Seed drives all randomness of the run.
	Seed int64
	// Observer, when set, is called after every measurement.
	Observer Observer
	// Transfer, when set, warm-starts cost models from other tasks'
	// histories and receives this run's samples afterwards.
	Transfer *transfer.History
	// Resume carries previously measured samples of this task (e.g. loaded
	// from a record log): they are never re-measured and do not consume
	// budget, but model-based tuners train on them from the first round.
	Resume []active.Sample
	// Workers sizes the measurement worker pool used for planned batches
	// (default GOMAXPROCS). When the backend reports Seeded,
	// Result.Samples are bit-identical for every Workers value under the
	// same Seed; with an unseeded backend batches fall back to serial
	// measurement so the shared noise stream keeps its order.
	Workers int
	// Phases, when set, accumulates per-phase wall-clock time
	// (init-set planning, surrogate training, candidate selection,
	// measurement) across the run. Pure observability: it never feeds back
	// into tuning decisions, so the sample stream is unchanged.
	Phases *PhaseTimes
}

// Normalized returns the options with zero values replaced by the paper's
// defaults — the same normalization every tuner applies when it opens a
// session. The graph scheduler uses it to see the effective Budget and
// PlanSize a session will run with.
func (o Options) Normalized() Options { return o.normalized() }

func (o Options) normalized() Options {
	if o.Budget <= 0 {
		o.Budget = 1024
	}
	if o.EarlyStop == 0 {
		o.EarlyStop = 400
	}
	if o.PlanSize <= 0 {
		o.PlanSize = 64
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Result summarizes a tuning run.
type Result struct {
	TunerName    string
	TaskName     string
	Samples      []active.Sample // in measurement order
	Best         active.Sample
	Found        bool // false when every measurement was invalid
	Measurements int
}

// BestTrace returns the best-so-far GFLOPS series (Fig. 4 ordinate).
func (r Result) BestTrace() []float64 { return active.BestTrace(r.Samples) }

// Tuner is a node-wise search strategy. Tune runs until the budget or the
// space is exhausted, early stopping trips, or ctx is done — whichever
// comes first — and always returns the Result of the work performed. The
// error is nil on normal completion, wraps ctx.Err() on cancellation or
// deadline expiry (Result then holds the prefix measured so far), and wraps
// ErrNoValidConfig when a completed search never saw a valid deployment.
type Tuner interface {
	Name() string
	Tune(ctx context.Context, task *Task, b backend.Backend, opts Options) (Result, error)
}

// session tracks budget, early stopping, cancellation and the visited set
// for one run. The context is never stored: it is threaded through every
// method that may observe cancellation (enforced repo-wide by the ctxarg
// analyzer), and the first observation latches into err so the run's
// cancellation point is decided exactly once.
//
// All randomness of the run flows through src, a counted serializable
// source seeded from Options.Seed (its Rand() view is bit-identical to the
// rand.New(rand.NewSource(opts.Seed)) each tuner used to build): holding
// the source instead of a bare *rand.Rand is what makes sessions
// snapshottable, and the rngfield analyzer keeps it that way.
type session struct {
	task    *Task
	b       backend.Backend
	opts    Options
	src     *rng.Source
	prior   []active.Sample // resumed samples: training data, not budget
	samples []active.Sample
	visited map[uint64]bool
	bestG   float64
	since   int  // measurements since last improvement
	done    bool // early stopping tripped
	err     error
}

func newSession(task *Task, b backend.Backend, opts Options) *session {
	s := &session{task: task, b: b, opts: opts, src: rng.New(opts.Seed), visited: make(map[uint64]bool, opts.Budget)}
	for _, p := range opts.Resume {
		s.visited[p.Config.Flat()] = true
		s.prior = append(s.prior, p)
		if p.Valid && p.GFLOPS > s.bestG {
			s.bestG = p.GFLOPS
		}
	}
	return s
}

// knowledge returns resumed plus freshly measured samples, the training
// view of model-based tuners. The returned slice is a fresh copy: callers
// may sort it without disturbing the measurement-ordered session record.
func (s *session) knowledge() []active.Sample {
	out := make([]active.Sample, 0, len(s.prior)+len(s.samples))
	out = append(out, s.prior...)
	out = append(out, s.samples...)
	return out
}

// cancelled latches ctx's state into the session: the first call that
// observes a done ctx records its error, and every later call reports true
// without consulting ctx again.
func (s *session) cancelled(ctx context.Context) bool {
	if s.err != nil {
		return true
	}
	if err := ctx.Err(); err != nil {
		s.err = err
		return true
	}
	return false
}

// exhausted reports whether the run must stop: cancellation, early
// stopping, or a spent budget.
func (s *session) exhausted(ctx context.Context) bool {
	return s.cancelled(ctx) || s.done || len(s.samples) >= s.opts.Budget
}

// measureRaw deploys one configuration without touching session state,
// preferring the order-independent seeded path when the backend offers it.
// It is the only method of the session safe to call from pool goroutines.
func (s *session) measureRaw(c space.Config) hwsim.Measurement {
	if s.b.Seeded() {
		return s.b.MeasureSeeded(s.task.Workload, c, hwsim.NoiseSeed(s.opts.Seed, c.Flat()))
	}
	return s.b.Measure(s.task.Workload, c)
}

// record appends one finished measurement and updates the stopping state.
// Calls after early stopping are dropped, so a batch that trips the
// threshold mid-fold never records its tail.
func (s *session) record(c space.Config, mr hwsim.Measurement) {
	if s.done {
		return
	}
	sample := active.Sample{Config: c, GFLOPS: mr.GFLOPS, Valid: mr.Valid}
	s.samples = append(s.samples, sample)
	if s.opts.Observer != nil {
		s.opts.Observer(len(s.samples), sample)
	}
	if mr.Valid && mr.GFLOPS > s.bestG {
		s.bestG = mr.GFLOPS
		s.since = 0
	} else {
		s.since++
	}
	if s.opts.EarlyStop > 0 && s.since >= s.opts.EarlyStop {
		s.done = true
	}
}

// measure deploys one configuration, records it, and updates the stopping
// state. Already-visited configs are skipped silently (no budget cost).
func (s *session) measure(ctx context.Context, c space.Config) {
	if s.exhausted(ctx) {
		return
	}
	f := c.Flat()
	if s.visited[f] {
		return
	}
	s.visited[f] = true
	defer s.opts.Phases.track(PhaseMeasurement)()
	s.record(c, s.measureRaw(c))
}

// measureBatch deploys a planned batch, concurrently when the backend
// supports per-call seeds, and folds the results back in submission order:
// samples, observer callbacks and early-stopping decisions are exactly those
// of a serial sweep over the same plan, for any Workers value. The plan is
// deduplicated against the visited set (and within itself) and capped at the
// remaining budget before any measurement is issued, mirroring how a
// measurement farm deploys a planned AutoTVM batch.
//
// Cancellation points sit only at batch-fold boundaries: the pool stops
// dispatching once ctx is done (completed calls still fold), and the serial
// fold re-checks ctx before every record, so the recorded samples are
// always a prefix of the plan — hence of the uncancelled run.
func (s *session) measureBatch(ctx context.Context, batch []space.Config) {
	if s.exhausted(ctx) || len(batch) == 0 {
		return
	}
	plan := make([]space.Config, 0, len(batch))
	for _, c := range batch {
		if len(s.samples)+len(plan) >= s.opts.Budget {
			break
		}
		f := c.Flat()
		if s.visited[f] {
			continue
		}
		s.visited[f] = true
		plan = append(plan, c)
	}
	if len(plan) == 0 {
		return
	}
	defer s.opts.Phases.track(PhaseMeasurement)()
	if !s.b.Seeded() {
		// Shared-stream backend: noise depends on global order, so the
		// batch must stay serial (and stop measuring once early-stopped or
		// cancelled).
		for _, c := range plan {
			if s.done || s.cancelled(ctx) {
				return
			}
			s.record(c, s.b.Measure(s.task.Workload, c))
		}
		return
	}
	// Seeded path: every dispatched config is measured to completion —
	// matching what a farm already has in flight when early stopping or
	// cancellation trips — and the fold below discards anything past the
	// stopping point.
	results := make([]hwsim.Measurement, len(plan))
	k := par.ForContext(ctx, len(plan), s.opts.Workers, func(i int) {
		results[i] = s.measureRaw(plan[i])
	})
	for i := 0; i < k; i++ {
		if s.done || s.cancelled(ctx) {
			return
		}
		s.record(plan[i], results[i])
	}
}

// result finalizes the run summary and feeds the transfer history. The
// best configuration is taken over resumed and fresh samples together (a
// resumed run deploys the best it knows), while Samples/Measurements count
// only this run's work. A cancelled run keeps its partial samples and
// returns an error wrapping the latched ctx.Err(); a completed run with no
// valid measurement anywhere returns ErrNoValidConfig.
func (s *session) result(tunerName string) (Result, error) {
	best, found := active.Best(s.knowledge())
	if s.opts.Transfer != nil && len(s.samples) > 0 {
		s.opts.Transfer.Add(s.task.Name, s.task.Workload.Op, s.samples)
	}
	res := Result{
		TunerName:    tunerName,
		TaskName:     s.task.Name,
		Samples:      s.samples,
		Best:         best,
		Found:        found,
		Measurements: len(s.samples),
	}
	if s.err != nil {
		return res, fmt.Errorf("tuner: %s on task %s stopped after %d measurements: %w",
			tunerName, s.task.Name, len(s.samples), s.err)
	}
	if !found {
		return res, fmt.Errorf("%w (tuner %s, task %s, %d measurements)",
			ErrNoValidConfig, tunerName, s.task.Name, len(s.samples))
	}
	return res, nil
}

// randomUnvisited returns a configuration not yet measured and not in
// planned (the current batch under construction; nil is fine). Uniform
// draws are tried first — overwhelmingly likely to succeed while the space
// is mostly unexplored — with the attempt cap scaled down for small spaces
// where a full scan is cheaper than draw collisions. If every draw
// collides, a golden-step permutation scan from a random start finds a
// remaining configuration systematically, so a false return means the
// space is genuinely exhausted (up to the scan cap, which only an
// astronomically unlikely draw sequence on a >2^20-point space can reach).
func (s *session) randomUnvisited(rng *rand.Rand, planned map[uint64]bool) (space.Config, bool) {
	size := s.task.Space.Size()
	draws := 512
	if size < 128 {
		draws = 4 * int(size)
	}
	for i := 0; i < draws; i++ {
		c := s.task.Space.Random(rng)
		f := c.Flat()
		if !s.visited[f] && !planned[f] {
			return c, true
		}
	}
	const maxScan = uint64(1) << 20
	scan := size
	if scan > maxScan {
		scan = maxScan
	}
	start := rng.Uint64() % size
	step := goldenStep(size)
	for i := uint64(0); i < scan; i++ {
		f := (start + i*step) % size
		if !s.visited[f] && !planned[f] {
			return s.task.Space.FromFlat(f), true
		}
	}
	return space.Config{}, false
}

// randomBatch plans up to n distinct unvisited configurations. The draw is
// serial on the caller's RNG, so the plan — and therefore the whole run —
// does not depend on how many workers later measure it.
func (s *session) randomBatch(rng *rand.Rand, n int) []space.Config {
	out := make([]space.Config, 0, n)
	planned := make(map[uint64]bool, n)
	for len(out) < n {
		c, ok := s.randomUnvisited(rng, planned)
		if !ok {
			break
		}
		planned[c.Flat()] = true
		out = append(out, c)
	}
	return out
}
