package tuner

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/active"
	"repro/internal/backend"
	"repro/internal/graph"
	"repro/internal/hwsim"
	"repro/internal/space"
	"repro/internal/tensor"
	"repro/internal/transfer"
)

func testTask(t *testing.T) *Task {
	t.Helper()
	task, err := NewTask("test.conv", tensor.Conv2D(1, 32, 28, 28, 64, 3, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func sim(seed int64) backend.Backend {
	return backend.Wrap("gtx1080ti", hwsim.NewSimulator(hwsim.GTX1080Ti(), seed))
}

// mustTune runs a tuner to completion, failing the test on any error other
// than ErrNoValidConfig (which individual tests assert through res.Found).
func mustTune(t *testing.T, tn Tuner, task *Task, b backend.Backend, opts Options) Result {
	t.Helper()
	res, err := tn.Tune(context.Background(), task, b, opts)
	if err != nil && !errors.Is(err, ErrNoValidConfig) {
		t.Fatalf("%s: unexpected tune error: %v", tn.Name(), err)
	}
	return res
}

func quickOpts(budget int, seed int64) Options {
	return Options{Budget: budget, EarlyStop: -1, PlanSize: 16, Seed: seed}
}

func allTuners() []Tuner {
	return []Tuner{RandomTuner{}, GridTuner{}, GATuner{}, NewAutoTVM(), NewBTED(), NewBTEDBAO()}
}

func TestAllTunersRespectBudget(t *testing.T) {
	task := testTask(t)
	for _, tn := range allTuners() {
		res := mustTune(t, tn, task, sim(1), quickOpts(60, 7))
		if res.Measurements > 60 {
			t.Errorf("%s measured %d > budget 60", tn.Name(), res.Measurements)
		}
		if res.Measurements == 0 {
			t.Errorf("%s measured nothing", tn.Name())
		}
		if len(res.Samples) != res.Measurements {
			t.Errorf("%s sample count mismatch", tn.Name())
		}
		if res.TunerName != tn.Name() || res.TaskName != task.Name {
			t.Errorf("%s result labels wrong: %+v", tn.Name(), res)
		}
	}
}

func TestTunersFindValidConfigs(t *testing.T) {
	task := testTask(t)
	for _, tn := range allTuners() {
		res := mustTune(t, tn, task, sim(2), quickOpts(120, 11))
		if !res.Found {
			t.Errorf("%s found no valid config in 120 measurements", tn.Name())
			continue
		}
		if res.Best.GFLOPS <= 0 {
			t.Errorf("%s best GFLOPS %v", tn.Name(), res.Best.GFLOPS)
		}
	}
}

func TestNoDuplicateMeasurements(t *testing.T) {
	task := testTask(t)
	for _, tn := range allTuners() {
		res := mustTune(t, tn, task, sim(3), quickOpts(100, 13))
		seen := make(map[uint64]bool)
		for _, s := range res.Samples {
			f := s.Config.Flat()
			if seen[f] {
				t.Errorf("%s measured a config twice", tn.Name())
				break
			}
			seen[f] = true
		}
	}
}

func TestEarlyStopping(t *testing.T) {
	task := testTask(t)
	opts := Options{Budget: 600, EarlyStop: 30, PlanSize: 16, Seed: 5}
	res := mustTune(t, RandomTuner{}, task, sim(4), opts)
	if res.Measurements >= 600 {
		t.Fatalf("early stop did not bound the run: %d", res.Measurements)
	}
}

func TestObserverSeesEverything(t *testing.T) {
	task := testTask(t)
	count := 0
	opts := quickOpts(50, 1)
	opts.Observer = func(step int, s active.Sample) {
		count++
		if step != count {
			t.Fatalf("step %d out of order (want %d)", step, count)
		}
	}
	res := mustTune(t, NewAutoTVM(), task, sim(5), opts)
	if count != res.Measurements {
		t.Fatalf("observer saw %d of %d measurements", count, res.Measurements)
	}
}

func TestModelTunersBeatRandom(t *testing.T) {
	// Averaged over a few seeds, the model-based tuners must beat pure
	// random search on equal budgets — the premise of the whole paper.
	task, err := NewTask("test.conv2", tensor.Conv2D(1, 64, 56, 56, 128, 3, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	rounds := 3
	budget := 160
	mean := func(tn Tuner, base int64) float64 {
		total := 0.0
		for r := 0; r < rounds; r++ {
			res := mustTune(t, tn, task, sim(int64(r)+base), quickOpts(budget, int64(100+r)))
			if res.Found {
				total += res.Best.GFLOPS
			}
		}
		return total / float64(rounds)
	}
	randomG := mean(RandomTuner{}, 1000)
	autotvmG := mean(NewAutoTVM(), 2000)
	baoG := mean(NewBTEDBAO(), 3000)
	if autotvmG <= randomG {
		t.Errorf("autotvm %.0f should beat random %.0f", autotvmG, randomG)
	}
	if baoG <= randomG {
		t.Errorf("bted+bao %.0f should beat random %.0f", baoG, randomG)
	}
}

func TestDeterministicRuns(t *testing.T) {
	task := testTask(t)
	for _, tn := range []Tuner{NewAutoTVM(), NewBTEDBAO()} {
		a := mustTune(t, tn, task, sim(7), quickOpts(60, 3))
		b := mustTune(t, tn, task, sim(7), quickOpts(60, 3))
		if a.Measurements != b.Measurements {
			t.Fatalf("%s nondeterministic measurement count", tn.Name())
		}
		for i := range a.Samples {
			if !a.Samples[i].Config.Equal(b.Samples[i].Config) {
				t.Fatalf("%s nondeterministic sample order", tn.Name())
			}
		}
	}
}

func TestTransferLearningAcrossTasks(t *testing.T) {
	// Tuning a second similar task with history should work and record
	// into the shared history.
	h := transfer.NewHistory()
	t1, err := NewTask("a", tensor.Conv2D(1, 32, 28, 28, 64, 3, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := NewTask("b", tensor.Conv2D(1, 64, 14, 14, 128, 3, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	opts := quickOpts(60, 1)
	opts.Transfer = h
	mustTune(t, NewAutoTVM(), t1, sim(8), opts)
	if h.NumTasks() != 1 {
		t.Fatalf("history has %d tasks after first run", h.NumTasks())
	}
	res := mustTune(t, NewAutoTVM(), t2, sim(9), opts)
	if !res.Found {
		t.Fatal("transfer run found nothing")
	}
	if h.NumTasks() != 2 {
		t.Fatalf("history has %d tasks after second run", h.NumTasks())
	}
}

func TestBestTrace(t *testing.T) {
	task := testTask(t)
	res := mustTune(t, RandomTuner{}, task, sim(10), quickOpts(40, 2))
	trace := res.BestTrace()
	if len(trace) != res.Measurements {
		t.Fatalf("trace length %d", len(trace))
	}
	for i := 1; i < len(trace); i++ {
		if trace[i] < trace[i-1] {
			t.Fatal("best trace must be non-decreasing")
		}
	}
}

func TestFromGraphTask(t *testing.T) {
	g := graph.MobileNetV1()
	gts := graph.ExtractTasks(g, graph.ConvOnly)
	tk, err := FromGraphTask(gts[0])
	if err != nil {
		t.Fatal(err)
	}
	if tk.Name != gts[0].Name || tk.Count != gts[0].Count || tk.Space == nil {
		t.Fatalf("conversion wrong: %+v", tk)
	}
	bad := graph.Task{Name: "bad", Workload: tensor.Workload{Op: tensor.OpKind(9), N: 1, C: 1, F: 1}}
	if _, err := FromGraphTask(bad); err == nil {
		t.Fatal("bad workload should error")
	}
}

func TestOptionsNormalized(t *testing.T) {
	o := Options{}.normalized()
	if o.Budget != 1024 || o.EarlyStop != 400 || o.PlanSize != 64 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	o = Options{EarlyStop: -1}.normalized()
	if o.EarlyStop != -1 {
		t.Fatal("negative EarlyStop must be preserved (disabled)")
	}
}

func TestGridTunerDeterministicPermutation(t *testing.T) {
	task := testTask(t)
	res := mustTune(t, GridTuner{}, task, sim(11), quickOpts(50, 1))
	if res.Measurements != 50 {
		t.Fatalf("grid measured %d, want 50 (step must be a permutation)", res.Measurements)
	}
	// Fully deterministic: a second run visits identical configs.
	res2 := mustTune(t, GridTuner{}, task, sim(12), quickOpts(50, 99))
	for i := range res.Samples {
		if !res.Samples[i].Config.Equal(res2.Samples[i].Config) {
			t.Fatal("grid sweep must be seed-independent")
		}
	}
}

func TestTinySpaceExhaustion(t *testing.T) {
	// A space smaller than the budget: tuners must terminate without
	// spinning forever.
	sp := space.New(space.NewEnumKnob("a", 0, 1, 2), space.NewEnumKnob("b", 0, 1))
	task := &Task{Name: "tiny", Workload: tensor.Conv2D(1, 4, 8, 8, 4, 3, 1, 1), Space: sp, Count: 1}
	for _, tn := range []Tuner{RandomTuner{}, GATuner{}, NewAutoTVM()} {
		res := mustTune(t, tn, task, sim(12), quickOpts(100, 1))
		if res.Measurements > 6 {
			t.Fatalf("%s measured %d configs in a 6-point space", tn.Name(), res.Measurements)
		}
	}
}

// TestGridTunerExhaustsSmallSpace is the regression test for the
// budget-accounting bug where GridTuner looped Budget times on a space
// smaller than the budget, silently revisiting configurations as no-ops.
// The sweep must now cap at Space.Size(): every config measured exactly
// once, then stop.
func TestGridTunerExhaustsSmallSpace(t *testing.T) {
	sp := space.New(space.NewEnumKnob("a", 0, 1, 2), space.NewEnumKnob("b", 0, 1))
	task := &Task{Name: "tiny", Workload: tensor.Conv2D(1, 4, 8, 8, 4, 3, 1, 1), Space: sp, Count: 1}
	res := mustTune(t, GridTuner{}, task, sim(15), quickOpts(100, 1))
	if res.Measurements != 6 {
		t.Fatalf("grid measured %d configs in a 6-point space, want exactly 6", res.Measurements)
	}
	seen := make(map[uint64]bool)
	for _, s := range res.Samples {
		f := s.Config.Flat()
		if seen[f] {
			t.Fatalf("grid measured config %d twice", f)
		}
		seen[f] = true
	}
}

func TestBTEDTunerUsesBTEDInit(t *testing.T) {
	// BTED and AutoTVM differ only in initialization: with the same seed
	// their first PlanSize samples must differ (BTED selects, random draws).
	task := testTask(t)
	opts := quickOpts(20, 99)
	a := mustTune(t, NewAutoTVM(), task, sim(13), opts)
	b := mustTune(t, NewBTED(), task, sim(13), opts)
	same := true
	for i := 0; i < 16 && i < len(a.Samples) && i < len(b.Samples); i++ {
		if !a.Samples[i].Config.Equal(b.Samples[i].Config) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("BTED init produced the identical set as random init")
	}
	if a.TunerName != "autotvm" || b.TunerName != "bted" {
		t.Fatal("tuner names wrong")
	}
}

func TestNewTaskInvalidWorkload(t *testing.T) {
	if _, err := NewTask("bad", tensor.Conv2D(0, 3, 8, 8, 8, 3, 1, 1)); err == nil {
		t.Fatal("invalid workload should error")
	}
}

func TestSessionSkipsVisited(t *testing.T) {
	task := testTask(t)
	s := newSession(task, sim(14), Options{Budget: 10, PlanSize: 4}.normalized())
	rng := rand.New(rand.NewSource(1))
	c := task.Space.Random(rng)
	ctx := context.Background()
	s.measure(ctx, c)
	s.measure(ctx, c)
	if len(s.samples) != 1 {
		t.Fatalf("visited config measured twice: %d samples", len(s.samples))
	}
}
