package tuner

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/active"
	"repro/internal/backend"
	"repro/internal/hwsim"
	"repro/internal/space"
	"repro/internal/tensor"
)

// TestCancellationPrefixDeterminism is the cancellation half of the engine
// contract: for every tuner, cancelling mid-run via the observer must stop
// the run with exactly the samples recorded so far, and that prefix must be
// bit-identical to the uncancelled run's samples — for any worker count.
func TestCancellationPrefixDeterminism(t *testing.T) {
	task := testTask(t)
	const cancelAt = 23 // deliberately not a batch boundary
	for _, tn := range append(allTuners(), NewChameleon()) {
		tn := tn
		t.Run(tn.Name(), func(t *testing.T) {
			full := mustTune(t, tn, task, sim(51), quickOpts(60, 43))
			if len(full.Samples) <= cancelAt {
				t.Fatalf("full run too short to cancel inside: %d samples", len(full.Samples))
			}
			for _, workers := range []int{1, 4, 8} {
				ctx, cancel := context.WithCancel(context.Background())
				opts := quickOpts(60, 43)
				opts.Workers = workers
				opts.Observer = func(step int, _ active.Sample) {
					if step == cancelAt {
						cancel()
					}
				}
				res, err := tn.Tune(ctx, task, sim(51), opts)
				cancel()
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
				}
				if len(res.Samples) != cancelAt || res.Measurements != cancelAt {
					t.Fatalf("workers=%d: cancelled at step %d but recorded %d samples",
						workers, cancelAt, len(res.Samples))
				}
				if !sameSampleStream(res.Samples, full.Samples[:cancelAt]) {
					t.Fatalf("workers=%d: cancelled samples are not a prefix of the full run", workers)
				}
			}
		})
	}
}

// TestCancelledBeforeStart covers the degenerate prefix: a context cancelled
// before Tune is called yields zero samples and the cancellation error.
func TestCancelledBeforeStart(t *testing.T) {
	task := testTask(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tn := range allTuners() {
		res, err := tn.Tune(ctx, task, sim(52), quickOpts(40, 3))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v", tn.Name(), err)
		}
		if len(res.Samples) != 0 {
			t.Fatalf("%s: measured %d samples on a dead context", tn.Name(), len(res.Samples))
		}
	}
}

// slowBackend adds a fixed wall-clock delay to every measurement so deadline
// tests have something to race against.
type slowBackend struct {
	inner backend.Backend
	delay time.Duration
}

func (s slowBackend) Name() string { return "slow(" + s.inner.Name() + ")" }

func (s slowBackend) Seeded() bool { return s.inner.Seeded() }

func (s slowBackend) Measure(w tensor.Workload, c space.Config) hwsim.Measurement {
	time.Sleep(s.delay)
	return s.inner.Measure(w, c)
}

func (s slowBackend) MeasureSeeded(w tensor.Workload, c space.Config, noiseSeed int64) hwsim.Measurement {
	time.Sleep(s.delay)
	return s.inner.MeasureSeeded(w, c, noiseSeed)
}

func (s slowBackend) NetworkLatency(deps []hwsim.Deployment, runs int) (float64, float64, error) {
	return s.inner.NetworkLatency(deps, runs)
}

// TestDeadlineStopsWithinOneBatch runs against a backend where each
// measurement takes ~1ms and sets a deadline far below the uncancelled
// runtime: Tune must return a DeadlineExceeded-wrapping error promptly —
// within roughly one in-flight batch of the deadline, with generous CI
// slack — carrying whatever prefix it measured.
func TestDeadlineStopsWithinOneBatch(t *testing.T) {
	task := testTask(t)
	slow := slowBackend{inner: sim(53), delay: time.Millisecond}
	opts := Options{Budget: 4096, EarlyStop: -1, PlanSize: 16, Seed: 61, Workers: 4}
	// Serial-equivalent runtime is budget * 1ms >> 50ms.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := NewAutoTVM().Tune(ctx, task, slow, opts)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res.Measurements >= opts.Budget {
		t.Fatal("deadline did not cut the run short")
	}
	// One batch is 16 measurements at 1ms on 4 workers (~4ms); 2s absorbs
	// scheduler noise on loaded CI machines while still catching a run that
	// ignores the deadline (which would take >1s per 1024 measurements).
	if elapsed > 2*time.Second {
		t.Fatalf("Tune returned %v after the 50ms deadline", elapsed)
	}
}

// TestRandomUnvisitedFallbackOnTinySpace is the regression test for the
// fixed-draw-count stall: on a nearly exhausted small space, the uniform
// draws may all collide, and the systematic fallback scan must still find
// the remaining configuration rather than declaring the space exhausted.
func TestRandomUnvisitedFallbackOnTinySpace(t *testing.T) {
	tiny := tinyTask(t) // 6 configurations
	size := tiny.Space.Size()
	if size > 64 {
		t.Fatalf("test wants a space <= 64, got %d", size)
	}
	for hole := uint64(0); hole < size; hole++ {
		s := newSession(tiny, sim(1), quickOpts(10, 1).normalized())
		for f := uint64(0); f < size; f++ {
			if f != hole {
				s.visited[f] = true
			}
		}
		c, ok := s.randomUnvisited(newTestRNG(int64(hole)), nil)
		if !ok {
			t.Fatalf("hole %d: declared exhausted with one config remaining", hole)
		}
		if c.Flat() != hole {
			t.Fatalf("hole %d: returned flat %d", hole, c.Flat())
		}
		s.visited[hole] = true
		if _, ok := s.randomUnvisited(newTestRNG(int64(hole)), nil); ok {
			t.Fatalf("hole %d: found a config in a fully visited space", hole)
		}
	}
}

// TestRandomUnvisitedRespectsPlanned checks the in-flight batch is excluded
// exactly like the visited set.
func TestRandomUnvisitedRespectsPlanned(t *testing.T) {
	tiny := tinyTask(t)
	size := tiny.Space.Size()
	s := newSession(tiny, sim(2), quickOpts(10, 1).normalized())
	planned := make(map[uint64]bool)
	for i := uint64(0); i < size; i++ {
		c, ok := s.randomUnvisited(newTestRNG(9), planned)
		if !ok {
			t.Fatalf("exhausted after %d of %d plans", i, size)
		}
		if planned[c.Flat()] {
			t.Fatalf("replanned config %d", c.Flat())
		}
		planned[c.Flat()] = true
	}
	if _, ok := s.randomUnvisited(newTestRNG(9), planned); ok {
		t.Fatal("found a config with the whole space planned")
	}
}
