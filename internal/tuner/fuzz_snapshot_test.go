package tuner

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/snap"
)

// FuzzSnapshotRoundTrip mirrors record's FuzzReadTornTail for the snapshot
// codec: arbitrary valid session states survive encode→decode→encode
// byte-identically, and truncated or corrupted checkpoint bytes never
// panic — they either parse to an intact prefix or report the typed
// corruption error.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(int64(17), uint64(3), uint(4), 123.5, true, uint(2), uint(7))
	f.Add(int64(-1), uint64(0), uint(0), 0.0, false, uint(0), uint(0))
	f.Add(int64(1<<40), uint64(9999), uint(40), 1e-300, true, uint(31), uint(255))
	f.Fuzz(func(t *testing.T, seed int64, draws uint64, nSamples uint, gflops float64, valid bool, cutAt, flip uint) {
		if math.IsNaN(gflops) || math.IsInf(gflops, 0) {
			// Sessions only ever record finite measurements; JSON cannot
			// carry the rest.
			gflops = 0
		}
		st := SessionState{
			Version: SessionStateVersion,
			Tuner:   "random",
			Task:    "fuzz.task",
			Base: BaseState{
				Seed:     seed,
				RNG:      rng.State{Seed: seed, N: draws},
				StepDone: valid,
			},
		}
		n := int(nSamples % 64)
		for i := 0; i < n; i++ {
			st.Base.Samples = append(st.Base.Samples, SampleState{
				Config: []int{i % 5, (i * 7) % 3, i % 2},
				GFLOPS: gflops * float64(i+1),
				Valid:  valid || i%3 == 0,
			})
		}

		frame, err := snap.Encode("tuner-session/v1", st)
		if err != nil {
			t.Fatalf("encode valid state: %v", err)
		}
		frames, err := snap.Read(frame)
		if err != nil || len(frames) != 1 {
			t.Fatalf("read own frame: %v (%d frames)", err, len(frames))
		}
		var back SessionState
		if err := frames[0].Unmarshal(&back); err != nil {
			t.Fatalf("decode: %v", err)
		}
		again, err := snap.Encode("tuner-session/v1", back)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(frame, again) {
			t.Fatalf("encode→decode→encode not byte-identical:\n%q\n%q", frame, again)
		}

		// Truncation: every prefix must parse without panicking, yielding
		// either nothing (torn tail dropped) or the intact frame.
		cut := int(cutAt % uint(len(frame)+1))
		if fs, err := snap.Read(frame[:cut]); err != nil {
			t.Fatalf("truncated read errored: %v", err)
		} else if len(fs) > 1 {
			t.Fatalf("truncated read produced %d frames", len(fs))
		}

		// Corruption: flipping any byte must never panic; the outcome is an
		// intact parse (flip hit a redundant spot — it cannot, with a
		// checksum over kind+payload, but stay defensive), a dropped tail,
		// or the typed error when followed by more frames.
		two := append(append([]byte(nil), frame...), frame...)
		two[int(flip)%len(two)] ^= 0x41
		if _, err := snap.Read(two); err != nil && !errors.Is(err, snap.ErrCorrupt) {
			t.Fatalf("corrupted read returned a non-typed error: %v", err)
		}
	})
}
