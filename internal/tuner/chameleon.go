package tuner

import (
	"context"
	"math/rand"

	"repro/internal/active"
	"repro/internal/backend"
	"repro/internal/cluster"
	"repro/internal/sa"
	"repro/internal/space"
)

// ChameleonTuner is a simplified CHAMELEON-style baseline (Ahn et al.,
// ICLR 2020): like the AutoTVM tuner it proposes a candidate batch by
// maximizing a learned cost model, but it then *adaptively samples* the
// batch — k-means clustering over candidate features, measuring only the
// cluster representatives — so each round spends fewer on-chip
// measurements on redundant, mutually-similar candidates.
//
// The original uses reinforcement learning for the proposal step; the
// paper under reproduction explicitly declines to re-implement that ("too
// difficult to implement and train"), and its measurable delta comes from
// the adaptive sampling, which is what this baseline keeps.
type ChameleonTuner struct {
	// Inner carries the cost-model machinery (init strategy, XGB, SA).
	Inner ModelTuner
	// ProposalFactor scales how many candidates are proposed per round
	// relative to PlanSize before clustering shrinks them (default 4).
	ProposalFactor int
	// MeasureFrac is the fraction of PlanSize actually measured per round
	// after clustering (default 0.5).
	MeasureFrac float64
}

// NewChameleon returns the baseline with its defaults.
func NewChameleon() *ChameleonTuner {
	return &ChameleonTuner{ProposalFactor: 4, MeasureFrac: 0.5}
}

// Name implements Tuner.
func (*ChameleonTuner) Name() string { return "chameleon" }

// Open implements Opener: the first step measures the random
// initialization set, each later step proposes candidates via the cost
// model, adaptively samples them by clustering, and measures the survivors.
func (t *ChameleonTuner) Open(_ context.Context, task *Task, b backend.Backend, opts Options) (Session, error) {
	return t.open(task, b, opts, nil)
}

// Restore implements Opener.
func (t *ChameleonTuner) Restore(_ context.Context, task *Task, b backend.Backend, opts Options, st SessionState) (Session, error) {
	return t.open(task, b, opts, &st)
}

func (t *ChameleonTuner) open(task *Task, b backend.Backend, opts Options, st *SessionState) (Session, error) {
	opts = opts.normalized()
	s, err := openSession(t.Name(), task, b, opts, st)
	if err != nil {
		return nil, err
	}
	rng := s.src.Rand()

	pf := t.ProposalFactor
	if pf <= 0 {
		pf = 4
	}
	mf := t.MeasureFrac
	if mf <= 0 || mf > 1 {
		mf = 0.5
	}

	ex := &initedState{}
	if err := unmarshalExtra(st, ex); err != nil {
		return nil, err
	}
	step := func(ctx context.Context) bool {
		if s.exhausted(ctx) {
			return true
		}
		if !ex.Inited {
			ex.Inited = true
			s.measureBatch(ctx, active.RandomInit(task.Space, opts.PlanSize, rng))
			return s.exhausted(ctx)
		}
		before := len(s.samples)
		model := t.Inner.trainModel(task, s, rng)
		var batch []space.Config
		if model != nil {
			obj := newSAObjective(model, task.Space)
			proposals := sa.FindMaximaDelta(task.Space, obj, pf*opts.PlanSize, s.visited, t.Inner.saOptions(opts), rng)
			batch = adaptiveSample(proposals, int(mf*float64(opts.PlanSize)), rng)
		}
		planned := make(map[uint64]bool, len(batch))
		for _, c := range batch {
			planned[c.Flat()] = true
		}
		for len(batch) < int(mf*float64(opts.PlanSize)) {
			rc, ok := s.randomUnvisited(rng, planned)
			if !ok {
				break
			}
			planned[rc.Flat()] = true
			batch = append(batch, rc)
		}
		s.measureBatch(ctx, batch)
		if len(s.samples) == before {
			return true
		}
		return s.exhausted(ctx)
	}
	ss := newStepSession(t.Name(), s, step).restoredFrom(st)
	return ss.withExtra(func() (any, error) { return *ex, nil }), nil
}

// Tune implements Tuner.
func (t *ChameleonTuner) Tune(ctx context.Context, task *Task, b backend.Backend, opts Options) (Result, error) {
	return tune(ctx, t, task, b, opts)
}

// adaptiveSample clusters the proposals in feature space and keeps one
// representative per cluster.
func adaptiveSample(proposals []space.Config, k int, rng *rand.Rand) []space.Config {
	if len(proposals) == 0 || k <= 0 {
		return nil
	}
	if k >= len(proposals) {
		return proposals
	}
	feats := make([][]float64, len(proposals))
	for i, c := range proposals {
		feats[i] = c.Features()
	}
	res, err := cluster.KMeans(feats, k, 30, rng)
	if err != nil {
		return proposals[:k]
	}
	reps := res.Representatives(feats)
	out := make([]space.Config, 0, len(reps))
	for _, i := range reps {
		out = append(out, proposals[i])
	}
	return out
}
