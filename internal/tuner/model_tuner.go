package tuner

import (
	"context"
	"math/rand"

	"repro/internal/active"
	"repro/internal/backend"
	"repro/internal/sa"
	"repro/internal/space"
	"repro/internal/xgb"
)

// InitStrategy produces the initialization set of a model-based tuner.
type InitStrategy int

// Initialization strategies.
const (
	// InitRandom draws PlanSize uniform configurations (AutoTVM default).
	InitRandom InitStrategy = iota
	// InitBTED runs batch transductive experimental design (Algorithm 2).
	InitBTED
)

// ModelTuner is the AutoTVM-style model-based tuner: an XGBoost cost model
// trained on all observations ranks candidates, simulated annealing
// maximizes the model over the space, and a new batch of PlanSize
// candidates is measured each round, with epsilon-greedy random exploration
// and optional transfer-learning warm starts.
//
// With Init == InitBTED it becomes the paper's "BTED" arm: identical
// iterative machinery, diversity-optimized initialization.
type ModelTuner struct {
	// Init selects the initialization strategy.
	Init InitStrategy
	// BTED configures the BTED initialization (zero value = paper
	// defaults); ignored under InitRandom.
	BTED active.BTEDParams
	// XGB configures the cost model; zero value = surrogate defaults.
	XGB xgb.Params
	// SA configures the model optimizer; zero value = package defaults.
	SA sa.Options
	// Epsilon is the random-exploration fraction per batch (default 0.05).
	Epsilon float64
	// RankObjective trains the cost model with the pairwise rank loss
	// instead of squared error (AutoTVM's actual objective; only relative
	// order matters to the SA argmax).
	RankObjective bool
	// TransferLimit caps warm-start rows mixed into the first model
	// trainings (default 2*PlanSize).
	TransferLimit int
}

// NewAutoTVM returns the baseline configuration of the paper's
// experiments: XGBoost + SA + transfer learning with random init.
func NewAutoTVM() *ModelTuner { return &ModelTuner{Init: InitRandom} }

// NewBTED returns AutoTVM with the BTED initialization (the paper's second
// experimental arm).
func NewBTED() *ModelTuner { return &ModelTuner{Init: InitBTED, BTED: active.DefaultBTEDParams()} }

// Name implements Tuner.
func (t *ModelTuner) Name() string {
	if t.Init == InitBTED {
		return "bted"
	}
	return "autotvm"
}

// saOptions resolves the SA configuration for one run: when the caller
// opted into parallel chains without pinning a chain-worker cap, the
// session's measurement worker count doubles as the cap — results stay
// bit-identical for every value, so this only shapes scheduling.
func (t *ModelTuner) saOptions(opts Options) sa.Options {
	so := t.SA
	if so.Chains > 1 && so.Workers <= 0 {
		so.Workers = opts.Workers
	}
	return so
}

func (t *ModelTuner) xgbParams() xgb.Params {
	p := t.XGB
	if p.NumRounds == 0 {
		p = xgb.DefaultParams()
		p.NumRounds = 24
		p.MaxDepth = 5
		p.MaxBins = 24
	}
	if t.RankObjective {
		p.Objective = xgb.ObjPairwiseRank
	}
	return p
}

// Open implements Opener: the first step measures the initialization set
// (random or BTED), each later step trains the cost model, runs the SA
// argmax, and measures one planned batch.
func (t *ModelTuner) Open(_ context.Context, task *Task, b backend.Backend, opts Options) (Session, error) {
	return t.open(task, b, opts, nil)
}

// Restore implements Opener. The pooled SA objective and the cost model
// are not part of the snapshot: the model is retrained from the samples
// every round, and resetSAObjective rebuilds every model-derived field of
// a fresh objective exactly as it does a pooled one.
func (t *ModelTuner) Restore(_ context.Context, task *Task, b backend.Backend, opts Options, st SessionState) (Session, error) {
	return t.open(task, b, opts, &st)
}

func (t *ModelTuner) open(task *Task, b backend.Backend, opts Options, st *SessionState) (Session, error) {
	opts = opts.normalized()
	s, err := openSession(t.Name(), task, b, opts, st)
	if err != nil {
		return nil, err
	}
	rng := s.src.Rand()
	eps := t.Epsilon
	if eps <= 0 {
		eps = 0.05
	}
	ex := &initedState{}
	if err := unmarshalExtra(st, ex); err != nil {
		return nil, err
	}
	// The SA objective is pooled across rounds: the space never changes
	// within a session, so each round's retrained surrogate is compiled
	// into the previous round's buffers (resetSAObjective rebuilds every
	// model-derived field, keeping rounds independent bit-for-bit).
	var saObj *saObjective
	step := func(ctx context.Context) bool {
		if s.exhausted(ctx) {
			return true
		}
		if !ex.Inited {
			// ---- Initialization stage ---------------------------------
			ex.Inited = true
			initDone := opts.Phases.track(PhaseInitSet)
			var init []space.Config
			if t.Init == InitBTED {
				p := t.BTED
				p.M0 = opts.PlanSize
				init = active.BTED(task.Space, p, rng)
			} else {
				init = active.RandomInit(task.Space, opts.PlanSize, rng)
			}
			initDone()
			s.measureBatch(ctx, init)
			return s.exhausted(ctx)
		}
		// ---- Iterative optimization stage -----------------------------
		trainDone := opts.Phases.track(PhaseSurrogateTrain)
		model := t.trainModel(task, s, rng)
		trainDone()
		selectDone := opts.Phases.track(PhaseCandidateSelection)
		var cands []space.Config
		if model != nil {
			// Compiled SoA surrogate + delta-encoded feature rows: scores
			// are bit-identical to model.Predict(c.Features()) per
			// candidate, so the sample stream matches the naive objective.
			saObj = resetSAObjective(saObj, model, task.Space)
			cands = sa.FindMaximaDelta(task.Space, saObj, opts.PlanSize, s.visited, t.saOptions(opts), rng)
		}
		// Epsilon-greedy exploration plus padding when SA under-delivers.
		// The batch is planned serially (all RNG draws happen here), then
		// measured as one deterministic parallel batch.
		batch := make([]space.Config, 0, opts.PlanSize)
		planned := make(map[uint64]bool, opts.PlanSize)
		add := func(c space.Config) {
			f := c.Flat()
			if s.visited[f] || planned[f] {
				return
			}
			planned[f] = true
			batch = append(batch, c)
		}
		for _, c := range cands {
			if len(batch) >= opts.PlanSize {
				break
			}
			if rng.Float64() < eps {
				if rc, ok := s.randomUnvisited(rng, planned); ok {
					add(rc)
					continue
				}
			}
			add(c)
		}
		for len(batch) < opts.PlanSize {
			rc, ok := s.randomUnvisited(rng, planned)
			if !ok {
				break
			}
			add(rc)
		}
		if len(batch) == 0 {
			selectDone()
			return true
		}
		selectDone()
		s.measureBatch(ctx, batch)
		return s.exhausted(ctx)
	}
	ss := newStepSession(t.Name(), s, step).restoredFrom(st)
	return ss.withExtra(func() (any, error) { return *ex, nil }), nil
}

// Tune implements Tuner.
func (t *ModelTuner) Tune(ctx context.Context, task *Task, b backend.Backend, opts Options) (Result, error) {
	return tune(ctx, t, task, b, opts)
}

// trainModel fits the cost model on all observations (normalized to the
// best seen), mixing transfer-learning warm-start rows while the task's own
// data is scarce. Returns nil when training is impossible.
func (t *ModelTuner) trainModel(task *Task, s *session, rng *rand.Rand) *xgb.Model {
	data := s.knowledge()
	if len(data) == 0 {
		return nil
	}
	X := make([][]float64, 0, len(data))
	y := make([]float64, 0, len(data))
	yMax := 0.0
	for _, smp := range data {
		if smp.Valid && smp.GFLOPS > yMax {
			yMax = smp.GFLOPS
		}
	}
	for _, smp := range data {
		X = append(X, smp.Config.Features())
		if smp.Valid && yMax > 0 {
			y = append(y, smp.GFLOPS/yMax)
		} else {
			y = append(y, 0)
		}
	}
	if s.opts.Transfer != nil {
		limit := t.TransferLimit
		if limit <= 0 {
			limit = 2 * s.opts.PlanSize
		}
		// Warm starts matter most early; fade them out as own data grows.
		if len(data) < 4*s.opts.PlanSize {
			tx, ty := s.opts.Transfer.WarmStart(task.Workload.Op, task.Name, limit)
			X = append(X, tx...)
			y = append(y, ty...)
		}
	}
	p := t.xgbParams()
	p.Seed = rng.Int63()
	model, err := xgb.Train(X, y, p)
	if err != nil {
		return nil
	}
	return model
}
