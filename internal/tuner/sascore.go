package tuner

import (
	"fmt"

	"repro/internal/sa"
	"repro/internal/space"
	"repro/internal/xgb"
)

// saObjective is the incremental SA objective of the model-based tuners: a
// compiled SoA view of the trained surrogate plus delta-encoded feature
// rows.
//
// It exploits three structural facts. First, knob features are independent:
// Config.Features() is the concatenation of per-knob spans, and each span
// depends only on that knob's option index — so a proposal that changes
// one knob changes exactly one bounded span of the feature row, which is
// patched in place from a precomputed per-option feature table instead of
// re-encoded (and re-allocated) from scratch. Second, a tree whose splits
// never read a feature inside the changed span must route the patched row
// to the same leaf, so its cached contribution is reused (knobTrees).
// Third, even a tree that does read the span only changes its answer if a
// span split on the row's own cached root-to-leaf path classifies the old
// and new option differently — the path-signature gate: per (knob, tree,
// option) the outcomes of every span-reading split are packed into a
// uint64 keyed by node ordinal, and XOR-ing two options' signatures against
// the cached path mask decides the walk exactly. A typical proposal
// re-walks only a handful of trees, in one lockstep pass.
//
// Every score it produces is bit-identical to
// model.Predict(config.Features()): patched spans hold the same float64s
// the encoder would produce, cached tree contributions are the same leaf
// values a fresh walk loads, and the final sum runs base + tree 0 + tree 1
// + ... in the exact pointer-predictor order.
type saObjective struct {
	// Shared, read-only after construction (chains Fork() onto them).
	cm        *xgb.CompiledModel
	sp        *space.Space
	dim       int
	nk        int
	offs      []int       // knob k's feature span is [offs[k], offs[k+1])
	table     [][]float64 // per knob: option-major flat feature table
	knobTrees [][]int32   // per knob: trees whose splits read its span
	knobSig   [][]uint64  // per knob: option-major split signatures per tree slot (nil: ungateable, walk all)

	// Per-chain walker state, sized by InitBatch.
	curOpt   []int32   // walkers x nk current option indices
	cur      []float64 // walkers x dim current rows (patched during scoring)
	curTree  []float64 // walkers x ntrees cached tree contributions
	curPath  []uint64  // walkers x ntrees cached path masks
	curScore []float64 // cached full scores (base + tree sum)
	scores   []float64 // returned score buffer (valid until next call)

	// Pending proposal state, valid from ProposeBatch until the commits
	// that follow it. Each walker's re-walked trees live in its segment
	// [propW[i], propW[i]+propNG[i]) of the shared work list.
	pendKnob []int32 // changed knob (-1: unchanged clone)
	pendOpt  []int32 // its proposed option
	propW    []int32 // per walker: work-list segment start
	propNG   []int32 // per walker: work-list segment length

	// The shared work list of the three-pass sweep: the surviving walks of
	// all proposals are gathered flat, walked in a single lockstep kernel
	// call, then scattered back per proposal.
	maxSpan  int
	sum      []float64 // scratch: per-tree addends of four proposals' scores
	sumIdx   []int32   // scratch: proposals pending a full sum this sweep
	witems   []int64   // work list: packed (tree, row offset) items
	wval     []float64 // work list results: contributions
	wmask    []uint64  // work list results: path masks
	spanSave []float64 // walkers x maxSpan: span values while rows are patched
}

// newSAObjective compiles the trained surrogate and precomputes the
// per-knob feature tables, knob-to-trees index, and split signatures for sp.
func newSAObjective(model *xgb.Model, sp *space.Space) *saObjective {
	return resetSAObjective(nil, model, sp)
}

// resetSAObjective is newSAObjective with cross-round buffer reuse: the
// tuner retrains its surrogate every round over the same space, so the
// space-derived state (offs, feature tables) carries over verbatim and the
// model-derived state (knob-to-trees index, signatures, walker caches) is
// rebuilt into the previous round's allocations. Passing nil builds from
// scratch; passing an objective built over a different space also falls
// back to scratch.
func resetSAObjective(o *saObjective, model *xgb.Model, sp *space.Space) *saObjective {
	// Compile into the shared arena, then retire the previous round's
	// compiled form. Order matters: releasing first would let the pool hand
	// the old arrays straight back while we still read o.cm below. Forks
	// share o.cm only within a round, and resets happen strictly between
	// rounds, so by the time the old model is released nothing reads it —
	// and across sessions the arena lets a fleet daemon reuse one set of
	// buffers instead of allocating per session per round.
	cm := model.CompilePooled()
	if cm.NumFeatures() != sp.FeatureDim() {
		//lint:ignore panicpath trainModel only ever fits on rows encoded from this space, so a width mismatch is a programming error
		panic(fmt.Sprintf("tuner: surrogate trained on %d features, space encodes %d", cm.NumFeatures(), sp.FeatureDim()))
	}
	if o != nil {
		o.cm.Release()
		o.cm = nil
	}
	n := sp.NumKnobs()
	if o == nil || o.sp != sp {
		o = &saObjective{
			sp:        sp,
			dim:       sp.FeatureDim(),
			nk:        n,
			offs:      make([]int, n+1),
			table:     make([][]float64, n),
			knobTrees: make([][]int32, n),
			knobSig:   make([][]uint64, n),
		}
		off, maxSpan := 0, 0
		for k := 0; k < n; k++ {
			kn := sp.Knob(k)
			kd := kn.FeatureDim()
			o.offs[k] = off
			tab := make([]float64, 0, kn.Len()*kd)
			for opt := 0; opt < kn.Len(); opt++ {
				tab = kn.Feature(tab, opt)
			}
			o.table[k] = tab
			if kd > maxSpan {
				maxSpan = kd
			}
			off += kd
		}
		o.offs[n] = off
		o.maxSpan = maxSpan
	}
	o.cm = cm
	for k := 0; k < n; k++ {
		off, kd := o.offs[k], o.offs[k+1]-o.offs[k]
		nopts := sp.Knob(k).Len()
		trees := o.knobTrees[k][:0]
		gateable := true
		for _, t := range cm.TreesTouching(off, off+kd) {
			trees = append(trees, int32(t))
			// A tree with more than 64 nodes folds path-mask ordinals, so
			// the signature gate is unsound for it: the knob degrades to
			// walking every touching tree. (Trees of the tuner's depth
			// never hit this.)
			if cm.TreeNodeCount(t) > 64 {
				gateable = false
			}
		}
		o.knobTrees[k] = trees
		if gateable {
			o.knobSig[k] = knobOptionSigs(cm, trees, o.table[k], off, kd, nopts, grow(o.knobSig[k], len(trees)*nopts))
		} else {
			o.knobSig[k] = nil
		}
	}
	return o
}

// grow returns buf resized to n elements, reallocating only when its
// capacity is insufficient. Contents are unspecified — callers overwrite.
func grow[T int32 | int64 | uint64 | float64](buf []T, n int) []T {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]T, n)
}

// knobOptionSigs packs, per touching tree and option, the outcome of every
// split of the tree that reads the knob's span into a uint64 signature: bit
// ord (the split node's ordinal, PredictTreePath's bit position for it) is
// set iff the option's encoding satisfies the split's <=. Two options whose
// signatures agree on every bit of a cached path mask are provably routed
// down the identical path by that tree — the cached leaf value and mask
// hold without a walk. Returned option-major: option opt's row is
// [opt*len(trees), (opt+1)*len(trees)), so the gate XORs two contiguous
// rows. Callers must only pass trees whose node count fits 64 bits, and
// sig must have len(trees)*nopts elements (it is cleared and filled here).
func knobOptionSigs(cm *xgb.CompiledModel, trees []int32, tab []float64, off, kd, nopts int, sig []uint64) []uint64 {
	ntl := len(trees)
	clear(sig)
	for ji, t := range trees {
		cm.TreeSplits(int(t), func(ord, f int, th float64) {
			if f < off || f >= off+kd {
				return
			}
			bit := uint64(1) << (uint(ord) & 63)
			for opt := 0; opt < nopts; opt++ {
				if tab[opt*kd+(f-off)] <= th {
					sig[opt*ntl+ji] |= bit
				}
			}
		})
	}
	return sig
}

// Fork implements sa.DeltaObjective: a fresh per-chain instance sharing
// the compiled model and tables.
func (o *saObjective) Fork() sa.DeltaObjective {
	return &saObjective{
		cm: o.cm, sp: o.sp, dim: o.dim, nk: o.nk,
		offs: o.offs, table: o.table, knobTrees: o.knobTrees,
		knobSig: o.knobSig,
		maxSpan: o.maxSpan,
	}
}

// encode writes c's feature row into dst from the per-knob tables —
// the same float64s Config.Features() appends, without the allocation or
// the per-option math.
func (o *saObjective) encode(dst []float64, c space.Config) {
	for k, opt := range c.Index {
		lo := o.offs[k]
		kd := o.offs[k+1] - lo
		copy(dst[lo:lo+kd], o.table[k][opt*kd:(opt+1)*kd])
	}
}

// InitBatch implements sa.DeltaObjective: encode every walker row, then
// walk every (walker, tree) pair in one lockstep kernel pass — it fills
// the contribution and path caches directly, and the per-walker scores
// fold up in exact tree order.
func (o *saObjective) InitBatch(points []space.Config) []float64 {
	w := len(points)
	nt := o.cm.NumTrees()
	base := o.cm.Base()
	// Every buffer is fully overwritten below or written before read in the
	// propose/commit cycle, so reusing a previous round's allocations (via
	// resetSAObjective pooling) cannot leak stale state.
	o.cur = grow(o.cur, w*o.dim)
	o.curTree = grow(o.curTree, w*nt)
	o.curPath = grow(o.curPath, w*nt)
	o.curScore = grow(o.curScore, w)
	o.scores = grow(o.scores, w)
	o.pendKnob = grow(o.pendKnob, w)
	o.pendOpt = grow(o.pendOpt, w)
	o.propW = grow(o.propW, w)
	o.propNG = grow(o.propNG, w)
	o.witems = grow(o.witems, w*nt)
	o.wval = grow(o.wval, w*nt)
	o.wmask = grow(o.wmask, w*nt)
	o.spanSave = grow(o.spanSave, w*o.maxSpan)
	o.sum = grow(o.sum, 4*nt)
	o.sumIdx = grow(o.sumIdx, w)
	o.curOpt = grow(o.curOpt, w*o.nk)
	for i, c := range points {
		o.encode(o.cur[i*o.dim:(i+1)*o.dim], c)
		for k, opt := range c.Index {
			o.curOpt[i*o.nk+k] = int32(opt)
		}
	}
	n := 0
	for i := 0; i < w; i++ {
		for t := 0; t < nt; t++ {
			o.witems[n] = xgb.PackPair(int32(t), i*o.dim)
			n++
		}
	}
	// The item order matches the walker-major cache layout, so the kernel
	// writes curTree and curPath in place.
	o.cm.PredictPairsPath(o.witems[:n], o.cur, o.curTree, o.curPath)
	for i := 0; i < w; i++ {
		s := base
		for t := 0; t < nt; t++ {
			s += o.curTree[i*nt+t]
		}
		o.scores[i] = s
	}
	copy(o.curScore, o.scores)
	return o.scores
}

// ProposeBatch implements sa.DeltaObjective in three passes over the
// sweep. Pass one gates, per proposal: trees whose splits never read the
// changed knob's span are out (knobTrees), and of the rest only those with
// a span split on the walker's cached path that classifies the old and new
// option differently stay in — (sigOld XOR sigNew) AND pathMask, one test,
// exact. Survivors join one flat (tree, row) work list and the walker's
// row is patched in place. Pass two walks the entire work list in a single
// lockstep kernel call — across proposals, so the chains stay wide even
// when one proposal keeps only a tree or two. Pass three merges each
// proposal's fresh leaf values over its cached contributions and sums in
// exact tree order, then reverts the patches (Commit re-applies them for
// accepted walkers). A proposal whose every touching tree was gated out
// returns the cached score as-is — the sum of identical addends is the
// identical float64.
func (o *saObjective) ProposeBatch(proposals []space.Config, changed []int) []float64 {
	nt := o.cm.NumTrees()
	base := o.cm.Base()
	wn := 0
	for i := range proposals {
		ki := changed[i]
		if ki < 0 {
			// Unchanged clone: the score is the cached score by definition.
			o.pendKnob[i] = -1
			o.scores[i] = o.curScore[i]
			continue
		}
		opt := proposals[i].Index[ki]
		oldOpt := int(o.curOpt[i*o.nk+ki])
		pb := i * nt
		trees := o.knobTrees[ki]
		ntl := len(trees)
		pbase := int64(i*o.dim) << 32
		wi := o.witems[wn:]
		o.propW[i] = int32(wn)
		ng := 0
		if sigs := o.knobSig[ki]; sigs != nil {
			sOld := sigs[oldOpt*ntl : (oldOpt+1)*ntl]
			sNew := sigs[opt*ntl : (opt+1)*ntl]
			for ji, t := range trees {
				// Unconditional store, conditional advance: whether a tree
				// survives the gate is data-dependent coin-flipping, so a
				// skip branch here would mispredict its way through the
				// sweep; the dead store (overwritten next iteration when
				// the tree was gated out) is free by comparison.
				wi[ng] = pbase | int64(t)
				if (sOld[ji]^sNew[ji])&o.curPath[pb+int(t)] != 0 {
					ng++
				}
			}
		} else {
			// Ungateable knob (a touching tree exceeds 64 nodes): walk all.
			for ji, t := range trees {
				wi[ji] = pbase | int64(t)
			}
			ng = ntl
		}
		if ng > 0 {
			lo := o.offs[ki]
			kd := o.offs[ki+1] - lo
			span := o.cur[i*o.dim+lo : i*o.dim+lo+kd]
			sv := o.spanSave[i*o.maxSpan : i*o.maxSpan+kd]
			tb := o.table[ki][opt*kd : (opt+1)*kd]
			// Spans are a handful of floats; explicit loops beat memmove
			// calls at this size.
			for z := range span {
				sv[z] = span[z]
				span[z] = tb[z]
			}
		}
		o.propNG[i] = int32(ng)
		wn += ng
		o.pendKnob[i] = int32(ki)
		o.pendOpt[i] = int32(opt)
	}
	o.cm.PredictPairsPath(o.witems[:wn], o.cur, o.wval[:wn], o.wmask[:wn])
	// Revert the row patches and collect the proposals that still need a
	// full sum; a proposal whose every touching tree was gated out keeps
	// the cached sum, bit for bit.
	m := 0
	for i := range proposals {
		ki := int(o.pendKnob[i])
		if ki < 0 {
			continue
		}
		if o.propNG[i] == 0 {
			o.scores[i] = o.curScore[i]
			continue
		}
		lo := o.offs[ki]
		kd := o.offs[ki+1] - lo
		span := o.cur[i*o.dim+lo : i*o.dim+lo+kd]
		sv := o.spanSave[i*o.maxSpan : i*o.maxSpan+kd]
		for z := range span {
			span[z] = sv[z]
		}
		o.sumIdx[m] = int32(i)
		m++
	}
	// Merge each pending proposal's fresh leaf values over its cached
	// contributions and sum in exact tree order. A walk that found the same
	// leaf scatters the identical bits, so no fresh-vs-cached comparison is
	// needed for exactness. Four proposals are summed in lockstep: each
	// ordered sum is a serial float-add latency chain, and the chains are
	// independent across proposals, so interleaving four overlaps the add
	// latencies without touching any single proposal's addend order.
	z := 0
	for ; z+4 <= m; z += 4 {
		for q := 0; q < 4; q++ {
			i := int(o.sumIdx[z+q])
			pb := i * nt
			copy(o.sum[q*nt:(q+1)*nt], o.curTree[pb:pb+nt])
			w := int(o.propW[i])
			for j := w; j < w+int(o.propNG[i]); j++ {
				o.sum[q*nt+int(xgb.PairTree(o.witems[j]))] = o.wval[j]
			}
		}
		s0, s1, s2, s3 := base, base, base, base
		a0, a1, a2, a3 := o.sum[0:nt], o.sum[nt:2*nt], o.sum[2*nt:3*nt], o.sum[3*nt:4*nt]
		for t := 0; t < nt; t++ {
			s0 += a0[t]
			s1 += a1[t]
			s2 += a2[t]
			s3 += a3[t]
		}
		o.scores[o.sumIdx[z]] = s0
		o.scores[o.sumIdx[z+1]] = s1
		o.scores[o.sumIdx[z+2]] = s2
		o.scores[o.sumIdx[z+3]] = s3
	}
	for ; z < m; z++ {
		i := int(o.sumIdx[z])
		pb := i * nt
		copy(o.sum, o.curTree[pb:pb+nt])
		w := int(o.propW[i])
		for j := w; j < w+int(o.propNG[i]); j++ {
			o.sum[xgb.PairTree(o.witems[j])] = o.wval[j]
		}
		s := base
		for t := 0; t < nt; t++ {
			s += o.sum[t]
		}
		o.scores[i] = s
	}
	return o.scores
}

// Commit implements sa.DeltaObjective: walker i's proposal becomes its
// current point — the span patch is re-applied and the walker's work-list
// segment lands in the contribution and path caches. (Trees the gate kept
// out of the segment provably kept their cached path, so their entries are
// already correct.)
func (o *saObjective) Commit(i int) {
	ki := int(o.pendKnob[i])
	if ki < 0 {
		return
	}
	nt := o.cm.NumTrees()
	lo := o.offs[ki]
	kd := o.offs[ki+1] - lo
	opt := int(o.pendOpt[i])
	o.curOpt[i*o.nk+ki] = int32(opt)
	span := o.cur[i*o.dim+lo : i*o.dim+lo+kd]
	tb := o.table[ki][opt*kd : (opt+1)*kd]
	for z := range span {
		span[z] = tb[z]
	}
	pb := i * nt
	w := int(o.propW[i])
	for j := w; j < w+int(o.propNG[i]); j++ {
		t := int(xgb.PairTree(o.witems[j]))
		o.curTree[pb+t] = o.wval[j]
		o.curPath[pb+t] = o.wmask[j]
	}
	o.curScore[i] = o.scores[i]
}
