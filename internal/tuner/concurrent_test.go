package tuner

import (
	"sync"
	"testing"

	"repro/internal/hwsim"
	"repro/internal/space"
	"repro/internal/tensor"
)

// countingMeasurer is a thread-safe stub inner measurer.
type countingMeasurer struct {
	mu sync.Mutex
	n  int
}

func (m *countingMeasurer) Measure(tensor.Workload, space.Config) hwsim.Measurement {
	m.mu.Lock()
	m.n++
	m.mu.Unlock()
	return hwsim.Measurement{Valid: true, TimeMS: 1, GFLOPS: 1}
}

func (m *countingMeasurer) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

// TestFlakyMeasurerConcurrent drives one FlakyMeasurer from many
// goroutines. Under -race this validates the lock around the failure RNG;
// in any mode injected failures plus forwarded measurements must account
// for every call exactly once.
func TestFlakyMeasurerConcurrent(t *testing.T) {
	inner := &countingMeasurer{}
	flaky := NewFlakyMeasurer(inner, 0.3, 11)

	const workers, perWorker = 8, 100
	var wg sync.WaitGroup
	invalid := make([]int, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if m := flaky.Measure(tensor.Workload{}, space.Config{}); !m.Valid {
					invalid[g]++
				}
			}
		}(g)
	}
	wg.Wait()

	total := workers * perWorker
	dropped := 0
	for _, n := range invalid {
		dropped += n
	}
	if flaky.Failures() != dropped {
		t.Fatalf("Failures() = %d but callers saw %d invalid results", flaky.Failures(), dropped)
	}
	if inner.count()+dropped != total {
		t.Fatalf("forwarded %d + dropped %d != total %d (a call was lost or double-counted)", inner.count(), dropped, total)
	}
	if dropped == 0 || dropped == total {
		t.Fatalf("dropped %d of %d; failure injection should be partial at p=0.3", dropped, total)
	}
}
