package tuner

import (
	"sync"
	"testing"

	"repro/internal/backend"
	"repro/internal/hwsim"
	"repro/internal/space"
	"repro/internal/tensor"
)

// countingStub is a thread-safe stub backend whose measurements are all
// valid and identical; only the call count matters.
type countingStub struct {
	mu sync.Mutex
	n  int
}

func (m *countingStub) Name() string { return "stub" }

func (m *countingStub) Seeded() bool { return true }

func (m *countingStub) Measure(tensor.Workload, space.Config) hwsim.Measurement {
	m.mu.Lock()
	m.n++
	m.mu.Unlock()
	return hwsim.Measurement{Valid: true, TimeMS: 1, GFLOPS: 1}
}

func (m *countingStub) MeasureSeeded(w tensor.Workload, c space.Config, _ int64) hwsim.Measurement {
	return m.Measure(w, c)
}

func (m *countingStub) NetworkLatency([]hwsim.Deployment, int) (float64, float64, error) {
	return 1, 0, nil
}

func (m *countingStub) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

// TestMeasurementPoolConcurrent runs the real tuners with a wide worker
// pool against the simulator. Under -race this validates the whole seeded
// batch path: plan-time visited marking, pooled MeasureSeeded calls and the
// ordered fold-back into session state.
func TestMeasurementPoolConcurrent(t *testing.T) {
	task := testTask(t)
	for _, tn := range allTuners() {
		opts := quickOpts(64, 37)
		opts.Workers = 8
		res := mustTune(t, tn, task, sim(9), opts)
		if res.Measurements == 0 || len(res.Samples) != res.Measurements {
			t.Fatalf("%s: inconsistent result under workers=8: %d measurements, %d samples",
				tn.Name(), res.Measurements, len(res.Samples))
		}
	}
}

// TestMeasurementPoolConcurrentFlaky layers failure injection on top of the
// pool so the flaky seeded path also runs under -race.
func TestMeasurementPoolConcurrentFlaky(t *testing.T) {
	task := testTask(t)
	opts := quickOpts(64, 41)
	opts.Workers = 8
	flaky := backend.NewFlaky(sim(10), 0.2, 5)
	res := mustTune(t, NewAutoTVM(), task, flaky, opts)
	if res.Measurements == 0 {
		t.Fatal("no measurements under flaky pool")
	}
	invalid := 0
	for _, s := range res.Samples {
		if !s.Valid {
			invalid++
		}
	}
	if invalid < flaky.Failures() {
		t.Fatalf("recorded %d invalid samples but injected %d failures", invalid, flaky.Failures())
	}
}

// TestFlakyBackendConcurrent drives one backend.Flaky from many goroutines
// over the unseeded path. Under -race this validates the lock around the
// failure RNG; in any mode injected failures plus forwarded measurements
// must account for every call exactly once.
func TestFlakyBackendConcurrent(t *testing.T) {
	inner := &countingStub{}
	flaky := backend.NewFlaky(inner, 0.3, 11)

	const workers, perWorker = 8, 100
	var wg sync.WaitGroup
	invalid := make([]int, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if m := flaky.Measure(tensor.Workload{}, space.Config{}); !m.Valid {
					invalid[g]++
				}
			}
		}(g)
	}
	wg.Wait()

	total := workers * perWorker
	dropped := 0
	for _, n := range invalid {
		dropped += n
	}
	if flaky.Failures() != dropped {
		t.Fatalf("Failures() = %d but callers saw %d invalid results", flaky.Failures(), dropped)
	}
	if inner.count()+dropped != total {
		t.Fatalf("forwarded %d + dropped %d != total %d (a call was lost or double-counted)", inner.count(), dropped, total)
	}
	if dropped == 0 || dropped == total {
		t.Fatalf("dropped %d of %d; failure injection should be partial at p=0.3", dropped, total)
	}
}

var _ backend.Backend = (*countingStub)(nil)
