package tuner

import (
	"context"
	"testing"

	"repro/internal/backend"
)

// TestSharedCacheAcrossTuners is the cmd/compare memoization contract: a
// (tuner, seed) grid sharing one Cache issues strictly fewer raw simulator
// calls than the sum of its runs — BTED and BTED+BAO at the same run seed
// share their entire initialization set — while every run's samples stay
// bit-identical to an uncached run.
func TestSharedCacheAcrossTuners(t *testing.T) {
	task := testTask(t)
	grid := []Tuner{NewBTED(), NewBTEDBAO()}
	opts := quickOpts(48, 77)

	// Reference: each run against its own uncached backend.
	var reference []Result
	total := 0
	for _, tn := range grid {
		res := mustTune(t, tn, task, sim(60), opts)
		reference = append(reference, res)
		total += res.Measurements
	}

	counting := backend.NewCounting(sim(60))
	cache := backend.NewCache(counting)
	for i, tn := range grid {
		res, err := tn.Tune(context.Background(), task, cache, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSampleStream(res.Samples, reference[i].Samples) {
			t.Fatalf("%s: cached run's samples differ from uncached run", tn.Name())
		}
	}
	if counting.Calls() >= int64(total) {
		t.Fatalf("cache saved nothing: %d raw calls for %d measurements", counting.Calls(), total)
	}
	if cache.Hits() == 0 {
		t.Fatal("no cache hits across the grid")
	}
	if counting.Calls()+cache.Hits() < int64(total) {
		t.Fatalf("accounting broken: %d raw + %d hits < %d measurements",
			counting.Calls(), cache.Hits(), total)
	}
}

// TestCachedRerunIsFree re-runs the identical (tuner, seed) cell against a
// warm cache: the second run must not reach the simulator at all.
func TestCachedRerunIsFree(t *testing.T) {
	task := testTask(t)
	counting := backend.NewCounting(sim(61))
	cache := backend.NewCache(counting)
	opts := quickOpts(40, 19)

	first, err := NewAutoTVM().Tune(context.Background(), task, cache, opts)
	if err != nil {
		t.Fatal(err)
	}
	cold := counting.Calls()
	second, err := NewAutoTVM().Tune(context.Background(), task, cache, opts)
	if err != nil {
		t.Fatal(err)
	}
	if counting.Calls() != cold {
		t.Fatalf("identical rerun issued %d raw calls", counting.Calls()-cold)
	}
	if !sameSampleStream(first.Samples, second.Samples) {
		t.Fatal("warm rerun produced different samples")
	}
}
