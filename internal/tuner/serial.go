package tuner

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/active"
	"repro/internal/backend"
	"repro/internal/rng"
)

// SessionStateVersion is the schema version stamped into every snapshot.
// Restore rejects snapshots from a different version rather than guessing
// at field semantics.
const SessionStateVersion = 1

// ErrSnapshotUnsupported reports a tuner whose sessions cannot snapshot:
// a third-party Tuner wrapped by AsOpener runs as one indivisible step
// with no observable boundaries to snapshot at.
var ErrSnapshotUnsupported = errors.New("tuner: session snapshots not supported")

// SampleState is the serializable form of one measured sample (aliased
// from internal/active, where Sample lives).
type SampleState = active.SampleState

// BaseState is the part of a snapshot shared by every tuner: the seed the
// run was opened with, the counted RNG state, and every sample recorded so
// far in measurement order. The visited set, best-so-far value, and
// early-stopping counters are deliberately absent — they are pure
// functions of (Options.Resume, Samples) and are replayed on restore, so
// a snapshot cannot go internally inconsistent.
type BaseState struct {
	Seed    int64         `json:"seed"`
	RNG     rng.State     `json:"rng"`
	Samples []SampleState `json:"samples"`
	// StepDone records that the step loop had already reported done (the
	// session was complete but not yet finalized when snapshotted).
	StepDone bool `json:"step_done,omitempty"`
}

// SessionState is a complete session snapshot, taken at a Step boundary
// via the Snapshotter interface and turned back into a live Session by
// Opener.Restore. It deliberately excludes the ambient run inputs — task
// definition, backend, Options (including resumed samples and the
// transfer handle) — which the restoring caller must supply exactly as it
// would to Open; the snapshot carries the seed and task name so mismatches
// fail loudly instead of silently diverging.
type SessionState struct {
	Version int    `json:"version"`
	Tuner   string `json:"tuner"`
	Task    string `json:"task"`
	// Base is the shared measurement state.
	Base BaseState `json:"base"`
	// Extra is the tuner-specific search state (sweep position, init
	// flag, BAO iteration state), schema'd per tuner name.
	Extra json.RawMessage `json:"extra,omitempty"`
}

// Snapshotter is implemented by sessions that can serialize themselves.
// Snapshot must only be called at a Step boundary (never concurrently
// with Step) and fails on a finalized session — Result has already fed
// the transfer history, so a continuation would double-publish.
type Snapshotter interface {
	Snapshot() (SessionState, error)
}

// baseState captures the shared session state.
func (s *session) baseState() BaseState {
	return BaseState{
		Seed:    s.opts.Seed,
		RNG:     s.src.State(),
		Samples: active.SamplesToState(s.samples),
	}
}

// openSession builds the shared session for Open (st == nil) or Restore.
// opts must already be normalized. On restore the recorded samples are
// replayed — visited set, best-so-far, and early-stopping state are
// recomputed exactly as the original run computed them — and the RNG
// resumes mid-stream from its counted state.
func openSession(tunerName string, task *Task, b backend.Backend, opts Options, st *SessionState) (*session, error) {
	s := newSession(task, b, opts)
	if st == nil {
		return s, nil
	}
	if st.Version != SessionStateVersion {
		return nil, fmt.Errorf("tuner: restore %s: snapshot version %d, want %d", tunerName, st.Version, SessionStateVersion)
	}
	if st.Tuner != tunerName {
		return nil, fmt.Errorf("tuner: restore %s: snapshot belongs to tuner %q", tunerName, st.Tuner)
	}
	if st.Task != task.Name {
		return nil, fmt.Errorf("tuner: restore %s: snapshot belongs to task %q, not %q", tunerName, st.Task, task.Name)
	}
	if st.Base.Seed != opts.Seed {
		return nil, fmt.Errorf("tuner: restore %s: snapshot seed %d, options seed %d", tunerName, st.Base.Seed, opts.Seed)
	}
	samples, err := active.SamplesFromState(task.Space, st.Base.Samples)
	if err != nil {
		return nil, fmt.Errorf("tuner: restore %s: %w", tunerName, err)
	}
	s.src = rng.FromState(st.Base.RNG)
	for _, smp := range samples {
		s.replay(smp)
	}
	return s, nil
}

// replay re-applies one previously recorded sample: the same state
// transitions as record, minus the observer callback (the sample was
// already observed by the original run) and the phase accounting.
func (s *session) replay(smp active.Sample) {
	s.visited[smp.Config.Flat()] = true
	s.samples = append(s.samples, smp)
	if smp.Valid && smp.GFLOPS > s.bestG {
		s.bestG = smp.GFLOPS
		s.since = 0
	} else {
		s.since++
	}
	if s.opts.EarlyStop > 0 && s.since >= s.opts.EarlyStop {
		s.done = true
	}
}

// unmarshalExtra decodes the tuner-specific state into v; a nil snapshot
// or empty Extra leaves v at its zero value (a fresh open).
func unmarshalExtra(st *SessionState, v any) error {
	if st == nil || len(st.Extra) == 0 {
		return nil
	}
	if err := json.Unmarshal(st.Extra, v); err != nil {
		return fmt.Errorf("tuner: restore: decode extra state: %w", err)
	}
	return nil
}

// Per-tuner extra state. Every struct here is the complete search state
// the step closure keeps outside the shared session.
type (
	// gridState is the sweep position of GridTuner.
	gridState struct {
		I uint64 `json:"i"`
	}
	// initedState marks that the one-time initialization batch has run
	// (GATuner, ModelTuner, ChameleonTuner). Model artifacts are not
	// state: they are retrained from the samples every round.
	initedState struct {
		Inited bool `json:"inited"`
	}
	// advancedState is AdvancedTuner's state: the init flag plus the full
	// BAO iteration state (nil until the init step has run, and again nil
	// when init decided the run was already over).
	advancedState struct {
		Inited bool             `json:"inited"`
		BAO    *active.BAOState `json:"bao,omitempty"`
	}
)
