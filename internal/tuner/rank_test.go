package tuner

import (
	"testing"
)

func TestModelTunerRankObjective(t *testing.T) {
	task := testTask(t)
	rank := NewAutoTVM()
	rank.RankObjective = true
	res := rank.Tune(task, sim(41), quickOpts(100, 23))
	if !res.Found {
		t.Fatal("rank-objective tuner found nothing")
	}
	// The rank objective changes proposal order: same seed, different
	// post-init samples than the regression objective.
	reg := NewAutoTVM().Tune(task, sim(41), quickOpts(100, 23))
	same := true
	for i := 20; i < len(res.Samples) && i < len(reg.Samples); i++ {
		if !res.Samples[i].Config.Equal(reg.Samples[i].Config) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("rank objective should change the search trajectory")
	}
}

func TestModelTunerRankCompetitive(t *testing.T) {
	// The rank objective should not collapse relative to regression.
	task := testTask(t)
	rank := NewAutoTVM()
	rank.RankObjective = true
	r := rank.Tune(task, sim(42), quickOpts(120, 29))
	g := NewAutoTVM().Tune(task, sim(42), quickOpts(120, 29))
	if r.Best.GFLOPS < 0.5*g.Best.GFLOPS {
		t.Fatalf("rank objective collapsed: %.0f vs %.0f", r.Best.GFLOPS, g.Best.GFLOPS)
	}
}
