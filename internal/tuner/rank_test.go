package tuner

import (
	"math/rand"
	"testing"

	"repro/internal/active"
	"repro/internal/transfer"
)

func TestModelTunerRankObjective(t *testing.T) {
	task := testTask(t)
	rank := NewAutoTVM()
	rank.RankObjective = true
	res := mustTune(t, rank, task, sim(41), quickOpts(100, 23))
	if !res.Found {
		t.Fatal("rank-objective tuner found nothing")
	}
	// The rank objective changes proposal order: same seed, different
	// post-init samples than the regression objective.
	reg := mustTune(t, NewAutoTVM(), task, sim(41), quickOpts(100, 23))
	same := true
	for i := 20; i < len(res.Samples) && i < len(reg.Samples); i++ {
		if !res.Samples[i].Config.Equal(reg.Samples[i].Config) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("rank objective should change the search trajectory")
	}
}

// TestTransferWarmStartScaleContract pins the scale on which transfer rows
// reach trainModel. The tuner normalizes its own observations to
// GFLOPS/yMax — invalid exactly 0, valid in (0, 1] with the task best at 1 —
// and warm-start targets must live on the same scale, rank-preserving:
// mixing the two training sets is only sound if a "good" transferred row
// cannot outrank the task's own best or sit below a launch failure.
func TestTransferWarmStartScaleContract(t *testing.T) {
	task := testTask(t)
	rng := rand.New(rand.NewSource(1))
	cfgs := task.Space.RandomSample(6, rng)
	samples := []active.Sample{
		{Config: cfgs[0], GFLOPS: 100, Valid: true},
		{Config: cfgs[1], GFLOPS: 0, Valid: false},
		{Config: cfgs[2], GFLOPS: 300, Valid: true},
		{Config: cfgs[3], GFLOPS: 200, Valid: true},
		{Config: cfgs[4], GFLOPS: 0, Valid: false},
		{Config: cfgs[5], GFLOPS: 400, Valid: true},
	}
	h := transfer.NewHistory()
	h.Add("src", task.Workload.Op, samples)
	_, y := h.WarmStart(task.Workload.Op, "other-task", 100)
	if len(y) != len(samples) {
		t.Fatalf("WarmStart returned %d targets, want %d", len(y), len(samples))
	}
	// Invalid samples must contribute exactly 0 — the regression this pins:
	// averaged tied ranks previously gave launch failures strictly positive
	// targets, teaching warm-started models that failures were mediocre.
	for _, i := range []int{1, 4} {
		if y[i] != 0 {
			t.Fatalf("invalid sample %d got target %v, want exactly 0", i, y[i])
		}
	}
	// Valid samples must land in (0, 1] with the best at exactly 1 and rank
	// order preserved, matching the tuner's own GFLOPS/yMax target scale.
	for _, i := range []int{0, 2, 3, 5} {
		if y[i] <= 0 || y[i] > 1 {
			t.Fatalf("valid sample %d got target %v outside (0, 1]", i, y[i])
		}
	}
	if y[5] != 1 {
		t.Fatalf("best valid sample got target %v, want exactly 1", y[5])
	}
	if !(y[0] < y[3] && y[3] < y[2] && y[2] < y[5]) {
		t.Fatalf("targets %v do not preserve the GFLOPS rank order 100<200<300<400", y)
	}
}

func TestModelTunerRankCompetitive(t *testing.T) {
	// The rank objective should not collapse relative to regression.
	task := testTask(t)
	rank := NewAutoTVM()
	rank.RankObjective = true
	r := mustTune(t, rank, task, sim(42), quickOpts(120, 29))
	g := mustTune(t, NewAutoTVM(), task, sim(42), quickOpts(120, 29))
	if r.Best.GFLOPS < 0.5*g.Best.GFLOPS {
		t.Fatalf("rank objective collapsed: %.0f vs %.0f", r.Best.GFLOPS, g.Best.GFLOPS)
	}
}
