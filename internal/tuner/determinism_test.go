package tuner

import (
	"math"
	"testing"

	"repro/internal/active"
	"repro/internal/backend"
)

// sameSampleStream reports whether two sample slices are bit-identical:
// same configs in the same order with bitwise-equal measurements.
func sameSampleStream(a, b []active.Sample) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Config.Flat() != b[i].Config.Flat() ||
			math.Float64bits(a[i].GFLOPS) != math.Float64bits(b[i].GFLOPS) ||
			a[i].Valid != b[i].Valid {
			return false
		}
	}
	return true
}

// TestWorkerCountInvariance is the tentpole determinism contract: for every
// tuner, the same run seed must produce bit-identical Result.Samples whether
// the measurement pool has 1, 4 or 8 workers. Each run gets a fresh
// simulator with the same simulator seed; because the seeded measurement
// path derives noise from (run seed, config), the simulator's own RNG
// stream never influences results.
func TestWorkerCountInvariance(t *testing.T) {
	task := testTask(t)
	for _, tn := range allTuners() {
		tn := tn
		t.Run(tn.Name(), func(t *testing.T) {
			var ref []active.Sample
			for _, workers := range []int{1, 4, 8} {
				opts := quickOpts(80, 17)
				opts.Workers = workers
				res := mustTune(t, tn, task, sim(5), opts)
				if len(res.Samples) == 0 {
					t.Fatalf("workers=%d: no samples", workers)
				}
				if workers == 1 {
					ref = res.Samples
					continue
				}
				if !sameSampleStream(ref, res.Samples) {
					t.Fatalf("workers=%d: samples diverge from workers=1 run (%d vs %d samples)",
						workers, len(res.Samples), len(ref))
				}
			}
		})
	}
}

// TestWorkerCountInvarianceChameleon covers the adaptive-sampling tuner,
// which plans batches through clustering rather than model argmax.
func TestWorkerCountInvarianceChameleon(t *testing.T) {
	task := testTask(t)
	var ref []active.Sample
	for _, workers := range []int{1, 4, 8} {
		opts := quickOpts(64, 19)
		opts.Workers = workers
		res := mustTune(t, NewChameleon(), task, sim(6), opts)
		if workers == 1 {
			ref = res.Samples
			continue
		}
		if !sameSampleStream(ref, res.Samples) {
			t.Fatalf("workers=%d: chameleon samples diverge from serial run", workers)
		}
	}
}

// TestWorkerCountInvarianceWithFailures runs the pool against a flaky seeded
// measurer: injected failures must also land on the same configs for every
// worker count, because the failure coin derives from the measurement's
// noise seed.
func TestWorkerCountInvarianceWithFailures(t *testing.T) {
	task := testTask(t)
	var ref []active.Sample
	refFailures := -1
	for _, workers := range []int{1, 4, 8} {
		opts := quickOpts(80, 23)
		opts.Workers = workers
		flaky := backend.NewFlaky(sim(7), 0.3, 99)
		res := mustTune(t, NewAutoTVM(), task, flaky, opts)
		if workers == 1 {
			ref = res.Samples
			refFailures = flaky.Failures()
			continue
		}
		if !sameSampleStream(ref, res.Samples) {
			t.Fatalf("workers=%d: samples diverge from serial run under failure injection", workers)
		}
		if flaky.Failures() != refFailures {
			t.Fatalf("workers=%d: %d injected failures, serial run had %d",
				workers, flaky.Failures(), refFailures)
		}
	}
}

// TestWorkerCountInvarianceEarlyStop pins the fold-in-order semantics: with
// early stopping enabled, the pool may measure configs past the stopping
// point, but the recorded sample stream must still match the serial run
// exactly (the post-stop tail is discarded in submission order).
func TestWorkerCountInvarianceEarlyStop(t *testing.T) {
	task := testTask(t)
	var ref []active.Sample
	for _, workers := range []int{1, 8} {
		opts := Options{Budget: 120, EarlyStop: 20, PlanSize: 16, Seed: 29, Workers: workers}
		res := mustTune(t, NewAutoTVM(), task, sim(8), opts)
		if workers == 1 {
			ref = res.Samples
			continue
		}
		if !sameSampleStream(ref, res.Samples) {
			t.Fatalf("workers=%d: early-stopped samples diverge from serial run (%d vs %d)",
				workers, len(res.Samples), len(ref))
		}
	}
}
