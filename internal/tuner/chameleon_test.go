package tuner

import (
	"math/rand"
	"testing"

	"repro/internal/space"
	"repro/internal/tensor"
)

func tinyTask(t *testing.T) *Task {
	t.Helper()
	sp := space.New(space.NewEnumKnob("a", 0, 1, 2), space.NewEnumKnob("b", 0, 1))
	return &Task{Name: "tiny", Workload: tensor.Conv2D(1, 4, 8, 8, 4, 3, 1, 1), Space: sp, Count: 1}
}

func newTestRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestChameleonBasics(t *testing.T) {
	task := testTask(t)
	tn := NewChameleon()
	res := mustTune(t, tn, task, sim(31), quickOpts(100, 7))
	if res.TunerName != "chameleon" {
		t.Fatalf("name %q", res.TunerName)
	}
	if !res.Found {
		t.Fatal("chameleon found nothing")
	}
	if res.Measurements > 100 {
		t.Fatalf("budget exceeded: %d", res.Measurements)
	}
	seen := make(map[uint64]bool)
	for _, s := range res.Samples {
		f := s.Config.Flat()
		if seen[f] {
			t.Fatal("duplicate measurement")
		}
		seen[f] = true
	}
}

func TestChameleonMeasuresFewerPerRound(t *testing.T) {
	// The point of adaptive sampling: on a tight budget Chameleon performs
	// more model rounds than AutoTVM because each round measures only
	// MeasureFrac*PlanSize configs. We verify indirectly: it stays within
	// budget and still finds a competitive config.
	task := testTask(t)
	cham := mustTune(t, NewChameleon(), task, sim(32), quickOpts(96, 9))
	atvm := mustTune(t, NewAutoTVM(), task, sim(32), quickOpts(96, 9))
	if !cham.Found || !atvm.Found {
		t.Fatal("both should find configs")
	}
	if cham.Best.GFLOPS < 0.4*atvm.Best.GFLOPS {
		t.Fatalf("chameleon %.0f collapsed vs autotvm %.0f", cham.Best.GFLOPS, atvm.Best.GFLOPS)
	}
}

func TestChameleonDeterministic(t *testing.T) {
	task := testTask(t)
	a := mustTune(t, NewChameleon(), task, sim(33), quickOpts(60, 11))
	b := mustTune(t, NewChameleon(), task, sim(33), quickOpts(60, 11))
	if a.Measurements != b.Measurements || a.Best.GFLOPS != b.Best.GFLOPS {
		t.Fatal("chameleon not deterministic")
	}
}

func TestChameleonTinySpace(t *testing.T) {
	tiny := tinyTask(t)
	res := mustTune(t, NewChameleon(), tiny, sim(34), quickOpts(50, 13))
	if res.Measurements > 6 {
		t.Fatalf("measured %d in a 6-point space", res.Measurements)
	}
}

func TestAdaptiveSampleEdgeCases(t *testing.T) {
	task := testTask(t)
	rng := newTestRNG(1)
	cands := task.Space.RandomSample(10, rng)
	if got := adaptiveSample(nil, 3, rng); got != nil {
		t.Fatal("empty proposals should return nil")
	}
	if got := adaptiveSample(cands, 0, rng); got != nil {
		t.Fatal("k=0 should return nil")
	}
	if got := adaptiveSample(cands, 20, rng); len(got) != 10 {
		t.Fatal("k >= n should return all proposals")
	}
	got := adaptiveSample(cands, 4, rng)
	if len(got) == 0 || len(got) > 4 {
		t.Fatalf("adaptive sample size %d", len(got))
	}
}
