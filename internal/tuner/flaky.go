package tuner

import (
	"math/rand"
	"sync"

	"repro/internal/hwsim"
	"repro/internal/space"
	"repro/internal/tensor"
)

// FlakyMeasurer wraps a Measurer and makes a fraction of measurements fail
// spuriously (as real measurement farms do: board resets, driver timeouts,
// contention). Tuners must absorb these as invalid results and keep
// searching; the failure-injection tests rely on this wrapper.
type FlakyMeasurer struct {
	Inner Measurer
	// FailProb is the probability a measurement is dropped.
	FailProb float64

	mu    sync.Mutex
	rng   *rand.Rand
	fails int
}

// NewFlakyMeasurer wraps inner with the given failure probability.
func NewFlakyMeasurer(inner Measurer, failProb float64, seed int64) *FlakyMeasurer {
	return &FlakyMeasurer{Inner: inner, FailProb: failProb, rng: rand.New(rand.NewSource(seed))}
}

// Measure implements Measurer.
func (f *FlakyMeasurer) Measure(w tensor.Workload, c space.Config) hwsim.Measurement {
	f.mu.Lock()
	fail := f.rng.Float64() < f.FailProb
	if fail {
		f.fails++
	}
	f.mu.Unlock()
	if fail {
		return hwsim.Measurement{Valid: false, Error: "injected measurement failure"}
	}
	return f.Inner.Measure(w, c)
}

// Failures returns how many measurements were dropped.
func (f *FlakyMeasurer) Failures() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fails
}
