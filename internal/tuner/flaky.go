package tuner

import (
	"math/rand"
	"sync"

	"repro/internal/hwsim"
	"repro/internal/space"
	"repro/internal/tensor"
)

// FlakyMeasurer wraps a Measurer and makes a fraction of measurements fail
// spuriously (as real measurement farms do: board resets, driver timeouts,
// contention). Tuners must absorb these as invalid results and keep
// searching; the failure-injection tests rely on this wrapper.
type FlakyMeasurer struct {
	Inner Measurer
	// FailProb is the probability a measurement is dropped.
	FailProb float64

	mu    sync.Mutex
	rng   *rand.Rand
	fails int
}

// NewFlakyMeasurer wraps inner with the given failure probability.
func NewFlakyMeasurer(inner Measurer, failProb float64, seed int64) *FlakyMeasurer {
	return &FlakyMeasurer{Inner: inner, FailProb: failProb, rng: rand.New(rand.NewSource(seed))}
}

// Measure implements Measurer.
func (f *FlakyMeasurer) Measure(w tensor.Workload, c space.Config) hwsim.Measurement {
	f.mu.Lock()
	fail := f.rng.Float64() < f.FailProb
	if fail {
		f.fails++
	}
	f.mu.Unlock()
	if fail {
		return hwsim.Measurement{Valid: false, Error: "injected measurement failure"}
	}
	return f.Inner.Measure(w, c)
}

// MeasureSeeded implements SeededMeasurer: the failure decision derives
// from the per-call seed (not the wrapper's shared stream), so injection is
// order- and worker-count-independent. The seed is remixed before the draw
// so the failure coin is decorrelated from the measurement-noise draw that
// shares the same seed downstream. The forwarded measurement is
// order-independent only when Inner is itself a SeededMeasurer.
func (f *FlakyMeasurer) MeasureSeeded(w tensor.Workload, c space.Config, noiseSeed int64) hwsim.Measurement {
	if rand.New(rand.NewSource(noiseSeed^0x5DEECE66D)).Float64() < f.FailProb {
		f.mu.Lock()
		f.fails++
		f.mu.Unlock()
		return hwsim.Measurement{Valid: false, Error: "injected measurement failure"}
	}
	if sm, ok := f.Inner.(SeededMeasurer); ok {
		return sm.MeasureSeeded(w, c, noiseSeed)
	}
	return f.Inner.Measure(w, c)
}

// Failures returns how many measurements were dropped.
func (f *FlakyMeasurer) Failures() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fails
}
