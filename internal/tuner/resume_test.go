package tuner

import (
	"testing"

	"repro/internal/active"
	"repro/internal/backend"
)

func TestResumeSkipsKnownConfigs(t *testing.T) {
	task := testTask(t)
	first := mustTune(t, RandomTuner{}, task, sim(1), quickOpts(40, 3))
	opts := quickOpts(40, 3) // same seed: would re-propose identical configs
	opts.Resume = first.Samples
	second := mustTune(t, RandomTuner{}, task, sim(1), opts)
	seen := make(map[uint64]bool)
	for _, s := range first.Samples {
		seen[s.Config.Flat()] = true
	}
	for _, s := range second.Samples {
		if seen[s.Config.Flat()] {
			t.Fatal("resumed run re-measured a known config")
		}
	}
	if second.Measurements == 0 {
		t.Fatal("resumed run measured nothing")
	}
}

func TestResumeBestCarriesOver(t *testing.T) {
	task := testTask(t)
	first := mustTune(t, NewAutoTVM(), task, sim(2), quickOpts(120, 5))
	if !first.Found {
		t.Fatal("first run found nothing")
	}
	// A tiny resumed run cannot beat the long first run's best, but its
	// result must still report at least that best.
	opts := quickOpts(8, 7)
	opts.Resume = first.Samples
	second := mustTune(t, RandomTuner{}, task, sim(3), opts)
	if !second.Found {
		t.Fatal("resumed run lost the carried best")
	}
	if second.Best.GFLOPS < first.Best.GFLOPS {
		t.Fatalf("resumed best %v below carried %v", second.Best.GFLOPS, first.Best.GFLOPS)
	}
	if second.Measurements > 8 {
		t.Fatalf("resume consumed budget: %d", second.Measurements)
	}
}

func TestResumeFeedsModelTuners(t *testing.T) {
	task := testTask(t)
	first := mustTune(t, RandomTuner{}, task, sim(4), quickOpts(80, 9))
	for _, tn := range []Tuner{NewAutoTVM(), NewBTEDBAO()} {
		opts := quickOpts(40, 11)
		opts.Resume = first.Samples
		res := mustTune(t, tn, task, sim(5), opts)
		if !res.Found {
			t.Fatalf("%s resumed run found nothing", tn.Name())
		}
		if res.Best.GFLOPS < first.Best.GFLOPS {
			t.Fatalf("%s resumed run regressed below carried best", tn.Name())
		}
	}
}

func TestFlakyMeasurerInjection(t *testing.T) {
	task := testTask(t)
	flaky := backend.NewFlaky(sim(6), 0.3, 1)
	res := mustTune(t, NewAutoTVM(), task, flaky, quickOpts(100, 13))
	if flaky.Failures() == 0 {
		t.Fatal("no failures injected")
	}
	if !res.Found {
		t.Fatal("tuner should survive 30% measurement failures")
	}
	invalid := 0
	for _, s := range res.Samples {
		if !s.Valid {
			invalid++
		}
	}
	if invalid < flaky.Failures() {
		t.Fatalf("invalid samples %d < injected failures %d", invalid, flaky.Failures())
	}
}

func TestFlakyMeasurerTotalFailure(t *testing.T) {
	// 100% failure: no tuner can find anything, but all must terminate and
	// report Found == false.
	task := testTask(t)
	for _, tn := range allTuners() {
		flaky := backend.NewFlaky(sim(7), 1.0, 2)
		res := mustTune(t, tn, task, flaky, quickOpts(30, 15))
		if res.Found {
			t.Fatalf("%s claims success with every measurement failing", tn.Name())
		}
		if res.Measurements == 0 {
			t.Fatalf("%s did not attempt anything", tn.Name())
		}
	}
}

func TestFlakyBAOStillImproves(t *testing.T) {
	task := testTask(t)
	flaky := backend.NewFlaky(sim(8), 0.2, 3)
	res := mustTune(t, NewBTEDBAO(), task, flaky, quickOpts(120, 17))
	if !res.Found {
		t.Fatal("BAO should survive 20% failures")
	}
	trace := res.BestTrace()
	if trace[len(trace)-1] <= trace[16] {
		t.Log("note: no improvement after init under failures (acceptable but logged)")
	}
}

func TestResumeObserverCountsFreshOnly(t *testing.T) {
	task := testTask(t)
	first := mustTune(t, RandomTuner{}, task, sim(9), quickOpts(20, 19))
	count := 0
	opts := quickOpts(10, 21)
	opts.Resume = first.Samples
	opts.Observer = func(step int, s active.Sample) { count++ }
	res := mustTune(t, RandomTuner{}, task, sim(10), opts)
	if count != res.Measurements {
		t.Fatalf("observer saw %d, measurements %d", count, res.Measurements)
	}
}
