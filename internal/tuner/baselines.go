package tuner

import (
	"context"
	"math/rand"
	"sort"

	"repro/internal/active"
	"repro/internal/backend"
	"repro/internal/space"
)

// RandomTuner samples configurations uniformly without replacement: the
// weakest baseline and the sanity floor for every comparison.
type RandomTuner struct{}

// Name implements Tuner.
func (RandomTuner) Name() string { return "random" }

// Open implements Opener: each step plans and measures one uniform batch.
func (t RandomTuner) Open(_ context.Context, task *Task, b backend.Backend, opts Options) (Session, error) {
	return t.open(task, b, opts, nil)
}

// Restore implements Opener.
func (t RandomTuner) Restore(_ context.Context, task *Task, b backend.Backend, opts Options, st SessionState) (Session, error) {
	return t.open(task, b, opts, &st)
}

func (t RandomTuner) open(task *Task, b backend.Backend, opts Options, st *SessionState) (Session, error) {
	opts = opts.normalized()
	s, err := openSession(t.Name(), task, b, opts, st)
	if err != nil {
		return nil, err
	}
	rng := s.src.Rand()
	step := func(ctx context.Context) bool {
		if s.exhausted(ctx) {
			return true
		}
		n := opts.Budget - len(s.samples)
		if n > opts.PlanSize {
			n = opts.PlanSize
		}
		batch := s.randomBatch(rng, n)
		if len(batch) == 0 {
			return true
		}
		s.measureBatch(ctx, batch)
		return s.exhausted(ctx)
	}
	return newStepSession(t.Name(), s, step).restoredFrom(st), nil
}

// Tune implements Tuner.
func (t RandomTuner) Tune(ctx context.Context, task *Task, b backend.Backend, opts Options) (Result, error) {
	return tune(ctx, t, task, b, opts)
}

// GridTuner sweeps flat indices deterministically with a golden-ratio
// step: the "enumerate everything" strawman scaled to a finite budget. A
// plain arithmetic stride would keep the low-order knobs nearly constant
// and can alias the whole sweep into an infeasible subspace; the
// low-discrepancy step decorrelates all knob digits while staying fully
// deterministic (no RNG).
type GridTuner struct{}

// Name implements Tuner.
func (GridTuner) Name() string { return "grid" }

// Open implements Opener: each step measures the next PlanSize-long slice
// of the golden-ratio sweep.
func (t GridTuner) Open(_ context.Context, task *Task, b backend.Backend, opts Options) (Session, error) {
	return t.open(task, b, opts, nil)
}

// Restore implements Opener.
func (t GridTuner) Restore(_ context.Context, task *Task, b backend.Backend, opts Options, st SessionState) (Session, error) {
	return t.open(task, b, opts, &st)
}

func (t GridTuner) open(task *Task, b backend.Backend, opts Options, st *SessionState) (Session, error) {
	opts = opts.normalized()
	s, err := openSession(t.Name(), task, b, opts, st)
	if err != nil {
		return nil, err
	}
	size := task.Space.Size()
	gstep := goldenStep(size)
	// The golden-ratio sweep is a permutation of the space: after Size()
	// iterations every flat index has been visited once and further
	// iterations would only revisit configs as silent no-ops, so the sweep
	// is capped at the space size, not just the budget.
	limit := uint64(opts.Budget)
	if size < limit {
		limit = size
	}
	ex := &gridState{}
	if err := unmarshalExtra(st, ex); err != nil {
		return nil, err
	}
	step := func(ctx context.Context) bool {
		if s.exhausted(ctx) {
			return true
		}
		batch := make([]space.Config, 0, opts.PlanSize)
		for ; ex.I < limit && len(batch) < opts.PlanSize; ex.I++ {
			batch = append(batch, task.Space.FromFlat((ex.I*gstep)%size))
		}
		if len(batch) == 0 {
			return true
		}
		s.measureBatch(ctx, batch)
		return ex.I >= limit || s.exhausted(ctx)
	}
	ss := newStepSession(t.Name(), s, step).restoredFrom(st)
	return ss.withExtra(func() (any, error) { return *ex, nil }), nil
}

// Tune implements Tuner.
func (t GridTuner) Tune(ctx context.Context, task *Task, b backend.Backend, opts Options) (Result, error) {
	return tune(ctx, t, task, b, opts)
}

// goldenStep returns floor(size/phi) adjusted to be coprime with size, so
// the sweep i -> (i*step) mod size is a permutation of the space.
func goldenStep(size uint64) uint64 {
	if size <= 2 {
		return 1
	}
	step := uint64(float64(size) * 0.6180339887498949)
	if step == 0 {
		step = 1
	}
	step |= 1
	for gcd(step, size) != 1 {
		step += 2
		if step >= size {
			step = 1
			break
		}
	}
	return step
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// GATuner is a genetic-algorithm baseline in the spirit of AutoTVM's
// GATuner: tournament-free elitism with uniform knob crossover and
// per-knob mutation.
type GATuner struct {
	// PopSize is the population size (defaults to PlanSize).
	PopSize int
	// EliteFrac is the survivor fraction per generation (default 0.5).
	EliteFrac float64
	// MutateProb is the per-knob mutation probability (default 0.1).
	MutateProb float64
}

// Name implements Tuner.
func (GATuner) Name() string { return "ga" }

// Open implements Opener: the first step measures the seed population, each
// later step plans and measures one generation.
func (g GATuner) Open(_ context.Context, task *Task, b backend.Backend, opts Options) (Session, error) {
	return g.open(task, b, opts, nil)
}

// Restore implements Opener.
func (g GATuner) Restore(_ context.Context, task *Task, b backend.Backend, opts Options, st SessionState) (Session, error) {
	return g.open(task, b, opts, &st)
}

func (g GATuner) open(task *Task, b backend.Backend, opts Options, st *SessionState) (Session, error) {
	opts = opts.normalized()
	if g.PopSize <= 0 {
		g.PopSize = opts.PlanSize
	}
	if g.EliteFrac <= 0 || g.EliteFrac > 1 {
		g.EliteFrac = 0.5
	}
	if g.MutateProb <= 0 || g.MutateProb > 1 {
		g.MutateProb = 0.1
	}
	s, err := openSession(g.Name(), task, b, opts, st)
	if err != nil {
		return nil, err
	}
	rng := s.src.Rand()
	ex := &initedState{}
	if err := unmarshalExtra(st, ex); err != nil {
		return nil, err
	}
	step := func(ctx context.Context) bool {
		if s.exhausted(ctx) {
			return true
		}
		if !ex.Inited {
			ex.Inited = true
			s.measureBatch(ctx, task.Space.RandomSample(g.PopSize, rng))
			return s.exhausted(ctx)
		}
		before := len(s.samples)
		// Rank all known samples (including resumed ones) by fitness.
		scored := s.knowledge()
		sort.SliceStable(scored, func(i, j int) bool { return fitness(scored[i]) > fitness(scored[j]) })
		eliteN := int(g.EliteFrac * float64(g.PopSize))
		if eliteN < 2 {
			eliteN = 2
		}
		if eliteN > len(scored) {
			eliteN = len(scored)
		}
		elite := scored[:eliteN]

		// Plan the whole generation serially, then measure it as one batch.
		batch := make([]space.Config, 0, g.PopSize)
		planned := make(map[uint64]bool, g.PopSize)
		for i := 0; i < g.PopSize; i++ {
			pa := elite[rng.Intn(len(elite))].Config
			pb := elite[rng.Intn(len(elite))].Config
			child := crossover(task.Space, pa, pb, rng)
			mutateKnobs(task.Space, child, g.MutateProb, rng)
			f := child.Flat()
			if s.visited[f] || planned[f] {
				c, ok := s.randomUnvisited(rng, planned)
				if !ok {
					break
				}
				child, f = c, c.Flat()
			}
			planned[f] = true
			batch = append(batch, child)
		}
		s.measureBatch(ctx, batch)
		if len(s.samples) == before {
			return true // space effectively exhausted; nothing new to measure
		}
		return s.exhausted(ctx)
	}
	ss := newStepSession(g.Name(), s, step).restoredFrom(st)
	return ss.withExtra(func() (any, error) { return *ex, nil }), nil
}

// Tune implements Tuner.
func (g GATuner) Tune(ctx context.Context, task *Task, b backend.Backend, opts Options) (Result, error) {
	return tune(ctx, g, task, b, opts)
}

func fitness(s active.Sample) float64 {
	if !s.Valid {
		return 0
	}
	return s.GFLOPS
}

// crossover picks each knob uniformly from either parent.
func crossover(sp *space.Space, a, b space.Config, rng *rand.Rand) space.Config {
	child := a.Clone()
	for i := range child.Index {
		if rng.Intn(2) == 1 {
			child.Index[i] = b.Index[i]
		}
	}
	_ = sp
	return child
}

// mutateKnobs reassigns each knob to a random option with probability p.
func mutateKnobs(sp *space.Space, c space.Config, p float64, rng *rand.Rand) {
	for i := range c.Index {
		if rng.Float64() < p {
			c.Index[i] = rng.Intn(sp.Knob(i).Len())
		}
	}
}
