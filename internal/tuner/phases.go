package tuner

//lint:file-ignore walltime this file is the PhaseTimes observability accumulator: wall-clock readings are collected for reporting only and never feed back into tuning decisions (invariance is enforced by TestPhaseTimesInvariance)

import (
	"sync"
	"time"
)

// Phase names of the tuning loop, the keys of PhaseTimes. Every tuner maps
// its work onto these four buckets so runs are comparable across tuners.
const (
	// PhaseInitSet is initialization-set planning: BTED's design
	// computation or the random draw (not its measurement).
	PhaseInitSet = "init_set"
	// PhaseSurrogateTrain is cost-model fitting (XGBoost/GP training).
	PhaseSurrogateTrain = "surrogate_train"
	// PhaseCandidateSelection is choosing what to measure next: the SA
	// argmax and batch planning, or a BAO iteration minus its measurement.
	PhaseCandidateSelection = "candidate_selection"
	// PhaseMeasurement is deploying configurations on the backend.
	PhaseMeasurement = "measurement"
)

// PhaseTimes accumulates wall-clock time per tuning phase. It is pure
// observability: timing never feeds back into any tuning decision, so
// enabling it cannot perturb the deterministic sample stream. All methods
// are safe for concurrent use and are no-ops on a nil receiver, so call
// sites need no guards.
type PhaseTimes struct {
	mu sync.Mutex
	d  map[string]time.Duration
}

// NewPhaseTimes returns an empty accumulator.
func NewPhaseTimes() *PhaseTimes { return &PhaseTimes{d: make(map[string]time.Duration)} }

// Add accrues d to the named phase.
func (p *PhaseTimes) Add(phase string, d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.d[phase] += d
	p.mu.Unlock()
}

// track starts timing a phase and returns the stop function, for
// defer-style instrumentation: defer p.track(PhaseMeasurement)().
func (p *PhaseTimes) track(phase string) func() {
	if p == nil {
		return func() {}
	}
	start := time.Now()
	return func() { p.Add(phase, time.Since(start)) }
}

// Snapshot returns a copy of the accumulated durations.
func (p *PhaseTimes) Snapshot() map[string]time.Duration {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]time.Duration, len(p.d))
	for k, v := range p.d {
		out[k] = v
	}
	return out
}

// Milliseconds returns the snapshot converted to float64 milliseconds,
// ready for JSON reports.
func (p *PhaseTimes) Milliseconds() map[string]float64 {
	snap := p.Snapshot()
	if snap == nil {
		return nil
	}
	out := make(map[string]float64, len(snap))
	for k, v := range snap {
		out[k] = float64(v) / float64(time.Millisecond)
	}
	return out
}
