package active

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// tedReference is Algorithm 1 exactly as the pre-optimization code ran it:
// a fresh full column-norm pass and an in-place rank-1 downdate per pick.
// The incremental implementation must select the same indices in the same
// order.
func tedReference(feats [][]float64, mu float64, m int, k linalg.Kernel) []int {
	n := len(feats)
	if n == 0 || m <= 0 {
		return nil
	}
	if m > n {
		m = n
	}
	K := linalg.GramMatrix(feats, k)
	selected := make([]int, 0, m)
	taken := make([]bool, n)
	for i := 0; i < m; i++ {
		norms := K.ColNorms2()
		best := -1
		bestScore := 0.0
		for j := 0; j < n; j++ {
			if taken[j] {
				continue
			}
			score := norms[j] / (K.At(j, j) + mu)
			if best < 0 || score > bestScore {
				best = j
				bestScore = score
			}
		}
		if best < 0 {
			break
		}
		selected = append(selected, best)
		taken[best] = true
		if denom := K.At(best, best) + mu; denom > 1e-12 {
			K.Rank1Downdate(best, denom)
		}
	}
	return selected
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTEDIncrementalMatchesReference drives the incremental implementation
// across batch shapes, kernels, mu values and selection depths (including
// m == n, the fully-deflated worst case) and requires pick-for-pick
// identity with the reference algorithm.
func TestTEDIncrementalMatchesReference(t *testing.T) {
	kernels := []linalg.Kernel{
		linalg.RBFKernel{Gamma: 1.0 / 8},
		linalg.LinearKernel{},
		linalg.DistanceKernel{},
	}
	shapes := []struct{ n, d, m int }{
		{1, 3, 1}, {2, 3, 2}, {16, 4, 8}, {60, 6, 60},
		{128, 8, 64}, {500, 8, 16}, {500, 8, 64},
	}
	for seed := int64(0); seed < 8; seed++ {
		for _, sh := range shapes {
			feats := benchFeats(sh.n, sh.d, seed)
			for _, k := range kernels {
				for _, mu := range []float64{0.1, 1.0} {
					want := tedReference(feats, mu, sh.m, k)
					got := TED(feats, mu, sh.m, k)
					if !sameInts(got, want) {
						t.Fatalf("seed %d n=%d d=%d m=%d kernel=%s mu=%g: incremental picks %v, reference %v",
							seed, sh.n, sh.d, sh.m, k.Name(), mu, got, want)
					}
				}
			}
		}
	}
}

// TestTEDDuplicatePoints pins the tie-breaking behaviour: duplicated points
// produce exactly equal kernel columns, and both implementations must break
// the tie toward the lower index, never selecting the duplicate twice
// consecutively.
func TestTEDDuplicatePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	feats := make([][]float64, 40)
	for i := range feats {
		if i%2 == 1 {
			feats[i] = feats[i-1] // exact duplicate
			continue
		}
		row := make([]float64, 5)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		feats[i] = row
	}
	k := linalg.RBFKernel{Gamma: 0.2}
	want := tedReference(feats, 0.1, 40, k)
	got := TED(feats, 0.1, 40, k)
	if !sameInts(got, want) {
		t.Fatalf("duplicate-point picks diverge: incremental %v, reference %v", got, want)
	}
}

// TestTEDWorkerCountInvariance requires bit-identical selections from the
// incremental kernel for Workers 1, 4 and 8: the masked mat-vec is the only
// parallel stage, and its per-row dot products do not depend on the worker
// count.
func TestTEDWorkerCountInvariance(t *testing.T) {
	for _, sh := range []struct{ n, d, m int }{{100, 6, 30}, {500, 8, 64}} {
		feats := benchFeats(sh.n, sh.d, 11)
		k := linalg.RBFKernel{Gamma: 1.0 / 6}
		base := tedWithWorkers(feats, 0.1, sh.m, k, 1)
		for _, workers := range []int{4, 8} {
			got := tedWithWorkers(feats, 0.1, sh.m, k, workers)
			if !sameInts(got, base) {
				t.Fatalf("n=%d m=%d: workers=%d picks %v, workers=1 picks %v", sh.n, sh.m, workers, got, base)
			}
		}
	}
}

// standardizeReference is the pre-optimization column-by-column loop.
func standardizeReference(X [][]float64) {
	if len(X) == 0 {
		return
	}
	d := len(X[0])
	n := float64(len(X))
	for j := 0; j < d; j++ {
		mean := 0.0
		for _, row := range X {
			mean += row[j]
		}
		mean /= n
		varsum := 0.0
		for _, row := range X {
			dev := row[j] - mean
			varsum += dev * dev
		}
		if varsum == 0 {
			for _, row := range X {
				row[j] = 0
			}
			continue
		}
		stdInv := 1 / math.Sqrt(varsum/n)
		for _, row := range X {
			row[j] = (row[j] - mean) * stdInv
		}
	}
}

// TestStandardizeBitIdentical pins the row-major single-pass rewrite to the
// reference loop bit for bit, including constant columns (which must become
// exactly +0).
func TestStandardizeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		d := 1 + rng.Intn(12)
		a := make([][]float64, n)
		b := make([][]float64, n)
		constCol := rng.Intn(d)
		for i := range a {
			a[i] = make([]float64, d)
			b[i] = make([]float64, d)
			for j := range a[i] {
				v := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
				if j == constCol {
					v = 42.5
				}
				a[i][j] = v
				b[i][j] = v
			}
		}
		standardizeReference(a)
		standardize(b)
		for i := range a {
			for j := range a[i] {
				if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
					t.Fatalf("trial %d: element (%d,%d) differs: reference %x, rewrite %x",
						trial, i, j, math.Float64bits(a[i][j]), math.Float64bits(b[i][j]))
				}
			}
		}
	}
}
