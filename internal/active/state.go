package active

import (
	"fmt"

	"repro/internal/space"
)

// SampleState is the serializable form of Sample: the knob indices of the
// configuration plus the measurement. Indices (not flat codes) keep the
// encoding self-describing and validatable against the space on restore;
// GFLOPS round-trips bit-exactly through JSON (Go emits the shortest form
// that parses back to the same float64).
type SampleState struct {
	Config []int   `json:"config"`
	GFLOPS float64 `json:"gflops"`
	Valid  bool    `json:"valid"`
}

// SamplesToState converts measured samples to their serializable form.
func SamplesToState(samples []Sample) []SampleState {
	out := make([]SampleState, len(samples))
	for i, s := range samples {
		out[i] = SampleState{
			Config: append([]int(nil), s.Config.Index...),
			GFLOPS: s.GFLOPS,
			Valid:  s.Valid,
		}
	}
	return out
}

// SamplesFromState rebinds serialized samples to the space, validating
// every configuration.
func SamplesFromState(sp *space.Space, st []SampleState) ([]Sample, error) {
	out := make([]Sample, len(st))
	for i, s := range st {
		c, err := sp.FromIndices(s.Config)
		if err != nil {
			return nil, fmt.Errorf("active: sample %d: %w", i, err)
		}
		out[i] = Sample{Config: c, GFLOPS: s.GFLOPS, Valid: s.Valid}
	}
	return out, nil
}

// BAOState is the serializable state of a BAORun at a Step boundary.
// Everything a continuation needs is explicit: the normalized parameters
// (minus the non-serializable Stop hook), every sample in measurement
// order, and the incumbent/trajectory/stall counters. The measured set is
// rebuilt from the samples on restore.
type BAOState struct {
	Params       BAOParams     `json:"params"`
	Samples      []SampleState `json:"samples"`
	BestIdx      int           `json:"best_idx"`
	BestTrace    []float64     `json:"best_trace"`
	SinceImprove int           `json:"since_improve"`
	T            int           `json:"t"`
	Stopped      bool          `json:"stopped"`
}

// State captures the run at a Step boundary. Restoring through
// RestoreBAORun and continuing with the same RNG stream is bit-identical
// to never having stopped.
func (r *BAORun) State() BAOState {
	return BAOState{
		Params:       r.p,
		Samples:      SamplesToState(r.samples),
		BestIdx:      r.bestIdx,
		BestTrace:    append([]float64(nil), r.bestTrace...),
		SinceImprove: r.sinceImprove,
		T:            r.t,
		Stopped:      r.stopped,
	}
}

// RestoreBAORun rebuilds a run from a State captured on the same search
// space. The trainer is supplied fresh (trainers are pure functions of
// their arguments and carry no run state); Params.Stop is left nil — the
// restoring driver re-imposes its own stopping policy.
func RestoreBAORun(sp *space.Space, tr EvalTrainer, st BAOState) (*BAORun, error) {
	samples, err := SamplesFromState(sp, st.Samples)
	if err != nil {
		return nil, fmt.Errorf("active: restore BAO run: %w", err)
	}
	if st.BestIdx >= len(samples) {
		return nil, fmt.Errorf("active: restore BAO run: best index %d out of range (%d samples)", st.BestIdx, len(samples))
	}
	if len(st.BestTrace) == 0 {
		return nil, fmt.Errorf("active: restore BAO run: empty best trace")
	}
	r := &BAORun{
		sp:           sp,
		tr:           tr,
		p:            st.Params.normalized(),
		samples:      samples,
		bestIdx:      st.BestIdx,
		bestTrace:    append([]float64(nil), st.BestTrace...),
		sinceImprove: st.SinceImprove,
		t:            st.T,
		stopped:      st.Stopped,
	}
	if r.bestIdx < 0 {
		r.bestIdx = -1
	}
	r.measured = make(map[uint64]bool, len(samples)+r.p.T)
	for _, s := range samples {
		r.measured[s.Config.Flat()] = true
	}
	return r, nil
}
