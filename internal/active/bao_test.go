package active

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/space"
)

// quadSpace is a 4-knob space with a smooth peak for optimizer tests.
func quadSpace() *space.Space {
	vals := make([]int, 30)
	for i := range vals {
		vals[i] = i
	}
	return space.New(
		space.NewEnumKnob("a", vals...),
		space.NewEnumKnob("b", vals...),
		space.NewEnumKnob("c", vals...),
		space.NewEnumKnob("d", vals...),
	)
}

// quadGFLOPS peaks at (20, 10, 15, 5) with value 1000.
func quadGFLOPS(c space.Config) float64 {
	target := []float64{20, 10, 15, 5}
	s := 0.0
	for i, v := range c.Index {
		d := float64(v) - target[i]
		s += d * d
	}
	return 1000 * math.Exp(-s/200)
}

func quadMeasure(c space.Config) (float64, bool) { return quadGFLOPS(c), true }

// oracleTrainer ignores the training data and returns an evaluator backed
// by a fixed scoring function; it isolates BAO mechanics from model fit.
type oracleTrainer struct{ score func(x []float64) float64 }

type oracleEval struct{ score func(x []float64) float64 }

func (o oracleEval) Predict(x []float64) float64 { return o.score(x) }

func (o oracleTrainer) Train(_ [][]float64, _ []float64, _ int64) (Evaluator, error) {
	return oracleEval{o.score}, nil
}

// failingTrainer always errors, exercising the random fallback path.
type failingTrainer struct{}

func (failingTrainer) Train(_ [][]float64, _ []float64, _ int64) (Evaluator, error) {
	return nil, errors.New("no model")
}

func measureInit(sp *space.Space, n int, rng *rand.Rand, measure MeasureFunc) []Sample {
	out := make([]Sample, 0, n)
	for _, c := range sp.RandomSample(n, rng) {
		g, ok := measure(c)
		out = append(out, Sample{Config: c, GFLOPS: g, Valid: ok})
	}
	return out
}

func TestBootstrapSelectPicksArgmax(t *testing.T) {
	sp := quadSpace()
	rng := rand.New(rand.NewSource(1))
	samples := measureInit(sp, 20, rng, quadMeasure)
	cands := sp.RandomSample(50, rng)
	// Oracle evaluator scores candidates by the true function: the pick
	// must be the true best candidate regardless of bootstrap resampling.
	tr := oracleTrainer{score: func(x []float64) float64 {
		// Features here are log2(1+v) of enum values; invert to index.
		s := 0.0
		target := []float64{20, 10, 15, 5}
		for i, f := range x {
			v := math.Exp2(f) - 1
			d := v - target[i]
			s += d * d
		}
		return -s
	}}
	got, err := BootstrapSelect(tr, samples, cands, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	bestI, bestV := -1, -1.0
	for i, c := range cands {
		if v := quadGFLOPS(c); v > bestV {
			bestI, bestV = i, v
		}
	}
	if got != bestI {
		t.Fatalf("BootstrapSelect picked %d (%.1f), want %d (%.1f)",
			got, quadGFLOPS(cands[got]), bestI, bestV)
	}
}

func TestBootstrapSelectErrors(t *testing.T) {
	sp := quadSpace()
	rng := rand.New(rand.NewSource(2))
	samples := measureInit(sp, 5, rng, quadMeasure)
	if _, err := BootstrapSelect(NewXGBTrainer(), samples, nil, 2, rng); err == nil {
		t.Fatal("no candidates should error")
	}
	if _, err := BootstrapSelect(NewXGBTrainer(), nil, sp.RandomSample(3, rng), 2, rng); err == nil {
		t.Fatal("no observations should error")
	}
	if _, err := BootstrapSelect(failingTrainer{}, samples, sp.RandomSample(3, rng), 2, rng); err == nil {
		t.Fatal("failing trainer should error")
	}
}

func TestBootstrapSelectGammaDefault(t *testing.T) {
	sp := quadSpace()
	rng := rand.New(rand.NewSource(3))
	samples := measureInit(sp, 10, rng, quadMeasure)
	cands := sp.RandomSample(10, rng)
	if _, err := BootstrapSelect(NewXGBTrainer(), samples, cands, 0, rng); err != nil {
		t.Fatalf("gamma=0 should default to 1: %v", err)
	}
}

func TestBAOFindsNearOptimum(t *testing.T) {
	sp := quadSpace()
	rng := rand.New(rand.NewSource(4))
	init := measureInit(sp, 16, rng, quadMeasure)
	p := BAOParams{T: 120, Eta: 0.05, Gamma: 2, Tau: 1.5, R: 3}
	samples := BAO(sp, NewXGBTrainer(), init, quadMeasure, p, rng, nil)
	best, ok := Best(samples)
	if !ok {
		t.Fatal("no valid sample")
	}
	initBest, _ := Best(init)
	if best.GFLOPS <= initBest.GFLOPS {
		t.Fatalf("BAO did not improve: init %.1f, final %.1f", initBest.GFLOPS, best.GFLOPS)
	}
	if best.GFLOPS < 900 {
		t.Fatalf("BAO final %.1f, want > 900 (peak 1000)", best.GFLOPS)
	}
}

func TestBAOBeatsRandomSearch(t *testing.T) {
	sp := quadSpace()
	wins := 0
	rounds := 5
	for r := 0; r < rounds; r++ {
		rng := rand.New(rand.NewSource(int64(40 + r)))
		init := measureInit(sp, 16, rng, quadMeasure)
		p := BAOParams{T: 150, Eta: 0.05, Gamma: 2, Tau: 1.5, R: 3}
		samples := BAO(sp, NewXGBTrainer(), init, quadMeasure, p, rng, nil)
		baoBest, _ := Best(samples)

		rng2 := rand.New(rand.NewSource(int64(140 + r)))
		randBest := 0.0
		for i := 0; i < len(samples); i++ {
			if v := quadGFLOPS(sp.Random(rng2)); v > randBest {
				randBest = v
			}
		}
		if baoBest.GFLOPS >= randBest {
			wins++
		}
	}
	if wins < 4 {
		t.Fatalf("BAO beat random only %d/%d rounds", wins, rounds)
	}
}

func TestBAOEarlyStopping(t *testing.T) {
	sp := quadSpace()
	rng := rand.New(rand.NewSource(5))
	// Constant landscape: nothing ever improves, so the loop must stop
	// after exactly EarlyStop+... iterations past the first.
	flat := func(space.Config) (float64, bool) { return 1.0, true }
	init := measureInit(sp, 8, rng, flat)
	p := BAOParams{T: 500, EarlyStop: 20, Gamma: 1}
	samples := BAO(sp, NewXGBTrainer(), init, flat, p, rng, nil)
	iters := len(samples) - len(init)
	if iters > 25 {
		t.Fatalf("early stopping did not trigger: %d iterations", iters)
	}
}

func TestBAOAllInvalidFallsBack(t *testing.T) {
	sp := quadSpace()
	rng := rand.New(rand.NewSource(6))
	invalid := func(space.Config) (float64, bool) { return 0, false }
	init := measureInit(sp, 8, rng, invalid)
	p := BAOParams{T: 10, Gamma: 1}
	samples := BAO(sp, NewXGBTrainer(), init, invalid, p, rng, nil)
	if len(samples) != len(init)+10 {
		t.Fatalf("BAO with all-invalid measurements ran %d iters", len(samples)-len(init))
	}
	if _, ok := Best(samples); ok {
		t.Fatal("all-invalid run should have no best")
	}
}

func TestBAOFailingTrainerFallsBack(t *testing.T) {
	sp := quadSpace()
	rng := rand.New(rand.NewSource(7))
	init := measureInit(sp, 8, rng, quadMeasure)
	p := BAOParams{T: 15, Gamma: 2}
	samples := BAO(sp, failingTrainer{}, init, quadMeasure, p, rng, nil)
	if len(samples) != len(init)+15 {
		t.Fatal("failing trainer should still complete via random fallback")
	}
}

func TestBAOObserverAndDedup(t *testing.T) {
	sp := quadSpace()
	rng := rand.New(rand.NewSource(8))
	init := measureInit(sp, 12, rng, quadMeasure)
	steps := 0
	p := BAOParams{T: 40, Gamma: 1}
	samples := BAO(sp, NewXGBTrainer(), init, quadMeasure, p, rng, func(step int, s Sample) {
		steps++
		if step != steps {
			t.Fatalf("observer step %d out of order", step)
		}
	})
	if steps != 40 {
		t.Fatalf("observer called %d times, want 40", steps)
	}
	seen := make(map[uint64]bool)
	for _, s := range samples {
		f := s.Config.Flat()
		if seen[f] {
			t.Fatal("BAO re-measured a configuration")
		}
		seen[f] = true
	}
}

func TestRelativeImprovement(t *testing.T) {
	// Trace ends ... y*_{t-2}=90, y*_{t-1}=100 -> r = 0.1.
	r := relativeImprovement([]float64{0, 90, 100}, false)
	if math.Abs(r-0.1) > 1e-12 {
		t.Fatalf("r = %v, want 0.1", r)
	}
	// No improvement -> 0 (< eta, triggers growth).
	if r := relativeImprovement([]float64{0, 100, 100}, false); r != 0 {
		t.Fatalf("flat r = %v", r)
	}
	// Literal ceiling: any positive improvement ceils to 1 (>= eta).
	if r := relativeImprovement([]float64{0, 90, 100}, true); r != 1 {
		t.Fatalf("ceil r = %v, want 1", r)
	}
	if r := relativeImprovement([]float64{0, 100, 100}, true); r != 0 {
		t.Fatalf("ceil flat r = %v, want 0", r)
	}
	// Zero incumbent guards division.
	if r := relativeImprovement([]float64{0, 0, 0}, false); r != 0 {
		t.Fatalf("zero trace r = %v", r)
	}
}

func TestBAOParamsNormalized(t *testing.T) {
	p := BAOParams{}.normalized()
	if p.T != 960 || p.Eta != 0.05 || p.Gamma != 2 || p.Tau != 1.5 || p.R != 3 {
		t.Fatalf("defaults wrong: %+v", p)
	}
	d := DefaultBAOParams()
	if d.EarlyStop != 400 {
		t.Fatalf("paper early stop wrong: %+v", d)
	}
}

func TestBestAndBestTrace(t *testing.T) {
	sp := quadSpace()
	rng := rand.New(rand.NewSource(9))
	samples := []Sample{
		{Config: sp.Random(rng), GFLOPS: 5, Valid: true},
		{Config: sp.Random(rng), GFLOPS: 0, Valid: false},
		{Config: sp.Random(rng), GFLOPS: 9, Valid: true},
		{Config: sp.Random(rng), GFLOPS: 7, Valid: true},
	}
	b, ok := Best(samples)
	if !ok || b.GFLOPS != 9 {
		t.Fatalf("Best = %+v", b)
	}
	tr := BestTrace(samples)
	want := []float64{5, 5, 9, 9}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("trace = %v, want %v", tr, want)
		}
	}
	if _, ok := Best(nil); ok {
		t.Fatal("empty Best should be !ok")
	}
}

func TestMeanEvaluator(t *testing.T) {
	e := MeanEvaluator{
		oracleEval{func(x []float64) float64 { return 2 }},
		oracleEval{func(x []float64) float64 { return 4 }},
	}
	if got := e.Predict(nil); got != 3 {
		t.Fatalf("mean = %v", got)
	}
	if got := (MeanEvaluator{}).Predict(nil); got != 0 {
		t.Fatalf("empty mean = %v", got)
	}
}
