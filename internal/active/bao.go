package active

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/par"
	"repro/internal/space"
	"repro/internal/stats"
)

// Sample is one measured configuration: the (x, y) pair of the paper's
// already-sampled sets X and Y. Invalid deployments carry GFLOPS 0.
type Sample struct {
	Config space.Config
	GFLOPS float64
	Valid  bool
}

// MeasureFunc deploys a configuration on (simulated) hardware and returns
// its achieved GFLOPS; valid is false when the deployment failed.
type MeasureFunc func(space.Config) (gflops float64, valid bool)

// BootstrapSelect implements Bootstrap-guided sampling (Algorithm 3):
// Gamma evaluation functions are trained on bootstrap resamples of the
// observations, and the candidate maximizing their summed prediction is
// returned (as an index into cands). It returns an error when no evaluation
// function can be trained. Training and candidate scoring run on a worker
// pool sized by par.Workers(); see BootstrapSelectParallel for the
// determinism argument.
func BootstrapSelect(tr EvalTrainer, samples []Sample, cands []space.Config, gamma int, rng *rand.Rand) (int, error) {
	return BootstrapSelectParallel(tr, samples, cands, gamma, par.Workers(), rng)
}

// BootstrapSelectParallel is BootstrapSelect with an explicit worker count.
// The result is bit-identical for every workers value: each resample's
// indices and training seed are drawn from rng up front in the exact order
// the serial loop used (so the caller's RNG stream is preserved), training
// and per-candidate scoring write only index-addressed slots, and the
// argmax scans the pre-drawn tie-breaking permutation serially. The trainer
// must tolerate concurrent Train calls (all in-repo trainers are pure
// functions of their arguments).
func BootstrapSelectParallel(tr EvalTrainer, samples []Sample, cands []space.Config, gamma, workers int, rng *rand.Rand) (int, error) {
	if len(cands) == 0 {
		return -1, fmt.Errorf("active: BootstrapSelect needs candidates")
	}
	if len(samples) == 0 {
		return -1, fmt.Errorf("active: BootstrapSelect needs observations")
	}
	if gamma <= 0 {
		gamma = 1
	}

	X := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	yMax := 0.0
	for i, s := range samples {
		X[i] = s.Config.Features()
		y[i] = s.GFLOPS
		if s.GFLOPS > yMax {
			yMax = s.GFLOPS
		}
	}
	if yMax > 0 {
		for i := range y {
			y[i] /= yMax // scale-free targets keep tree gains well-conditioned
		}
	}

	// Pre-draw every resample's indices and training seed serially, in the
	// order the serial implementation consumed them.
	resampleIdx := make([][]int, gamma)
	seeds := make([]int64, gamma)
	for g := 0; g < gamma; g++ {
		resampleIdx[g] = stats.ResampleIndices(len(samples), rng)
		seeds[g] = rng.Int63()
	}
	perm := rng.Perm(len(cands))

	evals := make([]Evaluator, gamma)
	errs := make([]error, gamma)
	par.For(gamma, workers, func(g int) {
		idx := resampleIdx[g]
		Xg := make([][]float64, len(idx))
		yg := make([]float64, len(idx))
		for i, j := range idx {
			Xg[i] = X[j]
			yg[i] = y[j]
		}
		evals[g], errs[g] = tr.Train(Xg, yg, seeds[g])
	})
	for g, err := range errs {
		if err != nil {
			return -1, fmt.Errorf("active: training evaluation function %d: %w", g, err)
		}
	}

	// Score all candidates on the pool (index-addressed writes), then take
	// the argmax serially. Tree-based evaluators predict leaf-constant
	// values, so exact score ties among candidates are common; scanning in
	// a random order breaks ties uniformly instead of systematically
	// sweeping one corner of the searching space.
	scores := make([]float64, len(cands))
	par.For(len(cands), workers, func(i int) {
		feat := cands[i].Features()
		score := 0.0
		for _, ev := range evals {
			score += ev.Predict(feat)
		}
		scores[i] = score
	})
	best := -1
	bestScore := math.Inf(-1)
	for _, i := range perm {
		if scores[i] > bestScore {
			best = i
			bestScore = scores[i]
		}
	}
	return best, nil
}

// BAOParams configures Bootstrap-guided adaptive optimization
// (Algorithm 4). The paper's experimental settings are eta=0.05, Gamma=2,
// tau=1.5, R=3.
type BAOParams struct {
	T     int     // optimization iterations (measurement budget after init)
	Eta   float64 // relative-improvement threshold
	Gamma int     // number of bootstrap resamples
	Tau   float64 // radius growth factor (>1)
	R     float64 // neighborhood radius in knob-index space
	// MaxCandidates caps each step's neighborhood (0 = package default).
	MaxCandidates int
	// EarlyStop ends the loop after this many consecutive measurements
	// without improving the incumbent (0 disables; AutoTVM uses 400).
	EarlyStop int
	// GlobalFallbackAfter switches the searching scope C_t from the
	// incumbent's neighborhood to a bootstrap-scored uniform global sample
	// after this many consecutive non-improving steps, returning to the
	// local scope as soon as the incumbent improves (default 12; negative
	// disables the fallback, giving the strictly-local reading of
	// Algorithm 4). The paper states C is "preferred" to be the incumbent
	// neighborhood, leaving the stalled case open; without an escape the
	// walk provably pins to the first index-space local maximum whose
	// radius-tau*R ball contains no better point.
	GlobalFallbackAfter int
	// LiteralCeil applies the ceiling of the paper's Eq. (1) verbatim
	// instead of the plain relative improvement (ablation; see DESIGN.md).
	LiteralCeil bool
	// Stop, when non-nil, is polled before every iteration; a true return
	// ends the loop immediately. The tuning engine uses it for cooperative
	// cancellation, so BAO's expensive per-step bootstrap trainings never
	// run on after the session's context is done. Being a hook, it is not
	// part of a run's serializable state: RestoreBAORun leaves it nil and
	// the restoring driver re-imposes its own stopping policy.
	Stop func() bool `json:"-"`
}

// DefaultBAOParams returns the paper's experimental settings.
func DefaultBAOParams() BAOParams {
	return BAOParams{T: 960, Eta: 0.05, Gamma: 2, Tau: 1.5, R: 3, EarlyStop: 400}
}

func (p BAOParams) normalized() BAOParams {
	if p.T <= 0 {
		p.T = 960
	}
	if p.Eta <= 0 {
		p.Eta = 0.05
	}
	if p.Gamma <= 0 {
		p.Gamma = 2
	}
	if p.Tau <= 1 {
		p.Tau = 1.5
	}
	if p.R <= 0 {
		p.R = 3
	}
	if p.MaxCandidates <= 0 {
		// One BAO step costs Gamma model trainings plus Gamma predictions
		// per candidate; 2048 candidates keeps a step in the milliseconds
		// while still covering the radius-3 ball densely.
		p.MaxCandidates = 2048
	}
	if p.GlobalFallbackAfter == 0 {
		p.GlobalFallbackAfter = 12
	}
	return p
}

// StepObserver is invoked after each BAO measurement with the step index
// (1-based) and the sample; used to record convergence curves.
type StepObserver func(step int, s Sample)

// BAO runs Bootstrap-guided adaptive optimization (Algorithm 4) starting
// from the measured initialization set. Each iteration builds the search
// scope C_t as the lattice neighborhood of the incumbent (radius R,
// enlarged to tau*R when the relative improvement r_t of Eq. (1) falls
// below eta), selects the next configuration with BootstrapSelect, deploys
// it via measure, and folds the result into the observation set.
//
// Interpretation notes (documented in DESIGN.md): y*_t is read as the best
// performance known at step t, and the neighborhood centers on the config
// achieving it; Eq. (1)'s ceiling is a typo reproduced only under
// LiteralCeil. When the neighborhood is empty or the bootstrap selection
// fails (e.g. all observations invalid), the step falls back to a uniform
// random unmeasured configuration, mirroring AutoTVM's epsilon-greedy
// fallback.
//
// It returns all samples (initialization first, then one per iteration) in
// measurement order. BAO is the one-shot driver over BAORun; stepwise
// callers (the tuner session layer) use NewBAORun/Step directly.
func BAO(sp *space.Space, tr EvalTrainer, init []Sample, measure MeasureFunc, p BAOParams, rng *rand.Rand, obs StepObserver) []Sample {
	r := NewBAORun(sp, tr, init, p)
	for !r.Step(rng, measure, obs) {
	}
	return r.Samples()
}

// BAORun is the resumable form of the BAO loop: iteration state cut at
// measurement boundaries so an external driver can interleave many runs.
// Each Step performs exactly one iteration of Algorithm 4 — plan the
// searching scope, select via bootstrap, deploy one configuration — and is
// bit-identical to the corresponding iteration of the one-shot BAO call
// (the RNG is consumed in the same order). A BAORun is single-goroutine.
//
// The run holds no RNG of its own: the driver passes one to every Step, so
// the whole iteration state is plain serializable data (State/
// RestoreBAORun) and the RNG's continuity is the driver's concern — the
// tuner layer threads a counted rng.Source through, snapshotted alongside.
type BAORun struct {
	sp           *space.Space
	tr           EvalTrainer
	p            BAOParams
	samples      []Sample
	measured     map[uint64]bool
	bestIdx      int // incumbent index into samples; -1 while nothing valid
	bestTrace    []float64
	sinceImprove int
	t            int // next iteration number, 1-based
	stopped      bool
}

// NewBAORun prepares a run over the measured initialization set. Iteration
// only happens in Step; construction consumes no randomness.
func NewBAORun(sp *space.Space, tr EvalTrainer, init []Sample, p BAOParams) *BAORun {
	r := &BAORun{sp: sp, tr: tr, p: p.normalized(), t: 1, bestIdx: -1}
	r.samples = append([]Sample(nil), init...)
	r.measured = make(map[uint64]bool, len(r.samples)+r.p.T)
	for _, s := range r.samples {
		r.measured[s.Config.Flat()] = true
	}
	// Incumbent: best valid sample so far.
	for i, s := range r.samples {
		if s.Valid && (r.bestIdx < 0 || s.GFLOPS > r.samples[r.bestIdx].GFLOPS) {
			r.bestIdx = i
		}
	}
	// Best-so-far trajectory y*_t for Eq. (1). bestTrace[t] is the best
	// value known after iteration t; index 0 is the initialization.
	r.bestTrace = []float64{0}
	if r.bestIdx >= 0 {
		r.bestTrace[0] = r.samples[r.bestIdx].GFLOPS
	}
	return r
}

// Done reports whether the run has finished: budget spent, early stopping
// tripped, space exhausted, or the Stop hook fired.
func (r *BAORun) Done() bool { return r.stopped || r.t > r.p.T }

// Samples returns all samples in measurement order (initialization first,
// then one per completed iteration).
func (r *BAORun) Samples() []Sample { return r.samples }

// Step performs one iteration of Algorithm 4, deploying (at most) one
// configuration through measure, and reports whether the run is finished.
// A finished run's Step is a no-op returning true. All randomness of the
// iteration is drawn from rng, in a fixed order.
func (r *BAORun) Step(rng *rand.Rand, measure MeasureFunc, obs StepObserver) bool {
	if r.Done() {
		r.stopped = true
		return true
	}
	if r.p.Stop != nil && r.p.Stop() {
		r.stopped = true
		return true
	}
	t := r.t
	radius := r.p.R
	if t >= 2 {
		rt := relativeImprovement(r.bestTrace, r.p.LiteralCeil)
		if rt < r.p.Eta {
			radius = r.p.Tau * r.p.R
		}
	}

	var cands []space.Config
	useGlobal := r.p.GlobalFallbackAfter > 0 && r.sinceImprove >= r.p.GlobalFallbackAfter
	if r.bestIdx >= 0 && !useGlobal {
		cands = r.sp.Neighborhood(r.samples[r.bestIdx].Config, radius,
			space.NeighborhoodOpts{MaxCandidates: r.p.MaxCandidates, Exclude: r.measured}, rng)
	} else if useGlobal {
		cands = globalPool(r.sp, r.p.MaxCandidates, r.measured, rng)
	}
	var next space.Config
	picked := false
	if len(cands) > 0 {
		if i, err := BootstrapSelect(r.tr, r.samples, cands, r.p.Gamma, rng); err == nil {
			next = cands[i]
			picked = true
		}
	}
	if !picked {
		c, ok := randomUnmeasured(r.sp, r.measured, rng)
		if !ok {
			// The space is effectively exhausted: a re-measurement would
			// only duplicate a known sample and burn a budget step.
			r.stopped = true
			return true
		}
		next = c
	}

	g, valid := measure(next)
	s := Sample{Config: next, GFLOPS: g, Valid: valid}
	r.samples = append(r.samples, s)
	r.measured[next.Flat()] = true
	if obs != nil {
		obs(t, s)
	}

	improved := valid && (r.bestIdx < 0 || g > r.samples[r.bestIdx].GFLOPS)
	if improved {
		r.bestIdx = len(r.samples) - 1
		r.sinceImprove = 0
	} else {
		r.sinceImprove++
	}
	cur := 0.0
	if r.bestIdx >= 0 {
		cur = r.samples[r.bestIdx].GFLOPS
	}
	r.bestTrace = append(r.bestTrace, cur)
	r.t++

	if r.p.EarlyStop > 0 && r.sinceImprove >= r.p.EarlyStop {
		r.stopped = true
	}
	return r.Done()
}

// relativeImprovement computes Eq. (1) over the best-so-far trajectory:
// r_t = (y*_{t-1} - y*_{t-2}) / y*_{t-1}, optionally with the paper's
// literal ceiling.
func relativeImprovement(bestTrace []float64, literalCeil bool) float64 {
	n := len(bestTrace)
	y1 := bestTrace[n-1] // y*_{t-1}
	y2 := bestTrace[n-2] // y*_{t-2}
	if y1 <= 0 {
		return 0
	}
	r := (y1 - y2) / y1
	if literalCeil {
		return math.Ceil(r)
	}
	return r
}

// globalPool draws up to n distinct unmeasured configurations uniformly
// from the whole space: the searching scope of a stalled BAO step.
func globalPool(sp *space.Space, n int, measured map[uint64]bool, rng *rand.Rand) []space.Config {
	seen := make(map[uint64]bool, n)
	out := make([]space.Config, 0, n)
	for trials := 0; trials < n*8 && len(out) < n; trials++ {
		c := sp.Random(rng)
		f := c.Flat()
		if seen[f] || measured[f] {
			continue
		}
		seen[f] = true
		out = append(out, c)
	}
	return out
}

// randomUnmeasured draws a uniform configuration not yet measured. Like
// session.randomUnvisited it reports ok=false after a bounded number of
// rejections instead of handing back an already-measured point: the space
// is then effectively exhausted and the caller must stop rather than append
// a duplicate sample.
func randomUnmeasured(sp *space.Space, measured map[uint64]bool, rng *rand.Rand) (space.Config, bool) {
	for i := 0; i < 256; i++ {
		c := sp.Random(rng)
		if !measured[c.Flat()] {
			return c, true
		}
	}
	return space.Config{}, false
}

// Best returns the best valid sample of a run, and ok=false when every
// sample was invalid.
func Best(samples []Sample) (Sample, bool) {
	best := -1
	for i, s := range samples {
		if s.Valid && (best < 0 || s.GFLOPS > samples[best].GFLOPS) {
			best = i
		}
	}
	if best < 0 {
		return Sample{}, false
	}
	return samples[best], true
}

// BestTrace returns the best-so-far GFLOPS after each measurement, the
// series plotted in the paper's Fig. 4.
func BestTrace(samples []Sample) []float64 {
	out := make([]float64, len(samples))
	best := 0.0
	for i, s := range samples {
		if s.Valid && s.GFLOPS > best {
			best = s.GFLOPS
		}
		out[i] = best
	}
	return out
}
