package active

import (
	"repro/internal/gp"
	"repro/internal/rf"
)

// GPTrainer adapts Gaussian-process regression as the evaluation function.
// Exact inference is O(n³); the params cap the training-set size, which the
// bootstrap resampling of Algorithm 3 tolerates naturally.
type GPTrainer struct {
	Params gp.Params
}

// NewGPTrainer returns a trainer with tuning-scale defaults.
func NewGPTrainer() GPTrainer { return GPTrainer{Params: gp.DefaultParams()} }

// Train implements EvalTrainer.
func (t GPTrainer) Train(X [][]float64, y []float64, seed int64) (Evaluator, error) {
	p := t.Params
	p.Seed = seed
	return gp.Train(X, y, p)
}

// RFTrainer adapts random-forest regression as the evaluation function.
// Note the composition with Algorithm 3: BAO bootstraps the observation set
// and the forest bootstraps again internally — bagging over bagging, which
// is exactly the variance-reduction stack the paper motivates.
type RFTrainer struct {
	Params rf.Params
}

// NewRFTrainer returns a trainer sized for the per-step BAO loop.
func NewRFTrainer() RFTrainer {
	p := rf.DefaultParams()
	p.NumTrees = 24
	p.MaxDepth = 8
	return RFTrainer{Params: p}
}

// Train implements EvalTrainer.
func (t RFTrainer) Train(X [][]float64, y []float64, seed int64) (Evaluator, error) {
	p := t.Params
	p.Seed = seed
	return rf.Train(X, y, p)
}
