package active

import (
	"repro/internal/xgb"
)

// Evaluator scores a feature vector; higher predictions mean better
// expected performance. It is the paper's "evaluation function" f_gamma.
type Evaluator interface {
	Predict(x []float64) float64
}

// EvalTrainer builds an Evaluator from observations. The framework is
// explicitly independent of the concrete evaluation-function form
// (Section III-B), so trainers are pluggable.
type EvalTrainer interface {
	Train(X [][]float64, y []float64, seed int64) (Evaluator, error)
}

// XGBTrainer adapts the gradient-boosted-tree regressor as the evaluation
// function, matching AutoTVM's XGBoost cost model.
type XGBTrainer struct {
	Params xgb.Params
}

// NewXGBTrainer returns a trainer with parameters sized for the BAO loop,
// which retrains Gamma models on every optimization step: fewer, shallower
// trees over quantized features.
func NewXGBTrainer() XGBTrainer {
	p := xgb.DefaultParams()
	p.NumRounds = 20
	p.MaxDepth = 4
	p.MaxBins = 16
	return XGBTrainer{Params: p}
}

// Train implements EvalTrainer.
func (t XGBTrainer) Train(X [][]float64, y []float64, seed int64) (Evaluator, error) {
	p := t.Params
	p.Seed = seed
	return xgb.Train(X, y, p)
}

// MeanEvaluator averages a set of evaluators; summation and averaging give
// the same argmax, and the average keeps magnitudes comparable across Gamma
// settings in the ablations.
type MeanEvaluator []Evaluator

// Predict implements Evaluator.
func (m MeanEvaluator) Predict(x []float64) float64 {
	if len(m) == 0 {
		return 0
	}
	s := 0.0
	for _, e := range m {
		s += e.Predict(x)
	}
	return s / float64(len(m))
}
