package active

import (
	"math/rand"
	"testing"

	"repro/internal/space"
)

// TestBootstrapSelectParallelWorkerInvariance: the selected candidate index
// and the caller's RNG stream position must be identical for every worker
// count, since all randomness is drawn serially up front.
func TestBootstrapSelectParallelWorkerInvariance(t *testing.T) {
	sp := quadSpace()
	setup := func() ([]Sample, []space.Config, *rand.Rand) {
		rng := rand.New(rand.NewSource(21))
		samples := measureInit(sp, 24, rng, quadMeasure)
		cands := sp.RandomSample(60, rng)
		return samples, cands, rng
	}

	refIdx := -1
	var refNext int64
	for _, workers := range []int{1, 4, 8} {
		samples, cands, rng := setup()
		got, err := BootstrapSelectParallel(NewXGBTrainer(), samples, cands, 3, workers, rng)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		next := rng.Int63()
		if workers == 1 {
			refIdx, refNext = got, next
			continue
		}
		if got != refIdx {
			t.Fatalf("workers=%d picked %d, workers=1 picked %d", workers, got, refIdx)
		}
		if next != refNext {
			t.Fatalf("workers=%d left the RNG stream at a different position", workers)
		}
	}
}

// TestBootstrapSelectMatchesParallelSerial pins that the public
// BootstrapSelect (pool sized by par.Workers) agrees with an explicit
// single-worker run.
func TestBootstrapSelectMatchesParallelSerial(t *testing.T) {
	sp := quadSpace()
	rng1 := rand.New(rand.NewSource(22))
	s1 := measureInit(sp, 20, rng1, quadMeasure)
	c1 := sp.RandomSample(40, rng1)
	rng2 := rand.New(rand.NewSource(22))
	s2 := measureInit(sp, 20, rng2, quadMeasure)
	c2 := sp.RandomSample(40, rng2)

	a, err := BootstrapSelect(NewXGBTrainer(), s1, c1, 2, rng1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapSelectParallel(NewXGBTrainer(), s2, c2, 2, 1, rng2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("BootstrapSelect picked %d, serial BootstrapSelectParallel picked %d", a, b)
	}
}

// tinySpace has only 8 configurations — smaller than any realistic budget.
func tinySpace() *space.Space {
	return space.New(
		space.NewEnumKnob("a", 0, 1),
		space.NewEnumKnob("b", 0, 1),
		space.NewEnumKnob("c", 0, 1),
	)
}

// TestBAOTinySpaceNoDuplicates is the regression test for the budget-burn
// bug: when the space is exhausted mid-run, randomUnmeasured now reports
// !ok and BAO breaks instead of re-measuring known configurations. The
// returned samples must contain every configuration at most once.
func TestBAOTinySpaceNoDuplicates(t *testing.T) {
	sp := tinySpace()
	rng := rand.New(rand.NewSource(31))
	flat := func(space.Config) (float64, bool) { return 1.0, true }
	init := measureInit(sp, 3, rng, flat)
	p := BAOParams{T: 50, Gamma: 1}
	samples := BAO(sp, NewXGBTrainer(), init, flat, p, rng, nil)

	seen := make(map[uint64]bool)
	for _, s := range samples {
		f := s.Config.Flat()
		if seen[f] {
			t.Fatalf("BAO returned duplicate config %d on an exhausted space", f)
		}
		seen[f] = true
	}
	if n := uint64(len(samples)); n > sp.Size() {
		t.Fatalf("BAO returned %d samples from a %d-config space", n, sp.Size())
	}
}

// TestRandomUnmeasuredExhausted pins the (Config, ok) contract directly.
func TestRandomUnmeasuredExhausted(t *testing.T) {
	sp := tinySpace()
	rng := rand.New(rand.NewSource(32))
	measured := make(map[uint64]bool)
	for i := uint64(0); i < sp.Size(); i++ {
		measured[i] = true
	}
	if _, ok := randomUnmeasured(sp, measured, rng); ok {
		t.Fatal("randomUnmeasured returned ok on a fully measured space")
	}
	delete(measured, 3)
	c, ok := randomUnmeasured(sp, measured, rng)
	if !ok || c.Flat() != 3 {
		t.Fatalf("randomUnmeasured = (%v, %v), want the single unmeasured config 3", c.Flat(), ok)
	}
}
