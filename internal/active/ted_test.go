package active

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/space"
)

func TestTEDSelectsFromAllClusters(t *testing.T) {
	// Three tight clusters; TED with m=3 should pick one point per cluster.
	var feats [][]float64
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	rng := rand.New(rand.NewSource(1))
	for _, c := range centers {
		for i := 0; i < 10; i++ {
			feats = append(feats, []float64{c[0] + 0.1*rng.NormFloat64(), c[1] + 0.1*rng.NormFloat64()})
		}
	}
	idx := TED(feats, 0.1, 3, linalg.RBFKernel{Gamma: 0.05})
	if len(idx) != 3 {
		t.Fatalf("selected %d, want 3", len(idx))
	}
	seen := make(map[int]bool)
	for _, i := range idx {
		seen[i/10] = true
	}
	if len(seen) != 3 {
		t.Fatalf("TED picked from %d clusters, want 3 (indices %v)", len(seen), idx)
	}
}

func TestTEDNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	feats := make([][]float64, 40)
	for i := range feats {
		feats[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	idx := TED(feats, 0.1, 20, linalg.RBFKernel{Gamma: 0.3})
	seen := make(map[int]bool)
	for _, i := range idx {
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
}

func TestTEDEdgeCases(t *testing.T) {
	if got := TED(nil, 0.1, 5, linalg.LinearKernel{}); got != nil {
		t.Fatal("empty input should return nil")
	}
	feats := [][]float64{{1}, {2}}
	if got := TED(feats, 0.1, 0, linalg.LinearKernel{}); got != nil {
		t.Fatal("m=0 should return nil")
	}
	got := TED(feats, 0.1, 10, linalg.LinearKernel{})
	if len(got) != 2 {
		t.Fatalf("m>n should return all, got %d", len(got))
	}
}

func TestTEDDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	feats := make([][]float64, 30)
	for i := range feats {
		feats[i] = []float64{rng.Float64(), rng.Float64()}
	}
	a := TED(feats, 0.1, 10, linalg.RBFKernel{Gamma: 1})
	b := TED(feats, 0.1, 10, linalg.RBFKernel{Gamma: 1})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("TED must be deterministic")
		}
	}
}

func TestStandardize(t *testing.T) {
	X := [][]float64{{1, 5, 7}, {3, 5, 9}, {5, 5, 11}}
	standardize(X)
	for j := 0; j < 3; j++ {
		mean, varsum := 0.0, 0.0
		for i := range X {
			mean += X[i][j]
		}
		mean /= 3
		for i := range X {
			varsum += (X[i][j] - mean) * (X[i][j] - mean)
		}
		if math.Abs(mean) > 1e-12 {
			t.Fatalf("col %d mean %v", j, mean)
		}
		if j == 1 {
			if varsum != 0 {
				t.Fatal("constant column should be zeroed")
			}
		} else if math.Abs(varsum/3-1) > 1e-9 {
			t.Fatalf("col %d variance %v", j, varsum/3)
		}
	}
	standardize(nil) // must not panic
}

func TestEmbedViews(t *testing.T) {
	sp := space.New(
		space.NewSplitKnob("tile", 16, 2),
		space.NewEnumKnob("u", 0, 512, 1500),
	)
	rng := rand.New(rand.NewSource(4))
	cfgs := sp.RandomSample(10, rng)
	v := Embed(cfgs, ViewKnobValues)
	if len(v) != 10 || len(v[0]) != sp.FeatureDim() {
		t.Fatalf("value view shape %dx%d", len(v), len(v[0]))
	}
	iv := Embed(cfgs, ViewKnobIndices)
	if len(iv[0]) != sp.NumKnobs() {
		t.Fatalf("index view dim %d", len(iv[0]))
	}
	if Embed(nil, ViewKnobValues) != nil {
		t.Fatal("empty embed should be nil")
	}
}

func TestBTEDBasics(t *testing.T) {
	sp := space.New(
		space.NewSplitKnob("tile_a", 64, 4),
		space.NewSplitKnob("tile_b", 56, 4),
		space.NewEnumKnob("u", 0, 512, 1500),
	)
	p := BTEDParams{Mu: 0.1, M: 100, M0: 16, B: 4}
	rng := rand.New(rand.NewSource(5))
	got := BTED(sp, p, rng)
	if len(got) != 16 {
		t.Fatalf("BTED returned %d configs, want 16", len(got))
	}
	seen := make(map[uint64]bool)
	for _, c := range got {
		f := c.Flat()
		if seen[f] {
			t.Fatal("duplicate config in BTED set")
		}
		seen[f] = true
	}
}

func TestBTEDMoreDiverseThanRandom(t *testing.T) {
	sp := space.New(
		space.NewSplitKnob("tile_a", 128, 4),
		space.NewSplitKnob("tile_b", 112, 4),
		space.NewEnumKnob("u", 0, 512, 1500),
		space.NewEnumKnob("e", 0, 1),
	)
	meanMinDist := func(cfgs []space.Config) float64 {
		emb := Embed(cfgs, ViewKnobValues)
		total := 0.0
		for i := range emb {
			min := math.Inf(1)
			for j := range emb {
				if i == j {
					continue
				}
				if d := linalg.Dist(emb[i], emb[j]); d < min {
					min = d
				}
			}
			total += min
		}
		return total / float64(len(emb))
	}
	p := BTEDParams{Mu: 0.1, M: 200, M0: 24, B: 4}
	wins := 0
	rounds := 6
	for r := 0; r < rounds; r++ {
		rngA := rand.New(rand.NewSource(int64(10 + r)))
		rngB := rand.New(rand.NewSource(int64(50 + r)))
		bted := meanMinDist(BTED(sp, p, rngA))
		random := meanMinDist(RandomInit(sp, 24, rngB))
		if bted > random {
			wins++
		}
	}
	if wins < 5 {
		t.Fatalf("BTED beat random diversity only %d/%d rounds", wins, rounds)
	}
}

func TestBTEDParamDefaults(t *testing.T) {
	p := BTEDParams{}.normalized(10)
	if p.Mu != 0.1 || p.M != 500 || p.M0 != 64 || p.B != 10 || p.Kernel == nil {
		t.Fatalf("defaults wrong: %+v", p)
	}
	d := DefaultBTEDParams()
	if d.M != 500 || d.M0 != 64 || d.B != 10 || d.Mu != 0.1 {
		t.Fatalf("paper defaults wrong: %+v", d)
	}
}

func TestBTEDWithIndicesViewAndDistanceKernel(t *testing.T) {
	// The paper-literal configuration must also produce a full set.
	sp := space.New(
		space.NewSplitKnob("tile_a", 64, 4),
		space.NewEnumKnob("u", 0, 512, 1500),
	)
	p := BTEDParams{Mu: 0.1, M: 80, M0: 12, B: 3, View: ViewKnobIndices, Kernel: linalg.DistanceKernel{}}
	rng := rand.New(rand.NewSource(6))
	got := BTED(sp, p, rng)
	if len(got) != 12 {
		t.Fatalf("literal BTED returned %d", len(got))
	}
}
