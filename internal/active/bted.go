package active

import (
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/space"
)

// BTEDParams configures batch transductive experimental design
// (Algorithm 2). The paper's experimental settings are the defaults:
// (mu=0.1, M=500, m=64, B=10).
type BTEDParams struct {
	Mu float64 // TED normalization coefficient
	M  int     // random points drawn per batch
	M0 int     // points TED selects per batch and finally (paper's m)
	B  int     // number of batches
	// View selects the embedding for distances (default ViewKnobValues).
	View FeatureView
	// Kernel builds K_VV; nil means RBF with gamma = 1/featureDim.
	Kernel linalg.Kernel
}

// DefaultBTEDParams returns the paper's experimental settings.
func DefaultBTEDParams() BTEDParams {
	return BTEDParams{Mu: 0.1, M: 500, M0: 64, B: 10}
}

func (p BTEDParams) normalized(featDim int) BTEDParams {
	if p.Mu <= 0 {
		p.Mu = 0.1
	}
	if p.M <= 0 {
		p.M = 500
	}
	if p.M0 <= 0 {
		p.M0 = 64
	}
	if p.B <= 0 {
		p.B = 10
	}
	if p.Kernel == nil {
		g := 1.0
		if featDim > 0 {
			g = 1.0 / float64(featDim)
		}
		p.Kernel = linalg.RBFKernel{Gamma: g}
	}
	return p
}

// BTED generates the diverse initial configuration set of Algorithm 2:
// B random batches of M configs are drawn from the space, TED selects M0
// representatives from each batch, and a final TED pass over the union
// returns the M0-point initialization set.
//
// The batch mechanism is what makes TED scale to spaces with 10^7..10^8
// points: the O(M^2) kernel work is bounded by the batch size, while the
// union across B independent random batches enlarges the effective random
// support from which the final set is distilled.
func BTED(sp *space.Space, p BTEDParams, rng *rand.Rand) []space.Config {
	p = p.normalized(sp.FeatureDim())
	seen := make(map[uint64]bool)
	var union []space.Config
	for b := 0; b < p.B; b++ {
		batch := sp.RandomSample(p.M, rng)
		picked := TEDConfigs(batch, p.Mu, p.M0, p.View, p.Kernel, rng)
		for _, c := range picked {
			f := c.Flat()
			if seen[f] {
				continue
			}
			seen[f] = true
			union = append(union, c)
		}
	}
	return TEDConfigs(union, p.Mu, p.M0, p.View, p.Kernel, rng)
}

// RandomInit draws the AutoTVM-style random initialization set of the same
// size, used as the baseline against BTED.
func RandomInit(sp *space.Space, m int, rng *rand.Rand) []space.Config {
	return sp.RandomSample(m, rng)
}
