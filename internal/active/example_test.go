package active_test

import (
	"fmt"
	"math/rand"

	"repro/internal/active"
	"repro/internal/hwsim"
	"repro/internal/space"
	"repro/internal/tensor"
)

// ExampleBTED shows the paper's initialization stage: Algorithm 2 distills
// a diverse 16-point set from a 90M-configuration space.
func ExampleBTED() {
	w := tensor.Conv2D(1, 64, 56, 56, 64, 3, 1, 1)
	sp, _ := space.ForWorkload(w)
	p := active.DefaultBTEDParams()
	p.M0 = 16
	init := active.BTED(sp, p, rand.New(rand.NewSource(1)))
	fmt.Println("initial configs:", len(init))
	// Output:
	// initial configs: 16
}

// ExampleBAO runs the full advanced active-learning flow against the
// simulated GPU: BTED initialization followed by Bootstrap-guided adaptive
// optimization.
func ExampleBAO() {
	w := tensor.Conv2D(1, 32, 28, 28, 64, 3, 1, 1)
	sp, _ := space.ForWorkload(w)
	sim := hwsim.NewSimulator(hwsim.GTX1080Ti(), 7)
	rng := rand.New(rand.NewSource(7))

	measure := func(c space.Config) (float64, bool) {
		m := sim.Measure(w, c)
		return m.GFLOPS, m.Valid
	}
	var init []active.Sample
	bp := active.DefaultBTEDParams()
	bp.M0 = 16
	for _, c := range active.BTED(sp, bp, rng) {
		g, ok := measure(c)
		init = append(init, active.Sample{Config: c, GFLOPS: g, Valid: ok})
	}
	p := active.DefaultBAOParams()
	p.T = 64
	p.EarlyStop = 0
	samples := active.BAO(sp, active.NewXGBTrainer(), init, measure, p, rng, nil)
	best, ok := active.Best(samples)
	initBest, _ := active.Best(init)
	fmt.Println("measurements:", len(samples))
	fmt.Println("improved:", ok && best.GFLOPS > initBest.GFLOPS)
	// Output:
	// measurements: 80
	// improved: true
}
