package active

import (
	"math/rand"
	"testing"

	"repro/internal/hwsim"
	"repro/internal/space"
	"repro/internal/tensor"
)

// trainerFixture builds a small observation set over the quad space.
func trainerFixture(t *testing.T, n int, seed int64) ([]Sample, *space.Space) {
	t.Helper()
	sp := quadSpace()
	rng := rand.New(rand.NewSource(seed))
	return measureInit(sp, n, rng, quadMeasure), sp
}

func TestAllTrainersProduceEvaluators(t *testing.T) {
	samples, _ := trainerFixture(t, 40, 1)
	X := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		X[i] = s.Config.Features()
		y[i] = s.GFLOPS
	}
	trainers := map[string]EvalTrainer{
		"xgb": NewXGBTrainer(),
		"gp":  NewGPTrainer(),
		"rf":  NewRFTrainer(),
	}
	for name, tr := range trainers {
		ev, err := tr.Train(X, y, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p := ev.Predict(X[0])
		if p != p { // NaN check
			t.Fatalf("%s: NaN prediction", name)
		}
	}
}

func TestBAOWithEachTrainer(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   EvalTrainer
	}{
		{"xgb", NewXGBTrainer()},
		{"gp", NewGPTrainer()},
		{"rf", NewRFTrainer()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sp := quadSpace()
			rng := rand.New(rand.NewSource(11))
			init := measureInit(sp, 16, rng, quadMeasure)
			p := BAOParams{T: 60, Gamma: 2}
			samples := BAO(sp, tc.tr, init, quadMeasure, p, rng, nil)
			best, ok := Best(samples)
			if !ok {
				t.Fatal("no valid sample")
			}
			initBest, _ := Best(init)
			if best.GFLOPS < initBest.GFLOPS {
				t.Fatalf("%s-driven BAO regressed: %v -> %v", tc.name, initBest.GFLOPS, best.GFLOPS)
			}
		})
	}
}

func TestBAOStrictlyLocalStalls(t *testing.T) {
	// Regression test for the documented searching-scope decision: on a
	// realistic schedule space the strictly-local reading of Algorithm 4
	// pins to the first index-space local maximum (its radius-tau*R ball
	// contains no better point and is far too large to exhaust), while the
	// hybrid scope keeps improving through the bootstrap-guided global
	// fallback. We run both on the same simulated conv2d task and compare
	// late-phase progress.
	w := tensor.Conv2D(1, 64, 56, 56, 128, 1, 1, 0)
	sp, err := space.ForWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	run := func(fallback int) (atQuarter, final float64) {
		sim := hwsim.NewSimulator(hwsim.GTX1080Ti(), 5)
		measure := func(c space.Config) (float64, bool) {
			m := sim.Measure(w, c)
			return m.GFLOPS, m.Valid
		}
		rng := rand.New(rand.NewSource(7))
		var init []Sample
		for _, c := range sp.RandomSample(32, rng) {
			g, ok := measure(c)
			init = append(init, Sample{Config: c, GFLOPS: g, Valid: ok})
		}
		p := BAOParams{T: 240, Gamma: 2, GlobalFallbackAfter: fallback}
		samples := BAO(sp, NewXGBTrainer(), init, measure, p, rng, nil)
		trace := BestTrace(samples)
		return trace[len(trace)/4], trace[len(trace)-1]
	}
	_, localFinal := run(-1)
	hybridQuarter, hybridFinal := run(12)
	if hybridFinal < localFinal {
		t.Fatalf("hybrid final %.1f below strictly-local final %.1f", hybridFinal, localFinal)
	}
	if hybridFinal <= hybridQuarter {
		t.Fatalf("hybrid made no late progress: %.1f -> %.1f", hybridQuarter, hybridFinal)
	}
}
