package active

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/space"
)

// benchFeats builds n standardized d-dimensional feature vectors, the shape
// TED sees after Embed: paper-default batches are M=500 points.
func benchFeats(n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		X[i] = row
	}
	standardize(X)
	return X
}

// BenchmarkTED exercises Algorithm 1 at the paper's batch shape: one greedy
// TED pass selecting M0=64 representatives from an M=500-point batch.
func BenchmarkTED(b *testing.B) {
	feats := benchFeats(500, 8, 1)
	k := linalg.RBFKernel{Gamma: 1.0 / 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := TED(feats, 0.1, 64, k); len(got) != 64 {
			b.Fatalf("selected %d", len(got))
		}
	}
}

// BenchmarkTEDReference runs the pre-optimization Algorithm 1 (full
// column-norm pass plus in-place rank-1 downdate per pick) on the same
// shape, so the incremental kernel's speedup can be read off one benchmark
// run on the same machine under the same load.
func BenchmarkTEDReference(b *testing.B) {
	feats := benchFeats(500, 8, 1)
	k := linalg.RBFKernel{Gamma: 1.0 / 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := tedReference(feats, 0.1, 64, k); len(got) != 64 {
			b.Fatalf("selected %d", len(got))
		}
	}
}

// BenchmarkBTED runs the full Algorithm 2 initialization (B batches plus the
// final union pass) over a realistic conv-sized knob space.
func BenchmarkBTED(b *testing.B) {
	sp := space.New(
		space.NewSplitKnob("tile_a", 64, 4),
		space.NewSplitKnob("tile_b", 56, 4),
		space.NewEnumKnob("u", 0, 512, 1500),
		space.NewEnumKnob("e", 0, 1),
	)
	p := BTEDParams{Mu: 0.1, M: 500, M0: 64, B: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(7))
		if got := BTED(sp, p, rng); len(got) != 64 {
			b.Fatalf("selected %d", len(got))
		}
	}
}

// BenchmarkStandardize measures the Embed normalization pass on a
// paper-default batch.
func BenchmarkStandardize(b *testing.B) {
	src := benchFeats(500, 8, 2)
	X := make([][]float64, len(src))
	for i := range X {
		X[i] = make([]float64, len(src[i]))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := range src {
			copy(X[r], src[r])
		}
		standardize(X)
	}
}
