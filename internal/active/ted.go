// Package active implements the paper's advanced active-learning framework:
// transductive experimental design (TED, Algorithm 1), its batch variant
// BTED (Algorithm 2), Bootstrap-guided sampling (BS, Algorithm 3) and
// Bootstrap-guided adaptive optimization (BAO, Algorithm 4).
package active

import (
	"math"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/space"
)

// TED performs transductive experimental design (Algorithm 1): it greedily
// selects m points whose kernel columns have maximal residual energy,
// deflating the kernel matrix after each pick so later picks are diverse
// with respect to earlier ones. It returns the indices of the selected
// points in pick order. mu is the normalization coefficient of the paper;
// k is the kernel building K_VV.
//
// Points already selected keep a residual column norm of ~0 after the
// rank-1 downdate, so the same index is never picked twice. When m exceeds
// the candidate count, every index is returned.
func TED(feats [][]float64, mu float64, m int, k linalg.Kernel) []int {
	n := len(feats)
	if n == 0 || m <= 0 {
		return nil
	}
	if m > n {
		m = n
	}
	K := linalg.GramMatrix(feats, k)
	selected := make([]int, 0, m)
	taken := make([]bool, n)
	for i := 0; i < m; i++ {
		norms := K.ColNorms2()
		best := -1
		bestScore := 0.0
		for j := 0; j < n; j++ {
			if taken[j] {
				continue
			}
			score := norms[j] / (K.At(j, j) + mu)
			if best < 0 || score > bestScore {
				best = j
				bestScore = score
			}
		}
		if best < 0 {
			break
		}
		selected = append(selected, best)
		taken[best] = true
		// Non-PSD "kernels" (e.g. the paper-literal raw-distance matrix)
		// can drive the deflated diagonal non-positive; the downdate is
		// then numerically meaningless, so skip it — the point is already
		// marked taken and cannot be re-selected.
		if denom := K.At(best, best) + mu; denom > 1e-12 {
			K.Rank1Downdate(best, denom)
		}
	}
	return selected
}

// FeatureView selects how configurations are embedded for TED distances.
type FeatureView int

// Feature views for TED.
const (
	// ViewKnobValues embeds configs as standardized log-scaled knob values
	// (the default; matches the geometry the cost model sees).
	ViewKnobValues FeatureView = iota
	// ViewKnobIndices embeds configs as raw knob option indices (the
	// paper's literal Euclidean-distance space).
	ViewKnobIndices
)

// Embed maps configs into the chosen feature view, standardizing each
// dimension to zero mean and unit variance over the batch so no knob
// dominates the kernel.
func Embed(cfgs []space.Config, view FeatureView) [][]float64 {
	if len(cfgs) == 0 {
		return nil
	}
	raw := make([][]float64, len(cfgs))
	for i, c := range cfgs {
		if view == ViewKnobIndices {
			raw[i] = c.IndexVec()
		} else {
			raw[i] = c.Features()
		}
	}
	standardize(raw)
	return raw
}

// standardize normalizes columns in place to mean 0 / stddev 1 (constant
// columns become all-zero).
func standardize(X [][]float64) {
	if len(X) == 0 {
		return
	}
	d := len(X[0])
	n := float64(len(X))
	for j := 0; j < d; j++ {
		mean := 0.0
		for _, row := range X {
			mean += row[j]
		}
		mean /= n
		varsum := 0.0
		for _, row := range X {
			dev := row[j] - mean
			varsum += dev * dev
		}
		if varsum == 0 {
			for _, row := range X {
				row[j] = 0
			}
			continue
		}
		stdInv := 1 / math.Sqrt(varsum/n)
		for _, row := range X {
			row[j] = (row[j] - mean) * stdInv
		}
	}
}

// TEDConfigs runs TED over a batch of configurations with the given view
// and kernel, returning the selected configs in pick order.
func TEDConfigs(cfgs []space.Config, mu float64, m int, view FeatureView, k linalg.Kernel, _ *rand.Rand) []space.Config {
	idx := TED(Embed(cfgs, view), mu, m, k)
	out := make([]space.Config, len(idx))
	for i, j := range idx {
		out[i] = cfgs[j]
	}
	return out
}
