// Package active implements the paper's advanced active-learning framework:
// transductive experimental design (TED, Algorithm 1), its batch variant
// BTED (Algorithm 2), Bootstrap-guided sampling (BS, Algorithm 3) and
// Bootstrap-guided adaptive optimization (BAO, Algorithm 4).
package active

import (
	"math"
	"math/rand"
	"sync"

	"repro/internal/linalg"
	"repro/internal/par"
	"repro/internal/space"
)

// tedWorkspace holds every buffer one TED pass needs, pooled so BTED's B+1
// passes over same-sized batches reuse one ~n²·8-byte Gram allocation (and
// the O(n)/O(m·n) side buffers) instead of allocating fresh ones per batch.
type tedWorkspace struct {
	K     *linalg.Matrix
	norms []float64 // residual squared column norms ‖K_t e_j‖²
	diag  []float64 // residual diagonal (K_t)_jj
	c     []float64 // current residual column K_t e_x
	w     []float64 // K_t c, the rank-1 norm-downdate direction
	d     []float64 // d_s = u_s·c, the per-downdate correction coefficients
	g     []float64 // Ut row of the current pick (u_s[best] for all s)
	u     []float64 // m x n flat; row s is the downdate vector u_s
	ut    []float64 // n x m flat transpose: row i is (u_0[i], u_1[i], ...)
	taken []bool
}

var tedPool = sync.Pool{New: func() any { return &tedWorkspace{K: linalg.NewMatrix(0, 0)} }}

func (ws *tedWorkspace) resize(n, m int) {
	grow := func(s []float64, want int) []float64 {
		if cap(s) < want {
			return make([]float64, want)
		}
		return s[:want]
	}
	ws.norms = grow(ws.norms, n)
	ws.diag = grow(ws.diag, n)
	ws.c = grow(ws.c, n)
	ws.w = grow(ws.w, n)
	ws.d = grow(ws.d, m)
	ws.g = grow(ws.g, m)
	ws.u = grow(ws.u, m*n)
	ws.ut = grow(ws.ut, n*m)
	if cap(ws.taken) < n {
		ws.taken = make([]bool, n)
	} else {
		ws.taken = ws.taken[:n]
		for i := range ws.taken {
			ws.taken[i] = false
		}
	}
}

// TED performs transductive experimental design (Algorithm 1): it greedily
// selects m points whose kernel columns have maximal residual energy,
// deflating the kernel matrix after each pick so later picks are diverse
// with respect to earlier ones. It returns the indices of the selected
// points in pick order. mu is the normalization coefficient of the paper;
// k is the kernel building K_VV.
//
// Points already selected keep a residual column norm of ~0 after the
// rank-1 downdate, so the same index is never picked twice. When m exceeds
// the candidate count, every index is returned.
//
// The implementation is the incremental form of Algorithm 1 (see DESIGN.md
// for the derivation): the Gram matrix K₀ is built once and never written
// again, each pick records its downdate direction u_t = c_t/√(denom_t), and
// the residual column norms and diagonal are downdated in O(n) from
// w = K_t·c_t instead of recomputing them over the full deflated matrix.
// Per pick that is one read-only mat-vec over K₀ (plus O(t·n) corrections
// from the stored u vectors) in place of Algorithm 1's write-back rank-1
// downdate followed by a full column-norm pass — algebraically identical,
// deterministic, and bit-identical for any worker count.
func TED(feats [][]float64, mu float64, m int, k linalg.Kernel) []int {
	return tedWithWorkers(feats, mu, m, k, par.Workers())
}

func tedWithWorkers(feats [][]float64, mu float64, m int, k linalg.Kernel, workers int) []int {
	n := len(feats)
	if n == 0 || m <= 0 {
		return nil
	}
	if m > n {
		m = n
	}
	ws := tedPool.Get().(*tedWorkspace)
	defer tedPool.Put(ws)
	ws.resize(n, m)
	linalg.GramMatrixInto(ws.K, feats, k, workers)
	K, norms, diag, c, w, taken := ws.K, ws.norms, ws.diag, ws.c, ws.w, ws.taken
	// Initial state: exact column norms (the same row-major accumulation as
	// ColNorms2) and the Gram diagonal.
	K.ColNorms2Into(norms)
	for j := 0; j < n; j++ {
		diag[j] = K.At(j, j)
	}

	selected := make([]int, 0, m)
	nd := 0 // downdate vectors recorded in ws.u (picks can skip theirs)
	for t := 0; t < m; t++ {
		best := -1
		bestScore := 0.0
		for j := 0; j < n; j++ {
			if taken[j] {
				continue
			}
			score := norms[j] / (diag[j] + mu)
			if best < 0 || score > bestScore {
				best = j
				bestScore = score
			}
		}
		if best < 0 {
			break
		}
		selected = append(selected, best)
		taken[best] = true
		if t == m-1 {
			break // the residual state has no further reader
		}
		// Non-PSD "kernels" (e.g. the paper-literal raw-distance matrix)
		// can drive the deflated diagonal non-positive; the downdate is
		// then numerically meaningless, so skip it — the point is already
		// marked taken and cannot be re-selected.
		denom := diag[best] + mu
		if denom <= 1e-12 {
			continue
		}

		// Residual column of the pick: c = K_t e_best, reconstructed from
		// the immutable K₀ row (K₀ is symmetric, so the row IS the column —
		// a contiguous read) minus the stored downdates. The transpose
		// layout ws.ut makes the per-element correction Σ_s u_s[i]·u_s[best]
		// a contiguous 8-lane dot over row i's downdate history.
		copy(c, K.Row(best))
		if nd > 0 {
			g := ws.g[:nd]
			copy(g, ws.ut[best*m:best*m+nd])
			for i := 0; i < n; i++ {
				c[i] -= linalg.LaneDot(ws.ut[i*m:i*m+nd], g)
			}
		}

		// w = K_t c = K₀c − Σ_s u_s (u_s·c): one masked read-only mat-vec
		// over K₀ (rows of already-taken points are dead — their norms are
		// never read again) plus O(t·n) corrections. The coefficients
		// d_s = u_s·c come from the row-major copy of the downdates; the
		// per-row corrections Σ_s u_s[j]·d_s from the transpose, fused into
		// the downdate pass below.
		K.MulVecMaskedInto(w, c, taken, workers)
		d := ws.d[:nd]
		for s := 0; s < nd; s++ {
			d[s] = linalg.LaneDot(ws.u[s*n:s*n+n], c)
		}
		S := linalg.LaneDot(c, c)

		// Record u_t = c/√denom (so K_{t+1} = K_t − u_t u_tᵀ) in both
		// layouts. The transpose write lands in column nd, past the [:nd]
		// prefixes the fused pass below reads.
		scale := 1 / math.Sqrt(denom)
		urow := ws.u[nd*n : nd*n+n]
		for i, v := range c {
			uv := v * scale
			urow[i] = uv
			ws.ut[i*m+nd] = uv
		}

		// Fused O(n·(1+nd)) downdate of the residual norms and diagonal:
		//   w_j          −= Σ_s u_s[j]·d_s   (finishing w = K_t c)
		//   ‖K_{t+1} e_j‖² = ‖K_t e_j‖² − (c_j/denom)·(2 w_j − (c_j/denom)·S)
		//   (K_{t+1})_jj   = (K_t)_jj − c_j·(c_j/denom)
		for j := 0; j < n; j++ {
			if taken[j] {
				continue
			}
			wj := w[j] - linalg.LaneDot(ws.ut[j*m:j*m+nd], d)
			a := c[j] / denom
			norms[j] -= a * (2*wj - a*S)
			diag[j] -= c[j] * a
		}
		nd++
	}
	return selected
}

// FeatureView selects how configurations are embedded for TED distances.
type FeatureView int

// Feature views for TED.
const (
	// ViewKnobValues embeds configs as standardized log-scaled knob values
	// (the default; matches the geometry the cost model sees).
	ViewKnobValues FeatureView = iota
	// ViewKnobIndices embeds configs as raw knob option indices (the
	// paper's literal Euclidean-distance space).
	ViewKnobIndices
)

// Embed maps configs into the chosen feature view, standardizing each
// dimension to zero mean and unit variance over the batch so no knob
// dominates the kernel.
func Embed(cfgs []space.Config, view FeatureView) [][]float64 {
	if len(cfgs) == 0 {
		return nil
	}
	raw := make([][]float64, len(cfgs))
	for i, c := range cfgs {
		if view == ViewKnobIndices {
			raw[i] = c.IndexVec()
		} else {
			raw[i] = c.Features()
		}
	}
	standardize(raw)
	return raw
}

// standardize normalizes columns in place to mean 0 / stddev 1 (constant
// columns become all-zero). All three passes walk the row-major [][]float64
// in row order — each column's accumulator still receives its terms in
// ascending row order, so the results are bit-identical to the textbook
// per-column loops while touching each cache line once per pass instead of
// once per dimension.
func standardize(X [][]float64) {
	if len(X) == 0 {
		return
	}
	d := len(X[0])
	n := float64(len(X))
	mean := make([]float64, d)
	for _, row := range X {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= n
	}
	varsum := make([]float64, d)
	for _, row := range X {
		for j, v := range row {
			dev := v - mean[j]
			varsum[j] += dev * dev
		}
	}
	scale := make([]float64, d)
	for j, v := range varsum {
		if v == 0 {
			scale[j] = 0 // constant column: collapse to exactly zero
		} else {
			scale[j] = 1 / math.Sqrt(v/n)
		}
	}
	for _, row := range X {
		for j, v := range row {
			row[j] = (v - mean[j]) * scale[j]
		}
	}
}

// TEDConfigs runs TED over a batch of configurations with the given view
// and kernel, returning the selected configs in pick order.
func TEDConfigs(cfgs []space.Config, mu float64, m int, view FeatureView, k linalg.Kernel, _ *rand.Rand) []space.Config {
	idx := TED(Embed(cfgs, view), mu, m, k)
	out := make([]space.Config, len(idx))
	for i, j := range idx {
		out[i] = cfgs[j]
	}
	return out
}
