package backend

import (
	"math"
	"strings"
	"testing"

	"repro/internal/hwsim"
	"repro/internal/record"
	"repro/internal/space"
	"repro/internal/tensor"
)

func testWorkload(t *testing.T) (tensor.Workload, *space.Space) {
	t.Helper()
	w := tensor.Conv2D(1, 32, 28, 28, 64, 3, 1, 1)
	sp, err := space.ForWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	return w, sp
}

func sameMeasurement(a, b hwsim.Measurement) bool {
	return a.Valid == b.Valid &&
		math.Float64bits(a.GFLOPS) == math.Float64bits(b.GFLOPS) &&
		math.Float64bits(a.TimeMS) == math.Float64bits(b.TimeMS)
}

func TestRegistryKnownDevices(t *testing.T) {
	names := Devices()
	if len(names) == 0 {
		t.Fatal("no registered devices")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("device list not sorted: %v", names)
		}
	}
	for _, name := range names {
		b, err := New(name, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if b.Name() != name {
			t.Fatalf("Name() = %q, want %q", b.Name(), name)
		}
		if !b.Seeded() {
			t.Fatalf("%s: simulator backend must report Seeded", name)
		}
		if b.Simulator() == nil {
			t.Fatalf("%s: nil simulator", name)
		}
	}
}

func TestRegistryUnknownDevice(t *testing.T) {
	_, err := New("tpu-v9", 1)
	if err == nil {
		t.Fatal("unknown device must error")
	}
	if !strings.Contains(err.Error(), "tpu-v9") {
		t.Fatalf("error should name the device: %v", err)
	}
}

func TestCacheServesIdenticalRepeats(t *testing.T) {
	w, sp := testWorkload(t)
	b, err := New("gtx1080ti", 3)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(b)
	c := sp.FromFlat(17)

	first := cache.MeasureSeeded(w, c, 99)
	again := cache.MeasureSeeded(w, c, 99)
	if !sameMeasurement(first, again) {
		t.Fatal("cached repeat differs from first measurement")
	}
	if cache.Misses() != 1 || cache.Hits() != 1 || cache.Len() != 1 {
		t.Fatalf("misses=%d hits=%d len=%d after one repeat", cache.Misses(), cache.Hits(), cache.Len())
	}

	// A different noise seed is a different measurement, not a hit.
	other := cache.MeasureSeeded(w, c, 100)
	if cache.Misses() != 2 {
		t.Fatalf("distinct seed must miss: misses=%d", cache.Misses())
	}
	if sameMeasurement(first, other) {
		t.Fatal("distinct noise seeds produced bitwise-equal noise (suspicious)")
	}
}

func TestCacheMatchesUncachedBackend(t *testing.T) {
	w, sp := testWorkload(t)
	raw, err := New("gtx1080ti", 7)
	if err != nil {
		t.Fatal(err)
	}
	cachedInner, err := New("gtx1080ti", 7)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(cachedInner)
	for i := uint64(0); i < 32; i++ {
		f := (i * 7) % 16 // repeats guaranteed
		c := sp.FromFlat(f)
		a := raw.MeasureSeeded(w, c, int64(f))
		b := cache.MeasureSeeded(w, c, int64(f))
		if !sameMeasurement(a, b) {
			t.Fatalf("flat %d: cache changed the observable measurement", f)
		}
	}
	if cache.Hits() == 0 {
		t.Fatal("repeat sweep produced no cache hits")
	}
	if cache.Misses()+cache.Hits() != 32 {
		t.Fatalf("accounting broken: %d+%d != 32", cache.Misses(), cache.Hits())
	}
}

func TestCacheUnseededPassThrough(t *testing.T) {
	w, sp := testWorkload(t)
	b, err := New("gtx1080ti", 5)
	if err != nil {
		t.Fatal(err)
	}
	counting := NewCounting(b)
	cache := NewCache(counting)
	c := sp.FromFlat(3)
	cache.Measure(w, c)
	cache.Measure(w, c)
	if cache.Hits() != 0 || cache.Len() != 0 {
		t.Fatal("shared-stream Measure must never be cached")
	}
	if counting.Calls() != 2 {
		t.Fatalf("pass-through lost calls: %d", counting.Calls())
	}
}

func TestCountingAccounts(t *testing.T) {
	w, sp := testWorkload(t)
	b, err := New("gtx1080ti", 9)
	if err != nil {
		t.Fatal(err)
	}
	counting := NewCounting(b)
	counting.Measure(w, sp.FromFlat(1))
	counting.MeasureSeeded(w, sp.FromFlat(2), 11)
	counting.MeasureSeeded(w, sp.FromFlat(3), 12)
	if counting.Calls() != 3 || counting.SeededCalls() != 2 {
		t.Fatalf("calls=%d seeded=%d", counting.Calls(), counting.SeededCalls())
	}
	if !counting.Seeded() {
		t.Fatal("counting must forward Seeded")
	}
}

func TestFlakySeededIsOrderIndependent(t *testing.T) {
	w, sp := testWorkload(t)
	b, err := New("gtx1080ti", 2)
	if err != nil {
		t.Fatal(err)
	}
	flaky := NewFlaky(b, 0.5, 1)
	// Forward sweep, then reverse sweep on a fresh wrapper: the injected
	// failures must land on the same (config, seed) pairs.
	forward := make([]bool, 32)
	for i := range forward {
		forward[i] = flaky.MeasureSeeded(w, sp.FromFlat(uint64(i)), int64(i)).Valid
	}
	b2, err := New("gtx1080ti", 2)
	if err != nil {
		t.Fatal(err)
	}
	flaky2 := NewFlaky(b2, 0.5, 1)
	for i := len(forward) - 1; i >= 0; i-- {
		if got := flaky2.MeasureSeeded(w, sp.FromFlat(uint64(i)), int64(i)).Valid; got != forward[i] {
			t.Fatalf("seeded failure injection depends on call order at %d", i)
		}
	}
	if flaky.Failures() == 0 || flaky.Failures() == len(forward) {
		t.Fatalf("failures=%d of %d; injection should be partial at p=0.5", flaky.Failures(), len(forward))
	}
	if flaky2.Failures() != flaky.Failures() {
		t.Fatalf("failure counts diverge: %d vs %d", flaky.Failures(), flaky2.Failures())
	}
}

func TestReplayServesLoggedMeasurements(t *testing.T) {
	w, sp := testWorkload(t)
	logged := sp.FromFlat(5)
	recs := []record.Record{
		{Task: "t", Workload: w.Key(), Tuner: "x", Step: 1, Config: logged.Index, GFLOPS: 123.5, Valid: true},
		{Task: "t", Workload: "unknown-workload", Tuner: "x", Step: 2, Config: logged.Index, GFLOPS: 1, Valid: true},
	}
	spaces := map[string]*space.Space{w.Key(): sp}

	replayOnly := NewReplay(recs, spaces, nil)
	if got := replayOnly.MeasureSeeded(w, logged, 77); !got.Valid || got.GFLOPS != 123.5 {
		t.Fatalf("logged measurement not replayed: %+v", got)
	}
	if got := replayOnly.Measure(w, sp.FromFlat(6)); got.Valid {
		t.Fatal("replay-only miss must be invalid")
	}
	if replayOnly.Hits() != 1 || replayOnly.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", replayOnly.Hits(), replayOnly.Misses())
	}
	if _, _, err := replayOnly.NetworkLatency(nil, 10); err == nil {
		t.Fatal("replay-only NetworkLatency must error")
	}

	inner, err := New("gtx1080ti", 4)
	if err != nil {
		t.Fatal(err)
	}
	replay := NewReplay(recs, spaces, inner)
	if got := replay.MeasureSeeded(w, sp.FromFlat(6), 8); !got.Valid {
		t.Fatalf("miss must forward to inner backend: %+v", got)
	}
	if !strings.HasPrefix(replay.Name(), "replay(") {
		t.Fatalf("name = %q", replay.Name())
	}
}
