package backend

import (
	"bytes"
	"testing"

	"repro/internal/record"
	"repro/internal/space"
	"repro/internal/tensor"
)

// TestReplayFromTruncatedLog: a record log torn mid-line by a crash still
// feeds Replay with everything the StreamWriter had fully flushed — the
// resume path loses only the one measurement that never hit the disk.
func TestReplayFromTruncatedLog(t *testing.T) {
	w := tensor.Conv2D(1, 8, 8, 8, 16, 3, 1, 1)
	sp, err := space.ForWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []space.Config{sp.FromFlat(1), sp.FromFlat(2), sp.FromFlat(3)}
	var buf bytes.Buffer
	sw := record.NewStreamWriter(&buf)
	for i, c := range cfgs {
		if err := sw.Append(record.Record{Task: "t", Workload: w.Key(), Tuner: "random",
			Step: i + 1, Config: c.Index, GFLOPS: float64(10 * (i + 1)), Valid: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}

	torn := buf.Bytes()[:buf.Len()-7] // crash mid-way through the last line
	recs, err := record.Read(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("torn log should load its prefix: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records, want the 2-record prefix", len(recs))
	}

	rp := NewReplay(recs, map[string]*space.Space{w.Key(): sp}, nil)
	if mr := rp.Measure(w, cfgs[0]); !mr.Valid || mr.GFLOPS != 10 {
		t.Fatalf("flushed record not replayed: %+v", mr)
	}
	if mr := rp.Measure(w, cfgs[2]); mr.Valid {
		t.Fatalf("the torn record should be a miss, got %+v", mr)
	}
}
