package backend

import (
	"sync"

	"repro/internal/hwsim"
	"repro/internal/space"
	"repro/internal/tensor"
)

// DefaultSharedCacheCapacity bounds the fleet-wide measurement memo. One
// entry is a cacheKey plus a Measurement (~100 bytes), so the default caps
// the cache near 100 MB — large enough to hold every measurement of a
// multi-job fleet over a handful of (model, device) pairs, small enough
// that a long-lived daemon cannot grow without bound.
const DefaultSharedCacheCapacity = 1 << 20

// SharedCache is the cross-job measurement memo of a serving fleet: one
// bounded, concurrency-safe table of seeded measurements shared by every
// backend stack the daemon builds. Because MeasureSeeded is pure in
// (device, workload, config, noiseSeed) — the device name keys a fixed
// registry parameterization, and the noise draw comes only from the
// explicit seed — a hit is bit-identical to re-simulating, no matter which
// job, session, or daemon life populated the entry. The cache therefore
// changes how many raw simulator calls a fleet issues, never what any
// single job observes: two identical (spec, seed) jobs produce
// byte-identical record streams whether they share a cache, race on one,
// or run cold.
//
// Eviction is deterministic FIFO in insertion order: when the table is
// full the oldest entry leaves first. Eviction can only turn a future hit
// back into a miss — both return the same bits — so the policy affects
// the hit rate, not any stream.
type SharedCache struct {
	mu        sync.Mutex
	m         map[cacheKey]hwsim.Measurement
	fifo      []cacheKey // insertion order; [head:] are live
	head      int
	capacity  int
	hits      int64
	misses    int64
	evictions int64
}

// SharedCacheStats is a point-in-time snapshot of the memo's accounting.
type SharedCacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
}

// HitRate returns hits / (hits + misses), 0 before any lookup.
func (s SharedCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewSharedCache builds an empty memo bounded to capacity entries
// (capacity <= 0 uses DefaultSharedCacheCapacity).
func NewSharedCache(capacity int) *SharedCache {
	if capacity <= 0 {
		capacity = DefaultSharedCacheCapacity
	}
	return &SharedCache{m: make(map[cacheKey]hwsim.Measurement), capacity: capacity}
}

// Stats snapshots the memo's accounting.
func (s *SharedCache) Stats() SharedCacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SharedCacheStats{
		Hits: s.hits, Misses: s.misses, Evictions: s.evictions,
		Entries: len(s.m), Capacity: s.capacity,
	}
}

// lookup serves one key, counting the outcome.
func (s *SharedCache) lookup(k cacheKey) (hwsim.Measurement, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mr, ok := s.m[k]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	return mr, ok
}

// store inserts one entry, evicting FIFO past capacity. Concurrent misses
// on the same key both computed the same pure result, so the second store
// overwrites with identical bits and adds no FIFO slot.
func (s *SharedCache) store(k cacheKey, mr hwsim.Measurement) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[k]; ok {
		s.m[k] = mr
		return
	}
	for len(s.m) >= s.capacity {
		delete(s.m, s.fifo[s.head])
		s.head++
		s.evictions++
	}
	// Compact the drained prefix once it dominates the ring, keeping the
	// amortized cost of an insert O(1).
	if s.head > len(s.fifo)/2 && s.head > 1024 {
		s.fifo = append(s.fifo[:0], s.fifo[s.head:]...)
		s.head = 0
	}
	s.fifo = append(s.fifo, k)
	s.m[k] = mr
}

// Shared layers a SharedCache over an inner backend. Unlike Cache it is a
// view over fleet-wide state: many Shared instances (one per job) consult
// and populate the same memo. It deliberately keeps the inner backend's
// Name — the wrapper must be observationally invisible, and backend names
// key cache entries and error messages alike.
type Shared struct {
	inner Backend
	sc    *SharedCache
}

// WithShared wraps inner with the fleet memo; a nil cache returns inner
// unchanged, so callers can thread an optional cache without branching.
func WithShared(inner Backend, sc *SharedCache) Backend {
	if sc == nil {
		return inner
	}
	return &Shared{inner: inner, sc: sc}
}

// Name implements Backend. It is the inner name, not "shared(...)": jobs
// running with and without the fleet cache must be indistinguishable.
func (s *Shared) Name() string { return s.inner.Name() }

// Seeded implements Backend.
func (s *Shared) Seeded() bool { return s.inner.Seeded() }

// Measure implements Backend: shared-stream measurements are order-
// dependent and therefore uncacheable; they pass straight through.
func (s *Shared) Measure(w tensor.Workload, cfg space.Config) hwsim.Measurement {
	return s.inner.Measure(w, cfg)
}

// MeasureSeeded implements Backend, serving repeats — from this job or any
// other job on the same device — out of the fleet memo.
func (s *Shared) MeasureSeeded(w tensor.Workload, cfg space.Config, noiseSeed int64) hwsim.Measurement {
	key := cacheKey{device: s.inner.Name(), workload: w.Key(), flat: cfg.Flat(), seed: noiseSeed}
	if mr, ok := s.sc.lookup(key); ok {
		return mr
	}
	// Measure outside the lock: a concurrent miss on the same key computes
	// the same pure result, and the duplicate store is an identical no-op.
	mr := s.inner.MeasureSeeded(w, cfg, noiseSeed)
	s.sc.store(key, mr)
	return mr
}

// NetworkLatency implements Backend.
func (s *Shared) NetworkLatency(deps []hwsim.Deployment, runs int) (float64, float64, error) {
	return s.inner.NetworkLatency(deps, runs)
}
