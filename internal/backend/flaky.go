package backend

import (
	"math/rand"
	"sync"

	"repro/internal/hwsim"
	"repro/internal/space"
	"repro/internal/tensor"
)

// Flaky wraps a backend and makes a fraction of measurements fail
// spuriously (as real measurement farms do: board resets, driver timeouts,
// contention). Tuners must absorb these as invalid results and keep
// searching; the failure-injection tests rely on this wrapper.
type Flaky struct {
	inner Backend
	// FailProb is the probability a measurement is dropped.
	FailProb float64

	mu    sync.Mutex
	rng   *rand.Rand
	fails int
}

// NewFlaky wraps inner with the given failure probability.
func NewFlaky(inner Backend, failProb float64, seed int64) *Flaky {
	return &Flaky{inner: inner, FailProb: failProb, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Backend.
func (f *Flaky) Name() string { return "flaky(" + f.inner.Name() + ")" }

// Seeded implements Backend.
func (f *Flaky) Seeded() bool { return f.inner.Seeded() }

// Measure implements Backend: the failure coin comes from the wrapper's
// shared stream, so it depends on global measurement order (like the inner
// unseeded path).
func (f *Flaky) Measure(w tensor.Workload, c space.Config) hwsim.Measurement {
	f.mu.Lock()
	fail := f.rng.Float64() < f.FailProb
	if fail {
		f.fails++
	}
	f.mu.Unlock()
	if fail {
		return hwsim.Measurement{Valid: false, Error: "injected measurement failure"}
	}
	return f.inner.Measure(w, c)
}

// MeasureSeeded implements Backend: the failure decision derives from the
// per-call seed (not the wrapper's shared stream), so injection is order-
// and worker-count-independent. The seed is remixed before the draw so the
// failure coin is decorrelated from the measurement-noise draw that shares
// the same seed downstream.
func (f *Flaky) MeasureSeeded(w tensor.Workload, c space.Config, noiseSeed int64) hwsim.Measurement {
	if rand.New(rand.NewSource(noiseSeed^0x5DEECE66D)).Float64() < f.FailProb {
		f.mu.Lock()
		f.fails++
		f.mu.Unlock()
		return hwsim.Measurement{Valid: false, Error: "injected measurement failure"}
	}
	return f.inner.MeasureSeeded(w, c, noiseSeed)
}

// NetworkLatency implements Backend.
func (f *Flaky) NetworkLatency(deps []hwsim.Deployment, runs int) (float64, float64, error) {
	return f.inner.NetworkLatency(deps, runs)
}

// Failures returns how many measurements were dropped.
func (f *Flaky) Failures() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fails
}
