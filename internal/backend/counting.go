package backend

import (
	"sync/atomic"

	"repro/internal/hwsim"
	"repro/internal/space"
	"repro/internal/tensor"
)

// Counting wraps a backend and counts every raw measurement call that
// reaches it. Layered *under* a Cache it counts only cache misses, which is
// how the tests assert that memoization issues strictly fewer simulator
// calls; layered on top it counts what the tuner asked for.
//
// Counting is safe for concurrent use.
type Counting struct {
	inner  Backend
	calls  atomic.Int64
	seeded atomic.Int64
}

// NewCounting wraps inner with call counters.
func NewCounting(inner Backend) *Counting {
	return &Counting{inner: inner}
}

// Name implements Backend.
func (c *Counting) Name() string { return "counting(" + c.inner.Name() + ")" }

// Seeded implements Backend.
func (c *Counting) Seeded() bool { return c.inner.Seeded() }

// Measure implements Backend.
func (c *Counting) Measure(w tensor.Workload, cfg space.Config) hwsim.Measurement {
	c.calls.Add(1)
	return c.inner.Measure(w, cfg)
}

// MeasureSeeded implements Backend.
func (c *Counting) MeasureSeeded(w tensor.Workload, cfg space.Config, noiseSeed int64) hwsim.Measurement {
	c.calls.Add(1)
	c.seeded.Add(1)
	return c.inner.MeasureSeeded(w, cfg, noiseSeed)
}

// NetworkLatency implements Backend.
func (c *Counting) NetworkLatency(deps []hwsim.Deployment, runs int) (float64, float64, error) {
	return c.inner.NetworkLatency(deps, runs)
}

// Calls returns the total number of Measure plus MeasureSeeded calls.
func (c *Counting) Calls() int64 { return c.calls.Load() }

// SeededCalls returns the number of MeasureSeeded calls.
func (c *Counting) SeededCalls() int64 { return c.seeded.Load() }
