// Package backend defines the measurement environment of a tuning session
// as a composable interface layer. A Backend is what a tuner deploys
// configurations to: the base implementation adapts *hwsim.Simulator under
// a registry of named devices, and wrappers layer orthogonal behaviour on
// top — deterministic memoization (Cache), raw-call accounting (Counting),
// failure injection (Flaky), and record-log replay (Replay) — without the
// tuners knowing which stack they talk to.
package backend

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/hwsim"
	"repro/internal/space"
	"repro/internal/tensor"
)

// Backend is the deployment environment a tuning session measures against.
//
// MeasureSeeded is the contract of the deterministic parallel measurement
// engine: when Seeded reports true, it must return a result that depends
// only on (workload, config, noiseSeed) — never on call order or the
// calling goroutine — and must be safe for concurrent use. When Seeded
// reports false only Measure is meaningful and callers must keep the
// measurement order serial (the noise stream is shared).
type Backend interface {
	// Name identifies the backend stack, e.g. "gtx1080ti" or
	// "cache(gtx1080ti)".
	Name() string
	// Seeded reports whether MeasureSeeded is order-independent and
	// concurrency-safe.
	Seeded() bool
	// Measure deploys (workload, config) once, drawing run-to-run noise
	// from the backend's shared stream.
	Measure(w tensor.Workload, c space.Config) hwsim.Measurement
	// MeasureSeeded deploys (workload, config) once with the noise draw
	// derived from the explicit per-call seed.
	MeasureSeeded(w tensor.Workload, c space.Config, noiseSeed int64) hwsim.Measurement
	// NetworkLatency simulates runs end-to-end inferences of a deployed
	// model (the Table I metric); wrappers forward it to the base backend.
	NetworkLatency(deps []hwsim.Deployment, runs int) (meanMS, variance float64, err error)
}

// Sim adapts *hwsim.Simulator to Backend under a device name. It is the
// base of every backend stack in this repository.
type Sim struct {
	device string
	sim    *hwsim.Simulator
}

// New builds a simulator backend for a registered device name (see
// Devices) with a deterministic measurement-noise stream.
func New(device string, seed int64) (*Sim, error) {
	dev, ok := hwsim.DeviceByName(device)
	if !ok {
		return nil, fmt.Errorf("backend: unknown device %q (have: %s)", device, strings.Join(Devices(), ", "))
	}
	return &Sim{device: device, sim: hwsim.NewSimulator(dev, seed)}, nil
}

// Wrap adapts an existing simulator under the given name, for callers that
// need explicit estimator settings (ablations) or direct simulator access.
func Wrap(name string, sim *hwsim.Simulator) *Sim {
	return &Sim{device: name, sim: sim}
}

// Devices lists the registered device names in sorted order.
func Devices() []string {
	m := hwsim.Devices()
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name) //lint:ignore maprange sorted on the next line
	}
	sort.Strings(out)
	return out
}

// Name implements Backend.
func (s *Sim) Name() string { return s.device }

// Seeded implements Backend: the simulator's MeasureSeeded is pure in
// (workload, config, seed).
func (s *Sim) Seeded() bool { return true }

// Simulator exposes the underlying simulator (measurement counts, the
// deterministic estimator for breakdowns).
func (s *Sim) Simulator() *hwsim.Simulator { return s.sim }

// Measure implements Backend.
func (s *Sim) Measure(w tensor.Workload, c space.Config) hwsim.Measurement {
	return s.sim.Measure(w, c)
}

// MeasureSeeded implements Backend.
func (s *Sim) MeasureSeeded(w tensor.Workload, c space.Config, noiseSeed int64) hwsim.Measurement {
	return s.sim.MeasureSeeded(w, c, noiseSeed)
}

// NetworkLatency implements Backend.
func (s *Sim) NetworkLatency(deps []hwsim.Deployment, runs int) (float64, float64, error) {
	return s.sim.NetworkLatency(deps, runs)
}
