package backend

import (
	"sync"

	"repro/internal/hwsim"
	"repro/internal/space"
	"repro/internal/tensor"
)

// cacheKey identifies one seeded measurement. The device name is part of
// the key so a cache accidentally shared across backends can never serve a
// measurement from the wrong device.
type cacheKey struct {
	device   string
	workload string
	flat     uint64
	seed     int64
}

// Cache memoizes the seeded measurements of an inner backend. Because
// MeasureSeeded is pure in (workload, config, noiseSeed), serving a repeat
// call from the cache is bit-identical to re-measuring — the cache changes
// how many raw simulator calls are issued (re-measure-top-K, multi-trial
// comparison grids) but never what any caller observes. Unseeded Measure
// calls depend on the shared noise stream and pass through uncached.
//
// Cache is safe for concurrent use.
type Cache struct {
	inner Backend

	mu     sync.Mutex
	m      map[cacheKey]hwsim.Measurement
	hits   int64
	misses int64
}

// NewCache wraps inner with a seeded-measurement memo.
func NewCache(inner Backend) *Cache {
	return &Cache{inner: inner, m: make(map[cacheKey]hwsim.Measurement)}
}

// Name implements Backend.
func (c *Cache) Name() string { return "cache(" + c.inner.Name() + ")" }

// Seeded implements Backend.
func (c *Cache) Seeded() bool { return c.inner.Seeded() }

// Measure implements Backend: shared-stream measurements are
// order-dependent and therefore uncacheable; they pass straight through.
func (c *Cache) Measure(w tensor.Workload, cfg space.Config) hwsim.Measurement {
	return c.inner.Measure(w, cfg)
}

// MeasureSeeded implements Backend, serving repeats from the memo.
func (c *Cache) MeasureSeeded(w tensor.Workload, cfg space.Config, noiseSeed int64) hwsim.Measurement {
	key := cacheKey{device: c.inner.Name(), workload: w.Key(), flat: cfg.Flat(), seed: noiseSeed}
	c.mu.Lock()
	if mr, ok := c.m[key]; ok {
		c.hits++
		c.mu.Unlock()
		return mr
	}
	c.misses++
	c.mu.Unlock()
	// Measure outside the lock: concurrent misses on the same key both
	// compute the same pure result, and the second store is a no-op.
	mr := c.inner.MeasureSeeded(w, cfg, noiseSeed)
	c.mu.Lock()
	c.m[key] = mr
	c.mu.Unlock()
	return mr
}

// NetworkLatency implements Backend.
func (c *Cache) NetworkLatency(deps []hwsim.Deployment, runs int) (float64, float64, error) {
	return c.inner.NetworkLatency(deps, runs)
}

// Hits returns how many seeded measurements were served from the memo.
func (c *Cache) Hits() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Misses returns how many seeded measurements went through to the inner
// backend.
func (c *Cache) Misses() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.misses
}

// Len returns the number of memoized measurements.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
