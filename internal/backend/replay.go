package backend

import (
	"errors"
	"sync"

	"repro/internal/hwsim"
	"repro/internal/record"
	"repro/internal/space"
	"repro/internal/tensor"
)

// errReplayNoInner reports an end-to-end latency request against a
// replay-only backend: logs carry per-measurement throughput, not the
// run-to-run noise model latency simulation needs.
var errReplayNoInner = errors.New("backend: replay-only backend cannot simulate end-to-end latency")

// replayKey identifies a logged measurement: logs carry no noise seed, so a
// replayed configuration returns the logged value for every seed.
type replayKey struct {
	workload string
	flat     uint64
}

// Replay serves measurements from a previously written record log, turning
// resume into just another backend layer: a measurement that is in the log
// costs nothing and returns exactly what was logged, and anything else
// forwards to the inner backend (or fails as unmeasured when there is
// none). The last log entry for a (workload, config) pair wins, matching
// how a resumed run would overwrite its knowledge.
//
// Replay is safe for concurrent use.
type Replay struct {
	inner Backend // may be nil: replay-only, misses fail

	mu     sync.Mutex
	m      map[replayKey]hwsim.Measurement
	spaces map[string]*space.Space
	hits   int64
	misses int64
}

// NewReplay indexes the records for the given tasks' spaces. Records whose
// config does not fit any provided space are skipped. inner may be nil.
func NewReplay(recs []record.Record, spaces map[string]*space.Space, inner Backend) *Replay {
	r := &Replay{inner: inner, m: make(map[replayKey]hwsim.Measurement, len(recs)), spaces: spaces}
	for _, rec := range recs {
		sp, ok := spaces[rec.Workload]
		if !ok {
			continue
		}
		cfg, err := rec.ToConfig(sp)
		if err != nil {
			continue
		}
		mr := hwsim.Measurement{Valid: rec.Valid, GFLOPS: rec.GFLOPS}
		if !rec.Valid {
			mr.Error = "replayed invalid measurement"
		}
		r.m[replayKey{workload: rec.Workload, flat: cfg.Flat()}] = mr
	}
	return r
}

// Name implements Backend.
func (r *Replay) Name() string {
	if r.inner == nil {
		return "replay"
	}
	return "replay(" + r.inner.Name() + ")"
}

// Seeded implements Backend: replayed values are position-independent, and
// misses follow the inner backend's contract (a replay-only backend is
// trivially order-independent).
func (r *Replay) Seeded() bool { return r.inner == nil || r.inner.Seeded() }

// lookup returns the logged measurement, reconstructing TimeMS from the
// logged throughput so replayed measurements are internally consistent.
func (r *Replay) lookup(w tensor.Workload, c space.Config) (hwsim.Measurement, bool) {
	r.mu.Lock()
	mr, ok := r.m[replayKey{workload: w.Key(), flat: c.Flat()}]
	if ok {
		r.hits++
	} else {
		r.misses++
	}
	r.mu.Unlock()
	if ok && mr.Valid && mr.GFLOPS > 0 {
		mr.TimeMS = float64(w.FLOPs()) / (mr.GFLOPS * 1e6)
	}
	return mr, ok
}

// Measure implements Backend.
func (r *Replay) Measure(w tensor.Workload, c space.Config) hwsim.Measurement {
	if mr, ok := r.lookup(w, c); ok {
		return mr
	}
	if r.inner == nil {
		return hwsim.Measurement{Valid: false, Error: "replay: configuration not in record log"}
	}
	return r.inner.Measure(w, c)
}

// MeasureSeeded implements Backend.
func (r *Replay) MeasureSeeded(w tensor.Workload, c space.Config, noiseSeed int64) hwsim.Measurement {
	if mr, ok := r.lookup(w, c); ok {
		return mr
	}
	if r.inner == nil {
		return hwsim.Measurement{Valid: false, Error: "replay: configuration not in record log"}
	}
	return r.inner.MeasureSeeded(w, c, noiseSeed)
}

// NetworkLatency implements Backend. A replay-only backend cannot simulate
// end-to-end runs.
func (r *Replay) NetworkLatency(deps []hwsim.Deployment, runs int) (float64, float64, error) {
	if r.inner == nil {
		return 0, 0, errReplayNoInner
	}
	return r.inner.NetworkLatency(deps, runs)
}

// Hits returns how many measurements were served from the log.
func (r *Replay) Hits() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits
}

// Misses returns how many measurements were not in the log.
func (r *Replay) Misses() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.misses
}
