package backend

import (
	"sync"
	"testing"
)

// TestSharedCacheCrossBackendHits is the cross-job reuse contract: two
// independent backend stacks (two jobs) over the same device share one
// memo, the second stack's sweep is served entirely from the first's
// misses, and every served measurement is bit-identical to what a cold
// backend returns.
func TestSharedCacheCrossBackendHits(t *testing.T) {
	w, sp := testWorkload(t)
	sc := NewSharedCache(0)

	jobA, err := New("gtx1080ti", 11)
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := New("gtx1080ti", 11)
	if err != nil {
		t.Fatal(err)
	}
	sharedA := WithShared(jobA, sc)
	sharedB := WithShared(jobB, sc)
	cold, err := New("gtx1080ti", 11)
	if err != nil {
		t.Fatal(err)
	}

	for i := uint64(0); i < 24; i++ {
		sharedA.MeasureSeeded(w, sp.FromFlat(i), int64(i))
	}
	for i := uint64(0); i < 24; i++ {
		got := sharedB.MeasureSeeded(w, sp.FromFlat(i), int64(i))
		want := cold.MeasureSeeded(w, sp.FromFlat(i), int64(i))
		if !sameMeasurement(got, want) {
			t.Fatalf("flat %d: shared hit differs from cold measurement", i)
		}
	}
	if n := jobB.Simulator().MeasureCount(); n != 0 {
		t.Fatalf("job B issued %d raw simulator calls; the fleet memo should have served all 24", n)
	}
	st := sc.Stats()
	if st.Hits != 24 || st.Misses != 24 || st.Entries != 24 {
		t.Fatalf("stats = %+v, want 24 hits / 24 misses / 24 entries", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
}

// TestSharedCacheKeyedByDevice proves a fleet memo spanning devices can
// never serve a measurement from the wrong one: same workload, same
// config, same seed, different device names are distinct entries.
func TestSharedCacheKeyedByDevice(t *testing.T) {
	w, sp := testWorkload(t)
	sc := NewSharedCache(0)
	devices := Devices()
	if len(devices) < 2 {
		t.Skip("needs two registered devices")
	}
	c := sp.FromFlat(9)
	var first []float64
	for _, name := range devices[:2] {
		b, err := New(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		mr := WithShared(b, sc).MeasureSeeded(w, c, 42)
		first = append(first, mr.TimeMS)
	}
	if st := sc.Stats(); st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("cross-device lookups must not collide: %+v", st)
	}
	_ = first
}

// TestSharedCacheEvictionFIFO fills a capacity-4 memo and checks the
// oldest insertions leave first, the bound holds, and an evicted entry
// re-misses (never a wrong value).
func TestSharedCacheEvictionFIFO(t *testing.T) {
	w, sp := testWorkload(t)
	sc := NewSharedCache(4)
	b, err := New("gtx1080ti", 13)
	if err != nil {
		t.Fatal(err)
	}
	sh := WithShared(b, sc)

	for i := uint64(0); i < 6; i++ { // inserts 0..5; capacity 4 evicts 0 and 1
		sh.MeasureSeeded(w, sp.FromFlat(i), int64(i))
	}
	st := sc.Stats()
	if st.Entries != 4 || st.Evictions != 2 {
		t.Fatalf("after 6 inserts at cap 4: %+v", st)
	}
	// 2..5 are resident; 0 was evicted first.
	sh.MeasureSeeded(w, sp.FromFlat(5), 5)
	if got := sc.Stats(); got.Hits != 1 {
		t.Fatalf("resident entry missed: %+v", got)
	}
	want := b.MeasureSeeded(w, sp.FromFlat(0), 0)
	got := sh.MeasureSeeded(w, sp.FromFlat(0), 0)
	if !sameMeasurement(want, got) {
		t.Fatal("re-measured evicted entry differs")
	}
	if st := sc.Stats(); st.Misses != 7 || st.Entries != 4 {
		t.Fatalf("evicted entry should re-miss and re-insert within the bound: %+v", st)
	}
}

// TestSharedCacheUnseededPassThrough: shared-stream measurements depend on
// call order and must never enter the fleet memo.
func TestSharedCacheUnseededPassThrough(t *testing.T) {
	w, sp := testWorkload(t)
	sc := NewSharedCache(0)
	b, err := New("gtx1080ti", 5)
	if err != nil {
		t.Fatal(err)
	}
	counting := NewCounting(b)
	sh := WithShared(counting, sc)
	sh.Measure(w, sp.FromFlat(3))
	sh.Measure(w, sp.FromFlat(3))
	if st := sc.Stats(); st.Entries != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("unseeded Measure touched the memo: %+v", st)
	}
	if counting.Calls() != 2 {
		t.Fatalf("pass-through lost calls: %d", counting.Calls())
	}
	if sh.Name() != counting.Name() {
		t.Fatalf("Shared must keep the inner name, got %q", sh.Name())
	}
	if WithShared(b, nil) != Backend(b) {
		t.Fatal("nil cache must return the inner backend unchanged")
	}
}

// TestSharedCacheConcurrent hammers one memo from many goroutines under
// the race detector: every returned measurement must equal the cold
// backend's, no matter who populated the entry.
func TestSharedCacheConcurrent(t *testing.T) {
	w, sp := testWorkload(t)
	sc := NewSharedCache(0)
	cold, err := New("gtx1080ti", 17)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 16)
	for i := range want {
		want[i] = cold.MeasureSeeded(w, sp.FromFlat(uint64(i)), int64(i)).TimeMS
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, err := New("gtx1080ti", 17)
			if err != nil {
				errs <- err.Error()
				return
			}
			sh := WithShared(b, sc)
			for i := 0; i < 16; i++ {
				got := sh.MeasureSeeded(w, sp.FromFlat(uint64(i)), int64(i)).TimeMS
				if got != want[i] {
					errs <- "concurrent shared measurement diverged from cold backend"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if st := sc.Stats(); st.Entries != 16 {
		t.Fatalf("entries = %d, want 16", st.Entries)
	}
}
