package cluster

import (
	"math/rand"
	"testing"
)

// blobs makes three well-separated gaussian clusters of 20 points each.
func blobs(seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{{0, 0}, {20, 0}, {0, 20}}
	var pts [][]float64
	var truth []int
	for ci, c := range centers {
		for i := 0; i < 20; i++ {
			pts = append(pts, []float64{c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64()})
			truth = append(truth, ci)
		}
	}
	return pts, truth
}

func TestKMeansRecoversBlobs(t *testing.T) {
	pts, truth := blobs(1)
	rng := rand.New(rand.NewSource(2))
	res, err := KMeans(pts, 3, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("centroids = %d", len(res.Centroids))
	}
	// Every ground-truth cluster must map to exactly one k-means cluster.
	mapping := map[int]map[int]int{}
	for i, a := range res.Assign {
		if mapping[truth[i]] == nil {
			mapping[truth[i]] = map[int]int{}
		}
		mapping[truth[i]][a]++
	}
	for tc, m := range mapping {
		if len(m) != 1 {
			t.Fatalf("true cluster %d split across %d k-means clusters", tc, len(m))
		}
	}
	if res.Inertia <= 0 {
		t.Fatal("inertia should be positive for noisy blobs")
	}
	if res.Iters < 1 {
		t.Fatal("no iterations recorded")
	}
}

func TestKMeansValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := KMeans(nil, 2, 10, rng); err == nil {
		t.Fatal("empty points should error")
	}
	if _, err := KMeans([][]float64{{1}}, 0, 10, rng); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := KMeans([][]float64{{1}, {1, 2}}, 1, 10, rng); err == nil {
		t.Fatal("ragged points should error")
	}
}

func TestKMeansKClampedToN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := [][]float64{{0}, {10}}
	res, err := KMeans(pts, 10, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 2 {
		t.Fatalf("k should clamp to n: %d", len(res.Centroids))
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := [][]float64{{5, 5}, {5, 5}, {5, 5}, {5, 5}}
	res, err := KMeans(pts, 2, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Fatalf("identical points inertia %v", res.Inertia)
	}
}

func TestRepresentativesAreClusterMembers(t *testing.T) {
	pts, _ := blobs(5)
	rng := rand.New(rand.NewSource(6))
	res, err := KMeans(pts, 3, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	reps := res.Representatives(pts)
	if len(reps) != 3 {
		t.Fatalf("reps = %d", len(reps))
	}
	seen := map[int]bool{}
	for _, i := range reps {
		if i < 0 || i >= len(pts) {
			t.Fatalf("rep index %d out of range", i)
		}
		c := res.Assign[i]
		if seen[c] {
			t.Fatal("two representatives from one cluster")
		}
		seen[c] = true
	}
}

func TestKMeansDeterministicWithSeed(t *testing.T) {
	pts, _ := blobs(7)
	a, err := KMeans(pts, 3, 50, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(pts, 3, 50, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed must give same clustering")
		}
	}
}
