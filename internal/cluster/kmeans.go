// Package cluster implements k-means clustering with k-means++ seeding.
// It backs the CHAMELEON-style adaptive-sampling baseline, which clusters a
// surrogate-proposed candidate batch and measures only cluster
// representatives to cut the number of expensive on-chip measurements.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
)

// Result describes a clustering: per-point assignment and the centroids.
type Result struct {
	Assign    []int       // len == #points; cluster index per point
	Centroids [][]float64 // len == K
	Inertia   float64     // sum of squared distances to assigned centroids
	Iters     int         // Lloyd iterations performed
}

// KMeans clusters points into k groups using k-means++ seeding and Lloyd
// iterations until convergence or maxIters. It returns an error for empty
// input or non-positive k; k is clamped to the number of points.
func KMeans(points [][]float64, k, maxIters int, rng *rand.Rand) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	if k <= 0 {
		return nil, fmt.Errorf("cluster: k must be positive, got %d", k)
	}
	if k > n {
		k = n
	}
	if maxIters <= 0 {
		maxIters = 50
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), dim)
		}
	}

	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, n)
	counts := make([]int, k)
	res := &Result{}
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := dist2(p, cent); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best || iter == 0 {
				changed = changed || assign[i] != best
				assign[i] = best
			}
		}
		res.Iters = iter + 1
		if iter > 0 && !changed {
			break
		}
		// Recompute centroids.
		for c := range centroids {
			for d := 0; d < dim; d++ {
				centroids[c][d] = 0
			}
			counts[c] = 0
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d, v := range p {
				centroids[c][d] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid, the standard fix for collapse.
				far, farD := 0, -1.0
				for i, p := range points {
					if d := dist2(p, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(centroids[c], points[far])
				assign[far] = c
				continue
			}
			inv := 1 / float64(counts[c])
			for d := range centroids[c] {
				centroids[c][d] *= inv
			}
		}
	}

	res.Assign = assign
	res.Centroids = centroids
	for i, p := range points {
		res.Inertia += dist2(p, centroids[assign[i]])
	}
	return res, nil
}

// Representatives returns, for each cluster, the index of the member
// closest to its centroid — the points a measurement-thrifty tuner
// actually deploys.
func (r *Result) Representatives(points [][]float64) []int {
	k := len(r.Centroids)
	best := make([]int, k)
	bestD := make([]float64, k)
	for c := range best {
		best[c] = -1
		bestD[c] = math.Inf(1)
	}
	for i, p := range points {
		c := r.Assign[i]
		if d := dist2(p, r.Centroids[c]); d < bestD[c] {
			best[c] = i
			bestD[c] = d
		}
	}
	out := best[:0]
	for _, i := range best {
		if i >= 0 {
			out = append(out, i)
		}
	}
	return out
}

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	dim := len(points[0])
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, append([]float64(nil), points[first]...))
	d2 := make([]float64, n)
	for i, p := range points {
		d2[i] = dist2(p, centroids[0])
	}
	for len(centroids) < k {
		total := 0.0
		for _, d := range d2 {
			total += d
		}
		var pick int
		if total == 0 {
			pick = rng.Intn(n) // all points coincide with some centroid
		} else {
			r := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, d := range d2 {
				acc += d
				if acc >= r {
					pick = i
					break
				}
			}
		}
		c := append([]float64(nil), points[pick]...)
		centroids = append(centroids, c)
		for i, p := range points {
			if d := dist2(p, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	// Pad dimension-checked centroids (defensive; dim is uniform).
	_ = dim
	return centroids
}

func dist2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
