package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// RNGField flags snapshot-intent structs — named like a session, state,
// run, snapshot, or checkpoint — that hold a bare math/rand generator
// (*rand.Rand, or the rand.Source/Source64 interfaces). A *rand.Rand's
// internal state is unexported and cannot be serialized, so a checkpoint of
// such a struct either drops the generator or diverges on restore; the
// serializable-session work (internal/snap, tuner.Snapshotter) depends on
// every piece of session state round-tripping. State that needs randomness
// must carry a counted source (repro/internal/rng), whose (seed, draws)
// state is a plain serializable value. Transient structs that merely pass a
// generator through a computation are fine — and, when their name collides
// with the suffix list, can say so with a //lint:ignore rngfield directive.
type RNGField struct{}

// Name implements Analyzer.
func (RNGField) Name() string { return "rngfield" }

// Doc implements Analyzer.
func (RNGField) Doc() string {
	return "flag session/state/run/snapshot/checkpoint structs holding *math/rand.Rand or rand.Source fields; serializable state needs a counted rng.Source"
}

// rngStateSuffixes are the type-name suffixes that announce snapshot or
// restore intent.
var rngStateSuffixes = []string{"session", "state", "run", "snapshot", "checkpoint"}

// Run implements Analyzer.
func (RNGField) Run(p *Pass) {
	inspect(p.Pkg, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		name := strings.ToLower(ts.Name.Name)
		suffix := ""
		for _, s := range rngStateSuffixes {
			if strings.HasSuffix(name, s) {
				suffix = s
				break
			}
		}
		if suffix == "" {
			return true
		}
		for _, f := range st.Fields.List {
			if what, bad := mathRandType(p.Pkg.Info.TypeOf(f.Type)); bad {
				p.Reportf(f.Type.Pos(), "%s-like struct %s holds %s, whose state cannot be serialized; store a counted source (internal/rng) so snapshot/restore stays bit-identical", suffix, ts.Name.Name, what)
			}
		}
		return true
	})
}

// mathRandType reports whether t is *math/rand.Rand, math/rand.Rand, or one
// of the math/rand source interfaces (directly or behind one pointer).
func mathRandType(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "math/rand" {
		return "", false
	}
	switch obj.Name() {
	case "Rand", "Source", "Source64", "Zipf":
		return "math/rand." + obj.Name(), true
	}
	return "", false
}
