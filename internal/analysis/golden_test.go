package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current analyzer output")

// fixturePkgs maps each fixture directory under testdata/src to the import
// path it is loaded under. The paths sit under repro/internal/ so that the
// internal-only analyzers (uncheckederr, panicpath) are in scope; the
// walltime fixture loads under an internal/tuner-suffixed path because
// that analyzer is scoped to the sample-stream packages.
var fixturePkgs = []struct {
	name       string
	importPath string
}{
	{name: "globalrand"},
	{name: "floateq"},
	{name: "mutexcopy"},
	{name: "uncheckederr"},
	{name: "panicpath"},
	{name: "ctxarg"},
	{name: "lintdirective"},
	{name: "maprange"},
	{name: "walltime", importPath: "repro/internal/tuner/walltimefixture"},
	{name: "parfold"},
	{name: "seedflow"},
	{name: "errcmp"},
	{name: "rngfield"},
	{name: "deadignore"},
}

// TestAnalyzersGolden runs the full suite over each fixture package and
// compares every diagnostic — analyzer name, position, and message — to
// the package's golden file. Each fixture contains at least one defect its
// analyzer must find (positive) and clean code it must not flag
// (negative): any extra, missing, or moved diagnostic fails.
func TestAnalyzersGolden(t *testing.T) {
	for _, fx := range fixturePkgs {
		name, importPath := fx.name, fx.importPath
		if importPath == "" {
			importPath = "repro/internal/fixtures/" + name
		}
		t.Run(name, func(t *testing.T) {
			loader, err := NewLoader(".")
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := loader.LoadDir(filepath.Join("testdata", "src", name), importPath)
			if err != nil {
				t.Fatal(err)
			}
			var got strings.Builder
			for _, d := range Run([]*Package{pkg}, All()) {
				fmt.Fprintf(&got, "%s:%d:%d: %s: %s\n",
					filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			}
			goldenPath := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run go test -run Golden -update): %v", err)
			}
			if got.String() != string(want) {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", name, got.String(), want)
			}
		})
	}
}

// TestGoldenFilesHavePositives guards against a silently pacified suite:
// every analyzer must detect at least one seeded defect somewhere in the
// fixture corpus.
func TestGoldenFilesHavePositives(t *testing.T) {
	found := map[string]bool{}
	for _, fx := range fixturePkgs {
		data, err := os.ReadFile(filepath.Join("testdata", fx.name+".golden"))
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			parts := strings.SplitN(line, ": ", 3)
			if len(parts) == 3 {
				found[parts[1]] = true
			}
		}
	}
	for _, a := range All() {
		if !found[a.Name()] {
			t.Errorf("no fixture triggers analyzer %q; add a positive case under testdata/src", a.Name())
		}
	}
	if !found[directiveAnalyzer] {
		t.Errorf("no fixture triggers malformed-directive diagnostics")
	}
}
