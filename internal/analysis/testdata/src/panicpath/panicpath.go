// Package panicpath is a fixture for the panicpath analyzer: a bare panic
// in library code is flagged; an annotated invariant and an error return
// are not.
package panicpath

import "errors"

// Bad panics on invalid input.
func Bad(n int) int {
	if n < 0 {
		panic("negative")
	}
	return n
}

// GoodAnnotated documents the invariant it enforces.
func GoodAnnotated(n int) int {
	if n < 0 {
		//lint:ignore panicpath fixture invariant: a negative n is a programmer error in static test data
		panic("negative")
	}
	return n
}

// GoodError returns an error instead of panicking.
func GoodError(n int) (int, error) {
	if n < 0 {
		return 0, errors.New("negative")
	}
	return n, nil
}
