// Package parfold is a fixture for the parfold analyzer: worker closures
// violating the index-addressed-slot contract (positive), compliant
// workers (negative), and a directive-suppressed exception.
package parfold

import "repro/internal/par"

type item struct {
	in  int
	out int
}

type counter struct{ n int }

// BadAppend grows a captured slice from inside workers: result order
// depends on goroutine scheduling.
func BadAppend(xs []int) []int {
	var out []int
	par.For(len(xs), 4, func(i int) {
		out = append(out, xs[i]*2)
	})
	return out
}

// BadSend streams results out of workers in completion order.
func BadSend(xs []int, ch chan int) {
	par.For(len(xs), 4, func(i int) {
		ch <- xs[i]
	})
}

// BadSharedCounter mutates captured state through a non-index alias.
func BadSharedCounter(xs []int, c *counter) {
	par.For(len(xs), 4, func(i int) {
		shared := c
		shared.n++
	})
}

// BadScalar writes a captured scalar from every worker.
func BadScalar(xs []int) int {
	total := 0
	par.For(len(xs), 4, func(i int) {
		total += xs[i]
	})
	return total
}

// BadMapWrite writes into a captured map from workers.
func BadMapWrite(xs []int, m map[int]int) {
	par.ForContext(nil, len(xs), 4, func(i int) {
		m[i] = xs[i]
	})
}

// GoodSlots follows the contract: each worker writes only its own
// index-addressed slot, through locals derived from the index.
func GoodSlots(items []item, results []int) {
	par.For(len(items), 4, func(i int) {
		it := &items[i]
		it.out = it.in * 2
		tmp := it.out + 1
		tmp++
		results[i] = tmp
	})
}

// GoodNested writes grid[a][b] slots selected by the flattened index.
func GoodNested(grid [][]float64, cols int) {
	par.For(len(grid)*cols, 4, func(k int) {
		r, c := k/cols, k%cols
		grid[r][c] = float64(k)
	})
}

// SuppressedProgress bumps a captured atomic-ish progress counter; the
// directive records why scheduling-order writes are acceptable here.
func SuppressedProgress(xs []int, results []int) {
	done := 0
	par.For(len(xs), 4, func(i int) {
		results[i] = xs[i]
		done++ //lint:ignore parfold fixture: progress counter is observability-only (a real one would be atomic)
	})
	_ = done
}
