// Package errcmp is a fixture for the errcmp analyzer: identity
// comparisons against local and imported sentinel errors are flagged,
// errors.Is and nil checks are not, and one comparison is
// directive-suppressed.
package errcmp

import (
	"errors"
	"io"
)

// ErrExhausted is a sentinel in the style of tuner.ErrNoValidConfig.
var ErrExhausted = errors.New("errcmp: space exhausted")

// BadEq compares a (possibly wrapped) error by identity.
func BadEq(err error) bool {
	return err == ErrExhausted
}

// BadNeq is the negated form.
func BadNeq(err error) bool {
	return err != ErrExhausted
}

// BadImported compares against another package's sentinel.
func BadImported(err error) bool {
	return err == io.EOF
}

// GoodIs unwraps properly.
func GoodIs(err error) bool {
	return errors.Is(err, ErrExhausted)
}

// GoodNil is a plain presence check.
func GoodNil(err error) bool {
	return err != nil
}

// GoodLocalCompare compares two flowing errors, neither a sentinel.
func GoodLocalCompare(a, b error) bool {
	return a == b
}

// Suppressed documents an identity check that is genuinely wanted (the
// sentinel is never wrapped on this path).
func Suppressed(err error) bool {
	return err == ErrExhausted //lint:ignore errcmp fixture: this path receives the sentinel unwrapped by construction
}
