//go:build !analysis_fixture_off

package buildtags

// Kernel is the variant selected on every real build (the tag is never
// set).
func Kernel() int { return Value }
