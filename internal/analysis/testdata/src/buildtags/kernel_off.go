//go:build analysis_fixture_off

package buildtags

// Kernel redeclares the symbol; a build-tag-blind loader collides here.
func Kernel() int { return -Value }
