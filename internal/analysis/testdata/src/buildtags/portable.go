// Package buildtags is a loader fixture: Kernel is declared twice behind
// mutually exclusive build constraints (the assembly-variant pattern used
// by internal/linalg). A loader that ignores build tags sees a
// redeclaration and fails to type-check.
package buildtags

// Value is what the constrained variants return.
const Value = 7
