// Package ctxarg is a fixture for the ctxarg analyzer: exported functions
// and interface methods taking context.Context anywhere but first are
// flagged, as is any struct field storing a context.Context; ctx-first
// signatures, unexported functions, and latched error fields are not.
package ctxarg

import "context"

// BadMiddle takes ctx in the middle of the parameter list.
func BadMiddle(name string, ctx context.Context, n int) error {
	return ctx.Err()
}

// BadLast takes ctx last.
func BadLast(n int, ctx context.Context) error {
	return ctx.Err()
}

// BadStore keeps a request-scoped context alive inside a long-lived object.
type BadStore struct {
	ctx  context.Context
	name string
}

// Runner is an interface whose exported method misplaces ctx.
type Runner interface {
	BadRun(n int, ctx context.Context) error
	GoodRun(ctx context.Context, n int) error
}

// GoodFirst takes ctx first.
func GoodFirst(ctx context.Context, name string) error {
	return ctx.Err()
}

// GoodNone takes no context at all.
func GoodNone(name string) string { return name }

// goodUnexported is out of scope: internal helpers may order params freely
// (the repo still keeps ctx first by convention).
func goodUnexported(n int, ctx context.Context) error {
	return ctx.Err()
}

// GoodLatched holds a latched error instead of the context itself.
type GoodLatched struct {
	err error
}

// Observe latches cancellation the way session does.
func (g *GoodLatched) Observe(ctx context.Context) bool {
	if g.err != nil {
		return true
	}
	if err := ctx.Err(); err != nil {
		g.err = err
		return true
	}
	return false
}

var _ = BadStore{ctx: context.Background(), name: "x"}
