// Package maprange is a fixture for the maprange analyzer: map iteration
// order escaping through appends, channel sends and writers (positive),
// order-insensitive map uses (negative), and a directive-suppressed
// sorted consumer.
package maprange

import (
	"fmt"
	"io"
	"sort"
)

// BadAppend leaks iteration order into the returned slice.
func BadAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// BadDerivedAppend leaks through a value derived from the iteration
// variables (the dataflow propagation case).
func BadDerivedAppend(m map[string]int) []string {
	var lines []string
	for k, v := range m {
		line := fmt.Sprintf("%s=%d", k, v)
		lines = append(lines, line)
	}
	return lines
}

// BadSend leaks iteration order through a channel.
func BadSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k
	}
}

// BadWrite leaks iteration order into a stream writer.
func BadWrite(m map[string]int, w io.Writer) {
	for k, v := range m {
		_, _ = fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// GoodMapBuild rebuilds another map: no order escapes.
func GoodMapBuild(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// GoodFold folds commutatively and tracks a max: order-insensitive.
func GoodFold(m map[string]int) (int, string) {
	total := 0
	bestK := ""
	bestV := -1
	for k, v := range m {
		total += v
		if v > bestV || (v == bestV && k < bestK) {
			bestK, bestV = k, v
		}
	}
	return total, bestK
}

// GoodInnerScratch appends into a slice scoped to the loop body.
func GoodInnerScratch(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var scratch []int
		scratch = append(scratch, vs...)
		n += len(scratch)
	}
	return n
}

// GoodBareRange exposes only the length.
func GoodBareRange(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// SuppressedSorted collects then sorts; the directive records why the
// escape is safe.
func SuppressedSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) //lint:ignore maprange sorted on the next line
	}
	sort.Strings(keys)
	return keys
}
