// Package uncheckederr is a fixture for the uncheckederr analyzer: bare
// and deferred error-returning calls are flagged; handled, explicitly
// blanked, and safe-writer calls are not.
package uncheckederr

import (
	"bytes"
	"errors"
	"fmt"
	"os"
)

func mayFail() error {
	return errors.New("boom")
}

// Bad discards the error of a bare call.
func Bad() {
	mayFail()
}

// BadDefer discards the error of a deferred close.
func BadDefer(f *os.File) {
	defer f.Close()
}

// GoodReturn propagates the error.
func GoodReturn() error {
	return mayFail()
}

// GoodBlank discards deliberately and visibly.
func GoodBlank() {
	_ = mayFail() // best-effort cleanup; failure is harmless here
}

// GoodSafeWriter writes to an in-memory buffer that never fails.
func GoodSafeWriter() string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "n=%d", 1)
	return buf.String()
}
