// Package lintdirective is a fixture for the suppression machinery:
// malformed directives are themselves diagnosed, and well-formed same-line
// and previous-line directives silence their analyzer.
package lintdirective

//lint:ignore floateq
func missingReason(a, b float64) bool {
	return a == b
}

//lint:frobnicate floateq not a real directive
func unknownDirective() {}

func sameLineSuppression(a, b float64) bool {
	eq := a == b //lint:ignore floateq fixture: same-line suppression
	return eq
}

func previousLineSuppression(a, b float64) bool {
	//lint:ignore floateq fixture: previous-line suppression
	return a != b
}
