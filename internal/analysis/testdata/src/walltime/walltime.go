// Package walltime is a fixture for the walltime analyzer, loaded under a
// repro/internal/tuner-suffixed import path so the package-scope gate
// applies. Wall-clock reads reachable from the exported API are flagged
// (including through unexported helpers); unreachable helpers are not;
// a directive allowlists the observability path.
package walltime

import "time"

// Step is an exported sample-stream entry point.
func Step() int {
	if time.Now().UnixNano()%2 == 0 {
		return 1
	}
	return helper()
}

// helper is reachable from Step, so its wall-clock read is flagged too.
func helper() int {
	time.Sleep(time.Millisecond)
	return 2
}

// unreachable is not called from any exported function: its clock read is
// outside the sample-stream contract.
func unreachable() time.Time {
	return time.Now()
}

// Timed is an exported observability path: the reading is allowlisted
// with a reason.
func Timed(f func()) time.Duration {
	start := time.Now() //lint:ignore walltime fixture: observability-only timing, result is reported not branched on
	f()
	//lint:ignore walltime fixture: observability-only timing
	return time.Since(start)
}
