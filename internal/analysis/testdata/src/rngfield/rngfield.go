// Package rngfield is a fixture for the rngfield analyzer: snapshot-intent
// structs (…Session, …State, …Run, …Snapshot, …Checkpoint) holding bare
// math/rand generators are flagged; transient RNG holders without snapshot
// intent, serializable counted state, and suppressed sites are not.
package rngfield

import "math/rand"

// SearchSession looks serializable but embeds an unserializable generator.
type SearchSession struct {
	Step int
	rng  *rand.Rand
}

// WalkState hides the generator behind the Source interface — the dynamic
// state is just as unserializable.
type WalkState struct {
	src rand.Source
}

// ChainRun does the same through Source64.
type ChainRun struct {
	Src rand.Source64
}

// Sampler carries an injected generator but announces no snapshot intent;
// transient pass-through holders are fine.
type Sampler struct {
	rng *rand.Rand
}

// CountedState is what serializable state should look like: plain values
// that a codec can round-trip.
type CountedState struct {
	Seed  int64
	Draws uint64
}

// scratchState is a per-call scratch struct whose name collides with the
// suffix list; the directive records why it is exempt.
type scratchState struct {
	//lint:ignore rngfield transient per-call scratch, never snapshotted
	rng *rand.Rand
	sum float64
}

// use keeps the unexported fixtures referenced.
func use(s SearchSession, w WalkState, sc scratchState, sm Sampler) (int, rand.Source, *rand.Rand, *rand.Rand) {
	_ = sc.sum
	return s.Step, w.src, sc.rng, sm.rng
}

var _ = use
