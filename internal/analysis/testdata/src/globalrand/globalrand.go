// Package globalrand is a fixture for the globalrand analyzer: one global
// draw, one time-derived seed, and two clean injected-RNG uses.
package globalrand

import (
	"math/rand"
	"time"
)

// Bad draws from the process-global generator.
func Bad() int {
	return rand.Intn(10)
}

// BadSeed derives an RNG seed from the wall clock.
func BadSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

// Good uses an injected generator.
func Good(rng *rand.Rand) int {
	return rng.Intn(10)
}

// GoodSeed builds a generator from an explicit seed.
func GoodSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
