// Package floateq is a fixture for the floateq analyzer: computed-float
// comparisons are flagged; constant sentinels and integers are not.
package floateq

// BadEq compares two computed float expressions exactly.
func BadEq(a, b float64) bool {
	return a*3 == b+1
}

// BadNeq compares two float variables exactly.
func BadNeq(xs []float64) bool {
	return xs[0] != xs[1]
}

// GoodSentinel tests a constant sentinel that was assigned exactly.
func GoodSentinel(gflops float64) bool {
	return gflops == 0
}

// GoodInt compares integers; exact equality is well-defined.
func GoodInt(a, b int) bool {
	return a == b
}

// GoodTolerance compares with an epsilon.
func GoodTolerance(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
