// Package deadignore is a fixture for the deadignore pass: a live
// directive (suppressing a real finding) is kept, a stale line directive,
// a stale file directive and a directive naming an unknown analyzer are
// reported.
package deadignore

//lint:file-ignore globalrand fixture: stale file directive — nothing in this file touches math/rand

// live triggers floateq and suppresses it: the directive is used.
func live(a, b float64) bool {
	//lint:ignore floateq fixture: live directive, suppresses the line below
	return a == b
}

// stale carries a directive for a finding that no longer exists.
func stale(a, b float64) bool {
	//lint:ignore floateq fixture: stale — the comparison below is integral now
	return int(a) == int(b)
}

//lint:ignore frobnicate fixture: no such analyzer exists
func unknownAnalyzer() {}
