// Package mutexcopy is a fixture for the mutexcopy analyzer: by-value
// receiver, parameter, assignment, and range copies of a lock-holding
// struct are flagged; pointer access and fresh composite literals are not.
package mutexcopy

import "sync"

// Counter guards a count with a mutex.
type Counter struct {
	mu sync.Mutex
	n  int
}

// BadValueReceiver copies the lock on every method call.
func (c Counter) BadValueReceiver() int {
	return c.n
}

// BadParam copies the lock at every call site.
func BadParam(c Counter) int {
	return c.n
}

// BadAssign copies an existing counter, forking its lock state.
func BadAssign(c *Counter) int {
	snapshot := *c
	return snapshot.n
}

// BadRange copies each element, lock included.
func BadRange(cs []Counter) int {
	total := 0
	for _, c := range cs {
		total += c.n
	}
	return total
}

// GoodPointer accesses the counter through a pointer.
func GoodPointer(c *Counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// GoodInit constructs a fresh value; there is no prior lock state to lose.
func GoodInit() *Counter {
	c := Counter{n: 1}
	return &c
}

// GoodRange indexes instead of copying elements.
func GoodRange(cs []Counter) int {
	total := 0
	for i := range cs {
		total += cs[i].n
	}
	return total
}
