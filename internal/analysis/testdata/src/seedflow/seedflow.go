// Package seedflow is a fixture for the seedflow analyzer: constant seeds
// (direct, laundered through locals, and via constant conversions) are
// flagged; seeds derived from parameters, fields or calls are not; one
// protocol constant is directive-suppressed.
package seedflow

import "math/rand"

const defaultSeed = 7

type opts struct{ seed int64 }

// BadLiteral bakes the seed in directly.
func BadLiteral() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

// BadConst uses a package constant: still compile-time.
func BadConst() *rand.Rand {
	return rand.New(rand.NewSource(defaultSeed))
}

// BadLaundered assigns the literal through locals first — the dataflow
// case: every assignment feeding s is constant.
func BadLaundered() *rand.Rand {
	base := int64(21)
	s := base
	s = s*2 + 0
	return rand.New(rand.NewSource(s))
}

// GoodParam derives the seed from flowing data.
func GoodParam(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// GoodDerived mixes a constant offset into a flowing seed: the xor
// decorrelates streams, the parameter keeps it chained.
func GoodDerived(o opts) *rand.Rand {
	return rand.New(rand.NewSource(o.seed ^ 0x5DEECE66D))
}

// GoodChained rebuilds the seed through locals fed by a parameter.
func GoodChained(seed int64) *rand.Rand {
	s := seed
	s = s*6364136223846793005 + 1442695040888963407
	return rand.New(rand.NewSource(s))
}

// SuppressedProtocol documents a deliberate fixed stream.
func SuppressedProtocol() *rand.Rand {
	//lint:ignore seedflow fixture: protocol-pinned stream, documented default
	return rand.New(rand.NewSource(1))
}
