package analysis

import (
	"go/ast"
	"go/types"
)

// CtxArg enforces the repository's context conventions, the ones the
// cancellable tuning engine depends on: an exported function or method
// (including interface methods) that takes a context.Context must take it
// as its first parameter, and no struct may store a context.Context in a
// field. A stored context outlives the call it was scoped to, hiding the
// cancellation point; the session type instead latches ctx.Err() into a
// plain error field, and everything else threads ctx explicitly.
type CtxArg struct{}

// Name implements Analyzer.
func (CtxArg) Name() string { return "ctxarg" }

// Doc implements Analyzer.
func (CtxArg) Doc() string {
	return "flag exported functions taking context.Context anywhere but first, and structs storing a context.Context field"
}

// Run implements Analyzer.
func (CtxArg) Run(p *Pass) {
	info := p.Pkg.Info
	inspect(p.Pkg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Name.IsExported() {
				checkCtxParams(p, n.Name.Name, n.Type)
			}
		case *ast.InterfaceType:
			for _, m := range n.Methods.List {
				ft, ok := m.Type.(*ast.FuncType)
				if !ok || len(m.Names) == 0 {
					continue // embedded interface
				}
				for _, name := range m.Names {
					if name.IsExported() {
						checkCtxParams(p, name.Name, ft)
					}
				}
			}
		case *ast.StructType:
			for _, f := range n.Fields.List {
				if isContextType(info.TypeOf(f.Type)) {
					p.Reportf(f.Type.Pos(), "struct field stores a context.Context; thread ctx through calls instead (contexts are call-scoped, not object-scoped)")
				}
			}
		}
		return true
	})
}

// checkCtxParams reports context.Context parameters at any flattened
// position other than the first.
func checkCtxParams(p *Pass, funcName string, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, f := range ft.Params.List {
		width := len(f.Names)
		if width == 0 {
			width = 1
		}
		if isContextType(p.Pkg.Info.TypeOf(f.Type)) {
			// A name group shares one type, so every name past the first
			// parameter slot violates individually.
			for i := 0; i < width; i++ {
				if pos+i != 0 {
					p.Reportf(f.Type.Pos(), "%s takes context.Context at parameter %d; context must be the first parameter", funcName, pos+i+1)
					break
				}
			}
		}
		pos += width
	}
}

// isContextType reports whether t is context.Context (through aliases).
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
