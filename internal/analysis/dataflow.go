package analysis

import (
	"go/ast"
	"go/types"
)

// This file is the lightweight intra-procedural dataflow layer the
// determinism-contract analyzers (maprange, parfold, seedflow) are built
// on. Two complementary lattices are provided:
//
//   - taint: a forward may-derive-from analysis. Seeded with objects (a
//     range statement's iteration variables, a worker closure's index
//     parameter), it propagates through assignments, declarations, range
//     statements and expression structure to a fixpoint, answering "may
//     this expression's value depend on one of the sources?". The lattice
//     is the powerset of local objects ordered by inclusion; propagation
//     only ever adds objects, so the fixpoint terminates.
//
//   - constOnly: a backward derives-only-from-constants analysis,
//     answering "is this expression computable at compile time through
//     local assignments?". Parameters, free variables, fields, non-const
//     globals and calls (other than constant conversions) are bottom.
//
// Both are deliberately conservative in the sound direction for their
// consumers: taint over-approximates (an analyzer using it as a guard may
// allow too little, never too much escape), constOnly under-approximates
// (a seed is only reported constant when every contributing assignment is
// provably constant).

// taint is the result of one may-derive-from analysis over a single
// function body or statement subtree.
type taint struct {
	info    *types.Info
	tainted map[types.Object]bool
}

// taintFrom runs the forward analysis over body, seeding the tainted set
// with seeds. The body is re-walked until no assignment adds a new object,
// so taint flows through chains such as w := wl[j]; tr := w.tr regardless
// of statement order.
func taintFrom(info *types.Info, body ast.Node, seeds ...types.Object) *taint {
	t := &taint{info: info, tainted: make(map[types.Object]bool, len(seeds))}
	for _, o := range seeds {
		if o != nil {
			t.tainted[o] = true
		}
	}
	for {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				changed = t.flowAssign(n) || changed
			case *ast.RangeStmt:
				if t.exprTainted(n.X) {
					changed = t.markIdent(n.Key) || changed
					changed = t.markIdent(n.Value) || changed
				}
			case *ast.ValueSpec:
				if len(n.Values) == len(n.Names) {
					for i, v := range n.Values {
						if t.exprTainted(v) {
							changed = t.markIdent(n.Names[i]) || changed
						}
					}
				} else if anyTainted(t, n.Values) {
					for _, name := range n.Names {
						changed = t.markIdent(name) || changed
					}
				}
			}
			return true
		})
		if !changed {
			return t
		}
	}
}

// flowAssign propagates one assignment: pairwise when the counts match
// (a, b = x, y), jointly otherwise (a, b = f()).
func (t *taint) flowAssign(n *ast.AssignStmt) bool {
	changed := false
	if len(n.Lhs) == len(n.Rhs) {
		for i, rhs := range n.Rhs {
			if t.exprTainted(rhs) {
				changed = t.markExpr(n.Lhs[i]) || changed
			}
		}
		return changed
	}
	if anyTainted(t, n.Rhs) {
		for _, lhs := range n.Lhs {
			changed = t.markExpr(lhs) || changed
		}
	}
	return changed
}

func anyTainted(t *taint, exprs []ast.Expr) bool {
	for _, e := range exprs {
		if t.exprTainted(e) {
			return true
		}
	}
	return false
}

// markExpr taints the object behind an assignment target. Only direct
// identifier targets introduce new taint; element and field writes taint
// the base object too (x[i] = tainted makes later reads of x tainted),
// which keeps the analysis a sound over-approximation.
func (t *taint) markExpr(e ast.Expr) bool {
	if id, ok := baseIdent(e); ok {
		return t.markIdent(id)
	}
	return false
}

func (t *taint) markIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := t.info.ObjectOf(id)
	if obj == nil || t.tainted[obj] {
		return false
	}
	t.tainted[obj] = true
	return true
}

// objTainted reports whether an object is in the tainted set.
func (t *taint) objTainted(o types.Object) bool { return o != nil && t.tainted[o] }

// exprTainted reports whether any value flowing into e derives from a
// source: an identifier in the tainted set, or any subexpression thereof.
func (t *taint) exprTainted(e ast.Expr) bool {
	switch e := e.(type) {
	case nil:
		return false
	case *ast.Ident:
		return t.objTainted(t.info.ObjectOf(e))
	case *ast.SelectorExpr:
		return t.exprTainted(e.X)
	case *ast.IndexExpr:
		return t.exprTainted(e.X) || t.exprTainted(e.Index)
	case *ast.SliceExpr:
		return t.exprTainted(e.X) || t.exprTainted(e.Low) || t.exprTainted(e.High) || t.exprTainted(e.Max)
	case *ast.CallExpr:
		// Calls propagate taint from every argument and from a method's
		// receiver: v := m[k]; s := fmt.Sprint(v) keeps s tainted.
		if t.exprTainted(e.Fun) {
			return true
		}
		return anyTainted(t, e.Args)
	case *ast.ParenExpr:
		return t.exprTainted(e.X)
	case *ast.StarExpr:
		return t.exprTainted(e.X)
	case *ast.UnaryExpr:
		return t.exprTainted(e.X)
	case *ast.BinaryExpr:
		return t.exprTainted(e.X) || t.exprTainted(e.Y)
	case *ast.TypeAssertExpr:
		return t.exprTainted(e.X)
	case *ast.CompositeLit:
		return anyTainted(t, e.Elts)
	case *ast.KeyValueExpr:
		return t.exprTainted(e.Key) || t.exprTainted(e.Value)
	}
	return false
}

// baseIdent unwraps selectors, indexing, slicing, derefs and parens down
// to the root identifier of an lvalue or value chain: wl[j].tr.done has
// base wl. The second result is false for rootless expressions (calls,
// literals).
func baseIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// constScan is the derives-only-from-constants analysis for one function.
// It memoizes per-object verdicts and treats in-progress objects (cyclic
// assignment chains) as non-constant.
type constScan struct {
	info *types.Info
	fn   ast.Node // the function whose locals are in scope
	memo map[types.Object]constVerdict
}

type constVerdict int

const (
	constUnknown constVerdict = iota
	constInProgress
	constYes
	constNo
)

// newConstScan prepares the analysis for one function declaration or
// literal.
func newConstScan(info *types.Info, fn ast.Node) *constScan {
	return &constScan{info: info, fn: fn, memo: map[types.Object]constVerdict{}}
}

// constOnly reports whether e provably derives from compile-time constants
// alone: literals, constant expressions and conversions, and local
// variables whose every assignment in the function is itself constOnly.
// Anything reaching a parameter, field, free variable, call or channel is
// not constant.
func (c *constScan) constOnly(e ast.Expr) bool {
	if e == nil {
		return false
	}
	if tv, ok := c.info.Types[e]; ok && tv.Value != nil {
		return true // constant-folded by the type checker (covers literals, const idents, int64(42))
	}
	switch e := e.(type) {
	case *ast.Ident:
		return c.identConstOnly(e)
	case *ast.ParenExpr:
		return c.constOnly(e.X)
	case *ast.UnaryExpr:
		return c.constOnly(e.X)
	case *ast.BinaryExpr:
		return c.constOnly(e.X) && c.constOnly(e.Y)
	case *ast.CallExpr:
		// A conversion of a constant-only value stays constant-only;
		// any real call is opaque.
		if tv, ok := c.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return c.constOnly(e.Args[0])
		}
		return false
	}
	return false
}

// identConstOnly resolves a variable by scanning every assignment to it
// inside the function.
func (c *constScan) identConstOnly(id *ast.Ident) bool {
	obj := c.info.ObjectOf(id)
	if obj == nil {
		return false
	}
	switch v := c.memo[obj]; v {
	case constYes:
		return true
	case constNo:
		return false
	case constInProgress:
		// Optimistic cycle edge: a self-referential assignment chain
		// (s = s*2) stays constant-derived unless some other assignment
		// on the cycle brings in flowing data, which the outer scan will
		// still see and veto.
		return true
	}
	// Only function-local variables can be resolved; parameters, fields
	// and package globals may change between runs.
	vr, ok := obj.(*types.Var)
	if !ok || vr.Pos() < c.fn.Pos() || vr.Pos() > c.fn.End() {
		c.memo[obj] = constNo
		return false
	}
	c.memo[obj] = constInProgress
	verdict := constYes
	sawInit := false
	ast.Inspect(c.fn, func(n ast.Node) bool {
		if verdict == constNo {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				if assignsObj(c.info, n.Lhs, obj) {
					verdict = constNo // tuple assignment from a call
				}
				return true
			}
			for i, lhs := range n.Lhs {
				// Plain, define and op-assign all fold the RHS into the
				// variable, so each one must be constant-only.
				if lid, ok := lhs.(*ast.Ident); ok && c.info.ObjectOf(lid) == obj {
					sawInit = true
					if !c.constOnly(n.Rhs[i]) {
						verdict = constNo
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if c.info.ObjectOf(name) == obj {
					if i < len(n.Values) {
						sawInit = true
						if !c.constOnly(n.Values[i]) {
							verdict = constNo
						}
					}
				}
			}
		case *ast.IncDecStmt:
			// x++ keeps constness only if x already is constant-only; since
			// the increment is itself constant, nothing changes.
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if bid, ok := baseIdent(n.X); ok && c.info.ObjectOf(bid) == obj {
					verdict = constNo // address taken: writes can happen anywhere
				}
			}
		case *ast.RangeStmt:
			if assignsObj(c.info, []ast.Expr{n.Key, n.Value}, obj) {
				verdict = constNo
			}
		}
		return true
	})
	if !sawInit {
		verdict = constNo // never assigned here: zero value is constant, but an unseen writer (closure) may exist
	}
	c.memo[obj] = verdict
	return verdict == constYes
}

func assignsObj(info *types.Info, targets []ast.Expr, obj types.Object) bool {
	for _, e := range targets {
		if id, ok := e.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			return true
		}
	}
	return false
}

// declaredWithin reports whether obj's declaration lies inside node — the
// capture test the closure analyzers use: an object declared outside a
// worker closure is captured shared state.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() != 0 && obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}

// funcNode pairs a package function with its declaration, in source order,
// so analyzers that walk the call graph report findings deterministically.
type funcNode struct {
	obj  *types.Func
	decl *ast.FuncDecl
}

// packageFuncs returns every function declaration of the package in
// source order, the node set the intra-package call graph is built over.
func packageFuncs(pkg *Package) []funcNode {
	var out []funcNode
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				out = append(out, funcNode{obj: obj, decl: fd})
			}
		}
	}
	return out
}

// callGraph returns the intra-package call edges among funcs: for every
// function, the package-local functions it references (a direct call, a
// method value, or a function passed as a value all count — any of them
// can execute the callee).
func callGraph(pkg *Package, funcs []funcNode) map[*types.Func][]*types.Func {
	local := make(map[*types.Func]bool, len(funcs))
	for _, fn := range funcs {
		local[fn.obj] = true
	}
	edges := map[*types.Func][]*types.Func{}
	for _, fn := range funcs {
		seen := map[*types.Func]bool{}
		ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			callee, ok := pkg.Info.Uses[id].(*types.Func)
			if !ok || seen[callee] || !local[callee] {
				return true
			}
			seen[callee] = true
			edges[fn.obj] = append(edges[fn.obj], callee)
			return true
		})
	}
	return edges
}

// reachableFrom runs BFS over the call graph from the given roots.
func reachableFrom(roots []*types.Func, edges map[*types.Func][]*types.Func) map[*types.Func]bool {
	reach := map[*types.Func]bool{}
	queue := append([]*types.Func(nil), roots...)
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if reach[fn] {
			continue
		}
		reach[fn] = true
		queue = append(queue, edges[fn]...)
	}
	return reach
}
