package analysis

import (
	"path/filepath"
	"testing"
)

// TestLoaderHonorsBuildConstraints loads a fixture package that declares
// the same symbol in two files behind mutually exclusive //go:build lines
// (the assembly-kernel-plus-fallback pattern of internal/linalg). The
// loader must select files the way `go build` does — exactly one variant —
// or type-checking reports a redeclaration.
func TestLoaderHonorsBuildConstraints(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "buildtags"), "repro/internal/fixtures/buildtags")
	if err != nil {
		t.Fatalf("loading build-constrained package: %v", err)
	}
	if got := len(pkg.Files); got != 2 {
		t.Errorf("loaded %d files, want 2 (portable.go + kernel_on.go)", got)
	}
	if pkg.Types.Scope().Lookup("Kernel") == nil {
		t.Error("Kernel not in package scope")
	}
}
