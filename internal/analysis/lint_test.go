package analysis

import (
	"testing"
)

// TestRepoIsLintClean is the self-check the tier-1 suite runs: every
// analyzer over every package of this module, with zero findings allowed.
// A regression anywhere in the tree — a stray global rand call, a copied
// mutex, a new unchecked error — fails `go test ./...` with the exact
// position and message, the same output `go run ./cmd/lint ./...` gives.
func TestRepoIsLintClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the module walk is broken", len(pkgs))
	}
	diags := Run(pkgs, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("fix the findings or annotate them with //lint:ignore <analyzer> <reason>")
	}
}

// TestAnalyzerMetadata keeps names and docs usable: names are the tokens
// written in //lint:ignore directives, so they must be non-empty, unique,
// and lowercase single words.
func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		name := a.Name()
		if name == "" || a.Doc() == "" {
			t.Errorf("analyzer %T has empty name or doc", a)
		}
		if seen[name] {
			t.Errorf("duplicate analyzer name %q", name)
		}
		seen[name] = true
		for _, r := range name {
			if (r < 'a' || r > 'z') && (r < '0' || r > '9') {
				t.Errorf("analyzer name %q must be a lowercase word (it is used in //lint:ignore directives)", name)
			}
		}
	}
	if len(seen) < 5 {
		t.Errorf("suite has %d analyzers, want at least 5", len(seen))
	}
}
