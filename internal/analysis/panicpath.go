package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicPath flags panic calls in library (internal/) packages. A panic in
// a tuner or simulator hot path takes down the whole serving process; the
// north-star deployment runs many tuning sessions in one binary, so
// library code must return errors and let the caller decide. The one
// sanctioned exception is the graph builder DSL (internal/graph/
// builder.go), whose chained-call construction API has no room for error
// returns and which carries a file-level suppression; genuine programmer-
// error invariants elsewhere must be annotated individually with
// //lint:ignore panicpath <reason>.
type PanicPath struct{}

// Name implements Analyzer.
func (PanicPath) Name() string { return "panicpath" }

// Doc implements Analyzer.
func (PanicPath) Doc() string {
	return "flag panic in internal/ library packages; return errors instead (annotated invariants and the builder DSL excepted)"
}

// Run implements Analyzer.
func (PanicPath) Run(p *Pass) {
	if !strings.Contains(p.Pkg.Path, "/internal/") {
		return
	}
	inspect(p.Pkg, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" {
			return true
		}
		if _, isBuiltin := p.Pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return true // shadowed: a local function named panic
		}
		p.Reportf(call.Pos(), "panic in library package %s; return an error, or annotate the invariant with //lint:ignore panicpath <reason>", p.Pkg.Types.Name())
		return true
	})
}
