package analysis

// deadIgnoreName is DeadIgnore's analyzer name, referenced by the
// suppression machinery (deadignore findings point at directives and are
// themselves never suppressible — a suppression of a stale-suppression
// report would just be a second place for rot to hide).
const deadIgnoreName = "deadignore"

// DeadIgnore reports //lint:ignore and //lint:file-ignore directives that
// no longer suppress anything. Every directive is an exception carved out
// of a contract; when the code it excused is fixed or moves away, the
// leftover directive is a standing invitation to reintroduce the bug on
// that line without any analyzer noticing. The pass runs on the directive
// table the suite already collects: after all enabled analyzers have
// reported and suppression has been applied, any directive whose target
// analyzer ran but which silenced zero findings is stale, and any
// directive naming an analyzer that does not exist is reported
// unconditionally.
//
// The actual work happens inside the suite driver (Run), because
// staleness is a property of the whole run, not of one analyzer's view;
// this type exists so the pass is listable, orderable and selectable
// (-run deadignore) like every other analyzer.
type DeadIgnore struct{}

// Name implements Analyzer.
func (DeadIgnore) Name() string { return deadIgnoreName }

// Doc implements Analyzer.
func (DeadIgnore) Doc() string {
	return "flag //lint:ignore and //lint:file-ignore directives that suppress no finding of any enabled analyzer (or name an unknown one); stale suppressions must be deleted"
}

// Run implements Analyzer. The driver special-cases deadignore after
// suppression filtering; there is nothing to do per-package here.
func (DeadIgnore) Run(p *Pass) {}
