package analysis

import (
	"go/ast"
)

// SeedFlow enforces the seed-chain contract: every RNG constructed in
// library or command code must derive its seed from flowing data — an
// Options.Seed, a derived hwsim.NoiseSeed, a decorrelated per-task seed —
// never from a compile-time constant baked into the function. A literal
// seed pins one fixed stream: two tuners, two tasks, or two bootstrap
// members constructed from the same literal silently share their
// randomness, which correlates runs that the paper's comparisons (and the
// splitmix64 seed-splitting scheme in DESIGN.md) require to be
// independent.
//
// The check is dataflow-aware through the constOnly lattice: a seed is
// flagged when every assignment contributing to it is a compile-time
// constant, so laundering a literal through locals
//
//	s := int64(42)
//	rng := rand.New(rand.NewSource(s)) // flagged
//
// is still caught, while seeds derived from parameters, fields, or other
// calls are accepted. Fixed seeds that are genuinely part of a protocol
// (a documented default, a test fixture in non-test code) carry a
// //lint:ignore seedflow <why this constant is the protocol> directive.
type SeedFlow struct{}

// Name implements Analyzer.
func (SeedFlow) Name() string { return "seedflow" }

// Doc implements Analyzer.
func (SeedFlow) Doc() string {
	return "RNG seeds must derive from the run's seed chain (Options.Seed / NoiseSeed), not compile-time constants; constant-derived rand.NewSource seeds are flagged"
}

// Run implements Analyzer.
func (SeedFlow) Run(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scan := newConstScan(info, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := pkgFuncName(p, call.Fun, "math/rand")
				if !ok || name != "NewSource" || len(call.Args) != 1 {
					return true
				}
				if scan.constOnly(call.Args[0]) {
					p.Reportf(call.Args[0].Pos(), "RNG seed is a compile-time constant; derive it from the run's seed chain (Options.Seed, hwsim.NoiseSeed, or a decorrelated offset of them) so streams stay independent")
				}
				return true
			})
		}
	}
}
